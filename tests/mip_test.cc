#include <cmath>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "mip/solver.h"

namespace rasa {
namespace {

// Exhaustively enumerates all integer points of a small model (integer vars
// must have finite bounds) and returns the best feasible objective, or
// nullopt if none is feasible.
std::optional<double> BruteForce(const LpModel& m) {
  const int n = m.num_variables();
  std::vector<double> x(n, 0.0);
  std::optional<double> best;
  const bool maximize = m.objective_sense() == ObjectiveSense::kMaximize;
  std::function<void(int)> rec = [&](int j) {
    if (j == n) {
      if (m.CheckFeasible(x, 1e-9).ok()) {
        const double v = m.ObjectiveValue(x);
        if (!best || (maximize ? v > *best : v < *best)) best = v;
      }
      return;
    }
    const int lo = static_cast<int>(std::ceil(m.lower_bound(j)));
    const int hi = static_cast<int>(std::floor(m.upper_bound(j)));
    for (int v = lo; v <= hi; ++v) {
      x[j] = v;
      rec(j + 1);
    }
    x[j] = 0.0;
  };
  rec(0);
  return best;
}

TEST(MipTest, SolvesSmallKnapsack) {
  // max 10a + 13b + 7c st 3a + 4b + 2c <= 6, binary -> a=0? best: a+c (17)
  // vs b+c (20, weight 6) -> 20.
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  int a = m.AddVariable(0, 1, 10);
  int b = m.AddVariable(0, 1, 13);
  int c = m.AddVariable(0, 1, 7);
  for (int v : {a, b, c}) m.SetInteger(v);
  m.AddConstraint(ConstraintType::kLessEqual, 6.0,
                  {{a, 3.0}, {b, 4.0}, {c, 2.0}});
  MipResult r = SolveMip(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 20.0, 1e-6);
  EXPECT_NEAR(r.solution[b], 1.0, 1e-9);
  EXPECT_NEAR(r.solution[c], 1.0, 1e-9);
}

TEST(MipTest, IntegralityChangesOptimum) {
  // LP relaxation gives x=2.5; MIP must give 2.
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, 10, 1.0);
  m.SetInteger(x);
  m.AddConstraint(ConstraintType::kLessEqual, 5.0, {{x, 2.0}});
  MipResult r = SolveMip(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
}

TEST(MipTest, MixedIntegerKeepsContinuousFree) {
  // max x + y, x integer <= 2.5 cap, y continuous <= 2.5 cap.
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, 10, 1.0);
  int y = m.AddVariable(0, 10, 1.0);
  m.SetInteger(x);
  m.AddConstraint(ConstraintType::kLessEqual, 2.5, {{x, 1.0}});
  m.AddConstraint(ConstraintType::kLessEqual, 2.5, {{y, 1.0}});
  MipResult r = SolveMip(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.solution[x], 2.0, 1e-9);
  EXPECT_NEAR(r.solution[y], 2.5, 1e-6);
}

TEST(MipTest, DetectsInfeasible) {
  LpModel m;
  int x = m.AddVariable(0, 3, 1.0);
  m.SetInteger(x);
  // 2x == 3 has no integer solution in [0, 3].
  m.AddConstraint(ConstraintType::kEqual, 3.0, {{x, 2.0}});
  MipResult r = SolveMip(m);
  EXPECT_EQ(r.status, MipStatus::kInfeasible);
}

TEST(MipTest, InfeasibleLpRelaxationIsInfeasible) {
  LpModel m;
  int x = m.AddVariable(0, 1, 1.0);
  m.SetInteger(x);
  m.AddConstraint(ConstraintType::kGreaterEqual, 5.0, {{x, 1.0}});
  EXPECT_EQ(SolveMip(m).status, MipStatus::kInfeasible);
}

TEST(MipTest, PureLpPassesThrough) {
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, 4, 1.0);
  m.AddConstraint(ConstraintType::kLessEqual, 2.5, {{x, 1.0}});
  MipResult r = SolveMip(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.5, 1e-6);
}

TEST(MipTest, InitialSolutionActsAsIncumbent) {
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, 8, 1.0);
  m.SetInteger(x);
  m.AddConstraint(ConstraintType::kLessEqual, 13.0, {{x, 2.0}});
  MipOptions options;
  options.initial_solution = {5.0};
  MipResult r = SolveMip(m, options);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 6.0, 1e-9);  // improves past the warm start
}

TEST(MipTest, InfeasibleWarmStartIsIgnored) {
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, 3, 1.0);
  m.SetInteger(x);
  MipOptions options;
  options.initial_solution = {99.0};  // violates bounds
  MipResult r = SolveMip(m, options);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-9);
}

TEST(MipTest, IncumbentCallbackFires) {
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, 5, 1.0);
  m.SetInteger(x);
  m.AddConstraint(ConstraintType::kLessEqual, 7.0, {{x, 2.0}});
  MipOptions options;
  int calls = 0;
  double last = -1;
  options.on_incumbent = [&](const std::vector<double>&, double obj) {
    ++calls;
    last = obj;
  };
  MipResult r = SolveMip(m, options);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_GE(calls, 1);
  EXPECT_NEAR(last, 3.0, 1e-9);
}

TEST(MipTest, ExpiredDeadlineStillReturnsGracefully) {
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, 5, 1.0);
  m.SetInteger(x);
  MipOptions options;
  options.deadline = Deadline::AfterSeconds(0.0);
  MipResult r = SolveMip(m, options);
  EXPECT_TRUE(r.status == MipStatus::kNoSolutionFound ||
              r.status == MipStatus::kFeasible ||
              r.status == MipStatus::kOptimal);
}

TEST(MipTest, GapIsZeroWhenOptimal) {
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, 3, 1.0);
  m.SetInteger(x);
  MipResult r = SolveMip(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.Gap(), 0.0, 1e-9);
}

TEST(MipTest, NodeLimitStopsEarly) {
  // A knapsack-ish model with enough branching to exceed 1 node.
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  Rng rng(4);
  std::vector<LinearTerm> terms;
  for (int j = 0; j < 12; ++j) {
    int v = m.AddVariable(0, 1, rng.NextDouble(1.0, 10.0));
    m.SetInteger(v);
    terms.push_back({v, rng.NextDouble(1.0, 5.0)});
  }
  m.AddConstraint(ConstraintType::kLessEqual, 10.0, std::move(terms));
  MipOptions options;
  options.max_nodes = 2;
  options.dive_frequency = 0;  // no heuristic help
  MipResult r = SolveMip(m, options);
  EXPECT_LE(r.nodes_explored, 2);
  EXPECT_NE(r.status, MipStatus::kOptimal);
}


TEST(MipTest, BestBoundBracketsOptimum) {
  // Stop early by node limit: the reported bound must be >= the true
  // optimum (maximization) and >= the incumbent.
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  Rng rng(11);
  std::vector<LinearTerm> terms;
  for (int j = 0; j < 14; ++j) {
    int v = m.AddVariable(0, 1, rng.NextDouble(1.0, 9.0));
    m.SetInteger(v);
    terms.push_back({v, rng.NextDouble(1.0, 4.0)});
  }
  m.AddConstraint(ConstraintType::kLessEqual, 12.0, std::move(terms));
  MipResult full = SolveMip(m);
  ASSERT_EQ(full.status, MipStatus::kOptimal);
  MipOptions limited;
  limited.max_nodes = 3;
  MipResult partial = SolveMip(m, limited);
  if (partial.has_solution()) {
    EXPECT_LE(partial.objective, full.objective + 1e-6);
    EXPECT_GE(partial.best_bound, full.objective - 1e-6);
    EXPECT_GE(partial.Gap(), 0.0);
  }
}

TEST(MipTest, MinimizationMirrorsMaximization) {
  // min c'x == -max (-c)'x on the same feasible set.
  Rng rng(13);
  LpModel min_model;
  LpModel max_model;
  max_model.SetObjectiveSense(ObjectiveSense::kMaximize);
  std::vector<LinearTerm> t1, t2;
  for (int j = 0; j < 6; ++j) {
    const double c = rng.NextDouble(-3.0, 3.0);
    int a = min_model.AddVariable(0, 3, c);
    int b = max_model.AddVariable(0, 3, -c);
    min_model.SetInteger(a);
    max_model.SetInteger(b);
    const double w = rng.NextDouble(0.5, 2.0);
    t1.push_back({a, w});
    t2.push_back({b, w});
  }
  min_model.AddConstraint(ConstraintType::kGreaterEqual, 4.0, std::move(t1));
  max_model.AddConstraint(ConstraintType::kGreaterEqual, 4.0, std::move(t2));
  MipResult rmin = SolveMip(min_model);
  MipResult rmax = SolveMip(max_model);
  ASSERT_EQ(rmin.status, MipStatus::kOptimal);
  ASSERT_EQ(rmax.status, MipStatus::kOptimal);
  EXPECT_NEAR(rmin.objective, -rmax.objective, 1e-6);
}

// Property: B&B matches exhaustive enumeration on random small MIPs.
class RandomMipTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomMipTest, MatchesBruteForce) {
  Rng rng(500 + GetParam());
  const int n = 2 + static_cast<int>(rng.NextUint64(4));  // 2..5 vars
  const bool maximize = rng.NextBool(0.5);
  LpModel m;
  m.SetObjectiveSense(maximize ? ObjectiveSense::kMaximize
                               : ObjectiveSense::kMinimize);
  for (int j = 0; j < n; ++j) {
    int v = m.AddVariable(0, 1 + rng.NextUint64(3), rng.NextDouble(-3, 3));
    m.SetInteger(v);
  }
  const int k = 1 + static_cast<int>(rng.NextUint64(3));
  for (int c = 0; c < k; ++c) {
    std::vector<LinearTerm> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.NextBool(0.8)) terms.push_back({j, rng.NextDouble(-1.0, 2.0)});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    const double rhs = rng.NextDouble(-1.0, 6.0);
    m.AddConstraint(rng.NextBool(0.7) ? ConstraintType::kLessEqual
                                      : ConstraintType::kGreaterEqual,
                    rhs, std::move(terms));
  }

  std::optional<double> expected = BruteForce(m);
  MipResult r = SolveMip(m);
  if (!expected.has_value()) {
    EXPECT_EQ(r.status, MipStatus::kInfeasible) << "param " << GetParam();
  } else {
    ASSERT_EQ(r.status, MipStatus::kOptimal) << "param " << GetParam();
    EXPECT_NEAR(r.objective, *expected, 1e-5) << "param " << GetParam();
    EXPECT_TRUE(m.CheckFeasible(r.solution, 1e-6).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMipTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace rasa
