#include "cluster/serialization.h"

#include <cstdio>
#include <fstream>
#include <iterator>

#include "core/objective.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace rasa {
namespace {

// Helper: copy a placement's counts onto another (identical) cluster.
Placement RebindForTest(const Cluster& cluster, const Placement& placement) {
  Placement out(cluster);
  for (int m = 0; m < cluster.num_machines(); ++m) {
    for (const auto& [s, count] : placement.ServicesOn(m)) {
      out.Add(m, s, count);
    }
  }
  return out;
}

TEST(SerializationTest, RoundTripPreservesEverything) {
  StatusOr<ClusterSnapshot> original = GenerateCluster(M1Spec(48.0));
  ASSERT_TRUE(original.ok());
  const std::string text = SerializeSnapshot(*original);
  StatusOr<ClusterSnapshot> restored = DeserializeSnapshot(text);
  ASSERT_TRUE(restored.ok()) << restored.status();

  const Cluster& a = *original->cluster;
  const Cluster& b = *restored->cluster;
  EXPECT_EQ(restored->name, original->name);
  EXPECT_EQ(b.num_services(), a.num_services());
  EXPECT_EQ(b.num_machines(), a.num_machines());
  EXPECT_EQ(b.num_resources(), a.num_resources());
  EXPECT_EQ(b.affinity().num_edges(), a.affinity().num_edges());
  EXPECT_EQ(b.anti_affinity().size(), a.anti_affinity().size());
  for (int s = 0; s < a.num_services(); ++s) {
    EXPECT_EQ(b.service(s).name, a.service(s).name);
    EXPECT_EQ(b.service(s).demand, a.service(s).demand);
    EXPECT_EQ(b.service(s).platform, a.service(s).platform);
    EXPECT_EQ(b.service(s).request, a.service(s).request);
  }
  for (int m = 0; m < a.num_machines(); ++m) {
    EXPECT_EQ(b.machine(m).capacity, a.machine(m).capacity);
    EXPECT_EQ(b.machine(m).spec_id, a.machine(m).spec_id);
  }
  // Edge weights to full precision.
  for (const AffinityEdge& e : a.affinity().edges()) {
    EXPECT_DOUBLE_EQ(testing::EdgeWeightOf(b.affinity(), e.u, e.v), e.weight);
  }
  // Placement identical, so the objective matches bit-for-bit.
  EXPECT_EQ(restored->original_placement.DiffCount(
                RebindForTest(b, original->original_placement)),
            0);
  EXPECT_DOUBLE_EQ(GainedAffinity(b, restored->original_placement),
                   GainedAffinity(a, original->original_placement));
}

TEST(SerializationTest, FileRoundTrip) {
  StatusOr<ClusterSnapshot> original = GenerateCluster(M3Spec(16.0));
  ASSERT_TRUE(original.ok());
  const std::string path = "/tmp/rasa_serialization_test.snapshot";
  ASSERT_TRUE(SaveSnapshotToFile(*original, path).ok());
  StatusOr<ClusterSnapshot> restored = LoadSnapshotFromFile(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->cluster->num_containers(),
            original->cluster->num_containers());
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeSnapshot("").ok());
  EXPECT_FALSE(DeserializeSnapshot("not-a-snapshot").ok());
  EXPECT_FALSE(DeserializeSnapshot("rasa-snapshot-v1\nname x\n").ok());
}

TEST(SerializationTest, RejectsTruncatedBody) {
  StatusOr<ClusterSnapshot> original = GenerateCluster(M3Spec(32.0));
  ASSERT_TRUE(original.ok());
  std::string text = SerializeSnapshot(*original);
  text.resize(text.size() / 2);
  EXPECT_FALSE(DeserializeSnapshot(text).ok());
}

TEST(SerializationTest, RejectsBadPlacementIndices) {
  StatusOr<ClusterSnapshot> original = GenerateCluster(M3Spec(32.0));
  ASSERT_TRUE(original.ok());
  std::string text = SerializeSnapshot(*original);
  // Corrupt: replace the placement block with one bogus entry.
  const size_t pos = text.find("placement ");
  ASSERT_NE(pos, std::string::npos);
  text = text.substr(0, pos) + "placement 1\n99999 0 1\nend\n";
  EXPECT_FALSE(DeserializeSnapshot(text).ok());
}

TEST(SerializationTest, MissingFileFails) {
  EXPECT_FALSE(LoadSnapshotFromFile("/nonexistent/foo.snapshot").ok());
}

// Exhaustive torn-write check: a snapshot file truncated at EVERY byte
// prefix must load as a clear error (the checksum footer catches what the
// grammar alone cannot), and the error is an explicit Status — never a
// crash, never a silently half-loaded cluster.
TEST(SerializationTest, EveryTruncationPrefixFailsToLoad) {
  // Small cluster so the byte sweep stays cheap.
  ClusterSpec spec = M3Spec(512.0);
  StatusOr<ClusterSnapshot> original = GenerateCluster(spec);
  ASSERT_TRUE(original.ok());
  const std::string path =
      ::testing::TempDir() + "/rasa_serialization_torn.snapshot";
  ASSERT_TRUE(SaveSnapshotToFile(*original, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string full((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  ASSERT_FALSE(full.empty());

  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(cut));
    out.close();
    StatusOr<ClusterSnapshot> loaded = LoadSnapshotFromFile(path);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << cut << " bytes loaded";
  }
  // The intact file still loads.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(full.size()));
  }
  EXPECT_TRUE(LoadSnapshotFromFile(path).ok());
  std::remove(path.c_str());
}

// Replaces the first occurrence of `from` in a serialized snapshot.
std::string Corrupt(std::string text, const std::string& from,
                    const std::string& to) {
  const size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  return text.replace(pos, from.size(), to);
}

TEST(SerializationTest, RejectsLyingHugeHeaderCounts) {
  StatusOr<ClusterSnapshot> original = GenerateCluster(M3Spec(16.0));
  ASSERT_TRUE(original.ok());
  const std::string text = SerializeSnapshot(*original);
  const std::string services =
      "services " + std::to_string(original->cluster->num_services());
  const std::string machines =
      "machines " + std::to_string(original->cluster->num_machines());
  // A header claiming billions of records must fail cleanly (on the bound
  // check or the first missing record), never allocate first.
  EXPECT_FALSE(
      DeserializeSnapshot(Corrupt(text, services, "services 2000000000"))
          .ok());
  EXPECT_FALSE(
      DeserializeSnapshot(Corrupt(text, services, "services 900000")).ok());
  EXPECT_FALSE(
      DeserializeSnapshot(Corrupt(text, machines, "machines 900000")).ok());
  EXPECT_FALSE(
      DeserializeSnapshot(Corrupt(text, services, "services -3")).ok());
}

TEST(SerializationTest, RejectsAbsurdDemand) {
  const std::string text =
      "rasa-snapshot-v1\n"
      "name t\n"
      "resources 1 cpu\n"
      "services 2\n"
      "svc0 2000000000 0 1.0\n"  // demand overflows the container count
      "svc1 2 0 1.0\n"
      "machines 1\n"
      "m0 0 0 8.0\n"
      "affinity 0\n"
      "anti_affinity 0\n"
      "placement 0\n"
      "end\n";
  EXPECT_FALSE(DeserializeSnapshot(text).ok());
}

TEST(SerializationTest, RejectsNonFiniteValues) {
  StatusOr<ClusterSnapshot> original = GenerateCluster(M3Spec(16.0));
  ASSERT_TRUE(original.ok());
  const std::string text = SerializeSnapshot(*original);
  // Break one machine's first capacity value.
  const Machine& m0 = original->cluster->machine(0);
  const std::string record = "\n" + m0.name + " ";
  const size_t pos = text.find(record);
  ASSERT_NE(pos, std::string::npos);
  const size_t cap = text.find(' ', text.find(' ', pos + record.size()) + 1);
  ASSERT_NE(cap, std::string::npos);
  for (const char* bad : {"nan", "inf", "-1.0", "1e999"}) {
    std::string mutated = text;
    mutated.replace(cap + 1, mutated.find_first_of(" \n", cap + 1) - cap - 1,
                    bad);
    EXPECT_FALSE(DeserializeSnapshot(mutated).ok()) << bad;
  }
}

TEST(SerializationTest, RejectsDimensionMismatchedRows) {
  // Two resources declared, but records carry only one value: the parser
  // must detect the misalignment instead of consuming the next record.
  const std::string text =
      "rasa-snapshot-v1\n"
      "name t\n"
      "resources 2 cpu mem\n"
      "services 1\n"
      "svc0 2 0 1.0\n"  // missing the mem request
      "machines 1\n"
      "m0 0 0 8.0 8.0\n"
      "affinity 0\n"
      "anti_affinity 0\n"
      "placement 0\n"
      "end\n";
  EXPECT_FALSE(DeserializeSnapshot(text).ok());
}

TEST(SerializationTest, RejectsPlacementOverCapacityTotals) {
  const std::string text =
      "rasa-snapshot-v1\n"
      "name t\n"
      "resources 1 cpu\n"
      "services 1\n"
      "svc0 4 0 1.0\n"
      "machines 1\n"
      "m0 0 0 8.0\n"
      "affinity 0\n"
      "anti_affinity 0\n"
      "placement 1\n"
      "0 0 -7\n"  // negative count
      "end\n";
  EXPECT_FALSE(DeserializeSnapshot(text).ok());
}

}  // namespace
}  // namespace rasa
