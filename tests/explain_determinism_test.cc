// The observation-only contract of the explain layer: the optimizer's
// placement AND its explain report are bit-identical with the solve ledger
// on or off, at every thread count. The report is rendered without
// wall-clock fields (AppendExplainJson include_timings=false) and compared
// as a string — one differing byte anywhere (a record out of canonical
// order, an attempt outcome that depends on worker scheduling, a float
// that drifted) fails the test.

#include <string>
#include <vector>

#include "cluster/generator.h"
#include "common/json_writer.h"
#include "common/logging.h"
#include "core/explain.h"
#include "core/rasa.h"
#include "core/solve_ledger.h"
#include "gtest/gtest.h"

namespace rasa {
namespace {

ClusterSnapshot MakeCluster(uint64_t seed) {
  ClusterSpec spec = M1Spec(48.0);
  spec.seed = seed;
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  RASA_CHECK(snapshot.ok()) << snapshot.status().ToString();
  return std::move(snapshot).value();
}

RasaResult RunOptimize(const ClusterSnapshot& snapshot, int threads) {
  RasaOptions options;
  // Generous budget + small subproblems: no solve is ever cut off
  // mid-flight, so the comparison never races the wall clock (same regime
  // as core_rasa_determinism_test / metrics_determinism_test).
  options.timeout_seconds = 30.0;
  options.seed = 1234;
  options.num_threads = threads;
  options.partitioning.max_subproblem_services = 12;
  RasaOptimizer optimizer(options,
                          AlgorithmSelector(SelectorPolicy::kHeuristic));
  StatusOr<RasaResult> result =
      optimizer.Optimize(*snapshot.cluster, snapshot.original_placement);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

std::string RenderWithoutTimings(const RasaResult& result) {
  JsonWriter writer;
  AppendExplainJson(writer, result.report, /*include_timings=*/false);
  return writer.str();
}

TEST(ExplainDeterminismTest, LedgerOnOffBitIdenticalAcrossThreadCounts) {
  const ClusterSnapshot snapshot = MakeCluster(17);
  ASSERT_TRUE(SolveLedgerEnabled());

  // The 1-thread ledger-on run is the reference everything must match.
  const RasaResult reference = RunOptimize(snapshot, 1);
  const std::string reference_report = RenderWithoutTimings(reference);
  ASSERT_TRUE(reference.report.populated);
  ASSERT_GT(reference.report.records.size(), 1u);

  for (int threads : {1, 4, 8}) {
    SCOPED_TRACE(::testing::Message() << threads << " threads");

    const RasaResult with_ledger = RunOptimize(snapshot, threads);

    SetSolveLedgerEnabled(false);
    const RasaResult without_ledger = RunOptimize(snapshot, threads);
    SetSolveLedgerEnabled(true);

    for (const RasaResult* result : {&with_ledger, &without_ledger}) {
      EXPECT_EQ(result->new_placement.DiffCount(reference.new_placement), 0);
      EXPECT_EQ(reference.new_placement.DiffCount(result->new_placement), 0);
      EXPECT_EQ(result->new_gained_affinity, reference.new_gained_affinity);
      EXPECT_EQ(RenderWithoutTimings(*result), reference_report);
    }
  }
}

TEST(ExplainDeterminismTest, GlobalLedgerMatchesResultRecords) {
  const ClusterSnapshot snapshot = MakeCluster(23);
  SolveLedger& ledger = SolveLedger::Default();
  ledger.Reset();
  const RasaResult result = RunOptimize(snapshot, 4);
  const std::vector<LedgerRecord> recorded = ledger.Records();
  ASSERT_EQ(recorded.size(), result.report.records.size());
  for (size_t i = 0; i < recorded.size(); ++i) {
    EXPECT_EQ(recorded[i].subproblem, result.report.records[i].subproblem);
    EXPECT_EQ(recorded[i].position, result.report.records[i].position);
    EXPECT_EQ(recorded[i].realized_affinity,
              result.report.records[i].realized_affinity);
  }
  ledger.Reset();
}

}  // namespace
}  // namespace rasa
