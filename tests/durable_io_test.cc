#include "common/durable_io.h"

#include <cstdio>
#include <string>

#include "gtest/gtest.h"
#include "sim/fault_injection.h"

namespace rasa {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/rasa_durable_io_" + name;
}

TEST(Crc32Test, KnownAnswer) {
  // The IEEE 802.3 check value: CRC-32 of "123456789".
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(check), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, SeedChainsIncrementalComputation) {
  const std::string a = "hello, ";
  const std::string b = "durable world";
  EXPECT_EQ(Crc32(b, Crc32(a)), Crc32(a + b));
}

TEST(AtomicWriteTest, WritesAndOverwrites) {
  const std::string path = TestPath("atomic");
  ASSERT_TRUE(AtomicWriteFile(path, "first\n").ok());
  StatusOr<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "first\n");

  // Overwrite is atomic too: the old content is fully replaced.
  ASSERT_TRUE(AtomicWriteFile(path, "second, longer content\n").ok());
  read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "second, longer content\n");
  std::remove(path.c_str());
}

TEST(AtomicWriteTest, MissingFileReadsAsNotFound) {
  StatusOr<std::string> read = ReadFileToString(TestPath("missing"));
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(EnsureDirectoryTest, CreatesNestedDirectories) {
  const std::string dir = TestPath("nested/a/b/c");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  // Idempotent.
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  // And usable.
  EXPECT_TRUE(AtomicWriteFile(dir + "/probe", "x").ok());
}

TEST(VersionedFileTest, RoundTripsArbitraryPayload) {
  const std::string path = TestPath("versioned");
  // Embedded NUL and high bytes: the frame is length-delimited, not
  // terminator-delimited.
  const char raw[] = "line one\nline two with spaces\n\0binary-ish\x7f tail";
  const std::string payload(raw, sizeof(raw) - 1);
  ASSERT_TRUE(WriteVersionedFile(path, payload).ok());
  StatusOr<std::string> read = ReadVersionedFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, payload);
  std::remove(path.c_str());
}

TEST(VersionedFileTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadVersionedFile(TestPath("versioned_missing")).status().code(),
            StatusCode::kNotFound);
}

// A versioned file truncated at ANY proper byte prefix must be rejected as
// a torn write — never parsed, never crash.
TEST(VersionedFileTest, EveryTruncationPrefixIsRejected) {
  const std::string path = TestPath("versioned_torn");
  const std::string payload = "checkpoint payload: cycle 7, rng abc123\n";
  ASSERT_TRUE(WriteVersionedFile(path, payload).ok());
  StatusOr<std::string> full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  for (size_t cut = 0; cut < full->size(); ++cut) {
    ASSERT_TRUE(AtomicWriteFile(path, full->substr(0, cut)).ok());
    StatusOr<std::string> read = ReadVersionedFile(path);
    EXPECT_FALSE(read.ok()) << "prefix of " << cut << " bytes parsed";
    EXPECT_EQ(read.status().code(), StatusCode::kFailedPrecondition)
        << "prefix of " << cut << " bytes: " << read.status().ToString();
  }
  std::remove(path.c_str());
}

TEST(VersionedFileTest, CorruptedByteIsRejected) {
  const std::string path = TestPath("versioned_flip");
  ASSERT_TRUE(WriteVersionedFile(path, "payload under checksum").ok());
  StatusOr<std::string> full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  std::string flipped = *full;
  flipped[flipped.size() - 3] ^= 0x20;  // flip a payload bit
  ASSERT_TRUE(AtomicWriteFile(path, flipped).ok());
  EXPECT_EQ(ReadVersionedFile(path).status().code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(DurableLogTest, AppendsAndReadsBack) {
  const std::string path = TestPath("log");
  std::remove(path.c_str());
  {
    StatusOr<DurableLogWriter> log = DurableLogWriter::Open(path);
    ASSERT_TRUE(log.ok()) << log.status();
    ASSERT_TRUE(log->Append("first record").ok());
    ASSERT_TRUE(log->Append("").ok());  // empty payloads are legal
    ASSERT_TRUE(log->Append("third\nwith embedded newline").ok());
  }
  StatusOr<DurableLogContents> scan = ReadDurableLog(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_FALSE(scan->torn_tail);
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_EQ(scan->records[0], "first record");
  EXPECT_EQ(scan->records[1], "");
  EXPECT_EQ(scan->records[2], "third\nwith embedded newline");
  std::remove(path.c_str());
}

TEST(DurableLogTest, ReopenAppendsAfterExistingRecords) {
  const std::string path = TestPath("log_reopen");
  std::remove(path.c_str());
  {
    StatusOr<DurableLogWriter> log = DurableLogWriter::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append("before crash").ok());
  }
  {
    StatusOr<DurableLogWriter> log = DurableLogWriter::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append("after restart").ok());
  }
  StatusOr<DurableLogContents> scan = ReadDurableLog(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0], "before crash");
  EXPECT_EQ(scan->records[1], "after restart");
  std::remove(path.c_str());
}

// Truncating the log at every byte offset: all records before the cut
// survive intact, the frame containing the cut reads as torn (or is simply
// gone when the cut lands exactly on a frame boundary), and nothing after
// the cut is ever resurrected.
TEST(DurableLogTest, TruncationAtEveryOffsetKeepsTheValidPrefix) {
  const std::string path = TestPath("log_torn");
  const std::vector<std::string> payloads = {"alpha", "bravo charlie",
                                             "delta"};
  std::remove(path.c_str());
  {
    StatusOr<DurableLogWriter> log = DurableLogWriter::Open(path);
    ASSERT_TRUE(log.ok());
    for (const std::string& p : payloads) ASSERT_TRUE(log->Append(p).ok());
  }
  StatusOr<std::string> full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());

  {
    StatusOr<DurableLogContents> scan = ReadDurableLog(path);
    ASSERT_TRUE(scan.ok());
    ASSERT_EQ(scan->valid_bytes, full->size());
  }

  for (size_t cut = 0; cut < full->size(); ++cut) {
    ASSERT_TRUE(AtomicWriteFile(path, full->substr(0, cut)).ok());
    StatusOr<DurableLogContents> scan = ReadDurableLog(path);
    ASSERT_TRUE(scan.ok()) << "cut at " << cut << ": " << scan.status();
    // Every surviving record is a true prefix of what was written.
    ASSERT_LE(scan->records.size(), payloads.size());
    for (size_t r = 0; r < scan->records.size(); ++r) {
      EXPECT_EQ(scan->records[r], payloads[r]) << "cut at " << cut;
    }
    // A cut strictly inside a frame must be flagged torn.
    EXPECT_EQ(scan->torn_tail, cut != scan->valid_bytes)
        << "cut at " << cut << " valid_bytes " << scan->valid_bytes;
    EXPECT_LE(scan->valid_bytes, cut);
  }
  std::remove(path.c_str());
}

TEST(TruncateFileAtTest, TruncatesRefusesToExtendAndReportsMissing) {
  const std::string path = TestPath("truncate");
  ASSERT_TRUE(AtomicWriteFile(path, "0123456789").ok());
  ASSERT_TRUE(TruncateFileAt(path, 4).ok());
  StatusOr<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "0123");
  EXPECT_EQ(TruncateFileAt(path, 100).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(TruncateFileAt(TestPath("truncate_missing"), 0).code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rasa
