// The shared JSON plumbing under the metrics exporter, the bench result
// writers, and the explain reports. Escaping must be exact: one bad byte
// makes every downstream BENCH_*.json / --metrics-out file unparseable.

#include <cmath>
#include <limits>
#include <string>

#include "common/json_writer.h"
#include "gtest/gtest.h"

namespace rasa {
namespace {

TEST(JsonWriterEscapeTest, PassesPlainAsciiThrough) {
  EXPECT_EQ(JsonWriter::Escaped("hello world_42.json"),
            "hello world_42.json");
  EXPECT_EQ(JsonWriter::Escaped(""), "");
}

TEST(JsonWriterEscapeTest, QuotesAndBackslashes) {
  EXPECT_EQ(JsonWriter::Escaped("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonWriter::Escaped("C:\\temp\\x"), "C:\\\\temp\\\\x");
  // A backslash followed by a quote must stay two separate escapes.
  EXPECT_EQ(JsonWriter::Escaped("\\\""), "\\\\\\\"");
}

TEST(JsonWriterEscapeTest, NamedControlCharacters) {
  EXPECT_EQ(JsonWriter::Escaped("a\nb"), "a\\nb");
  EXPECT_EQ(JsonWriter::Escaped("a\tb"), "a\\tb");
  EXPECT_EQ(JsonWriter::Escaped("a\rb"), "a\\rb");
}

TEST(JsonWriterEscapeTest, OtherControlCharactersBecomeUnicodeEscapes) {
  EXPECT_EQ(JsonWriter::Escaped(std::string("a\x01"
                                            "b")),
            "a\\u0001b");
  EXPECT_EQ(JsonWriter::Escaped(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(JsonWriter::Escaped(std::string(1, '\0')), "\\u0000");
  EXPECT_EQ(JsonWriter::Escaped("\b"), "\\u0008");
  EXPECT_EQ(JsonWriter::Escaped("\f"), "\\u000c");
}

TEST(JsonWriterEscapeTest, NonAsciiBytesPassThroughVerbatim) {
  // UTF-8 payloads (service names may carry them) are emitted as-is; JSON
  // strings are UTF-8 by definition.
  const std::string utf8 = "caf\xc3\xa9 \xe2\x9c\x93";
  EXPECT_EQ(JsonWriter::Escaped(utf8), utf8);
  // 0x7f (DEL) is not below 0x20 and passes through.
  EXPECT_EQ(JsonWriter::Escaped("\x7f"), "\x7f");
}

TEST(JsonWriterTest, NonFiniteDoublesDegradeToNull) {
  JsonWriter w;
  w.BeginObject();
  w.Key("nan").Value(std::numeric_limits<double>::quiet_NaN());
  w.Key("inf").Value(std::numeric_limits<double>::infinity());
  w.Key("ninf").Value(-std::numeric_limits<double>::infinity());
  w.Key("ok").Value(1.5);
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"nan\": null, \"inf\": null, \"ninf\": null, \"ok\": 1.5}");
}

TEST(JsonWriterTest, NestedStructureAndCommas) {
  JsonWriter w;
  w.BeginObject();
  w.Key("list").BeginArray();
  w.Value(1).Value(2);
  w.BeginObject().Key("k").Value("v").EndObject();
  w.EndArray();
  w.Key("flag").Value(true);
  w.Key("none").Value(false);
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"list\": [1, 2, {\"k\": \"v\"}], \"flag\": true, "
            "\"none\": false}");
}

TEST(JsonWriterTest, RoundTripPrecisionForDoubles) {
  JsonWriter w;
  w.BeginArray();
  w.Value(0.1);
  w.Value(1.0 / 3.0);
  w.EndArray();
  // %.17g preserves every bit of a double.
  double a = 0.0, b = 0.0;
  ASSERT_EQ(std::sscanf(w.str().c_str(), "[%lf, %lf]", &a, &b), 2);
  EXPECT_EQ(a, 0.1);
  EXPECT_EQ(b, 1.0 / 3.0);
}

TEST(JsonWriterTest, EscapedKeysAndValues) {
  JsonWriter w;
  w.BeginObject();
  w.Key("weird\"key\n").Value("tab\there");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"weird\\\"key\\n\": \"tab\\there\"}");
}

}  // namespace
}  // namespace rasa
