// The bench_compare library: parsing the BenchJsonWriter file format and
// the regression-detection rules (row identity, metric direction, the 10%
// relative tolerance, the absolute floor).

#include <string>
#include <vector>

#include "bench/bench_compare_lib.h"
#include "gtest/gtest.h"

namespace rasa::bench {
namespace {

std::vector<BenchRow> MustParse(const std::string& text) {
  std::vector<BenchRow> rows;
  std::string error;
  EXPECT_TRUE(ParseBenchJson(text, &rows, &error)) << error;
  return rows;
}

TEST(BenchCompareParseTest, ParsesTheWriterFormat) {
  const std::vector<BenchRow> rows = MustParse(
      "[\n"
      "  {\"cluster\": \"M1\", \"threads\": 1, \"seconds\": "
      "0.25048828124999997, \"identical_to_sequential\": true},\n"
      "  {\"cluster\": \"M2\", \"threads\": 8, \"speedup\": 3.1, "
      "\"note\": null}\n"
      "]\n");
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(rows[0].size(), 4u);
  EXPECT_EQ(rows[0][0].first, "cluster");
  EXPECT_EQ(rows[0][0].second.kind, BenchValue::Kind::kString);
  EXPECT_EQ(rows[0][0].second.str, "M1");
  EXPECT_EQ(rows[0][1].second.kind, BenchValue::Kind::kNumber);
  EXPECT_EQ(rows[0][1].second.num, 1.0);
  EXPECT_EQ(rows[0][2].second.num, 0.25048828124999997);
  EXPECT_TRUE(rows[0][3].second.boolean);
  EXPECT_EQ(rows[1][3].second.kind, BenchValue::Kind::kNull);
}

TEST(BenchCompareParseTest, DecodesStringEscapes) {
  const std::vector<BenchRow> rows = MustParse(
      "[{\"name\": \"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"}]");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].second.str, "a\"b\\c\n\tA\xc3\xa9");
}

TEST(BenchCompareParseTest, EmptyArrayAndErrors) {
  EXPECT_TRUE(MustParse("[]").empty());
  EXPECT_TRUE(MustParse(" [ ] ").empty());
  std::vector<BenchRow> rows;
  std::string error;
  EXPECT_FALSE(ParseBenchJson("{\"not\": \"an array\"}", &rows, &error));
  EXPECT_FALSE(ParseBenchJson("[{\"k\": }]", &rows, &error));
  EXPECT_FALSE(ParseBenchJson("[{\"k\": 1}", &rows, &error));
  EXPECT_FALSE(ParseBenchJson("[{\"k\": \"unterminated}]", &rows, &error));
  EXPECT_FALSE(error.empty());
}

TEST(BenchCompareTest, MetricClassification) {
  EXPECT_TRUE(IsLowerBetter("seconds"));
  EXPECT_TRUE(IsLowerBetter("solve_time_p99"));
  EXPECT_TRUE(IsLowerBetter("commands_failed"));
  EXPECT_TRUE(IsHigherBetter("speedup"));
  EXPECT_TRUE(IsHigherBetter("gained_affinity"));
  EXPECT_FALSE(IsLowerBetter("gained_affinity"));
  EXPECT_TRUE(IsAxisKey("threads"));
  EXPECT_FALSE(IsAxisKey("seconds"));
}

BenchRow Row(const std::string& cluster, int threads, double seconds,
             double affinity) {
  BenchRow row;
  BenchValue name;
  name.kind = BenchValue::Kind::kString;
  name.str = cluster;
  row.emplace_back("cluster", name);
  BenchValue t;
  t.kind = BenchValue::Kind::kNumber;
  t.num = threads;
  row.emplace_back("threads", t);
  BenchValue s = t;
  s.num = seconds;
  row.emplace_back("seconds", s);
  BenchValue a = t;
  a.num = affinity;
  row.emplace_back("gained_affinity", a);
  return row;
}

TEST(BenchCompareTest, SelfCompareHasNoRegressions) {
  const std::vector<BenchRow> rows = {Row("M1", 1, 0.5, 0.8),
                                      Row("M1", 8, 0.1, 0.8)};
  const CompareReport report = CompareBench(rows, rows);
  EXPECT_EQ(report.regressions, 0);
  EXPECT_EQ(report.deltas.size(), 4u);  // 2 rows x (seconds, affinity)
  EXPECT_TRUE(report.missing_in_candidate.empty());
  EXPECT_TRUE(report.missing_in_baseline.empty());
}

TEST(BenchCompareTest, FlagsSlowdownsAndQualityDropsBeyondTolerance) {
  const std::vector<BenchRow> baseline = {Row("M1", 1, 1.0, 0.80)};
  // 20% slower: regression. 5% affinity drop: within default nothing?
  // 0.80 -> 0.76 is exactly 5% — under the 10% tolerance.
  const std::vector<BenchRow> ok = {Row("M1", 1, 1.05, 0.76)};
  EXPECT_EQ(CompareBench(baseline, ok).regressions, 0);

  const std::vector<BenchRow> slow = {Row("M1", 1, 1.2, 0.80)};
  const CompareReport slow_report = CompareBench(baseline, slow);
  EXPECT_EQ(slow_report.regressions, 1);
  bool found = false;
  for (const MetricDelta& d : slow_report.deltas) {
    if (d.key != "seconds") continue;
    found = true;
    EXPECT_TRUE(d.regression);
    EXPECT_NEAR(d.relative_worse, 0.2, 1e-12);
  }
  EXPECT_TRUE(found);

  const std::vector<BenchRow> worse_quality = {Row("M1", 1, 1.0, 0.60)};
  EXPECT_EQ(CompareBench(baseline, worse_quality).regressions, 1);

  // Better in both directions never regresses.
  const std::vector<BenchRow> better = {Row("M1", 1, 0.5, 0.95)};
  EXPECT_EQ(CompareBench(baseline, better).regressions, 0);
}

TEST(BenchCompareTest, ToleranceIsConfigurable) {
  const std::vector<BenchRow> baseline = {Row("M1", 1, 1.0, 0.8)};
  const std::vector<BenchRow> candidate = {Row("M1", 1, 1.05, 0.8)};
  CompareOptions strict;
  strict.tolerance = 0.01;
  EXPECT_EQ(CompareBench(baseline, candidate, strict).regressions, 1);
  CompareOptions loose;
  loose.tolerance = 0.5;
  EXPECT_EQ(CompareBench(baseline, candidate, loose).regressions, 0);
}

TEST(BenchCompareTest, AbsoluteFloorGuardsZeroBaselines) {
  // 0 -> 1e-12 seconds is relatively huge but absolutely nothing.
  const std::vector<BenchRow> baseline = {Row("M1", 1, 0.0, 0.8)};
  const std::vector<BenchRow> candidate = {Row("M1", 1, 1e-12, 0.8)};
  EXPECT_EQ(CompareBench(baseline, candidate).regressions, 0);
  // 0 -> 0.5 seconds is a real regression even with a zero baseline.
  const std::vector<BenchRow> bad = {Row("M1", 1, 0.5, 0.8)};
  EXPECT_EQ(CompareBench(baseline, bad).regressions, 1);
}

TEST(BenchCompareTest, RowsMatchByIdentityNotOrder) {
  const std::vector<BenchRow> baseline = {Row("M1", 1, 1.0, 0.8),
                                          Row("M2", 1, 2.0, 0.7)};
  const std::vector<BenchRow> candidate = {Row("M2", 1, 2.0, 0.7),
                                           Row("M1", 1, 1.0, 0.8)};
  const CompareReport report = CompareBench(baseline, candidate);
  EXPECT_EQ(report.regressions, 0);
  EXPECT_TRUE(report.missing_in_candidate.empty());
}

TEST(BenchCompareTest, UnmatchedRowsAreReportedNotFlagged) {
  const std::vector<BenchRow> baseline = {Row("M1", 1, 1.0, 0.8),
                                          Row("M3", 1, 1.0, 0.8)};
  const std::vector<BenchRow> candidate = {Row("M1", 1, 1.0, 0.8),
                                           Row("M4", 1, 1.0, 0.8)};
  const CompareReport report = CompareBench(baseline, candidate);
  EXPECT_EQ(report.regressions, 0);
  ASSERT_EQ(report.missing_in_candidate.size(), 1u);
  EXPECT_NE(report.missing_in_candidate[0].find("M3"), std::string::npos);
  ASSERT_EQ(report.missing_in_baseline.size(), 1u);
  EXPECT_NE(report.missing_in_baseline[0].find("M4"), std::string::npos);
}

TEST(BenchCompareTest, FormatMentionsRegressionsAndTally) {
  const std::vector<BenchRow> baseline = {Row("M1", 1, 1.0, 0.8)};
  const std::vector<BenchRow> candidate = {Row("M1", 1, 2.0, 0.8)};
  const CompareOptions options;
  const CompareReport report = CompareBench(baseline, candidate, options);
  const std::string text = FormatCompareReport(report, options);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("seconds"), std::string::npos);
  EXPECT_NE(text.find("1 regression(s)"), std::string::npos);
}

}  // namespace
}  // namespace rasa::bench
