#include "core/objective.h"

#include "core/subproblem.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace rasa {
namespace {

using ::rasa::testing::ClusterBuilder;

// Two services, 50% of pair traffic collocatable — the Fig. 2(a) example.
TEST(ObjectiveTest, PaperFigureTwoExample) {
  auto cluster = ClusterBuilder()
                     .AddService(2, {1.0})  // Service A: 2 containers
                     .AddService(2, {1.0})  // Service B: 2 containers
                     .AddMachine({10.0})
                     .AddMachine({10.0})
                     .AddMachine({10.0})
                     .AddAffinity(0, 1, 1.0)
                     .Build();
  Placement p(*cluster);
  // One A and one B collocated on machine 0; the other two containers on
  // separate machines.
  p.Add(0, 0, 1);
  p.Add(0, 1, 1);
  p.Add(1, 0, 1);
  p.Add(2, 1, 1);
  EXPECT_DOUBLE_EQ(
      PairGainedAffinityOnMachine(*cluster, p, 0, 1, 1.0, 0), 0.5);
  EXPECT_DOUBLE_EQ(PairLocalizationRatio(*cluster, p, 0, 1), 0.5);
  EXPECT_DOUBLE_EQ(GainedAffinity(*cluster, p), 0.5);
}

TEST(ObjectiveTest, FullCollocationReachesTotalAffinity) {
  auto cluster = ClusterBuilder()
                     .AddService(2, {1.0})
                     .AddService(2, {1.0})
                     .AddMachine({10.0})
                     .AddMachine({10.0})
                     .AddAffinity(0, 1, 1.0)
                     .Build();
  Placement p(*cluster);
  p.Add(0, 0, 1);
  p.Add(0, 1, 1);
  p.Add(1, 0, 1);
  p.Add(1, 1, 1);
  EXPECT_DOUBLE_EQ(GainedAffinity(*cluster, p), 1.0);
}

TEST(ObjectiveTest, NoCollocationGainsNothing) {
  auto cluster = ClusterBuilder()
                     .AddService(1, {1.0})
                     .AddService(1, {1.0})
                     .AddMachine({10.0})
                     .AddMachine({10.0})
                     .AddAffinity(0, 1, 0.7)
                     .Build();
  Placement p(*cluster);
  p.Add(0, 0, 1);
  p.Add(1, 1, 1);
  EXPECT_DOUBLE_EQ(GainedAffinity(*cluster, p), 0.0);
}

TEST(ObjectiveTest, MinTakesBottleneckSide) {
  // d_A = 4 with 3 on the machine; d_B = 2 with 1 on the machine:
  // min(3/4, 1/2) = 1/2.
  auto cluster = ClusterBuilder()
                     .AddService(4, {1.0})
                     .AddService(2, {1.0})
                     .AddMachine({10.0})
                     .AddMachine({10.0})
                     .AddAffinity(0, 1, 1.0)
                     .Build();
  Placement p(*cluster);
  p.Add(0, 0, 3);
  p.Add(0, 1, 1);
  p.Add(1, 0, 1);
  p.Add(1, 1, 1);
  EXPECT_DOUBLE_EQ(
      PairGainedAffinityOnMachine(*cluster, p, 0, 1, 1.0, 0), 0.5);
  EXPECT_DOUBLE_EQ(PairGainedAffinityOnMachine(*cluster, p, 0, 1, 1.0, 1),
                   0.25);
  EXPECT_DOUBLE_EQ(PairLocalizationRatio(*cluster, p, 0, 1), 0.75);
}

TEST(ObjectiveTest, RatioIsCappedAtOne) {
  // Under-deployment quirks cannot push the ratio past 1.
  auto cluster = ClusterBuilder()
                     .AddService(1, {1.0})
                     .AddService(1, {1.0})
                     .AddMachine({10.0})
                     .AddAffinity(0, 1, 1.0)
                     .Build();
  Placement p(*cluster);
  p.Add(0, 0, 1);
  p.Add(0, 1, 1);
  EXPECT_DOUBLE_EQ(PairLocalizationRatio(*cluster, p, 0, 1), 1.0);
}

TEST(ObjectiveTest, ZeroDemandServiceContributesNothing) {
  auto cluster = ClusterBuilder()
                     .AddService(0, {1.0})
                     .AddService(1, {1.0})
                     .AddMachine({10.0})
                     .AddAffinity(0, 1, 1.0)
                     .Build();
  Placement p(*cluster);
  p.Add(0, 1, 1);
  EXPECT_DOUBLE_EQ(GainedAffinity(*cluster, p), 0.0);
}

TEST(ObjectiveTest, WeightsScaleContributions) {
  auto cluster = ClusterBuilder()
                     .AddService(1, {1.0})
                     .AddService(1, {1.0})
                     .AddService(1, {1.0})
                     .AddMachine({10.0})
                     .AddAffinity(0, 1, 0.3)
                     .AddAffinity(1, 2, 0.7)
                     .Build();
  Placement p(*cluster);
  p.Add(0, 0, 1);
  p.Add(0, 1, 1);
  p.Add(0, 2, 1);
  EXPECT_DOUBLE_EQ(GainedAffinity(*cluster, p), 1.0);
  ASSERT_TRUE(p.Remove(0, 2, 1).ok());
  EXPECT_DOUBLE_EQ(GainedAffinity(*cluster, p), 0.3);
}

TEST(ObjectiveTest, EdgeLocalizationRatiosAlignWithEdges) {
  auto cluster = ClusterBuilder()
                     .AddService(1, {1.0})
                     .AddService(1, {1.0})
                     .AddService(1, {1.0})
                     .AddMachine({10.0})
                     .AddMachine({10.0})
                     .AddAffinity(0, 1, 0.4)
                     .AddAffinity(0, 2, 0.6)
                     .Build();
  Placement p(*cluster);
  p.Add(0, 0, 1);
  p.Add(0, 1, 1);
  p.Add(1, 2, 1);
  std::vector<double> ratios = EdgeLocalizationRatios(*cluster, p);
  ASSERT_EQ(ratios.size(), 2u);
  const auto& edges = cluster->affinity().edges();
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].v == 1) {
      EXPECT_DOUBLE_EQ(ratios[i], 1.0);
    } else {
      EXPECT_DOUBLE_EQ(ratios[i], 0.0);
    }
  }
}

// ----------------------------------------------------------- Subproblem ---

TEST(SubproblemTest, PopulateEdgesKeepsInternalOnly) {
  auto cluster = ClusterBuilder()
                     .AddService(1, {1.0})
                     .AddService(1, {1.0})
                     .AddService(1, {1.0})
                     .AddMachine({10.0})
                     .AddAffinity(0, 1, 0.4)
                     .AddAffinity(1, 2, 0.6)
                     .Build();
  Subproblem sp;
  sp.services = {0, 1};
  PopulateSubproblemEdges(*cluster, sp);
  ASSERT_EQ(sp.edges.size(), 1u);
  EXPECT_EQ(sp.edges[0].u, 0);
  EXPECT_EQ(sp.edges[0].v, 1);
  EXPECT_DOUBLE_EQ(sp.internal_affinity, 0.4);
}

TEST(SubproblemTest, ResidualCapacityAccountsForBaseResidents) {
  auto cluster = ClusterBuilder()
                     .AddService(2, {3.0})
                     .AddMachine({10.0})
                     .Build();
  Placement base(*cluster);
  base.Add(0, 0, 2);
  EXPECT_DOUBLE_EQ(ResidualCapacity(*cluster, base, 0, 0), 4.0);
}

TEST(SubproblemTest, ResidualRuleLimitAccountsForResidents) {
  auto cluster = ClusterBuilder()
                     .AddService(4, {1.0})
                     .AddMachine({10.0})
                     .AddRule({0}, 3)
                     .Build();
  Placement base(*cluster);
  base.Add(0, 0, 2);
  EXPECT_EQ(ResidualRuleLimit(*cluster, base, 0, 0), 1);
}

TEST(SubproblemTest, GainedAffinityMatchesObjectiveModule) {
  auto cluster = ClusterBuilder()
                     .AddService(2, {1.0})
                     .AddService(2, {1.0})
                     .AddMachine({10.0})
                     .AddMachine({10.0})
                     .AddAffinity(0, 1, 1.0)
                     .Build();
  Subproblem sp;
  sp.services = {0, 1};
  sp.machines = {0, 1};
  PopulateSubproblemEdges(*cluster, sp);
  // x: service 0 -> [1 on m0, 1 on m1], service 1 -> [1 on m0, 1 on m1].
  std::vector<std::vector<int>> x = {{1, 1}, {1, 1}};
  EXPECT_DOUBLE_EQ(SubproblemGainedAffinity(*cluster, sp, x), 1.0);
  std::vector<std::vector<int>> y = {{2, 0}, {0, 2}};
  EXPECT_DOUBLE_EQ(SubproblemGainedAffinity(*cluster, sp, y), 0.0);
}

}  // namespace
}  // namespace rasa
