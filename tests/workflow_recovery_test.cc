// Chaos-recovery determinism suite (the tentpole acceptance criterion):
// for every simulated crash point — mid-command, mid-batch, mid-drift,
// before-checkpoint — and for torn-write truncation of the durable files,
// recover + resume must finish with zero SLA/feasibility violations and a
// final placement bit-identical to the uninterrupted run, at 1, 4 and 8
// solver threads.

#include <map>
#include <string>
#include <vector>

#include "cluster/generator.h"
#include "common/durable_io.h"
#include "common/logging.h"
#include "core/objective.h"
#include "core/recovery.h"
#include "gtest/gtest.h"
#include "sim/fault_injection.h"
#include "sim/workflow.h"

namespace rasa {
namespace {

constexpr int kThreadCounts[] = {1, 4, 8};

const ClusterSnapshot& TestSnapshot() {
  static const ClusterSnapshot* snapshot = [] {
    ClusterSpec spec = M3Spec(16.0);
    spec.seed = 41;
    StatusOr<ClusterSnapshot> s = GenerateCluster(spec);
    EXPECT_TRUE(s.ok());
    return new ClusterSnapshot(*std::move(s));
  }();
  return *snapshot;
}

WorkflowOptions BaseOptions(int threads) {
  WorkflowOptions options;
  options.cycles = 3;
  // Bounded subproblems plus a generous deadline: the solve finishes well
  // inside its slice even when ctest runs the whole suite in parallel, so
  // Deadline::Expired() never fires and the output is bit-reproducible
  // regardless of machine load (same reasoning as
  // core_rasa_determinism_test).
  options.rasa.timeout_seconds = 15.0;
  options.rasa.partitioning.max_subproblem_services = 12;
  options.rasa.num_threads = threads;
  options.seed = 2024;
  return options;
}

std::string FreshStateDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/rasa_wf_recovery_" + name;
  std::remove((dir + "/journal.wal").c_str());
  std::remove((dir + "/checkpoint").c_str());
  std::remove((dir + "/checkpoint.prev").c_str());
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  return dir;
}

WorkflowReport MustRun(const WorkflowOptions& options,
                       const Placement& initial) {
  StatusOr<WorkflowReport> report = RunWorkflow(
      *TestSnapshot().cluster, initial,
      AlgorithmSelector(SelectorPolicy::kHeuristic), options);
  RASA_CHECK(report.ok()) << report.status().ToString();
  return *std::move(report);
}

// The uninterrupted durable run at `threads`, computed once per thread
// count and shared by every crash scenario.
const WorkflowReport& Baseline(int threads) {
  static std::map<int, WorkflowReport>* cache =
      new std::map<int, WorkflowReport>();
  auto it = cache->find(threads);
  if (it == cache->end()) {
    WorkflowOptions options = BaseOptions(threads);
    options.state_dir =
        FreshStateDir("baseline_t" + std::to_string(threads));
    it = cache
             ->emplace(threads,
                       MustRun(options, TestSnapshot().original_placement))
             .first;
    EXPECT_FALSE(it->second.crashed);
    EXPECT_EQ(it->second.sla_violations, 0);
    EXPECT_EQ(it->second.feasibility_violations, 0);
  }
  return it->second;
}

// Runs to the given crash point (asserting it fired), then resumes from the
// crashed world and checks the recovery contract: no violations, and the
// final placement bit-identical to the uninterrupted run.
void CheckCrashRecovery(const std::string& name, int threads,
                        const FaultInjectionOptions& crash_faults) {
  SCOPED_TRACE(name + " threads=" + std::to_string(threads));
  const WorkflowReport& baseline = Baseline(threads);
  const std::string dir =
      FreshStateDir(name + "_t" + std::to_string(threads));

  WorkflowOptions crash_options = BaseOptions(threads);
  crash_options.state_dir = dir;
  crash_options.inject_faults = true;
  crash_options.faults = crash_faults;
  const WorkflowReport crashed =
      MustRun(crash_options, TestSnapshot().original_placement);
  ASSERT_TRUE(crashed.crashed) << "crash point never fired";

  // Restart: the new controller observes the dead one's live placement.
  WorkflowOptions resume_options = BaseOptions(threads);
  resume_options.state_dir = dir;
  resume_options.resume = true;
  const WorkflowReport resumed =
      MustRun(resume_options, crashed.final_placement);

  EXPECT_FALSE(resumed.crashed);
  EXPECT_GE(resumed.resumed_cycle, 0);
  EXPECT_TRUE(resumed.recovery.recovered);
  EXPECT_EQ(resumed.sla_violations, 0);
  EXPECT_EQ(resumed.feasibility_violations, 0);
  EXPECT_EQ(resumed.final_placement.DiffCount(baseline.final_placement), 0)
      << "recovered placement diverged from the uninterrupted run";
  EXPECT_DOUBLE_EQ(
      GainedAffinity(*TestSnapshot().cluster, resumed.final_placement),
      GainedAffinity(*TestSnapshot().cluster, baseline.final_placement));
  EXPECT_TRUE(resumed.final_placement.CheckFeasible(false).ok());
}

// Durable mode must not perturb the control loop: with a state directory
// attached (checkpoints + journal active) the run draws the identical
// random sequence and lands on the identical final placement.
TEST(WorkflowRecoveryTest, DurableRunMatchesInMemoryRun) {
  for (int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    const WorkflowReport in_memory =
        MustRun(BaseOptions(threads), TestSnapshot().original_placement);
    const WorkflowReport& durable = Baseline(threads);
    EXPECT_EQ(
        in_memory.final_placement.DiffCount(durable.final_placement), 0);
    EXPECT_EQ(in_memory.executions, durable.executions);
    EXPECT_EQ(in_memory.dry_runs, durable.dry_runs);
  }
}

// The optimizer pipeline is thread-count deterministic, so the recovery
// baseline itself must agree across 1/4/8 threads.
TEST(WorkflowRecoveryTest, BaselineIdenticalAcrossThreadCounts) {
  const WorkflowReport& one = Baseline(1);
  for (int threads : {4, 8}) {
    EXPECT_EQ(
        Baseline(threads).final_placement.DiffCount(one.final_placement), 0)
        << threads << " threads";
  }
}

TEST(WorkflowRecoveryTest, CrashMidCommandInFirstCycle) {
  for (int threads : kThreadCounts) {
    FaultInjectionOptions faults;
    faults.crash_after_commands = 7;  // dies inside cycle 0's first batches
    CheckCrashRecovery("mid_command", threads, faults);
  }
}

TEST(WorkflowRecoveryTest, CrashMidCommandInLaterCycle) {
  for (int threads : kThreadCounts) {
    // Land mid-way through cycle 1's execution: past all of cycle 0's
    // commands (taken from the baseline report) plus half of cycle 1's.
    const WorkflowReport& baseline = Baseline(threads);
    ASSERT_GE(baseline.cycles.size(), 2u);
    const long c0 = baseline.cycles[0].moved_containers;
    const long c1 = baseline.cycles[1].moved_containers;
    ASSERT_GT(c1, 1);
    FaultInjectionOptions faults;
    faults.crash_after_commands = c0 + c1 / 2;
    CheckCrashRecovery("mid_command_late", threads, faults);
  }
}

TEST(WorkflowRecoveryTest, CrashMidBatchBeforeCommit) {
  for (int threads : kThreadCounts) {
    FaultInjectionOptions faults;
    // Dies after a batch fully applied + audited, before its commit record
    // reached the journal: recovery must classify that batch from the
    // observed placement, not the journal.
    faults.crash_after_batches = 2;
    CheckCrashRecovery("mid_batch", threads, faults);
  }
}

TEST(WorkflowRecoveryTest, CrashMidDrift) {
  for (int threads : kThreadCounts) {
    FaultInjectionOptions faults;
    faults.crash_after_drift_moves = 3;  // dies applying cycle 0's drift
    CheckCrashRecovery("mid_drift", threads, faults);
  }
}

TEST(WorkflowRecoveryTest, CrashBeforeCheckpoint) {
  for (int threads : kThreadCounts) {
    FaultInjectionOptions faults;
    // The whole of cycle 1 (execution, drift) is applied and journaled but
    // the checkpoint write never happens: resume replays it entirely from
    // the journal.
    faults.crash_before_checkpoint_cycle = 1;
    CheckCrashRecovery("pre_checkpoint", threads, faults);
  }
}

// Crash mid-batch, then additionally tear the journal tail at several byte
// offsets (the crash also corrupted the last append). Recovery classifies
// the lost work from the observed placement and still converges to the
// uninterrupted final placement.
TEST(WorkflowRecoveryTest, TornJournalTailStillRecovers) {
  const int threads = 1;
  const WorkflowReport& baseline = Baseline(threads);

  for (const size_t cut_back : {1u, 19u, 64u}) {
    SCOPED_TRACE(cut_back);
    const std::string dir =
        FreshStateDir("torn_journal_" + std::to_string(cut_back));
    WorkflowOptions crash_options = BaseOptions(threads);
    crash_options.state_dir = dir;
    crash_options.inject_faults = true;
    crash_options.faults.crash_after_batches = 3;
    const WorkflowReport crashed =
        MustRun(crash_options, TestSnapshot().original_placement);
    ASSERT_TRUE(crashed.crashed);

    StatusOr<std::string> journal = ReadFileToString(dir + "/journal.wal");
    ASSERT_TRUE(journal.ok());
    ASSERT_GT(journal->size(), cut_back);
    ASSERT_TRUE(
        TruncateFileAt(dir + "/journal.wal", journal->size() - cut_back)
            .ok());

    WorkflowOptions resume_options = BaseOptions(threads);
    resume_options.state_dir = dir;
    resume_options.resume = true;
    const WorkflowReport resumed =
        MustRun(resume_options, crashed.final_placement);
    EXPECT_EQ(resumed.sla_violations, 0);
    EXPECT_EQ(resumed.feasibility_violations, 0);
    EXPECT_EQ(resumed.final_placement.DiffCount(baseline.final_placement),
              0);
  }
}

// Tear the *current* checkpoint after a clean run: resume falls back to
// checkpoint.prev and replays the missing cycle from the journal, landing
// on the identical final placement.
TEST(WorkflowRecoveryTest, TornCheckpointFallsBackToPrevious) {
  const int threads = 1;
  const std::string dir = FreshStateDir("torn_checkpoint");
  WorkflowOptions options = BaseOptions(threads);
  options.state_dir = dir;
  const WorkflowReport clean =
      MustRun(options, TestSnapshot().original_placement);
  ASSERT_FALSE(clean.crashed);

  StatusOr<std::string> checkpoint = ReadFileToString(dir + "/checkpoint");
  StatusOr<std::string> previous =
      ReadFileToString(dir + "/checkpoint.prev");
  ASSERT_TRUE(checkpoint.ok());
  ASSERT_TRUE(previous.ok());
  for (const size_t cut : {size_t{0}, checkpoint->size() / 2,
                           checkpoint->size() - 1}) {
    SCOPED_TRACE(cut);
    // Restore the crash scene each round: the previous resume rotated the
    // torn current file into checkpoint.prev when it re-checkpointed.
    ASSERT_TRUE(AtomicWriteFile(dir + "/checkpoint",
                                checkpoint->substr(0, cut))
                    .ok());
    ASSERT_TRUE(AtomicWriteFile(dir + "/checkpoint.prev", *previous).ok());
    WorkflowOptions resume_options = BaseOptions(threads);
    resume_options.state_dir = dir;
    resume_options.resume = true;
    const WorkflowReport resumed =
        MustRun(resume_options, clean.final_placement);
    EXPECT_TRUE(resumed.recovery.used_previous_checkpoint);
    EXPECT_EQ(resumed.sla_violations, 0);
    EXPECT_EQ(resumed.feasibility_violations, 0);
    EXPECT_EQ(resumed.final_placement.DiffCount(clean.final_placement), 0);
  }
}

// Resuming a cleanly finished run is a no-op: nothing to replay, nothing
// changed, and the recovery stats say so.
TEST(WorkflowRecoveryTest, ResumeAfterCleanShutdownIsANoOp) {
  const int threads = 1;
  const WorkflowReport& baseline = Baseline(threads);
  const std::string dir = "baseline_t1";  // reuse the baseline's state dir
  WorkflowOptions resume_options = BaseOptions(threads);
  resume_options.state_dir =
      ::testing::TempDir() + "/rasa_wf_recovery_" + dir;
  resume_options.resume = true;
  const WorkflowReport resumed =
      MustRun(resume_options, baseline.final_placement);
  EXPECT_EQ(resumed.resumed_cycle, 3);
  EXPECT_TRUE(resumed.cycles.empty());
  EXPECT_EQ(resumed.recovery.cycles_completed_from_journal, 0);
  EXPECT_EQ(resumed.final_placement.DiffCount(baseline.final_placement), 0);
  // Counters carried over from the checkpoint, not reset.
  EXPECT_EQ(resumed.executions, baseline.executions);
  EXPECT_EQ(resumed.dry_runs, baseline.dry_runs);
}

// The `recover` inspection must work on a live crash scene.
TEST(WorkflowRecoveryTest, InspectionOfACrashedRun) {
  const int threads = 1;
  const std::string dir = FreshStateDir("inspect_crash");
  WorkflowOptions crash_options = BaseOptions(threads);
  crash_options.state_dir = dir;
  crash_options.inject_faults = true;
  crash_options.faults.crash_after_commands = 7;
  const WorkflowReport crashed =
      MustRun(crash_options, TestSnapshot().original_placement);
  ASSERT_TRUE(crashed.crashed);

  StatusOr<std::string> text = FormatRecoveryInspection(dir);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("IN FLIGHT"), std::string::npos) << *text;
  EXPECT_NE(text->find("command classification"), std::string::npos);
  EXPECT_NE(text->find("--resume"), std::string::npos);
}

}  // namespace
}  // namespace rasa
