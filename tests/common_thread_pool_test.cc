#include "common/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"

namespace rasa {
namespace {

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(-3);
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
}

TEST(ThreadPoolTest, SubmitReturnsFutureWithResult) {
  ThreadPool pool(2);
  std::future<int> a = pool.Submit([] { return 7; });
  std::future<std::string> b = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(a.get(), 7);
  EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<int> f =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 997;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWithZeroOrNegativeCountIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](int) { calls.fetch_add(1); });
  pool.ParallelFor(-5, [&](int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForRethrowsTaskException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(64,
                                [](int i) {
                                  if (i == 13) {
                                    throw std::runtime_error("task 13");
                                  }
                                }),
               std::runtime_error);
}

// Workers submitting from inside tasks must not deadlock: nested
// ParallelFor bodies are pushed onto the worker's own deque and the blocked
// outer task helps drain them (work stealing covers the rest).
TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](int) {
    pool.ParallelFor(8, [&](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, StressManySmallTasks) {
  ThreadPool pool(4);
  constexpr int kTasks = 20000;
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), static_cast<long>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 256; ++i) {
      pool.Submit([&executed] { executed.fetch_add(1); });
    }
  }
  EXPECT_EQ(executed.load(), 256);
}

}  // namespace
}  // namespace rasa
