// The solve ledger: a process-wide, thread-safe flight recorder for
// per-subproblem solves. Covers the container semantics (append / snapshot
// / reset), the global enable switch, concurrent appends from a worker
// pool, and the integration contract: an Optimize run appends exactly its
// report's records when enabled and nothing when disabled.

#include <thread>
#include <vector>

#include "cluster/generator.h"
#include "common/logging.h"
#include "core/rasa.h"
#include "core/solve_ledger.h"
#include "gtest/gtest.h"

namespace rasa {
namespace {

LedgerRecord MakeRecord(int subproblem, double realized) {
  LedgerRecord r;
  r.subproblem = subproblem;
  r.position = subproblem;
  r.realized_affinity = realized;
  r.primary.outcome = AttemptOutcome::kOk;
  return r;
}

TEST(SolveLedgerTest, AppendSnapshotReset) {
  SolveLedger ledger;
  EXPECT_EQ(ledger.size(), 0u);
  EXPECT_TRUE(ledger.Records().empty());

  ledger.Append(MakeRecord(0, 0.25));
  ledger.Append(MakeRecord(1, 0.5));
  EXPECT_EQ(ledger.size(), 2u);

  const std::vector<LedgerRecord> snapshot = ledger.Records();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].subproblem, 0);
  EXPECT_EQ(snapshot[1].subproblem, 1);
  EXPECT_DOUBLE_EQ(snapshot[1].realized_affinity, 0.5);
  EXPECT_EQ(snapshot[0].primary.outcome, AttemptOutcome::kOk);

  // The snapshot is a copy: appending after it does not grow it.
  ledger.AppendAll({MakeRecord(2, 0.75), MakeRecord(3, 1.0)});
  EXPECT_EQ(ledger.size(), 4u);
  EXPECT_EQ(snapshot.size(), 2u);

  ledger.Reset();
  EXPECT_EQ(ledger.size(), 0u);
}

TEST(SolveLedgerTest, OutcomeNames) {
  EXPECT_STREQ(AttemptOutcomeToString(AttemptOutcome::kNotRun), "not_run");
  EXPECT_STREQ(AttemptOutcomeToString(AttemptOutcome::kOk), "ok");
  EXPECT_STREQ(AttemptOutcomeToString(AttemptOutcome::kFailed), "failed");
  EXPECT_STREQ(AttemptOutcomeToString(AttemptOutcome::kExpired), "expired");
  EXPECT_STREQ(AttemptOutcomeToString(AttemptOutcome::kPruned), "pruned");
}

TEST(SolveLedgerTest, ConcurrentAppendsLoseNothing) {
  SolveLedger ledger;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ledger, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ledger.Append(MakeRecord(t * kPerThread + i, 0.0));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ledger.size(), static_cast<size_t>(kThreads * kPerThread));

  // Every record arrived exactly once.
  std::vector<int> seen(kThreads * kPerThread, 0);
  for (const LedgerRecord& r : ledger.Records()) ++seen[r.subproblem];
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(SolveLedgerTest, EnableSwitchGatesOptimizerAppends) {
  ClusterSpec spec = M1Spec(64.0);
  spec.seed = 5;
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  RasaOptions options;
  options.timeout_seconds = 10.0;
  options.seed = 77;
  options.compute_migration = false;
  RasaOptimizer optimizer(options,
                          AlgorithmSelector(SelectorPolicy::kHeuristic));

  SolveLedger& ledger = SolveLedger::Default();
  ledger.Reset();
  ASSERT_TRUE(SolveLedgerEnabled());  // default-on

  StatusOr<RasaResult> with = optimizer.Optimize(
      *snapshot->cluster, snapshot->original_placement);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  EXPECT_GT(with->report.records.size(), 0u);
  EXPECT_EQ(ledger.size(), with->report.records.size());

  ledger.Reset();
  SetSolveLedgerEnabled(false);
  StatusOr<RasaResult> without = optimizer.Optimize(
      *snapshot->cluster, snapshot->original_placement);
  SetSolveLedgerEnabled(true);
  ASSERT_TRUE(without.ok()) << without.status().ToString();
  // The result's report is part of the result, not the recorder: populated
  // either way. Only the global ledger stays silent.
  EXPECT_EQ(without->report.records.size(), with->report.records.size());
  EXPECT_EQ(ledger.size(), 0u);
}

}  // namespace
}  // namespace rasa
