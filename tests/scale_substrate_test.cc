// Scale-substrate suite (`scale` ctest label): the pieces that let the
// repo run Table II at scale factor 1 on one box. Covers (a) generator
// exactness — the factor-1 specs must hit the paper's row totals exactly,
// (b) a peak-RSS budget for partitioning M4 at factor 1 plus one
// subproblem solve through the CSR view API and arena-backed solvers, and
// (c) the arena lifecycle: reset-reuse across cycles retains capacity,
// runs destructors, and leaks nothing (the asan preset runs this suite).

#include <sys/resource.h>

#include <string>
#include <vector>

#include "cluster/generator.h"
#include "common/arena.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/algorithm_pool.h"
#include "core/partitioning.h"
#include "gtest/gtest.h"

namespace rasa {
namespace {

// Peak resident set of this process so far, in bytes (Linux ru_maxrss is
// in KiB). Monotone: includes every phase run before the call.
size_t PeakRssBytes() {
  struct rusage usage;
  RASA_CHECK(getrusage(RUSAGE_SELF, &usage) == 0);
  return static_cast<size_t>(usage.ru_maxrss) * 1024;
}

// Table II row totals (generator.cc keeps the same table in its comment).
struct TableTwoRow {
  const char* name;
  int services;
  int containers;
  int machines;
};
constexpr TableTwoRow kTableTwo[] = {
    {"M1", 5904, 25640, 977},
    {"M2", 10180, 152833, 5284},
    {"M3", 547, 3485, 96},
    {"M4", 10682, 113261, 4365},
};

// At scale factor 1 the generated clusters must reproduce Table II
// exactly — not approximately — so the full-scale bench is comparable
// against the paper's row sizes.
TEST(ScaleSubstrateTest, TableTwoExactAtFactorOne) {
  const std::vector<ClusterSpec> specs = TableTwoSpecs(1.0);
  ASSERT_EQ(specs.size(), 4u);
  for (size_t i = 0; i < specs.size(); ++i) {
    StatusOr<ClusterSnapshot> snapshot = GenerateCluster(specs[i]);
    ASSERT_TRUE(snapshot.ok())
        << kTableTwo[i].name << ": " << snapshot.status().ToString();
    EXPECT_EQ(snapshot->cluster->num_services(), kTableTwo[i].services)
        << kTableTwo[i].name;
    EXPECT_EQ(snapshot->cluster->num_containers(), kTableTwo[i].containers)
        << kTableTwo[i].name;
    EXPECT_EQ(snapshot->cluster->num_machines(), kTableTwo[i].machines)
        << kTableTwo[i].name;
  }
}

// Scaled-down specs (every tier-1 fixture) must not pick up the exact-total
// gates: their generation stream is frozen by the determinism suites.
TEST(ScaleSubstrateTest, ScaledSpecsStayUngated) {
  for (const ClusterSpec& spec : TableTwoSpecs(16.0)) {
    EXPECT_EQ(spec.exact_total_containers, 0) << spec.name;
    EXPECT_EQ(spec.exact_num_machines, 0) << spec.name;
  }
}

// The memory budget of the tentpole: generate M4 at factor 1, partition
// it, and run one pool solve on the largest subproblem — all through the
// CSR view API and arena-backed solver state — inside a peak-RSS budget.
// The budget is deliberately generous (the point is catching a regression
// to dense O(n^2) storage, which for 10 682 services would add ~900 MB on
// its own), and covers the whole process including gtest and the
// generator.
TEST(ScaleSubstrateTest, M4PartitionAndSolveWithinMemoryBudget) {
  constexpr size_t kBudgetBytes = size_t{1536} * 1024 * 1024;  // 1.5 GiB

  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M4Spec(1.0));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  PartitioningOptions options;
  PartitionResult partition = PartitionServices(
      *snapshot->cluster, snapshot->original_placement, options);
  ASSERT_GT(partition.stats.num_subproblems, 0);

  // Largest subproblem by service count: the worst case for solver state.
  const Subproblem* largest = &partition.subproblems[0];
  for (const Subproblem& sp : partition.subproblems) {
    if (sp.services.size() > largest->services.size()) largest = &sp;
  }
  PoolAttemptStats stats;
  StatusOr<SubproblemSolution> solved = RunPoolAlgorithm(
      PoolAlgorithm::kCg, *snapshot->cluster, *largest,
      partition.base_placement, snapshot->original_placement,
      Deadline::AfterSeconds(30.0), /*seed=*/29, &stats);
  EXPECT_TRUE(solved.ok()) << solved.status().ToString();

  const size_t peak = PeakRssBytes();
  RASA_LOG(Info) << "M4 factor-1 peak RSS: " << peak / (1024 * 1024)
                 << " MiB (budget " << kBudgetBytes / (1024 * 1024)
                 << " MiB), largest subproblem "
                 << largest->services.size() << " services";
  EXPECT_LT(peak, kBudgetBytes);
}

// Arena lifecycle: Reset runs destructors of arena-constructed objects in
// reverse order, retains chunk capacity for reuse, and repeated
// reset-reuse cycles do not grow the reservation — under asan this test
// also proves nothing leaks.
TEST(ScaleSubstrateTest, ArenaResetReuseRetainsCapacityAndDestroys) {
  static int live_objects = 0;
  struct Tracked {
    Tracked() { ++live_objects; }
    ~Tracked() { --live_objects; }
    std::string payload = std::string(256, 'x');  // heap-owning member
  };

  Arena arena;
  size_t reserved_after_warmup = 0;
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (int i = 0; i < 64; ++i) {
      Tracked* t = arena.New<Tracked>();
      ASSERT_EQ(t->payload.size(), 256u);
      ArenaVector<double> scratch{ArenaAllocator<double>(&arena)};
      scratch.resize(1024, 1.0);
      ASSERT_EQ(scratch.back(), 1.0);
    }
    EXPECT_EQ(live_objects, 64);
    EXPECT_GT(arena.bytes_used(), 0u);
    arena.Reset();
    EXPECT_EQ(live_objects, 0);  // destructors ran
    EXPECT_EQ(arena.bytes_used(), 0u);
    if (cycle == 0) {
      reserved_after_warmup = arena.bytes_reserved();
      EXPECT_GT(reserved_after_warmup, 0u);
    } else {
      // Steady state: the warmed-up reservation is enough for every later
      // identical cycle — reset-reuse never touches the OS allocator again.
      EXPECT_EQ(arena.bytes_reserved(), reserved_after_warmup);
    }
  }
}

// NewArray hands out aligned trivially-destructible storage that survives
// until Reset; interleaved odd-sized allocations keep alignment honest.
TEST(ScaleSubstrateTest, ArenaArraysStayAlignedAndIndependent) {
  Arena arena;
  for (int round = 0; round < 4; ++round) {
    char* pad = arena.NewArray<char>(3);  // misalign the bump pointer
    pad[0] = 'a';
    double* d = arena.NewArray<double>(17);
    ASSERT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(double), 0u);
    int* ints = arena.NewArray<int>(33);
    ASSERT_EQ(reinterpret_cast<uintptr_t>(ints) % alignof(int), 0u);
    for (int i = 0; i < 17; ++i) d[i] = i * 0.5;
    for (int i = 0; i < 33; ++i) ints[i] = i;
    for (int i = 0; i < 17; ++i) EXPECT_EQ(d[i], i * 0.5);
    for (int i = 0; i < 33; ++i) EXPECT_EQ(ints[i], i);
    arena.Reset();
  }
}

}  // namespace
}  // namespace rasa
