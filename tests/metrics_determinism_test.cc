// The observation-only contract of the metrics layer: the optimizer's
// output is bit-identical with metrics (and tracing) on or off, at every
// thread count — instrumentation may watch the hot path but never steer it.
// Also covers the end-to-end export: a workflow run with an executing cycle
// populates all five instrumented subsystems (rasa., partition., pool.,
// threadpool., migration.) and snapshots them once per cycle.

#include <string>
#include <vector>

#include "cluster/generator.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "core/rasa.h"
#include "gtest/gtest.h"
#include "sim/workflow.h"

namespace rasa {
namespace {

ClusterSnapshot MakeCluster(uint64_t seed) {
  ClusterSpec spec = M1Spec(48.0);
  spec.seed = seed;
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  RASA_CHECK(snapshot.ok()) << snapshot.status().ToString();
  return std::move(snapshot).value();
}

RasaResult RunOptimize(const ClusterSnapshot& snapshot, int threads) {
  RasaOptions options;
  // Generous budget + small subproblems: no solve is ever cut off
  // mid-flight, so the comparison never races the wall clock (same regime
  // as core_rasa_determinism_test).
  options.timeout_seconds = 30.0;
  options.seed = 1234;
  options.num_threads = threads;
  options.partitioning.max_subproblem_services = 12;
  RasaOptimizer optimizer(options,
                          AlgorithmSelector(SelectorPolicy::kHeuristic));
  StatusOr<RasaResult> result =
      optimizer.Optimize(*snapshot.cluster, snapshot.original_placement);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// Bit-exact equality of everything except wall-clock timings.
void ExpectIdenticalResults(const RasaResult& a, const RasaResult& b) {
  EXPECT_EQ(a.new_placement.DiffCount(b.new_placement), 0);
  EXPECT_EQ(b.new_placement.DiffCount(a.new_placement), 0);
  EXPECT_EQ(a.new_gained_affinity, b.new_gained_affinity);
  EXPECT_EQ(a.original_gained_affinity, b.original_gained_affinity);
  EXPECT_EQ(a.should_execute, b.should_execute);
  EXPECT_EQ(a.moved_containers, b.moved_containers);
  EXPECT_EQ(a.lost_containers, b.lost_containers);
  EXPECT_EQ(a.solver_failures, b.solver_failures);
  EXPECT_EQ(a.secondary_successes, b.secondary_successes);
  EXPECT_EQ(a.greedy_fallbacks, b.greedy_fallbacks);
  EXPECT_EQ(a.breaker_skips, b.breaker_skips);
  EXPECT_EQ(a.migration.batches.size(), b.migration.batches.size());
  ASSERT_EQ(a.subproblems.size(), b.subproblems.size());
  for (size_t i = 0; i < a.subproblems.size(); ++i) {
    EXPECT_EQ(a.subproblems[i].algorithm, b.subproblems[i].algorithm);
    EXPECT_EQ(a.subproblems[i].gained_affinity,
              b.subproblems[i].gained_affinity);
    EXPECT_EQ(a.subproblems[i].failed, b.subproblems[i].failed);
    EXPECT_EQ(a.subproblems[i].used_secondary,
              b.subproblems[i].used_secondary);
  }
}

TEST(MetricsDeterminismTest, MetricsOnOffBitIdenticalAcrossThreadCounts) {
  const ClusterSnapshot snapshot = MakeCluster(17);
  for (int threads : {1, 4, 8}) {
    SCOPED_TRACE(::testing::Message() << threads << " threads");

    ASSERT_TRUE(MetricsEnabled());
    Tracer::Default().Enable(true);  // tracing must not perturb either
    const RasaResult with_metrics = RunOptimize(snapshot, threads);
    Tracer::Default().Enable(false);
    Tracer::Default().Reset();

    SetMetricsEnabled(false);
    const RasaResult without_metrics = RunOptimize(snapshot, threads);
    SetMetricsEnabled(true);

    ExpectIdenticalResults(with_metrics, without_metrics);
  }
}

TEST(MetricsDeterminismTest, DisabledRunRecordsNothing) {
  const ClusterSnapshot snapshot = MakeCluster(23);
  MetricRegistry& reg = MetricRegistry::Default();
  reg.Reset();
  SetMetricsEnabled(false);
  (void)RunOptimize(snapshot, 2);
  SetMetricsEnabled(true);
  const MetricsSnapshot snap = reg.Scrape();
  for (const auto& [name, value] : snap.counters) {
    EXPECT_EQ(value, 0u) << name;
  }
  for (const auto& [name, histogram] : snap.histograms) {
    EXPECT_EQ(histogram.count, 0u) << name;
  }
}

// One workflow run with executing cycles must light up every instrumented
// subsystem and attach a registry snapshot to every cycle report.
TEST(MetricsDeterminismTest, WorkflowCoversAllFiveSubsystems) {
  const ClusterSnapshot snapshot = MakeCluster(31);
  MetricRegistry::Default().Reset();

  WorkflowOptions options;
  options.cycles = 2;
  options.rasa.timeout_seconds = 10.0;
  // >= 2 threads so the thread pool's steal/queue metrics are exercised by
  // a real worker pool.
  options.rasa.num_threads = 4;
  options.seed = 7;
  StatusOr<WorkflowReport> report =
      RunWorkflow(*snapshot.cluster, snapshot.original_placement,
                  AlgorithmSelector(SelectorPolicy::kHeuristic), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_GT(report->executions, 0);  // migration metrics need a real run

  const MetricsSnapshot snap = MetricRegistry::Default().Scrape();
  auto counter = [&](const std::string& name) -> uint64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "counter not registered: " << name;
    return 0;
  };
  EXPECT_GT(counter("rasa.runs"), 0u);
  EXPECT_GT(counter("partition.runs"), 0u);
  EXPECT_GT(counter("pool.cg_picks") + counter("pool.mip_picks"), 0u);
  EXPECT_GT(counter("threadpool.tasks_executed"), 0u);
  EXPECT_GT(counter("migration.runs"), 0u);

  // Per-cycle snapshots are registry *deltas* (MetricsSnapshot::Diff):
  // every cycle ran the optimizer exactly once, so each cycle's delta of
  // rasa.runs is exactly 1 — not the cumulative 1, 2, ...
  ASSERT_EQ(report->cycles.size(), 2u);
  for (const CycleReport& cr : report->cycles) {
    EXPECT_FALSE(cr.metrics.counters.empty());
    uint64_t runs = 0;
    for (const auto& [n, v] : cr.metrics.counters) {
      if (n == "rasa.runs") runs = v;
    }
    EXPECT_EQ(runs, 1u);
  }

  // The machine-readable export mentions all five subsystem prefixes.
  const std::string json = snap.ToJson();
  for (const char* prefix :
       {"\"rasa.", "\"partition.", "\"pool.", "\"threadpool.",
        "\"migration."}) {
    EXPECT_NE(json.find(prefix), std::string::npos) << prefix;
  }
}

}  // namespace
}  // namespace rasa
