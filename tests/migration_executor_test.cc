#include "core/migration_executor.h"

#include <algorithm>
#include <cmath>

#include "cluster/first_fit.h"
#include "cluster/generator.h"
#include "common/rng.h"
#include "core/migration.h"
#include "gtest/gtest.h"
#include "sim/fault_injection.h"
#include "test_util.h"

namespace rasa {
namespace {

using ::rasa::testing::ClusterBuilder;

int FloorAlive(int demand, double min_alive_fraction) {
  const int floor =
      static_cast<int>(std::ceil(min_alive_fraction * demand - 1e-9));
  return std::min(demand - 1, floor);
}

// Generated cluster + a second first-fit placement as the migration target,
// mirroring the planner's own property test.
struct Scenario {
  ClusterSnapshot snapshot;
  Placement target;
  MigrationPlan plan;
};

Scenario MakeScenario(int seed) {
  ClusterSpec spec = M3Spec(16.0);
  spec.seed = 4200 + seed;
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  EXPECT_TRUE(snapshot.ok());
  Rng rng(seed + 1);
  StatusOr<Placement> target = FirstFitPlace(*snapshot->cluster, rng);
  EXPECT_TRUE(target.ok());
  StatusOr<MigrationPlan> plan = ComputeMigrationPath(
      *snapshot->cluster, snapshot->original_placement, *target);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return Scenario{*std::move(snapshot), *std::move(target), *std::move(plan)};
}

void ExpectSlaFloorHolds(const Cluster& cluster, const Placement& live,
                         double min_alive_fraction) {
  for (int s = 0; s < cluster.num_services(); ++s) {
    EXPECT_GE(live.TotalOf(s),
              FloorAlive(cluster.service(s).demand, min_alive_fraction))
        << "service " << s << " below SLA floor";
  }
}

TEST(MigrationExecutorTest, FaultFreeExecutionReachesTarget) {
  Scenario sc = MakeScenario(0);
  const Cluster& cluster = *sc.snapshot.cluster;
  Placement live = sc.snapshot.original_placement;
  PlacementActions actions(live);
  const MigrationExecutionReport report =
      ExecuteMigration(cluster, live, sc.target, sc.plan, actions);
  EXPECT_TRUE(report.reached_target);
  EXPECT_EQ(report.residual_diff, 0);
  EXPECT_EQ(live.DiffCount(sc.target), 0);
  EXPECT_EQ(report.commands_failed, 0);
  EXPECT_EQ(report.commands_deferred, 0);
  EXPECT_EQ(report.retries, 0);
  EXPECT_EQ(report.replans, 0);
  EXPECT_EQ(report.sla_violations, 0);
  EXPECT_EQ(report.feasibility_violations, 0);
  EXPECT_EQ(report.commands_succeeded,
            sc.plan.total_deletes + sc.plan.total_creates);
  EXPECT_TRUE(live.CheckFeasible(true).ok());
}

TEST(MigrationExecutorTest, DeterministicUnderSameSeed) {
  // Two scenarios built from identical seeds; each run keeps its own
  // cluster alive so the final placements can be compared afterwards.
  Scenario sc1 = MakeScenario(3);
  Scenario sc2 = MakeScenario(3);
  auto run = [](const Scenario& sc, MigrationExecutionReport* out,
                Placement* final_live) {
    Placement live = sc.snapshot.original_placement;
    FaultInjectionOptions fopts;
    fopts.command_failure_probability = 0.3;
    fopts.seed = 777;
    FaultInjector injector(fopts);
    PlacementActions base(live);
    FaultyClusterActions actions(base, injector);
    MigrationExecutorOptions opts;
    opts.seed = 21;
    *out = ExecuteMigration(*sc.snapshot.cluster, live, sc.target, sc.plan,
                            actions, opts);
    *final_live = live;
  };
  MigrationExecutionReport a, b;
  Placement live_a, live_b;
  run(sc1, &a, &live_a);
  run(sc2, &b, &live_b);
  EXPECT_EQ(a.commands_attempted, b.commands_attempted);
  EXPECT_EQ(a.commands_succeeded, b.commands_succeeded);
  EXPECT_EQ(a.commands_failed, b.commands_failed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.replans, b.replans);
  EXPECT_EQ(a.reached_target, b.reached_target);
  EXPECT_DOUBLE_EQ(a.backoff_seconds, b.backoff_seconds);
  EXPECT_EQ(live_a.DiffCount(live_b), 0);
}

TEST(MigrationExecutorTest, CordonMidMigrationKeepsInvariants) {
  Scenario sc = MakeScenario(5);
  const Cluster& cluster = *sc.snapshot.cluster;
  Placement live = sc.snapshot.original_placement;
  FaultInjectionOptions fopts;
  fopts.cordon_after_commands = 5;
  fopts.cordon_duration_cycles = 0;  // never lifts
  FaultInjector injector(fopts);
  PlacementActions base(live);
  FaultyClusterActions actions(base, injector);
  const MigrationExecutionReport report =
      ExecuteMigration(cluster, live, sc.target, sc.plan, actions);
  EXPECT_EQ(injector.cordons_fired(), 1);
  // Commands aimed at the cordoned machine fail permanently, so the
  // executor must have re-planned around it.
  EXPECT_GE(report.replans, 1);
  EXPECT_EQ(report.sla_violations, 0);
  EXPECT_EQ(report.feasibility_violations, 0);
  EXPECT_TRUE(live.CheckFeasible(false).ok());
  ExpectSlaFloorHolds(cluster, live, 0.75);
  if (report.dropped_containers == 0) {
    // Nothing was dropped: every service is fully deployed again.
    EXPECT_TRUE(live.CheckFeasible(true).ok());
  }
}

// Property (ISSUE satellite): across many random seeds with transient
// command faults, every post-batch audit passes (>= 75% of each service
// alive, every machine resource-feasible) and the executor still converges
// to the target.
class ExecutorChaosPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorChaosPropertyTest, TransientFaultsRetryToTarget) {
  Scenario sc = MakeScenario(GetParam());
  const Cluster& cluster = *sc.snapshot.cluster;
  Placement live = sc.snapshot.original_placement;
  FaultInjectionOptions fopts;
  fopts.command_failure_probability = 0.25;
  fopts.seed = 9000 + GetParam();
  FaultInjector injector(fopts);
  PlacementActions base(live);
  FaultyClusterActions actions(base, injector);
  MigrationExecutorOptions opts;
  opts.retry.max_attempts = 8;
  opts.seed = 100 + GetParam();
  const MigrationExecutionReport report =
      ExecuteMigration(cluster, live, sc.target, sc.plan, actions, opts);
  // The audits run after *every* executed batch; none may ever fail.
  EXPECT_GT(report.batches_executed, 0);
  EXPECT_EQ(report.sla_violations, 0);
  EXPECT_EQ(report.feasibility_violations, 0);
  // Transient faults only: retries (plus re-planning at worst) must reach
  // the exact target placement.
  EXPECT_TRUE(report.reached_target) << "residual " << report.residual_diff;
  EXPECT_EQ(live.DiffCount(sc.target), 0);
  EXPECT_EQ(report.dropped_containers, 0);
  EXPECT_GT(report.retries, 0);
  EXPECT_TRUE(live.CheckFeasible(true).ok());
  ExpectSlaFloorHolds(cluster, live, 0.75);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorChaosPropertyTest,
                         ::testing::Range(0, 24));

TEST(PlacementActionsTest, DeleteAbsentContainerIsPermanent) {
  auto cluster =
      ClusterBuilder().AddService(2, {1.0}).AddMachine({4.0}).AddMachine({4.0})
          .Build();
  Placement live(*cluster);
  live.Add(0, 0, 2);
  PlacementActions actions(live);
  const Status s = actions.Delete(1, 0);  // nothing of svc0 on m1
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(IsRetryable(s.code())) << s.ToString();
}

TEST(PlacementActionsTest, CreateBeyondCapacityIsPermanent) {
  auto cluster =
      ClusterBuilder().AddService(8, {2.0}).AddMachine({4.0}).Build();
  Placement live(*cluster);
  live.Add(0, 0, 2);  // machine full: 2 * 2.0 == 4.0
  PlacementActions actions(live);
  const Status s = actions.Create(0, 0);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(IsRetryable(s.code())) << s.ToString();
  EXPECT_EQ(live.CountOn(0, 0), 2);  // live state untouched
}

// A byzantine backend that over-deletes: every delete secretly removes a
// second container of the same service. The executor cannot prevent this,
// but its post-batch audit must notice the SLA-floor breach and count it.
class OverDeletingActions : public ClusterActions {
 public:
  explicit OverDeletingActions(Placement& live) : live_(live) {}
  Status Delete(int machine, int service) override {
    RASA_RETURN_IF_ERROR(live_.Remove(machine, service));
    if (live_.CountOn(machine, service) > 0) {
      (void)live_.Remove(machine, service);  // the sneaky extra delete
    }
    return Status::OK();
  }
  Status Create(int machine, int service) override {
    if (!live_.CanPlace(machine, service)) {
      return FailedPreconditionError("does not fit");
    }
    live_.Add(machine, service);
    return Status::OK();
  }

 private:
  Placement& live_;
};

TEST(MigrationExecutorTest, AuditDetectsByzantineOverDeletes) {
  // d = 8, floor = 6: one legal delete plus the sneaky extra one leaves 6
  // alive (legal); a second batch repeats and dips below the floor unless
  // the executor notices. Either way the audit counters must fire as soon
  // as the actual live state breaches the floor.
  auto cluster = ClusterBuilder()
                     .AddService(8, {1.0})
                     .AddMachine({8.0})
                     .AddMachine({8.0})
                     .Build();
  Placement from(*cluster);
  from.Add(0, 0, 8);
  Placement to(*cluster);
  to.Add(0, 0, 2);
  to.Add(1, 0, 6);
  StatusOr<MigrationPlan> plan = ComputeMigrationPath(*cluster, from, to);
  ASSERT_TRUE(plan.ok());
  Placement live = from;
  OverDeletingActions actions(live);
  MigrationExecutorOptions opts;
  opts.max_replans = 1;
  const MigrationExecutionReport report =
      ExecuteMigration(*cluster, live, to, *plan, actions, opts);
  // The run must complete with a report (never throw/crash) and flag the
  // violation the moment the floor is actually breached.
  EXPECT_GT(report.sla_violations, 0);
}

}  // namespace
}  // namespace rasa
