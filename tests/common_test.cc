#include <algorithm>
#include <cmath>
#include <set>
#include <thread>

#include "common/logging.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/strings.h"
#include "common/timer.h"
#include "gtest/gtest.h"

namespace rasa {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
  EXPECT_EQ(DeadlineExceededError("").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ResourceExhaustedError("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InfeasibleError("").code(), StatusCode::kInfeasible);
  EXPECT_EQ(UnboundedError("").code(), StatusCode::kUnbounded);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("x"), InvalidArgumentError("x"));
  EXPECT_FALSE(InvalidArgumentError("x") == InvalidArgumentError("y"));
  EXPECT_FALSE(InvalidArgumentError("x") == NotFoundError("x"));
}

Status FailsThenPropagates() {
  RASA_RETURN_IF_ERROR(InternalError("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThenPropagates().code(), StatusCode::kInternal);
}

// -------------------------------------------------------------- StatusOr --

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("not positive");
  return x;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = ParsePositive(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 7);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = ParsePositive(-1);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

StatusOr<int> DoubleIt(int x) {
  RASA_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return 2 * v;
}

TEST(StatusOrTest, AssignOrReturnUnwrapsAndPropagates) {
  ASSERT_TRUE(DoubleIt(4).ok());
  EXPECT_EQ(*DoubleIt(4), 8);
  EXPECT_FALSE(DoubleIt(0).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(5));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 5);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextUint64StaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextUint64(13), 13u);
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianHasZeroMeanUnitVariance) {
  Rng rng(3);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialHasCorrectMean) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ParetoRespectsMinimum) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.NextPareto(2.0, 1.5), 2.0);
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.3);
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> sample = rng.SampleWithoutReplacement(20, 8);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (int s : sample) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, 20);
    }
  }
}

TEST(RngTest, SampleFullRangeIsPermutation) {
  Rng rng(23);
  std::vector<int> sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, ForkedStreamsAreIndependentButDeterministic) {
  Rng a(1);
  Rng fork1 = a.Fork(5);
  Rng b(1);
  Rng fork2 = b.Fork(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fork1.Next(), fork2.Next());
}

// ----------------------------------------------------------------- Timer --

TEST(TimerTest, StopwatchMeasuresElapsed) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(sw.ElapsedSeconds(), 0.015);
  EXPECT_LT(sw.ElapsedSeconds(), 2.0);
}

TEST(TimerTest, StopwatchReset) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  sw.Reset();
  EXPECT_LT(sw.ElapsedSeconds(), 0.01);
}

TEST(TimerTest, InfiniteDeadlineNeverExpires) {
  Deadline d = Deadline::Infinite();
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(std::isinf(d.RemainingSeconds()));
}

TEST(TimerTest, ShortDeadlineExpires) {
  Deadline d = Deadline::AfterSeconds(0.01);
  EXPECT_FALSE(d.Expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_TRUE(d.Expired());
  EXPECT_LE(d.RemainingSeconds(), 0.0);
}

TEST(TimerTest, ClampedDeadlineTakesEarlier) {
  Deadline d = Deadline::AfterSeconds(100.0);
  Deadline clamped = d.ClampedToSeconds(0.01);
  EXPECT_LT(clamped.RemainingSeconds(), 1.0);
  Deadline d2 = Deadline::AfterSeconds(0.005);
  Deadline clamped2 = d2.ClampedToSeconds(100.0);
  EXPECT_LT(clamped2.RemainingSeconds(), 1.0);
}

// --------------------------------------------------------------- Strings --

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");
}

// ----------------------------------------------------------------- Retry --

TEST(RetryTest, RetryableTaxonomy) {
  EXPECT_TRUE(IsRetryable(StatusCode::kInternal));
  EXPECT_TRUE(IsRetryable(StatusCode::kResourceExhausted));
  EXPECT_TRUE(IsRetryable(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(IsRetryable(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(IsRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryable(StatusCode::kOk));
}

TEST(RetryTest, BackoffIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.1;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.5;
  policy.jitter_fraction = 0.25;
  Rng a(7), b(7);
  for (int attempt = 0; attempt < 8; ++attempt) {
    const double x = BackoffSeconds(policy, attempt, a);
    const double y = BackoffSeconds(policy, attempt, b);
    EXPECT_DOUBLE_EQ(x, y);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 0.5 * 1.25 + 1e-12);
  }
}

TEST(RetryTest, TransientFailuresRetryUntilSuccess) {
  Rng rng(1);
  RetryStats stats;
  int calls = 0;
  const Status s = RetryCall(
      RetryPolicy{}, Deadline::Infinite(), rng,
      [&](const Deadline&) {
        return ++calls < 3 ? InternalError("flaky") : Status::OK();
      },
      &stats);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_GT(stats.backoff_seconds, 0.0);
}

TEST(RetryTest, PermanentErrorFailsImmediately) {
  Rng rng(1);
  RetryStats stats;
  const Status s = RetryCall(
      RetryPolicy{}, Deadline::Infinite(), rng,
      [&](const Deadline&) { return FailedPreconditionError("no such"); },
      &stats);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.retries, 0);
}

TEST(RetryTest, ExhaustsAttemptsAndReturnsLastError) {
  Rng rng(1);
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryStats stats;
  const Status s = RetryCall(
      policy, Deadline::Infinite(), rng,
      [&](const Deadline&) { return InternalError("still down"); }, &stats);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.retries, 2);
}

TEST(RetryTest, ExpiredDeadlineMakesNoAttempt) {
  Rng rng(1);
  RetryStats stats;
  const Status s = RetryCall(
      RetryPolicy{}, Deadline::AfterSeconds(0.0), rng,
      [&](const Deadline&) { return Status::OK(); }, &stats);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(stats.attempts, 0);
}

TEST(RetryTest, BackoffChargedAgainstDeadlineStopsRetrying) {
  Rng rng(1);
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_seconds = 100.0;  // one backoff blows the budget
  policy.max_backoff_seconds = 100.0;
  policy.jitter_fraction = 0.0;
  RetryStats stats;
  const Status s = RetryCall(
      policy, Deadline::AfterSeconds(5.0), rng,
      [&](const Deadline&) { return InternalError("down"); }, &stats);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(stats.attempts, 1);  // retrying would back off past the deadline
  EXPECT_EQ(stats.retries, 0);
}

// --------------------------------------------------------------- Logging --

TEST(LoggingTest, LevelFilteringIsAdjustable) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

}  // namespace
}  // namespace rasa
