#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace rasa {
namespace {

// ------------------------------------------------------------- LpModel ----

TEST(LpModelTest, BuildsAndValidates) {
  LpModel m;
  int x = m.AddVariable(0, 10, 1.0, "x");
  int y = m.AddVariable(0, kLpInfinity, 2.0);
  m.AddConstraint(ConstraintType::kLessEqual, 5.0, {{x, 1.0}, {y, 1.0}});
  EXPECT_EQ(m.num_variables(), 2);
  EXPECT_EQ(m.num_constraints(), 1);
  EXPECT_TRUE(m.Validate().ok());
}

TEST(LpModelTest, MergesDuplicateTerms) {
  LpModel m;
  int x = m.AddVariable(0, 1, 0.0);
  m.AddConstraint(ConstraintType::kEqual, 3.0, {{x, 1.0}, {x, 2.0}});
  ASSERT_EQ(m.constraint_terms(0).size(), 1u);
  EXPECT_DOUBLE_EQ(m.constraint_terms(0)[0].coefficient, 3.0);
}

TEST(LpModelTest, DropsZeroCoefficients) {
  LpModel m;
  int x = m.AddVariable(0, 1, 0.0);
  int y = m.AddVariable(0, 1, 0.0);
  m.AddConstraint(ConstraintType::kEqual, 1.0, {{x, 1.0}, {y, 0.0}});
  EXPECT_EQ(m.constraint_terms(0).size(), 1u);
}

TEST(LpModelTest, ValidateCatchesBadBounds) {
  LpModel m;
  m.AddVariable(2.0, 1.0, 0.0);
  EXPECT_FALSE(m.Validate().ok());
}

TEST(LpModelTest, ValidateCatchesBadVariableIndex) {
  LpModel m;
  m.AddVariable(0, 1, 0);
  m.AddConstraint(ConstraintType::kEqual, 0.0, {{5, 1.0}});
  EXPECT_FALSE(m.Validate().ok());
}

TEST(LpModelTest, CheckFeasibleDetectsViolations) {
  LpModel m;
  int x = m.AddVariable(0, 10, 1.0);
  m.SetInteger(x);
  m.AddConstraint(ConstraintType::kLessEqual, 5.0, {{x, 1.0}});
  EXPECT_TRUE(m.CheckFeasible({4.0}).ok());
  EXPECT_FALSE(m.CheckFeasible({6.0}).ok());    // constraint
  EXPECT_FALSE(m.CheckFeasible({-1.0}).ok());   // bound
  EXPECT_FALSE(m.CheckFeasible({2.5}).ok());    // integrality
  EXPECT_FALSE(m.CheckFeasible({1.0, 2.0}).ok());  // size
}

// The audit tolerance is tied to the kernel tolerance
// (LpOptions::FeasibilityTolerance() == 10 * tolerance): solutions the
// kernel would accept pass the audit at the derived tolerance on both
// sides of the boundary, and the coupling tracks overrides.
TEST(LpModelTest, FeasibilityToleranceTracksKernelTolerance) {
  LpOptions options;  // tolerance = 1e-7
  EXPECT_DOUBLE_EQ(options.FeasibilityTolerance(), 1e-6);
  options.tolerance = 1e-9;
  EXPECT_DOUBLE_EQ(options.FeasibilityTolerance(), 1e-8);

  LpModel m;
  int x = m.AddVariable(0, 10, 1.0);
  m.AddConstraint(ConstraintType::kLessEqual, 5.0, {{x, 1.0}});
  // Violation between the two derived tolerances: the default audit
  // accepts it, the tightened audit rejects it — a differential that only
  // holds while the audit tolerance derives from the kernel tolerance.
  const std::vector<double> boundary = {5.0 + 1e-7};
  LpOptions defaults;
  EXPECT_TRUE(m.CheckFeasible(boundary, defaults.FeasibilityTolerance()).ok());
  EXPECT_FALSE(m.CheckFeasible(boundary, options.FeasibilityTolerance()).ok());
  // Just inside even the tightened audit: both accept.
  const std::vector<double> inside = {5.0 + 1e-9};
  EXPECT_TRUE(m.CheckFeasible(inside, defaults.FeasibilityTolerance()).ok());
  EXPECT_TRUE(m.CheckFeasible(inside, options.FeasibilityTolerance()).ok());
}

TEST(LpModelTest, ObjectiveValue) {
  LpModel m;
  int x = m.AddVariable(0, 10, 2.0);
  int y = m.AddVariable(0, 10, -1.0);
  (void)x;
  (void)y;
  EXPECT_DOUBLE_EQ(m.ObjectiveValue({3.0, 4.0}), 2.0);
}

// ------------------------------------------------------------- Simplex ----

TEST(SimplexTest, SolvesTextbookMaximization) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18; optimum (2, 6) = 36.
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, kLpInfinity, 3.0);
  int y = m.AddVariable(0, kLpInfinity, 5.0);
  m.AddConstraint(ConstraintType::kLessEqual, 4.0, {{x, 1.0}});
  m.AddConstraint(ConstraintType::kLessEqual, 12.0, {{y, 2.0}});
  m.AddConstraint(ConstraintType::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-6);
  EXPECT_NEAR(r.primal[x], 2.0, 1e-6);
  EXPECT_NEAR(r.primal[y], 6.0, 1e-6);
}

TEST(SimplexTest, SolvesMinimizationWithEqualities) {
  // min x + 2y st x + y == 3, x - y == 1 -> x=2, y=1, obj=4.
  LpModel m;
  int x = m.AddVariable(0, kLpInfinity, 1.0);
  int y = m.AddVariable(0, kLpInfinity, 2.0);
  m.AddConstraint(ConstraintType::kEqual, 3.0, {{x, 1.0}, {y, 1.0}});
  m.AddConstraint(ConstraintType::kEqual, 1.0, {{x, 1.0}, {y, -1.0}});
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-6);
  EXPECT_NEAR(r.primal[x], 2.0, 1e-6);
  EXPECT_NEAR(r.primal[y], 1.0, 1e-6);
}

TEST(SimplexTest, IterationsSplitIntoPhases) {
  // The textbook model pivots in both phases (the solver starts from an
  // all-artificial basis, so phase 1 works whenever b != 0) and the split
  // must account for every pivot exactly.
  LpModel easy;
  easy.SetObjectiveSense(ObjectiveSense::kMaximize);
  int x = easy.AddVariable(0, kLpInfinity, 3.0);
  int y = easy.AddVariable(0, kLpInfinity, 5.0);
  easy.AddConstraint(ConstraintType::kLessEqual, 4.0, {{x, 1.0}});
  easy.AddConstraint(ConstraintType::kLessEqual, 12.0, {{y, 2.0}});
  easy.AddConstraint(ConstraintType::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  LpResult r = SolveLp(easy);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_GE(r.phase1_iterations, 0);
  EXPECT_GT(r.phase2_iterations, 0);
  EXPECT_EQ(r.iterations, r.phase1_iterations + r.phase2_iterations);

  // Equality rows always force a phase-1 feasibility search.
  LpModel eq;
  x = eq.AddVariable(0, kLpInfinity, 1.0);
  y = eq.AddVariable(0, kLpInfinity, 2.0);
  eq.AddConstraint(ConstraintType::kEqual, 3.0, {{x, 1.0}, {y, 1.0}});
  eq.AddConstraint(ConstraintType::kEqual, 1.0, {{x, 1.0}, {y, -1.0}});
  LpResult req = SolveLp(eq);
  ASSERT_EQ(req.status, LpStatus::kOptimal);
  EXPECT_GT(req.phase1_iterations, 0);
  EXPECT_EQ(req.iterations, req.phase1_iterations + req.phase2_iterations);

  // A model feasible at the origin (b == 0 rows only) needs no phase 1.
  LpModel zero;
  zero.SetObjectiveSense(ObjectiveSense::kMaximize);
  x = zero.AddVariable(0, 2.0, 1.0);
  y = zero.AddVariable(0, 2.0, 1.0);
  zero.AddConstraint(ConstraintType::kLessEqual, 0.0, {{x, 1.0}, {y, -1.0}});
  LpResult rz = SolveLp(zero);
  ASSERT_EQ(rz.status, LpStatus::kOptimal);
  EXPECT_EQ(rz.phase1_iterations, 0);
  EXPECT_EQ(rz.iterations, rz.phase1_iterations + rz.phase2_iterations);
}

TEST(SimplexTest, GreaterEqualConstraints) {
  // min 2x + 3y st x + y >= 4, x >= 1 -> (4, 0) obj 8.
  LpModel m;
  int x = m.AddVariable(0, kLpInfinity, 2.0);
  int y = m.AddVariable(0, kLpInfinity, 3.0);
  m.AddConstraint(ConstraintType::kGreaterEqual, 4.0, {{x, 1.0}, {y, 1.0}});
  m.AddConstraint(ConstraintType::kGreaterEqual, 1.0, {{x, 1.0}});
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 8.0, 1e-6);
}

TEST(SimplexTest, DetectsInfeasible) {
  LpModel m;
  int x = m.AddVariable(0, 1, 1.0);
  m.AddConstraint(ConstraintType::kGreaterEqual, 5.0, {{x, 1.0}});
  EXPECT_EQ(SolveLp(m).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsInfeasibleEqualitySystem) {
  LpModel m;
  int x = m.AddVariable(0, kLpInfinity, 1.0);
  m.AddConstraint(ConstraintType::kEqual, 1.0, {{x, 1.0}});
  m.AddConstraint(ConstraintType::kEqual, 2.0, {{x, 1.0}});
  EXPECT_EQ(SolveLp(m).status, LpStatus::kInfeasible);
}

// Regression: the post-phase-1 feasibility re-check used a hardcoded 1e-6
// while the entry check honored options.tolerance, so a caller-loosened
// tolerance was ignored — a system infeasible by 5e-4 must count as
// feasible at tolerance 1e-2 (and stay infeasible at the 1e-7 default).
TEST(SimplexTest, PhaseOneRecheckHonorsNonDefaultTolerance) {
  LpModel m;
  int x = m.AddVariable(0, kLpInfinity, 1.0);
  m.AddConstraint(ConstraintType::kEqual, 1.0, {{x, 1.0}});
  m.AddConstraint(ConstraintType::kEqual, 1.0005, {{x, 1.0}});

  EXPECT_EQ(SolveLp(m).status, LpStatus::kInfeasible);

  LpOptions loose;
  loose.tolerance = 1e-2;
  const LpResult r = SolveLp(m, loose);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.primal[x], 1.0, 1e-2);
}

TEST(SimplexTest, DetectsUnbounded) {
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, kLpInfinity, 1.0);
  int y = m.AddVariable(0, kLpInfinity, 0.0);
  m.AddConstraint(ConstraintType::kGreaterEqual, 0.0, {{x, 1.0}, {y, -1.0}});
  EXPECT_EQ(SolveLp(m).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, HandlesBoundedVariablesViaFlips) {
  // max x + y with 1 <= x <= 2, 0 <= y <= 3 and x + y <= 4 -> (2, 2)? No:
  // optimum total 4 with x=2, y=2 (constraint binds). obj = 4.
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  int x = m.AddVariable(1, 2, 1.0);
  int y = m.AddVariable(0, 3, 1.0);
  m.AddConstraint(ConstraintType::kLessEqual, 4.0, {{x, 1.0}, {y, 1.0}});
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-6);
  EXPECT_GE(r.primal[x], 1.0 - 1e-9);
}

TEST(SimplexTest, HandlesNegativeLowerBounds) {
  // min x st x >= -5 (bound), x + 3 >= 0 -> x = -3.
  LpModel m;
  int x = m.AddVariable(-5, kLpInfinity, 1.0);
  m.AddConstraint(ConstraintType::kGreaterEqual, -3.0, {{x, 1.0}});
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.primal[x], -3.0, 1e-6);
}

TEST(SimplexTest, HandlesFreeVariables) {
  // min y st y >= x - 4, y >= -x, x free, y free: optimum y = -2 at x = 2.
  LpModel m;
  int x = m.AddVariable(-kLpInfinity, kLpInfinity, 0.0);
  int y = m.AddVariable(-kLpInfinity, kLpInfinity, 1.0);
  m.AddConstraint(ConstraintType::kGreaterEqual, -4.0, {{y, 1.0}, {x, -1.0}});
  m.AddConstraint(ConstraintType::kGreaterEqual, 0.0, {{y, 1.0}, {x, 1.0}});
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.0, 1e-6);
}

TEST(SimplexTest, FixedVariablesRespected) {
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  int x = m.AddVariable(2, 2, 1.0);  // fixed at 2
  int y = m.AddVariable(0, 10, 1.0);
  m.AddConstraint(ConstraintType::kLessEqual, 5.0, {{x, 1.0}, {y, 1.0}});
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.primal[x], 2.0, 1e-9);
  EXPECT_NEAR(r.primal[y], 3.0, 1e-6);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, kLpInfinity, 1.0);
  int y = m.AddVariable(0, kLpInfinity, 1.0);
  m.AddConstraint(ConstraintType::kLessEqual, 2.0, {{x, 1.0}, {y, 1.0}});
  m.AddConstraint(ConstraintType::kLessEqual, 2.0, {{x, 1.0}, {y, 1.0}});
  m.AddConstraint(ConstraintType::kLessEqual, 4.0, {{x, 2.0}, {y, 2.0}});
  m.AddConstraint(ConstraintType::kLessEqual, 2.0, {{x, 1.0}});
  m.AddConstraint(ConstraintType::kLessEqual, 2.0, {{y, 1.0}});
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
}

TEST(SimplexTest, RedundantEqualityRowsAreHandled) {
  LpModel m;
  int x = m.AddVariable(0, kLpInfinity, 1.0);
  int y = m.AddVariable(0, kLpInfinity, 1.0);
  m.AddConstraint(ConstraintType::kEqual, 2.0, {{x, 1.0}, {y, 1.0}});
  m.AddConstraint(ConstraintType::kEqual, 4.0, {{x, 2.0}, {y, 2.0}});  // 2x first
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
}

TEST(SimplexTest, EmptyModelIsTriviallyOptimal) {
  LpModel m;
  LpResult r = SolveLp(m);
  EXPECT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, 0.0);
}

TEST(SimplexTest, NoConstraintsUsesBounds) {
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  int x = m.AddVariable(-1, 7, 2.0);
  int y = m.AddVariable(-3, 5, -1.0);
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.primal[x], 7.0, 1e-9);
  EXPECT_NEAR(r.primal[y], -3.0, 1e-9);
  EXPECT_NEAR(r.objective, 17.0, 1e-9);
}

TEST(SimplexTest, DualsSatisfyStrongDualityOnKnownLp) {
  // max 3x + 5y as in the textbook case; duals (0, 1.5, 1) -> y.b = 36.
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, kLpInfinity, 3.0);
  int y = m.AddVariable(0, kLpInfinity, 5.0);
  m.AddConstraint(ConstraintType::kLessEqual, 4.0, {{x, 1.0}});
  m.AddConstraint(ConstraintType::kLessEqual, 12.0, {{y, 2.0}});
  m.AddConstraint(ConstraintType::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  ASSERT_EQ(r.dual.size(), 3u);
  double dual_obj = 4.0 * r.dual[0] + 12.0 * r.dual[1] + 18.0 * r.dual[2];
  EXPECT_NEAR(dual_obj, 36.0, 1e-6);
  EXPECT_NEAR(r.dual[1], 1.5, 1e-6);
  EXPECT_NEAR(r.dual[2], 1.0, 1e-6);
  // Reduced costs of basic variables vanish.
  EXPECT_NEAR(r.reduced_costs[x], 0.0, 1e-6);
  EXPECT_NEAR(r.reduced_costs[y], 0.0, 1e-6);
}


TEST(SimplexTest, GreaterEqualDualsHaveModelSenseSigns) {
  // min 2x st x >= 3: dual of the >= row should price the rhs: obj = 6.
  LpModel m;
  int x = m.AddVariable(0, kLpInfinity, 2.0);
  m.AddConstraint(ConstraintType::kGreaterEqual, 3.0, {{x, 1.0}});
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 6.0, 1e-9);
  ASSERT_EQ(r.dual.size(), 1u);
  EXPECT_NEAR(r.dual[0] * 3.0, 6.0, 1e-6);  // strong duality
}

TEST(SimplexTest, ManyPivotsStayNumericallyInBounds) {
  // A chain of coupled rows forces a long pivot sequence; the periodic
  // basic-value refresh must keep the returned primal inside its bounds.
  Rng rng(99);
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  const int n = 60;
  std::vector<int> vars;
  for (int j = 0; j < n; ++j) {
    vars.push_back(m.AddVariable(0.0, 3.0, rng.NextDouble(0.5, 2.0)));
  }
  for (int j = 0; j + 1 < n; ++j) {
    m.AddConstraint(ConstraintType::kLessEqual, rng.NextDouble(2.0, 5.0),
                    {{vars[j], 1.0}, {vars[j + 1], rng.NextDouble(0.5, 1.5)}});
  }
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  for (int j = 0; j < n; ++j) {
    EXPECT_GE(r.primal[j], -1e-9);
    EXPECT_LE(r.primal[j], 3.0 + 1e-9);
  }
  EXPECT_TRUE(m.CheckFeasible(r.primal, 1e-5).ok());
}
TEST(SimplexTest, DeadlineIsHonored) {
  LpOptions options;
  options.deadline = Deadline::AfterSeconds(0.0);
  LpModel m;
  int x = m.AddVariable(0, kLpInfinity, -1.0);
  m.AddConstraint(ConstraintType::kLessEqual, 1.0, {{x, 1.0}});
  LpResult r = SolveLp(m, options);
  // With an already-expired deadline we get a deadline status (the model is
  // not solved to optimality) unless it terminated before the first check.
  EXPECT_TRUE(r.status == LpStatus::kDeadlineExceeded ||
              r.status == LpStatus::kOptimal);
}

TEST(SimplexTest, IterationLimitReported) {
  LpOptions options;
  options.max_iterations = 1;
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  std::vector<int> vars;
  for (int i = 0; i < 6; ++i) vars.push_back(m.AddVariable(0, 10, 1.0 + i));
  for (int i = 0; i < 6; ++i) {
    m.AddConstraint(ConstraintType::kLessEqual, 5.0,
                    {{vars[i], 1.0}, {vars[(i + 1) % 6], 1.0}});
  }
  LpResult r = SolveLp(m, options);
  EXPECT_EQ(r.status, LpStatus::kIterationLimit);
}

// Property test: on random feasible LPs the simplex solution must be
// feasible and at least as good as a large random feasible sample.
class RandomLpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpTest, FeasibleAndNotBeatenByRandomSearch) {
  Rng rng(1000 + GetParam());
  const int n = 2 + static_cast<int>(rng.NextUint64(4));
  const int k = 1 + static_cast<int>(rng.NextUint64(4));
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  std::vector<double> ub(n);
  for (int j = 0; j < n; ++j) {
    ub[j] = 1.0 + rng.NextDouble() * 9.0;
    m.AddVariable(0.0, ub[j], rng.NextDouble(-2.0, 3.0));
  }
  // Constraints with nonnegative coefficients and rhs >= 0: x = 0 feasible.
  for (int c = 0; c < k; ++c) {
    std::vector<LinearTerm> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.NextBool(0.7)) terms.push_back({j, rng.NextDouble(0.1, 2.0)});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    m.AddConstraint(ConstraintType::kLessEqual, rng.NextDouble(1.0, 10.0),
                    std::move(terms));
  }
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal) << "param " << GetParam();
  EXPECT_TRUE(m.CheckFeasible(r.primal, 1e-5).ok());

  // Random search must not beat the simplex.
  double best_random = -1e300;
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<double> x(n);
    for (int j = 0; j < n; ++j) x[j] = rng.NextDouble() * ub[j];
    if (!m.CheckFeasible(x, 1e-9).ok()) {
      // Scale down until feasible (cheap repair).
      for (double f = 0.9; f > 0.05; f *= 0.8) {
        std::vector<double> y(n);
        for (int j = 0; j < n; ++j) y[j] = x[j] * f;
        if (m.CheckFeasible(y, 1e-9).ok()) {
          x = y;
          break;
        }
      }
      if (!m.CheckFeasible(x, 1e-9).ok()) continue;
    }
    best_random = std::max(best_random, m.ObjectiveValue(x));
  }
  EXPECT_GE(r.objective, best_random - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpTest, ::testing::Range(0, 25));

// Property: strong duality on random equality-constrained LPs with finite
// optimum — primal objective equals b'y + bound contributions.
class RandomDualityTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomDualityTest, ComplementarySlackness) {
  Rng rng(7000 + GetParam());
  const int n = 3 + static_cast<int>(rng.NextUint64(3));
  LpModel m;
  std::vector<double> ub(n);
  for (int j = 0; j < n; ++j) {
    ub[j] = 2.0 + rng.NextDouble() * 5.0;
    m.AddVariable(0.0, ub[j], rng.NextDouble(-1.0, 2.0));
  }
  const int k = 2;
  for (int c = 0; c < k; ++c) {
    std::vector<LinearTerm> terms;
    for (int j = 0; j < n; ++j) terms.push_back({j, rng.NextDouble(0.2, 1.5)});
    m.AddConstraint(ConstraintType::kLessEqual, rng.NextDouble(2.0, 8.0),
                    std::move(terms));
  }
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  // For each constraint: dual != 0 implies the row is tight.
  for (int c = 0; c < m.num_constraints(); ++c) {
    double lhs = 0.0;
    for (const LinearTerm& t : m.constraint_terms(c)) {
      lhs += t.coefficient * r.primal[t.variable];
    }
    if (std::abs(r.dual[c]) > 1e-6) {
      EXPECT_NEAR(lhs, m.rhs(c), 1e-5) << "constraint " << c;
    }
  }
  // For each variable strictly inside its bounds, reduced cost ~ 0.
  for (int j = 0; j < n; ++j) {
    if (r.primal[j] > 1e-6 && r.primal[j] < ub[j] - 1e-6) {
      EXPECT_NEAR(r.reduced_costs[j], 0.0, 1e-5) << "variable " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDualityTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace rasa
