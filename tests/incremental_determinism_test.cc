// Bit-identity matrix for incremental re-optimization (the acceptance
// criterion of the delta-aware control loop): with full-drift input the
// incremental path must be indistinguishable from the stock full resolve —
// placements and timing-stripped explain reports bit-identical — at 1, 4
// and 8 solver threads, and a `--resume` after a mid-cycle crash must
// replay an incremental workflow to the same final placement as the
// uninterrupted run.
//
// Solver budgets are generous so no deadline fires mid-solve (see
// core_rasa_determinism_test.cc for the reasoning).

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/generator.h"
#include "common/durable_io.h"
#include "common/json_writer.h"
#include "common/logging.h"
#include "core/explain.h"
#include "core/objective.h"
#include "core/rasa.h"
#include "gtest/gtest.h"
#include "sim/workflow.h"

namespace rasa {
namespace {

constexpr int kThreadCounts[] = {1, 4, 8};

const ClusterSnapshot& TestSnapshot() {
  static const ClusterSnapshot* snapshot = [] {
    ClusterSpec spec = M1Spec(40.0);
    spec.seed = 23;
    StatusOr<ClusterSnapshot> s = GenerateCluster(spec);
    EXPECT_TRUE(s.ok());
    return new ClusterSnapshot(*std::move(s));
  }();
  return *snapshot;
}

RasaOptions SolverOptions(int threads) {
  RasaOptions options;
  options.timeout_seconds = 30.0;
  options.partitioning.max_subproblem_services = 12;
  options.num_threads = threads;
  options.seed = 99;
  return options;
}

std::string TimingStrippedExplainJson(const ExplainReport& report) {
  JsonWriter w;
  AppendExplainJson(w, report, /*include_timings=*/false);
  return w.str();
}

// Bit-exact equality of everything except wall-clock timings, including
// the rendered explain report.
void ExpectIdenticalResults(const RasaResult& a, const RasaResult& b) {
  EXPECT_EQ(a.new_placement.DiffCount(b.new_placement), 0);
  EXPECT_EQ(b.new_placement.DiffCount(a.new_placement), 0);
  EXPECT_EQ(a.new_gained_affinity, b.new_gained_affinity);
  EXPECT_EQ(a.original_gained_affinity, b.original_gained_affinity);
  EXPECT_EQ(a.should_execute, b.should_execute);
  EXPECT_EQ(a.moved_containers, b.moved_containers);
  EXPECT_EQ(a.solver_failures, b.solver_failures);
  EXPECT_EQ(a.greedy_fallbacks, b.greedy_fallbacks);
  EXPECT_EQ(a.migration.batches.size(), b.migration.batches.size());
  EXPECT_EQ(TimingStrippedExplainJson(a.report),
            TimingStrippedExplainJson(b.report));
}

// The cold-start fallback (invalid state) must be the stock pipeline:
// the incremental path == a cold Optimize, bit for bit, at every thread count.
TEST(IncrementalDeterminismTest, ColdStartMatchesFullResolve) {
  const ClusterSnapshot& snapshot = TestSnapshot();
  for (int threads : kThreadCounts) {
    SCOPED_TRACE(::testing::Message() << threads << " threads");
    const RasaOptimizer optimizer(
        SolverOptions(threads), AlgorithmSelector(SelectorPolicy::kHeuristic));
    StatusOr<RasaResult> full =
        optimizer.Optimize(*snapshot.cluster, snapshot.original_placement);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    IncrementalState state;
    StatusOr<RasaResult> inc = optimizer.Optimize(
        *snapshot.cluster, snapshot.original_placement,
        OptimizeContext(nullptr, &state));
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    EXPECT_FALSE(inc->incremental);
    ExpectIdenticalResults(*full, *inc);
  }
}

// Full-drift input: every subproblem re-weighted past the tolerance, so
// the differ's drift threshold forces the full-resolve fallback — which
// must again be bit-identical to plain Optimize on the same input.
TEST(IncrementalDeterminismTest, FullDriftInputMatchesFullResolve) {
  const ClusterSnapshot& snapshot = TestSnapshot();
  AffinityGraph skewed(snapshot.cluster->num_services());
  int i = 0;
  for (const AffinityEdge& e : snapshot.cluster->affinity().edges()) {
    skewed.AddEdge(e.u, e.v, e.weight * (1.0 + 0.2 * (++i % 5) + 0.01));
  }
  skewed.NormalizeWeights();
  const Cluster drifted(snapshot.cluster->resource_names(),
                        snapshot.cluster->services(),
                        snapshot.cluster->machines(), std::move(skewed),
                        snapshot.cluster->anti_affinity());
  Placement rebound(drifted);
  for (int m = 0; m < drifted.num_machines(); ++m) {
    for (const auto& [s, count] : snapshot.original_placement.ServicesOn(m)) {
      rebound.Add(m, s, count);
    }
  }
  for (int threads : kThreadCounts) {
    SCOPED_TRACE(::testing::Message() << threads << " threads");
    const RasaOptimizer optimizer(
        SolverOptions(threads), AlgorithmSelector(SelectorPolicy::kHeuristic));
    // Prime the state on the original snapshot, then hit it with the
    // fully-drifted input.
    IncrementalState state;
    ASSERT_TRUE(optimizer
                    .Optimize(*snapshot.cluster, snapshot.original_placement,
                              OptimizeContext(nullptr, &state))
                    .ok());
    StatusOr<RasaResult> full = optimizer.Optimize(drifted, rebound);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    StatusOr<RasaResult> inc =
        optimizer.Optimize(drifted, rebound, OptimizeContext(nullptr, &state));
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    EXPECT_FALSE(inc->incremental);
    EXPECT_EQ(inc->incremental_reason, "drift-threshold");
    ExpectIdenticalResults(*full, *inc);
  }
}

// The steady-state reuse path itself is scheduling-independent: an
// incremental workflow replays bit-for-bit at every thread count.
TEST(IncrementalDeterminismTest, IncrementalWorkflowAgreesAcrossThreads) {
  const ClusterSnapshot& snapshot = TestSnapshot();
  auto run = [&](int threads) {
    WorkflowOptions options;
    options.cycles = 3;
    options.drift_fraction = 0.02;
    // Noise-free measurement: per-cycle weight noise is full drift to the
    // differ and would force the fallback every cycle.
    options.measurement_noise = 0.0;
    options.rasa = SolverOptions(threads);
    options.rasa.timeout_seconds = 15.0;
    options.incremental = true;
    options.seed = 909;
    StatusOr<WorkflowReport> report = RunWorkflow(
        *snapshot.cluster, snapshot.original_placement,
        AlgorithmSelector(SelectorPolicy::kHeuristic), options);
    RASA_CHECK(report.ok()) << report.status().ToString();
    return *std::move(report);
  };
  const WorkflowReport seq = run(1);
  // The run must actually exercise the reuse path, not just fall back.
  int reused_cycles = 0;
  for (const CycleReport& cr : seq.cycles) reused_cycles += cr.incremental;
  EXPECT_GT(reused_cycles, 0);
  for (int threads : {4, 8}) {
    SCOPED_TRACE(::testing::Message() << threads << " threads");
    const WorkflowReport par = run(threads);
    EXPECT_EQ(seq.final_placement.DiffCount(par.final_placement), 0);
    EXPECT_EQ(par.final_placement.DiffCount(seq.final_placement), 0);
    ASSERT_EQ(seq.cycles.size(), par.cycles.size());
    for (size_t c = 0; c < seq.cycles.size(); ++c) {
      SCOPED_TRACE(::testing::Message() << "cycle " << c);
      EXPECT_EQ(seq.cycles[c].affinity_after, par.cycles[c].affinity_after);
      EXPECT_EQ(seq.cycles[c].incremental, par.cycles[c].incremental);
      EXPECT_EQ(seq.cycles[c].dirty_subproblems,
                par.cycles[c].dirty_subproblems);
      EXPECT_EQ(seq.cycles[c].reused_subproblems,
                par.cycles[c].reused_subproblems);
      EXPECT_EQ(seq.cycles[c].incremental_reason,
                par.cycles[c].incremental_reason);
      EXPECT_EQ(TimingStrippedExplainJson(seq.cycles[c].explain),
                TimingStrippedExplainJson(par.cycles[c].explain));
    }
  }
}

std::string FreshStateDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/rasa_incremental_" + name;
  std::remove((dir + "/journal.wal").c_str());
  std::remove((dir + "/checkpoint").c_str());
  std::remove((dir + "/checkpoint.prev").c_str());
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  return dir;
}

// Crash an incremental durable run mid-cycle, resume it, and require the
// final placement to match the uninterrupted durable run bit-for-bit: the
// journaled/checkpointed delta state must hand the resumed run the exact
// cache the dead controller carried.
TEST(IncrementalDeterminismTest, ResumeAfterMidCycleCrashReplaysIdentically) {
  const ClusterSnapshot& snapshot = TestSnapshot();
  auto base_options = [&](int threads) {
    WorkflowOptions options;
    options.cycles = 3;
    options.drift_fraction = 0.02;
    options.measurement_noise = 0.0;
    options.rasa = SolverOptions(threads);
    options.rasa.timeout_seconds = 15.0;
    // Small drift recovers small improvements: keep the dry-run threshold
    // below them so every cycle executes and the command-crash point fires.
    options.rasa.min_improvement = 0.0005;
    options.incremental = true;
    options.seed = 909;
    return options;
  };
  auto must_run = [&](const WorkflowOptions& options,
                      const Placement& initial) {
    StatusOr<WorkflowReport> report = RunWorkflow(
        *snapshot.cluster, initial,
        AlgorithmSelector(SelectorPolicy::kHeuristic), options);
    RASA_CHECK(report.ok()) << report.status().ToString();
    return *std::move(report);
  };
  for (int threads : kThreadCounts) {
    SCOPED_TRACE(::testing::Message() << threads << " threads");
    const std::string tag = "t" + std::to_string(threads);

    WorkflowOptions uninterrupted = base_options(threads);
    uninterrupted.state_dir = FreshStateDir("baseline_" + tag);
    const WorkflowReport baseline =
        must_run(uninterrupted, snapshot.original_placement);
    ASSERT_FALSE(baseline.crashed);
    int reused_cycles = 0;
    for (const CycleReport& cr : baseline.cycles) {
      reused_cycles += cr.incremental;
    }
    ASSERT_GT(reused_cycles, 0) << "baseline never exercised reuse";

    // Crash mid-execution of a later cycle: by then the delta state in the
    // journal/checkpoint is live and must survive the crash.
    WorkflowOptions crash_options = base_options(threads);
    crash_options.state_dir = FreshStateDir("crash_" + tag);
    crash_options.inject_faults = true;
    crash_options.faults.crash_after_commands =
        baseline.cycles[0].moved_containers + 3;
    const WorkflowReport crashed =
        must_run(crash_options, snapshot.original_placement);
    ASSERT_TRUE(crashed.crashed) << "crash point never fired";

    WorkflowOptions resume_options = base_options(threads);
    resume_options.state_dir = crash_options.state_dir;
    resume_options.resume = true;
    const WorkflowReport resumed =
        must_run(resume_options, crashed.final_placement);
    EXPECT_FALSE(resumed.crashed);
    EXPECT_TRUE(resumed.recovery.recovered);
    EXPECT_EQ(resumed.sla_violations, 0);
    EXPECT_EQ(resumed.feasibility_violations, 0);
    EXPECT_EQ(resumed.final_placement.DiffCount(baseline.final_placement), 0)
        << "resumed incremental run diverged from the uninterrupted one";
    EXPECT_EQ(baseline.final_placement.DiffCount(resumed.final_placement), 0);
    EXPECT_EQ(GainedAffinity(*snapshot.cluster, resumed.final_placement),
              GainedAffinity(*snapshot.cluster, baseline.final_placement));
  }
}

}  // namespace
}  // namespace rasa
