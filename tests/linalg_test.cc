#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace rasa {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, MatMulSmallKnown) {
  Matrix a(2, 3);
  // [1 2 3; 4 5 6]
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  Matrix b(3, 2);
  // [7 8; 9 10; 11 12]
  b(0, 0) = 7; b(0, 1) = 8;
  b(1, 0) = 9; b(1, 1) = 10;
  b(2, 0) = 11; b(2, 1) = 12;
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(MatrixTest, MatMulWithIdentityIsNoop) {
  Rng rng(1);
  Matrix a = Matrix::Random(4, 4, 1.0, rng);
  Matrix b = a.MatMul(Matrix::Identity(4));
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(b(i, j), a(i, j));
  }
}

TEST(MatrixTest, TransposeRoundTrips) {
  Rng rng(2);
  Matrix a = Matrix::Random(3, 5, 2.0, rng);
  Matrix att = a.Transpose().Transpose();
  EXPECT_TRUE(att.SameShape(a));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(att(i, j), a(i, j));
  }
}

TEST(MatrixTest, TransposeOfProduct) {
  // (AB)^T == B^T A^T
  Rng rng(3);
  Matrix a = Matrix::Random(3, 4, 1.0, rng);
  Matrix b = Matrix::Random(4, 2, 1.0, rng);
  Matrix lhs = a.MatMul(b).Transpose();
  Matrix rhs = b.Transpose().MatMul(a.Transpose());
  for (int i = 0; i < lhs.rows(); ++i) {
    for (int j = 0; j < lhs.cols(); ++j) {
      EXPECT_NEAR(lhs(i, j), rhs(i, j), 1e-12);
    }
  }
}

TEST(MatrixTest, AddSubScale) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 2.5);
  a.AddInPlace(b);
  EXPECT_DOUBLE_EQ(a(0, 0), 3.5);
  a.SubInPlace(b);
  EXPECT_DOUBLE_EQ(a(1, 1), 1.0);
  a.ScaleInPlace(-4.0);
  EXPECT_DOUBLE_EQ(a(0, 1), -4.0);
}

TEST(MatrixTest, AddRowBroadcast) {
  Matrix a(2, 3, 1.0);
  Matrix row(1, 3);
  row(0, 0) = 1; row(0, 1) = 2; row(0, 2) = 3;
  a.AddRowBroadcast(row);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(1, 2), 4.0);
}

TEST(MatrixTest, ReluAndMask) {
  Matrix a(1, 4);
  a(0, 0) = -1; a(0, 1) = 0; a(0, 2) = 2; a(0, 3) = -0.5;
  Matrix r = a.Relu();
  EXPECT_DOUBLE_EQ(r(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r(0, 2), 2.0);
  Matrix m = a.ReluMask();
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m(0, 2), 1.0);
}

TEST(MatrixTest, Hadamard) {
  Matrix a(1, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  Matrix b(1, 3);
  b(0, 0) = 4; b(0, 1) = 5; b(0, 2) = 6;
  Matrix h = a.Hadamard(b);
  EXPECT_DOUBLE_EQ(h(0, 0), 4);
  EXPECT_DOUBLE_EQ(h(0, 1), 10);
  EXPECT_DOUBLE_EQ(h(0, 2), 18);
}

TEST(MatrixTest, SoftmaxRowsSumToOneAndOrder) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 1000; a(1, 1) = 1001; a(1, 2) = 999;  // numerical stability
  Matrix s = a.SoftmaxRows();
  for (int i = 0; i < 2; ++i) {
    double sum = 0.0;
    for (int j = 0; j < 3; ++j) {
      EXPECT_GT(s(i, j), 0.0);
      sum += s(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  EXPECT_GT(s(0, 2), s(0, 1));
  EXPECT_GT(s(1, 1), s(1, 0));
  EXPECT_GT(s(1, 0), s(1, 2));
}

TEST(MatrixTest, MeanRows) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 3;
  a(1, 0) = 5; a(1, 1) = 7;
  Matrix m = a.MeanRows();
  EXPECT_EQ(m.rows(), 1);
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 5.0);
}

TEST(MatrixTest, SumAndNorm) {
  Matrix a(2, 2);
  a(0, 0) = 3; a(0, 1) = 4;
  EXPECT_DOUBLE_EQ(a.Sum(), 7.0);
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, RandomRespectsScale) {
  Rng rng(9);
  Matrix a = Matrix::Random(10, 10, 0.5, rng);
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      EXPECT_GE(a(i, j), -0.5);
      EXPECT_LE(a(i, j), 0.5);
    }
  }
}

TEST(MatrixTest, EmptyMatrixBehaves) {
  Matrix a;
  EXPECT_EQ(a.rows(), 0);
  EXPECT_EQ(a.cols(), 0);
  EXPECT_DOUBLE_EQ(a.Sum(), 0.0);
  Matrix m = a.MeanRows();
  EXPECT_EQ(m.cols(), 0);
}

TEST(MatrixTest, DebugStringMentionsShape) {
  Matrix a(3, 2, 1.0);
  EXPECT_NE(a.DebugString().find("3x2"), std::string::npos);
}

// ------------------------------------------------------------ CsrMatrix ---

TEST(CsrMatrixTest, FromTripletsSortsAndMergesDuplicates) {
  // Rows arrive out of order with one duplicate entry.
  CsrMatrix m = CsrMatrix::FromTriplets(
      2, 3, {1, 0, 0, 1, 0}, {2, 1, 0, 2, 1}, {4.0, 1.0, 2.0, 0.5, 3.0});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 4.0);  // 1.0 + 3.0 merged
  EXPECT_DOUBLE_EQ(m.At(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 4.5);  // 4.0 + 0.5 merged
}

TEST(CsrMatrixTest, SpMMBitIdenticalToDenseMatMul) {
  Rng rng(91);
  const int n = 40;
  // ~20% dense random symmetric-ish matrix via triplets.
  std::vector<int> rows, cols;
  std::vector<double> vals;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (!rng.NextBool(0.2)) continue;
      rows.push_back(i);
      cols.push_back(j);
      vals.push_back(rng.NextDouble(-2.0, 2.0));
    }
  }
  CsrMatrix sparse = CsrMatrix::FromTriplets(n, n, rows, cols, vals);
  const Matrix dense = sparse.ToDense();
  Matrix b = Matrix::Random(n, 7, 1.0, rng);
  const Matrix via_sparse = sparse.MatMul(b);
  const Matrix via_dense = dense.MatMul(b);
  ASSERT_TRUE(via_sparse.SameShape(via_dense));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < 7; ++j) {
      EXPECT_EQ(via_sparse(i, j), via_dense(i, j)) << i << "," << j;
    }
  }
}

TEST(CsrMatrixTest, EmptyRowsHandled) {
  CsrMatrix m = CsrMatrix::FromTriplets(3, 2, {1}, {0}, {5.0});
  Matrix out = m.MatMul(Matrix(2, 2, 1.0));
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(out(2, 1), 0.0);
}

}  // namespace
}  // namespace rasa
