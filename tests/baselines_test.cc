#include "baselines/baselines.h"

#include "cluster/generator.h"
#include "core/objective.h"
#include "gtest/gtest.h"

namespace rasa {
namespace {

class BaselinesFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M1Spec(32.0));
    ASSERT_TRUE(snapshot.ok());
    snapshot_ = std::move(snapshot).value();
  }
  ClusterSnapshot snapshot_;
};

TEST_F(BaselinesFixture, OriginalIsFeasibleAndAffinityBlind) {
  StatusOr<BaselineResult> result = RunOriginal(*snapshot_.cluster, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->placement.CheckFeasible(true).ok());
  EXPECT_EQ(result->lost_containers, 0);
  EXPECT_GE(result->gained_affinity, 0.0);
  EXPECT_NEAR(result->gained_affinity,
              GainedAffinity(*snapshot_.cluster, result->placement), 1e-12);
}

TEST_F(BaselinesFixture, K8sPlusBeatsOriginalOnAffinity) {
  StatusOr<BaselineResult> original = RunOriginal(*snapshot_.cluster, 1);
  StatusOr<BaselineResult> k8s =
      RunK8sPlus(*snapshot_.cluster, Deadline::AfterSeconds(30), 1);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(k8s.ok());
  EXPECT_TRUE(k8s->placement.CheckFeasible(true).ok());
  EXPECT_GT(k8s->gained_affinity, original->gained_affinity);
}

TEST_F(BaselinesFixture, PopProducesFeasiblePlacement) {
  StatusOr<BaselineResult> pop =
      RunPop(*snapshot_.cluster, snapshot_.original_placement,
             Deadline::AfterSeconds(3), 1);
  ASSERT_TRUE(pop.ok());
  EXPECT_TRUE(pop->placement.CheckFeasible(false).ok());
  EXPECT_EQ(pop->lost_containers, 0);
  // SLA: every service fully deployed (fallback catches stragglers).
  for (int s = 0; s < snapshot_.cluster->num_services(); ++s) {
    EXPECT_EQ(pop->placement.TotalOf(s),
              snapshot_.cluster->service(s).demand);
  }
}

TEST_F(BaselinesFixture, Applsci19ProducesFeasiblePlacement) {
  StatusOr<BaselineResult> result =
      RunApplsci19(*snapshot_.cluster, snapshot_.original_placement,
                   Deadline::AfterSeconds(10), 1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->placement.CheckFeasible(false).ok());
  EXPECT_EQ(result->lost_containers, 0);
  for (int s = 0; s < snapshot_.cluster->num_services(); ++s) {
    EXPECT_EQ(result->placement.TotalOf(s),
              snapshot_.cluster->service(s).demand);
  }
}

TEST_F(BaselinesFixture, Applsci19BeatsOriginal) {
  StatusOr<BaselineResult> original = RunOriginal(*snapshot_.cluster, 1);
  StatusOr<BaselineResult> appl =
      RunApplsci19(*snapshot_.cluster, snapshot_.original_placement,
                   Deadline::AfterSeconds(10), 1);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(appl.ok());
  EXPECT_GT(appl->gained_affinity, original->gained_affinity);
}

TEST_F(BaselinesFixture, PopPartitionCountIsConfigurable) {
  StatusOr<BaselineResult> few =
      RunPop(*snapshot_.cluster, snapshot_.original_placement,
             Deadline::AfterSeconds(2), 1, 2);
  StatusOr<BaselineResult> many =
      RunPop(*snapshot_.cluster, snapshot_.original_placement,
             Deadline::AfterSeconds(2), 1, 16);
  ASSERT_TRUE(few.ok());
  ASSERT_TRUE(many.ok());
  // Both complete; just exercise the parameter path.
  EXPECT_GE(few->gained_affinity, 0.0);
  EXPECT_GE(many->gained_affinity, 0.0);
}

TEST_F(BaselinesFixture, BaselinesAreDeterministicInSeed) {
  StatusOr<BaselineResult> a =
      RunK8sPlus(*snapshot_.cluster, Deadline::AfterSeconds(30), 7);
  StatusOr<BaselineResult> b =
      RunK8sPlus(*snapshot_.cluster, Deadline::AfterSeconds(30), 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->placement.DiffCount(b->placement), 0);
  EXPECT_DOUBLE_EQ(a->gained_affinity, b->gained_affinity);
}

TEST_F(BaselinesFixture, SecondsAreMeasured) {
  StatusOr<BaselineResult> result = RunOriginal(*snapshot_.cluster, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->seconds, 0.0);
  EXPECT_LT(result->seconds, 60.0);
}

}  // namespace
}  // namespace rasa
