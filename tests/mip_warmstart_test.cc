// Warm-start property tests on the fig-9 / fig-10 style subproblem
// instances: branch-and-bound with parent-basis warm starts must be a
// speed knob only.
//
// What that means precisely: a warm-started node solve must reach the
// SAME relaxation objective and status as a from-scratch solve of the
// identical node LP. It may land on a different optimal *vertex* — these
// packing relaxations are massively degenerate, so the optimal face has
// many corners and the dual-repair path ends on a different one than the
// cold two-phase path. Branching reads the vertex, so the explored trees
// can legitimately differ node-for-node; what cannot differ is any bound
// or relaxation value either tree reports. The first test pins that down
// by replaying one tree and solving every node LP both ways; the second
// checks the end-to-end search still engages warm starts and pays fewer
// pivots for it.

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/generator.h"
#include "core/mip_algorithm.h"
#include "core/partitioning.h"
#include "gtest/gtest.h"
#include "mip/solver.h"

namespace rasa {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// First fig-9/fig-10 style instance: Table II's M1 cluster partitioned
// into crucial subproblems, each yielding one subproblem MIP.
// LP-relaxation feasibility: bounds and rows only. LpModel::CheckFeasible
// also enforces integrality, which relaxation vertices do not satisfy.
void ExpectRelaxationFeasible(const LpModel& model,
                              const std::vector<double>& x, double tol,
                              int depth) {
  ASSERT_EQ(static_cast<int>(x.size()), model.num_variables());
  for (int v = 0; v < model.num_variables(); ++v) {
    EXPECT_GE(x[v], model.lower_bound(v) - tol) << "depth " << depth;
    EXPECT_LE(x[v], model.upper_bound(v) + tol) << "depth " << depth;
  }
  for (int c = 0; c < model.num_constraints(); ++c) {
    double lhs = 0.0;
    for (const LinearTerm& t : model.constraint_terms(c)) {
      lhs += t.coefficient * x[t.variable];
    }
    switch (model.constraint_type(c)) {
      case ConstraintType::kLessEqual:
        EXPECT_LE(lhs, model.rhs(c) + tol) << "depth " << depth;
        break;
      case ConstraintType::kGreaterEqual:
        EXPECT_GE(lhs, model.rhs(c) - tol) << "depth " << depth;
        break;
      case ConstraintType::kEqual:
        EXPECT_NEAR(lhs, model.rhs(c), tol) << "depth " << depth;
        break;
    }
  }
}

LpModel FirstEligibleSubproblemModel(double scale) {
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M1Spec(scale));
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  if (!snapshot.ok()) return LpModel();
  PartitionResult partition = PartitionServices(
      *snapshot->cluster, snapshot->original_placement, {});
  for (const Subproblem& sp : partition.subproblems) {
    if (sp.services.empty() || sp.machines.empty()) continue;
    StatusOr<SubproblemMip> mip =
        BuildSubproblemMip(*snapshot->cluster, sp, partition.base_placement,
                           /*max_model_rows=*/2000);
    if (!mip.ok()) continue;
    const int rows = mip->model.num_constraints();
    if (rows < 8 || rows > 400) continue;
    return mip->model;
  }
  return LpModel();
}

struct ReplayNode {
  // Cumulative (variable, lower, upper) tightenings from the root.
  std::vector<std::array<double, 3>> bounds;
  std::shared_ptr<const LpBasis> parent_basis;
  int depth = 0;
};

// Replays a branch-and-bound expansion driven by the cold solves and, at
// every node, also solves the identical LP warm-started from the parent
// basis. Objectives and statuses must match exactly; vertices may not.
TEST(MipWarmStartTest, NodeRelaxationsMatchColdSolves) {
  const LpModel model = FirstEligibleSubproblemModel(48.0);
  ASSERT_GE(model.num_constraints(), 8) << "generator produced no instance";

  std::deque<ReplayNode> open;
  open.push_back({});
  int solved = 0;
  int warm_engaged = 0;
  int warm_eligible = 0;
  while (!open.empty() && solved < 32) {
    ReplayNode node = std::move(open.front());
    open.pop_front();
    LpModel scratch = model;
    for (const auto& b : node.bounds) {
      const int v = static_cast<int>(b[0]);
      scratch.SetBounds(v, std::max(scratch.lower_bound(v), b[1]),
                        std::min(scratch.upper_bound(v), b[2]));
    }

    LpOptions cold_opts;
    cold_opts.dense_size_cutoff = 0;  // force the revised kernel
    LpBasis cold_basis;
    cold_opts.result_basis = &cold_basis;
    const LpResult cold = SolveLp(scratch, cold_opts);

    LpOptions warm_opts;
    warm_opts.dense_size_cutoff = 0;
    if (node.parent_basis != nullptr) {
      warm_opts.warm_basis = node.parent_basis.get();
      ++warm_eligible;
    }
    const LpResult warm = SolveLp(scratch, warm_opts);
    ++solved;

    ASSERT_EQ(cold.status, warm.status) << "depth " << node.depth;
    EXPECT_FALSE(cold.warm_started);
    if (warm.warm_started) ++warm_engaged;
    if (cold.status != LpStatus::kOptimal) continue;
    EXPECT_NEAR(cold.objective, warm.objective,
                1e-9 * std::max(1.0, std::abs(cold.objective)))
        << "depth " << node.depth;
    // Both vertices must satisfy the node LP even when they differ.
    ExpectRelaxationFeasible(scratch, cold.primal, 1e-5, node.depth);
    ExpectRelaxationFeasible(scratch, warm.primal, 1e-5, node.depth);

    // Branch on the most fractional integer of the cold solution, exactly
    // like the production node loop.
    int pick = -1;
    double best = 1e-6;
    for (int v = 0; v < scratch.num_variables(); ++v) {
      if (!scratch.is_integer(v)) continue;
      const double f = std::abs(cold.primal[v] - std::round(cold.primal[v]));
      const double dist = std::min(f, 1.0 - f);
      if (dist > best) {
        best = dist;
        pick = v;
      }
    }
    if (pick < 0 || node.depth >= 6) continue;
    auto basis = std::make_shared<const LpBasis>(std::move(cold_basis));
    ReplayNode down = node;
    ReplayNode up = node;
    down.depth = up.depth = node.depth + 1;
    down.parent_basis = up.parent_basis = basis;
    const double value = cold.primal[pick];
    down.bounds.push_back({static_cast<double>(pick), -kInf,
                           std::floor(value)});
    up.bounds.push_back({static_cast<double>(pick), std::ceil(value), kInf});
    open.push_back(std::move(down));
    open.push_back(std::move(up));
  }
  EXPECT_GE(solved, 16) << "replay tree collapsed too early";
  // The warm machinery must actually engage on most interior nodes; a
  // repair that fails its pivot budget cold-restarts (warm_started=false),
  // which is allowed but must stay the exception.
  EXPECT_GT(warm_eligible, 0);
  EXPECT_GE(warm_engaged * 2, warm_eligible);
}

// End to end: the warm-started search must engage on interior nodes, pay
// fewer simplex pivots than the cold search for the same node budget, and
// keep producing feasible incumbents. Both runs are deterministic, so the
// comparison is stable run to run.
TEST(MipWarmStartTest, WarmSearchEngagesAndSavesPivots) {
  const LpModel model = FirstEligibleSubproblemModel(40.0);
  ASSERT_GE(model.num_constraints(), 8) << "generator produced no instance";

  auto run = [&](bool warm) {
    MipOptions options;
    options.warm_start_nodes = warm;
    options.lp_options.dense_size_cutoff = 0;  // force the revised kernel
    options.max_nodes = 60;
    options.relative_gap = 1e-4;  // the pool's production gap
    return SolveMip(model, options);
  };
  const MipResult cold = run(false);
  const MipResult warm = run(true);

  EXPECT_EQ(cold.warm_started_nodes, 0);
  ASSERT_GT(warm.nodes_explored, 1);
  EXPECT_GT(warm.warm_started_nodes, 0);
  ASSERT_TRUE(cold.has_solution());
  ASSERT_TRUE(warm.has_solution());
  EXPECT_TRUE(model.CheckFeasible(cold.solution, 1e-5).ok());
  EXPECT_TRUE(model.CheckFeasible(warm.solution, 1e-5).ok());
  // The speed-knob property: same node budget, strictly fewer pivots.
  EXPECT_LT(warm.lp_iterations, cold.lp_iterations);
  // Reported bounds must bracket the incumbents in both runs.
  const bool maximize =
      model.objective_sense() == ObjectiveSense::kMaximize;
  const double slack = 1e-6;
  if (maximize) {
    EXPECT_GE(cold.best_bound + slack, cold.objective);
    EXPECT_GE(warm.best_bound + slack, warm.objective);
  } else {
    EXPECT_LE(cold.best_bound - slack, cold.objective);
    EXPECT_LE(warm.best_bound - slack, warm.objective);
  }
}

}  // namespace
}  // namespace rasa
