#include "core/recovery.h"

#include <cstdio>
#include <memory>
#include <string>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "sim/fault_injection.h"
#include "test_util.h"

namespace rasa {
namespace {

using ::rasa::testing::ClusterBuilder;

std::string FreshStateDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/rasa_recovery_" + name;
  std::remove((dir + "/journal.wal").c_str());
  std::remove((dir + "/checkpoint").c_str());
  std::remove((dir + "/checkpoint.prev").c_str());
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  return dir;
}

// 3 services x 2 containers on 4 roomy machines; single resource.
std::shared_ptr<Cluster> SmallCluster() {
  return ClusterBuilder()
      .AddService(2, {1.0})
      .AddService(2, {1.0})
      .AddService(2, {1.0})
      .AddMachine({10.0})
      .AddMachine({10.0})
      .AddMachine({10.0})
      .AddMachine({10.0})
      .AddAffinity(0, 1, 1.0)
      .Build();
}

// s0 on m0, s1 on m1, s2 on m2 (2 containers each).
Placement StartPlacement(const Cluster& cluster) {
  Placement p(cluster);
  p.Add(0, 0, 2);
  p.Add(1, 1, 2);
  p.Add(2, 2, 2);
  return p;
}

WorkflowCheckpoint MakeCheckpoint(std::shared_ptr<Cluster> cluster,
                                  int next_cycle) {
  WorkflowCheckpoint c;
  c.next_cycle = next_cycle;
  c.rng_state = Rng(7).SerializeState();
  c.frozen_cooldown = {0, 2, 1};
  c.counters.executions = 4;
  c.counters.dry_runs = 1;
  c.counters.rollbacks = 2;
  c.counters.command_retries = 9;
  c.counters.sla_violations = 0;
  c.ledger.subproblems = 5;
  c.ledger.greedy_fallbacks = 1;
  c.ledger.certificate_gap = 0.125;
  c.snapshot.name = "test-checkpoint";
  c.snapshot.cluster = cluster;
  c.snapshot.original_placement = StartPlacement(*cluster);
  return c;
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  const std::string dir = FreshStateDir("roundtrip");
  std::shared_ptr<Cluster> cluster = SmallCluster();
  const WorkflowCheckpoint original = MakeCheckpoint(cluster, 3);
  ASSERT_TRUE(SaveWorkflowCheckpoint(dir, original).ok());

  StatusOr<LoadedCheckpoint> loaded = LoadWorkflowCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_FALSE(loaded->used_previous);
  const WorkflowCheckpoint& c = loaded->checkpoint;
  EXPECT_EQ(c.next_cycle, 3);
  EXPECT_EQ(c.rng_state, original.rng_state);
  EXPECT_EQ(c.frozen_cooldown, original.frozen_cooldown);
  EXPECT_EQ(c.counters.executions, 4);
  EXPECT_EQ(c.counters.dry_runs, 1);
  EXPECT_EQ(c.counters.rollbacks, 2);
  EXPECT_EQ(c.counters.command_retries, 9);
  EXPECT_EQ(c.ledger.subproblems, 5);
  EXPECT_EQ(c.ledger.greedy_fallbacks, 1);
  EXPECT_DOUBLE_EQ(c.ledger.certificate_gap, 0.125);
  ASSERT_NE(c.snapshot.cluster, nullptr);
  EXPECT_EQ(c.snapshot.cluster->num_services(), 3);
  EXPECT_EQ(c.snapshot.cluster->num_machines(), 4);
  // The placement survives exactly (rebound onto the decoded cluster).
  EXPECT_EQ(c.snapshot.original_placement.CountOn(0, 0), 2);
  EXPECT_EQ(c.snapshot.original_placement.CountOn(1, 1), 2);
  EXPECT_EQ(c.snapshot.original_placement.CountOn(2, 2), 2);
}

TEST(CheckpointTest, RotationFallsBackToPreviousOnTornCurrent) {
  const std::string dir = FreshStateDir("rotation");
  std::shared_ptr<Cluster> cluster = SmallCluster();
  ASSERT_TRUE(SaveWorkflowCheckpoint(dir, MakeCheckpoint(cluster, 1)).ok());
  ASSERT_TRUE(SaveWorkflowCheckpoint(dir, MakeCheckpoint(cluster, 2)).ok());

  // Intact: the newest wins.
  StatusOr<LoadedCheckpoint> loaded = LoadWorkflowCheckpoint(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->checkpoint.next_cycle, 2);
  EXPECT_FALSE(loaded->used_previous);

  // Tear the current file: recovery falls back to checkpoint.prev and
  // reports that it did.
  StatusOr<std::string> current = ReadFileToString(dir + "/checkpoint");
  ASSERT_TRUE(current.ok());
  ASSERT_TRUE(TruncateFileAt(dir + "/checkpoint", current->size() / 2).ok());
  loaded = LoadWorkflowCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->checkpoint.next_cycle, 1);
  EXPECT_TRUE(loaded->used_previous);
}

TEST(CheckpointTest, MissingAndCorruptStates) {
  const std::string dir = FreshStateDir("missing");
  EXPECT_EQ(LoadWorkflowCheckpoint(dir).status().code(),
            StatusCode::kNotFound);

  // Both present but torn: kFailedPrecondition, not kNotFound.
  std::shared_ptr<Cluster> cluster = SmallCluster();
  ASSERT_TRUE(SaveWorkflowCheckpoint(dir, MakeCheckpoint(cluster, 1)).ok());
  ASSERT_TRUE(SaveWorkflowCheckpoint(dir, MakeCheckpoint(cluster, 2)).ok());
  ASSERT_TRUE(TruncateFileAt(dir + "/checkpoint", 10).ok());
  ASSERT_TRUE(TruncateFileAt(dir + "/checkpoint.prev", 10).ok());
  EXPECT_EQ(LoadWorkflowCheckpoint(dir).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(JournalTest, RecordCodecRoundTripsEveryType) {
  JournalRecord plan;
  plan.type = JournalRecordType::kPlan;
  plan.cycle = 5;
  plan.rng_state = Rng(11).SerializeState();
  plan.exec_seed = 0xdeadbeefcafeULL;
  plan.predicted_affinity = 0.7251;
  plan.target = {{0, 0, 1}, {1, 0, 1}, {1, 1, 2}, {2, 2, 2}};
  plan.batches = {
      {{MigrationCommandType::kDelete, 0, 0},
       {MigrationCommandType::kCreate, 0, 1}},
      {{MigrationCommandType::kDelete, 2, 2},
       {MigrationCommandType::kCreate, 2, 3}},
  };
  StatusOr<JournalRecord> decoded =
      DecodeJournalRecord(EncodeJournalRecord(plan));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->type, JournalRecordType::kPlan);
  EXPECT_EQ(decoded->cycle, 5);
  EXPECT_EQ(decoded->rng_state, plan.rng_state);
  EXPECT_EQ(decoded->exec_seed, plan.exec_seed);
  EXPECT_DOUBLE_EQ(decoded->predicted_affinity, plan.predicted_affinity);
  EXPECT_EQ(decoded->target, plan.target);
  ASSERT_EQ(decoded->batches.size(), 2u);
  ASSERT_EQ(decoded->batches[0].size(), 2u);
  EXPECT_EQ(decoded->batches[0][1].type, MigrationCommandType::kCreate);
  EXPECT_EQ(decoded->batches[1][0].service, 2);
  EXPECT_EQ(decoded->batches[1][1].machine, 3);

  JournalRecord intent;
  intent.type = JournalRecordType::kBatchIntent;
  intent.cycle = 5;
  intent.batch = 1;
  intent.commands = plan.batches[1];
  decoded = DecodeJournalRecord(EncodeJournalRecord(intent));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, JournalRecordType::kBatchIntent);
  EXPECT_EQ(decoded->batch, 1);
  ASSERT_EQ(decoded->commands.size(), 2u);
  EXPECT_EQ(decoded->commands[0].type, MigrationCommandType::kDelete);
  EXPECT_EQ(decoded->commands[0].machine, 2);

  JournalRecord commit;
  commit.type = JournalRecordType::kBatchCommit;
  commit.cycle = 5;
  commit.batch = 1;
  decoded = DecodeJournalRecord(EncodeJournalRecord(commit));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, JournalRecordType::kBatchCommit);
  EXPECT_EQ(decoded->batch, 1);

  JournalRecord dry;
  dry.type = JournalRecordType::kDecisionDry;
  dry.cycle = 6;
  dry.rng_state = Rng(12).SerializeState();
  dry.dry_reason = DryReason::kSolverFailed;
  decoded = DecodeJournalRecord(EncodeJournalRecord(dry));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->dry_reason, DryReason::kSolverFailed);

  JournalRecord rollback;
  rollback.type = JournalRecordType::kDecisionRollback;
  rollback.cycle = 7;
  rollback.rng_state = Rng(13).SerializeState();
  rollback.frozen_services = {3, 1, 4};
  decoded = DecodeJournalRecord(EncodeJournalRecord(rollback));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->frozen_services, rollback.frozen_services);

  JournalRecord done;
  done.type = JournalRecordType::kExecDone;
  done.cycle = 5;
  done.reached_target = true;
  done.batches_executed = 2;
  done.commands_succeeded = 4;
  done.retries = 3;
  decoded = DecodeJournalRecord(EncodeJournalRecord(done));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->reached_target);
  EXPECT_EQ(decoded->batches_executed, 2);
  EXPECT_EQ(decoded->commands_succeeded, 4);
  EXPECT_EQ(decoded->retries, 3);

  JournalRecord drift;
  drift.type = JournalRecordType::kDriftIntent;
  drift.cycle = 5;
  drift.rng_state = Rng(14).SerializeState();
  drift.moves = {{0, 0, 1}, {2, 2, 3}};
  decoded = DecodeJournalRecord(EncodeJournalRecord(drift));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->moves.size(), 2u);
  EXPECT_EQ(decoded->moves[1].service, 2);
  EXPECT_EQ(decoded->moves[1].to, 3);

  EXPECT_FALSE(DecodeJournalRecord("not a record").ok());
  EXPECT_FALSE(DecodeJournalRecord("").ok());
}

TEST(JournalTest, TornTailDropsOnlyTheLastRecord) {
  const std::string dir = FreshStateDir("torn");
  {
    StatusOr<WorkflowJournal> journal = WorkflowJournal::Open(dir);
    ASSERT_TRUE(journal.ok()) << journal.status();
    for (int i = 0; i < 3; ++i) {
      JournalRecord start;
      start.type = JournalRecordType::kCycleStart;
      start.cycle = i;
      start.rng_state = Rng(i).SerializeState();
      ASSERT_TRUE(journal->Append(start).ok());
    }
  }
  StatusOr<std::string> full = ReadFileToString(dir + "/journal.wal");
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(TruncateFileAt(dir + "/journal.wal", full->size() - 7).ok());

  StatusOr<JournalScan> scan = ReadWorkflowJournal(dir);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan->torn_tail);
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0].cycle, 0);
  EXPECT_EQ(scan->records[1].cycle, 1);
}

// The canonical interrupted execution used by the classification and
// roll-forward tests: batch 0 (move one s0 container m0 -> m1) committed,
// batch 1 (move one s2 container m2 -> m3) in flight.
CycleJournal InterruptedExecution() {
  CycleJournal cj;
  cj.started = true;
  cj.decision = CycleJournal::Decision::kExecute;
  cj.have_plan = true;
  cj.plan.type = JournalRecordType::kPlan;
  cj.plan.cycle = 2;
  cj.plan.rng_state = Rng(21).SerializeState();
  cj.plan.target = {{0, 0, 1}, {1, 0, 1}, {1, 1, 2}, {2, 2, 1}, {3, 2, 1}};
  cj.plan.batches = {
      {{MigrationCommandType::kDelete, 0, 0},
       {MigrationCommandType::kCreate, 0, 1}},
      {{MigrationCommandType::kDelete, 2, 2},
       {MigrationCommandType::kCreate, 2, 3}},
  };
  for (int b = 0; b < 2; ++b) {
    JournalRecord intent;
    intent.type = JournalRecordType::kBatchIntent;
    intent.cycle = 2;
    intent.batch = b;
    intent.commands = cj.plan.batches[b];
    cj.batch_intents[b] = intent;
  }
  cj.batch_commits = {0};
  return cj;
}

TEST(RecoveryTest, ClassifiesAppliedAndNotAppliedCommands) {
  std::shared_ptr<Cluster> cluster = SmallCluster();
  const Placement start = StartPlacement(*cluster);
  const CycleJournal cj = InterruptedExecution();

  // Observed: batch 0 fully applied, batch 1 died after its delete.
  Placement observed(*cluster);
  observed.Add(0, 0, 1);
  observed.Add(1, 0, 1);
  observed.Add(1, 1, 2);
  observed.Add(2, 2, 1);

  const std::vector<CommandClassification> fates = ClassifyInFlightCommands(
      *cluster, cj, start, observed, /*journal_torn_tail=*/false);
  ASSERT_EQ(fates.size(), 4u);
  EXPECT_EQ(fates[0].fate, CommandFate::kApplied);  // batch 0 delete
  EXPECT_EQ(fates[1].fate, CommandFate::kApplied);  // batch 0 create
  EXPECT_EQ(fates[2].fate, CommandFate::kApplied);  // batch 1 delete
  EXPECT_EQ(fates[3].fate, CommandFate::kNotApplied);  // batch 1 create
}

TEST(RecoveryTest, TornJournalTailMarksInFlightBatchTorn) {
  std::shared_ptr<Cluster> cluster = SmallCluster();
  const Placement start = StartPlacement(*cluster);
  CycleJournal cj = InterruptedExecution();

  // The torn frame was batch 1's intent: only the plan's copy of the batch
  // exists. The crash landed somewhere inside that batch.
  cj.batch_intents.erase(1);
  Placement observed(*cluster);
  observed.Add(0, 0, 1);
  observed.Add(1, 0, 1);
  observed.Add(1, 1, 2);
  observed.Add(2, 2, 1);

  const std::vector<CommandClassification> fates = ClassifyInFlightCommands(
      *cluster, cj, start, observed, /*journal_torn_tail=*/true);
  ASSERT_EQ(fates.size(), 4u);
  EXPECT_EQ(fates[0].fate, CommandFate::kApplied);
  EXPECT_EQ(fates[1].fate, CommandFate::kApplied);
  int torn = 0;
  for (const CommandClassification& f : fates) {
    if (f.fate == CommandFate::kTorn) ++torn;
  }
  EXPECT_GT(torn, 0);
}

TEST(RecoveryTest, RollsInterruptedBatchForwardToTarget) {
  std::shared_ptr<Cluster> cluster = SmallCluster();
  const Placement start = StartPlacement(*cluster);
  const CycleJournal cj = InterruptedExecution();

  Placement observed(*cluster);
  observed.Add(0, 0, 1);
  observed.Add(1, 0, 1);
  observed.Add(1, 1, 2);
  observed.Add(2, 2, 1);  // batch 1's create never ran

  StatusOr<RollForwardResult> rf = RollForwardExecution(
      *cluster, cj, start, observed, /*min_alive_fraction=*/0.5,
      /*journal=*/nullptr);
  ASSERT_TRUE(rf.ok()) << rf.status();
  EXPECT_TRUE(rf->reached_target);
  EXPECT_FALSE(rf->abandoned);
  EXPECT_EQ(rf->commands_pre_applied, 3);
  EXPECT_EQ(rf->commands_rolled_forward, 1);
  EXPECT_EQ(rf->sla_violations, 0);
  EXPECT_EQ(rf->feasibility_violations, 0);

  // Final placement is exactly the journaled target.
  EXPECT_EQ(observed.CountOn(0, 0), 1);
  EXPECT_EQ(observed.CountOn(1, 0), 1);
  EXPECT_EQ(observed.CountOn(1, 1), 2);
  EXPECT_EQ(observed.CountOn(2, 2), 1);
  EXPECT_EQ(observed.CountOn(3, 2), 1);
}

TEST(RecoveryTest, UnmatchableObservedStateAbandonsAndReconciles) {
  std::shared_ptr<Cluster> cluster = SmallCluster();
  const Placement start = StartPlacement(*cluster);
  const CycleJournal cj = InterruptedExecution();

  // Observed world that matches NO prefix of the journaled path (s1 moved
  // to m3 behind the journal's back).
  Placement observed(*cluster);
  observed.Add(0, 0, 2);
  observed.Add(3, 1, 2);
  observed.Add(2, 2, 2);

  StatusOr<RollForwardResult> rf = RollForwardExecution(
      *cluster, cj, start, observed, /*min_alive_fraction=*/0.5,
      /*journal=*/nullptr);
  ASSERT_TRUE(rf.ok()) << rf.status();
  EXPECT_TRUE(rf->abandoned);
  // Reconciliation drives the observed world to the journaled target where
  // capacity allows; every service keeps a feasible state throughout.
  EXPECT_TRUE(observed.CheckFeasible(false).ok());
}

TEST(RecoveryTest, RollsDriftForwardFromTheAppliedPrefix) {
  std::shared_ptr<Cluster> cluster = SmallCluster();
  Placement pre_drift = StartPlacement(*cluster);
  const std::vector<DriftMove> moves = {{0, 0, 1}, {0, 0, 2}, {2, 2, 3}};

  // Crash after the first move was applied.
  Placement observed(*cluster);
  observed.Add(0, 0, 1);
  observed.Add(1, 0, 1);
  observed.Add(1, 1, 2);
  observed.Add(2, 2, 2);

  const int applied = RollForwardDrift(*cluster, moves, pre_drift, observed);
  EXPECT_EQ(applied, 2);  // the remaining two moves ran now
  EXPECT_EQ(observed.CountOn(0, 0), 0);
  EXPECT_EQ(observed.CountOn(2, 0), 1);
  EXPECT_EQ(observed.CountOn(3, 2), 1);

  // An observed state matching no prefix is left untouched.
  Placement weird(*cluster);
  weird.Add(3, 0, 2);
  weird.Add(1, 1, 2);
  weird.Add(2, 2, 2);
  const Placement before = weird;
  EXPECT_EQ(RollForwardDrift(*cluster, moves, pre_drift, weird), -1);
  EXPECT_EQ(weird.DiffCount(before), 0);
}

TEST(RecoveryTest, AnalysisSkipsCyclesOlderThanTheCheckpoint) {
  const std::string dir = FreshStateDir("analysis");
  std::shared_ptr<Cluster> cluster = SmallCluster();
  {
    StatusOr<WorkflowJournal> journal = WorkflowJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    JournalRecord stale;
    stale.type = JournalRecordType::kCycleStart;
    stale.cycle = 1;
    stale.rng_state = Rng(1).SerializeState();
    ASSERT_TRUE(journal->Append(stale).ok());
    JournalRecord fresh;
    fresh.type = JournalRecordType::kCycleStart;
    fresh.cycle = 2;
    fresh.rng_state = Rng(2).SerializeState();
    ASSERT_TRUE(journal->Append(fresh).ok());
    JournalRecord dry;
    dry.type = JournalRecordType::kDecisionDry;
    dry.cycle = 2;
    dry.rng_state = Rng(3).SerializeState();
    ASSERT_TRUE(journal->Append(dry).ok());
  }
  ASSERT_TRUE(SaveWorkflowCheckpoint(dir, MakeCheckpoint(cluster, 2)).ok());

  StatusOr<RecoveryAnalysis> analysis = AnalyzeWorkflowState(dir);
  ASSERT_TRUE(analysis.ok()) << analysis.status();
  EXPECT_EQ(analysis->checkpoint.next_cycle, 2);
  ASSERT_EQ(analysis->cycles.size(), 1u);
  ASSERT_TRUE(analysis->cycles.count(2));
  EXPECT_EQ(analysis->cycles.at(2).decision, CycleJournal::Decision::kDry);
}

TEST(RecoveryTest, ReconstructsObservedPlacementFromCommittedBatches) {
  const std::string dir = FreshStateDir("reconstruct");
  std::shared_ptr<Cluster> cluster = SmallCluster();
  ASSERT_TRUE(SaveWorkflowCheckpoint(dir, MakeCheckpoint(cluster, 2)).ok());
  {
    StatusOr<WorkflowJournal> journal = WorkflowJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    const CycleJournal cj = InterruptedExecution();
    ASSERT_TRUE(journal->Append(cj.plan).ok());
    ASSERT_TRUE(journal->Append(cj.batch_intents.at(0)).ok());
    JournalRecord commit;
    commit.type = JournalRecordType::kBatchCommit;
    commit.cycle = 2;
    commit.batch = 0;
    ASSERT_TRUE(journal->Append(commit).ok());
    // Batch 1's intent is journaled but never committed.
    ASSERT_TRUE(journal->Append(cj.batch_intents.at(1)).ok());
  }
  StatusOr<RecoveryAnalysis> analysis = AnalyzeWorkflowState(dir);
  ASSERT_TRUE(analysis.ok()) << analysis.status();
  StatusOr<Placement> observed = ReconstructObservedPlacement(*analysis);
  ASSERT_TRUE(observed.ok()) << observed.status();
  // Checkpoint placement + committed batch 0, nothing of batch 1.
  EXPECT_EQ(observed->CountOn(0, 0), 1);
  EXPECT_EQ(observed->CountOn(1, 0), 1);
  EXPECT_EQ(observed->CountOn(1, 1), 2);
  EXPECT_EQ(observed->CountOn(2, 2), 2);
  EXPECT_EQ(observed->CountOn(3, 2), 0);
}

TEST(RecoveryTest, InspectionFormatsWithoutCrashing) {
  const std::string dir = FreshStateDir("inspect");
  std::shared_ptr<Cluster> cluster = SmallCluster();
  ASSERT_TRUE(SaveWorkflowCheckpoint(dir, MakeCheckpoint(cluster, 2)).ok());
  {
    StatusOr<WorkflowJournal> journal = WorkflowJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    const CycleJournal cj = InterruptedExecution();
    ASSERT_TRUE(journal->Append(cj.plan).ok());
    ASSERT_TRUE(journal->Append(cj.batch_intents.at(0)).ok());
  }
  StatusOr<std::string> text = FormatRecoveryInspection(dir);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("checkpoint"), std::string::npos);
  EXPECT_NE(text->find("cycle 2"), std::string::npos);

  // A directory with no durable state reports kNotFound, not a crash.
  EXPECT_EQ(
      FormatRecoveryInspection(FreshStateDir("inspect_empty")).status().code(),
      StatusCode::kNotFound);
}

}  // namespace
}  // namespace rasa
