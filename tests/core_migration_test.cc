#include "core/migration.h"

#include "cluster/first_fit.h"
#include "cluster/generator.h"
#include "common/rng.h"
#include "core/rasa.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace rasa {
namespace {

using ::rasa::testing::ClusterBuilder;

TEST(MigrationTest, IdentityMappingNeedsNoCommands) {
  auto cluster = ClusterBuilder().AddService(2, {1.0}).AddMachine({4.0})
                     .Build();
  Placement p(*cluster);
  p.Add(0, 0, 2);
  StatusOr<MigrationPlan> plan = ComputeMigrationPath(*cluster, p, p);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->batches.empty());
  EXPECT_EQ(plan->total_deletes, 0);
  EXPECT_TRUE(ValidateMigrationPlan(*cluster, p, p, *plan).ok());
}

TEST(MigrationTest, SimpleSwapAcrossMachines) {
  auto cluster = ClusterBuilder()
                     .AddService(4, {1.0})
                     .AddMachine({4.0})
                     .AddMachine({4.0})
                     .Build();
  Placement from(*cluster);
  from.Add(0, 0, 4);
  Placement to(*cluster);
  to.Add(0, 0, 2);
  to.Add(1, 0, 2);
  StatusOr<MigrationPlan> plan = ComputeMigrationPath(*cluster, from, to);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->total_deletes, 2);
  EXPECT_EQ(plan->total_creates, 2);
  EXPECT_EQ(plan->stranded_deletes, 0);
  EXPECT_TRUE(ValidateMigrationPlan(*cluster, from, to, *plan).ok());
}

TEST(MigrationTest, TightCapacityForcesDeleteBeforeCreate) {
  // Both machines are full; the move is only possible by deleting first.
  auto cluster = ClusterBuilder()
                     .AddService(2, {2.0})
                     .AddService(2, {2.0})
                     .AddMachine({4.0})
                     .AddMachine({4.0})
                     .Build();
  Placement from(*cluster);
  from.Add(0, 0, 2);
  from.Add(1, 1, 2);
  Placement to(*cluster);  // swap the services
  to.Add(0, 1, 2);
  to.Add(1, 0, 2);
  StatusOr<MigrationPlan> plan = ComputeMigrationPath(*cluster, from, to);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidateMigrationPlan(*cluster, from, to, *plan).ok());
  // First batch must be deletes.
  ASSERT_FALSE(plan->batches.empty());
  EXPECT_EQ(plan->batches.front().front().type,
            MigrationCommandType::kDelete);
}

TEST(MigrationTest, SlaFloorLimitsParallelDeletes) {
  // d = 8 with 75% floor: at most 2 containers offline at any time.
  auto cluster = ClusterBuilder()
                     .AddService(8, {1.0})
                     .AddMachine({8.0})
                     .AddMachine({8.0})
                     .Build();
  Placement from(*cluster);
  from.Add(0, 0, 8);
  Placement to(*cluster);
  to.Add(0, 0, 2);
  to.Add(1, 0, 6);
  StatusOr<MigrationPlan> plan = ComputeMigrationPath(*cluster, from, to);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidateMigrationPlan(*cluster, from, to, *plan).ok());
  // Replay and measure the worst-case offline count.
  Placement current = from;
  int worst_offline = 0;
  for (const auto& batch : plan->batches) {
    for (const MigrationCommand& cmd : batch) {
      if (cmd.type == MigrationCommandType::kDelete) {
        ASSERT_TRUE(current.Remove(cmd.machine, cmd.service).ok());
      } else {
        current.Add(cmd.machine, cmd.service);
      }
    }
    worst_offline = std::max(worst_offline, 8 - current.TotalOf(0));
  }
  EXPECT_LE(worst_offline, 2);
}

TEST(MigrationTest, StrandedDeletesGoLast) {
  // Target deploys fewer containers than the original.
  auto cluster = ClusterBuilder()
                     .AddService(3, {1.0})
                     .AddMachine({4.0})
                     .Build();
  Placement from(*cluster);
  from.Add(0, 0, 3);
  Placement to(*cluster);
  to.Add(0, 0, 2);
  StatusOr<MigrationPlan> plan = ComputeMigrationPath(*cluster, from, to);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->stranded_deletes, 1);
  EXPECT_TRUE(ValidateMigrationPlan(*cluster, from, to, *plan).ok());
}

TEST(MigrationTest, SummaryMentionsCounts) {
  MigrationPlan plan;
  plan.total_deletes = 3;
  plan.total_creates = 2;
  plan.batches.resize(2);
  const std::string s = plan.Summary();
  EXPECT_NE(s.find("2 batches"), std::string::npos);
  EXPECT_NE(s.find("3 deletes"), std::string::npos);
}

TEST(MigrationTest, ValidateCatchesCorruptPlan) {
  auto cluster = ClusterBuilder()
                     .AddService(2, {1.0})
                     .AddMachine({4.0})
                     .AddMachine({4.0})
                     .Build();
  Placement from(*cluster);
  from.Add(0, 0, 2);
  Placement to(*cluster);
  to.Add(1, 0, 2);
  MigrationPlan bogus;
  // Creating before deleting violates the final-state equality.
  bogus.batches.push_back(
      {{MigrationCommandType::kCreate, 0, 1}});
  EXPECT_FALSE(ValidateMigrationPlan(*cluster, from, to, bogus).ok());
}

TEST(MigrationTest, BatchesAreOneCommandPerMachine) {
  auto cluster = ClusterBuilder()
                     .AddService(6, {1.0})
                     .AddService(6, {1.0})
                     .AddMachine({12.0})
                     .AddMachine({12.0})
                     .Build();
  Placement from(*cluster);
  from.Add(0, 0, 6);
  from.Add(1, 1, 6);
  Placement to(*cluster);
  to.Add(0, 0, 3);
  to.Add(1, 0, 3);
  to.Add(0, 1, 3);
  to.Add(1, 1, 3);
  StatusOr<MigrationPlan> plan = ComputeMigrationPath(*cluster, from, to);
  ASSERT_TRUE(plan.ok());
  for (const auto& batch : plan->batches) {
    std::set<int> machines;
    for (const MigrationCommand& cmd : batch) {
      EXPECT_TRUE(machines.insert(cmd.machine).second)
          << "two commands on machine " << cmd.machine << " in one batch";
    }
  }
}

// Property: migration between ORIGINAL and RASA-optimized placements on
// generated clusters always validates.
class MigrationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MigrationPropertyTest, RandomReshuffleValidates) {
  ClusterSpec spec = M3Spec(16.0);
  spec.seed = 900 + GetParam();
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  ASSERT_TRUE(snapshot.ok());
  // A second first-fit with a different seed as the "target" placement.
  Rng rng(GetParam() + 1);
  StatusOr<Placement> target = FirstFitPlace(*snapshot->cluster, rng);
  ASSERT_TRUE(target.ok());
  StatusOr<MigrationPlan> plan = ComputeMigrationPath(
      *snapshot->cluster, snapshot->original_placement, *target);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(ValidateMigrationPlan(*snapshot->cluster,
                                    snapshot->original_placement, *target,
                                    *plan)
                  .ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace rasa
