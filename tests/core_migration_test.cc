#include "core/migration.h"

#include "cluster/first_fit.h"
#include "cluster/generator.h"
#include "common/rng.h"
#include "core/rasa.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace rasa {
namespace {

using ::rasa::testing::ClusterBuilder;

TEST(MigrationTest, IdentityMappingNeedsNoCommands) {
  auto cluster = ClusterBuilder().AddService(2, {1.0}).AddMachine({4.0})
                     .Build();
  Placement p(*cluster);
  p.Add(0, 0, 2);
  StatusOr<MigrationPlan> plan = ComputeMigrationPath(*cluster, p, p);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->batches.empty());
  EXPECT_EQ(plan->total_deletes, 0);
  EXPECT_TRUE(ValidateMigrationPlan(*cluster, p, p, *plan).ok());
}

TEST(MigrationTest, SimpleSwapAcrossMachines) {
  auto cluster = ClusterBuilder()
                     .AddService(4, {1.0})
                     .AddMachine({4.0})
                     .AddMachine({4.0})
                     .Build();
  Placement from(*cluster);
  from.Add(0, 0, 4);
  Placement to(*cluster);
  to.Add(0, 0, 2);
  to.Add(1, 0, 2);
  StatusOr<MigrationPlan> plan = ComputeMigrationPath(*cluster, from, to);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->total_deletes, 2);
  EXPECT_EQ(plan->total_creates, 2);
  EXPECT_EQ(plan->stranded_deletes, 0);
  EXPECT_TRUE(ValidateMigrationPlan(*cluster, from, to, *plan).ok());
}

TEST(MigrationTest, TightCapacityForcesDeleteBeforeCreate) {
  // Both machines are full; the move is only possible by deleting first.
  auto cluster = ClusterBuilder()
                     .AddService(2, {2.0})
                     .AddService(2, {2.0})
                     .AddMachine({4.0})
                     .AddMachine({4.0})
                     .Build();
  Placement from(*cluster);
  from.Add(0, 0, 2);
  from.Add(1, 1, 2);
  Placement to(*cluster);  // swap the services
  to.Add(0, 1, 2);
  to.Add(1, 0, 2);
  StatusOr<MigrationPlan> plan = ComputeMigrationPath(*cluster, from, to);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidateMigrationPlan(*cluster, from, to, *plan).ok());
  // First batch must be deletes.
  ASSERT_FALSE(plan->batches.empty());
  EXPECT_EQ(plan->batches.front().front().type,
            MigrationCommandType::kDelete);
}

TEST(MigrationTest, SlaFloorLimitsParallelDeletes) {
  // d = 8 with 75% floor: at most 2 containers offline at any time.
  auto cluster = ClusterBuilder()
                     .AddService(8, {1.0})
                     .AddMachine({8.0})
                     .AddMachine({8.0})
                     .Build();
  Placement from(*cluster);
  from.Add(0, 0, 8);
  Placement to(*cluster);
  to.Add(0, 0, 2);
  to.Add(1, 0, 6);
  StatusOr<MigrationPlan> plan = ComputeMigrationPath(*cluster, from, to);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidateMigrationPlan(*cluster, from, to, *plan).ok());
  // Replay and measure the worst-case offline count.
  Placement current = from;
  int worst_offline = 0;
  for (const auto& batch : plan->batches) {
    for (const MigrationCommand& cmd : batch) {
      if (cmd.type == MigrationCommandType::kDelete) {
        ASSERT_TRUE(current.Remove(cmd.machine, cmd.service).ok());
      } else {
        current.Add(cmd.machine, cmd.service);
      }
    }
    worst_offline = std::max(worst_offline, 8 - current.TotalOf(0));
  }
  EXPECT_LE(worst_offline, 2);
}

TEST(MigrationTest, StrandedDeletesGoLast) {
  // Target deploys fewer containers than the original.
  auto cluster = ClusterBuilder()
                     .AddService(3, {1.0})
                     .AddMachine({4.0})
                     .Build();
  Placement from(*cluster);
  from.Add(0, 0, 3);
  Placement to(*cluster);
  to.Add(0, 0, 2);
  StatusOr<MigrationPlan> plan = ComputeMigrationPath(*cluster, from, to);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->stranded_deletes, 1);
  EXPECT_TRUE(ValidateMigrationPlan(*cluster, from, to, *plan).ok());
}

TEST(MigrationTest, SummaryMentionsCounts) {
  MigrationPlan plan;
  plan.total_deletes = 3;
  plan.total_creates = 2;
  plan.batches.resize(2);
  const std::string s = plan.Summary();
  EXPECT_NE(s.find("2 batches"), std::string::npos);
  EXPECT_NE(s.find("3 deletes"), std::string::npos);
}

TEST(MigrationTest, ValidateCatchesCorruptPlan) {
  auto cluster = ClusterBuilder()
                     .AddService(2, {1.0})
                     .AddMachine({4.0})
                     .AddMachine({4.0})
                     .Build();
  Placement from(*cluster);
  from.Add(0, 0, 2);
  Placement to(*cluster);
  to.Add(1, 0, 2);
  MigrationPlan bogus;
  // Creating before deleting violates the final-state equality.
  bogus.batches.push_back(
      {{MigrationCommandType::kCreate, 0, 1}});
  EXPECT_FALSE(ValidateMigrationPlan(*cluster, from, to, bogus).ok());
}

TEST(MigrationTest, BatchesAreOneCommandPerMachine) {
  auto cluster = ClusterBuilder()
                     .AddService(6, {1.0})
                     .AddService(6, {1.0})
                     .AddMachine({12.0})
                     .AddMachine({12.0})
                     .Build();
  Placement from(*cluster);
  from.Add(0, 0, 6);
  from.Add(1, 1, 6);
  Placement to(*cluster);
  to.Add(0, 0, 3);
  to.Add(1, 0, 3);
  to.Add(0, 1, 3);
  to.Add(1, 1, 3);
  StatusOr<MigrationPlan> plan = ComputeMigrationPath(*cluster, from, to);
  ASSERT_TRUE(plan.ok());
  for (const auto& batch : plan->batches) {
    std::set<int> machines;
    for (const MigrationCommand& cmd : batch) {
      EXPECT_TRUE(machines.insert(cmd.machine).second)
          << "two commands on machine " << cmd.machine << " in one batch";
    }
  }
}

// Property: migration between ORIGINAL and RASA-optimized placements on
// generated clusters always validates.
class MigrationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MigrationPropertyTest, RandomReshuffleValidates) {
  ClusterSpec spec = M3Spec(16.0);
  spec.seed = 900 + GetParam();
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  ASSERT_TRUE(snapshot.ok());
  // A second first-fit with a different seed as the "target" placement.
  Rng rng(GetParam() + 1);
  StatusOr<Placement> target = FirstFitPlace(*snapshot->cluster, rng);
  ASSERT_TRUE(target.ok());
  StatusOr<MigrationPlan> plan = ComputeMigrationPath(
      *snapshot->cluster, snapshot->original_placement, *target);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(ValidateMigrationPlan(*snapshot->cluster,
                                    snapshot->original_placement, *target,
                                    *plan)
                  .ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationPropertyTest, ::testing::Range(0, 8));

// ------------------------------------------------------ MinAliveFloor ----

// The shared SLA floor: ceil(fraction * demand) with the guaranteed-
// progress carve-out (at most demand - 1, never negative) that keeps small
// services migratable — the naive ceil equals d for every d <= 4 at the
// paper's 0.75.
TEST(MinAliveFloorTest, ExplicitValuesForSmallDemands) {
  EXPECT_EQ(MinAliveFloor(0, 0.75), 0);

  EXPECT_EQ(MinAliveFloor(1, 0.5), 0);
  EXPECT_EQ(MinAliveFloor(1, 0.75), 0);
  EXPECT_EQ(MinAliveFloor(1, 1.0), 0);

  EXPECT_EQ(MinAliveFloor(2, 0.5), 1);
  EXPECT_EQ(MinAliveFloor(2, 0.75), 1);  // ceil(1.5) = 2, capped to d-1
  EXPECT_EQ(MinAliveFloor(2, 1.0), 1);

  EXPECT_EQ(MinAliveFloor(3, 0.5), 2);   // ceil(1.5) = 2
  EXPECT_EQ(MinAliveFloor(3, 0.75), 2);  // ceil(2.25) = 3, capped
  EXPECT_EQ(MinAliveFloor(3, 1.0), 2);

  EXPECT_EQ(MinAliveFloor(4, 0.5), 2);
  EXPECT_EQ(MinAliveFloor(4, 0.75), 3);
  EXPECT_EQ(MinAliveFloor(4, 1.0), 3);

  // Large demands: the cap no longer binds.
  EXPECT_EQ(MinAliveFloor(8, 0.75), 6);
  EXPECT_EQ(MinAliveFloor(100, 0.75), 75);
}

// Full d x fraction matrix: a small service moving across machines always
// gets a plan (the carve-out guarantees progress), and replaying it batch
// by batch never dips below the floor — including mid-batch, after the
// deletes and before the creates.
TEST(MinAliveFloorTest, EmittedBatchesRespectTheFloor) {
  for (int d : {1, 2, 3, 4}) {
    for (double fraction : {0.5, 0.75, 1.0}) {
      SCOPED_TRACE(::testing::Message()
                   << "demand " << d << ", fraction " << fraction);
      auto cluster = ClusterBuilder()
                         .AddService(d, {1.0})
                         .AddMachine({static_cast<double>(d)})
                         .AddMachine({static_cast<double>(d)})
                         .Build();
      Placement from(*cluster);
      from.Add(0, 0, d);
      Placement to(*cluster);
      to.Add(1, 0, d);

      MigrationOptions options;
      options.min_alive_fraction = fraction;
      StatusOr<MigrationPlan> plan =
          ComputeMigrationPath(*cluster, from, to, options);
      ASSERT_TRUE(plan.ok()) << plan.status();
      EXPECT_TRUE(
          ValidateMigrationPlan(*cluster, from, to, *plan, fraction).ok());

      const int floor_alive = MinAliveFloor(d, fraction);
      int alive = d;
      for (size_t b = 0; b < plan->batches.size(); ++b) {
        int deletes = 0;
        int creates = 0;
        for (const MigrationCommand& cmd : plan->batches[b]) {
          (cmd.type == MigrationCommandType::kDelete ? deletes : creates)++;
        }
        // Worst point of the batch: deletes applied, creates not yet.
        EXPECT_GE(alive - deletes, floor_alive) << "mid-batch " << b;
        alive += creates - deletes;
        EXPECT_GE(alive, floor_alive) << "after batch " << b;
      }
      EXPECT_EQ(alive, d);  // the full deployment arrives
    }
  }
}

}  // namespace
}  // namespace rasa
