// Differential fuzz: the sparse revised simplex against the dense-tableau
// reference on seeded random LPs (degenerate, infeasible, and unbounded
// instances included). Both kernels implement the same standard form and
// pivot rules, so statuses must agree exactly and optimal objectives to
// within tolerance; primal points are additionally audited for
// feasibility against the model, not against each other (degenerate
// optima may differ vertex-by-vertex).

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "lp/model.h"
#include "lp/revised_simplex.h"
#include "lp/simplex.h"

namespace rasa {
namespace {

constexpr double kTol = 1e-6;

// Audits `primal` against the model's bounds and rows.
void ExpectFeasible(const LpModel& model, const std::vector<double>& primal,
                    uint64_t seed) {
  ASSERT_EQ(static_cast<int>(primal.size()), model.num_variables());
  for (int v = 0; v < model.num_variables(); ++v) {
    EXPECT_GE(primal[v], model.lower_bound(v) - kTol) << "seed " << seed;
    EXPECT_LE(primal[v], model.upper_bound(v) + kTol) << "seed " << seed;
  }
  for (int c = 0; c < model.num_constraints(); ++c) {
    double lhs = 0.0;
    for (const LinearTerm& t : model.constraint_terms(c)) {
      lhs += t.coefficient * primal[t.variable];
    }
    const double rhs = model.rhs(c);
    const double slack = lhs - rhs;
    switch (model.constraint_type(c)) {
      case ConstraintType::kLessEqual:
        EXPECT_LE(slack, kTol) << "seed " << seed << " row " << c;
        break;
      case ConstraintType::kGreaterEqual:
        EXPECT_GE(slack, -kTol) << "seed " << seed << " row " << c;
        break;
      case ConstraintType::kEqual:
        EXPECT_NEAR(slack, 0.0, kTol) << "seed " << seed << " row " << c;
        break;
    }
  }
}

// Seeded random LP with deliberate degeneracy (integer data, duplicate
// rows, zero right-hand sides) and occasional built-in contradictions.
LpModel RandomModel(uint64_t seed) {
  Rng rng(seed * 2654435761ULL + 17);
  LpModel m;
  m.SetObjectiveSense(rng.NextBool(0.5) ? ObjectiveSense::kMaximize
                                        : ObjectiveSense::kMinimize);
  const bool big = seed % 7 == 0;
  const int n = 1 + static_cast<int>(rng.NextUint64(big ? 48 : 12));
  const int rows = 1 + static_cast<int>(rng.NextUint64(big ? 24 : 10));
  for (int v = 0; v < n; ++v) {
    const double c = static_cast<double>(rng.NextInt(-5, 5));
    const double roll = rng.NextDouble();
    if (roll < 0.55) {
      m.AddVariable(0.0, rng.NextBool(0.5) ? kLpInfinity
                                           : static_cast<double>(
                                                 rng.NextInt(1, 10)),
                    c);
    } else if (roll < 0.65) {
      m.AddVariable(-kLpInfinity, kLpInfinity, c);  // free
    } else if (roll < 0.75) {
      const double lo = static_cast<double>(rng.NextInt(-6, 0));
      m.AddVariable(lo, lo + static_cast<double>(rng.NextInt(0, 8)), c);
    } else if (roll < 0.85) {
      const double fix = static_cast<double>(rng.NextInt(-3, 3));
      m.AddVariable(fix, fix, c);  // fixed
    } else {
      m.AddVariable(-kLpInfinity, static_cast<double>(rng.NextInt(-2, 8)),
                    c);  // upper-bounded only
    }
  }
  std::vector<LinearTerm> last;
  for (int r = 0; r < rows; ++r) {
    std::vector<LinearTerm> terms;
    if (r > 0 && !last.empty() && rng.NextBool(0.15)) {
      terms = last;  // duplicate row: forced degeneracy
    } else {
      for (int v = 0; v < n; ++v) {
        if (!rng.NextBool(0.4)) continue;
        const double a = static_cast<double>(rng.NextInt(1, 4)) *
                         (rng.NextBool(0.5) ? 1.0 : -1.0);
        terms.push_back({v, a});
      }
      if (terms.empty()) terms.push_back({0, 1.0});
    }
    last = terms;
    const ConstraintType type =
        rng.NextBool(0.4) ? ConstraintType::kLessEqual
        : rng.NextBool(0.5) ? ConstraintType::kGreaterEqual
                            : ConstraintType::kEqual;
    const double rhs = rng.NextBool(0.2)
                           ? 0.0
                           : static_cast<double>(rng.NextInt(-10, 10));
    m.AddConstraint(type, rhs, std::move(terms));
  }
  return m;
}

void CompareOnce(const LpModel& model, uint64_t seed) {
  LpOptions dense_opts;
  dense_opts.algorithm = LpAlgorithm::kDenseTableau;
  const LpResult dense = SolveLp(model, dense_opts);

  LpOptions revised_opts;
  revised_opts.algorithm = LpAlgorithm::kRevised;
  revised_opts.dense_size_cutoff = 0;  // force the factorized kernel
  const LpResult revised = SolveLp(model, revised_opts);

  ASSERT_EQ(dense.status, revised.status)
      << "seed " << seed << ": dense " << LpStatusToString(dense.status)
      << " vs revised " << LpStatusToString(revised.status);
  if (dense.status != LpStatus::kOptimal) return;
  EXPECT_NEAR(dense.objective, revised.objective,
              kTol * std::max(1.0, std::abs(dense.objective)))
      << "seed " << seed;
  ExpectFeasible(model, dense.primal, seed);
  ExpectFeasible(model, revised.primal, seed);
  EXPECT_GE(revised.refactorizations, 1) << "seed " << seed;
}

TEST(SolverDifferentialTest, RandomInstancesAgree) {
  for (uint64_t seed = 0; seed < 250; ++seed) {
    LpModel model = RandomModel(seed);
    ASSERT_TRUE(model.Validate().ok()) << "seed " << seed;
    CompareOnce(model, seed);
  }
}

TEST(SolverDifferentialTest, InfeasibleInstanceAgrees) {
  LpModel m;
  int x = m.AddVariable(0.0, kLpInfinity, 1.0);
  m.AddConstraint(ConstraintType::kGreaterEqual, 2.0, {{x, 1.0}});
  m.AddConstraint(ConstraintType::kLessEqual, 1.0, {{x, 1.0}});
  CompareOnce(m, 9001);
}

TEST(SolverDifferentialTest, UnboundedInstanceAgrees) {
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0.0, kLpInfinity, 1.0);
  int y = m.AddVariable(0.0, kLpInfinity, 0.0);
  m.AddConstraint(ConstraintType::kGreaterEqual, 0.0, {{x, 1.0}, {y, -1.0}});
  CompareOnce(m, 9002);
}

TEST(SolverDifferentialTest, DegenerateTransportAgrees) {
  // Highly degenerate assignment structure: many alternate optima, zero
  // right-hand-side balance rows.
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMinimize);
  const int k = 4;
  std::vector<std::vector<int>> x(k, std::vector<int>(k));
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      x[i][j] = m.AddVariable(0.0, 1.0, (i == j) ? 1.0 : 1.0);
    }
  }
  for (int i = 0; i < k; ++i) {
    std::vector<LinearTerm> row, col;
    for (int j = 0; j < k; ++j) {
      row.push_back({x[i][j], 1.0});
      col.push_back({x[j][i], 1.0});
    }
    m.AddConstraint(ConstraintType::kEqual, 1.0, std::move(row));
    m.AddConstraint(ConstraintType::kEqual, 1.0, std::move(col));
  }
  CompareOnce(m, 9003);
}

// The revised kernel must report its factorization telemetry.
TEST(SolverDifferentialTest, RevisedReportsFactorizationStats) {
  LpModel m = RandomModel(3);
  LpOptions opts;
  opts.dense_size_cutoff = 0;
  LpResult r = SolveLp(m, opts);
  EXPECT_GE(r.refactorizations, 1);
  EXPECT_GE(r.max_eta_length, 0);
  EXPECT_FALSE(r.warm_started);
}

}  // namespace
}  // namespace rasa
