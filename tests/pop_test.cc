// POP replica-split fallback (core/pop.h): oversized subproblems are split
// into seeded random replicas, solved per-replica, and unioned. The suite
// checks the split trigger, capacity soundness of the union, re-pricing
// over the full subproblem's edges, the untightened "pop" certificate
// terms with their measured quality loss, determinism of the whole path,
// and that the default options leave the pipeline untouched.

#include <cmath>
#include <set>
#include <vector>

#include "cluster/generator.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/objective.h"
#include "core/pop.h"
#include "core/rasa.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace rasa {
namespace {

ClusterSnapshot MakeCluster(uint64_t seed) {
  ClusterSpec spec = M1Spec(48.0);
  spec.seed = seed;
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  RASA_CHECK(snapshot.ok()) << snapshot.status().ToString();
  return std::move(snapshot).value();
}

RasaResult RunOptimize(const ClusterSnapshot& snapshot, RasaOptions options) {
  options.partitioning.max_subproblem_services = 12;
  RasaOptimizer optimizer(options,
                          AlgorithmSelector(SelectorPolicy::kHeuristic));
  StatusOr<RasaResult> result =
      optimizer.Optimize(*snapshot.cluster, snapshot.original_placement);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(PopTriggerTest, DisabledByDefaultAndBelowThreshold) {
  Subproblem sp;
  sp.services = {0, 1, 2, 3};
  PopOptions off;  // max_services == 0
  EXPECT_FALSE(ShouldUsePop(off, sp));
  PopOptions on;
  on.max_services = 4;
  EXPECT_FALSE(ShouldUsePop(on, sp));  // not strictly larger
  on.max_services = 3;
  EXPECT_TRUE(ShouldUsePop(on, sp));
}

// Direct harness on a hand-built subproblem: the union must respect
// machine capacities against `base` and report a gained affinity that
// matches re-pricing its own assignment over the full edge set.
TEST(PopSplitTest, UnionIsCapacitySoundAndRepriced) {
  testing::ClusterBuilder builder;
  for (int s = 0; s < 8; ++s) builder.AddService(2, {1.0});
  for (int m = 0; m < 6; ++m) builder.AddMachine({4.0});
  // A ring of edges so every split cuts something.
  for (int s = 0; s < 8; ++s) {
    builder.AddAffinity(s, (s + 1) % 8, 1.0 + s);
  }
  auto cluster = builder.Build();

  Subproblem sp;
  for (int s = 0; s < 8; ++s) sp.services.push_back(s);
  for (int m = 0; m < 6; ++m) sp.machines.push_back(m);
  PopulateSubproblemEdges(*cluster, sp);
  ASSERT_GT(sp.internal_affinity, 0.0);

  Placement base(*cluster);  // empty: full capacity available
  PopOptions options;
  options.max_services = 4;
  options.num_replicas = 2;
  PopStats pop;
  PoolAttemptStats stats;
  StatusOr<SubproblemSolution> solved = RunPoolAlgorithmPop(
      PoolAlgorithm::kCg, *cluster, sp, base, base,
      Deadline::AfterSeconds(10.0), /*seed=*/7, options, &stats, nullptr,
      &pop);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();

  EXPECT_EQ(pop.replicas, 2);
  EXPECT_GT(pop.cut_affinity, 0.0);  // the ring cannot be split for free
  // POP attempts never carry a solver bound (replica-local bounds do not
  // bound the full subproblem).
  EXPECT_FALSE(stats.has_cg);
  EXPECT_FALSE(stats.has_mip);

  // The union must fit machine capacities starting from `base`.
  Placement check(*cluster);
  std::vector<std::vector<int>> counts(sp.services.size(),
                                       std::vector<int>(sp.machines.size()));
  for (const SubproblemSolution::Assignment& a : solved->assignments) {
    ASSERT_TRUE(check.CanPlace(a.machine, a.service, a.count));
    check.Add(a.machine, a.service, a.count);
    counts[a.service][a.machine] += a.count;  // ids are 0..n here
  }
  EXPECT_DOUBLE_EQ(solved->gained_affinity,
                   SubproblemGainedAffinity(*cluster, sp, counts));
  // Re-pricing covers the FULL edge set, so the union can never be worth
  // more than the subproblem's internal affinity.
  EXPECT_LE(solved->gained_affinity, sp.internal_affinity + 1e-9);
}

// Replica splits are a pure function of the seed.
TEST(PopSplitTest, DeterministicForFixedSeed) {
  ClusterSnapshot snapshot = MakeCluster(11);

  RasaOptions options;
  options.timeout_seconds = 30.0;
  options.seed = 5;
  options.pop.max_services = 6;
  options.pop.num_replicas = 2;

  const RasaResult a = RunOptimize(snapshot, options);
  const RasaResult b = RunOptimize(snapshot, options);
  EXPECT_GT(a.pop_splits, 0);
  EXPECT_EQ(a.pop_splits, b.pop_splits);
  EXPECT_EQ(a.new_placement.DiffCount(b.new_placement), 0);
  EXPECT_EQ(b.new_placement.DiffCount(a.new_placement), 0);
  EXPECT_EQ(a.new_gained_affinity, b.new_gained_affinity);
  EXPECT_EQ(a.pop_quality_loss, b.pop_quality_loss);
}

// End-to-end: with a low threshold the optimizer splits oversized
// subproblems, reports the quality give-up per subproblem, and files
// untightened certificate terms with source "pop".
TEST(PopSplitTest, ReportsQualityLossAgainstCertificate) {
  ClusterSnapshot snapshot = MakeCluster(3);

  RasaOptions options;
  options.timeout_seconds = 30.0;
  options.pop.max_services = 6;
  options.pop.num_replicas = 2;
  const RasaResult result = RunOptimize(snapshot, options);

  ASSERT_GT(result.pop_splits, 0);
  int seen = 0;
  double loss_sum = 0.0;
  for (size_t i = 0; i < result.subproblems.size(); ++i) {
    const SubproblemReport& report = result.subproblems[i];
    const CertificateTerm& term = result.report.certificate.terms[i];
    if (!report.used_pop) {
      EXPECT_NE(term.source, "pop");
      continue;
    }
    ++seen;
    EXPECT_GE(report.pop_replicas, 2);
    EXPECT_GT(report.num_services, options.pop.max_services);
    // The term charges the trivial bound: POP never tightens.
    EXPECT_EQ(term.source, "pop");
    EXPECT_FALSE(term.tightened);
    EXPECT_DOUBLE_EQ(term.bound, report.internal_affinity);
    // Quality loss is measured against exactly that bound.
    EXPECT_NEAR(report.pop_quality_loss,
                std::max(0.0, term.bound - report.gained_affinity), 1e-9);
    EXPECT_GE(report.pop_cut_affinity, 0.0);
    loss_sum += report.pop_quality_loss;
  }
  EXPECT_EQ(seen, result.pop_splits);
  EXPECT_NEAR(result.pop_quality_loss, loss_sum, 1e-9);
}

// The default options (pop.max_services == 0) must leave every report and
// certificate term exactly as a build without POP would: no splits, no
// "pop" sources.
TEST(PopSplitTest, DefaultOptionsLeavePipelineUntouched) {
  ClusterSnapshot snapshot = MakeCluster(3);
  RasaOptions options;
  options.timeout_seconds = 30.0;
  const RasaResult result = RunOptimize(snapshot, options);
  EXPECT_EQ(result.pop_splits, 0);
  EXPECT_EQ(result.pop_quality_loss, 0.0);
  for (const SubproblemReport& report : result.subproblems) {
    EXPECT_FALSE(report.used_pop);
    EXPECT_EQ(report.pop_replicas, 0);
  }
  for (const CertificateTerm& term : result.report.certificate.terms) {
    EXPECT_NE(term.source, "pop");
  }
}

}  // namespace
}  // namespace rasa
