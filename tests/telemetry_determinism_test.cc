// The observation-only contract of the telemetry layer, one level above
// metrics_determinism_test: a full workflow run produces bit-identical
// placements and (timing-stripped) cycle reports with the telemetry
// pipeline on or off, at every thread count. Telemetry may watch the
// control loop — SLO verdicts, anomaly flags, journal lines — but never
// steer it.

#include <string>
#include <vector>

#include "cluster/generator.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/telemetry.h"
#include "gtest/gtest.h"
#include "sim/workflow.h"

namespace rasa {
namespace {

ClusterSnapshot MakeCluster(uint64_t seed) {
  ClusterSpec spec = M1Spec(48.0);
  spec.seed = seed;
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  RASA_CHECK(snapshot.ok()) << snapshot.status().ToString();
  return std::move(snapshot).value();
}

WorkflowReport RunOnce(const ClusterSnapshot& snapshot, int threads,
                       bool telemetry) {
  WorkflowOptions options;
  options.cycles = 3;
  options.seed = 515;
  // Generous budget + small subproblems: no solve is ever cut off
  // mid-flight, so the comparison never races the wall clock (same regime
  // as the other determinism suites).
  options.rasa.timeout_seconds = 30.0;
  options.rasa.num_threads = threads;
  options.rasa.partitioning.max_subproblem_services = 12;
  options.telemetry.enabled = telemetry;
  StatusOr<WorkflowReport> report =
      RunWorkflow(*snapshot.cluster, snapshot.original_placement,
                  AlgorithmSelector(SelectorPolicy::kHeuristic), options);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(report).value();
}

// Bit-exact equality of everything except wall-clock timings and the
// telemetry verdicts themselves (the "on" run has them, the "off" run by
// construction does not — asserted separately).
void ExpectIdenticalReports(const WorkflowReport& a,
                            const WorkflowReport& b) {
  EXPECT_EQ(a.final_placement.DiffCount(b.final_placement), 0);
  EXPECT_EQ(b.final_placement.DiffCount(a.final_placement), 0);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.dry_runs, b.dry_runs);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
  EXPECT_EQ(a.solver_failures, b.solver_failures);
  EXPECT_EQ(a.partial_executions, b.partial_executions);
  EXPECT_EQ(a.sla_violations, b.sla_violations);
  EXPECT_EQ(a.feasibility_violations, b.feasibility_violations);
  ASSERT_EQ(a.cycles.size(), b.cycles.size());
  for (size_t c = 0; c < a.cycles.size(); ++c) {
    SCOPED_TRACE(::testing::Message() << "cycle " << c);
    const CycleReport& x = a.cycles[c];
    const CycleReport& y = b.cycles[c];
    EXPECT_EQ(x.affinity_before, y.affinity_before);
    EXPECT_EQ(x.affinity_after, y.affinity_after);
    EXPECT_EQ(x.predicted_affinity, y.predicted_affinity);
    EXPECT_EQ(x.migration_truncation, y.migration_truncation);
    EXPECT_EQ(x.executed, y.executed);
    EXPECT_EQ(x.rolled_back, y.rolled_back);
    EXPECT_EQ(x.solver_failed, y.solver_failed);
    EXPECT_EQ(x.reached_target, y.reached_target);
    EXPECT_EQ(x.moved_containers, y.moved_containers);
    EXPECT_EQ(x.migration_batches, y.migration_batches);
    EXPECT_EQ(x.commands_failed, y.commands_failed);
    EXPECT_EQ(x.command_retries, y.command_retries);
    EXPECT_EQ(x.replans, y.replans);
    // `seconds`, `metrics` histograms of wall times, and the telemetry
    // cost-anomaly verdict all derive from the clock: stripped.
  }
}

TEST(TelemetryDeterminismTest, OnOffBitIdenticalAcrossThreadCounts) {
  const ClusterSnapshot snapshot = MakeCluster(41);
  for (int threads : {1, 4, 8}) {
    SCOPED_TRACE(::testing::Message() << threads << " threads");
    const WorkflowReport with_telemetry = RunOnce(snapshot, threads, true);
    const WorkflowReport without_telemetry =
        RunOnce(snapshot, threads, false);
    ExpectIdenticalReports(with_telemetry, without_telemetry);

    // The "on" run carried verdicts on every cycle, the "off" run none —
    // telemetry was genuinely exercised, not silently disabled.
    for (const CycleReport& cr : with_telemetry.cycles) {
      EXPECT_TRUE(cr.telemetry.populated);
      EXPECT_EQ(cr.telemetry.slo.size(), DefaultSloObjectives().size());
    }
    for (const CycleReport& cr : without_telemetry.cycles) {
      EXPECT_FALSE(cr.telemetry.populated);
    }
  }
}

// The wall-clock-free telemetry outputs are themselves deterministic:
// two identical "on" runs agree on every SLO verdict and the gap-anomaly
// flags (cost anomalies use cycle seconds and are exempt).
TEST(TelemetryDeterminismTest, VerdictsReproduceAcrossRuns) {
  const ClusterSnapshot snapshot = MakeCluster(43);
  const WorkflowReport first = RunOnce(snapshot, 4, true);
  const WorkflowReport second = RunOnce(snapshot, 4, true);
  ASSERT_EQ(first.cycles.size(), second.cycles.size());
  for (size_t c = 0; c < first.cycles.size(); ++c) {
    SCOPED_TRACE(::testing::Message() << "cycle " << c);
    const CycleTelemetry& x = first.cycles[c].telemetry;
    const CycleTelemetry& y = second.cycles[c].telemetry;
    ASSERT_EQ(x.slo.size(), y.slo.size());
    for (size_t i = 0; i < x.slo.size(); ++i) {
      EXPECT_EQ(x.slo[i].name, y.slo[i].name);
      EXPECT_EQ(x.slo[i].has_value, y.slo[i].has_value);
      EXPECT_EQ(x.slo[i].value, y.slo[i].value);
      EXPECT_EQ(x.slo[i].violated, y.slo[i].violated);
      EXPECT_EQ(x.slo[i].fast_burn_rate, y.slo[i].fast_burn_rate);
      EXPECT_EQ(x.slo[i].slow_burn_rate, y.slo[i].slow_burn_rate);
      EXPECT_EQ(x.slo[i].alert, y.slo[i].alert);
    }
    EXPECT_EQ(x.gap.anomalous, y.gap.anomalous);
    EXPECT_EQ(x.gap.zscore, y.gap.zscore);
  }
}

// EstimateTrafficQuantiles is a pure function of (cluster, placement):
// repeated calls agree bit-for-bit, which is what lets the latency/error
// series feed SLOs without perturbing determinism.
TEST(TelemetryDeterminismTest, TrafficQuantilesArePure) {
  const ClusterSnapshot snapshot = MakeCluster(47);
  const TrafficQuantiles a = EstimateTrafficQuantiles(
      *snapshot.cluster, snapshot.original_placement);
  const TrafficQuantiles b = EstimateTrafficQuantiles(
      *snapshot.cluster, snapshot.original_placement);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.error_rate, b.error_rate);
  // Sanity on the model's shape: quantiles are ordered and inside the
  // [ipc, rpc] latency band.
  EXPECT_LE(a.p50, a.p95);
  EXPECT_LE(a.p95, a.p99);
  EXPECT_GE(a.p50, 0.0);
  EXPECT_LE(a.p99, 1.0);
}

}  // namespace
}  // namespace rasa
