#include "core/partitioning.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "cluster/generator.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace rasa {
namespace {

using ::rasa::testing::ClusterBuilder;

TEST(MasterRatioTest, MatchesPaperFormula) {
  // alpha = 45 * ln(N)^0.66 / N.
  const int n = 5904;
  const double expected = 45.0 * std::pow(std::log(5904.0), 0.66) / 5904.0;
  EXPECT_NEAR(MasterRatio(n, 45.0, 0.66), expected, 1e-12);
}

TEST(MasterRatioTest, ClampedToValidRange) {
  EXPECT_DOUBLE_EQ(MasterRatio(1, 45.0, 0.66), 1.0);
  EXPECT_LE(MasterRatio(10, 45.0, 0.66), 1.0);
  EXPECT_GT(MasterRatio(1000000, 45.0, 0.66), 0.0);
}

TEST(MasterRatioTest, DecreasesWithScale) {
  EXPECT_GT(MasterRatio(100, 45.0, 0.66), MasterRatio(10000, 45.0, 0.66));
}

class PartitioningFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M1Spec(32.0));
    ASSERT_TRUE(snapshot.ok());
    snapshot_ = std::move(snapshot).value();
  }
  ClusterSnapshot snapshot_;
};

TEST_F(PartitioningFixture, MultiStageCoversAllServicesDisjointly) {
  PartitioningOptions options;
  PartitionResult result = PartitionServices(
      *snapshot_.cluster, snapshot_.original_placement, options);
  std::set<int> seen;
  for (int s : result.trivial_services) {
    EXPECT_TRUE(seen.insert(s).second) << "duplicate " << s;
  }
  for (const Subproblem& sp : result.subproblems) {
    for (int s : sp.services) {
      EXPECT_TRUE(seen.insert(s).second) << "duplicate " << s;
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), snapshot_.cluster->num_services());
}

TEST_F(PartitioningFixture, MachinesAssignedDisjointly) {
  PartitioningOptions options;
  PartitionResult result = PartitionServices(
      *snapshot_.cluster, snapshot_.original_placement, options);
  std::set<int> machines;
  for (const Subproblem& sp : result.subproblems) {
    for (int m : sp.machines) {
      EXPECT_TRUE(machines.insert(m).second) << "machine " << m << " shared";
    }
  }
}

TEST_F(PartitioningFixture, SubproblemsRespectSizeTarget) {
  PartitioningOptions options;
  options.max_subproblem_services = 12;
  PartitionResult result = PartitionServices(
      *snapshot_.cluster, snapshot_.original_placement, options);
  for (const Subproblem& sp : result.subproblems) {
    // Loss-min balanced partitioning aims for the target with 2x balance
    // slack; when no trial satisfies the balance condition the documented
    // fallback takes the most balanced candidate, which can run slightly
    // larger — but never unbounded.
    EXPECT_LE(static_cast<int>(sp.services.size()), 3 * 12);
  }
}

TEST_F(PartitioningFixture, SubproblemsSharePlatform) {
  PartitioningOptions options;
  PartitionResult result = PartitionServices(
      *snapshot_.cluster, snapshot_.original_placement, options);
  for (const Subproblem& sp : result.subproblems) {
    ASSERT_FALSE(sp.services.empty());
    const int platform =
        snapshot_.cluster->service(sp.services.front()).platform;
    for (int s : sp.services) {
      EXPECT_EQ(snapshot_.cluster->service(s).platform, platform);
    }
    for (int m : sp.machines) {
      EXPECT_EQ(snapshot_.cluster->machine(m).platform, platform);
    }
  }
}

TEST_F(PartitioningFixture, BasePlacementDropsOnlyCrucialServices) {
  PartitioningOptions options;
  PartitionResult result = PartitionServices(
      *snapshot_.cluster, snapshot_.original_placement, options);
  std::set<int> crucial;
  for (const Subproblem& sp : result.subproblems) {
    crucial.insert(sp.services.begin(), sp.services.end());
  }
  for (int s = 0; s < snapshot_.cluster->num_services(); ++s) {
    if (crucial.count(s)) {
      EXPECT_EQ(result.base_placement.TotalOf(s), 0);
    } else {
      EXPECT_EQ(result.base_placement.TotalOf(s),
                snapshot_.original_placement.TotalOf(s));
    }
  }
  EXPECT_TRUE(result.base_placement.CheckFeasible(false).ok());
}

TEST_F(PartitioningFixture, NonAffinityServicesAreTrivial) {
  PartitioningOptions options;
  PartitionResult result = PartitionServices(
      *snapshot_.cluster, snapshot_.original_placement, options);
  std::set<int> trivial(result.trivial_services.begin(),
                        result.trivial_services.end());
  for (int s = 0; s < snapshot_.cluster->num_services(); ++s) {
    if (snapshot_.cluster->affinity().Degree(s) == 0) {
      EXPECT_TRUE(trivial.count(s)) << "isolated service " << s;
    }
  }
}

TEST_F(PartitioningFixture, CrucialServicesComeFromTheMasterSet) {
  // Master selection keeps the top floor(alpha*N) services by T(s); some of
  // those may later drop to trivial (edgeless singleton components), but no
  // service OUTSIDE the top set may end up crucial.
  PartitioningOptions options;
  PartitionResult result = PartitionServices(
      *snapshot_.cluster, snapshot_.original_placement, options);
  const int n = snapshot_.cluster->num_services();
  std::vector<double> totals(n);
  for (int s = 0; s < n; ++s) {
    totals[s] = snapshot_.cluster->affinity().TotalAffinityOf(s);
  }
  std::vector<double> sorted = totals;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  const int num_master = std::max(
      1, static_cast<int>(std::floor(result.stats.master_ratio * n)));
  const double threshold = sorted[std::min(num_master, n) - 1];
  for (const Subproblem& sp : result.subproblems) {
    for (int s : sp.services) {
      EXPECT_GE(totals[s], threshold - 1e-12) << "service " << s;
    }
  }
}

TEST_F(PartitioningFixture, MasterRatioOverrideHonored) {
  PartitioningOptions options;
  options.master_ratio_override = 0.05;
  PartitionResult result = PartitionServices(
      *snapshot_.cluster, snapshot_.original_placement, options);
  EXPECT_DOUBLE_EQ(result.stats.master_ratio, 0.05);
  const int expected_master = static_cast<int>(
      std::floor(0.05 * snapshot_.cluster->num_services()));
  EXPECT_LE(result.stats.num_crucial_services,
            std::max(1, expected_master));
}

TEST_F(PartitioningFixture, StatsAreConsistent) {
  PartitioningOptions options;
  PartitionResult result = PartitionServices(
      *snapshot_.cluster, snapshot_.original_placement, options);
  EXPECT_EQ(result.stats.num_trivial_services +
                result.stats.num_crucial_services,
            snapshot_.cluster->num_services());
  EXPECT_EQ(result.stats.num_subproblems,
            static_cast<int>(result.subproblems.size()));
  EXPECT_GE(result.stats.crucial_internal_affinity, 0.0);
  EXPECT_LE(result.stats.crucial_internal_affinity, 1.0 + 1e-9);
  EXPECT_GE(result.stats.master_affinity, 0.0);
  EXPECT_GT(result.stats.elapsed_seconds, 0.0);
}

TEST_F(PartitioningFixture, NoPartitionPutsEverythingInOneSubproblem) {
  PartitioningOptions options;
  options.mode = PartitionMode::kNoPartition;
  PartitionResult result = PartitionServices(
      *snapshot_.cluster, snapshot_.original_placement, options);
  ASSERT_EQ(result.subproblems.size(), 1u);
  EXPECT_EQ(static_cast<int>(result.subproblems[0].services.size()),
            snapshot_.cluster->num_services());
  EXPECT_EQ(static_cast<int>(result.subproblems[0].machines.size()),
            snapshot_.cluster->num_machines());
  EXPECT_TRUE(result.trivial_services.empty());
}

TEST_F(PartitioningFixture, RandomModeCoversServices) {
  PartitioningOptions options;
  options.mode = PartitionMode::kRandom;
  PartitionResult result = PartitionServices(
      *snapshot_.cluster, snapshot_.original_placement, options);
  int covered = static_cast<int>(result.trivial_services.size());
  for (const Subproblem& sp : result.subproblems) {
    covered += static_cast<int>(sp.services.size());
  }
  EXPECT_EQ(covered, snapshot_.cluster->num_services());
  EXPECT_GT(result.subproblems.size(), 1u);
}

TEST_F(PartitioningFixture, KahipModeRetainsMoreInternalAffinityThanRandom) {
  PartitioningOptions kahip;
  kahip.mode = PartitionMode::kKahip;
  PartitioningOptions random;
  random.mode = PartitionMode::kRandom;
  PartitionResult rk = PartitionServices(
      *snapshot_.cluster, snapshot_.original_placement, kahip);
  PartitionResult rr = PartitionServices(
      *snapshot_.cluster, snapshot_.original_placement, random);
  EXPECT_GE(rk.stats.crucial_internal_affinity,
            rr.stats.crucial_internal_affinity);
}

TEST_F(PartitioningFixture, MultiStageRetainsMostAffinity) {
  // The headline property behind Fig. 6: the multi-stage partitioner keeps
  // far more affinity inside subproblems than a random split (the paper
  // reports <12% loss at production scale; scaled-down instances lose more
  // but must still dominate RANDOM-PARTITION by a wide margin).
  PartitioningOptions options;
  PartitionResult result = PartitionServices(
      *snapshot_.cluster, snapshot_.original_placement, options);
  EXPECT_GT(result.stats.crucial_internal_affinity, 0.35);
  PartitioningOptions random;
  random.mode = PartitionMode::kRandom;
  PartitionResult rr = PartitionServices(
      *snapshot_.cluster, snapshot_.original_placement, random);
  EXPECT_GT(result.stats.crucial_internal_affinity,
            2.0 * rr.stats.crucial_internal_affinity);
}

TEST_F(PartitioningFixture, DeterministicForFixedSeed) {
  PartitioningOptions options;
  PartitionResult a = PartitionServices(
      *snapshot_.cluster, snapshot_.original_placement, options);
  PartitionResult b = PartitionServices(
      *snapshot_.cluster, snapshot_.original_placement, options);
  ASSERT_EQ(a.subproblems.size(), b.subproblems.size());
  for (size_t i = 0; i < a.subproblems.size(); ++i) {
    EXPECT_EQ(a.subproblems[i].services, b.subproblems[i].services);
    EXPECT_EQ(a.subproblems[i].machines, b.subproblems[i].machines);
  }
}

TEST(PartitioningEdgeTest, TinyClusterWithoutAffinityIsAllTrivial) {
  auto cluster = ClusterBuilder()
                     .AddService(2, {1.0})
                     .AddService(1, {1.0})
                     .AddMachine({8.0})
                     .Build();
  Placement p(*cluster);
  p.Add(0, 0, 2);
  p.Add(0, 1, 1);
  PartitionResult result = PartitionServices(*cluster, p, {});
  EXPECT_TRUE(result.subproblems.empty());
  EXPECT_EQ(result.trivial_services.size(), 2u);
}

TEST(PartitioningEdgeTest, PairClusterYieldsOneSubproblem) {
  auto cluster = ClusterBuilder()
                     .AddService(2, {1.0})
                     .AddService(2, {1.0})
                     .AddMachine({8.0})
                     .AddMachine({8.0})
                     .AddAffinity(0, 1, 1.0)
                     .Build();
  Placement p(*cluster);
  p.Add(0, 0, 2);
  p.Add(1, 1, 2);
  PartitionResult result = PartitionServices(*cluster, p, {});
  ASSERT_EQ(result.subproblems.size(), 1u);
  EXPECT_EQ(result.subproblems[0].services, (std::vector<int>{0, 1}));
  EXPECT_EQ(result.subproblems[0].machines.size(), 2u);
  EXPECT_DOUBLE_EQ(result.subproblems[0].internal_affinity, 1.0);
}

}  // namespace
}  // namespace rasa
