#include "core/local_search.h"

#include "cluster/generator.h"
#include "core/objective.h"
#include "core/rasa.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace rasa {
namespace {

using ::rasa::testing::ClusterBuilder;

TEST(LocalSearchTest, MovesPairTogether) {
  auto cluster = ClusterBuilder()
                     .AddService(1, {1.0})
                     .AddService(1, {1.0})
                     .AddMachine({4.0})
                     .AddMachine({4.0})
                     .AddAffinity(0, 1, 1.0)
                     .Build();
  Placement p(*cluster);
  p.Add(0, 0, 1);
  p.Add(1, 1, 1);
  EXPECT_DOUBLE_EQ(GainedAffinity(*cluster, p), 0.0);
  LocalSearchStats stats = RefinePlacement(*cluster, p);
  EXPECT_DOUBLE_EQ(GainedAffinity(*cluster, p), 1.0);
  EXPECT_GE(stats.moves_applied, 1);
  EXPECT_NEAR(stats.gain, 1.0, 1e-9);
  EXPECT_TRUE(p.CheckFeasible(true).ok());
}

TEST(LocalSearchTest, SwapEscapesCapacityBlockedOptimum) {
  // Machines are full: moving alone cannot collocate (0,1); swapping the
  // filler service's container makes room.
  auto cluster = ClusterBuilder()
                     .AddService(1, {1.0})   // 0: wants to join 1
                     .AddService(1, {1.0})   // 1
                     .AddService(1, {1.0})   // 2: affinity-free filler
                     .AddService(1, {1.0})   // 3: affinity-free filler
                     .AddMachine({2.0})
                     .AddMachine({2.0})
                     .AddAffinity(0, 1, 1.0)
                     .Build();
  Placement p(*cluster);
  p.Add(0, 0, 1);
  p.Add(0, 2, 1);
  p.Add(1, 1, 1);
  p.Add(1, 3, 1);
  EXPECT_DOUBLE_EQ(GainedAffinity(*cluster, p), 0.0);
  LocalSearchOptions options;
  LocalSearchStats stats = RefinePlacement(*cluster, p, options);
  EXPECT_DOUBLE_EQ(GainedAffinity(*cluster, p), 1.0);
  EXPECT_GE(stats.swaps_applied, 1);
  EXPECT_TRUE(p.CheckFeasible(true).ok());
}

TEST(LocalSearchTest, SwapsDisabledStaysBlocked) {
  auto cluster = ClusterBuilder()
                     .AddService(1, {1.0})
                     .AddService(1, {1.0})
                     .AddService(1, {1.0})
                     .AddService(1, {1.0})
                     .AddMachine({2.0})
                     .AddMachine({2.0})
                     .AddAffinity(0, 1, 1.0)
                     .Build();
  Placement p(*cluster);
  p.Add(0, 0, 1);
  p.Add(0, 2, 1);
  p.Add(1, 1, 1);
  p.Add(1, 3, 1);
  LocalSearchOptions options;
  options.enable_swaps = false;
  RefinePlacement(*cluster, p, options);
  EXPECT_DOUBLE_EQ(GainedAffinity(*cluster, p), 0.0);
}

TEST(LocalSearchTest, NeverDecreasesObjectiveOnGeneratedClusters) {
  for (int seed = 0; seed < 3; ++seed) {
    ClusterSpec spec = M3Spec(16.0);
    spec.seed = 700 + seed;
    StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
    ASSERT_TRUE(snapshot.ok());
    Placement p = snapshot->original_placement;
    const double before = GainedAffinity(*snapshot->cluster, p);
    LocalSearchStats stats = RefinePlacement(*snapshot->cluster, p);
    const double after = GainedAffinity(*snapshot->cluster, p);
    EXPECT_GE(after, before - 1e-9);
    EXPECT_NEAR(after - before, stats.gain, 1e-6);
    EXPECT_TRUE(p.CheckFeasible(true).ok()) << "seed " << seed;
  }
}

TEST(LocalSearchTest, ImprovesOriginalPlacementSubstantially) {
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M3Spec(16.0));
  ASSERT_TRUE(snapshot.ok());
  Placement p = snapshot->original_placement;
  const double before = GainedAffinity(*snapshot->cluster, p);
  RefinePlacement(*snapshot->cluster, p);
  EXPECT_GT(GainedAffinity(*snapshot->cluster, p), 1.2 * before);
}

TEST(LocalSearchTest, HonorsDeadline) {
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M1Spec(32.0));
  ASSERT_TRUE(snapshot.ok());
  Placement p = snapshot->original_placement;
  LocalSearchOptions options;
  options.deadline = Deadline::AfterSeconds(0.0);
  LocalSearchStats stats = RefinePlacement(*snapshot->cluster, p, options);
  EXPECT_TRUE(stats.hit_deadline);
  EXPECT_EQ(p.DiffCount(snapshot->original_placement), 0);
}

TEST(LocalSearchTest, StopsWhenConverged) {
  auto cluster = ClusterBuilder()
                     .AddService(1, {1.0})
                     .AddService(1, {1.0})
                     .AddMachine({4.0})
                     .AddAffinity(0, 1, 1.0)
                     .Build();
  Placement p(*cluster);
  p.Add(0, 0, 1);
  p.Add(0, 1, 1);  // already optimal
  LocalSearchOptions options;
  options.max_passes = 10;
  LocalSearchStats stats = RefinePlacement(*cluster, p, options);
  EXPECT_EQ(stats.moves_applied, 0);
  EXPECT_EQ(stats.passes, 1);  // one pass with no improvement, then stop
}

TEST(LocalSearchTest, RasaIntegrationNeverHurts) {
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M3Spec(16.0));
  ASSERT_TRUE(snapshot.ok());
  RasaOptions plain;
  plain.timeout_seconds = 1.0;
  plain.compute_migration = false;
  plain.seed = 5;
  RasaOptions refined = plain;
  refined.refine_with_local_search = true;
  refined.timeout_seconds = 2.0;  // leftover budget feeds the refinement
  RasaOptimizer a(plain, AlgorithmSelector(SelectorPolicy::kHeuristic));
  RasaOptimizer b(refined, AlgorithmSelector(SelectorPolicy::kHeuristic));
  StatusOr<RasaResult> ra =
      a.Optimize(*snapshot->cluster, snapshot->original_placement);
  StatusOr<RasaResult> rb =
      b.Optimize(*snapshot->cluster, snapshot->original_placement);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_GE(rb->new_gained_affinity, ra->new_gained_affinity - 1e-9);
}

}  // namespace
}  // namespace rasa
