#ifndef RASA_TESTS_TEST_UTIL_H_
#define RASA_TESTS_TEST_UTIL_H_

#include <memory>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"

namespace rasa::testing {

/// Weight of edge {u, v} found by scanning the neighbor span, or 0 when
/// absent. Replaces the random-access accessor the view API dropped.
inline double EdgeWeightOf(const AffinityGraph& graph, int u, int v) {
  for (const auto& [nbr, w] : graph.Neighbors(u)) {
    if (nbr == v) return w;
  }
  return 0.0;
}

/// Builder for small hand-crafted clusters used across core tests.
class ClusterBuilder {
 public:
  explicit ClusterBuilder(int num_resources = 1)
      : resource_names_(num_resources == 1
                            ? std::vector<std::string>{"cpu"}
                            : std::vector<std::string>{"cpu", "mem"}) {}

  /// Adds a service; `request` must match the resource count.
  ClusterBuilder& AddService(int demand, std::vector<double> request,
                             int platform = 0) {
    Service s;
    s.name = "svc" + std::to_string(services_.size());
    s.demand = demand;
    s.request = std::move(request);
    s.platform = platform;
    services_.push_back(std::move(s));
    return *this;
  }

  ClusterBuilder& AddMachine(std::vector<double> capacity, int spec = 0,
                             int platform = 0) {
    Machine m;
    m.name = "m" + std::to_string(machines_.size());
    m.spec_id = spec;
    m.capacity = std::move(capacity);
    m.platform = platform;
    machines_.push_back(std::move(m));
    return *this;
  }

  ClusterBuilder& AddAffinity(int u, int v, double w) {
    edges_.push_back({u, v, w});
    return *this;
  }

  ClusterBuilder& AddRule(std::vector<int> services, int limit) {
    rules_.push_back({std::move(services), limit});
    return *this;
  }

  /// Builds a shared cluster (placements keep pointers into it).
  std::shared_ptr<Cluster> Build() {
    AffinityGraph g(static_cast<int>(services_.size()));
    for (const auto& e : edges_) g.AddEdge(e.u, e.v, e.weight);
    return std::make_shared<Cluster>(resource_names_, services_, machines_,
                                     std::move(g), rules_);
  }

 private:
  std::vector<std::string> resource_names_;
  std::vector<Service> services_;
  std::vector<Machine> machines_;
  std::vector<AffinityEdge> edges_;
  std::vector<AntiAffinityRule> rules_;
};

}  // namespace rasa::testing

#endif  // RASA_TESTS_TEST_UTIL_H_
