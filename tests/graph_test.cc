#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "graph/affinity_graph.h"
#include "graph/partition.h"
#include "graph/powerlaw_fit.h"
#include "gtest/gtest.h"

namespace rasa {
namespace {

AffinityGraph Triangle() {
  AffinityGraph g(3);
  EXPECT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  EXPECT_TRUE(g.AddEdge(1, 2, 2.0).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 3.0).ok());
  return g;
}

// The view API dropped random-access weight lookup; tests scan the span.
double EdgeWeightOf(const AffinityGraph& g, int u, int v) {
  for (const auto& [nbr, w] : g.Neighbors(u)) {
    if (nbr == v) return w;
  }
  return 0.0;
}

TEST(AffinityGraphTest, BasicAccessors) {
  AffinityGraph g = Triangle();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_DOUBLE_EQ(EdgeWeightOf(g, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(EdgeWeightOf(g, 1, 0), 1.0);
  EXPECT_DOUBLE_EQ(EdgeWeightOf(g, 0, 2), 3.0);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 6.0);
  EXPECT_DOUBLE_EQ(g.TotalAffinityOf(0), 4.0);
  EXPECT_EQ(g.Degree(1), 2);
}

TEST(AffinityGraphTest, RejectsSelfLoopAndBadInput) {
  AffinityGraph g(3);
  EXPECT_FALSE(g.AddEdge(1, 1, 1.0).ok());
  EXPECT_FALSE(g.AddEdge(0, 5, 1.0).ok());
  EXPECT_FALSE(g.AddEdge(0, 1, 0.0).ok());
  EXPECT_FALSE(g.AddEdge(0, 1, -1.0).ok());
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(AffinityGraphTest, ParallelEdgesAccumulate) {
  AffinityGraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 0, 2.5).ok());
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(EdgeWeightOf(g, 0, 1), 3.5);
  EXPECT_DOUBLE_EQ(g.TotalAffinityOf(0), 3.5);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 3.5);
}

TEST(AffinityGraphTest, NormalizeWeights) {
  AffinityGraph g = Triangle();
  g.NormalizeWeights();
  EXPECT_NEAR(g.TotalWeight(), 1.0, 1e-12);
  EXPECT_NEAR(EdgeWeightOf(g, 0, 2), 0.5, 1e-12);
  EXPECT_NEAR(g.TotalAffinityOf(0), 4.0 / 6.0, 1e-12);
}

TEST(AffinityGraphTest, NormalizeEmptyGraphIsNoop) {
  AffinityGraph g(3);
  g.NormalizeWeights();
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 0.0);
}

TEST(AffinityGraphTest, InducedSubgraph) {
  AffinityGraph g = Triangle();
  AffinityGraph sub = g.InducedSubgraph({0, 2});
  EXPECT_EQ(sub.num_vertices(), 2);
  EXPECT_EQ(sub.num_edges(), 1);
  EXPECT_DOUBLE_EQ(EdgeWeightOf(sub, 0, 1), 3.0);
}

TEST(AffinityGraphTest, ConnectedComponents) {
  AffinityGraph g(6);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 2, 1);
  g.AddEdge(3, 4, 1);
  int count = 0;
  std::vector<int> comp = g.ConnectedComponents(&count);
  EXPECT_EQ(count, 3);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[0], comp[5]);
  EXPECT_NE(comp[3], comp[5]);
}

TEST(AffinityGraphTest, CutWeight) {
  AffinityGraph g = Triangle();
  EXPECT_DOUBLE_EQ(g.CutWeight({0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(g.CutWeight({0, 1, 0}), 3.0);  // edges (0,1) + (1,2)
  EXPECT_DOUBLE_EQ(g.CutWeight({0, 1, 2}), 6.0);
}

// The CSR backend engages above the dense-backend vertex cutoff (64); the
// view API must behave identically on both sides of it.
TEST(AffinityGraphTest, CsrBackendMatchesDenseSemantics) {
  // Same edge script on a 10-vertex (dense) and a 100-vertex (CSR) graph;
  // the extra CSR vertices stay isolated, so shared vertices must agree
  // exactly — including neighbor iteration order.
  AffinityGraph dense(10);
  AffinityGraph csr(100);
  Rng rng(33);
  for (int i = 0; i < 60; ++i) {
    const int u = static_cast<int>(rng.NextUint64(10));
    const int v = static_cast<int>(rng.NextUint64(10));
    if (u == v) continue;
    const double w = 0.25 + rng.NextDouble();
    ASSERT_EQ(dense.AddEdge(u, v, w).ok(), csr.AddEdge(u, v, w).ok());
  }
  ASSERT_EQ(dense.num_edges(), csr.num_edges());
  for (int v = 0; v < 10; ++v) {
    ASSERT_EQ(dense.Degree(v), csr.Degree(v)) << "vertex " << v;
    const auto d = dense.Neighbors(v);
    const auto c = csr.Neighbors(v);
    for (size_t i = 0; i < d.size(); ++i) {
      EXPECT_EQ(d[i].first, c[i].first) << "vertex " << v << " slot " << i;
      EXPECT_EQ(d[i].second, c[i].second) << "vertex " << v << " slot " << i;
    }
    EXPECT_EQ(dense.TotalAffinityOf(v), csr.TotalAffinityOf(v));
  }
  EXPECT_DOUBLE_EQ(dense.TotalWeight(), csr.TotalWeight());
}

TEST(AffinityGraphTest, CsrRebuildsAfterMutation) {
  AffinityGraph g(80);  // above the dense-backend cutoff
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  EXPECT_EQ(g.Degree(0), 1);  // forces the CSR build
  ASSERT_TRUE(g.AddEdge(0, 2, 2.0).ok());   // new edge invalidates it
  ASSERT_TRUE(g.AddEdge(1, 0, 0.5).ok());   // duplicate accumulates
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_DOUBLE_EQ(EdgeWeightOf(g, 0, 1), 1.5);
  EXPECT_DOUBLE_EQ(EdgeWeightOf(g, 0, 2), 2.0);
  g.NormalizeWeights();
  EXPECT_NEAR(g.TotalWeight(), 1.0, 1e-12);
  EXPECT_NEAR(EdgeWeightOf(g, 0, 2), 2.0 / 3.5, 1e-12);
  // Neighbor order is edge first-insertion order, same as the dense backend.
  const auto nbrs = g.Neighbors(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0].first, 1);
  EXPECT_EQ(nbrs[1].first, 2);
}

TEST(AffinityGraphTest, FinalizeIsIdempotent) {
  AffinityGraph g(80);
  ASSERT_TRUE(g.AddEdge(3, 4, 1.25).ok());
  g.Finalize();
  g.Finalize();
  EXPECT_EQ(g.Degree(3), 1);
  EXPECT_DOUBLE_EQ(EdgeWeightOf(g, 4, 3), 1.25);
}

TEST(PowerLawGraphTest, GeneratesRequestedShape) {
  Rng rng(5);
  AffinityGraph g = GeneratePowerLawGraph(100, 150, 1.6, rng);
  EXPECT_EQ(g.num_vertices(), 100);
  EXPECT_GT(g.num_edges(), 100);
  EXPECT_LE(g.num_edges(), 150);
}

TEST(PowerLawGraphTest, TotalAffinityIsSkewed) {
  Rng rng(6);
  AffinityGraph g = GeneratePowerLawGraph(200, 400, 1.8, rng);
  // Top 10% of services should carry well over half the affinity.
  EXPECT_GT(TopKAffinityShare(g, 20), 0.5);
}


TEST(PowerLawGraphTest, RespectsDegreeCap) {
  Rng rng(21);
  AffinityGraph g = GeneratePowerLawGraph(150, 300, 1.6, rng,
                                          /*max_degree=*/6);
  for (int v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(g.Degree(v), 6) << "vertex " << v;
  }
}

TEST(PowerLawGraphTest, SinkhornHitsRankTargets) {
  // The fitted weights should put T(s) close to the (s+2)^-beta target for
  // the head of the ranking.
  Rng rng(22);
  const double beta = 1.5;
  AffinityGraph g = GeneratePowerLawGraph(300, 500, beta, rng);
  std::vector<double> totals = SortedTotalAffinities(g);
  // Compare the head decay rate against the target decay rate.
  const double measured_ratio = totals[0] / totals[9];
  const double target_ratio =
      std::pow(2.0, -beta) / std::pow(11.0, -beta);
  EXPECT_GT(measured_ratio, 0.3 * target_ratio);
  EXPECT_LT(measured_ratio, 3.0 * target_ratio);
}
TEST(PowerLawFitTest, RecoversExponentOnSyntheticData) {
  std::vector<double> values;
  for (int s = 1; s <= 200; ++s) values.push_back(10.0 * std::pow(s, -1.5));
  DecayFit fit = FitPowerLaw(values);
  EXPECT_NEAR(fit.exponent, 1.5, 1e-6);
  EXPECT_NEAR(fit.scale, 10.0, 1e-6);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(PowerLawFitTest, ExponentialFitRecoversRate) {
  std::vector<double> values;
  for (int s = 1; s <= 100; ++s) values.push_back(4.0 * std::exp(-0.1 * s));
  DecayFit fit = FitExponential(values);
  EXPECT_NEAR(fit.exponent, 0.1, 1e-9);
  EXPECT_NEAR(fit.scale, 4.0, 1e-9);
}

TEST(PowerLawFitTest, PowerLawDataPrefersPowerLawFit) {
  // The Fig. 5 claim: on power-law data the power-law fit has better R^2
  // than the exponential fit.
  std::vector<double> values;
  Rng rng(7);
  for (int s = 1; s <= 150; ++s) {
    values.push_back(std::pow(s, -1.4) * (0.9 + 0.2 * rng.NextDouble()));
  }
  DecayFit power = FitPowerLaw(values);
  DecayFit expo = FitExponential(values);
  EXPECT_GT(power.r_squared, expo.r_squared);
}

TEST(PowerLawFitTest, SkipsNonPositiveValues) {
  DecayFit fit = FitPowerLaw({1.0, 0.0, 0.25, -1.0});
  EXPECT_GT(fit.exponent, 0.0);  // fitted on ranks 1 and 3 only
}

TEST(PowerLawFitTest, SortedTotalAffinitiesDescending) {
  AffinityGraph g = Triangle();
  std::vector<double> totals = SortedTotalAffinities(g);
  ASSERT_EQ(totals.size(), 3u);
  EXPECT_TRUE(std::is_sorted(totals.rbegin(), totals.rend()));
  EXPECT_DOUBLE_EQ(totals[0], 5.0);
}

// ----------------------------------------------------------- Partitions ---

TEST(PartitionTest, MultiSourceBfsCoversAllVertices) {
  Rng rng(8);
  AffinityGraph g = GeneratePowerLawGraph(60, 100, 1.5, rng);
  Partition p = MultiSourceBfsPartition(g, {0, 5, 11});
  EXPECT_EQ(p.num_parts, 3);
  for (int v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(p.part_of[v], 0);
    EXPECT_LT(p.part_of[v], 3);
  }
  EXPECT_EQ(p.part_of[0], 0);
  EXPECT_EQ(p.part_of[5], 1);
  EXPECT_EQ(p.part_of[11], 2);
}

TEST(PartitionTest, PartSizesAndBalanceRatio) {
  Partition p;
  p.num_parts = 2;
  p.part_of = {0, 0, 0, 1};
  EXPECT_EQ(p.PartSizes(), (std::vector<int>{3, 1}));
  EXPECT_DOUBLE_EQ(p.BalanceRatio(), 3.0);
  EXPECT_EQ(p.Groups()[1], (std::vector<int>{3}));
}

TEST(PartitionTest, RandomPartitionIsBalanced) {
  Rng rng(9);
  AffinityGraph g(100);
  Partition p = RandomPartition(g, 4, rng);
  std::vector<int> sizes = p.PartSizes();
  for (int s : sizes) EXPECT_EQ(s, 25);
}

TEST(PartitionTest, LossMinPartitionIsBalancedAndDisjoint) {
  Rng rng(10);
  AffinityGraph g = GeneratePowerLawGraph(80, 160, 1.5, rng);
  Partition p = LossMinBalancedPartition(g, 4, 32, rng);
  EXPECT_EQ(p.num_parts, 4);
  std::set<int> used;
  for (int v = 0; v < 80; ++v) {
    EXPECT_GE(p.part_of[v], 0);
    used.insert(p.part_of[v]);
  }
  EXPECT_LE(p.BalanceRatio(), 6.0);  // fallback allows some imbalance
}

TEST(PartitionTest, LossMinBeatsRandomOnCutWeight) {
  Rng rng(11);
  AffinityGraph g = GeneratePowerLawGraph(100, 220, 1.6, rng);
  Rng r1(1), r2(1);
  Partition loss_min = LossMinBalancedPartition(g, 4, 48, r1);
  Partition random = RandomPartition(g, 4, r2);
  EXPECT_LT(g.CutWeight(loss_min.part_of), g.CutWeight(random.part_of));
}

TEST(PartitionTest, KahipLikeProducesBalancedLowCut) {
  Rng rng(12);
  AffinityGraph g = GeneratePowerLawGraph(90, 200, 1.5, rng);
  Rng r1(2), r2(2);
  Partition kahip = KahipLikePartition(g, 3, r1);
  EXPECT_EQ(kahip.num_parts, 3);
  std::vector<int> sizes = kahip.PartSizes();
  int total = 0;
  for (int s : sizes) total += s;
  EXPECT_EQ(total, 90);
  Partition random = RandomPartition(g, 3, r2);
  EXPECT_LE(g.CutWeight(kahip.part_of), g.CutWeight(random.part_of));
}

TEST(PartitionTest, KlRefinementNeverWorsensCut) {
  Rng rng(13);
  AffinityGraph g = GeneratePowerLawGraph(70, 150, 1.5, rng);
  Partition p = RandomPartition(g, 3, rng);
  const double before = g.CutWeight(p.part_of);
  std::vector<int> ceilings(3, 70);
  RefinePartitionKl(g, p, ceilings);
  EXPECT_LE(g.CutWeight(p.part_of), before + 1e-12);
}

TEST(PartitionTest, KlRefinementRespectsSizeCeilings) {
  Rng rng(14);
  AffinityGraph g = GeneratePowerLawGraph(40, 90, 1.5, rng);
  Partition p = RandomPartition(g, 2, rng);
  std::vector<int> ceilings = {22, 22};
  RefinePartitionKl(g, p, ceilings);
  std::vector<int> sizes = p.PartSizes();
  EXPECT_LE(sizes[0], 22);
  EXPECT_LE(sizes[1], 22);
}

TEST(PartitionTest, SinglePartDegenerateCases) {
  Rng rng(15);
  AffinityGraph g(10);
  Partition p = LossMinBalancedPartition(g, 1, 4, rng);
  EXPECT_EQ(p.num_parts, 1);
  Partition k = KahipLikePartition(g, 1, rng);
  EXPECT_EQ(k.num_parts, 1);
  for (int v = 0; v < 10; ++v) EXPECT_EQ(k.part_of[v], 0);
}

TEST(PartitionTest, EmptyGraphHandled) {
  Rng rng(16);
  AffinityGraph g;
  Partition p = KahipLikePartition(g, 3, rng);
  EXPECT_TRUE(p.part_of.empty());
  Partition q = LossMinBalancedPartition(g, 2, 4, rng);
  EXPECT_TRUE(q.part_of.empty());
}

}  // namespace
}  // namespace rasa
