// Delta-aware incremental re-optimization: the snapshot differ, the
// incremental-state serialization (journal records + checkpoint section),
// the reuse/fallback split of the incremental Optimize path, and the workflow
// plumbing that carries the delta cache across cycles and crashes. The
// bit-identity matrix (incremental ≡ full resolve across thread counts and
// across --resume) lives in incremental_determinism_test.cc.

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/generator.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/delta.h"
#include "core/rasa.h"
#include "core/recovery.h"
#include "gtest/gtest.h"
#include "sim/workflow.h"

namespace rasa {
namespace {

ClusterSnapshot MakeCluster(uint64_t seed) {
  ClusterSpec spec = M1Spec(32.0);
  spec.seed = seed;
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  RASA_CHECK(snapshot.ok()) << snapshot.status().ToString();
  return std::move(snapshot).value();
}

RasaOptions TestOptions(uint64_t seed) {
  RasaOptions options;
  options.timeout_seconds = 30.0;
  options.partitioning.max_subproblem_services = 12;
  options.seed = seed;
  return options;
}

// A structurally identical cluster with every affinity weight scaled: the
// differ must mark every subproblem with internal edges dirty.
Cluster ScaleAffinity(const Cluster& cluster, double factor) {
  AffinityGraph scaled(cluster.num_services());
  for (const AffinityEdge& e : cluster.affinity().edges()) {
    scaled.AddEdge(e.u, e.v, e.weight * factor);
  }
  return Cluster(cluster.resource_names(), cluster.services(),
                 cluster.machines(), std::move(scaled),
                 cluster.anti_affinity());
}

// ------------------------------------------------------------- differ ----

TEST(DeltaTest, StructureSignatureIsStableAndSensitive) {
  const ClusterSnapshot snapshot = MakeCluster(3);
  const uint64_t sig = ClusterStructureSignature(*snapshot.cluster);
  EXPECT_EQ(sig, ClusterStructureSignature(*snapshot.cluster));
  // Affinity weights are diffed per-partition, not hashed: a re-weighted
  // cluster keeps its signature.
  EXPECT_EQ(sig, ClusterStructureSignature(ScaleAffinity(*snapshot.cluster,
                                                         3.0)));
  // Capacity changes are structural.
  std::vector<Machine> machines = snapshot.cluster->machines();
  machines[0].capacity[0] *= 2.0;
  const Cluster resized(snapshot.cluster->resource_names(),
                        snapshot.cluster->services(), std::move(machines),
                        snapshot.cluster->affinity(),
                        snapshot.cluster->anti_affinity());
  EXPECT_NE(sig, ClusterStructureSignature(resized));
}

TEST(DeltaTest, DiffAgainstInvalidStateIsColdStart) {
  const ClusterSnapshot snapshot = MakeCluster(3);
  const IncrementalState state;  // valid == false
  const SnapshotDelta delta = DiffSnapshot(
      *snapshot.cluster, snapshot.original_placement, state, DeltaOptions());
  EXPECT_TRUE(delta.full_resolve);
  EXPECT_EQ(delta.reason, "cold-start");
}

TEST(DeltaTest, UnchangedSnapshotDiffsClean) {
  const ClusterSnapshot snapshot = MakeCluster(5);
  const RasaOptimizer optimizer(TestOptions(19),
                                AlgorithmSelector(SelectorPolicy::kHeuristic));
  IncrementalState state;
  StatusOr<RasaResult> first = optimizer.Optimize(
      *snapshot.cluster, snapshot.original_placement,
      OptimizeContext(nullptr, &state));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(state.valid);

  // Diffing the optimizer's own output against its state: nothing moved.
  const SnapshotDelta delta = DiffSnapshot(*snapshot.cluster,
                                           first->new_placement, state,
                                           DeltaOptions());
  EXPECT_FALSE(delta.full_resolve);
  EXPECT_EQ(delta.num_dirty, 0);
  EXPECT_EQ(delta.dirty_affinity_fraction, 0.0);
}

TEST(DeltaTest, ReweightedAffinityDirtiesPartitions) {
  const ClusterSnapshot snapshot = MakeCluster(5);
  const RasaOptimizer optimizer(TestOptions(19),
                                AlgorithmSelector(SelectorPolicy::kHeuristic));
  IncrementalState state;
  StatusOr<RasaResult> first = optimizer.Optimize(
      *snapshot.cluster, snapshot.original_placement,
      OptimizeContext(nullptr, &state));
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Non-uniform re-weighting (uniform scaling cancels in the relative
  // ratios after normalization): perturb each edge by its index.
  AffinityGraph skewed(snapshot.cluster->num_services());
  int i = 0;
  for (const AffinityEdge& e : snapshot.cluster->affinity().edges()) {
    skewed.AddEdge(e.u, e.v, e.weight * (1.0 + 0.1 * (++i % 7)));
  }
  skewed.NormalizeWeights();
  const Cluster reweighted(snapshot.cluster->resource_names(),
                           snapshot.cluster->services(),
                           snapshot.cluster->machines(), std::move(skewed),
                           snapshot.cluster->anti_affinity());
  const SnapshotDelta delta = DiffSnapshot(reweighted, first->new_placement,
                                           state, DeltaOptions());
  // Weight drift everywhere: the drift threshold forces a full resolve.
  EXPECT_TRUE(delta.full_resolve);
  EXPECT_EQ(delta.reason, "drift-threshold");
}

// ------------------------------------------------------ serialization ----

TEST(DeltaTest, IncrementalStateRoundTripsThroughText) {
  const ClusterSnapshot snapshot = MakeCluster(7);
  const RasaOptimizer optimizer(TestOptions(23),
                                AlgorithmSelector(SelectorPolicy::kHeuristic));
  IncrementalState state;
  StatusOr<RasaResult> result = optimizer.Optimize(
      *snapshot.cluster, snapshot.original_placement,
      OptimizeContext(nullptr, &state));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(state.valid);
  ASSERT_FALSE(state.subproblems.empty());

  const std::string encoded = EncodeIncrementalStateString(state);
  StatusOr<IncrementalState> decoded = DecodeIncrementalStateString(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // Canonical form: decode(encode(x)) re-encodes to the same bytes.
  EXPECT_EQ(EncodeIncrementalStateString(*decoded), encoded);
  EXPECT_EQ(decoded->structure_signature, state.structure_signature);
  EXPECT_EQ(decoded->subproblems.size(), state.subproblems.size());
  // The decoded state must be as good as the live one: same delta verdict.
  const SnapshotDelta live = DiffSnapshot(*snapshot.cluster,
                                          result->new_placement, state,
                                          DeltaOptions());
  const SnapshotDelta replay = DiffSnapshot(*snapshot.cluster,
                                            result->new_placement, *decoded,
                                            DeltaOptions());
  EXPECT_EQ(live.full_resolve, replay.full_resolve);
  EXPECT_EQ(live.num_dirty, replay.num_dirty);
}

TEST(DeltaTest, DecodeRejectsCorruptInput) {
  EXPECT_FALSE(DecodeIncrementalStateString("").ok());
  EXPECT_FALSE(DecodeIncrementalStateString("not-incstate 1 2 3").ok());
  EXPECT_FALSE(DecodeIncrementalStateString("incstate-v1 1 42 5 4").ok());
  // Absurd subproblem count must be rejected before any allocation.
  EXPECT_FALSE(
      DecodeIncrementalStateString("incstate-v1 1 42 5 4 1 0.5 0.1 99999999")
          .ok());
}

TEST(DeltaTest, JournalRecordRoundTripsIncrementalState) {
  const ClusterSnapshot snapshot = MakeCluster(7);
  const RasaOptimizer optimizer(TestOptions(23),
                                AlgorithmSelector(SelectorPolicy::kHeuristic));
  IncrementalState state;
  ASSERT_TRUE(optimizer
                  .Optimize(*snapshot.cluster, snapshot.original_placement,
                            OptimizeContext(nullptr, &state))
                  .ok());
  JournalRecord rec;
  rec.type = JournalRecordType::kIncrementalState;
  rec.cycle = 4;
  rec.incremental_state = EncodeIncrementalStateString(state);
  StatusOr<JournalRecord> decoded = DecodeJournalRecord(EncodeJournalRecord(rec));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, JournalRecordType::kIncrementalState);
  EXPECT_EQ(decoded->cycle, 4);
  EXPECT_EQ(decoded->incremental_state, rec.incremental_state);
}

TEST(DeltaTest, CheckpointCarriesIncrementalStateAndStaysBackwardCompatible) {
  const ClusterSnapshot snapshot = MakeCluster(7);
  const RasaOptimizer optimizer(TestOptions(23),
                                AlgorithmSelector(SelectorPolicy::kHeuristic));
  WorkflowCheckpoint c;
  c.next_cycle = 2;
  c.rng_state = Rng(9).SerializeState();
  c.frozen_cooldown.assign(snapshot.cluster->num_services(), 0);
  c.snapshot = snapshot;
  ASSERT_TRUE(optimizer
                  .Optimize(*snapshot.cluster, snapshot.original_placement,
                            OptimizeContext(nullptr, &c.incremental))
                  .ok());
  ASSERT_TRUE(c.incremental.valid);
  StatusOr<WorkflowCheckpoint> decoded =
      DecodeWorkflowCheckpoint(EncodeWorkflowCheckpoint(c));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->incremental.valid);
  EXPECT_EQ(EncodeIncrementalStateString(decoded->incremental),
            EncodeIncrementalStateString(c.incremental));

  // A checkpoint without the section (what every pre-incremental run
  // wrote) still decodes, with the state left invalid.
  c.incremental = IncrementalState();
  decoded = DecodeWorkflowCheckpoint(EncodeWorkflowCheckpoint(c));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded->incremental.valid);
}

// ---------------------------------------------------------- optimizer ----

TEST(IncrementalOptimizeTest, FirstCallIsColdStartThenSteadyStateReuses) {
  const ClusterSnapshot snapshot = MakeCluster(11);
  const RasaOptimizer optimizer(TestOptions(29),
                                AlgorithmSelector(SelectorPolicy::kHeuristic));
  IncrementalState state;
  StatusOr<RasaResult> first = optimizer.Optimize(
      *snapshot.cluster, snapshot.original_placement,
      OptimizeContext(nullptr, &state));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->incremental);
  EXPECT_EQ(first->incremental_reason, "cold-start");
  EXPECT_EQ(first->reused_subproblems, 0);
  ASSERT_TRUE(state.valid);

  // Re-optimizing the optimizer's own output with unchanged inputs: every
  // subproblem is clean and the realized placement is reproduced exactly.
  StatusOr<RasaResult> second = optimizer.Optimize(
      *snapshot.cluster, first->new_placement,
      OptimizeContext(nullptr, &state));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->incremental);
  EXPECT_EQ(second->dirty_subproblems, 0);
  EXPECT_EQ(second->reused_subproblems,
            static_cast<int>(second->subproblems.size()));
  EXPECT_EQ(second->new_placement.DiffCount(first->new_placement), 0);
  EXPECT_EQ(first->new_placement.DiffCount(second->new_placement), 0);
  EXPECT_TRUE(second->new_placement.CheckFeasible(false).ok());
  // Reused rows are flagged in the solve ledger.
  ASSERT_TRUE(second->report.populated);
  for (const LedgerRecord& rec : second->report.records) {
    EXPECT_TRUE(rec.reused);
  }
}

TEST(IncrementalOptimizeTest, StructureChangeFallsBackToFullResolve) {
  const ClusterSnapshot snapshot = MakeCluster(11);
  const RasaOptimizer optimizer(TestOptions(29),
                                AlgorithmSelector(SelectorPolicy::kHeuristic));
  IncrementalState state;
  ASSERT_TRUE(optimizer
                  .Optimize(*snapshot.cluster, snapshot.original_placement,
                            OptimizeContext(nullptr, &state))
                  .ok());
  std::vector<Machine> machines = snapshot.cluster->machines();
  machines[0].capacity[0] *= 2.0;
  const Cluster resized(snapshot.cluster->resource_names(),
                        snapshot.cluster->services(), std::move(machines),
                        snapshot.cluster->affinity(),
                        snapshot.cluster->anti_affinity());
  const Placement rebound = [&] {
    Placement p(resized);
    for (int m = 0; m < resized.num_machines(); ++m) {
      for (const auto& [s, count] :
           snapshot.original_placement.ServicesOn(m)) {
        p.Add(m, s, count);
      }
    }
    return p;
  }();
  StatusOr<RasaResult> result =
      optimizer.Optimize(resized, rebound, OptimizeContext(nullptr, &state));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->incremental);
  EXPECT_EQ(result->incremental_reason, "structure");
  // The refreshed state binds to the new structure.
  EXPECT_EQ(state.structure_signature, ClusterStructureSignature(resized));
}

// ------------------------------------------------------------ workflow ----

TEST(IncrementalWorkflowTest, CyclesReportReuseAndStayFeasible) {
  const ClusterSnapshot snapshot = MakeCluster(13);
  WorkflowOptions options;
  options.cycles = 4;
  options.drift_fraction = 0.02;
  // Measurement noise re-randomizes every edge weight per cycle, which the
  // differ rightly reports as full drift; reuse needs exact measurement
  // (or a weight_tolerance sized to the noise).
  options.measurement_noise = 0.0;
  options.rasa.timeout_seconds = 15.0;
  options.rasa.partitioning.max_subproblem_services = 12;
  options.incremental = true;
  options.seed = 515;
  StatusOr<WorkflowReport> report = RunWorkflow(
      *snapshot.cluster, snapshot.original_placement,
      AlgorithmSelector(SelectorPolicy::kHeuristic), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->cycles.size(), 4u);
  EXPECT_FALSE(report->cycles[0].incremental);
  EXPECT_EQ(report->cycles[0].incremental_reason, "cold-start");
  // Later cycles either reuse or record an explicit fallback reason; at 2%
  // drift the steady state must reuse at least once.
  int reused_cycles = 0;
  for (size_t c = 1; c < report->cycles.size(); ++c) {
    const CycleReport& cr = report->cycles[c];
    if (cr.solver_failed) continue;
    if (cr.incremental) {
      ++reused_cycles;
      EXPECT_GT(cr.reused_subproblems, 0) << "cycle " << c;
    } else {
      EXPECT_FALSE(cr.incremental_reason.empty()) << "cycle " << c;
    }
  }
  EXPECT_GT(reused_cycles, 0);
  EXPECT_TRUE(report->final_placement.CheckFeasible(false).ok());
  EXPECT_EQ(report->sla_violations, 0);
  EXPECT_EQ(report->feasibility_violations, 0);
}

TEST(IncrementalWorkflowTest, IncrementalOffLeavesReportsUntouched) {
  const ClusterSnapshot snapshot = MakeCluster(13);
  WorkflowOptions options;
  options.cycles = 2;
  options.rasa.timeout_seconds = 15.0;
  options.rasa.partitioning.max_subproblem_services = 12;
  options.seed = 515;  // incremental defaults to off
  StatusOr<WorkflowReport> report = RunWorkflow(
      *snapshot.cluster, snapshot.original_placement,
      AlgorithmSelector(SelectorPolicy::kHeuristic), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const CycleReport& cr : report->cycles) {
    EXPECT_FALSE(cr.incremental);
    EXPECT_EQ(cr.reused_subproblems, 0);
    EXPECT_TRUE(cr.incremental_reason.empty());
  }
}

}  // namespace
}  // namespace rasa
