#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "ml/adam.h"
#include "ml/feature_graph.h"
#include "ml/gcn.h"

namespace rasa {
namespace {

// ----------------------------------------------------------------- Adam ---

TEST(AdamTest, MinimizesSimpleQuadratic) {
  // minimize (w - 3)^2 by feeding grad = 2(w - 3).
  Matrix w(1, 1, 0.0);
  AdamOptimizer opt(0.1);
  for (int step = 0; step < 500; ++step) {
    Matrix grad(1, 1, 2.0 * (w(0, 0) - 3.0));
    opt.NextStep();
    opt.Update(w, grad);
  }
  EXPECT_NEAR(w(0, 0), 3.0, 1e-3);
}

TEST(AdamTest, TracksPerParameterState) {
  Matrix a(1, 1, 0.0), b(1, 1, 0.0);
  AdamOptimizer opt(0.1);
  for (int step = 0; step < 300; ++step) {
    opt.NextStep();
    Matrix ga(1, 1, 2.0 * (a(0, 0) - 1.0));
    Matrix gb(1, 1, 2.0 * (b(0, 0) + 2.0));
    opt.Update(a, ga);
    opt.Update(b, gb);
  }
  EXPECT_NEAR(a(0, 0), 1.0, 1e-2);
  EXPECT_NEAR(b(0, 0), -2.0, 1e-2);
}

// --------------------------------------------------------- FeatureGraph ---

TEST(FeatureGraphTest, NormalizedAdjacencyRowsAreBounded) {
  AffinityGraph g(3);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(1, 2, 1.0);
  FeatureGraph fg = MakeFeatureGraph(g, Matrix(3, 2, 1.0));
  EXPECT_EQ(fg.a_hat.rows(), 3);
  // Symmetry.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(fg.a_hat.At(i, j), fg.a_hat.At(j, i), 1e-12);
    }
  }
  // Self-loops make diagonals positive.
  for (int i = 0; i < 3; ++i) EXPECT_GT(fg.a_hat.At(i, i), 0.0);
}

TEST(FeatureGraphTest, IsolatedVertexStillNormalized) {
  AffinityGraph g(2);  // no edges
  FeatureGraph fg = MakeFeatureGraph(g, Matrix(2, 1, 1.0));
  EXPECT_NEAR(fg.a_hat.At(0, 0), 1.0, 1e-12);  // self-loop only, degree 1
  EXPECT_NEAR(fg.a_hat.At(0, 1), 0.0, 1e-12);
}

// ------------------------------------------------------------------ GCN ---

FeatureGraph DenseGraph(int n, double feature, Rng& rng) {
  AffinityGraph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.NextBool(0.8)) g.AddEdge(i, j, 1.0);
    }
  }
  Matrix features(n, 2);
  for (int i = 0; i < n; ++i) {
    features(i, 0) = feature + 0.05 * rng.NextGaussian();
    features(i, 1) = 0.5;
  }
  return MakeFeatureGraph(g, features);
}

TEST(GcnTest, ForwardProducesValidDistribution) {
  Rng rng(1);
  GcnClassifier model(2, 8, 2, 7);
  FeatureGraph fg = DenseGraph(6, 0.5, rng);
  Matrix probs = model.Forward(fg);
  ASSERT_EQ(probs.rows(), 1);
  ASSERT_EQ(probs.cols(), 2);
  EXPECT_NEAR(probs(0, 0) + probs(0, 1), 1.0, 1e-9);
  EXPECT_GE(probs(0, 0), 0.0);
}

TEST(GcnTest, LearnsFeatureSeparableLabels) {
  // Graphs whose vertex features are ~0.2 get label 0; ~0.8 get label 1.
  Rng rng(2);
  std::vector<FeatureGraph> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 60; ++i) {
    const int label = i % 2;
    graphs.push_back(DenseGraph(5 + (i % 4), label == 0 ? 0.2 : 0.8, rng));
    labels.push_back(label);
  }
  GcnClassifier model(2, 8, 2, 11);
  model.Fit(graphs, labels, 60, 0.02, 3);
  EXPECT_GE(model.Accuracy(graphs, labels), 0.95);
}

TEST(GcnTest, LearnsTopologySensitiveLabels) {
  // Assortative vs disassortative wiring: six vertices, three with high
  // features and three with low. Label 1 connects like-with-like (two
  // triangles), label 0 connects across (bipartite). Both classes have the
  // SAME mean feature vector and edge count, so the MLP is at chance while
  // the GCN separates them through neighbor aggregation — the paper's §V-C
  // argument for graph learning.
  Rng rng(3);
  std::vector<FeatureGraph> graphs;
  std::vector<Matrix> means;
  std::vector<int> labels;
  for (int i = 0; i < 80; ++i) {
    const int label = i % 2;
    const int n = 6;  // vertices 0..2 high, 3..5 low
    AffinityGraph g(n);
    if (label == 1) {
      g.AddEdge(0, 1, 1.0);
      g.AddEdge(1, 2, 1.0);
      g.AddEdge(0, 2, 1.0);
      g.AddEdge(3, 4, 1.0);
      g.AddEdge(4, 5, 1.0);
      g.AddEdge(3, 5, 1.0);
    } else {
      g.AddEdge(0, 3, 1.0);
      g.AddEdge(0, 4, 1.0);
      g.AddEdge(1, 4, 1.0);
      g.AddEdge(1, 5, 1.0);
      g.AddEdge(2, 5, 1.0);
      g.AddEdge(2, 3, 1.0);
    }
    Matrix features(n, 2);
    for (int v = 0; v < n; ++v) {
      features(v, 0) = (v < 3 ? 1.0 : 0.0) + 0.05 * rng.NextGaussian();
      features(v, 1) = 0.5;
    }
    graphs.push_back(MakeFeatureGraph(g, features));
    means.push_back(graphs.back().features.MeanRows());
    labels.push_back(label);
  }
  GcnClassifier gcn(2, 12, 2, 5);
  gcn.Fit(graphs, labels, 150, 0.02, 9);
  MlpClassifier mlp(2, 12, 2, 5);
  mlp.Fit(means, labels, 150, 0.02, 9);
  EXPECT_GT(gcn.Accuracy(graphs, labels), 0.9);
  // The MLP's inputs are statistically identical across classes.
  EXPECT_LT(mlp.Accuracy(means, labels), 0.7);
}

TEST(GcnTest, TrainStepReducesLossOnAverage) {
  Rng rng(4);
  FeatureGraph fg = DenseGraph(6, 0.7, rng);
  GcnClassifier model(2, 8, 2, 13);
  AdamOptimizer opt(0.05);
  double first = 0.0, last = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double loss = model.TrainStep(fg, 1, opt);
    if (i == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
  EXPECT_LT(last, 0.1);
}

TEST(GcnTest, BackpropMatchesNumericalGradientViaLossDecrease) {
  // Full gradient check is heavy; instead verify a tiny step along the
  // computed gradient direction decreases the loss (first-order sanity).
  Rng rng(5);
  FeatureGraph fg = DenseGraph(5, 0.4, rng);
  GcnClassifier model(2, 6, 2, 17);
  // Loss before.
  const double p_before = model.Forward(fg)(0, 0);
  AdamOptimizer opt(0.01);
  model.TrainStep(fg, 0, opt);
  const double p_after = model.Forward(fg)(0, 0);
  EXPECT_GT(p_after, p_before);  // probability of the true label rose
}

TEST(GcnTest, SerializeRoundTripsPredictions) {
  Rng rng(6);
  GcnClassifier model(2, 8, 2, 19);
  FeatureGraph fg = DenseGraph(7, 0.6, rng);
  const Matrix before = model.Forward(fg);
  StatusOr<GcnClassifier> restored =
      GcnClassifier::Deserialize(model.Serialize());
  ASSERT_TRUE(restored.ok());
  const Matrix after = restored->Forward(fg);
  EXPECT_NEAR(before(0, 0), after(0, 0), 1e-12);
  EXPECT_NEAR(before(0, 1), after(0, 1), 1e-12);
}

TEST(GcnTest, SaveLoadFileRoundTrip) {
  Rng rng(7);
  GcnClassifier model(2, 4, 2, 23);
  const std::string path = "/tmp/rasa_gcn_test.model";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  StatusOr<GcnClassifier> loaded = GcnClassifier::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  FeatureGraph fg = DenseGraph(4, 0.3, rng);
  EXPECT_NEAR(model.Forward(fg)(0, 0), loaded->Forward(fg)(0, 0), 1e-12);
}

TEST(GcnTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(GcnClassifier::Deserialize("not a model").ok());
  EXPECT_FALSE(GcnClassifier::Deserialize("gcn-v1\n1 2 0.5").ok());
}

TEST(GcnTest, LoadMissingFileFails) {
  EXPECT_FALSE(GcnClassifier::LoadFromFile("/nonexistent/x.model").ok());
}

// ------------------------------------------------------------------ MLP ---

TEST(MlpTest, LearnsLinearlySeparableInputs) {
  Rng rng(8);
  std::vector<Matrix> inputs;
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) {
    Matrix x(1, 2);
    const int label = i % 2;
    x(0, 0) = (label == 0 ? -1.0 : 1.0) + 0.2 * rng.NextGaussian();
    x(0, 1) = 0.5 * rng.NextGaussian();
    inputs.push_back(x);
    labels.push_back(label);
  }
  MlpClassifier model(2, 8, 2, 29);
  model.Fit(inputs, labels, 60, 0.02, 31);
  EXPECT_GE(model.Accuracy(inputs, labels), 0.95);
}

TEST(MlpTest, ForwardIsDistribution) {
  MlpClassifier model(3, 4, 2, 37);
  Matrix x(1, 3, 0.5);
  Matrix probs = model.Forward(x);
  EXPECT_NEAR(probs(0, 0) + probs(0, 1), 1.0, 1e-9);
}

}  // namespace
}  // namespace rasa
