// End-to-end integration tests: the full RASA pipeline against every
// baseline on generated clusters, plus the periodic workflow. These encode
// the paper's qualitative claims at test-sized scale.

#include "baselines/baselines.h"
#include "cluster/generator.h"
#include "core/objective.h"
#include "core/rasa.h"
#include "gtest/gtest.h"
#include "sim/production.h"
#include "sim/workflow.h"

namespace rasa {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterSpec spec = M3Spec(8.0);  // the small Table II cluster
    StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
    ASSERT_TRUE(snapshot.ok());
    snapshot_ = std::move(snapshot).value();
  }

  RasaResult RunRasa(double timeout) {
    RasaOptions options;
    options.timeout_seconds = timeout;
    options.compute_migration = false;
    RasaOptimizer optimizer(options,
                            AlgorithmSelector(SelectorPolicy::kHeuristic));
    StatusOr<RasaResult> result =
        optimizer.Optimize(*snapshot_.cluster, snapshot_.original_placement);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }

  ClusterSnapshot snapshot_;
};

TEST_F(IntegrationFixture, RasaBeatsEveryBaseline) {
  const Deadline deadline = Deadline::AfterSeconds(2.0);
  RasaResult rasa = RunRasa(2.0);
  StatusOr<BaselineResult> original = RunOriginal(*snapshot_.cluster, 3);
  StatusOr<BaselineResult> k8s =
      RunK8sPlus(*snapshot_.cluster, deadline, 3);
  StatusOr<BaselineResult> pop = RunPop(
      *snapshot_.cluster, snapshot_.original_placement, deadline, 3);
  StatusOr<BaselineResult> appl = RunApplsci19(
      *snapshot_.cluster, snapshot_.original_placement, deadline, 3);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(k8s.ok());
  ASSERT_TRUE(pop.ok());
  ASSERT_TRUE(appl.ok());
  EXPECT_GT(rasa.new_gained_affinity, original->gained_affinity);
  EXPECT_GT(rasa.new_gained_affinity, pop->gained_affinity);
  EXPECT_GT(rasa.new_gained_affinity, k8s->gained_affinity);
  EXPECT_GE(rasa.new_gained_affinity, appl->gained_affinity * 0.95);
}

TEST_F(IntegrationFixture, LongerBudgetNeverHurtsMuch) {
  RasaResult fast = RunRasa(0.3);
  RasaResult slow = RunRasa(3.0);
  EXPECT_GE(slow.new_gained_affinity, fast.new_gained_affinity * 0.9);
}

TEST_F(IntegrationFixture, EndToEndProductionStory) {
  // Optimize, migrate, then verify the production simulator reports
  // double-digit latency/error improvements (the §V-F story).
  RasaOptions options;
  options.timeout_seconds = 2.0;
  RasaOptimizer optimizer(options,
                          AlgorithmSelector(SelectorPolicy::kHeuristic));
  StatusOr<RasaResult> result =
      optimizer.Optimize(*snapshot_.cluster, snapshot_.original_placement);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->should_execute);
  ASSERT_TRUE(ValidateMigrationPlan(*snapshot_.cluster,
                                    snapshot_.original_placement,
                                    result->new_placement, result->migration)
                  .ok());
  ProductionSimOptions sim;
  ProductionSimReport report =
      SimulateProduction(*snapshot_.cluster, result->new_placement,
                         snapshot_.original_placement, sim);
  EXPECT_GT(report.latency_improvement, 0.10);
  EXPECT_GT(report.error_improvement, 0.10);
  // WITH RASA should close most of the gap to ONLY COLLOCATED.
  EXPECT_LT(report.latency_gap_to_collocated, 0.5);
}

TEST_F(IntegrationFixture, ContinuousWorkflowKeepsAffinityHigh) {
  WorkflowOptions options;
  options.cycles = 4;
  options.drift_fraction = 0.05;
  options.rasa.timeout_seconds = 1.0;
  StatusOr<WorkflowReport> report =
      RunWorkflow(*snapshot_.cluster, snapshot_.original_placement,
                  AlgorithmSelector(SelectorPolicy::kHeuristic), options);
  ASSERT_TRUE(report.ok());
  const double final_affinity =
      GainedAffinity(*snapshot_.cluster, report->final_placement);
  const double initial_affinity = GainedAffinity(
      *snapshot_.cluster, snapshot_.original_placement);
  EXPECT_GT(final_affinity, initial_affinity);
  EXPECT_GE(report->executions, 1);
}

TEST(IntegrationScaleTest, RasaHandlesEveryTableTwoCluster) {
  for (const ClusterSpec& spec : TableTwoSpecs(64.0)) {
    StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
    ASSERT_TRUE(snapshot.ok()) << spec.name;
    RasaOptions options;
    options.timeout_seconds = 1.0;
    options.compute_migration = false;
    RasaOptimizer optimizer(options,
                            AlgorithmSelector(SelectorPolicy::kHeuristic));
    StatusOr<RasaResult> result =
        optimizer.Optimize(*snapshot->cluster, snapshot->original_placement);
    ASSERT_TRUE(result.ok()) << spec.name;
    EXPECT_GT(result->new_gained_affinity,
              result->original_gained_affinity)
        << spec.name;
    EXPECT_TRUE(result->new_placement.CheckFeasible(false).ok()) << spec.name;
  }
}

}  // namespace
}  // namespace rasa
