#include <algorithm>

#include "cluster/cluster.h"
#include "cluster/first_fit.h"
#include "cluster/generator.h"
#include "cluster/placement.h"
#include "common/rng.h"
#include "graph/powerlaw_fit.h"
#include "gtest/gtest.h"

namespace rasa {
namespace {

// A small hand-built cluster: 3 services, 2 machines, one anti-affinity
// rule, two platforms.
Cluster TinyCluster() {
  std::vector<Service> services(3);
  services[0] = {"a", 4, {1.0, 2.0}, 0};
  services[1] = {"b", 2, {2.0, 1.0}, 0};
  services[2] = {"c", 1, {1.0, 1.0}, 1};
  std::vector<Machine> machines(3);
  machines[0] = {"m0", 0, {8.0, 12.0}, 0};
  machines[1] = {"m1", 0, {8.0, 12.0}, 0};
  machines[2] = {"m2", 1, {4.0, 6.0}, 1};
  AffinityGraph affinity(3);
  affinity.AddEdge(0, 1, 1.0);
  std::vector<AntiAffinityRule> rules = {{{0}, 2}};  // at most 2 of a/machine
  return Cluster({"cpu", "mem"}, std::move(services), std::move(machines),
                 std::move(affinity), std::move(rules));
}

TEST(ClusterTest, AccessorsAndValidation) {
  Cluster c = TinyCluster();
  EXPECT_EQ(c.num_services(), 3);
  EXPECT_EQ(c.num_machines(), 3);
  EXPECT_EQ(c.num_resources(), 2);
  EXPECT_EQ(c.num_containers(), 7);
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_EQ(c.RulesOfService(0), (std::vector<int>{0}));
  EXPECT_TRUE(c.RulesOfService(1).empty());
}

TEST(ClusterTest, CanHostFollowsPlatform) {
  Cluster c = TinyCluster();
  EXPECT_TRUE(c.CanHost(0, 0));
  EXPECT_TRUE(c.CanHost(1, 1));
  EXPECT_FALSE(c.CanHost(2, 0));  // platform mismatch
  EXPECT_FALSE(c.CanHost(0, 2));
  EXPECT_TRUE(c.CanHost(2, 2));
}

TEST(ClusterTest, MachineSpecQueries) {
  Cluster c = TinyCluster();
  EXPECT_EQ(c.MachineSpecIds(), (std::vector<int>{0, 1}));
  EXPECT_EQ(c.MachinesWithSpec(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(c.MachinesWithSpec(1), (std::vector<int>{2}));
}

TEST(ClusterTest, ValidationCatchesDimensionMismatch) {
  std::vector<Service> services = {{"a", 1, {1.0}, 0}};  // 1 resource
  std::vector<Machine> machines = {{"m", 0, {4.0, 4.0}, 0}};
  Cluster c({"cpu", "mem"}, services, machines, AffinityGraph(1), {});
  EXPECT_FALSE(c.Validate().ok());
}

TEST(ClusterTest, ValidationCatchesBadAffinitySize) {
  std::vector<Service> services = {{"a", 1, {1.0, 1.0}, 0}};
  std::vector<Machine> machines = {{"m", 0, {4.0, 4.0}, 0}};
  Cluster c({"cpu", "mem"}, services, machines, AffinityGraph(5), {});
  EXPECT_FALSE(c.Validate().ok());
}

TEST(ClusterTest, ValidationCatchesBadRule) {
  std::vector<Service> services = {{"a", 1, {1.0, 1.0}, 0}};
  std::vector<Machine> machines = {{"m", 0, {4.0, 4.0}, 0}};
  Cluster c({"cpu", "mem"}, services, machines, AffinityGraph(1),
            {{{7}, 1}});
  EXPECT_FALSE(c.Validate().ok());
}

// ------------------------------------------------------------ Placement ---

TEST(PlacementTest, AddRemoveBookkeeping) {
  Cluster c = TinyCluster();
  Placement p(c);
  p.Add(0, 0, 2);
  p.Add(1, 0, 1);
  EXPECT_EQ(p.CountOn(0, 0), 2);
  EXPECT_EQ(p.TotalOf(0), 3);
  EXPECT_EQ(p.ContainersOn(0), 2);
  EXPECT_DOUBLE_EQ(p.UsedResource(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(p.UsedResource(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(p.FreeResource(0, 0), 6.0);
  ASSERT_TRUE(p.Remove(0, 0, 1).ok());
  EXPECT_EQ(p.CountOn(0, 0), 1);
  EXPECT_EQ(p.TotalOf(0), 2);
  EXPECT_DOUBLE_EQ(p.UsedResource(0, 0), 1.0);
}

TEST(PlacementTest, RemoveTooManyFails) {
  Cluster c = TinyCluster();
  Placement p(c);
  p.Add(0, 0, 1);
  EXPECT_FALSE(p.Remove(0, 0, 2).ok());
  EXPECT_FALSE(p.Remove(1, 0, 1).ok());
}

TEST(PlacementTest, CanPlaceChecksResources) {
  Cluster c = TinyCluster();
  Placement p(c);
  // m0 has 8 cpu; service b needs 2 cpu -> at most 4 of b.
  EXPECT_TRUE(p.CanPlace(0, 1, 4));
  EXPECT_FALSE(p.CanPlace(0, 1, 5));
}

TEST(PlacementTest, CanPlaceChecksAntiAffinity) {
  Cluster c = TinyCluster();
  Placement p(c);
  EXPECT_TRUE(p.CanPlace(0, 0, 2));
  EXPECT_FALSE(p.CanPlace(0, 0, 3));  // rule caps at 2 per machine
  p.Add(0, 0, 2);
  EXPECT_FALSE(p.CanPlace(0, 0, 1));
}

TEST(PlacementTest, CanPlaceChecksPlatform) {
  Cluster c = TinyCluster();
  Placement p(c);
  EXPECT_FALSE(p.CanPlace(2, 0));  // service 0 is platform 0, m2 platform 1
  EXPECT_TRUE(p.CanPlace(2, 2));
}

TEST(PlacementTest, CheckFeasibleFullAudit) {
  Cluster c = TinyCluster();
  Placement p(c);
  // Deploy everything feasibly: a: 2+2, b: 1+1, c: 1.
  p.Add(0, 0, 2);
  p.Add(1, 0, 2);
  p.Add(0, 1, 1);
  p.Add(1, 1, 1);
  p.Add(2, 2, 1);
  EXPECT_TRUE(p.CheckFeasible(true).ok());
}

TEST(PlacementTest, CheckFeasibleCatchesSlaShortfall) {
  Cluster c = TinyCluster();
  Placement p(c);
  p.Add(0, 0, 2);
  EXPECT_FALSE(p.CheckFeasible(true).ok());
  EXPECT_TRUE(p.CheckFeasible(false).ok());
}

TEST(PlacementTest, CheckFeasibleCatchesOverCapacity) {
  Cluster c = TinyCluster();
  Placement p(c);
  p.Add(2, 2, 1);
  p.Add(2, 2, 4);  // Add() does not check; audit must catch it
  EXPECT_FALSE(p.CheckFeasible(false).ok());
}

// CanPlace and CheckFeasible share kCapacityTolerance: the audit accepts
// exactly what admission accepts, on both sides of the boundary.
TEST(PlacementTest, AdmissionAndAuditShareTheCapacityTolerance) {
  // One resource, capacity 1.0; two containers of the service fill it to
  // 1.0 + 2*excess.
  auto make = [](double excess) {
    std::vector<Service> services = {{"s", 2, {0.5 + excess}, 0}};
    std::vector<Machine> machines = {{"m", 0, {1.0}, 0}};
    return Cluster({"cpu"}, std::move(services), std::move(machines),
                   AffinityGraph(1), {});
  };

  // Overshoot well inside the tolerance: admitted, and the audit agrees.
  const Cluster fits = make(kCapacityTolerance / 20.0);
  Placement p_fits(fits);
  ASSERT_TRUE(p_fits.CanPlace(0, 0));
  p_fits.Add(0, 0);
  EXPECT_TRUE(p_fits.CanPlace(0, 0));
  p_fits.Add(0, 0);
  EXPECT_TRUE(p_fits.CheckFeasible(false).ok());

  // Overshoot past the tolerance: refused — and after forcing the second
  // container in anyway (Add does not check), the audit catches exactly
  // what admission refused. With split tolerances one of these two
  // expectations would fail.
  const Cluster overflows = make(kCapacityTolerance);
  Placement p_over(overflows);
  ASSERT_TRUE(p_over.CanPlace(0, 0));
  p_over.Add(0, 0);
  EXPECT_FALSE(p_over.CanPlace(0, 0));
  p_over.Add(0, 0);
  EXPECT_FALSE(p_over.CheckFeasible(false).ok());
}

TEST(PlacementTest, RuleCountAggregatesAcrossRuleMembers) {
  std::vector<Service> services = {{"a", 2, {1.0}, 0}, {"b", 2, {1.0}, 0}};
  std::vector<Machine> machines = {{"m", 0, {10.0}, 0}};
  Cluster c({"cpu"}, services, machines, AffinityGraph(2), {{{0, 1}, 3}});
  Placement p(c);
  p.Add(0, 0, 2);
  p.Add(0, 1, 1);
  EXPECT_EQ(p.RuleCount(0, 0), 3);
  EXPECT_FALSE(p.CanPlace(0, 1));
}

TEST(PlacementTest, DiffCountCountsMoves) {
  Cluster c = TinyCluster();
  Placement p(c), q(c);
  p.Add(0, 0, 2);
  q.Add(1, 0, 2);
  EXPECT_EQ(p.DiffCount(q), 2);
  EXPECT_EQ(q.DiffCount(p), 2);
  EXPECT_EQ(p.DiffCount(p), 0);
}

// ------------------------------------------------------------- FirstFit ---

TEST(FirstFitTest, ProducesFullyFeasiblePlacement) {
  Cluster c = TinyCluster();
  Rng rng(1);
  StatusOr<Placement> p = FirstFitPlace(c, rng);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->CheckFeasible(true).ok());
}

TEST(FirstFitTest, FailsWhenCapacityIsInsufficient) {
  std::vector<Service> services = {{"a", 10, {4.0}, 0}};
  std::vector<Machine> machines = {{"m", 0, {8.0}, 0}};
  Cluster c({"cpu"}, services, machines, AffinityGraph(1), {});
  Rng rng(2);
  EXPECT_FALSE(FirstFitPlace(c, rng).ok());
}

TEST(FirstFitTest, PackingModePacksTighter) {
  // Without anti-affinity: packing must always succeed when spreading does.
  ClusterSpec spec = M3Spec(8.0);
  spec.anti_affinity_probability = 0.0;
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  ASSERT_TRUE(snapshot.ok());
  Rng r1(4), r2(4);
  StatusOr<Placement> spread = FirstFitPlace(
      *snapshot->cluster, r1, FirstFitScore::kLeastAllocated, false);
  StatusOr<Placement> packed = FirstFitPlace(
      *snapshot->cluster, r2, FirstFitScore::kMostAllocated, false);
  ASSERT_TRUE(spread.ok());
  ASSERT_TRUE(packed.ok());
  // Packing should leave at least as many machines completely empty.
  auto empty_machines = [&](const Placement& p) {
    int count = 0;
    for (int m = 0; m < snapshot->cluster->num_machines(); ++m) {
      count += p.ContainersOn(m) == 0;
    }
    return count;
  };
  EXPECT_GE(empty_machines(*packed), empty_machines(*spread));
}

// ------------------------------------------------------------ Generator ---

TEST(GeneratorTest, GeneratesValidSchedulableCluster) {
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M1Spec(32.0));
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(snapshot->cluster->Validate().ok());
  EXPECT_TRUE(snapshot->original_placement.CheckFeasible(true).ok());
}

TEST(GeneratorTest, IsDeterministicInSeed) {
  StatusOr<ClusterSnapshot> a = GenerateCluster(M1Spec(32.0));
  StatusOr<ClusterSnapshot> b = GenerateCluster(M1Spec(32.0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->cluster->num_services(), b->cluster->num_services());
  EXPECT_EQ(a->cluster->affinity().num_edges(),
            b->cluster->affinity().num_edges());
  EXPECT_EQ(a->original_placement.DiffCount(b->original_placement), 0);
}

TEST(GeneratorTest, AffinityIsNormalizedToOne) {
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M2Spec(64.0));
  ASSERT_TRUE(snapshot.ok());
  EXPECT_NEAR(snapshot->cluster->affinity().TotalWeight(), 1.0, 1e-9);
}

TEST(GeneratorTest, AffinityIsSkewedPerAssumption41) {
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M1Spec(16.0));
  ASSERT_TRUE(snapshot.ok());
  const int top = snapshot->cluster->num_services() / 10;
  EXPECT_GT(TopKAffinityShare(snapshot->cluster->affinity(), top), 0.45);
}

TEST(GeneratorTest, TableTwoSpecsScaleProportionally) {
  std::vector<ClusterSpec> specs = TableTwoSpecs(16.0);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "M1");
  EXPECT_EQ(specs[1].name, "M2");
  // M2 is the biggest cluster in Table II.
  EXPECT_GT(specs[1].num_services, specs[0].num_services);
  EXPECT_GT(specs[1].num_machines, specs[3].num_machines / 2);
  // M3 is the small cluster.
  EXPECT_LT(specs[2].num_services, specs[0].num_services);
}

TEST(GeneratorTest, ScaleStatsMatchCluster) {
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M3Spec(8.0));
  ASSERT_TRUE(snapshot.ok());
  ClusterScaleStats stats = ComputeScaleStats(*snapshot);
  EXPECT_EQ(stats.name, "M3");
  EXPECT_EQ(stats.num_services, snapshot->cluster->num_services());
  EXPECT_EQ(stats.num_containers, snapshot->cluster->num_containers());
  EXPECT_EQ(stats.num_machines, snapshot->cluster->num_machines());
}

TEST(GeneratorTest, MinorityPlatformGetsMachines) {
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M1Spec(16.0));
  ASSERT_TRUE(snapshot.ok());
  int minority_machines = 0;
  for (const Machine& m : snapshot->cluster->machines()) {
    minority_machines += m.platform == 1;
  }
  int minority_services = 0;
  for (const Service& s : snapshot->cluster->services()) {
    minority_services += s.platform == 1;
  }
  EXPECT_GT(minority_services, 0);
  EXPECT_GT(minority_machines, 0);
}

TEST(GeneratorTest, RejectsBadSpec) {
  ClusterSpec spec;
  spec.num_services = 0;
  EXPECT_FALSE(GenerateCluster(spec).ok());
}

TEST(GeneratorTest, UtilizationIsModerate) {
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M1Spec(16.0));
  ASSERT_TRUE(snapshot.ok());
  const double util = AverageUtilization(snapshot->original_placement);
  EXPECT_GT(util, 0.3);
  EXPECT_LT(util, 0.98);
}

}  // namespace
}  // namespace rasa
