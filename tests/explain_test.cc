// The explain report of an Optimize run: the quality certificate must be a
// genuine upper bound (achieved <= bound, across seeds and selector
// policies), the attribution waterfall must sum exactly to the final
// gained affinity, the flight-recorder records must mirror the subproblem
// reports in canonical order, and the placement-diff audit must name the
// right movers. Also covers the JSON and text renderings.

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "cluster/generator.h"
#include "common/json_writer.h"
#include "common/logging.h"
#include "core/explain.h"
#include "core/objective.h"
#include "core/rasa.h"
#include "gtest/gtest.h"

namespace rasa {
namespace {

ClusterSnapshot MakeCluster(uint64_t seed, double scale = 64.0) {
  ClusterSpec spec = M1Spec(scale);
  spec.seed = seed;
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  RASA_CHECK(snapshot.ok()) << snapshot.status().ToString();
  return std::move(snapshot).value();
}

RasaResult RunRasa(const ClusterSnapshot& snapshot, SelectorPolicy policy,
                   uint64_t seed, bool local_search = false) {
  RasaOptions options;
  options.timeout_seconds = 10.0;
  options.seed = seed;
  options.compute_migration = false;
  options.refine_with_local_search = local_search;
  RasaOptimizer optimizer(options, AlgorithmSelector(policy));
  StatusOr<RasaResult> result =
      optimizer.Optimize(*snapshot.cluster, snapshot.original_placement);
  RASA_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

void ExpectCertificateSound(const RasaResult& result) {
  const QualityCertificate& cert = result.report.certificate;
  constexpr double kEps = 1e-9;
  EXPECT_LE(cert.achieved_solver_phase, cert.bound_solver_phase + kEps);
  EXPECT_LE(cert.achieved_final, cert.bound_final + kEps);
  EXPECT_DOUBLE_EQ(cert.achieved_final, result.new_gained_affinity);
  EXPECT_GE(cert.Gap(), 0.0);
  EXPECT_GE(cert.Ratio(), 0.0);
  EXPECT_LE(cert.Ratio(), 1.0);
  // The bound decomposes exactly into its published terms.
  double sum_terms = 0.0;
  int tightened = 0;
  for (const CertificateTerm& term : cert.terms) {
    EXPECT_LE(term.bound, term.internal_affinity + kEps);
    EXPECT_GE(term.bound, 0.0);
    if (term.tightened) {
      ++tightened;
      // Tightening requires a non-trivial solver bound, and that bound
      // still covers what the subproblem realized.
      EXPECT_NE(term.source, "trivial");
      EXPECT_LE(term.realized, term.bound + kEps);
    }
    sum_terms += term.bound;
  }
  EXPECT_EQ(tightened, cert.tightened_terms);
  EXPECT_NEAR(cert.bound_solver_phase, cert.external_affinity + sum_terms,
              1e-9);
  EXPECT_NEAR(cert.bound_final,
              cert.bound_solver_phase + cert.local_search_credit, 1e-9);
}

TEST(ExplainTest, CertificateHoldsAcrossSeedsAndPolicies) {
  for (const uint64_t cluster_seed : {3u, 11u}) {
    const ClusterSnapshot snapshot = MakeCluster(cluster_seed);
    for (const SelectorPolicy policy :
         {SelectorPolicy::kHeuristic, SelectorPolicy::kAlwaysCg,
          SelectorPolicy::kAlwaysMip}) {
      for (const uint64_t seed : {1u, 42u}) {
        SCOPED_TRACE(::testing::Message()
                     << "cluster_seed=" << cluster_seed << " policy="
                     << static_cast<int>(policy) << " seed=" << seed);
        const RasaResult result = RunRasa(snapshot, policy, seed);
        ASSERT_TRUE(result.report.populated);
        ExpectCertificateSound(result);
      }
    }
  }
}

TEST(ExplainTest, WaterfallSumsToFinalAffinity) {
  const ClusterSnapshot snapshot = MakeCluster(7);
  for (const bool local_search : {false, true}) {
    SCOPED_TRACE(::testing::Message() << "local_search=" << local_search);
    const RasaResult result =
        RunRasa(snapshot, SelectorPolicy::kHeuristic, 9, local_search);
    const AttributionWaterfall& w = result.report.waterfall;
    EXPECT_NEAR(w.Sum(), w.total, 1e-6);
    EXPECT_DOUBLE_EQ(w.total, result.new_gained_affinity);
    EXPECT_DOUBLE_EQ(w.original_gained_affinity,
                     result.original_gained_affinity);
    EXPECT_GE(w.base_retained, 0.0);
    if (!local_search) {
      EXPECT_DOUBLE_EQ(w.local_search_delta, 0.0);
    }
    EXPECT_EQ(result.report.local_search_ran, local_search);
  }
}

TEST(ExplainTest, RecordsMirrorSubproblemReportsInCanonicalOrder) {
  const ClusterSnapshot snapshot = MakeCluster(13);
  const RasaResult result = RunRasa(snapshot, SelectorPolicy::kHeuristic, 5);
  ASSERT_EQ(result.report.records.size(), result.subproblems.size());
  ASSERT_EQ(result.report.certificate.terms.size(),
            result.subproblems.size());
  double previous_affinity = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < result.report.records.size(); ++i) {
    const LedgerRecord& rec = result.report.records[i];
    const SubproblemReport& rep = result.subproblems[i];
    EXPECT_EQ(rec.position, static_cast<int>(i));
    EXPECT_EQ(rec.num_services, rep.num_services);
    EXPECT_EQ(rec.num_machines, rep.num_machines);
    EXPECT_DOUBLE_EQ(rec.internal_affinity, rep.internal_affinity);
    EXPECT_DOUBLE_EQ(rec.realized_affinity, rep.gained_affinity);
    EXPECT_EQ(rec.used_secondary, rep.used_secondary);
    EXPECT_EQ(rec.fell_to_greedy, rep.failed);
    EXPECT_EQ(rec.ladder_rung,
              rep.failed ? 2 : (rep.used_secondary ? 1 : 0));
    // Canonical solve order: non-increasing internal affinity.
    EXPECT_LE(rec.internal_affinity, previous_affinity);
    previous_affinity = rec.internal_affinity;
    // A healthy primary attempt carries its solver introspection.
    if (rec.primary.outcome == AttemptOutcome::kOk && !rec.used_secondary) {
      EXPECT_TRUE(rec.primary.has_cg || rec.primary.has_mip);
    }
    EXPECT_DOUBLE_EQ(rec.certificate_bound,
                     result.report.certificate.terms[i].bound);
  }
}

TEST(ExplainTest, PlacementDiffNamesTheMovers) {
  const ClusterSnapshot snapshot = MakeCluster(19, 96.0);
  const Cluster& cluster = *snapshot.cluster;
  const Placement& before = snapshot.original_placement;

  // No move, no diff.
  const PlacementDiffAudit same = BuildPlacementDiff(cluster, before, before);
  EXPECT_EQ(same.moved_containers, 0);
  EXPECT_TRUE(same.top_moved.empty());
  EXPECT_TRUE(same.top_localized.empty());

  // Relocate one container of the first service that has a feasible
  // destination; the audit must name exactly that service.
  Placement after = before;
  int moved_service = -1;
  for (int s = 0; s < cluster.num_services() && moved_service < 0; ++s) {
    const auto machines = after.MachinesOf(s);
    if (machines.empty()) continue;
    const int from = machines.begin()->first;
    for (int m = 0; m < cluster.num_machines(); ++m) {
      if (m != from && after.CanPlace(m, s)) {
        ASSERT_TRUE(after.Remove(from, s).ok());
        after.Add(m, s);
        moved_service = s;
        break;
      }
    }
  }
  ASSERT_GE(moved_service, 0) << "no movable container in the snapshot";

  const PlacementDiffAudit diff = BuildPlacementDiff(cluster, before, after);
  EXPECT_EQ(diff.moved_containers, before.DiffCount(after));
  ASSERT_EQ(diff.top_moved.size(), 1u);
  EXPECT_EQ(diff.top_moved[0].service, moved_service);
  EXPECT_EQ(diff.top_moved[0].name, cluster.service(moved_service).name);
  EXPECT_EQ(diff.top_moved[0].moved_containers, 1);
  // Any reported localization delta must be consistent with the objective.
  for (const auto& pair : diff.top_localized) {
    EXPECT_NEAR(pair.delta_affinity,
                pair.weight * (pair.ratio_after - pair.ratio_before), 1e-12);
    EXPECT_NEAR(pair.ratio_before,
                PairLocalizationRatio(cluster, before, pair.u, pair.v),
                1e-12);
    EXPECT_NEAR(pair.ratio_after,
                PairLocalizationRatio(cluster, after, pair.u, pair.v),
                1e-12);
  }
}

TEST(ExplainTest, DiffAuditTruncatesToTopK) {
  const ClusterSnapshot snapshot = MakeCluster(23);
  const RasaResult result = RunRasa(snapshot, SelectorPolicy::kHeuristic, 3);
  const PlacementDiffAudit& diff = result.report.diff;
  EXPECT_LE(diff.top_moved.size(), 8u);
  EXPECT_LE(diff.top_localized.size(), 8u);
  // Descending order in both lists.
  for (size_t i = 1; i < diff.top_moved.size(); ++i) {
    EXPECT_GE(diff.top_moved[i - 1].moved_containers,
              diff.top_moved[i].moved_containers);
  }
  for (size_t i = 1; i < diff.top_localized.size(); ++i) {
    EXPECT_GE(diff.top_localized[i - 1].delta_affinity,
              diff.top_localized[i].delta_affinity);
  }
  EXPECT_EQ(diff.moved_containers, result.moved_containers);
}

TEST(ExplainTest, JsonAndTextRenderings) {
  const ClusterSnapshot snapshot = MakeCluster(29);
  const RasaResult result = RunRasa(snapshot, SelectorPolicy::kHeuristic, 8);

  JsonWriter writer;
  AppendExplainJson(writer, result.report);
  const std::string json = writer.str();
  for (const char* key :
       {"\"certificate\"", "\"waterfall\"", "\"diff\"", "\"records\"",
        "\"bound_final\"", "\"achieved_final\"", "\"solver_gain\"",
        "\"seconds\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  // With timings excluded every wall-clock key disappears.
  JsonWriter bare;
  AppendExplainJson(bare, result.report, /*include_timings=*/false);
  EXPECT_EQ(bare.str().find("\"seconds\""), std::string::npos);
  EXPECT_EQ(bare.str().find("\"budget_seconds\""), std::string::npos);

  const std::string text = FormatExplainReport(result.report);
  for (const char* needle : {"certificate", "waterfall", "p50", "p95"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace rasa
