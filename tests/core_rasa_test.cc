#include "core/rasa.h"

#include "cluster/generator.h"
#include "core/objective.h"
#include "core/selector_trainer.h"
#include "gtest/gtest.h"

namespace rasa {
namespace {

class RasaFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterSpec spec = M1Spec(32.0);
    StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
    ASSERT_TRUE(snapshot.ok());
    snapshot_ = std::move(snapshot).value();
  }

  RasaResult Run(RasaOptions options,
                 SelectorPolicy policy = SelectorPolicy::kHeuristic) {
    RasaOptimizer optimizer(options, AlgorithmSelector(policy));
    StatusOr<RasaResult> result =
        optimizer.Optimize(*snapshot_.cluster, snapshot_.original_placement);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }

  ClusterSnapshot snapshot_;
};

TEST_F(RasaFixture, ImprovesGainedAffinitySubstantially) {
  RasaOptions options;
  options.timeout_seconds = 2.0;
  RasaResult result = Run(options);
  EXPECT_GT(result.new_gained_affinity,
            1.5 * result.original_gained_affinity);
  EXPECT_NEAR(result.original_gained_affinity,
              GainedAffinity(*snapshot_.cluster,
                             snapshot_.original_placement),
              1e-12);
}

TEST_F(RasaFixture, NewPlacementIsFeasibleAndComplete) {
  RasaOptions options;
  options.timeout_seconds = 2.0;
  RasaResult result = Run(options);
  EXPECT_TRUE(result.new_placement.CheckFeasible(false).ok());
  EXPECT_EQ(result.lost_containers, 0);
  for (int s = 0; s < snapshot_.cluster->num_services(); ++s) {
    EXPECT_EQ(result.new_placement.TotalOf(s),
              snapshot_.cluster->service(s).demand)
        << "service " << s;
  }
}

TEST_F(RasaFixture, MigrationPlanValidates) {
  RasaOptions options;
  options.timeout_seconds = 2.0;
  RasaResult result = Run(options);
  ASSERT_TRUE(result.should_execute);
  EXPECT_TRUE(ValidateMigrationPlan(*snapshot_.cluster,
                                    snapshot_.original_placement,
                                    result.new_placement, result.migration)
                  .ok());
}

TEST_F(RasaFixture, HonorsGlobalTimeout) {
  RasaOptions options;
  options.timeout_seconds = 0.4;
  options.compute_migration = false;
  Stopwatch timer;
  RasaResult result = Run(options);
  // Allow generous slack for the final combination/objective phases.
  EXPECT_LT(timer.ElapsedSeconds(), 3.0);
  EXPECT_GE(result.new_gained_affinity, result.original_gained_affinity * 0.9);
}

TEST_F(RasaFixture, AlreadyExpiredDeadlineFallsBackGracefully) {
  // Satellite: a zero (or negative) global budget must not produce a
  // negative per-subproblem share — the ladder drops every subproblem to
  // the greedy and still returns a complete, feasible placement.
  for (const double timeout : {0.0, -5.0}) {
    RasaOptions options;
    options.timeout_seconds = timeout;
    RasaResult result = Run(options);
    EXPECT_TRUE(result.new_placement.CheckFeasible(false).ok());
    EXPECT_EQ(result.lost_containers, 0);
    for (int s = 0; s < snapshot_.cluster->num_services(); ++s) {
      EXPECT_EQ(result.new_placement.TotalOf(s),
                snapshot_.cluster->service(s).demand);
    }
    ASSERT_FALSE(result.subproblems.empty());
    EXPECT_EQ(result.greedy_fallbacks,
              static_cast<int>(result.subproblems.size()));
    for (const SubproblemReport& sp : result.subproblems) {
      EXPECT_TRUE(sp.failed);
      EXPECT_FALSE(sp.used_secondary);
    }
  }
}

TEST_F(RasaFixture, HealthyRunReportsNoLadderActivity) {
  RasaOptions options;
  options.timeout_seconds = 2.0;
  RasaResult result = Run(options);
  EXPECT_EQ(result.solver_failures, 0);
  EXPECT_EQ(result.secondary_successes, 0);
  EXPECT_EQ(result.greedy_fallbacks, 0);
  EXPECT_EQ(result.breaker_skips, 0);
}

TEST_F(RasaFixture, DryRunWhenImprovementBelowThreshold) {
  RasaOptions options;
  options.timeout_seconds = 1.0;
  options.min_improvement = 1e9;  // nothing can clear this bar
  RasaResult result = Run(options);
  EXPECT_FALSE(result.should_execute);
  EXPECT_TRUE(result.migration.batches.empty());
}

TEST_F(RasaFixture, ReportsPerSubproblemRecords) {
  RasaOptions options;
  options.timeout_seconds = 2.0;
  RasaResult result = Run(options);
  ASSERT_FALSE(result.subproblems.empty());
  EXPECT_EQ(static_cast<int>(result.subproblems.size()),
            result.partition_stats.num_subproblems);
  for (const SubproblemReport& sp : result.subproblems) {
    EXPECT_GT(sp.num_services, 0);
    EXPECT_GE(sp.internal_affinity, 0.0);
    EXPECT_GE(sp.seconds, 0.0);
  }
}

TEST_F(RasaFixture, AllSelectorPoliciesRun) {
  for (SelectorPolicy policy :
       {SelectorPolicy::kAlwaysCg, SelectorPolicy::kAlwaysMip,
        SelectorPolicy::kHeuristic}) {
    RasaOptions options;
    options.timeout_seconds = 1.0;
    options.compute_migration = false;
    RasaResult result = Run(options, policy);
    EXPECT_GT(result.new_gained_affinity, 0.0)
        << SelectorPolicyToString(policy);
  }
}

TEST_F(RasaFixture, GcnSelectorRuns) {
  GcnClassifier gcn(kSelectorFeatureDim, 8, 2, 5);  // untrained is fine here
  RasaOptions options;
  options.timeout_seconds = 1.0;
  options.compute_migration = false;
  RasaOptimizer optimizer(options, AlgorithmSelector(std::move(gcn)));
  StatusOr<RasaResult> result =
      optimizer.Optimize(*snapshot_.cluster, snapshot_.original_placement);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->new_gained_affinity, 0.0);
}

TEST_F(RasaFixture, MovedContainersMatchesDiff) {
  RasaOptions options;
  options.timeout_seconds = 1.5;
  RasaResult result = Run(options);
  EXPECT_EQ(result.moved_containers,
            result.new_placement.DiffCount(snapshot_.original_placement));
}

TEST(SelectorTrainerTest, SmallDatasetTrainsBothModels) {
  SelectorTrainingOptions options;
  options.num_samples = 12;
  options.label_timeout_seconds = 0.1;
  options.cluster_scale = 48.0;
  options.epochs = 10;
  SelectorDataset dataset = GenerateSelectorDataset(options);
  ASSERT_GE(static_cast<int>(dataset.samples.size()), 4);
  EXPECT_EQ(dataset.cg_labels + dataset.mip_labels,
            static_cast<int>(dataset.samples.size()));
  TrainedSelectors trained = TrainSelectors(dataset, options);
  EXPECT_GT(trained.gcn_train_accuracy, 0.0);
  EXPECT_GT(trained.mlp_train_accuracy, 0.0);
  EXPECT_EQ(trained.dataset_size, static_cast<int>(dataset.samples.size()));
}

TEST(SelectorTrainerTest, GetOrTrainCachesWeights) {
  const std::string path = "/tmp/rasa_gcn_cache_test.model";
  std::remove(path.c_str());
  SelectorTrainingOptions options;
  options.num_samples = 6;
  options.label_timeout_seconds = 0.05;
  options.cluster_scale = 48.0;
  options.epochs = 4;
  StatusOr<GcnClassifier> first = GetOrTrainGcn(path, options);
  ASSERT_TRUE(first.ok());
  // Second call must hit the cache (fast) and produce identical weights.
  StatusOr<GcnClassifier> second = GetOrTrainGcn(path, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->Serialize(), second->Serialize());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rasa
