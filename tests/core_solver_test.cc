#include <algorithm>

#include "cluster/generator.h"
#include "core/algorithm_pool.h"
#include "core/cg.h"
#include "core/greedy.h"
#include "core/mip_algorithm.h"
#include "core/partitioning.h"
#include "core/selector.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace rasa {
namespace {

using ::rasa::testing::ClusterBuilder;

// Pair cluster where full collocation is feasible and optimal.
struct PairCase {
  std::shared_ptr<Cluster> cluster;
  Subproblem sp;
  Placement base;

  PairCase() {
    cluster = ClusterBuilder()
                  .AddService(2, {1.0})
                  .AddService(2, {1.0})
                  .AddMachine({4.0})
                  .AddMachine({4.0})
                  .AddAffinity(0, 1, 1.0)
                  .Build();
    sp.services = {0, 1};
    sp.machines = {0, 1};
    PopulateSubproblemEdges(*cluster, sp);
    base = Placement(*cluster);
  }
};

// Applies a subproblem solution to a copy of base and audits feasibility.
Placement ApplySolution(const Cluster& cluster, const Placement& base,
                        const SubproblemSolution& solution) {
  Placement p = base;
  for (const SubproblemSolution::Assignment& a : solution.assignments) {
    EXPECT_TRUE(p.CanPlace(a.machine, a.service, a.count))
        << "svc " << a.service << " x" << a.count << " on " << a.machine;
    p.Add(a.machine, a.service, a.count);
  }
  EXPECT_TRUE(p.CheckFeasible(false).ok());
  return p;
}

// ------------------------------------------------------------- Greedy -----

TEST(GreedyTest, CollocatesThePair) {
  PairCase c;
  Placement working = c.base;
  SubproblemSolution solution = GreedyAffinityPlace(*c.cluster, c.sp, working);
  EXPECT_EQ(solution.unplaced_containers, 0);
  EXPECT_NEAR(solution.gained_affinity, 1.0, 1e-9);
}

TEST(GreedyTest, MarginalGainMatchesDefinition) {
  PairCase c;
  Placement working = c.base;
  working.Add(0, 1, 1);  // one container of service 1 on machine 0
  // Adding one container of service 0 (d=2) to machine 0:
  // min(1/2, 1/2) - min(0, 1/2) = 0.5.
  EXPECT_NEAR(MarginalGain(*c.cluster, c.sp, working, 0, 0), 0.5, 1e-12);
  EXPECT_NEAR(MarginalGain(*c.cluster, c.sp, working, 0, 1), 0.0, 1e-12);
}

TEST(GreedyTest, RespectsResourceLimits) {
  auto cluster = ClusterBuilder()
                     .AddService(4, {2.0})
                     .AddMachine({4.0})  // fits only 2
                     .Build();
  Subproblem sp;
  sp.services = {0};
  sp.machines = {0};
  PopulateSubproblemEdges(*cluster, sp);
  Placement working(*cluster);
  SubproblemSolution solution = GreedyAffinityPlace(*cluster, sp, working);
  EXPECT_EQ(solution.unplaced_containers, 2);
  EXPECT_EQ(working.CountOn(0, 0), 2);
}

TEST(GreedyTest, RespectsAntiAffinity) {
  auto cluster = ClusterBuilder()
                     .AddService(4, {1.0})
                     .AddMachine({10.0})
                     .AddMachine({10.0})
                     .AddRule({0}, 2)
                     .Build();
  Subproblem sp;
  sp.services = {0};
  sp.machines = {0, 1};
  PopulateSubproblemEdges(*cluster, sp);
  Placement working(*cluster);
  SubproblemSolution solution = GreedyAffinityPlace(*cluster, sp, working);
  EXPECT_EQ(solution.unplaced_containers, 0);
  EXPECT_LE(working.CountOn(0, 0), 2);
  EXPECT_LE(working.CountOn(1, 0), 2);
}

// ---------------------------------------------------------------- MIP -----

TEST(MipAlgorithmTest, SolvesPairCaseOptimally) {
  PairCase c;
  StatusOr<SubproblemSolution> solution =
      SolveSubproblemMip(*c.cluster, c.sp, c.base);
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->gained_affinity, 1.0, 1e-6);
  EXPECT_EQ(solution->unplaced_containers, 0);
  ApplySolution(*c.cluster, c.base, *solution);
}

TEST(MipAlgorithmTest, BeatsNaiveSplitOnAsymmetricCase) {
  // Three services, heavy edge (0,1), light edge (1,2); machine space
  // forces a choice. MIP should favor the heavy edge.
  auto cluster = ClusterBuilder()
                     .AddService(1, {1.0})
                     .AddService(1, {1.0})
                     .AddService(1, {1.0})
                     .AddMachine({2.0})
                     .AddMachine({2.0})
                     .AddAffinity(0, 1, 0.9)
                     .AddAffinity(1, 2, 0.1)
                     .Build();
  Subproblem sp;
  sp.services = {0, 1, 2};
  sp.machines = {0, 1};
  PopulateSubproblemEdges(*cluster, sp);
  Placement base(*cluster);
  StatusOr<SubproblemSolution> solution =
      SolveSubproblemMip(*cluster, sp, base);
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->gained_affinity, 0.9, 1e-6);
}

TEST(MipAlgorithmTest, RespectsResidualsFromBase) {
  auto cluster = ClusterBuilder()
                     .AddService(2, {1.0})
                     .AddService(2, {2.0})  // resident service
                     .AddMachine({4.0})
                     .AddAffinity(0, 1, 1.0)
                     .Build();
  Placement base(*cluster);
  base.Add(0, 1, 2);  // residents use all but 0 cpu... 4-4=0 left? 2*2=4.
  Subproblem sp;
  sp.services = {0};
  sp.machines = {0};
  PopulateSubproblemEdges(*cluster, sp);
  StatusOr<SubproblemSolution> solution =
      SolveSubproblemMip(*cluster, sp, base);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->unplaced_containers, 2);  // no residual capacity
}

TEST(MipAlgorithmTest, ModelSizeCapReportsResourceExhausted) {
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M1Spec(32.0));
  ASSERT_TRUE(snapshot.ok());
  Subproblem sp;
  for (int s = 0; s < snapshot->cluster->num_services(); ++s) {
    sp.services.push_back(s);
  }
  for (int m = 0; m < snapshot->cluster->num_machines(); ++m) {
    sp.machines.push_back(m);
  }
  PopulateSubproblemEdges(*snapshot->cluster, sp);
  MipAlgorithmOptions options;
  options.max_model_rows = 500;
  Placement base(*snapshot->cluster);
  StatusOr<SubproblemSolution> solution =
      SolveSubproblemMip(*snapshot->cluster, sp, base, options);
  ASSERT_FALSE(solution.ok());
  EXPECT_EQ(solution.status().code(), StatusCode::kResourceExhausted);
}

TEST(MipAlgorithmTest, BuildProducesFaithfulModel) {
  PairCase c;
  StatusOr<SubproblemMip> mip =
      BuildSubproblemMip(*c.cluster, c.sp, c.base, 100000);
  ASSERT_TRUE(mip.ok());
  // 2 services x 2 machines = 4 integer x vars + 1 edge x 2 machines a vars.
  EXPECT_EQ(mip->model.num_variables(), 6);
  EXPECT_EQ(mip->model.num_integer_variables(), 4);
  // Rows: 2 SLA + 2 capacity (1 resource x 2 machines) + 4 linearization.
  EXPECT_EQ(mip->model.num_constraints(), 8);
}

TEST(MipAlgorithmTest, SchedulabilityZerosUpperBounds) {
  auto cluster = ClusterBuilder()
                     .AddService(1, {1.0}, /*platform=*/1)
                     .AddMachine({4.0}, 0, /*platform=*/0)
                     .Build();
  Subproblem sp;
  sp.services = {0};
  sp.machines = {0};
  PopulateSubproblemEdges(*cluster, sp);
  Placement base(*cluster);
  StatusOr<SubproblemSolution> solution =
      SolveSubproblemMip(*cluster, sp, base);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->unplaced_containers, 1);
  EXPECT_TRUE(solution->assignments.empty());
}

// ----------------------------------------------------------------- CG -----

TEST(CgTest, SolvesPairCase) {
  PairCase c;
  Placement original(*c.cluster);
  CgStats stats;
  StatusOr<SubproblemSolution> solution = SolveSubproblemCg(
      *c.cluster, c.sp, c.base, original, CgOptions(), &stats);
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->gained_affinity, 1.0, 1e-6);
  EXPECT_EQ(solution->unplaced_containers, 0);
  EXPECT_GE(stats.rounds, 1);
  EXPECT_GT(stats.patterns_generated, 0);
  ApplySolution(*c.cluster, c.base, *solution);
}

TEST(CgTest, MatchesMipOnSmallInstances) {
  // On several small random subproblems CG should land within 20% of the
  // exact MIP optimum.
  for (int seed = 0; seed < 5; ++seed) {
    ClusterSpec spec = M3Spec(16.0);
    spec.seed = 500 + seed;
    StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
    ASSERT_TRUE(snapshot.ok());
    PartitioningOptions popt;
    popt.max_subproblem_services = 10;
    PartitionResult partition = PartitionServices(
        *snapshot->cluster, snapshot->original_placement, popt);
    for (const Subproblem& sp : partition.subproblems) {
      if (sp.services.size() > 8 || sp.machines.empty()) continue;
      MipAlgorithmOptions mopt;
      mopt.deadline = Deadline::AfterSeconds(3.0);
      StatusOr<SubproblemSolution> mip = SolveSubproblemMip(
          *snapshot->cluster, sp, partition.base_placement, mopt);
      CgOptions copt;
      copt.deadline = Deadline::AfterSeconds(3.0);
      StatusOr<SubproblemSolution> cg = SolveSubproblemCg(
          *snapshot->cluster, sp, partition.base_placement,
          snapshot->original_placement, copt);
      ASSERT_TRUE(mip.ok());
      ASSERT_TRUE(cg.ok());
      EXPECT_GE(cg->gained_affinity, 0.8 * mip->gained_affinity - 1e-6)
          << "seed " << seed;
    }
  }
}

TEST(CgTest, EmptySubproblemReturnsAllUnplaced) {
  auto cluster = ClusterBuilder().AddService(3, {1.0}).AddMachine({9.0})
                     .Build();
  Subproblem sp;
  sp.services = {0};
  sp.machines = {};  // no machines assigned
  PopulateSubproblemEdges(*cluster, sp);
  Placement base(*cluster);
  Placement original(*cluster);
  StatusOr<SubproblemSolution> solution =
      SolveSubproblemCg(*cluster, sp, base, original);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->unplaced_containers, 3);
}

TEST(CgTest, HonorsDeadline) {
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M1Spec(32.0));
  ASSERT_TRUE(snapshot.ok());
  PartitionResult partition = PartitionServices(
      *snapshot->cluster, snapshot->original_placement, {});
  ASSERT_FALSE(partition.subproblems.empty());
  const Subproblem& sp = partition.subproblems.front();
  CgOptions options;
  options.deadline = Deadline::AfterSeconds(0.0);
  CgStats stats;
  StatusOr<SubproblemSolution> solution = SolveSubproblemCg(
      *snapshot->cluster, sp, partition.base_placement,
      snapshot->original_placement, options, &stats);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(stats.hit_deadline);
}

// ------------------------------------------------------------ Selector ----

TEST(SelectorTest, FixedPoliciesReturnTheirAlgorithm) {
  PairCase c;
  EXPECT_EQ(AlgorithmSelector(SelectorPolicy::kAlwaysCg)
                .Select(*c.cluster, c.sp),
            PoolAlgorithm::kCg);
  EXPECT_EQ(AlgorithmSelector(SelectorPolicy::kAlwaysMip)
                .Select(*c.cluster, c.sp),
            PoolAlgorithm::kMip);
}

TEST(SelectorTest, HeuristicFollowsPaperRule) {
  // avg containers/service = 10; one spec with 2 machines -> CG.
  auto big = ClusterBuilder()
                 .AddService(10, {1.0})
                 .AddMachine({100.0})
                 .AddMachine({100.0})
                 .Build();
  Subproblem sp1;
  sp1.services = {0};
  sp1.machines = {0, 1};
  EXPECT_EQ(HeuristicSelect(*big, sp1), PoolAlgorithm::kCg);
  // avg containers/service = 1; 2 machines of one spec -> MIP.
  auto small = ClusterBuilder()
                   .AddService(1, {1.0})
                   .AddMachine({10.0})
                   .AddMachine({10.0})
                   .Build();
  Subproblem sp2;
  sp2.services = {0};
  sp2.machines = {0, 1};
  EXPECT_EQ(HeuristicSelect(*small, sp2), PoolAlgorithm::kMip);
}

TEST(SelectorTest, FeatureGraphHasPaperFeatures) {
  PairCase c;
  FeatureGraph fg = BuildSubproblemFeatureGraph(*c.cluster, c.sp);
  EXPECT_EQ(fg.num_vertices(), 2);
  EXPECT_EQ(fg.feature_dim(), kSelectorFeatureDim);
  // Feature 0 is the normalized resource request, feature 1 the demand.
  EXPECT_NEAR(fg.features(0, 0), 1.0 / 4.0, 1e-12);
  EXPECT_NEAR(fg.features(0, 1), 2.0 / 20.0, 1e-12);
}

TEST(SelectorTest, ModelSelectorsProduceValidChoices) {
  PairCase c;
  GcnClassifier gcn(kSelectorFeatureDim, 8, 2, 3);
  AlgorithmSelector gcn_selector(std::move(gcn));
  PoolAlgorithm a = gcn_selector.Select(*c.cluster, c.sp);
  EXPECT_TRUE(a == PoolAlgorithm::kCg || a == PoolAlgorithm::kMip);
  MlpClassifier mlp(kSelectorFeatureDim, 8, 2, 3);
  AlgorithmSelector mlp_selector(std::move(mlp));
  PoolAlgorithm b = mlp_selector.Select(*c.cluster, c.sp);
  EXPECT_TRUE(b == PoolAlgorithm::kCg || b == PoolAlgorithm::kMip);
}


TEST(MipGroupedTest, SolvesPairCaseOptimally) {
  PairCase c;
  StatusOr<SubproblemSolution> solution =
      SolveSubproblemMipGrouped(*c.cluster, c.sp, c.base);
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->gained_affinity, 1.0, 1e-6);
  EXPECT_EQ(solution->unplaced_containers, 0);
  ApplySolution(*c.cluster, c.base, *solution);
}

TEST(MipGroupedTest, GroupsShrinkTheModel) {
  // 8 identical machines (one spec) vs per-machine: the grouped model must
  // fit under a row cap the per-machine one exceeds.
  ClusterBuilder builder;
  for (int s = 0; s < 12; ++s) builder.AddService(2, {1.0});
  for (int m = 0; m < 8; ++m) builder.AddMachine({6.0}, /*spec=*/0);
  for (int s = 0; s + 1 < 12; ++s) builder.AddAffinity(s, s + 1, 1.0);
  auto cluster = builder.Build();
  Subproblem sp;
  for (int s = 0; s < 12; ++s) sp.services.push_back(s);
  for (int m = 0; m < 8; ++m) sp.machines.push_back(m);
  PopulateSubproblemEdges(*cluster, sp);
  Placement base(*cluster);
  MipAlgorithmOptions options;
  options.max_model_rows = 60;  // grouped: 12 + 2 + 2*11 = 36 rows, fits
  options.deadline = Deadline::AfterSeconds(3.0);
  StatusOr<SubproblemSolution> grouped =
      SolveSubproblemMipGrouped(*cluster, sp, base, options);
  ASSERT_TRUE(grouped.ok());
  StatusOr<SubproblemSolution> per_machine =
      SolveSubproblemMip(*cluster, sp, base, options);
  EXPECT_FALSE(per_machine.ok());  // 12 + 16 + 2*11*8 = 204 rows, too big
  EXPECT_EQ(per_machine.status().code(), StatusCode::kResourceExhausted);
}

TEST(MipGroupedTest, DisaggregationKeepsFeasibility) {
  ClusterSpec spec = M3Spec(32.0);
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  ASSERT_TRUE(snapshot.ok());
  PartitionResult partition = PartitionServices(
      *snapshot->cluster, snapshot->original_placement, {});
  for (const Subproblem& sp : partition.subproblems) {
    if (sp.machines.empty()) continue;
    MipAlgorithmOptions options;
    options.deadline = Deadline::AfterSeconds(1.0);
    StatusOr<SubproblemSolution> solution = SolveSubproblemMipGrouped(
        *snapshot->cluster, sp, partition.base_placement, options);
    if (!solution.ok()) continue;  // row cap: acceptable
    ApplySolution(*snapshot->cluster, partition.base_placement, *solution);
  }
}

TEST(CgOptionsTest, AblationKnobsStillProduceFeasibleSolutions) {
  PairCase c;
  Placement original(*c.cluster);
  for (int variant = 0; variant < 3; ++variant) {
    CgOptions options;
    if (variant == 0) options.pair_pricing = false;
    if (variant == 1) options.max_patterns_per_machine = 0;
    if (variant == 2) options.greedy_completion = false;
    StatusOr<SubproblemSolution> solution =
        SolveSubproblemCg(*c.cluster, c.sp, c.base, original, options);
    ASSERT_TRUE(solution.ok()) << "variant " << variant;
    ApplySolution(*c.cluster, c.base, *solution);
    EXPECT_GE(solution->gained_affinity, 0.0);
  }
}

TEST(CgOptionsTest, FullCgAtLeastMatchesAblationsOnPairCase) {
  PairCase c;
  Placement original(*c.cluster);
  StatusOr<SubproblemSolution> full =
      SolveSubproblemCg(*c.cluster, c.sp, c.base, original, CgOptions());
  ASSERT_TRUE(full.ok());
  CgOptions no_pairs;
  no_pairs.pair_pricing = false;
  StatusOr<SubproblemSolution> ablated =
      SolveSubproblemCg(*c.cluster, c.sp, c.base, original, no_pairs);
  ASSERT_TRUE(ablated.ok());
  EXPECT_GE(full->gained_affinity, ablated->gained_affinity - 1e-9);
}

TEST(PoolTest, RunPoolAlgorithmDispatches) {
  PairCase c;
  Placement original(*c.cluster);
  for (PoolAlgorithm algo : {PoolAlgorithm::kCg, PoolAlgorithm::kMip}) {
    StatusOr<SubproblemSolution> solution = RunPoolAlgorithm(
        algo, *c.cluster, c.sp, c.base, original, Deadline::AfterSeconds(2));
    ASSERT_TRUE(solution.ok()) << PoolAlgorithmToString(algo);
    EXPECT_NEAR(solution->gained_affinity, 1.0, 1e-6);
  }
}

}  // namespace
}  // namespace rasa
