// Unit suite for the continuous-telemetry layer (src/common/telemetry):
// ring-buffer time series, multi-window SLO burn rates, the EWMA + z-score
// anomaly detector, the per-cycle pipeline + JSONL journal schema, the
// OpenMetrics and Chrome trace-event exporters, and the strict JSON reader
// that backs `rasa_cli tail` and the schema tests below.

#include <cmath>
#include <string>
#include <vector>

#include "common/durable_io.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/telemetry.h"
#include "gtest/gtest.h"

namespace rasa {
namespace {

// --- TimeSeries ------------------------------------------------------------

TEST(TimeSeriesTest, EmptySeriesIsNaN) {
  TimeSeries series(4);
  EXPECT_EQ(series.size(), 0);
  EXPECT_TRUE(std::isnan(series.Latest()));
  EXPECT_TRUE(std::isnan(series.WindowMean(3)));
}

TEST(TimeSeriesTest, RingKeepsTheNewestCapacityPoints) {
  TimeSeries series(3);
  for (int i = 1; i <= 5; ++i) series.Append(i);
  EXPECT_EQ(series.size(), 3);
  EXPECT_EQ(series.capacity(), 3);
  EXPECT_EQ(series.total_appended(), 5);
  // Oldest-first: 3, 4, 5 (1 and 2 fell off the front).
  EXPECT_EQ(series.At(0), 3.0);
  EXPECT_EQ(series.At(1), 4.0);
  EXPECT_EQ(series.At(2), 5.0);
  EXPECT_EQ(series.Latest(), 5.0);
  EXPECT_EQ(series.Values(), (std::vector<double>{3.0, 4.0, 5.0}));
}

TEST(TimeSeriesTest, WindowMeanUsesTheNewestPoints) {
  TimeSeries series(8);
  for (double v : {1.0, 2.0, 3.0, 4.0}) series.Append(v);
  EXPECT_DOUBLE_EQ(series.WindowMean(2), 3.5);
  // Window larger than the retained data falls back to the full series.
  EXPECT_DOUBLE_EQ(series.WindowMean(100), 2.5);
}

TEST(TimeSeriesStoreTest, GetOrCreateAndSortedNames) {
  TimeSeriesStore store(16);
  store.Append("zeta", 1.0);
  store.Append("alpha", 2.0);
  store.Append("zeta", 3.0);
  EXPECT_EQ(store.Names(), (std::vector<std::string>{"alpha", "zeta"}));
  ASSERT_NE(store.Find("zeta"), nullptr);
  EXPECT_EQ(store.Find("zeta")->size(), 2);
  EXPECT_EQ(store.Find("missing"), nullptr);
}

// --- SLO burn rates --------------------------------------------------------

SloObjective TestObjective() {
  SloObjective o;
  o.name = "lat";
  o.series = "lat";
  o.comparison = SloComparison::kLessThan;
  o.threshold = 1.0;
  o.budget_fraction = 0.5;  // half the cycles may violate sustainably
  o.fast_window = 2;
  o.slow_window = 6;
  o.fast_burn_threshold = 1.5;
  o.slow_burn_threshold = 1.2;
  return o;
}

TEST(SloTrackerTest, HealthySeriesStaysOk) {
  TimeSeriesStore store(16);
  SloTracker tracker({TestObjective()});
  for (int i = 0; i < 6; ++i) {
    store.Append("lat", 0.5);
    const std::vector<SloStatus> statuses = tracker.Evaluate(store);
    ASSERT_EQ(statuses.size(), 1u);
    EXPECT_TRUE(statuses[0].has_value);
    EXPECT_FALSE(statuses[0].violated);
    EXPECT_EQ(statuses[0].alert, SloAlertState::kOk);
    EXPECT_EQ(statuses[0].fast_burn_rate, 0.0);
  }
}

TEST(SloTrackerTest, BurnLadderFastThenPage) {
  TimeSeriesStore store(16);
  SloTracker tracker({TestObjective()});
  // Six healthy cycles fill the slow window with zeros.
  for (int i = 0; i < 6; ++i) {
    store.Append("lat", 0.5);
    tracker.Evaluate(store);
  }
  // Two violating cycles: fast window burns at 1/0.5 = 2.0 (> 1.5) but the
  // slow window is still 2/6 / 0.5 = 0.67 (< 1.2) -> fast-burn only.
  store.Append("lat", 2.0);
  std::vector<SloStatus> statuses = tracker.Evaluate(store);
  EXPECT_TRUE(statuses[0].violated);
  store.Append("lat", 2.0);
  statuses = tracker.Evaluate(store);
  EXPECT_EQ(statuses[0].alert, SloAlertState::kFastBurn);
  EXPECT_DOUBLE_EQ(statuses[0].fast_burn_rate, 2.0);
  // Keep violating until the slow window crosses too: page (both hot).
  for (int i = 0; i < 4; ++i) {
    store.Append("lat", 2.0);
    statuses = tracker.Evaluate(store);
  }
  EXPECT_EQ(statuses[0].alert, SloAlertState::kPage);
  EXPECT_DOUBLE_EQ(statuses[0].slow_burn_rate, 2.0);
}

TEST(SloTrackerTest, RecoveryDrainsTheFastWindowFirst) {
  TimeSeriesStore store(16);
  SloTracker tracker({TestObjective()});
  std::vector<SloStatus> statuses;
  for (int i = 0; i < 6; ++i) {
    store.Append("lat", 2.0);
    statuses = tracker.Evaluate(store);
  }
  EXPECT_EQ(statuses[0].alert, SloAlertState::kPage);
  // Two healthy cycles empty the 2-cycle fast window; the slow window is
  // still 4/6 / 0.5 = 1.33 (> 1.2) -> slow-burn, the "budget already
  // spent" tail of an incident.
  for (int i = 0; i < 2; ++i) {
    store.Append("lat", 0.5);
    statuses = tracker.Evaluate(store);
  }
  EXPECT_EQ(statuses[0].alert, SloAlertState::kSlowBurn);
  EXPECT_EQ(statuses[0].fast_burn_rate, 0.0);
}

TEST(SloTrackerTest, MissingSeriesNeverCountsAsViolation) {
  TimeSeriesStore store(16);
  SloTracker tracker({TestObjective()});
  const std::vector<SloStatus> statuses = tracker.Evaluate(store);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_FALSE(statuses[0].has_value);
  EXPECT_TRUE(std::isnan(statuses[0].value));
  EXPECT_FALSE(statuses[0].violated);
  EXPECT_EQ(statuses[0].alert, SloAlertState::kOk);
}

TEST(SloTrackerTest, GreaterThanComparison) {
  SloObjective o = TestObjective();
  o.comparison = SloComparison::kGreaterThan;  // e.g. "affinity must stay up"
  TimeSeriesStore store(16);
  SloTracker tracker({o});
  store.Append("lat", 0.5);  // below the 1.0 floor: violated
  std::vector<SloStatus> statuses = tracker.Evaluate(store);
  EXPECT_TRUE(statuses[0].violated);
  store.Append("lat", 2.0);
  statuses = tracker.Evaluate(store);
  EXPECT_FALSE(statuses[0].violated);
}

// --- Anomaly detection -----------------------------------------------------

TEST(AnomalyDetectorTest, WarmupNeverFlags) {
  AnomalyDetectorOptions options;
  options.warmup = 5;
  EwmaAnomalyDetector detector(options);
  // Wild swings inside the warmup window stay unflagged: the baseline is
  // still forming.
  for (double v : {1.0, 100.0, -50.0, 1.0, 80.0}) {
    EXPECT_FALSE(detector.Update(v).anomalous) << v;
  }
}

TEST(AnomalyDetectorTest, SpikeAfterStableBaselineFlags) {
  EwmaAnomalyDetector detector;
  for (int i = 0; i < 20; ++i) {
    const AnomalyStatus status = detector.Update(10.0 + 0.01 * (i % 3));
    EXPECT_FALSE(status.anomalous) << "point " << i;
  }
  const AnomalyStatus spike = detector.Update(25.0);
  EXPECT_TRUE(spike.anomalous);
  EXPECT_GT(spike.zscore, 3.5);
  EXPECT_NEAR(spike.ewma, 10.0, 0.1);  // verdict uses the pre-spike mean
}

TEST(AnomalyDetectorTest, ClampedFoldInKeepsDetectingRepeatSpikes) {
  EwmaAnomalyDetector detector;
  for (int i = 0; i < 20; ++i) detector.Update(10.0);
  EXPECT_TRUE(detector.Update(25.0).anomalous);
  // A second identical spike right after must still flag: the first one
  // was folded in with its deviation clamped, not at full magnitude.
  EXPECT_TRUE(detector.Update(25.0).anomalous);
}

TEST(AnomalyDetectorTest, ConstantSeriesToleratesTinyWiggle) {
  EwmaAnomalyDetector detector;
  for (int i = 0; i < 20; ++i) detector.Update(1.0);
  // Without the min_std floor the variance would be exactly 0 and this
  // 1-ulp wiggle would divide by zero / flag.
  const AnomalyStatus status =
      detector.Update(1.0 + 1e-15);
  EXPECT_FALSE(status.anomalous);
}

// --- Pipeline + journal schema ---------------------------------------------

CycleSample MakeSample(int cycle) {
  CycleSample s;
  s.cycle = cycle;
  s.seconds = 2.0;
  s.affinity_before = 0.3;
  s.gained_affinity = 0.7;
  s.optimality_gap = 0.05;
  s.lp_pivots = 100.0;
  s.refactorizations = 4.0;
  s.latency_p50 = 0.2;
  s.latency_p95 = 0.9;
  s.latency_p99 = 1.0;
  s.error_rate = 0.004;
  s.executed = true;
  return s;
}

TEST(TelemetryPipelineTest, RecordCycleFeedsEverySeries) {
  TelemetryOptions options;
  options.enabled = true;
  TelemetryPipeline pipeline(options);
  const CycleTelemetry derived = pipeline.RecordCycle(MakeSample(0));
  EXPECT_TRUE(derived.populated);
  ASSERT_EQ(derived.slo.size(), DefaultSloObjectives().size());
  for (const char* name : kTelemetrySeriesNames) {
    const TimeSeries* series = pipeline.store().Find(name);
    ASSERT_NE(series, nullptr) << name;
    EXPECT_EQ(series->size(), 1) << name;
  }
}

TEST(TelemetryPipelineTest, DefaultObjectivesTrackPlacementQuality) {
  TelemetryOptions options;
  options.enabled = true;
  TelemetryPipeline pipeline(options);
  // A well-localized placement (p50 at ipc latency, low modeled error)
  // meets both stock objectives ...
  CycleTelemetry derived = pipeline.RecordCycle(MakeSample(0));
  for (const SloStatus& status : derived.slo) {
    EXPECT_FALSE(status.violated) << status.name;
  }
  // ... and a fully remote one violates both.
  CycleSample bad = MakeSample(1);
  bad.latency_p50 = 1.0;
  bad.error_rate = 0.010;
  derived = pipeline.RecordCycle(bad);
  for (const SloStatus& status : derived.slo) {
    EXPECT_TRUE(status.violated) << status.name;
  }
}

TEST(TelemetryPipelineTest, JournalLineRoundTripsThroughTheStrictReader) {
  TelemetryOptions options;
  options.enabled = true;
  TelemetryPipeline pipeline(options);
  const CycleSample sample = MakeSample(3);
  const CycleTelemetry derived = pipeline.RecordCycle(sample);
  const std::string line = TelemetryPipeline::JournalLine(sample, derived);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one record per line

  StatusOr<JsonValue> parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->kind, JsonValue::Kind::kObject);
  ASSERT_NE(parsed->Get("v"), nullptr);
  EXPECT_EQ(parsed->Get("v")->number, 1.0);  // schema version
  EXPECT_EQ(parsed->Get("cycle")->number, 3.0);
  EXPECT_EQ(parsed->Get("gained_affinity")->number, 0.7);
  EXPECT_TRUE(parsed->Get("executed")->boolean);
  const JsonValue* slo = parsed->Get("slo");
  ASSERT_NE(slo, nullptr);
  ASSERT_EQ(slo->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(slo->array.size(), DefaultSloObjectives().size());
  for (const JsonValue& status : slo->array) {
    EXPECT_NE(status.Get("name"), nullptr);
    EXPECT_NE(status.Get("alert"), nullptr);
    EXPECT_NE(status.Get("fast_burn"), nullptr);
    EXPECT_NE(status.Get("slow_burn"), nullptr);
  }
  for (const char* key : {"cost_anomaly", "gap_anomaly"}) {
    const JsonValue* anomaly = parsed->Get(key);
    ASSERT_NE(anomaly, nullptr) << key;
    EXPECT_NE(anomaly->Get("anomalous"), nullptr) << key;
    EXPECT_NE(anomaly->Get("zscore"), nullptr) << key;
  }
}

// --- OpenMetrics exposition ------------------------------------------------

TEST(OpenMetricsTest, NameSanitization) {
  EXPECT_EQ(OpenMetricsName("rasa.runs"), "rasa_runs");
  EXPECT_EQ(OpenMetricsName("solver.lp_pivots"), "solver_lp_pivots");
  EXPECT_EQ(OpenMetricsName("weird-name!"), "weird_name_");
  EXPECT_EQ(OpenMetricsName("9starts_with_digit"), "_9starts_with_digit");
}

TEST(OpenMetricsTest, ExpositionFormatRoundTrip) {
  Histogram histogram;
  histogram.Observe(0.5);
  histogram.Observe(2.0);
  histogram.Observe(2.0);
  MetricsSnapshot snapshot;
  snapshot.counters = {{"rasa.runs", 7}};
  snapshot.gauges = {{"rasa.certificate_gap", 0.125}};
  snapshot.histograms = {{"solve.seconds", histogram.Scrape()}};

  const std::string text = OpenMetricsText(snapshot);
  // The mandatory terminator.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
  // Counter: TYPE line + `_total` sample.
  EXPECT_NE(text.find("# TYPE rasa_runs counter"), std::string::npos);
  EXPECT_NE(text.find("rasa_runs_total 7"), std::string::npos);
  // Gauge: plain sample, round-trip precision.
  EXPECT_NE(text.find("# TYPE rasa_certificate_gap gauge"),
            std::string::npos);
  EXPECT_NE(text.find("rasa_certificate_gap 0.125"), std::string::npos);
  // Histogram: cumulative buckets ending at +Inf, then _sum and _count.
  EXPECT_NE(text.find("# TYPE solve_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("solve_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("solve_seconds_sum 4.5"), std::string::npos);
  EXPECT_NE(text.find("solve_seconds_count 3"), std::string::npos);

  // Round-trip: the cumulative bucket counts must be monotone and the
  // +Inf bucket must equal _count — the invariants a Prometheus scraper
  // checks on ingest.
  uint64_t previous = 0;
  size_t buckets_seen = 0;
  size_t pos = 0;
  while ((pos = text.find("solve_seconds_bucket{le=\"", pos)) !=
         std::string::npos) {
    const size_t value_at = text.find("} ", pos);
    ASSERT_NE(value_at, std::string::npos);
    const uint64_t cumulative =
        std::strtoull(text.c_str() + value_at + 2, nullptr, 10);
    EXPECT_GE(cumulative, previous);
    previous = cumulative;
    ++buckets_seen;
    pos = value_at;
  }
  EXPECT_GT(buckets_seen, 0u);
  EXPECT_EQ(previous, 3u);
}

// --- Chrome trace-event export ---------------------------------------------

TEST(ChromeTraceTest, SchemaHasTheRequiredKeys) {
  std::vector<TraceEvent> events;
  TraceEvent root;
  root.id = 0;
  root.parent = -1;
  root.tid = 0;
  root.name = "optimize";
  root.start_seconds = 1.0;
  root.duration_seconds = 0.5;
  TraceEvent child;
  child.id = 1;
  child.parent = 0;
  child.tid = 3;
  child.name = "partition";
  child.start_seconds = 1.1;
  child.duration_seconds = 0.2;
  TraceEvent open;  // never ended: must be skipped
  open.id = 2;
  open.name = "still_open";
  open.start_seconds = 1.2;
  open.duration_seconds = -1.0;
  events = {root, child, open};

  const std::string json = ChromeTraceJson(events);
  StatusOr<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* trace_events = parsed->Get("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_EQ(trace_events->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(trace_events->array.size(), 2u);  // the open span is dropped

  for (const JsonValue& event : trace_events->array) {
    // The complete-event schema chrome://tracing and Perfetto load.
    for (const char* key : {"ph", "ts", "dur", "pid", "tid", "name"}) {
      ASSERT_NE(event.Get(key), nullptr) << key;
    }
    EXPECT_EQ(event.Get("ph")->string, "X");
    EXPECT_EQ(event.Get("pid")->number, 1.0);
  }
  const JsonValue& first = trace_events->array[0];
  EXPECT_EQ(first.Get("name")->string, "optimize");
  EXPECT_EQ(first.Get("ts")->number, 1.0e6);   // microseconds
  EXPECT_EQ(first.Get("dur")->number, 0.5e6);
  const JsonValue& second = trace_events->array[1];
  EXPECT_EQ(second.Get("tid")->number, 3.0);
  ASSERT_NE(second.Get("args"), nullptr);
  EXPECT_EQ(second.Get("args")->Get("parent")->number, 0.0);
}

// --- JSONL sink (the journal's writer + the log mirror) ---------------------

TEST(JsonlWriterTest, AppendsWholeLinesAndSurvivesReopen) {
  const std::string path = ::testing::TempDir() + "/jsonl_writer_test.jsonl";
  std::remove(path.c_str());
  {
    JsonlWriter writer;
    ASSERT_TRUE(writer.Open(path));
    EXPECT_TRUE(writer.Append("{\"a\": 1}"));
  }
  {
    JsonlWriter writer;  // "ab": a reopen appends, never truncates
    ASSERT_TRUE(writer.Open(path));
    EXPECT_TRUE(writer.Append("{\"a\": 2}"));
  }
  StatusOr<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  EXPECT_EQ(*content, "{\"a\": 1}\n{\"a\": 2}\n");
  std::remove(path.c_str());
}

TEST(JsonlWriterTest, AppendWithoutOpenFails) {
  JsonlWriter writer;
  EXPECT_FALSE(writer.is_open());
  EXPECT_FALSE(writer.Append("{}"));
}

TEST(LogJsonlSinkTest, MirrorsRecordsThatPassTheSeverityFilter) {
  const std::string path = ::testing::TempDir() + "/log_sink_test.jsonl";
  std::remove(path.c_str());
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  SetLogJsonlPath(path);
  RASA_LOG(Warning) << "telemetry sink probe";
  RASA_LOG(Debug) << "filtered out";  // below the threshold: not mirrored
  SetLogJsonlPath("");                // detach before reading
  SetLogLevel(saved);

  StatusOr<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  StatusOr<JsonValue> record =
      ParseJson(content->substr(0, content->find('\n')));
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(record->Get("severity")->string, "warning");
  EXPECT_EQ(record->Get("message")->string, "telemetry sink probe");
  EXPECT_NE(record->Get("subsystem"), nullptr);
  EXPECT_GT(record->Get("ts")->number, 0.0);
  EXPECT_EQ(content->find("filtered out"), std::string::npos);
  std::remove(path.c_str());
}

// --- Strict JSON reader ----------------------------------------------------

TEST(ParseJsonTest, ParsesScalarsArraysAndObjects) {
  StatusOr<JsonValue> v = ParseJson(
      " {\"a\": [1, -2.5, 1e3], \"b\": {\"c\": true, \"d\": null}, "
      "\"e\": \"text\"} ");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const JsonValue* a = v->Get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].number, -2.5);
  EXPECT_EQ(a->array[2].number, 1000.0);
  EXPECT_TRUE(v->Get("b")->Get("c")->boolean);
  EXPECT_EQ(v->Get("b")->Get("d")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v->Get("e")->string, "text");
  EXPECT_EQ(v->Get("missing"), nullptr);
}

TEST(ParseJsonTest, DecodesEscapesIncludingUnicode) {
  StatusOr<JsonValue> v =
      ParseJson("\"a\\n\\t\\\"\\\\\\u0041\\u00e9\"");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->string, "a\n\t\"\\A\xc3\xa9");  // \u00e9 -> UTF-8 é
}

TEST(ParseJsonTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",                    // empty
      "{",                   // unterminated object
      "[1, 2",               // unterminated array
      "{\"a\" 1}",           // missing colon
      "{\"a\": 1,}",         // trailing comma
      "[1] trailing",        // trailing non-whitespace
      "\"unterminated",      // unterminated string
      "\"bad \\x escape\"",  // unknown escape
      "01",                  // leading zero
      "1.",                  // bare decimal point
      "+1",                  // leading plus
      "nul",                 // truncated keyword
      "NaN",                 // not a JSON number
  };
  for (const char* text : bad) {
    StatusOr<JsonValue> v = ParseJson(text);
    EXPECT_FALSE(v.ok()) << "accepted: " << text;
    if (!v.ok()) {
      // Every rejection carries a byte offset for debuggability.
      EXPECT_NE(v.status().ToString().find("byte"), std::string::npos)
          << v.status().ToString();
    }
  }
}

TEST(ParseJsonTest, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  StatusOr<JsonValue> v = ParseJson(deep);
  EXPECT_FALSE(v.ok());  // hostile input must not smash the stack
}

TEST(ParseJsonTest, ObjectKeepsInsertionOrderAndGetReturnsFirst) {
  StatusOr<JsonValue> v = ParseJson("{\"k\": 1, \"z\": 2, \"k\": 3}");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_EQ(v->object.size(), 3u);
  EXPECT_EQ(v->object[0].first, "k");
  EXPECT_EQ(v->object[1].first, "z");
  EXPECT_EQ(v->Get("k")->number, 1.0);
}

}  // namespace
}  // namespace rasa
