// Unit suite for the observability layer (src/common/metrics): counters,
// gauges, log-scale histograms, the sharded write path under a parallel
// burst, the registry, the tracer's span hierarchy, and the JSON export.
//
// The registry and tracer are process-wide singletons shared by every test
// in this binary, so each test uses its own metric names and restores the
// global enabled flags it flips.

#include <atomic>
#include <cmath>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "gtest/gtest.h"

namespace rasa {
namespace {

TEST(CounterTest, IncrementsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(1.5);
  gauge.Set(-2.5);
  EXPECT_EQ(gauge.Value(), -2.5);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0.0);
}

TEST(MetricsEnabledTest, DisabledMutationsAreNoOps) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  SetMetricsEnabled(false);
  counter.Increment(7);
  gauge.Set(3.0);
  histogram.Observe(1.0);
  SetMetricsEnabled(true);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(gauge.Value(), 0.0);
  EXPECT_EQ(histogram.Scrape().count, 0u);
}

TEST(HistogramTest, BucketMath) {
  // Underflow bucket: everything below kMinBound, plus NaN.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(0.5 * Histogram::kMinBound), 0);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0);
  // First octave starts exactly at kMinBound.
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kMinBound), 1);
  EXPECT_EQ(Histogram::BucketIndex(1.5 * Histogram::kMinBound), 1);
  EXPECT_EQ(Histogram::BucketIndex(2.0 * Histogram::kMinBound), 2);
  // Overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kMinBound *
                                   std::exp2(Histogram::kLogBuckets)),
            Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);

  // Bounds are monotone and bracket each bucket's members.
  for (int b = 1; b < Histogram::kNumBuckets - 1; ++b) {
    EXPECT_LT(Histogram::BucketUpperBound(b - 1),
              Histogram::BucketUpperBound(b));
    const double inside = 1.5 * Histogram::BucketUpperBound(b - 1);
    EXPECT_EQ(Histogram::BucketIndex(inside), b) << "bucket " << b;
  }
  EXPECT_TRUE(
      std::isinf(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1)));
}

TEST(HistogramTest, ObserveAggregatesCountSumMinMax) {
  Histogram histogram;
  for (double v : {1.0, 2.0, 3.0}) histogram.Observe(v);
  const Histogram::Snapshot snap = histogram.Scrape();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 6.0);
  EXPECT_EQ(snap.min, 1.0);
  EXPECT_EQ(snap.max, 3.0);
  uint64_t bucket_total = 0;
  for (uint64_t n : snap.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, snap.count);

  histogram.Reset();
  EXPECT_EQ(histogram.Scrape().count, 0u);
}

TEST(HistogramQuantileTest, EmptyIsNaNAndEndpointsAreExact) {
  Histogram histogram;
  EXPECT_TRUE(std::isnan(histogram.Scrape().Quantile(0.5)));

  for (double v : {1.0, 2.0, 3.0, 40.0}) histogram.Observe(v);
  const Histogram::Snapshot snap = histogram.Scrape();
  // p0 == min and p100 == max exactly (clamped, not interpolated), and
  // out-of-range q degrades to the endpoints.
  EXPECT_EQ(snap.Quantile(0.0), 1.0);
  EXPECT_EQ(snap.Quantile(1.0), 40.0);
  EXPECT_EQ(snap.Quantile(-0.5), 1.0);
  EXPECT_EQ(snap.Quantile(2.0), 40.0);
}

TEST(HistogramQuantileTest, SingleValueEveryQuantileIsThatValue) {
  Histogram histogram;
  histogram.Observe(5.0);
  const Histogram::Snapshot snap = histogram.Scrape();
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(snap.Quantile(q), 5.0) << "q=" << q;
  }
}

TEST(HistogramQuantileTest, BimodalDistributionSplitsAtTheRank) {
  // 50 observations at 1.0 and 50 at 1000.0: quantiles below the median
  // clamp onto the low mode; above it they land in the high mode's bucket
  // (within the log bucket's <= 2x relative error).
  Histogram histogram;
  for (int i = 0; i < 50; ++i) histogram.Observe(1.0);
  for (int i = 0; i < 50; ++i) histogram.Observe(1000.0);
  const Histogram::Snapshot snap = histogram.Scrape();
  EXPECT_EQ(snap.Quantile(0.25), 1.0);
  const double p75 = snap.Quantile(0.75);
  EXPECT_GE(p75, 500.0);
  EXPECT_LE(p75, 1000.0);
}

TEST(HistogramQuantileTest, MonotoneAndWithinLogBucketError) {
  Histogram histogram;
  for (int v = 1; v <= 100; ++v) histogram.Observe(static_cast<double>(v));
  const Histogram::Snapshot snap = histogram.Scrape();
  double previous = snap.Quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double value = snap.Quantile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    EXPECT_GE(value, snap.min);
    EXPECT_LE(value, snap.max);
    previous = value;
  }
  // Interior quantiles carry at most the bucket's 2x relative error.
  const double p50 = snap.Quantile(0.5);
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 101.0);
  const double p99 = snap.Quantile(0.99);
  EXPECT_GE(p99, 50.0);
  EXPECT_LE(p99, 100.0);  // clamped to the observed max
}

// The shard-on-write invariant: after a parallel burst from a pool, the
// scrape-side totals equal the number of observations — no lost updates,
// and the per-shard bucket counts sum to the aggregate count.
TEST(HistogramTest, ShardedWritesSumExactlyUnderParallelBurst) {
  constexpr int kTasks = 10'000;
  MetricRegistry& reg = MetricRegistry::Default();
  Counter& counter = reg.GetCounter("test.burst_counter");
  Histogram& histogram = reg.GetHistogram("test.burst_histogram");
  counter.Reset();
  histogram.Reset();

  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](int i) {
    counter.Increment();
    histogram.Observe(1.0 + static_cast<double>(i % 32));
  });

  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kTasks));
  const Histogram::Snapshot snap = histogram.Scrape();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kTasks));
  uint64_t bucket_total = 0;
  for (uint64_t n : snap.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_EQ(snap.min, 1.0);
  EXPECT_EQ(snap.max, 32.0);
}

TEST(MetricRegistryTest, ReturnsStableReferences) {
  MetricRegistry& reg = MetricRegistry::Default();
  Counter& a = reg.GetCounter("test.stable");
  Counter& b = reg.GetCounter("test.stable");
  EXPECT_EQ(&a, &b);
  a.Reset();
  a.Increment(3);
  EXPECT_EQ(b.Value(), 3u);
}

TEST(MetricRegistryTest, ScrapeIsSortedAndJsonSerializable) {
  MetricRegistry& reg = MetricRegistry::Default();
  reg.GetCounter("test.scrape_b").Reset();
  reg.GetCounter("test.scrape_a").Reset();
  reg.GetCounter("test.scrape_a").Increment(5);
  reg.GetGauge("test.scrape_gauge").Set(0.25);
  reg.GetHistogram("test.scrape_histogram").Reset();
  reg.GetHistogram("test.scrape_histogram").Observe(2.0);

  const MetricsSnapshot snap = reg.Scrape();
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"test.scrape_a\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.scrape_gauge\": 0.25"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"test.scrape_histogram\""), std::string::npos);
  // Two scrapes of identical state serialize identically.
  EXPECT_EQ(json, reg.Scrape().ToJson());
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Default();
  tracer.Reset();
  ASSERT_FALSE(tracer.enabled());
  {
    TraceSpan span("ignored");
    EXPECT_EQ(span.id(), -1);
  }
  EXPECT_TRUE(tracer.Events().empty());
}

TEST(TracerTest, NestedSpansParentImplicitly) {
  Tracer& tracer = Tracer::Default();
  tracer.Reset();
  tracer.Enable(true);
  {
    TraceSpan outer("outer");
    { TraceSpan inner("inner"); }
    { TraceSpan sibling("sibling"); }
  }
  tracer.Enable(false);

  const std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 3u);
  // id == index; "outer" began first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].parent, -1);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].parent, events[0].id);
  EXPECT_EQ(events[2].name, "sibling");
  EXPECT_EQ(events[2].parent, events[0].id);
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.duration_seconds, 0.0) << e.name;
  }

  const std::string tree = tracer.SummaryTree();
  EXPECT_NE(tree.find("outer"), std::string::npos);
  EXPECT_NE(tree.find("  inner"), std::string::npos);
  tracer.Reset();
}

// Cross-thread fan-out: children created on pool workers parent to the id
// captured before the fan-out, not to the workers' (empty) span stacks.
TEST(TracerTest, ExplicitParentSpansCrossThreads) {
  Tracer& tracer = Tracer::Default();
  tracer.Reset();
  tracer.Enable(true);
  int64_t parent_id = -1;
  {
    TraceSpan parent("fanout");
    parent_id = parent.id();
    ThreadPool pool(4);
    pool.ParallelFor(16, [&](int i) {
      TraceSpan child("task_" + std::to_string(i), parent_id);
    });
  }
  tracer.Enable(false);

  const std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 17u);
  int children = 0;
  for (const TraceEvent& e : events) {
    if (e.id == parent_id) continue;
    EXPECT_EQ(e.parent, parent_id) << e.name;
    ++children;
  }
  EXPECT_EQ(children, 16);
  tracer.Reset();
}

TEST(TracerTest, JsonExportSkipsOpenSpans) {
  Tracer& tracer = Tracer::Default();
  tracer.Reset();
  tracer.Enable(true);
  const int64_t open = tracer.Begin("still_open");
  { TraceSpan done("done"); }
  JsonWriter w;
  tracer.AppendJson(w);
  const std::string json = w.str();
  EXPECT_NE(json.find("\"done\""), std::string::npos) << json;
  EXPECT_EQ(json.find("still_open"), std::string::npos) << json;
  tracer.End(open);
  tracer.Enable(false);
  tracer.Reset();
}

// --- MetricsSnapshot::Diff -------------------------------------------------

TEST(SnapshotDiffTest, CountersSubtractAndHandleResets) {
  MetricsSnapshot prev;
  prev.counters = {{"a", 10}, {"gone", 5}, {"reset", 100}};
  MetricsSnapshot cur;
  cur.counters = {{"a", 17}, {"fresh", 3}, {"reset", 2}};
  const MetricsSnapshot delta = cur.Diff(prev);
  ASSERT_EQ(delta.counters.size(), 3u);
  EXPECT_EQ(delta.counters[0], (std::pair<std::string, uint64_t>("a", 7)));
  // Absent from prev: the whole current value is the delta.
  EXPECT_EQ(delta.counters[1],
            (std::pair<std::string, uint64_t>("fresh", 3)));
  // Shrank (registry Reset between scrapes): report the current value
  // rather than an underflowed subtraction.
  EXPECT_EQ(delta.counters[2],
            (std::pair<std::string, uint64_t>("reset", 2)));
  // Absent from cur ("gone") is dropped, not resurrected.
}

TEST(SnapshotDiffTest, GaugesKeepTheCurrentValue) {
  MetricsSnapshot prev;
  prev.gauges = {{"g", 10.0}};
  MetricsSnapshot cur;
  cur.gauges = {{"g", 2.5}};
  const MetricsSnapshot delta = cur.Diff(prev);
  ASSERT_EQ(delta.gauges.size(), 1u);
  // An instantaneous last-write-wins reading has no meaningful delta: the
  // per-window value IS the current value.
  EXPECT_EQ(delta.gauges[0].second, 2.5);
}

TEST(SnapshotDiffTest, HistogramsSubtractBucketwise) {
  Histogram histogram;
  histogram.Observe(1.0);
  histogram.Observe(1.0);
  MetricsSnapshot prev;
  prev.histograms = {{"h", histogram.Scrape()}};
  histogram.Observe(5.0);
  MetricsSnapshot cur;
  cur.histograms = {{"h", histogram.Scrape()}};

  const MetricsSnapshot delta = cur.Diff(prev);
  ASSERT_EQ(delta.histograms.size(), 1u);
  const Histogram::Snapshot& d = delta.histograms[0].second;
  EXPECT_EQ(d.count, 1u);
  EXPECT_NEAR(d.sum, 5.0, 1e-12);
  uint64_t bucket_total = 0;
  for (uint64_t n : d.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, 1u);
  // min/max are estimated from the delta buckets' edges: the only delta
  // observation is 5.0, so both must bracket it — and the min estimate
  // must be tighter than the cumulative min of 1.0.
  EXPECT_LE(d.min, 5.0);
  EXPECT_GE(d.max, 5.0);
  EXPECT_GT(d.min, 1.0);
}

TEST(SnapshotDiffTest, EmptyWindowYieldsZeroCounts) {
  Histogram histogram;
  histogram.Observe(2.0);
  MetricsSnapshot prev;
  prev.counters = {{"c", 4}};
  prev.histograms = {{"h", histogram.Scrape()}};
  const MetricsSnapshot delta = prev.Diff(prev);
  EXPECT_EQ(delta.counters[0].second, 0u);
  EXPECT_EQ(delta.histograms[0].second.count, 0u);
  EXPECT_EQ(delta.histograms[0].second.sum, 0.0);
}

}  // namespace
}  // namespace rasa
