#include <cmath>

#include "cluster/generator.h"
#include "core/objective.h"
#include "gtest/gtest.h"
#include "sim/workflow.h"

namespace rasa {
namespace {

ClusterSnapshot MakeSnapshot(uint64_t seed) {
  ClusterSpec spec = M3Spec(16.0);
  spec.seed = seed;
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  EXPECT_TRUE(snapshot.ok());
  return *std::move(snapshot);
}

WorkflowOptions BaseOptions() {
  WorkflowOptions options;
  options.cycles = 10;
  // Generous solver budget: the M3 subproblems finish well within it, so
  // the optimizer's output does not depend on machine load (a tight budget
  // makes the clean-vs-chaos affinity comparison below flaky).
  options.rasa.timeout_seconds = 2.0;
  options.seed = 2024;
  return options;
}

// ISSUE acceptance criterion: with command-failure probability 0.2 and one
// mid-migration machine cordon injected, a 10-cycle workflow completes all
// cycles with zero SLA-floor violations, and the final gained affinity is
// >= 90% of the fault-free run on the same seed.
TEST(WorkflowFaultTest, ChaosRunMatchesFaultFreeAffinity) {
  const ClusterSnapshot snapshot = MakeSnapshot(31);
  const AlgorithmSelector selector(SelectorPolicy::kHeuristic);

  StatusOr<WorkflowReport> clean =
      RunWorkflow(*snapshot.cluster, snapshot.original_placement, selector,
                  BaseOptions());
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->cycles.size(), 10u);
  const double clean_affinity =
      GainedAffinity(*snapshot.cluster, clean->final_placement);

  WorkflowOptions chaos_options = BaseOptions();
  chaos_options.inject_faults = true;
  chaos_options.faults.command_failure_probability = 0.2;
  chaos_options.faults.cordon_after_commands = 40;
  chaos_options.faults.cordon_duration_cycles = 1;
  chaos_options.faults.seed = 555;
  StatusOr<WorkflowReport> chaos =
      RunWorkflow(*snapshot.cluster, snapshot.original_placement, selector,
                  chaos_options);
  ASSERT_TRUE(chaos.ok());
  ASSERT_EQ(chaos->cycles.size(), 10u);

  // The chaos harness actually did something.
  EXPECT_GT(chaos->faults_injected, 0);
  EXPECT_EQ(chaos->cordons_fired, 1);
  EXPECT_GT(chaos->command_retries, 0);

  // Invariants: no post-batch audit may ever fail, and the cluster ends in
  // a resource-feasible state.
  EXPECT_EQ(chaos->sla_violations, 0);
  EXPECT_EQ(chaos->feasibility_violations, 0);
  EXPECT_TRUE(chaos->final_placement.CheckFeasible(false).ok());

  const double chaos_affinity =
      GainedAffinity(*snapshot.cluster, chaos->final_placement);
  EXPECT_GE(chaos_affinity, 0.9 * clean_affinity)
      << "chaos " << chaos_affinity << " vs clean " << clean_affinity;
}

// Purely transient faults: every executed cycle must still converge to its
// exact target placement (retries absorb the failures).
TEST(WorkflowFaultTest, TransientFaultsConvergeEveryCycle) {
  const ClusterSnapshot snapshot = MakeSnapshot(32);
  WorkflowOptions options = BaseOptions();
  options.cycles = 5;
  options.inject_faults = true;
  options.faults.command_failure_probability = 0.2;
  options.faults.seed = 808;
  StatusOr<WorkflowReport> report =
      RunWorkflow(*snapshot.cluster, snapshot.original_placement,
                  AlgorithmSelector(SelectorPolicy::kHeuristic), options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->cycles.size(), 5u);
  int executed = 0;
  for (const CycleReport& cr : report->cycles) {
    if (cr.executed) {
      ++executed;
      EXPECT_TRUE(cr.reached_target);
    }
  }
  EXPECT_GT(executed, 0);
  EXPECT_GT(report->command_retries, 0);
  EXPECT_EQ(report->partial_executions, 0);
  EXPECT_EQ(report->sla_violations, 0);
  EXPECT_EQ(report->feasibility_violations, 0);
}

// Satellite: a failed optimizer run must not abort the workflow — the cycle
// is recorded as a dry-run and the remaining cycles still run.
TEST(WorkflowFaultTest, OptimizerFailureCountsAsDryRun) {
  const ClusterSnapshot snapshot = MakeSnapshot(33);
  WorkflowOptions options = BaseOptions();
  options.cycles = 3;
  options.inject_faults = true;
  options.faults.optimizer_failure_probability = 1.0;
  StatusOr<WorkflowReport> report =
      RunWorkflow(*snapshot.cluster, snapshot.original_placement,
                  AlgorithmSelector(SelectorPolicy::kHeuristic), options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->cycles.size(), 3u);
  EXPECT_EQ(report->solver_failures, 3);
  EXPECT_EQ(report->dry_runs, 3);
  EXPECT_EQ(report->executions, 0);
  for (const CycleReport& cr : report->cycles) {
    EXPECT_TRUE(cr.solver_failed);
    EXPECT_FALSE(cr.executed);
    EXPECT_DOUBLE_EQ(cr.affinity_after, cr.affinity_before);
  }
}

// Degradation ladder, bottom rung: with the solver budget exhausted every
// cycle the optimizer falls back to the greedy, and the workflow still
// completes every cycle with a feasible cluster.
TEST(WorkflowFaultTest, SolverExhaustionFallsBackGracefully) {
  const ClusterSnapshot snapshot = MakeSnapshot(34);
  WorkflowOptions options = BaseOptions();
  options.cycles = 4;
  options.inject_faults = true;
  options.faults.solver_exhaustion_probability = 1.0;
  StatusOr<WorkflowReport> report =
      RunWorkflow(*snapshot.cluster, snapshot.original_placement,
                  AlgorithmSelector(SelectorPolicy::kHeuristic), options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->cycles.size(), 4u);
  EXPECT_EQ(report->sla_violations, 0);
  EXPECT_EQ(report->feasibility_violations, 0);
  EXPECT_TRUE(report->final_placement.CheckFeasible(false).ok());
}

// With no faults, the command-by-command executor must land on exactly the
// same placement the old atomic swap produced.
TEST(WorkflowFaultTest, FaultFreeExecutorMatchesAtomicSwap) {
  const ClusterSnapshot snapshot = MakeSnapshot(35);
  WorkflowOptions options = BaseOptions();
  options.cycles = 1;
  options.drift_fraction = 0.0;
  const AlgorithmSelector selector(SelectorPolicy::kHeuristic);

  StatusOr<WorkflowReport> with_executor =
      RunWorkflow(*snapshot.cluster, snapshot.original_placement, selector,
                  options);
  ASSERT_TRUE(with_executor.ok());

  options.use_migration_executor = false;
  StatusOr<WorkflowReport> atomic =
      RunWorkflow(*snapshot.cluster, snapshot.original_placement, selector,
                  options);
  ASSERT_TRUE(atomic.ok());

  EXPECT_EQ(
      with_executor->final_placement.DiffCount(atomic->final_placement), 0);
  EXPECT_EQ(with_executor->commands_failed, 0);
  EXPECT_EQ(with_executor->command_retries, 0);
  EXPECT_EQ(with_executor->partial_executions, 0);
}

}  // namespace
}  // namespace rasa
