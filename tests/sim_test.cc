#include <limits>
#include <numeric>

#include "baselines/baselines.h"
#include "cluster/generator.h"
#include "core/objective.h"
#include "gtest/gtest.h"
#include "sim/production.h"
#include "test_util.h"
#include "sim/workflow.h"

namespace rasa {
namespace {

double Mean(const std::vector<double>& xs) {
  return xs.empty() ? 0.0
                    : std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
}

class SimFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M1Spec(32.0));
    ASSERT_TRUE(snapshot.ok());
    snapshot_ = std::move(snapshot).value();
    // A better-collocated placement via the affinity-aware K8S+ baseline.
    StatusOr<BaselineResult> k8s =
        RunK8sPlus(*snapshot_.cluster, Deadline::AfterSeconds(30), 2);
    ASSERT_TRUE(k8s.ok());
    optimized_ = std::move(k8s->placement);
  }
  ClusterSnapshot snapshot_;
  Placement optimized_;
};

TEST_F(SimFixture, ProductionSeriesHaveRequestedShape) {
  ProductionSimOptions options;
  options.time_steps = 24;
  ProductionSimReport report = SimulateProduction(
      *snapshot_.cluster, optimized_, snapshot_.original_placement, options);
  EXPECT_EQ(report.pairs.size(), 4u);
  for (const PairProductionSeries& p : report.pairs) {
    EXPECT_EQ(p.latency_with.size(), 24u);
    EXPECT_EQ(p.error_without.size(), 24u);
  }
  EXPECT_EQ(report.weighted_latency_with.size(), 24u);
}

TEST_F(SimFixture, SeriesAreNormalizedToOne) {
  ProductionSimOptions options;
  ProductionSimReport report = SimulateProduction(
      *snapshot_.cluster, optimized_, snapshot_.original_placement, options);
  double max_v = 0.0;
  for (double v : report.weighted_latency_with) max_v = std::max(max_v, v);
  for (double v : report.weighted_latency_without) max_v = std::max(max_v, v);
  for (double v : report.weighted_latency_collocated) {
    max_v = std::max(max_v, v);
  }
  EXPECT_NEAR(max_v, 1.0, 1e-9);
}

TEST_F(SimFixture, CollocatedIsTheLowerEnvelope) {
  ProductionSimOptions options;
  ProductionSimReport report = SimulateProduction(
      *snapshot_.cluster, optimized_, snapshot_.original_placement, options);
  EXPECT_LE(Mean(report.weighted_latency_collocated),
            Mean(report.weighted_latency_with) + 1e-9);
  EXPECT_LE(Mean(report.weighted_error_collocated),
            Mean(report.weighted_error_with) + 1e-9);
}

TEST_F(SimFixture, BetterPlacementImprovesLatencyAndErrors) {
  ProductionSimOptions options;
  ProductionSimReport report = SimulateProduction(
      *snapshot_.cluster, optimized_, snapshot_.original_placement, options);
  // The optimized placement localizes strictly more traffic, so the
  // cluster-wide improvements are positive.
  EXPECT_GT(report.latency_improvement, 0.0);
  EXPECT_GT(report.error_improvement, 0.0);
  EXPECT_LT(report.latency_improvement, 1.0);
  EXPECT_LT(report.error_improvement, 1.0);
}

TEST_F(SimFixture, IdenticalPlacementsShowNoImprovement) {
  ProductionSimOptions options;
  ProductionSimReport report =
      SimulateProduction(*snapshot_.cluster, snapshot_.original_placement,
                         snapshot_.original_placement, options);
  EXPECT_NEAR(report.latency_improvement, 0.0, 1e-9);
  EXPECT_NEAR(report.error_improvement, 0.0, 1e-9);
}

TEST_F(SimFixture, TrackedPairsAreTheHeaviest) {
  ProductionSimOptions options;
  ProductionSimReport report = SimulateProduction(
      *snapshot_.cluster, optimized_, snapshot_.original_placement, options,
      /*tracked_pairs=*/2);
  ASSERT_EQ(report.pairs.size(), 2u);
  // All edges have weight <= the first tracked pair's weight.
  double max_weight = 0.0;
  for (const AffinityEdge& e : snapshot_.cluster->affinity().edges()) {
    max_weight = std::max(max_weight, e.weight);
  }
  EXPECT_DOUBLE_EQ(report.pairs[0].qps_weight, max_weight);
}

TEST_F(SimFixture, DeterministicInSeed) {
  ProductionSimOptions options;
  ProductionSimReport a = SimulateProduction(
      *snapshot_.cluster, optimized_, snapshot_.original_placement, options);
  ProductionSimReport b = SimulateProduction(
      *snapshot_.cluster, optimized_, snapshot_.original_placement, options);
  EXPECT_EQ(a.weighted_latency_with, b.weighted_latency_with);
}

// ------------------------------------------------------------- Workflow ---

TEST_F(SimFixture, CollectClusterStatePreservesStructure) {
  CollectedState state = CollectClusterState(
      *snapshot_.cluster, snapshot_.original_placement, 0.1, 7);
  EXPECT_EQ(state.measured_cluster->num_services(),
            snapshot_.cluster->num_services());
  EXPECT_EQ(state.measured_cluster->affinity().num_edges(),
            snapshot_.cluster->affinity().num_edges());
  EXPECT_NEAR(state.measured_cluster->affinity().TotalWeight(), 1.0, 1e-9);
  EXPECT_EQ(state.placement.DiffCount(snapshot_.original_placement), 0);
}

TEST_F(SimFixture, ZeroNoiseCollectionIsExact) {
  CollectedState state = CollectClusterState(
      *snapshot_.cluster, snapshot_.original_placement, 0.0, 7);
  for (const AffinityEdge& e : snapshot_.cluster->affinity().edges()) {
    EXPECT_NEAR(testing::EdgeWeightOf(state.measured_cluster->affinity(), e.u,
                                      e.v),
                e.weight, 1e-9);
  }
}

TEST_F(SimFixture, WorkflowRunsCyclesAndKeepsFeasibility) {
  WorkflowOptions options;
  options.cycles = 3;
  options.rasa.timeout_seconds = 0.8;
  StatusOr<WorkflowReport> report =
      RunWorkflow(*snapshot_.cluster, snapshot_.original_placement,
                  AlgorithmSelector(SelectorPolicy::kHeuristic), options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->cycles.size(), 3u);
  EXPECT_TRUE(report->final_placement.CheckFeasible(true).ok());
  EXPECT_EQ(report->executions + report->dry_runs + report->rollbacks, 3);
}

TEST_F(SimFixture, WorkflowFirstCycleImprovesAffinity) {
  WorkflowOptions options;
  options.cycles = 1;
  options.drift_fraction = 0.0;
  options.rasa.timeout_seconds = 1.5;
  StatusOr<WorkflowReport> report =
      RunWorkflow(*snapshot_.cluster, snapshot_.original_placement,
                  AlgorithmSelector(SelectorPolicy::kHeuristic), options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->cycles.size(), 1u);
  EXPECT_GT(report->cycles[0].affinity_after,
            report->cycles[0].affinity_before);
  EXPECT_TRUE(report->cycles[0].executed);
}

// The rollback threshold's floor is 1.0 (enforced by validation), so the
// check only fires on genuine over-commitment. Build one deterministically:
// per-container requests a hair above capacity/4, so the affinity-optimal
// 4-container collocation is admitted within kCapacityTolerance yet lands
// the machine's utilization strictly above 100%.
TEST_F(SimFixture, RollbackThresholdTriggersOnOvercommit) {
  const double request = 0.25 + 2e-10;
  std::vector<Service> services = {{"u", 1, {request}, 0},
                                   {"v", 3, {request}, 0}};
  std::vector<Machine> machines = {{"m0", 0, {1.0}, 0}, {"m1", 0, {1.0}, 0}};
  AffinityGraph affinity(2);
  affinity.AddEdge(0, 1, 10.0);
  const Cluster cluster({"cpu"}, services, machines, std::move(affinity), {});
  Placement initial(cluster);
  initial.Add(0, 0);     // u on m0
  initial.Add(1, 1, 3);  // v x3 on m1: zero collocated affinity
  ASSERT_TRUE(initial.CheckFeasible().ok());

  WorkflowOptions options;
  options.cycles = 1;
  options.drift_fraction = 0.0;
  options.measurement_noise = 0.0;
  options.rollback_utilization_threshold = 1.0;  // minimum valid value
  options.rasa.timeout_seconds = 0.8;
  StatusOr<WorkflowReport> report =
      RunWorkflow(cluster, initial,
                  AlgorithmSelector(SelectorPolicy::kHeuristic), options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->rollbacks, 1);
  ASSERT_EQ(report->cycles.size(), 1u);
  EXPECT_TRUE(report->cycles[0].rolled_back);
  EXPECT_FALSE(report->cycles[0].executed);
  // Rolled back: the live placement is untouched.
  EXPECT_EQ(report->final_placement.CountOn(0, 0), 1);
  EXPECT_EQ(report->final_placement.CountOn(1, 1), 3);
}

// Satellite: option ranges are validated up front — RunWorkflow returns
// kInvalidArgument before touching any state.
TEST_F(SimFixture, InvalidWorkflowOptionsAreRejectedUpFront) {
  const AlgorithmSelector selector(SelectorPolicy::kHeuristic);
  const auto expect_invalid = [&](const WorkflowOptions& options,
                                  const char* what) {
    EXPECT_EQ(ValidateWorkflowOptions(options).code(),
              StatusCode::kInvalidArgument)
        << what;
    StatusOr<WorkflowReport> report = RunWorkflow(
        *snapshot_.cluster, snapshot_.original_placement, selector, options);
    EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument) << what;
  };

  WorkflowOptions options;
  options.cycles = -1;
  expect_invalid(options, "negative cycles");

  options = WorkflowOptions();
  options.drift_fraction = -0.25;
  expect_invalid(options, "negative drift_fraction");
  options.drift_fraction = 1.5;
  expect_invalid(options, "drift_fraction > 1");

  options = WorkflowOptions();
  options.measurement_noise = -0.1;
  expect_invalid(options, "negative measurement_noise");
  options.measurement_noise = 2.0;
  expect_invalid(options, "measurement_noise > 1");

  options = WorkflowOptions();
  options.max_replans = 0;
  expect_invalid(options, "non-positive max_replans");

  // Below 1.0 every healthy (fully packed) execution would roll back and
  // wedge its services unschedulable forever.
  options = WorkflowOptions();
  options.rollback_utilization_threshold = 0.0;
  expect_invalid(options, "rollback threshold 0");
  options.rollback_utilization_threshold = 0.99;
  expect_invalid(options, "rollback threshold below 1");
  options.rollback_utilization_threshold =
      std::numeric_limits<double>::quiet_NaN();
  expect_invalid(options, "NaN rollback threshold");
  options.rollback_utilization_threshold = 1.0;
  EXPECT_TRUE(ValidateWorkflowOptions(options).ok())
      << "threshold exactly 1.0 is the valid floor";

  options = WorkflowOptions();
  options.unschedulable_cycles = -1;
  expect_invalid(options, "negative unschedulable_cycles");
  options.unschedulable_cycles = 0;
  EXPECT_TRUE(ValidateWorkflowOptions(options).ok())
      << "zero unschedulable_cycles disables the cooldown legally";

  options = WorkflowOptions();
  options.resume = true;  // resume without a state_dir
  expect_invalid(options, "resume without state_dir");

  // The defaults are valid, and zero cycles is a legal no-op.
  options = WorkflowOptions();
  EXPECT_TRUE(ValidateWorkflowOptions(options).ok());
  options.cycles = 0;
  StatusOr<WorkflowReport> empty = RunWorkflow(
      *snapshot_.cluster, snapshot_.original_placement, selector, options);
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_TRUE(empty->cycles.empty());
}

TEST_F(SimFixture, DryRunThresholdBlocksExecution) {
  WorkflowOptions options;
  options.cycles = 1;
  options.rasa.timeout_seconds = 0.8;
  options.rasa.min_improvement = 1e9;
  StatusOr<WorkflowReport> report =
      RunWorkflow(*snapshot_.cluster, snapshot_.original_placement,
                  AlgorithmSelector(SelectorPolicy::kHeuristic), options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->dry_runs, 1);
  EXPECT_EQ(report->cycles[0].moved_containers, 0);
}

}  // namespace
}  // namespace rasa
