// Determinism suite for the parallel subproblem phase: Optimize (and the
// full workflow, including under injected chaos) must produce bit-identical
// placements, reports, and degradation-ladder counters at every thread
// count. `SubproblemReport.seconds` is wall-clock and is deliberately
// excluded from the comparisons.
//
// The solver budgets here are either generous (every subproblem completes
// well inside its reserved slice, so Deadline::Expired() never fires
// mid-solve) or zero (the ladder collapses straight to the greedy). Both
// regimes are scheduling-independent; see DESIGN.md "Threading model".

#include <vector>

#include "cluster/generator.h"
#include "common/logging.h"
#include "core/objective.h"
#include "core/rasa.h"
#include "gtest/gtest.h"
#include "sim/workflow.h"

namespace rasa {
namespace {

ClusterSnapshot MakeCluster(uint64_t seed) {
  ClusterSpec spec = M1Spec(48.0);
  spec.seed = seed;
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  RASA_CHECK(snapshot.ok()) << snapshot.status().ToString();
  return std::move(snapshot).value();
}

RasaResult RunOptimize(const ClusterSnapshot& snapshot, RasaOptions options,
                       int threads) {
  options.num_threads = threads;
  // Small subproblems keep the exact solvers' worst case well under the
  // generous deadline on every seed (bounded, scheduling-independent work).
  options.partitioning.max_subproblem_services = 12;
  RasaOptimizer optimizer(options,
                          AlgorithmSelector(SelectorPolicy::kHeuristic));
  StatusOr<RasaResult> result =
      optimizer.Optimize(*snapshot.cluster, snapshot.original_placement);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// Bit-exact equality of everything except wall-clock timings.
void ExpectIdenticalResults(const RasaResult& seq, const RasaResult& par) {
  EXPECT_EQ(seq.new_placement.DiffCount(par.new_placement), 0);
  EXPECT_EQ(par.new_placement.DiffCount(seq.new_placement), 0);
  EXPECT_EQ(seq.new_gained_affinity, par.new_gained_affinity);
  EXPECT_EQ(seq.original_gained_affinity, par.original_gained_affinity);
  EXPECT_EQ(seq.should_execute, par.should_execute);
  EXPECT_EQ(seq.moved_containers, par.moved_containers);
  EXPECT_EQ(seq.lost_containers, par.lost_containers);
  EXPECT_EQ(seq.solver_failures, par.solver_failures);
  EXPECT_EQ(seq.secondary_successes, par.secondary_successes);
  EXPECT_EQ(seq.greedy_fallbacks, par.greedy_fallbacks);
  EXPECT_EQ(seq.breaker_skips, par.breaker_skips);
  EXPECT_EQ(seq.migration.batches.size(), par.migration.batches.size());
  ASSERT_EQ(seq.subproblems.size(), par.subproblems.size());
  for (size_t i = 0; i < seq.subproblems.size(); ++i) {
    const SubproblemReport& a = seq.subproblems[i];
    const SubproblemReport& b = par.subproblems[i];
    EXPECT_EQ(a.num_services, b.num_services) << "subproblem " << i;
    EXPECT_EQ(a.num_machines, b.num_machines) << "subproblem " << i;
    EXPECT_EQ(a.internal_affinity, b.internal_affinity) << "subproblem " << i;
    EXPECT_EQ(a.algorithm, b.algorithm) << "subproblem " << i;
    EXPECT_EQ(a.gained_affinity, b.gained_affinity) << "subproblem " << i;
    EXPECT_EQ(a.unplaced_containers, b.unplaced_containers)
        << "subproblem " << i;
    EXPECT_EQ(a.failed, b.failed) << "subproblem " << i;
    EXPECT_EQ(a.used_secondary, b.used_secondary) << "subproblem " << i;
    // a.seconds / b.seconds intentionally not compared.
  }
}

TEST(RasaDeterminismTest, ParallelMatchesSequentialAcrossSeeds) {
  const uint64_t seeds[] = {1, 2, 3, 5, 8, 13, 21, 34};
  for (uint64_t seed : seeds) {
    SCOPED_TRACE(::testing::Message() << "cluster seed " << seed);
    const ClusterSnapshot snapshot = MakeCluster(seed);
    RasaOptions options;
    // Generous budget: no solve may be cut off mid-flight, otherwise the
    // comparison would be racing the wall clock instead of the merge.
    options.timeout_seconds = 30.0;
    options.seed = seed * 31 + 7;
    const RasaResult seq = RunOptimize(snapshot, options, 1);
    const RasaResult par = RunOptimize(snapshot, options, 4);
    EXPECT_EQ(seq.num_threads_used, 1);
    EXPECT_EQ(par.num_threads_used, 4);
    ExpectIdenticalResults(seq, par);
  }
}

TEST(RasaDeterminismTest, ParallelMatchesSequentialWithLocalSearch) {
  const ClusterSnapshot snapshot = MakeCluster(77);
  RasaOptions options;
  options.timeout_seconds = 30.0;
  options.refine_with_local_search = true;
  const RasaResult seq = RunOptimize(snapshot, options, 1);
  const RasaResult par = RunOptimize(snapshot, options, 4);
  ExpectIdenticalResults(seq, par);
}

// Exhausted budget: every rung of the ladder is skipped as expired and all
// subproblems fall to the greedy — the all-expired path must also be
// scheduling-independent.
TEST(RasaDeterminismTest, ParallelMatchesSequentialUnderExhaustedBudget) {
  const uint64_t seeds[] = {4, 9, 16, 25};
  for (uint64_t seed : seeds) {
    SCOPED_TRACE(::testing::Message() << "cluster seed " << seed);
    const ClusterSnapshot snapshot = MakeCluster(seed);
    RasaOptions options;
    options.timeout_seconds = 0.0;
    const RasaResult seq = RunOptimize(snapshot, options, 1);
    const RasaResult par = RunOptimize(snapshot, options, 4);
    ExpectIdenticalResults(seq, par);
    EXPECT_EQ(par.greedy_fallbacks,
              static_cast<int>(par.subproblems.size()));
  }
}

// The full periodic workflow under chaos (command failures, stale
// snapshots, solver-budget exhaustion) consumes its RNG streams identically
// at every thread count, so every cycle — and the final placement — must
// replay bit-for-bit.
TEST(RasaDeterminismTest, ChaosWorkflowMatchesAcrossThreadCounts) {
  const ClusterSnapshot snapshot = MakeCluster(6);
  WorkflowOptions options;
  options.cycles = 3;
  options.rasa.timeout_seconds = 10.0;
  options.inject_faults = true;
  options.faults.command_failure_probability = 0.15;
  options.faults.solver_exhaustion_probability = 0.4;
  options.faults.stale_snapshot_drift = 0.02;
  options.seed = 2024;

  WorkflowOptions seq_options = options;
  seq_options.rasa.num_threads = 1;
  WorkflowOptions par_options = options;
  par_options.rasa.num_threads = 4;
  const AlgorithmSelector selector(SelectorPolicy::kHeuristic);
  StatusOr<WorkflowReport> seq =
      RunWorkflow(*snapshot.cluster, snapshot.original_placement, selector,
                  seq_options);
  StatusOr<WorkflowReport> par =
      RunWorkflow(*snapshot.cluster, snapshot.original_placement, selector,
                  par_options);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_TRUE(par.ok()) << par.status().ToString();

  EXPECT_EQ(seq->final_placement.DiffCount(par->final_placement), 0);
  EXPECT_EQ(par->final_placement.DiffCount(seq->final_placement), 0);
  EXPECT_EQ(GainedAffinity(*snapshot.cluster, seq->final_placement),
            GainedAffinity(*snapshot.cluster, par->final_placement));
  EXPECT_EQ(seq->executions, par->executions);
  EXPECT_EQ(seq->dry_runs, par->dry_runs);
  EXPECT_EQ(seq->rollbacks, par->rollbacks);
  EXPECT_EQ(seq->solver_failures, par->solver_failures);
  EXPECT_EQ(seq->commands_failed, par->commands_failed);
  EXPECT_EQ(seq->command_retries, par->command_retries);
  EXPECT_EQ(seq->replans, par->replans);
  EXPECT_EQ(seq->faults_injected, par->faults_injected);
  EXPECT_EQ(seq->sla_violations, 0);
  EXPECT_EQ(par->sla_violations, 0);
  ASSERT_EQ(seq->cycles.size(), par->cycles.size());
  for (size_t c = 0; c < seq->cycles.size(); ++c) {
    EXPECT_EQ(seq->cycles[c].affinity_after, par->cycles[c].affinity_after)
        << "cycle " << c;
    EXPECT_EQ(seq->cycles[c].moved_containers,
              par->cycles[c].moved_containers)
        << "cycle " << c;
  }
}

// Thread-count sweep on one seed: every parallel width maps to the same
// merged output.
TEST(RasaDeterminismTest, AllThreadCountsAgree) {
  const ClusterSnapshot snapshot = MakeCluster(11);
  RasaOptions options;
  options.timeout_seconds = 30.0;
  const RasaResult seq = RunOptimize(snapshot, options, 1);
  for (int threads : {2, 3, 8}) {
    SCOPED_TRACE(::testing::Message() << threads << " threads");
    ExpectIdenticalResults(seq, RunOptimize(snapshot, options, threads));
  }
}

}  // namespace
}  // namespace rasa
