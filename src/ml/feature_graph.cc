#include "ml/feature_graph.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rasa {

FeatureGraph MakeFeatureGraph(const AffinityGraph& graph, Matrix features) {
  const int n = graph.num_vertices();
  RASA_CHECK(features.rows() == n);
  // Row nonzeros = neighbors + the unit self-loop, sorted by column id.
  // Ascending-column order matters: the dense kernels accumulated every sum
  // in ascending-j order with exact zeros contributing +0.0, so the sparse
  // build is bit-identical only if it visits the same nonzeros in the same
  // order.
  std::vector<std::vector<std::pair<int, double>>> rows(n);
  std::vector<double> inv_sqrt_deg(n, 0.0);
  for (int i = 0; i < n; ++i) {
    auto& row = rows[i];
    const auto nbrs = graph.Neighbors(i);
    row.reserve(nbrs.size() + 1);
    for (const auto& [j, w] : nbrs) row.push_back({j, w});
    row.push_back({i, 1.0});  // self-loop
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    double deg = 0.0;
    for (const auto& [j, w] : row) {
      (void)j;
      deg += w;
    }
    inv_sqrt_deg[i] = deg > 0.0 ? 1.0 / std::sqrt(deg) : 0.0;
  }
  std::vector<int> row_ids;
  std::vector<int> col_ids;
  std::vector<double> values;
  size_t nnz = 0;
  for (const auto& row : rows) nnz += row.size();
  row_ids.reserve(nnz);
  col_ids.reserve(nnz);
  values.reserve(nnz);
  for (int i = 0; i < n; ++i) {
    for (const auto& [j, w] : rows[i]) {
      row_ids.push_back(i);
      col_ids.push_back(j);
      values.push_back(w * (inv_sqrt_deg[i] * inv_sqrt_deg[j]));
    }
  }
  FeatureGraph fg;
  fg.a_hat = CsrMatrix::FromTriplets(n, n, row_ids, col_ids, values);
  fg.features = std::move(features);
  return fg;
}

}  // namespace rasa
