#include "ml/feature_graph.h"

#include <cmath>

#include "common/logging.h"

namespace rasa {

FeatureGraph MakeFeatureGraph(const AffinityGraph& graph, Matrix features) {
  const int n = graph.num_vertices();
  RASA_CHECK(features.rows() == n);
  Matrix adj(n, n);
  for (const AffinityEdge& e : graph.edges()) {
    adj(e.u, e.v) = e.weight;
    adj(e.v, e.u) = e.weight;
  }
  for (int i = 0; i < n; ++i) adj(i, i) += 1.0;  // self-loops
  // Symmetric normalization.
  std::vector<double> inv_sqrt_deg(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double deg = 0.0;
    for (int j = 0; j < n; ++j) deg += adj(i, j);
    inv_sqrt_deg[i] = deg > 0.0 ? 1.0 / std::sqrt(deg) : 0.0;
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      adj(i, j) *= inv_sqrt_deg[i] * inv_sqrt_deg[j];
    }
  }
  FeatureGraph fg;
  fg.a_hat = std::move(adj);
  fg.features = std::move(features);
  return fg;
}

}  // namespace rasa
