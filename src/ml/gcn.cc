#include "ml/gcn.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"

namespace rasa {
namespace {

Matrix XavierInit(int rows, int cols, Rng& rng) {
  const double scale = std::sqrt(6.0 / (rows + cols));
  return Matrix::Random(rows, cols, scale, rng);
}

// 1 x cols matrix of column sums.
Matrix ColSums(const Matrix& m) {
  Matrix out = m.MeanRows();
  out.ScaleInPlace(static_cast<double>(m.rows()));
  return out;
}

double CrossEntropy(const Matrix& probs, int label) {
  return -std::log(std::max(probs(0, label), 1e-12));
}

void WriteMatrix(std::ostringstream& os, const Matrix& m) {
  os << m.rows() << " " << m.cols();
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) os << " " << m(i, j);
  }
  os << "\n";
}

bool ReadMatrix(std::istream& is, Matrix& m) {
  int rows = 0, cols = 0;
  if (!(is >> rows >> cols) || rows < 0 || cols < 0) return false;
  m = Matrix(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (!(is >> m(i, j))) return false;
    }
  }
  return true;
}

}  // namespace

GcnClassifier::GcnClassifier(int in_dim, int hidden_dim, int num_classes,
                             uint64_t seed) {
  Rng rng(seed);
  w0_ = XavierInit(in_dim, hidden_dim, rng);
  b0_ = Matrix(1, hidden_dim);
  w1_ = XavierInit(hidden_dim, hidden_dim, rng);
  b1_ = Matrix(1, hidden_dim);
  w_out_ = XavierInit(hidden_dim, num_classes, rng);
  b_out_ = Matrix(1, num_classes);
}

Matrix GcnClassifier::Forward(const FeatureGraph& graph) const {
  const Matrix ax = graph.a_hat.MatMul(graph.features);
  const Matrix h1 = ax.MatMul(w0_).AddRowBroadcast(b0_).Relu();
  const Matrix ah1 = graph.a_hat.MatMul(h1);
  const Matrix h2 = ah1.MatMul(w1_).AddRowBroadcast(b1_).Relu();
  const Matrix readout = h2.MeanRows();
  Matrix logits = readout.MatMul(w_out_);
  logits.AddRowBroadcast(b_out_);
  return logits.SoftmaxRows();
}

int GcnClassifier::Predict(const FeatureGraph& graph) const {
  const Matrix probs = Forward(graph);
  int best = 0;
  for (int c = 1; c < probs.cols(); ++c) {
    if (probs(0, c) > probs(0, best)) best = c;
  }
  return best;
}

double GcnClassifier::TrainStep(const FeatureGraph& graph, int label,
                                AdamOptimizer& opt) {
  const int n = graph.num_vertices();
  RASA_CHECK(n > 0);
  // Forward with cached intermediates.
  const Matrix ax = graph.a_hat.MatMul(graph.features);   // n x f
  Matrix z1 = ax.MatMul(w0_);
  z1.AddRowBroadcast(b0_);
  const Matrix h1 = z1.Relu();                            // n x h
  const Matrix ah1 = graph.a_hat.MatMul(h1);              // n x h
  Matrix z2 = ah1.MatMul(w1_);
  z2.AddRowBroadcast(b1_);
  const Matrix h2 = z2.Relu();                            // n x h
  const Matrix readout = h2.MeanRows();                   // 1 x h
  Matrix logits = readout.MatMul(w_out_);
  logits.AddRowBroadcast(b_out_);
  const Matrix probs = logits.SoftmaxRows();              // 1 x c
  const double loss = CrossEntropy(probs, label);

  // Backward.
  Matrix dlogits = probs;                                 // 1 x c
  dlogits(0, label) -= 1.0;
  const Matrix dw_out = readout.TransposedMatMul(dlogits);
  const Matrix db_out = dlogits;
  const Matrix dreadout = dlogits.MatMulTransposed(w_out_);  // 1 x h
  // d(mean over rows) spreads the gradient evenly to each vertex.
  Matrix dh2(n, dreadout.cols());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < dreadout.cols(); ++j) {
      dh2(i, j) = dreadout(0, j) / n;
    }
  }
  const Matrix dz2 = dh2.Hadamard(z2.ReluMask());
  const Matrix dw1 = ah1.TransposedMatMul(dz2);
  const Matrix db1 = ColSums(dz2);
  // dH1 = A_hat^T dZ2 W1^T; A_hat is symmetric.
  const Matrix dh1 = graph.a_hat.MatMul(dz2).MatMulTransposed(w1_);
  const Matrix dz1 = dh1.Hadamard(z1.ReluMask());
  const Matrix dw0 = ax.TransposedMatMul(dz1);
  const Matrix db0 = ColSums(dz1);

  opt.NextStep();
  opt.Update(w_out_, dw_out);
  opt.Update(b_out_, db_out);
  opt.Update(w1_, dw1);
  opt.Update(b1_, db1);
  opt.Update(w0_, dw0);
  opt.Update(b0_, db0);
  return loss;
}

double GcnClassifier::Fit(const std::vector<FeatureGraph>& graphs,
                          const std::vector<int>& labels, int epochs,
                          double learning_rate, uint64_t seed) {
  RASA_CHECK(graphs.size() == labels.size());
  AdamOptimizer opt(learning_rate);
  Rng rng(seed);
  double last_epoch_loss = 0.0;
  std::vector<int> order(graphs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.Shuffle(order);
    double total = 0.0;
    for (int idx : order) total += TrainStep(graphs[idx], labels[idx], opt);
    last_epoch_loss = graphs.empty() ? 0.0 : total / graphs.size();
  }
  return last_epoch_loss;
}

double GcnClassifier::Accuracy(const std::vector<FeatureGraph>& graphs,
                               const std::vector<int>& labels) const {
  if (graphs.empty()) return 0.0;
  int correct = 0;
  for (size_t i = 0; i < graphs.size(); ++i) {
    if (Predict(graphs[i]) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / graphs.size();
}

std::string GcnClassifier::Serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "gcn-v1\n";
  WriteMatrix(os, w0_);
  WriteMatrix(os, b0_);
  WriteMatrix(os, w1_);
  WriteMatrix(os, b1_);
  WriteMatrix(os, w_out_);
  WriteMatrix(os, b_out_);
  return os.str();
}

StatusOr<GcnClassifier> GcnClassifier::Deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  if (!(is >> magic) || magic != "gcn-v1") {
    return InvalidArgumentError("bad GCN serialization header");
  }
  GcnClassifier model;
  for (Matrix* m : {&model.w0_, &model.b0_, &model.w1_, &model.b1_,
                    &model.w_out_, &model.b_out_}) {
    if (!ReadMatrix(is, *m)) {
      return InvalidArgumentError("truncated GCN serialization");
    }
  }
  return model;
}

Status GcnClassifier::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return InternalError(StrFormat("cannot open %s", path.c_str()));
  out << Serialize();
  return out.good() ? Status::OK()
                    : InternalError(StrFormat("write failed: %s", path.c_str()));
}

StatusOr<GcnClassifier> GcnClassifier::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError(StrFormat("cannot open %s", path.c_str()));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Deserialize(buffer.str());
}

MlpClassifier::MlpClassifier(int in_dim, int hidden_dim, int num_classes,
                             uint64_t seed) {
  Rng rng(seed ^ 0xabcdef);
  w0_ = XavierInit(in_dim, hidden_dim, rng);
  b0_ = Matrix(1, hidden_dim);
  w_out_ = XavierInit(hidden_dim, num_classes, rng);
  b_out_ = Matrix(1, num_classes);
}

Matrix MlpClassifier::Forward(const Matrix& mean_features) const {
  Matrix z1 = mean_features.MatMul(w0_);
  z1.AddRowBroadcast(b0_);
  const Matrix h1 = z1.Relu();
  Matrix logits = h1.MatMul(w_out_);
  logits.AddRowBroadcast(b_out_);
  return logits.SoftmaxRows();
}

int MlpClassifier::Predict(const Matrix& mean_features) const {
  const Matrix probs = Forward(mean_features);
  int best = 0;
  for (int c = 1; c < probs.cols(); ++c) {
    if (probs(0, c) > probs(0, best)) best = c;
  }
  return best;
}

double MlpClassifier::TrainStep(const Matrix& mean_features, int label,
                                AdamOptimizer& opt) {
  Matrix z1 = mean_features.MatMul(w0_);
  z1.AddRowBroadcast(b0_);
  const Matrix h1 = z1.Relu();
  Matrix logits = h1.MatMul(w_out_);
  logits.AddRowBroadcast(b_out_);
  const Matrix probs = logits.SoftmaxRows();
  const double loss = CrossEntropy(probs, label);

  Matrix dlogits = probs;
  dlogits(0, label) -= 1.0;
  const Matrix dw_out = h1.TransposedMatMul(dlogits);
  const Matrix db_out = dlogits;
  const Matrix dh1 = dlogits.MatMulTransposed(w_out_);
  const Matrix dz1 = dh1.Hadamard(z1.ReluMask());
  const Matrix dw0 = mean_features.TransposedMatMul(dz1);
  const Matrix db0 = dz1;

  opt.NextStep();
  opt.Update(w_out_, dw_out);
  opt.Update(b_out_, db_out);
  opt.Update(w0_, dw0);
  opt.Update(b0_, db0);
  return loss;
}

double MlpClassifier::Fit(const std::vector<Matrix>& inputs,
                          const std::vector<int>& labels, int epochs,
                          double learning_rate, uint64_t seed) {
  RASA_CHECK(inputs.size() == labels.size());
  AdamOptimizer opt(learning_rate);
  Rng rng(seed);
  std::vector<int> order(inputs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  double last = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.Shuffle(order);
    double total = 0.0;
    for (int idx : order) total += TrainStep(inputs[idx], labels[idx], opt);
    last = inputs.empty() ? 0.0 : total / inputs.size();
  }
  return last;
}

double MlpClassifier::Accuracy(const std::vector<Matrix>& inputs,
                               const std::vector<int>& labels) const {
  if (inputs.empty()) return 0.0;
  int correct = 0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (Predict(inputs[i]) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / inputs.size();
}

std::string MlpClassifier::Serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "mlp-v1\n";
  WriteMatrix(os, w0_);
  WriteMatrix(os, b0_);
  WriteMatrix(os, w_out_);
  WriteMatrix(os, b_out_);
  return os.str();
}

StatusOr<MlpClassifier> MlpClassifier::Deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  if (!(is >> magic) || magic != "mlp-v1") {
    return InvalidArgumentError("bad MLP serialization header");
  }
  MlpClassifier model;
  for (Matrix* m : {&model.w0_, &model.b0_, &model.w_out_, &model.b_out_}) {
    if (!ReadMatrix(is, *m)) {
      return InvalidArgumentError("truncated MLP serialization");
    }
  }
  return model;
}

Status MlpClassifier::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return InternalError(StrFormat("cannot open %s", path.c_str()));
  out << Serialize();
  return out.good() ? Status::OK()
                    : InternalError(StrFormat("write failed: %s", path.c_str()));
}

StatusOr<MlpClassifier> MlpClassifier::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError(StrFormat("cannot open %s", path.c_str()));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Deserialize(buffer.str());
}

}  // namespace rasa
