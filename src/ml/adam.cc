#include "ml/adam.h"

#include <cmath>

#include "common/logging.h"

namespace rasa {

void AdamOptimizer::Update(Matrix& param, const Matrix& grad) {
  RASA_CHECK(param.SameShape(grad));
  Moments& mom = state_[&param];
  if (mom.m.size() == 0) {
    mom.m = Matrix(param.rows(), param.cols());
    mom.v = Matrix(param.rows(), param.cols());
  }
  const double bc1 = 1.0 - std::pow(beta1_, std::max(1, t_));
  const double bc2 = 1.0 - std::pow(beta2_, std::max(1, t_));
  for (int i = 0; i < param.rows(); ++i) {
    for (int j = 0; j < param.cols(); ++j) {
      const double g = grad(i, j);
      mom.m(i, j) = beta1_ * mom.m(i, j) + (1.0 - beta1_) * g;
      mom.v(i, j) = beta2_ * mom.v(i, j) + (1.0 - beta2_) * g * g;
      const double m_hat = mom.m(i, j) / bc1;
      const double v_hat = mom.v(i, j) / bc2;
      param(i, j) -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace rasa
