#ifndef RASA_ML_ADAM_H_
#define RASA_ML_ADAM_H_

#include <unordered_map>

#include "linalg/matrix.h"

namespace rasa {

/// Adam optimizer (Kingma & Ba). Keeps first/second-moment state per
/// parameter matrix, keyed by the parameter's address, so one optimizer can
/// drive a whole model. Call NextStep() once per optimization step, then
/// Update() for each parameter.
class AdamOptimizer {
 public:
  explicit AdamOptimizer(double learning_rate = 1e-2, double beta1 = 0.9,
                         double beta2 = 0.999, double epsilon = 1e-8)
      : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {}

  void NextStep() { ++t_; }

  /// Applies one Adam update of `param` using `grad` (same shape).
  void Update(Matrix& param, const Matrix& grad);

  int step() const { return t_; }

 private:
  struct Moments {
    Matrix m;
    Matrix v;
  };
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  int t_ = 0;
  std::unordered_map<const Matrix*, Moments> state_;
};

}  // namespace rasa

#endif  // RASA_ML_ADAM_H_
