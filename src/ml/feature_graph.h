#ifndef RASA_ML_FEATURE_GRAPH_H_
#define RASA_ML_FEATURE_GRAPH_H_

#include "graph/affinity_graph.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace rasa {

/// The classifier input of Definition 2: a graph with per-vertex features.
/// `a_hat` is the symmetrically normalized adjacency with self-loops,
/// D^{-1/2} (A + I) D^{-1/2}, stored sparse (CSR, ascending columns): the
/// GCN layers cost O(nnz * f) instead of O(n^2 * f) and the storage no
/// longer squares with the subproblem size. `features` is n x f.
struct FeatureGraph {
  CsrMatrix a_hat;
  Matrix features;

  int num_vertices() const { return features.rows(); }
  int feature_dim() const { return features.cols(); }
};

/// Builds the normalized adjacency for a weighted graph plus the caller's
/// feature matrix (must have graph.num_vertices() rows).
FeatureGraph MakeFeatureGraph(const AffinityGraph& graph, Matrix features);

}  // namespace rasa

#endif  // RASA_ML_FEATURE_GRAPH_H_
