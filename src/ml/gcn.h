#ifndef RASA_ML_GCN_H_
#define RASA_ML_GCN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "linalg/matrix.h"
#include "ml/adam.h"
#include "ml/feature_graph.h"

namespace rasa {

/// The graph classifier of §IV-D1: two GCN layers with ReLU
/// (H_{l+1} = ReLU(A_hat H_l W_l + b_l)), mean-pooling graph readout, and a
/// linear layer with softmax over the labels. Trained by backpropagation
/// with Adam on single-graph batches.
class GcnClassifier {
 public:
  GcnClassifier() = default;
  GcnClassifier(int in_dim, int hidden_dim, int num_classes, uint64_t seed);

  /// Class probabilities, shape 1 x num_classes.
  Matrix Forward(const FeatureGraph& graph) const;
  /// argmax of Forward.
  int Predict(const FeatureGraph& graph) const;

  /// One SGD step on (graph, label); returns the cross-entropy loss before
  /// the update.
  double TrainStep(const FeatureGraph& graph, int label, AdamOptimizer& opt);

  /// Trains for `epochs` passes over the dataset (order shuffled per epoch
  /// with `seed`); returns final-epoch mean loss.
  double Fit(const std::vector<FeatureGraph>& graphs,
             const std::vector<int>& labels, int epochs, double learning_rate,
             uint64_t seed);

  /// Fraction of correct predictions.
  double Accuracy(const std::vector<FeatureGraph>& graphs,
                  const std::vector<int>& labels) const;

  int in_dim() const { return w0_.rows(); }
  int hidden_dim() const { return w0_.cols(); }
  int num_classes() const { return w_out_.cols(); }

  /// Weight (de)serialization: a small self-describing text format.
  std::string Serialize() const;
  static StatusOr<GcnClassifier> Deserialize(const std::string& text);
  Status SaveToFile(const std::string& path) const;
  static StatusOr<GcnClassifier> LoadFromFile(const std::string& path);

 private:
  Matrix w0_, b0_;     // in -> hidden
  Matrix w1_, b1_;     // hidden -> hidden
  Matrix w_out_, b_out_;  // hidden -> classes
};

/// The MLP-BASED ablation baseline (§V-C): mean of the vertex features fed
/// through one hidden layer + softmax — same capacity, no topology.
class MlpClassifier {
 public:
  MlpClassifier() = default;
  MlpClassifier(int in_dim, int hidden_dim, int num_classes, uint64_t seed);

  Matrix Forward(const Matrix& mean_features) const;  // 1 x in_dim input
  int Predict(const Matrix& mean_features) const;
  double TrainStep(const Matrix& mean_features, int label, AdamOptimizer& opt);
  double Fit(const std::vector<Matrix>& inputs, const std::vector<int>& labels,
             int epochs, double learning_rate, uint64_t seed);
  double Accuracy(const std::vector<Matrix>& inputs,
                  const std::vector<int>& labels) const;

  std::string Serialize() const;
  static StatusOr<MlpClassifier> Deserialize(const std::string& text);
  Status SaveToFile(const std::string& path) const;
  static StatusOr<MlpClassifier> LoadFromFile(const std::string& path);

 private:
  Matrix w0_, b0_;
  Matrix w_out_, b_out_;
};

}  // namespace rasa

#endif  // RASA_ML_GCN_H_
