#ifndef RASA_COMMON_THREAD_POOL_H_
#define RASA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace rasa {

class Counter;
class Histogram;

/// Fixed-size worker pool with per-worker work-stealing deques.
///
/// Tasks submitted from outside the pool land on a shared injection queue;
/// tasks submitted from inside a worker are pushed onto that worker's own
/// deque (LIFO for the owner, so nested fan-out stays cache-hot). Idle
/// workers drain their own deque first, then the injection queue, then steal
/// from the back of a sibling's deque. All queues are mutex-protected (no
/// lock-free tricks), which keeps the pool small and TSan-clean.
///
/// Deadlines stay cooperative: the pool never cancels a task, callers pass a
/// `Deadline` into the task and the task checks it (the same contract every
/// anytime solver in this repo already follows).
class ThreadPool {
 public:
  /// Creates `num_threads` workers. Values < 1 are clamped to 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// The machine's hardware concurrency (>= 1).
  static int DefaultNumThreads();

  /// Schedules `fn` and returns a future for its result. Safe to call from
  /// inside pool tasks (nested submissions go to the caller's own deque).
  template <typename F, typename R = std::invoke_result_t<F>>
  std::future<R> Submit(F&& fn) {
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Schedule([task]() { (*task)(); });
    return future;
  }

  /// Runs fn(0), ..., fn(n - 1) across the pool and blocks until all calls
  /// have finished. The calling thread helps execute pool tasks while it
  /// waits, so ParallelFor composes with nested ParallelFor calls and never
  /// deadlocks on a saturated pool. Rethrows the first task exception.
  void ParallelFor(int n, const std::function<void(int)>& fn);

 private:
  // One worker's deque. The owner pushes/pops at the back; thieves take
  // from the front (FIFO steal order keeps stolen tasks coarse).
  struct WorkDeque {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void Schedule(std::function<void()> task);
  void WorkerLoop(int self);
  // Pops one task for worker `self` (-1 for an external helper thread);
  // returns false when no task is available anywhere.
  bool TryAcquireTask(int self, std::function<void()>& out);

  std::vector<std::unique_ptr<WorkDeque>> deques_;
  WorkDeque injection_;  // external submissions
  std::vector<std::thread> workers_;

  // Observability (cached registry handles; observation-only, see
  // common/metrics.h). threadpool.queue_depth samples the pending count at
  // every Schedule; threadpool.idle_seconds records each worker sleep.
  Counter* tasks_metric_ = nullptr;
  Counter* steals_metric_ = nullptr;
  Histogram* queue_depth_metric_ = nullptr;
  Histogram* idle_metric_ = nullptr;

  // Sleep/wake machinery: pending_ counts queued-but-unstarted tasks.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  long pending_ = 0;
  bool stopping_ = false;
};

}  // namespace rasa

#endif  // RASA_COMMON_THREAD_POOL_H_
