#ifndef RASA_COMMON_STATUS_H_
#define RASA_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace rasa {

// Canonical error codes, modeled after absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kDeadlineExceeded = 8,
  kResourceExhausted = 9,
  kInfeasible = 10,   // Optimization model has no feasible solution.
  kUnbounded = 11,    // Optimization model is unbounded.
};

/// Returns a human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result used throughout the library instead
/// of exceptions. Cheap to copy in the OK case (no message allocated).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE_NAME: message".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors, mirroring absl.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status DeadlineExceededError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InfeasibleError(std::string message);
Status UnboundedError(std::string message);

// Propagates a non-OK status to the caller.
#define RASA_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::rasa::Status _status = (expr);                \
    if (!_status.ok()) return _status;              \
  } while (false)

}  // namespace rasa

#endif  // RASA_COMMON_STATUS_H_
