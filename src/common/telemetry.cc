#include "common/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/json_writer.h"
#include "common/strings.h"

namespace rasa {

// ---------------------------------------------------------------------------
// TimeSeries / TimeSeriesStore
// ---------------------------------------------------------------------------

TimeSeries::TimeSeries(int capacity)
    : buffer_(static_cast<size_t>(std::max(1, capacity))) {}

void TimeSeries::Append(double value) {
  buffer_[head_] = value;
  head_ = (head_ + 1) % buffer_.size();
  if (size_ < buffer_.size()) ++size_;
  ++total_;
}

double TimeSeries::At(int i) const {
  if (i < 0 || i >= static_cast<int>(size_)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  // Oldest retained point sits at head_ once the ring wrapped, at 0 before.
  const size_t oldest = size_ == buffer_.size() ? head_ : 0;
  return buffer_[(oldest + static_cast<size_t>(i)) % buffer_.size()];
}

double TimeSeries::Latest() const {
  if (size_ == 0) return std::numeric_limits<double>::quiet_NaN();
  return buffer_[(head_ + buffer_.size() - 1) % buffer_.size()];
}

std::vector<double> TimeSeries::Values() const {
  std::vector<double> out;
  out.reserve(size_);
  for (int i = 0; i < static_cast<int>(size_); ++i) out.push_back(At(i));
  return out;
}

double TimeSeries::WindowMean(int window) const {
  if (size_ == 0 || window <= 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const int n = std::min(window, static_cast<int>(size_));
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += At(static_cast<int>(size_) - 1 - i);
  return sum / static_cast<double>(n);
}

TimeSeriesStore::TimeSeriesStore(int capacity_per_series)
    : capacity_(std::max(1, capacity_per_series)) {}

void TimeSeriesStore::Append(const std::string& name, double value) {
  auto& slot = series_[name];
  if (!slot) slot = std::make_unique<TimeSeries>(capacity_);
  slot->Append(value);
}

const TimeSeries* TimeSeriesStore::Find(const std::string& name) const {
  const auto it = series_.find(name);
  return it != series_.end() ? it->second.get() : nullptr;
}

std::vector<std::string> TimeSeriesStore::Names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, series] : series_) out.push_back(name);
  return out;  // std::map iterates sorted
}

// ---------------------------------------------------------------------------
// SloTracker
// ---------------------------------------------------------------------------

const char* SloAlertStateName(SloAlertState state) {
  switch (state) {
    case SloAlertState::kOk:
      return "ok";
    case SloAlertState::kFastBurn:
      return "fast-burn";
    case SloAlertState::kSlowBurn:
      return "slow-burn";
    case SloAlertState::kPage:
      return "page";
  }
  return "?";
}

SloTracker::SloTracker(std::vector<SloObjective> objectives)
    : objectives_(std::move(objectives)) {
  violations_.reserve(objectives_.size());
  for (const SloObjective& objective : objectives_) {
    violations_.emplace_back(std::max(1, objective.slow_window));
  }
}

std::vector<SloStatus> SloTracker::Evaluate(const TimeSeriesStore& store) {
  std::vector<SloStatus> out;
  out.reserve(objectives_.size());
  for (size_t i = 0; i < objectives_.size(); ++i) {
    const SloObjective& objective = objectives_[i];
    SloStatus status;
    status.name = objective.name;
    const TimeSeries* series = store.Find(objective.series);
    if (series != nullptr && series->size() > 0) {
      status.value = series->Latest();
      status.has_value = std::isfinite(status.value);
    }
    if (status.has_value) {
      status.violated = objective.comparison == SloComparison::kLessThan
                            ? !(status.value < objective.threshold)
                            : !(status.value > objective.threshold);
    }
    // A cycle with no signal burns nothing: record a non-violation so the
    // windows keep sliding instead of freezing on the last known state.
    violations_[i].Append(status.violated ? 1.0 : 0.0);

    const double budget = std::max(1e-12, objective.budget_fraction);
    const double fast_share =
        violations_[i].WindowMean(std::max(1, objective.fast_window));
    const double slow_share =
        violations_[i].WindowMean(std::max(1, objective.slow_window));
    status.fast_burn_rate = std::isnan(fast_share) ? 0.0 : fast_share / budget;
    status.slow_burn_rate = std::isnan(slow_share) ? 0.0 : slow_share / budget;

    const bool fast_hot =
        status.fast_burn_rate >= objective.fast_burn_threshold;
    const bool slow_hot =
        status.slow_burn_rate >= objective.slow_burn_threshold;
    status.alert = fast_hot && slow_hot ? SloAlertState::kPage
                   : fast_hot           ? SloAlertState::kFastBurn
                   : slow_hot           ? SloAlertState::kSlowBurn
                                        : SloAlertState::kOk;
    out.push_back(std::move(status));
  }
  return out;
}

// ---------------------------------------------------------------------------
// EwmaAnomalyDetector
// ---------------------------------------------------------------------------

EwmaAnomalyDetector::EwmaAnomalyDetector(AnomalyDetectorOptions options)
    : options_(options) {
  options_.alpha = std::min(1.0, std::max(1e-6, options_.alpha));
  options_.warmup = std::max(1, options_.warmup);
}

AnomalyStatus EwmaAnomalyDetector::Update(double x) {
  AnomalyStatus status;
  if (!std::isfinite(x)) return status;  // never folded in, never flagged
  if (points_ == 0) {
    mean_ = x;
    variance_ = 0.0;
    ++points_;
    return status;
  }
  const double std_dev =
      std::max(options_.min_std, std::sqrt(std::max(0.0, variance_)));
  status.ewma = mean_;
  status.ewm_std = std_dev;
  status.zscore = (x - mean_) / std_dev;
  status.anomalous = points_ >= options_.warmup &&
                     std::abs(status.zscore) > options_.z_threshold;

  // Fold in, clamping an anomalous deviation to the threshold so a single
  // spike shifts the baseline no more than a just-below-threshold point
  // would (otherwise the spike itself would mask a following regression).
  double folded = x;
  if (status.anomalous) {
    const double limit = options_.z_threshold * std_dev;
    folded = mean_ + (status.zscore > 0.0 ? limit : -limit);
  }
  const double a = options_.alpha;
  const double delta = folded - mean_;
  mean_ += a * delta;
  variance_ = (1.0 - a) * (variance_ + a * delta * delta);
  ++points_;
  return status;
}

// ---------------------------------------------------------------------------
// TelemetryPipeline
// ---------------------------------------------------------------------------

std::vector<SloObjective> DefaultSloObjectives() {
  // Thresholds in the production model's normalized units: rpc latency 1.0
  // / ipc 0.12, rpc error 1% / ipc 0.08%. The latency objective is on the
  // *median*: p99 is pinned at the rpc latency whenever even 1% of traffic
  // crosses machines, so it cannot distinguish placements, while p50 < 0.5
  // holds exactly when most traffic is localized. A placement that
  // localizes the heavy pairs meets both objectives; a drifted or
  // rolled-back cluster violates them.
  SloObjective latency;
  latency.name = "latency_p50";
  latency.series = "latency_p50";
  latency.comparison = SloComparison::kLessThan;
  latency.threshold = 0.5;
  SloObjective errors;
  errors.name = "error_rate";
  errors.series = "error_rate";
  errors.comparison = SloComparison::kLessThan;
  errors.threshold = 0.0095;
  return {latency, errors};
}

TelemetryPipeline::TelemetryPipeline(const TelemetryOptions& options)
    : options_(options),
      store_(options.series_capacity),
      slo_(options.objectives.empty() ? DefaultSloObjectives()
                                      : options.objectives),
      cost_detector_(options.anomaly),
      gap_detector_(options.anomaly) {}

CycleTelemetry TelemetryPipeline::RecordCycle(const CycleSample& sample) {
  store_.Append("cycle_seconds", sample.seconds);
  store_.Append("gained_affinity", sample.gained_affinity);
  store_.Append("optimality_gap", sample.optimality_gap);
  store_.Append("migration_truncation", sample.migration_truncation);
  store_.Append("dirty_subproblems",
                static_cast<double>(sample.dirty_subproblems));
  store_.Append("reused_subproblems",
                static_cast<double>(sample.reused_subproblems));
  store_.Append("lp_pivots", sample.lp_pivots);
  store_.Append("refactorizations", sample.refactorizations);
  store_.Append("latency_p50", sample.latency_p50);
  store_.Append("latency_p95", sample.latency_p95);
  store_.Append("latency_p99", sample.latency_p99);
  store_.Append("error_rate", sample.error_rate);

  CycleTelemetry derived;
  derived.populated = true;
  derived.slo = slo_.Evaluate(store_);
  derived.cost = cost_detector_.Update(sample.seconds);
  derived.gap = gap_detector_.Update(sample.optimality_gap);
  return derived;
}

namespace {

void AppendAnomalyJson(JsonWriter& w, const AnomalyStatus& status) {
  w.BeginObject();
  w.Key("anomalous").Value(status.anomalous);
  w.Key("zscore").Value(status.zscore);
  w.Key("ewma").Value(status.ewma);
  w.EndObject();
}

}  // namespace

std::string TelemetryPipeline::JournalLine(const CycleSample& sample,
                                           const CycleTelemetry& derived) {
  JsonWriter w;
  w.BeginObject();
  w.Key("v").Value(1);
  w.Key("cycle").Value(sample.cycle);
  w.Key("seconds").Value(sample.seconds);
  w.Key("affinity_before").Value(sample.affinity_before);
  w.Key("gained_affinity").Value(sample.gained_affinity);
  w.Key("optimality_gap").Value(sample.optimality_gap);
  w.Key("migration_truncation").Value(sample.migration_truncation);
  w.Key("dirty_subproblems").Value(sample.dirty_subproblems);
  w.Key("reused_subproblems").Value(sample.reused_subproblems);
  w.Key("lp_pivots").Value(sample.lp_pivots);
  w.Key("refactorizations").Value(sample.refactorizations);
  w.Key("latency_p50").Value(sample.latency_p50);
  w.Key("latency_p95").Value(sample.latency_p95);
  w.Key("latency_p99").Value(sample.latency_p99);
  w.Key("error_rate").Value(sample.error_rate);
  w.Key("executed").Value(sample.executed);
  w.Key("rolled_back").Value(sample.rolled_back);
  w.Key("solver_failed").Value(sample.solver_failed);
  w.Key("slo").BeginArray();
  for (const SloStatus& status : derived.slo) {
    w.BeginObject();
    w.Key("name").Value(status.name);
    if (status.has_value) w.Key("value").Value(status.value);
    w.Key("violated").Value(status.violated);
    w.Key("fast_burn").Value(status.fast_burn_rate);
    w.Key("slow_burn").Value(status.slow_burn_rate);
    w.Key("alert").Value(SloAlertStateName(status.alert));
    w.EndObject();
  }
  w.EndArray();
  w.Key("cost_anomaly");
  AppendAnomalyJson(w, derived.cost);
  w.Key("gap_anomaly");
  AppendAnomalyJson(w, derived.gap);
  w.EndObject();
  return w.str();
}

// ---------------------------------------------------------------------------
// OpenMetrics exposition
// ---------------------------------------------------------------------------

std::string OpenMetricsName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

namespace {

// OpenMetrics floats: full round-trip precision, +Inf spelled the
// OpenMetrics way.
std::string OmDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  return StrFormat("%.17g", v);
}

}  // namespace

std::string OpenMetricsText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string om = OpenMetricsName(name);
    out += "# TYPE " + om + " counter\n";
    out += om + "_total " + StrFormat("%llu", (unsigned long long)value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string om = OpenMetricsName(name);
    out += "# TYPE " + om + " gauge\n";
    out += om + " " + OmDouble(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string om = OpenMetricsName(name);
    out += "# TYPE " + om + " histogram\n";
    // Cumulative buckets, as the exposition format requires; the registry
    // keeps per-bucket counts, so accumulate while emitting. Empty buckets
    // are skipped except the mandatory +Inf bucket.
    uint64_t cumulative = 0;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      cumulative += h.buckets[b];
      const bool last = b == Histogram::kNumBuckets - 1;
      if (h.buckets[b] == 0 && !last) continue;
      out += om + "_bucket{le=\"" + OmDouble(Histogram::BucketUpperBound(b)) +
             "\"} " + StrFormat("%llu", (unsigned long long)cumulative) + "\n";
    }
    out += om + "_sum " + OmDouble(h.sum) + "\n";
    out += om + "_count " + StrFormat("%llu", (unsigned long long)h.count) +
           "\n";
  }
  out += "# EOF\n";
  return out;
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& e : events) {
    if (e.duration_seconds < 0.0) continue;  // still open
    w.BeginObject();
    w.Key("ph").Value("X");
    w.Key("ts").Value(1e6 * e.start_seconds);
    w.Key("dur").Value(1e6 * e.duration_seconds);
    w.Key("pid").Value(1);
    w.Key("tid").Value(e.tid);
    w.Key("name").Value(e.name);
    w.Key("args").BeginObject();
    w.Key("id").Value(static_cast<long>(e.id));
    w.Key("parent").Value(static_cast<long>(e.parent));
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").Value("ms");
  w.EndObject();
  return w.str();
}

// ---------------------------------------------------------------------------
// Strict JSON reader
// ---------------------------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    SkipSpace();
    JsonValue value;
    RASA_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return InvalidArgumentError(
        StrFormat("JSON parse error at byte %zu: %s", pos_, what.c_str()));
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ConsumeWord(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Error(StrFormat("expected '%s'", word));
      }
      ++pos_;
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return ConsumeWord("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return ConsumeWord("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return ConsumeWord("null");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      std::string key;
      RASA_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipSpace();
      JsonValue value;
      RASA_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipSpace();
      JsonValue value;
      RASA_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipSpace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // The writers only escape control characters, so a compact
          // Latin-1 decoding covers every code point they emit; anything
          // wider passes through as UTF-8 bytes.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&]() {
      size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    const size_t integer_start = pos_;
    if (digits() == 0) return Error("expected a number");
    // JSON forbids leading zeros: "0" is fine, "01" is not.
    if (pos_ - integer_start > 1 && text_[integer_start] == '0') {
      pos_ = integer_start;
      return Error("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) return Error("expected digits after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) return Error("expected exponent digits");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.c_str() + start, nullptr);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace rasa
