#include "common/durable_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/strings.h"

namespace rasa {
namespace {

constexpr char kVersionedMagic[] = "rasa-durable-v1";
constexpr char kRecordMagic[] = "@rec";

// Table-driven CRC-32 (IEEE 802.3 polynomial, reflected form 0xedb88320).
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

Status Errno(const char* op, const std::string& path) {
  return InternalError(
      StrFormat("%s %s: %s", op, path.c_str(), std::strerror(errno)));
}

// fsyncs the directory containing `path` so the rename itself is durable.
// Best-effort: some filesystems reject O_RDONLY on directories.
void FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

Status WriteAllAndFsync(int fd, const std::string& contents,
                        const std::string& path) {
  size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n = ::write(fd, contents.data() + written,
                              contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) return Errno("fsync", path);
  return Status::OK();
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32(const std::string& data, uint32_t seed) {
  return Crc32(data.data(), data.size(), seed);
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return NotFoundError(StrFormat("cannot open %s", path.c_str()));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = Errno("read", path);
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  Status st = WriteAllAndFsync(fd, contents, tmp);
  if (::close(fd) != 0 && st.ok()) st = Errno("close", tmp);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rename_st = Errno("rename", tmp);
    ::unlink(tmp.c_str());
    return rename_st;
  }
  FsyncParentDir(path);
  return Status::OK();
}

Status EnsureDirectory(const std::string& dir) {
  if (dir.empty()) return InvalidArgumentError("empty directory path");
  std::string prefix;
  size_t pos = 0;
  while (pos <= dir.size()) {
    const size_t slash = dir.find('/', pos);
    prefix = slash == std::string::npos ? dir : dir.substr(0, slash);
    pos = slash == std::string::npos ? dir.size() + 1 : slash + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", prefix);
    }
  }
  return Status::OK();
}

Status WriteVersionedFile(const std::string& path,
                          const std::string& payload) {
  const std::string framed =
      StrFormat("%s %zu %08x\n", kVersionedMagic, payload.size(),
                Crc32(payload)) +
      payload;
  return AtomicWriteFile(path, framed);
}

StatusOr<std::string> ReadVersionedFile(const std::string& path) {
  StatusOr<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& text = *contents;
  const size_t newline = text.find('\n');
  if (newline == std::string::npos) {
    return FailedPreconditionError(
        StrFormat("%s: torn header (no newline)", path.c_str()));
  }
  const std::string header = text.substr(0, newline);
  char magic[32];
  size_t declared_len = 0;
  unsigned declared_crc = 0;
  char crc_text[16];
  if (std::sscanf(header.c_str(), "%31s %zu %15s", magic, &declared_len,
                  crc_text) != 3 ||
      std::strcmp(magic, kVersionedMagic) != 0) {
    return FailedPreconditionError(
        StrFormat("%s: bad durable-file header", path.c_str()));
  }
  if (std::strlen(crc_text) != 8 ||
      std::sscanf(crc_text, "%8x", &declared_crc) != 1) {
    return FailedPreconditionError(
        StrFormat("%s: torn checksum field", path.c_str()));
  }
  const std::string payload = text.substr(newline + 1);
  if (payload.size() != declared_len) {
    return FailedPreconditionError(
        StrFormat("%s: torn payload (%zu of %zu bytes)", path.c_str(),
                  payload.size(), declared_len));
  }
  if (Crc32(payload) != declared_crc) {
    return FailedPreconditionError(
        StrFormat("%s: checksum mismatch", path.c_str()));
  }
  return payload;
}

DurableLogWriter::DurableLogWriter(DurableLogWriter&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

DurableLogWriter& DurableLogWriter::operator=(
    DurableLogWriter&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

DurableLogWriter::~DurableLogWriter() { Close(); }

void DurableLogWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<DurableLogWriter> DurableLogWriter::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("open", path);
  DurableLogWriter writer;
  writer.fd_ = fd;
  writer.path_ = path;
  return writer;
}

Status DurableLogWriter::Append(const std::string& payload) {
  if (fd_ < 0) return FailedPreconditionError("journal is not open");
  const std::string frame =
      StrFormat("%s %zu %08x\n", kRecordMagic, payload.size(),
                Crc32(payload)) +
      payload + "\n";
  return WriteAllAndFsync(fd_, frame, path_);
}

StatusOr<DurableLogContents> ReadDurableLog(const std::string& path) {
  StatusOr<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& text = *contents;
  DurableLogContents out;
  size_t pos = 0;
  auto torn = [&](std::string reason) {
    out.torn_tail = true;
    out.torn_reason = std::move(reason);
    out.valid_bytes = pos;
    return out;
  };
  while (pos < text.size()) {
    const size_t newline = text.find('\n', pos);
    if (newline == std::string::npos) return torn("truncated record header");
    const std::string header = text.substr(pos, newline - pos);
    char magic[16];
    size_t len = 0;
    char crc_text[16];
    unsigned crc = 0;
    if (std::sscanf(header.c_str(), "%15s %zu %15s", magic, &len, crc_text) !=
            3 ||
        std::strcmp(magic, kRecordMagic) != 0) {
      return torn("bad record header");
    }
    if (std::strlen(crc_text) != 8 || std::sscanf(crc_text, "%8x", &crc) != 1) {
      return torn("torn record checksum field");
    }
    const size_t payload_start = newline + 1;
    // Payload plus the trailing newline must be fully present.
    if (payload_start + len + 1 > text.size()) {
      return torn("truncated record payload");
    }
    const std::string payload = text.substr(payload_start, len);
    if (text[payload_start + len] != '\n') {
      return torn("missing record terminator");
    }
    if (Crc32(payload) != crc) return torn("record checksum mismatch");
    out.records.push_back(payload);
    pos = payload_start + len + 1;
  }
  out.valid_bytes = pos;
  return out;
}

}  // namespace rasa
