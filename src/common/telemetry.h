#ifndef RASA_COMMON_TELEMETRY_H_
#define RASA_COMMON_TELEMETRY_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/statusor.h"

namespace rasa {

/// Continuous-operation telemetry (DESIGN.md "Continuous telemetry").
///
/// The metrics registry (common/metrics) answers "what happened since the
/// process started"; this layer answers "what is happening cycle over
/// cycle". A control loop feeds it once per cycle with *deltas* of the
/// registry scrape plus the cycle's own report fields; it maintains bounded
/// ring-buffer time series, evaluates declarative SLOs with multi-window
/// burn rates, and flags regressions with an EWMA + z-score detector.
///
/// Everything here is strictly observation-only, like the metrics layer
/// beneath it: nothing reads a series back into an algorithm, so placements
/// and reports are bit-identical with telemetry on or off at every thread
/// count (asserted by telemetry_determinism_test). The detectors are pure
/// functions of the series contents — two runs that produced the same
/// series produce the same alerts.

// ---------------------------------------------------------------------------
// Ring-buffer time series
// ---------------------------------------------------------------------------

/// Fixed-capacity series of doubles: appends are O(1), the newest
/// `capacity` points are retained, older points fall off the front.
class TimeSeries {
 public:
  explicit TimeSeries(int capacity);

  void Append(double value);

  /// Points currently retained (<= capacity).
  int size() const { return static_cast<int>(size_); }
  int capacity() const { return static_cast<int>(buffer_.size()); }
  /// Points ever appended (>= size once the ring wrapped).
  int64_t total_appended() const { return total_; }

  /// i in [0, size): 0 is the oldest retained point, size()-1 the newest.
  double At(int i) const;
  /// NaN when empty.
  double Latest() const;
  /// Oldest-first copy of the retained window.
  std::vector<double> Values() const;

  /// Mean over the newest min(window, size) points; NaN when empty.
  double WindowMean(int window) const;

 private:
  std::vector<double> buffer_;
  size_t head_ = 0;  // index the next append lands in
  size_t size_ = 0;
  int64_t total_ = 0;
};

/// Name -> TimeSeries map with one shared capacity. Get-or-create on
/// append; iteration order is sorted by name so exports are deterministic.
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(int capacity_per_series = 1024);

  void Append(const std::string& name, double value);
  /// nullptr when the series does not exist.
  const TimeSeries* Find(const std::string& name) const;
  std::vector<std::string> Names() const;  // sorted
  int capacity_per_series() const { return capacity_; }

 private:
  int capacity_;
  std::map<std::string, std::unique_ptr<TimeSeries>> series_;
};

// ---------------------------------------------------------------------------
// SLO objectives with multi-window burn-rate alerting
// ---------------------------------------------------------------------------

enum class SloComparison { kLessThan, kGreaterThan };

/// One declarative objective over a named series, e.g.
///   {name: "latency_p99", series: "latency_p99", kLessThan, 0.95}.
/// A cycle violates the objective when its series value fails the
/// comparison. The violation history drives two burn-rate windows (the SRE
/// fast/slow pattern): burn = (violating share of the window) /
/// budget_fraction, so burn 1.0 consumes the error budget exactly at the
/// sustainable rate and burn >= 1/budget_fraction means every cycle burns.
struct SloObjective {
  std::string name;    // objective label (shown in alerts and the journal)
  std::string series;  // series the per-cycle value is read from
  SloComparison comparison = SloComparison::kLessThan;
  double threshold = 0.0;
  /// Error budget: tolerated violating-cycle fraction over the long run.
  double budget_fraction = 0.01;
  int fast_window = 6;    // cycles (e.g. the last 3 hours at 30 min/cycle)
  int slow_window = 36;   // cycles (e.g. the last 18 hours)
  /// Alert thresholds on the burn rates (SRE handbook defaults: the fast
  /// window pages on a 14.4x burn — budget gone in ~2 days at 1% — and the
  /// slow window confirms a sustained 6x burn).
  double fast_burn_threshold = 14.4;
  double slow_burn_threshold = 6.0;
};

/// Alert ladder: kPage requires BOTH windows to burn above their
/// thresholds (the multi-window AND that keeps one-cycle blips from
/// paging); a single hot window reports which one.
enum class SloAlertState { kOk, kFastBurn, kSlowBurn, kPage };

const char* SloAlertStateName(SloAlertState state);

/// Per-cycle evaluation result of one objective.
struct SloStatus {
  std::string name;
  /// The series value this cycle; NaN (and has_value false) when the
  /// series is missing or empty — a missing signal never counts as a
  /// violation, it is surfaced as has_value == false instead.
  double value = std::numeric_limits<double>::quiet_NaN();
  bool has_value = false;
  bool violated = false;  // this cycle
  double fast_burn_rate = 0.0;
  double slow_burn_rate = 0.0;
  SloAlertState alert = SloAlertState::kOk;
};

/// Evaluates a fixed set of objectives once per cycle against a
/// TimeSeriesStore, carrying each objective's violation history in its own
/// ring buffer (sized to the slow window).
class SloTracker {
 public:
  explicit SloTracker(std::vector<SloObjective> objectives);

  /// Call exactly once per cycle, after the cycle's series points were
  /// appended. Statuses come back in objective order.
  std::vector<SloStatus> Evaluate(const TimeSeriesStore& store);

  const std::vector<SloObjective>& objectives() const { return objectives_; }

 private:
  std::vector<SloObjective> objectives_;
  std::vector<TimeSeries> violations_;  // 1.0 = violated, aligned by index
};

// ---------------------------------------------------------------------------
// EWMA + z-score anomaly detection
// ---------------------------------------------------------------------------

struct AnomalyDetectorOptions {
  /// EWMA smoothing factor for the running mean and variance.
  double alpha = 0.25;
  /// |x - ewma| / std above this flags the point.
  double z_threshold = 3.5;
  /// Points consumed before any flagging (the baseline warm-up).
  int warmup = 5;
  /// Variance floor: series that sit at an exact constant would otherwise
  /// flag the first 1-ulp wiggle.
  double min_std = 1e-9;
};

struct AnomalyStatus {
  bool anomalous = false;
  double zscore = 0.0;
  double ewma = 0.0;  // mean *before* folding the current point in
  double ewm_std = 0.0;
};

/// Streaming detector: Update(x) returns the verdict for x and then folds
/// x into the running mean/variance (anomalous points are still folded in,
/// with their deviation clamped to the threshold so one spike does not
/// blind the detector to the next). Deterministic: the verdict sequence is
/// a pure function of the input sequence.
class EwmaAnomalyDetector {
 public:
  explicit EwmaAnomalyDetector(AnomalyDetectorOptions options = {});

  AnomalyStatus Update(double x);
  int points_seen() const { return points_; }

 private:
  AnomalyDetectorOptions options_;
  double mean_ = 0.0;
  double variance_ = 0.0;
  int points_ = 0;
};

// ---------------------------------------------------------------------------
// Per-cycle pipeline: series feed + SLO + anomaly + journal record
// ---------------------------------------------------------------------------

/// Flat per-cycle sample the control loop hands to the pipeline (the
/// workflow builds it from CycleReport + the registry delta; keeping it
/// flat here keeps common/ free of sim/ types).
struct CycleSample {
  int cycle = 0;
  double seconds = 0.0;
  double affinity_before = 0.0;
  double gained_affinity = 0.0;
  double optimality_gap = 0.0;
  double migration_truncation = 0.0;
  int dirty_subproblems = 0;
  int reused_subproblems = 0;
  /// Per-cycle registry deltas (not cumulative totals).
  double lp_pivots = 0.0;
  double refactorizations = 0.0;
  /// Deterministic request-latency model quantiles of the live placement
  /// (normalized units; see EstimateTrafficQuantiles in sim/workflow.h).
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double error_rate = 0.0;
  bool executed = false;
  bool rolled_back = false;
  bool solver_failed = false;
};

/// What the pipeline derived for one cycle; attached to CycleReport so
/// report consumers see alert states without re-deriving them.
struct CycleTelemetry {
  bool populated = false;
  std::vector<SloStatus> slo;
  /// Anomaly verdicts on the cycle-cost (seconds) and optimality-gap
  /// series. Cost z-scores depend on wall-clock timings; determinism
  /// comparisons must strip them like any other timing field.
  AnomalyStatus cost;
  AnomalyStatus gap;
};

struct TelemetryOptions {
  bool enabled = false;
  int series_capacity = 1024;
  /// Objectives evaluated per cycle; empty selects DefaultSloObjectives().
  std::vector<SloObjective> objectives;
  AnomalyDetectorOptions anomaly;
};

/// The stock objectives: median request latency and modeled error rate of
/// the placement latency model, thresholds sized to the production
/// simulator's normalized units (rpc latency 1.0, rpc error 1%).
std::vector<SloObjective> DefaultSloObjectives();

/// Series names the pipeline maintains (one journal column each).
inline constexpr const char* kTelemetrySeriesNames[] = {
    "cycle_seconds",      "gained_affinity",    "optimality_gap",
    "migration_truncation", "dirty_subproblems", "reused_subproblems",
    "lp_pivots",          "refactorizations",   "latency_p50",
    "latency_p95",        "latency_p99",        "error_rate",
};

class TelemetryPipeline {
 public:
  explicit TelemetryPipeline(const TelemetryOptions& options);

  /// Feeds one completed cycle: appends every series point, evaluates the
  /// SLOs, updates the anomaly detectors, and returns the derived verdicts.
  CycleTelemetry RecordCycle(const CycleSample& sample);

  /// One JSONL journal line (no trailing newline) for the cycle: the
  /// sample, the SLO statuses, and the anomaly verdicts, schema-versioned
  /// ("v": 1). Stable key order.
  static std::string JournalLine(const CycleSample& sample,
                                 const CycleTelemetry& derived);

  const TimeSeriesStore& store() const { return store_; }

 private:
  TelemetryOptions options_;
  TimeSeriesStore store_;
  SloTracker slo_;
  EwmaAnomalyDetector cost_detector_;
  EwmaAnomalyDetector gap_detector_;
};

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// OpenMetrics text exposition of a registry scrape. Metric names are
/// sanitized to [a-zA-Z0-9_:] (dots become underscores); counters get the
/// `_total` suffix and `# TYPE ... counter`, gauges `gauge`, histograms the
/// cumulative `_bucket{le="..."}` / `_sum` / `_count` triplet. Ends with
/// the mandatory `# EOF` line.
std::string OpenMetricsText(const MetricsSnapshot& snapshot);

/// Sanitized OpenMetrics metric name (exposed for the round-trip test).
std::string OpenMetricsName(const std::string& name);

/// Chrome trace-event JSON (the object form: {"traceEvents": [...]},
/// loadable by Perfetto / chrome://tracing). Each completed span becomes a
/// complete event: {"ph": "X", "ts": <µs>, "dur": <µs>, "pid": 1,
/// "tid": <recording thread>, "name": ...,
/// "args": {"id": ..., "parent": ...}}. Open spans are skipped.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

// ---------------------------------------------------------------------------
// Strict JSON reader (for `rasa_cli tail` and the schema tests)
// ---------------------------------------------------------------------------

/// Parsed JSON value tree. Numbers are doubles (the only number form the
/// writers emit); object keys keep insertion order.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member with `key`; nullptr when absent or not an object.
  const JsonValue* Get(const std::string& key) const;
};

/// Strict parse of exactly one JSON document: trailing non-whitespace,
/// unterminated strings, bad escapes, and malformed numbers are all
/// kInvalidArgument with a byte offset. Never crashes on hostile input.
StatusOr<JsonValue> ParseJson(const std::string& text);

}  // namespace rasa

#endif  // RASA_COMMON_TELEMETRY_H_
