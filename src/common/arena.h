#ifndef RASA_COMMON_ARENA_H_
#define RASA_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace rasa {

/// Monotonic chunked bump allocator for per-subproblem solve state (B&B
/// node storage, pricing scratch, partitioner scratch). Allocation is a
/// pointer bump; nothing is freed individually. Reset() destroys owned
/// objects (reverse construction order), rewinds to the first chunk, and
/// keeps that chunk's memory for reuse, so a solver that resets between
/// rounds allocates from the OS once and then recycles.
///
/// Not thread-safe: each solve owns its arena. Objects created with New<T>
/// have their destructors run at Reset()/~Arena; memory obtained through
/// Allocate()/ArenaAllocator is raw and must only hold trivially
/// destructible state (or state whose destructor the caller runs).
class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = size_t{1} << 16;

  explicit Arena(size_t min_chunk_bytes = kDefaultChunkBytes)
      : min_chunk_bytes_(min_chunk_bytes < 64 ? 64 : min_chunk_bytes) {}
  ~Arena() { Reset(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw aligned storage from the current chunk; grows by a fresh chunk
  /// (doubling, capped) when the request does not fit.
  void* Allocate(size_t bytes, size_t alignment) {
    if (bytes == 0) bytes = 1;
    if (!chunks_.empty()) {
      Chunk& chunk = chunks_[active_];
      const uintptr_t base =
          reinterpret_cast<uintptr_t>(chunk.data.get()) + chunk.used;
      const size_t padding = (alignment - base % alignment) % alignment;
      if (chunk.used + padding + bytes <= chunk.size) {
        chunk.used += padding + bytes;
        bytes_used_ += padding + bytes;
        return reinterpret_cast<void*>(base + padding);
      }
      // Later chunks survive a Reset with their capacity; reuse before
      // growing.
      if (active_ + 1 < chunks_.size()) {
        ++active_;
        chunks_[active_].used = 0;
        return Allocate(bytes, alignment);
      }
    }
    // New chunk: double the last size (geometric growth amortizes the
    // vector of chunks), never smaller than the request + worst-case pad.
    const size_t last = chunks_.empty() ? min_chunk_bytes_ / 2
                                        : chunks_.back().size;
    size_t size = last * 2;
    if (size < bytes + alignment) size = bytes + alignment;
    Chunk chunk;
    chunk.data = std::make_unique<unsigned char[]>(size);
    chunk.size = size;
    chunk.used = 0;
    chunks_.push_back(std::move(chunk));
    active_ = chunks_.size() - 1;
    return Allocate(bytes, alignment);
  }

  /// Constructs a T in the arena. Non-trivially-destructible types are
  /// registered and destroyed on Reset() in reverse construction order.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* mem = Allocate(sizeof(T), alignof(T));
    T* object = new (mem) T(std::forward<Args>(args)...);
    if (!std::is_trivially_destructible_v<T>) {
      owned_.push_back(
          {object, [](void* p) { static_cast<T*>(p)->~T(); }});
    }
    return object;
  }

  /// Uninitialized array of a trivially destructible element type.
  template <typename T>
  T* NewArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "NewArray elements are never destroyed");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Destroys owned objects (reverse construction order) and rewinds to
  /// the first chunk. Chunk capacity is retained — a solver that resets
  /// between rounds touches the OS allocator once, then recycles. Memory
  /// is released only on destruction.
  void Reset() {
    for (auto it = owned_.rbegin(); it != owned_.rend(); ++it) {
      it->destroy(it->object);
    }
    owned_.clear();
    for (Chunk& chunk : chunks_) chunk.used = 0;
    active_ = 0;
    bytes_used_ = 0;
  }

  /// Total capacity currently held (all chunks).
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.size;
    return total;
  }
  /// Bytes handed out since the last Reset (including alignment padding).
  size_t bytes_used() const { return bytes_used_; }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
    size_t used = 0;
  };
  struct Owned {
    void* object;
    void (*destroy)(void*);
  };

  size_t min_chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t active_ = 0;
  size_t bytes_used_ = 0;
  std::vector<Owned> owned_;
};

/// STL-compatible allocator over an Arena: containers bump-allocate and
/// deallocate is a no-op (memory returns on Arena::Reset). The arena must
/// outlive every container using it.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t count) {
    return static_cast<T*>(arena_->Allocate(count * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) {}

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ != b.arena_;
  }

 private:
  Arena* arena_;
};

/// Shorthand for the common scratch-vector case.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace rasa

#endif  // RASA_COMMON_ARENA_H_
