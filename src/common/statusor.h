#ifndef RASA_COMMON_STATUSOR_H_
#define RASA_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace rasa {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Accessing the value of a non-OK StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  // Implicit conversions from T and Status make `return value;` and
  // `return SomeError(...);` both work, mirroring absl::StatusOr.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Evaluates `rexpr` (a StatusOr expression); on error returns the status,
// otherwise moves the value into `lhs`.
#define RASA_ASSIGN_OR_RETURN(lhs, rexpr)             \
  RASA_ASSIGN_OR_RETURN_IMPL_(                        \
      RASA_STATUS_MACROS_CONCAT_(_status_or, __LINE__), lhs, rexpr)

#define RASA_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                \
  if (!statusor.ok()) return statusor.status();           \
  lhs = std::move(statusor).value()

#define RASA_STATUS_MACROS_CONCAT_(x, y) RASA_STATUS_MACROS_CONCAT_IMPL_(x, y)
#define RASA_STATUS_MACROS_CONCAT_IMPL_(x, y) x##y

}  // namespace rasa

#endif  // RASA_COMMON_STATUSOR_H_
