#ifndef RASA_COMMON_JSON_WRITER_H_
#define RASA_COMMON_JSON_WRITER_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace rasa {

/// Minimal streaming JSON builder shared by the metrics exporter and the
/// bench result writers. Numbers are emitted unquoted with full round-trip
/// precision (%.17g) so downstream tooling can diff runs bit-exactly;
/// non-finite doubles degrade to null (JSON has no NaN/Inf).
///
/// The writer tracks nesting itself, so callers only sequence
/// BeginObject/Key/Value/EndObject calls; commas are inserted automatically.
class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    Comma();
    out_.push_back('{');
    needs_comma_.push_back(false);
    return *this;
  }
  JsonWriter& EndObject() {
    out_.push_back('}');
    needs_comma_.pop_back();
    return *this;
  }
  JsonWriter& BeginArray() {
    Comma();
    out_.push_back('[');
    needs_comma_.push_back(false);
    return *this;
  }
  JsonWriter& EndArray() {
    out_.push_back(']');
    needs_comma_.pop_back();
    return *this;
  }

  JsonWriter& Key(const std::string& key) {
    Comma();
    out_.push_back('"');
    out_ += Escaped(key);
    out_ += "\": ";
    pending_key_ = true;
    return *this;
  }

  JsonWriter& Value(const std::string& v) {
    Comma();
    out_.push_back('"');
    out_ += Escaped(v);
    out_.push_back('"');
    return *this;
  }
  JsonWriter& Value(const char* v) { return Value(std::string(v)); }
  JsonWriter& Value(double v) {
    Comma();
    if (!std::isfinite(v)) {
      out_ += "null";
      return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    return *this;
  }
  JsonWriter& Value(int v) { return ValueFormatted("%d", v); }
  JsonWriter& Value(long v) { return ValueFormatted("%ld", v); }
  JsonWriter& Value(unsigned long v) { return ValueFormatted("%lu", v); }
  JsonWriter& Value(unsigned long long v) { return ValueFormatted("%llu", v); }
  JsonWriter& Value(bool v) {
    Comma();
    out_ += v ? "true" : "false";
    return *this;
  }

  const std::string& str() const { return out_; }

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        case '\r':
          out += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out.push_back(c);
          }
      }
    }
    return out;
  }

 private:
  template <typename T>
  JsonWriter& ValueFormatted(const char* fmt, T v) {
    Comma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), fmt, v);
    out_ += buf;
    return *this;
  }

  // Emits the separating comma before a sibling value/key; a value directly
  // following its key never takes one.
  void Comma() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!needs_comma_.empty()) {
      if (needs_comma_.back()) out_ += ", ";
      needs_comma_.back() = true;
    }
  }

  std::string out_;
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

}  // namespace rasa

#endif  // RASA_COMMON_JSON_WRITER_H_
