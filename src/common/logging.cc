#include "common/logging.h"

#include <cstdio>

namespace rasa {
namespace {

LogLevel ParseEnvLevel() {
  const char* env = std::getenv("RASA_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  switch (env[0]) {
    case '0':
      return LogLevel::kDebug;
    case '1':
      return LogLevel::kInfo;
    case '2':
      return LogLevel::kWarning;
    case '3':
      return LogLevel::kError;
    default:
      return LogLevel::kWarning;
  }
}

LogLevel& MutableLevel() {
  static LogLevel level = ParseEnvLevel();
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { MutableLevel() = level; }
LogLevel GetLogLevel() { return MutableLevel(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  (void)level_;
}

CheckFailure::CheckFailure(const char* file, int line, const char* condition) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
          << " ";
}

CheckFailure::~CheckFailure() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal
}  // namespace rasa
