#include "common/logging.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <mutex>

#include "common/json_writer.h"

namespace rasa {
namespace {

LogLevel ParseEnvLevel() {
  const char* env = std::getenv("RASA_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  switch (env[0]) {
    case '0':
      return LogLevel::kDebug;
    case '1':
      return LogLevel::kInfo;
    case '2':
      return LogLevel::kWarning;
    case '3':
      return LogLevel::kError;
    default:
      return LogLevel::kWarning;
  }
}

LogLevel& MutableLevel() {
  static LogLevel level = ParseEnvLevel();
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* LevelWord(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

// Global JSONL mirror sink. The writer and its path live behind one mutex;
// records are whole lines, so concurrent emitters interleave per record.
struct JsonlSink {
  std::mutex mu;
  JsonlWriter writer;
  bool env_checked = false;
};

JsonlSink& Sink() {
  static JsonlSink* sink = new JsonlSink();  // leaked, like the registries
  return *sink;
}

void EmitJsonl(LogLevel level, const char* subsystem,
               const std::string& message) {
  JsonlSink& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mu);
  if (!sink.env_checked) {
    sink.env_checked = true;
    const char* env = std::getenv("RASA_LOG_JSONL");
    if (env != nullptr && env[0] != '\0' && !sink.writer.is_open()) {
      sink.writer.Open(env);
    }
  }
  if (!sink.writer.is_open()) return;
  const double ts =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  JsonWriter w;
  w.BeginObject();
  w.Key("ts").Value(ts);
  w.Key("severity").Value(LevelWord(level));
  w.Key("subsystem").Value(subsystem);
  w.Key("message").Value(message);
  w.EndObject();
  sink.writer.Append(w.str());
}

}  // namespace

void SetLogLevel(LogLevel level) { MutableLevel() = level; }
LogLevel GetLogLevel() { return MutableLevel(); }

JsonlWriter::~JsonlWriter() { Close(); }

bool JsonlWriter::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "ab");
  return file_ != nullptr;
}

bool JsonlWriter::Append(const std::string& line) {
  if (file_ == nullptr) return false;
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return false;
  }
  if (std::fputc('\n', file_) == EOF) return false;
  if (std::fflush(file_) != 0) return false;
  return fsync(fileno(file_)) == 0;
}

void JsonlWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void SetLogJsonlPath(const std::string& path) {
  JsonlSink& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mu);
  sink.env_checked = true;  // an explicit path overrides the env variable
  sink.writer.Close();
  if (!path.empty()) sink.writer.Open(path);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), basename_(file), line_(line) {
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename_ = p + 1;
  }
}

LogMessage::~LogMessage() {
  const std::string message = stream_.str();
  std::cerr << "[" << LevelName(level_) << " " << basename_ << ":" << line_
            << "] " << message << "\n";
  EmitJsonl(level_, basename_, message);
}

CheckFailure::CheckFailure(const char* file, int line, const char* condition) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
          << " ";
}

CheckFailure::~CheckFailure() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal
}  // namespace rasa
