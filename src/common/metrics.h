#ifndef RASA_COMMON_METRICS_H_
#define RASA_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rasa {

class JsonWriter;

/// Observability layer (DESIGN.md "Observability").
///
/// Everything here is strictly observation-only: no algorithm reads a
/// metric back, so placements and reports are bit-identical with metrics
/// on/off and at every thread count (asserted by metrics_determinism_test).
///
/// Write paths are lock-free and sharded: counters and histograms keep one
/// cache-line-padded slot per thread shard and only aggregate on scrape, so
/// the parallel subproblem hot path (PR 2) stays uncontended. Registry
/// lookups take a mutex — instrumented call sites cache the returned
/// pointer (function-local static or member), which stays valid forever:
/// the registry never deletes a metric, Reset() only zeroes values.

/// Process-wide metrics switch. Default on; when off every mutation method
/// is a cheap early-return (one relaxed atomic load).
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// Number of write shards per metric (power of two). Threads map onto
/// shards round-robin by creation order; with <= kMetricShards live threads
/// every thread owns its shard exclusively.
inline constexpr int kMetricShards = 16;

/// Stable shard index of the calling thread.
int CurrentShardIndex();

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    shards_[CurrentShardIndex()].value.fetch_add(n,
                                                 std::memory_order_relaxed);
  }
  /// Sum across shards (scrape side).
  uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed log-scale histogram: one underflow bucket below kMinBound, then
/// kLogBuckets power-of-two buckets [kMinBound * 2^i, kMinBound * 2^(i+1)),
/// then one overflow bucket. kMinBound = 1e-6 with 48 octaves covers
/// [1 microsecond, ~78 hours] of latencies and [1, ~2.8e8] of counts with
/// <= 2x relative error — one shape for every metric in the repo.
class Histogram {
 public:
  static constexpr double kMinBound = 1e-6;
  static constexpr int kLogBuckets = 48;
  static constexpr int kNumBuckets = kLogBuckets + 2;  // under/overflow

  void Observe(double value);

  /// Inclusive upper bound of `bucket` ("le" in the JSON export);
  /// +inf for the overflow bucket.
  static double BucketUpperBound(int bucket);
  /// Bucket a value lands in (exposed for tests).
  static int BucketIndex(double value);

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::array<uint64_t, kNumBuckets> buckets{};

    /// Estimated q-quantile (q in [0, 1]) from the log-scale buckets:
    /// linear interpolation inside the bucket the rank lands in, clamped
    /// to the observed [min, max] (so p0 == min and p100 == max exactly;
    /// interior quantiles carry the bucket's <= 2x relative error). NaN
    /// when the histogram is empty.
    double Quantile(double q) const;
  };
  /// Aggregates all shards.
  Snapshot Scrape() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumBuckets> counts{};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Point-in-time aggregate of a whole registry; names are sorted, so two
/// scrapes of identical state serialize identically.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

  /// Appends {"counters": {...}, "gauges": {...}, "histograms": {...}} as
  /// one JSON object value.
  void AppendJson(JsonWriter& w) const;
  std::string ToJson() const;

  /// What happened between `prev` and this scrape of the same registry.
  /// Counters subtract (a counter that shrank — registry Reset between the
  /// scrapes — reports its current value); gauges keep the current value
  /// (the delta of a last-write-wins instantaneous reading is meaningless);
  /// histograms subtract bucket-wise with count and sum, and estimate the
  /// window's min/max from the delta buckets' edges clamped to the
  /// cumulative min/max (exact only when the window's extremes fall in
  /// buckets untouched before `prev`). Metrics absent from `prev` pass
  /// through unchanged; metrics absent from `this` are dropped.
  MetricsSnapshot Diff(const MetricsSnapshot& prev) const;
};

/// Name -> metric map. Get-or-create is mutex-protected (cold path);
/// returned references are stable for the registry's lifetime.
class MetricRegistry {
 public:
  /// The process-wide registry every subsystem reports into. Leaked on
  /// purpose so worker threads may record during static destruction.
  static MetricRegistry& Default();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Scrape() const;
  /// Zeroes every metric's value; never removes registered metrics, so
  /// cached Counter*/Gauge*/Histogram* stay valid.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// One completed trace span. `start_seconds` is relative to the tracer's
/// epoch (construction or last Reset).
struct TraceEvent {
  int64_t id = -1;
  int64_t parent = -1;  // -1 = root
  /// Small stable id of the thread that recorded the span (creation order),
  /// the "tid" of the Chrome trace-event export.
  int tid = 0;
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

/// Hierarchical phase timeline. Spans nest via a per-thread current-span
/// stack; work fanned out to pool workers passes the parent span id
/// explicitly (see TraceSpan's two constructors). Recording is
/// mutex-protected — spans are coarse (phases, subproblems, migration
/// batches), never per-inner-loop.
class Tracer {
 public:
  /// Process-wide tracer, leaked like the default registry.
  static Tracer& Default();

  /// Disabled by default; when disabled Begin returns -1 and spans no-op.
  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Starts a span; parent -1 roots it under the calling thread's current
  /// span (or at the top level). Returns the span id, -1 when disabled.
  int64_t Begin(const std::string& name, int64_t parent = -1);
  void End(int64_t id);

  /// Completed spans, in completion order.
  std::vector<TraceEvent> Events() const;
  void Reset();

  /// Appends the completed spans as a JSON array value.
  void AppendJson(JsonWriter& w) const;
  /// Human-readable indented tree with durations (the --trace output).
  std::string SummaryTree() const;

 private:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;  // id == index
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span handle. Construction begins the span, destruction ends it.
/// A span must begin and end on the same thread.
class TraceSpan {
 public:
  /// Child of the calling thread's current span.
  explicit TraceSpan(const std::string& name)
      : id_(Tracer::Default().Begin(name)) {}
  /// Child of an explicit parent — the cross-thread form: capture
  /// `parent_span.id()` before fanning out, pass it inside the task.
  TraceSpan(const std::string& name, int64_t parent)
      : id_(Tracer::Default().Begin(name, parent)) {}
  ~TraceSpan() { Tracer::Default().End(id_); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Span id for parenting cross-thread children; -1 when tracing is off.
  int64_t id() const { return id_; }

 private:
  int64_t id_;
};

}  // namespace rasa

#endif  // RASA_COMMON_METRICS_H_
