#ifndef RASA_COMMON_STRINGS_H_
#define RASA_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace rasa {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Left-pads with spaces to at least `width` characters.
std::string PadLeft(const std::string& text, size_t width);

/// Right-pads with spaces to at least `width` characters.
std::string PadRight(const std::string& text, size_t width);

}  // namespace rasa

#endif  // RASA_COMMON_STRINGS_H_
