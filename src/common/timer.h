#ifndef RASA_COMMON_TIMER_H_
#define RASA_COMMON_TIMER_H_

#include <chrono>
#include <limits>

namespace rasa {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A point in time by which work must finish. Passed down through solver
/// layers so every anytime algorithm honors the same global budget.
class Deadline {
 public:
  /// Never expires.
  Deadline() : expires_(Clock::time_point::max()) {}

  static Deadline AfterSeconds(double seconds) {
    Deadline d;
    d.expires_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(seconds));
    return d;
  }

  static Deadline Infinite() { return Deadline(); }

  bool Expired() const { return Clock::now() >= expires_; }

  /// Seconds until expiry; +inf for infinite deadlines, <= 0 if expired.
  double RemainingSeconds() const {
    if (expires_ == Clock::time_point::max()) {
      return std::numeric_limits<double>::infinity();
    }
    return std::chrono::duration<double>(expires_ - Clock::now()).count();
  }

  /// The earlier of this deadline and one `seconds` from now.
  Deadline ClampedToSeconds(double seconds) const {
    Deadline other = AfterSeconds(seconds);
    Deadline result;
    result.expires_ = expires_ < other.expires_ ? expires_ : other.expires_;
    return result;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point expires_;
};

}  // namespace rasa

#endif  // RASA_COMMON_TIMER_H_
