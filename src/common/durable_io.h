#ifndef RASA_COMMON_DURABLE_IO_H_
#define RASA_COMMON_DURABLE_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace rasa {

/// Crash-atomic file primitives shared by the snapshot serializer, the
/// workflow checkpointer, the migration write-ahead journal, and the
/// metrics/bench JSON writers (see DESIGN.md "Durability & recovery").
///
/// Two durable shapes are provided:
///   - versioned single-record files (checkpoints, snapshots): written via
///     tmp + fsync + rename so a crash never leaves a half-written file
///     observable at the target path, framed with a magic, a length, and a
///     CRC-32 so a torn write (truncation, bit rot) is detected on read;
///   - append-only logs (the migration journal): each record is framed with
///     a length + CRC-32 header and fsync'd on append, so the reader can
///     classify a trailing partial record as torn and recover every record
///     before it.

/// CRC-32 (IEEE 802.3, reflected) of `data`. `seed` chains incremental
/// computations: Crc32(b, Crc32(a)) == Crc32(a+b).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);
uint32_t Crc32(const std::string& data, uint32_t seed = 0);

/// Reads the whole file into a string. kNotFound when it cannot be opened.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path` crash-atomically: the bytes land in
/// `path.tmp`, are fsync'd, and are renamed over `path` (with a directory
/// fsync), so readers observe either the old file or the complete new one —
/// never a prefix.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

/// Creates `dir` (and missing parents) if absent.
Status EnsureDirectory(const std::string& dir);

/// Writes `payload` as a versioned, checksummed record file (atomically).
/// The frame is `rasa-durable-v1 <len> <crc32-hex8>\n<payload>`.
Status WriteVersionedFile(const std::string& path, const std::string& payload);

/// Reads a file written by WriteVersionedFile, verifying the magic, the
/// declared length, and the CRC. Truncated or corrupt files return
/// kFailedPrecondition (torn write) with a precise reason; a missing file
/// returns kNotFound. Never crashes on hostile input.
StatusOr<std::string> ReadVersionedFile(const std::string& path);

/// Append-only, CRC-framed record log. Each Append writes one frame
/// `@rec <len> <crc32-hex8>\n<payload>\n` and fsyncs before returning, so
/// an acknowledged record survives a crash and a torn trailing frame is
/// detectable. One writer at a time; records are opaque byte strings.
class DurableLogWriter {
 public:
  DurableLogWriter() = default;
  DurableLogWriter(DurableLogWriter&& other) noexcept;
  DurableLogWriter& operator=(DurableLogWriter&& other) noexcept;
  DurableLogWriter(const DurableLogWriter&) = delete;
  DurableLogWriter& operator=(const DurableLogWriter&) = delete;
  ~DurableLogWriter();

  /// Opens `path` for appending (creating it if absent).
  static StatusOr<DurableLogWriter> Open(const std::string& path);

  /// Appends one framed record and fsyncs the file.
  Status Append(const std::string& payload);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  void Close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Result of scanning a durable log: every intact record in order, plus
/// whether the file ended in a torn (truncated or corrupt) frame.
struct DurableLogContents {
  std::vector<std::string> records;
  /// Bytes of the longest valid prefix (where the torn frame starts).
  size_t valid_bytes = 0;
  bool torn_tail = false;
  std::string torn_reason;  // empty unless torn_tail
};

/// Reads all intact records of a log written by DurableLogWriter. A torn
/// tail is reported, not an error — crash recovery treats it as "the last
/// append never happened". kNotFound when the file cannot be opened.
StatusOr<DurableLogContents> ReadDurableLog(const std::string& path);

}  // namespace rasa

#endif  // RASA_COMMON_DURABLE_IO_H_
