#include "common/retry.h"

#include <cmath>

namespace rasa {

bool IsRetryable(StatusCode code) {
  switch (code) {
    case StatusCode::kInternal:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

double BackoffSeconds(const RetryPolicy& policy, int attempt, Rng& rng) {
  const double multiplier = std::max(1.0, policy.backoff_multiplier);
  double base = policy.initial_backoff_seconds *
                std::pow(multiplier, std::max(0, attempt));
  base = std::min(base, policy.max_backoff_seconds);
  const double jitter =
      std::clamp(policy.jitter_fraction, 0.0, 1.0) * rng.NextDouble(-1.0, 1.0);
  return std::max(0.0, base * (1.0 + jitter));
}

}  // namespace rasa
