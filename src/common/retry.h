#ifndef RASA_COMMON_RETRY_H_
#define RASA_COMMON_RETRY_H_

#include <algorithm>
#include <utility>

#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace rasa {

/// Bounded-retry policy with exponential backoff and deterministic jitter.
/// Backoff is *accounted*, not slept: callers run in simulated time (the
/// CronJob executor charges it against its deadline), so retries stay
/// reproducible bit-for-bit from the caller's `Rng`.
struct RetryPolicy {
  /// Total attempts including the first one (1 = no retries).
  int max_attempts = 4;
  double initial_backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 2.0;
  /// Uniform +/- relative jitter applied to each backoff interval.
  double jitter_fraction = 0.25;
  /// Per-attempt deadline handed to the callee; 0 = the overall deadline.
  double attempt_timeout_seconds = 0.0;
};

/// Whether an error is worth retrying. Precondition-style failures mean the
/// command can never succeed as issued (e.g. deleting an absent container);
/// internal/exhaustion errors are treated as transient infrastructure
/// hiccups.
bool IsRetryable(StatusCode code);

/// Backoff before retry number `attempt` (0-based), with jitter drawn from
/// `rng`. Deterministic in (policy, attempt, rng state); never negative.
double BackoffSeconds(const RetryPolicy& policy, int attempt, Rng& rng);

/// Counters accumulated by RetryCall.
struct RetryStats {
  int attempts = 0;
  int retries = 0;
  double backoff_seconds = 0.0;  // simulated time spent backing off
};

/// Runs `fn(attempt_deadline)` until it succeeds, fails permanently, runs
/// out of attempts, or would blow `deadline` (the backoff interval is
/// charged against the remaining time before each retry). Returns the last
/// status observed.
template <typename Fn>
Status RetryCall(const RetryPolicy& policy, const Deadline& deadline, Rng& rng,
                 Fn&& fn, RetryStats* stats = nullptr) {
  RetryStats local;
  RetryStats& st = stats != nullptr ? *stats : local;
  const int max_attempts = std::max(1, policy.max_attempts);
  Status last = InternalError("retry loop made no attempts");
  double charged_backoff = 0.0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (deadline.Expired()) {
      return DeadlineExceededError("retry budget exhausted before attempt");
    }
    const Deadline attempt_deadline =
        policy.attempt_timeout_seconds > 0.0
            ? deadline.ClampedToSeconds(policy.attempt_timeout_seconds)
            : deadline;
    ++st.attempts;
    last = fn(attempt_deadline);
    if (last.ok() || !IsRetryable(last.code())) return last;
    if (attempt + 1 < max_attempts) {
      const double backoff = BackoffSeconds(policy, attempt, rng);
      // Backing off past the deadline would be pointless; give up now.
      charged_backoff += backoff;
      if (charged_backoff >= deadline.RemainingSeconds()) return last;
      st.backoff_seconds += backoff;
      ++st.retries;
    }
  }
  return last;
}

}  // namespace rasa

#endif  // RASA_COMMON_RETRY_H_
