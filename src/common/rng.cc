#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rasa {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextExponential(double rate) {
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

double Rng::NextPareto(double x_min, double alpha) {
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return x_min / std::pow(u, 1.0 / alpha);
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index array.
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) idx[i] = i;
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(NextUint64(static_cast<uint64_t>(n - i)));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork(uint64_t stream) {
  return Rng(Next() ^ (stream * 0x9e3779b97f4a7c15ULL + 0x2545F4914F6CDD1DULL));
}

std::string Rng::SerializeState() const {
  char buf[4 * 16 + 1];
  for (int i = 0; i < 4; ++i) {
    std::snprintf(buf + i * 16, 17, "%016llx",
                  static_cast<unsigned long long>(s_[i]));
  }
  return std::string(buf, 64);
}

Status Rng::RestoreState(const std::string& text) {
  if (text.size() != 64) {
    return InvalidArgumentError("rng state must be 64 hex chars");
  }
  uint64_t words[4];
  for (int i = 0; i < 4; ++i) {
    unsigned long long w = 0;
    char* end = nullptr;
    const std::string part = text.substr(i * 16, 16);
    w = std::strtoull(part.c_str(), &end, 16);
    if (end != part.c_str() + 16) {
      return InvalidArgumentError("malformed rng state");
    }
    words[i] = w;
  }
  for (int i = 0; i < 4; ++i) s_[i] = words[i];
  return Status::OK();
}

}  // namespace rasa
