#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "common/timer.h"

namespace rasa {
namespace {

// Which pool (if any) the current thread is a worker of, and its index.
// Used to route nested submissions onto the submitting worker's own deque
// and to let ParallelFor help from the right deque.
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  int index = -1;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

int ThreadPool::DefaultNumThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int num_threads) {
  MetricRegistry& registry = MetricRegistry::Default();
  tasks_metric_ = &registry.GetCounter("threadpool.tasks_executed");
  steals_metric_ = &registry.GetCounter("threadpool.steals");
  queue_depth_metric_ = &registry.GetHistogram("threadpool.queue_depth");
  idle_metric_ = &registry.GetHistogram("threadpool.idle_seconds");
  const int n = std::max(1, num_threads);
  deques_.reserve(n);
  for (int i = 0; i < n; ++i) deques_.push_back(std::make_unique<WorkDeque>());
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  WorkDeque& target = tls_worker.pool == this
                          ? *deques_[tls_worker.index]
                          : injection_;
  {
    std::lock_guard<std::mutex> lock(target.mu);
    target.tasks.push_back(std::move(task));
  }
  long depth;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    depth = ++pending_;
  }
  wake_cv_.notify_one();
  queue_depth_metric_->Observe(static_cast<double>(depth));
}

bool ThreadPool::TryAcquireTask(int self, std::function<void()>& out) {
  auto pop_back = [&out](WorkDeque& d) {
    std::lock_guard<std::mutex> lock(d.mu);
    if (d.tasks.empty()) return false;
    out = std::move(d.tasks.back());
    d.tasks.pop_back();
    return true;
  };
  auto pop_front = [&out](WorkDeque& d) {
    std::lock_guard<std::mutex> lock(d.mu);
    if (d.tasks.empty()) return false;
    out = std::move(d.tasks.front());
    d.tasks.pop_front();
    return true;
  };

  bool found = false;
  bool stolen = false;
  // Own deque first (LIFO keeps nested fan-out cache-hot), then external
  // submissions, then steal oldest-first from siblings.
  if (self >= 0 && pop_back(*deques_[self])) found = true;
  if (!found && pop_front(injection_)) found = true;
  if (!found) {
    const int n = static_cast<int>(deques_.size());
    for (int off = 1; off <= n && !found; ++off) {
      const int victim = ((self >= 0 ? self : 0) + off) % n;
      if (victim == self) continue;
      if (pop_front(*deques_[victim])) found = stolen = true;
    }
  }
  if (found) {
    tasks_metric_->Increment();
    if (stolen) steals_metric_->Increment();
    std::lock_guard<std::mutex> lock(wake_mu_);
    --pending_;
  }
  return found;
}

void ThreadPool::WorkerLoop(int self) {
  tls_worker = WorkerIdentity{this, self};
  std::function<void()> task;
  for (;;) {
    if (TryAcquireTask(self, task)) {
      task();
      task = nullptr;
      continue;
    }
    const Stopwatch idle_timer;
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait(lock, [this]() { return stopping_ || pending_ > 0; });
      // Drain every queued task before honoring shutdown so futures of
      // already-submitted work never break.
      if (stopping_ && pending_ == 0) return;
    }
    idle_metric_->Observe(idle_timer.ElapsedSeconds());
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  struct State {
    std::mutex mu;
    std::condition_variable done;
    int remaining;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  state->remaining = n;

  for (int i = 0; i < n; ++i) {
    // `fn` outlives the tasks: ParallelFor blocks until remaining == 0.
    Schedule([state, &fn, i]() {
      std::exception_ptr error;
      try {
        fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state->mu);
      if (error && !state->error) state->error = error;
      if (--state->remaining == 0) state->done.notify_all();
    });
  }

  const int self = tls_worker.pool == this ? tls_worker.index : -1;
  std::function<void()> task;
  for (;;) {
    if (TryAcquireTask(self, task)) {
      // Help: the stolen task may belong to this loop or to any other work
      // in flight — either way it moves the pool forward.
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(state->mu);
    if (state->remaining == 0) break;
    state->done.wait(lock);
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace rasa
