#include "common/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/json_writer.h"
#include "common/strings.h"

namespace rasa {
namespace {

std::atomic<bool> g_metrics_enabled{true};

// Relaxed CAS add for atomic<double>: every shard slot is written by (at
// most a few) known threads and only summed on scrape, so relaxed ordering
// is sufficient and TSan-clean.
void AtomicAdd(std::atomic<double>& slot, double delta) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AppendHistogramJson(JsonWriter& w, const Histogram::Snapshot& h) {
  w.BeginObject();
  w.Key("count").Value(static_cast<unsigned long long>(h.count));
  w.Key("sum").Value(h.sum);
  if (h.count > 0) {
    w.Key("min").Value(h.min);
    w.Key("max").Value(h.max);
    w.Key("mean").Value(h.sum / static_cast<double>(h.count));
  }
  // Sparse bucket list: only non-empty buckets, as {"le": bound, "n": c}.
  w.Key("buckets").BeginArray();
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    w.BeginObject();
    w.Key("le").Value(Histogram::BucketUpperBound(b));
    w.Key("n").Value(static_cast<unsigned long long>(h.buckets[b]));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

// Per-thread stack of open span ids (for implicit parenting).
thread_local std::vector<int64_t>* tls_span_stack = nullptr;

std::vector<int64_t>& SpanStack() {
  // Leaked per thread once; threads in this repo are long-lived pool
  // workers, so the bounded leak keeps shutdown order trivial.
  if (tls_span_stack == nullptr) tls_span_stack = new std::vector<int64_t>();
  return *tls_span_stack;
}

// Small stable per-thread id for TraceEvent::tid. Unlike CurrentShardIndex
// it is not folded mod kMetricShards, so distinct threads never alias in
// the trace view.
int CurrentTraceTid() {
  static std::atomic<int> next{0};
  thread_local const int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

int CurrentShardIndex() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id =
      next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(id % static_cast<unsigned>(kMetricShards));
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

int Histogram::BucketIndex(double value) {
  if (!(value >= kMinBound)) return 0;  // underflow; also catches NaN
  const int octave = static_cast<int>(std::floor(std::log2(value / kMinBound)));
  if (octave >= kLogBuckets) return kNumBuckets - 1;  // overflow
  return 1 + std::max(0, octave);
}

double Histogram::BucketUpperBound(int bucket) {
  if (bucket <= 0) return kMinBound;
  if (bucket >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return kMinBound * std::exp2(static_cast<double>(bucket));
}

void Histogram::Observe(double value) {
  if (!MetricsEnabled()) return;
  Shard& shard = shards_[CurrentShardIndex()];
  shard.counts[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(shard.sum, value);
  AtomicMin(shard.min, value);
  AtomicMax(shard.max, value);
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t next = cumulative + buckets[b];
    if (static_cast<double>(next) >= target) {
      // Bucket edges: the underflow bucket starts at 0, the overflow
      // bucket has no finite upper edge — the observed max stands in.
      double lo = b == 0 ? 0.0 : Histogram::BucketUpperBound(b - 1);
      double hi = Histogram::BucketUpperBound(b);
      if (!std::isfinite(hi)) hi = max;
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[b]);
      const double value = lo + fraction * (hi - lo);
      return std::min(std::max(value, min), max);
    }
    cumulative = next;
  }
  return max;
}

Histogram::Snapshot Histogram::Scrape() const {
  Snapshot out;
  for (const Shard& shard : shards_) {
    for (int b = 0; b < kNumBuckets; ++b) {
      const uint64_t n = shard.counts[b].load(std::memory_order_relaxed);
      out.buckets[b] += n;
      out.count += n;
    }
    out.sum += shard.sum.load(std::memory_order_relaxed);
    out.min = std::min(out.min, shard.min.load(std::memory_order_relaxed));
    out.max = std::max(out.max, shard.max.load(std::memory_order_relaxed));
  }
  return out;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.min.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
  }
}

void MetricsSnapshot::AppendJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) {
    w.Key(name).Value(static_cast<unsigned long long>(value));
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges) w.Key(name).Value(value);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, value] : histograms) {
    w.Key(name);
    AppendHistogramJson(w, value);
  }
  w.EndObject();
  w.EndObject();
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  AppendJson(w);
  return w.str();
}

namespace {

Histogram::Snapshot DiffHistogram(const Histogram::Snapshot& cur,
                                  const Histogram::Snapshot& prev) {
  Histogram::Snapshot out;
  out.count = cur.count >= prev.count ? cur.count - prev.count : cur.count;
  out.sum = cur.count >= prev.count ? cur.sum - prev.sum : cur.sum;
  // min/max of just the window are not recoverable from cumulative
  // extremes; estimate them from the delta buckets' edges, clamped to the
  // cumulative bounds (see the header comment on Diff).
  int first = -1;
  int last = -1;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    const uint64_t c = cur.buckets[b];
    const uint64_t p = prev.buckets[b];
    out.buckets[b] = c >= p ? c - p : c;
    if (out.buckets[b] > 0) {
      if (first < 0) first = b;
      last = b;
    }
  }
  if (out.count > 0) {
    const double lo = first <= 0 ? 0.0 : Histogram::BucketUpperBound(first - 1);
    double hi = Histogram::BucketUpperBound(last);
    if (!std::isfinite(hi)) hi = cur.max;
    out.min = std::max(lo, cur.min);
    out.max = std::min(hi, cur.max);
  }
  return out;
}

// Merges two sorted-by-name vectors: pairs present in both diff via
// `combine`, pairs only in `cur` pass through, pairs only in `prev` drop.
template <typename T, typename Combine>
std::vector<std::pair<std::string, T>> DiffSorted(
    const std::vector<std::pair<std::string, T>>& cur,
    const std::vector<std::pair<std::string, T>>& prev, Combine combine) {
  std::vector<std::pair<std::string, T>> out;
  out.reserve(cur.size());
  size_t j = 0;
  for (const auto& [name, value] : cur) {
    while (j < prev.size() && prev[j].first < name) ++j;
    if (j < prev.size() && prev[j].first == name) {
      out.emplace_back(name, combine(value, prev[j].second));
    } else {
      out.emplace_back(name, value);
    }
  }
  return out;
}

}  // namespace

MetricsSnapshot MetricsSnapshot::Diff(const MetricsSnapshot& prev) const {
  MetricsSnapshot out;
  out.counters = DiffSorted(counters, prev.counters,
                            [](uint64_t cur, uint64_t old) {
                              return cur >= old ? cur - old : cur;
                            });
  out.gauges = DiffSorted(gauges, prev.gauges,
                          [](double cur, double) { return cur; });
  out.histograms = DiffSorted(histograms, prev.histograms, DiffHistogram);
  return out;
}

MetricRegistry& MetricRegistry::Default() {
  static MetricRegistry* registry = new MetricRegistry();  // leaked
  return *registry;
}

Counter& MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricRegistry::Scrape() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->Value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->Value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.emplace_back(name, histogram->Scrape());
  }
  return out;
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();  // leaked
  return *tracer;
}

int64_t Tracer::Begin(const std::string& name, int64_t parent) {
  if (!enabled()) return -1;
  const double now = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - epoch_)
                         .count();
  std::vector<int64_t>& stack = SpanStack();
  int64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = static_cast<int64_t>(events_.size());
    TraceEvent event;
    event.id = id;
    event.parent = parent >= 0 ? parent : (stack.empty() ? -1 : stack.back());
    event.tid = CurrentTraceTid();
    event.name = name;
    event.start_seconds = now;
    event.duration_seconds = -1.0;  // open
    events_.push_back(std::move(event));
  }
  stack.push_back(id);
  return id;
}

void Tracer::End(int64_t id) {
  if (id < 0) return;
  const double now = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - epoch_)
                         .count();
  std::vector<int64_t>& stack = SpanStack();
  // Stack discipline: spans end on their own thread in LIFO order; a
  // Reset() between Begin and End leaves the stack holding stale ids,
  // which the erase below tolerates.
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (*it == id) {
      stack.erase(std::next(it).base());
      break;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (id < static_cast<int64_t>(events_.size())) {
    TraceEvent& event = events_[id];
    event.duration_seconds = now - event.start_seconds;
  }
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

void Tracer::AppendJson(JsonWriter& w) const {
  const std::vector<TraceEvent> events = Events();
  w.BeginArray();
  for (const TraceEvent& e : events) {
    if (e.duration_seconds < 0.0) continue;  // still open
    w.BeginObject();
    w.Key("id").Value(static_cast<long>(e.id));
    w.Key("parent").Value(static_cast<long>(e.parent));
    w.Key("name").Value(e.name);
    w.Key("start_s").Value(e.start_seconds);
    w.Key("duration_s").Value(e.duration_seconds);
    w.EndObject();
  }
  w.EndArray();
}

std::string Tracer::SummaryTree() const {
  const std::vector<TraceEvent> events = Events();
  std::vector<std::vector<int64_t>> children(events.size());
  std::vector<int64_t> roots;
  for (const TraceEvent& e : events) {
    if (e.duration_seconds < 0.0) continue;
    if (e.parent >= 0 && e.parent < static_cast<int64_t>(events.size())) {
      children[e.parent].push_back(e.id);
    } else {
      roots.push_back(e.id);
    }
  }
  // Children render in start order so the tree reads as a timeline.
  auto by_start = [&](int64_t a, int64_t b) {
    return events[a].start_seconds < events[b].start_seconds;
  };
  for (auto& c : children) std::sort(c.begin(), c.end(), by_start);
  std::sort(roots.begin(), roots.end(), by_start);

  constexpr int kMaxChildrenShown = 16;
  std::string out;
  auto render = [&](auto&& self, int64_t id, int depth) -> void {
    const TraceEvent& e = events[id];
    out += StrFormat("%*s%s  %.3f ms\n", 2 * depth, "", e.name.c_str(),
                     1e3 * e.duration_seconds);
    const auto& kids = children[id];
    const int shown =
        std::min<int>(kMaxChildrenShown, static_cast<int>(kids.size()));
    for (int i = 0; i < shown; ++i) self(self, kids[i], depth + 1);
    if (static_cast<int>(kids.size()) > shown) {
      double rest = 0.0;
      for (size_t i = shown; i < kids.size(); ++i) {
        rest += events[kids[i]].duration_seconds;
      }
      out += StrFormat("%*s... %d more spans, %.3f ms\n", 2 * (depth + 1), "",
                       static_cast<int>(kids.size()) - shown, 1e3 * rest);
    }
  };
  for (int64_t root : roots) render(render, root, 0);
  return out;
}

}  // namespace rasa
