#ifndef RASA_COMMON_LOGGING_H_
#define RASA_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace rasa {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are discarded. Defaults to
/// kWarning so tests and benches stay quiet; set RASA_LOG_LEVEL=0..3 or call
/// SetLogLevel to change.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Plain-text line-append writer for JSONL files: each Append writes one
/// line plus '\n' and flushes + fsyncs, so a tailer (or crash recovery)
/// never observes a torn line as valid JSON. Deliberately simpler than
/// DurableLogWriter — no framing or CRC — because JSONL consumers want a
/// file that standard line tools can read while it grows.
class JsonlWriter {
 public:
  JsonlWriter() = default;
  ~JsonlWriter();
  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  /// Opens `path` for appending (creating it if needed). Returns false and
  /// stays closed on failure.
  bool Open(const std::string& path);
  bool is_open() const { return file_ != nullptr; }
  /// Writes `line` (which must not contain '\n') plus the newline, then
  /// flushes and fsyncs. No-op returning false when not open.
  bool Append(const std::string& line);
  void Close();

 private:
  std::FILE* file_ = nullptr;
};

/// Mirrors every emitted log record (post severity filter) to `path` as
/// JSONL: {"ts": <unix seconds>, "severity": "...", "subsystem":
/// "<file basename>", "message": "..."}. An empty path turns the sink off.
/// Also installable via the RASA_LOG_JSONL environment variable (read once,
/// at the first log emission). The severity filter is the ordinary
/// SetLogLevel / RASA_LOG_LEVEL gate — the sink sees exactly the records
/// the console sees.
void SetLogJsonlPath(const std::string& path);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* basename_;
  int line_;
  std::ostringstream stream_;
};

// Consumes a stream expression when logging is compiled out / disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define RASA_LOG(level)                                                \
  if (::rasa::LogLevel::k##level < ::rasa::GetLogLevel()) {            \
  } else                                                               \
    ::rasa::internal::LogMessage(::rasa::LogLevel::k##level, __FILE__, \
                                 __LINE__)                             \
        .stream()

// Fatal check macro: always on, aborts with a message on failure.
#define RASA_CHECK(cond)                                                     \
  if (cond) {                                                                \
  } else                                                                     \
    ::rasa::internal::CheckFailure(__FILE__, __LINE__, #cond).stream()

namespace internal {

class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  [[noreturn]] ~CheckFailure();

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rasa

#endif  // RASA_COMMON_LOGGING_H_
