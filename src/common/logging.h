#ifndef RASA_COMMON_LOGGING_H_
#define RASA_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace rasa {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are discarded. Defaults to
/// kWarning so tests and benches stay quiet; set RASA_LOG_LEVEL=0..3 or call
/// SetLogLevel to change.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Consumes a stream expression when logging is compiled out / disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define RASA_LOG(level)                                                \
  if (::rasa::LogLevel::k##level < ::rasa::GetLogLevel()) {            \
  } else                                                               \
    ::rasa::internal::LogMessage(::rasa::LogLevel::k##level, __FILE__, \
                                 __LINE__)                             \
        .stream()

// Fatal check macro: always on, aborts with a message on failure.
#define RASA_CHECK(cond)                                                     \
  if (cond) {                                                                \
  } else                                                                     \
    ::rasa::internal::CheckFailure(__FILE__, __LINE__, #cond).stream()

namespace internal {

class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  [[noreturn]] ~CheckFailure();

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rasa

#endif  // RASA_COMMON_LOGGING_H_
