#ifndef RASA_COMMON_RNG_H_
#define RASA_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rasa {

/// Deterministic, fast pseudo-random number generator (xoshiro256**,
/// seeded through SplitMix64). All randomized components of the library take
/// an explicit Rng so experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Exponential with the given rate (mean 1/rate).
  double NextExponential(double rate);

  /// Pareto / power-law sample: x >= x_min with density ~ x^-(alpha+1).
  double NextPareto(double x_min, double alpha);

  /// Bernoulli trial.
  bool NextBool(double p_true);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n). Requires k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Forks a child generator with an independent stream; deterministic in
  /// (parent state, stream id).
  Rng Fork(uint64_t stream);

  /// Raw generator state as 16 lowercase hex words (64 chars), for durable
  /// checkpoints: a generator restored from this string continues the exact
  /// draw sequence of the original.
  std::string SerializeState() const;

  /// Restores state written by SerializeState. kInvalidArgument on
  /// malformed input (state unchanged).
  Status RestoreState(const std::string& text);

 private:
  uint64_t s_[4];
};

}  // namespace rasa

#endif  // RASA_COMMON_RNG_H_
