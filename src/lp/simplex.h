#ifndef RASA_LP_SIMPLEX_H_
#define RASA_LP_SIMPLEX_H_

#include <cstdint>
#include <vector>

#include "common/timer.h"
#include "lp/model.h"

namespace rasa {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kDeadlineExceeded,
  kError,
};

const char* LpStatusToString(LpStatus status);

/// Which simplex implementation SolveLp dispatches to.
enum class LpAlgorithm {
  /// Sparse revised simplex with a maintained eta-file factorization and
  /// warm-start support. The default.
  kRevised,
  /// The original dense-tableau two-phase simplex (dense basis inverse).
  /// Kept selectable for differential testing and as an automatic
  /// fallback when the revised path reports kError.
  kDenseTableau,
};

const char* LpAlgorithmToString(LpAlgorithm algorithm);

/// Status of one column (structural variable or slack) in a simplex basis.
enum class LpVarStatus : uint8_t {
  kAtLower = 0,
  kAtUpper = 1,
  kBasic = 2,
  /// Free variable resting at zero.
  kFreeZero = 3,
};

/// A simplex basis snapshot in model space, usable to warm-start a later
/// solve of a model with the same constraint rows (bounds, objective and
/// appended columns may differ). Column indexing: 0..n-1 are the model's
/// structural variables, n..n+m-1 are the slack of rows 0..m-1.
struct LpBasis {
  /// For each basis position, the basic column in the indexing above, or
  /// -(1 + row) when the solver had a (zero-valued) artificial covering
  /// `row` left in the basis (redundant row); warm starts re-synthesize a
  /// fixed artificial there.
  std::vector<int> basic;
  /// Status of every structural and slack column, size n + m.
  std::vector<LpVarStatus> state;

  bool empty() const { return basic.empty(); }
};

struct LpOptions {
  /// Hard cap on simplex pivots across both phases. <= 0 means automatic
  /// (scales with model size).
  int max_iterations = 0;
  Deadline deadline = Deadline::Infinite();
  /// Feasibility / optimality tolerance of the simplex kernels.
  double tolerance = 1e-7;
  /// Tolerance for auditing a *solution* against the model
  /// (LpModel::CheckFeasible): one decade looser than the pivoting
  /// tolerance, so an answer the kernel accepts never fails its own audit
  /// on accumulated round-off. Callers auditing simplex output should pass
  /// this instead of restating a literal — keeping the two tied to one
  /// knob is what makes tightening `tolerance` safe.
  double FeasibilityTolerance() const { return 10.0 * tolerance; }
  /// Implementation selector; see LpAlgorithm.
  LpAlgorithm algorithm = LpAlgorithm::kRevised;
  /// Break-even dispatch under kRevised: models with at most this many
  /// rows (and at most twice as many columns) run on the dense tableau
  /// kernel, which beats the factorization's constant overhead at that
  /// size. 0 forces the revised kernel on every model (differential and
  /// warm-start tests rely on this). Warm bases are only produced and
  /// consumed by the revised kernel, so the warm-start chain naturally
  /// restricts itself to models above the cutoff.
  int dense_size_cutoff = 64;
  /// Revised simplex only: number of eta updates accumulated on top of a
  /// fresh factorization before the next periodic refactorization.
  int refactor_interval = 64;
  /// Optional warm start (revised simplex only; the dense path ignores
  /// it). Must describe a basis for a model with the same rows. The
  /// pointee is not retained past the SolveLp call.
  const LpBasis* warm_basis = nullptr;
  /// When non-null, receives the final basis of an optimal solve (left
  /// untouched otherwise). Revised simplex only.
  LpBasis* result_basis = nullptr;
};

struct LpResult {
  LpStatus status = LpStatus::kError;
  /// Objective in the model's own sense (integrality ignored).
  double objective = 0.0;
  /// Value per model variable.
  std::vector<double> primal;
  /// Dual value per constraint, in the model's own sense: for every
  /// variable, objective_j - sum_i dual_i * a_ij equals its reduced cost.
  std::vector<double> dual;
  /// Reduced cost per variable (model sense).
  std::vector<double> reduced_costs;
  /// Total simplex pivots; always phase1_iterations + phase2_iterations.
  int iterations = 0;
  /// Pivots spent driving artificials out (feasibility restoration); for a
  /// warm-started solve this counts the dual-simplex repair pivots.
  int phase1_iterations = 0;
  /// Pivots spent optimizing the real objective.
  int phase2_iterations = 0;
  /// Revised simplex: basis refactorizations performed (>= 1 per solve).
  int refactorizations = 0;
  /// Revised simplex: longest eta file reached between refactorizations.
  int max_eta_length = 0;
  /// True when a supplied warm basis was actually used (valid and accepted
  /// by the warm-start protocol) rather than falling back to a cold start.
  bool warm_started = false;
};

/// Solves the LP relaxation of `model`. Dispatches on options.algorithm:
/// the sparse revised simplex by default, the dense tableau on request or
/// as an automatic fallback if the revised path errors. Integer markers on
/// variables are ignored here.
LpResult SolveLp(const LpModel& model, const LpOptions& options = {});

/// The original dense-tableau two-phase simplex (explicit dense basis
/// inverse). Ignores warm_basis/result_basis. The revised-simplex entry
/// point lives in lp/revised_simplex.h.
LpResult SolveLpDenseTableau(const LpModel& model,
                             const LpOptions& options = {});

}  // namespace rasa

#endif  // RASA_LP_SIMPLEX_H_
