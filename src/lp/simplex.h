#ifndef RASA_LP_SIMPLEX_H_
#define RASA_LP_SIMPLEX_H_

#include <vector>

#include "common/timer.h"
#include "lp/model.h"

namespace rasa {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kDeadlineExceeded,
  kError,
};

const char* LpStatusToString(LpStatus status);

struct LpOptions {
  /// Hard cap on simplex pivots across both phases. <= 0 means automatic
  /// (scales with model size).
  int max_iterations = 0;
  Deadline deadline = Deadline::Infinite();
  /// Feasibility / optimality tolerance.
  double tolerance = 1e-7;
};

struct LpResult {
  LpStatus status = LpStatus::kError;
  /// Objective in the model's own sense (integrality ignored).
  double objective = 0.0;
  /// Value per model variable.
  std::vector<double> primal;
  /// Dual value per constraint, in the model's own sense: for every
  /// variable, objective_j - sum_i dual_i * a_ij equals its reduced cost.
  std::vector<double> dual;
  /// Reduced cost per variable (model sense).
  std::vector<double> reduced_costs;
  /// Total simplex pivots; always phase1_iterations + phase2_iterations.
  int iterations = 0;
  /// Pivots spent driving artificials out (feasibility restoration).
  int phase1_iterations = 0;
  /// Pivots spent optimizing the real objective.
  int phase2_iterations = 0;
};

/// Solves the LP relaxation of `model` with a bounded-variable two-phase
/// primal simplex (revised form with an explicit dense basis inverse).
/// Integer markers on variables are ignored here.
LpResult SolveLp(const LpModel& model, const LpOptions& options = {});

}  // namespace rasa

#endif  // RASA_LP_SIMPLEX_H_
