#ifndef RASA_LP_REVISED_SIMPLEX_H_
#define RASA_LP_REVISED_SIMPLEX_H_

#include "lp/simplex.h"

namespace rasa {

/// Sparse revised simplex over the same equality standard form as the
/// dense tableau (columns [structural | slack | artificial]), but with the
/// basis inverse held as an eta-file product-form factorization
/// (linalg/sparse.h) instead of an explicit dense matrix. Per pivot it
/// does one BTRAN (duals), a sparse pricing sweep, one FTRAN (entering
/// column) and a single eta append; the factorization is rebuilt every
/// `LpOptions::refactor_interval` updates or earlier when a pivot element
/// is too small to update on safely.
///
/// Warm starts (LpOptions::warm_basis): the basis is validated against the
/// current model, bound changes are absorbed by coercing nonbasic columns
/// onto still-existing bounds, and then
///   - a primal-feasible basis goes straight to phase-2 primal pivots
///     (the column-generation case: appended columns price in), while
///   - a dual-feasible basis is repaired with bounded-variable dual
///     simplex pivots (the branch-and-bound case: a child node tightens
///     bounds, so the parent basis stays dual feasible);
/// anything else falls back to a cold start, so correctness never depends
/// on the warm path. Results are extracted from a fresh refactorization of
/// the final basis, so the reported numbers depend only on that basis and
/// not on the pivot history — a warm-started solve that ends in the same
/// basis as a cold one returns bit-identical values.
///
/// On numerical failure (kError) callers should retry with the dense
/// tableau; SolveLp does this automatically.
LpResult SolveLpRevised(const LpModel& model, const LpOptions& options = {});

}  // namespace rasa

#endif  // RASA_LP_REVISED_SIMPLEX_H_
