#include "lp/revised_simplex.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/logging.h"
#include "linalg/sparse.h"

namespace rasa {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Minimum pivot magnitude accepted by the ratio tests.
constexpr double kPivotTol = 1e-9;
// A pivot below this is too small to append as an eta update; the basis is
// refactorized (with full partial pivoting) instead.
constexpr double kUpdateTol = 1e-7;
// Partial pricing engages only above this many priced columns; below it a
// full Dantzig sweep costs the same and keeps pivot sequences aligned with
// the dense tableau on the small models the test suites pin down.
constexpr int kPartialPricingMinColumns = 2048;
// Columns examined per partial-pricing block.
constexpr int kPricingBlock = 512;

// Where a nonbasic variable currently sits (mirrors the dense tableau).
enum class VarState : uint8_t { kBasic, kAtLower, kAtUpper, kFreeAtZero };

// Revised simplex on the equality standard form
//   min c'x  s.t.  A x = b,  l <= x <= u
// with columns ordered [structural | slack | artificial]. Standard form,
// cold start, pricing rules, ratio test and degeneracy control all mirror
// the dense tableau in simplex.cc; only the basis-inverse representation
// (eta file vs. dense matrix) and the warm-start machinery differ.
class RevisedSimplex {
 public:
  RevisedSimplex(const LpModel& model, const LpOptions& options)
      : model_(model), options_(options) {}

  LpResult Solve();

 private:
  SparseColumnView Column(int j) const {
    if (j < n_struct_) return model_.column(j);
    if (j < n_art_begin_) return {&slack_entries_[j - n_struct_], 1};
    return {&art_entries_[j - n_art_begin_], 1};
  }

  void BuildStandardForm();
  void SetupInitialBasis();
  bool TryWarmStart();
  void SetNonbasicAt(int j, LpVarStatus want);
  bool RefactorizeNow();
  // Appends the eta for the pivot at `position` (entering column's FTRAN
  // image is still in the factorization scratch) or refactorizes when the
  // pivot is too small / the eta file hit its cap. False on singularity.
  bool UpdateOrRefactorize(int position);
  void RefreshBasicValues();
  void ComputeDuals(const std::vector<double>& costs, std::vector<double>& y);
  double ColumnDot(int col, const std::vector<double>& vec) const;
  double PhaseOneInfeasibility() const;
  bool PrimalFeasibleBasics() const;
  bool DualFeasible();
  // Prices nonbasic columns against duals `y`; returns the entering column
  // or -1, with its movement direction in *dir.
  int Price(const std::vector<double>& costs, const std::vector<double>& y,
            bool phase_one, double* dir);
  LpStatus Iterate(bool phase_one);
  // Bounded-variable dual simplex: restores primal feasibility while
  // keeping dual feasibility. kOptimal means "primal feasible now";
  // kInfeasible means a bound violation nothing can repair.
  LpStatus DualIterate();
  bool PivotOutArtificials();
  LpResult ExtractResult(LpStatus status);
  void FillStats(LpResult& result) const;
  LpResult SnapshotPrimal(LpStatus status);

  const LpModel& model_;
  const LpOptions& options_;

  int m_ = 0;
  int n_struct_ = 0;
  int n_total_ = 0;
  int n_art_begin_ = 0;

  std::vector<SparseEntry> slack_entries_;
  std::vector<SparseEntry> art_entries_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> cost_;     // phase-2 costs (minimization)
  std::vector<double> cost_p1_;  // phase-1 costs
  std::vector<double> b_;

  std::vector<double> x_;
  std::vector<int> basis_;  // column index per basis position
  std::vector<VarState> state_;
  BasisFactorization fact_;
  std::vector<SparseColumnView> basis_views_;

  // Work vectors reused across pivots.
  std::vector<double> y_;
  std::vector<double> w_;
  std::vector<double> rho_;
  std::vector<double> cb_;
  std::vector<double> rhs_scratch_;

  int iterations_ = 0;
  int phase1_iterations_ = 0;
  int max_iterations_ = 0;
  bool use_bland_ = false;
  int stall_count_ = 0;
  int pricing_cursor_ = 0;
  double sign_ = 1.0;

  int refactorizations_ = 0;
  int max_eta_length_ = 0;
  bool warm_started_ = false;
};

void RevisedSimplex::BuildStandardForm() {
  m_ = model_.num_constraints();
  n_struct_ = model_.num_variables();
  sign_ = model_.objective_sense() == ObjectiveSense::kMinimize ? 1.0 : -1.0;

  n_art_begin_ = n_struct_ + m_;
  n_total_ = n_art_begin_ + m_;

  slack_entries_.resize(m_);
  art_entries_.resize(m_);
  lower_.assign(n_total_, 0.0);
  upper_.assign(n_total_, 0.0);
  cost_.assign(n_total_, 0.0);
  cost_p1_.assign(n_total_, 0.0);
  b_.assign(m_, 0.0);

  for (int v = 0; v < n_struct_; ++v) {
    lower_[v] = model_.lower_bound(v);
    upper_[v] = model_.upper_bound(v);
    cost_[v] = sign_ * model_.objective_coefficient(v);
  }
  for (int c = 0; c < m_; ++c) {
    b_[c] = model_.rhs(c);
    slack_entries_[c] = {c, 1.0};
    art_entries_[c] = {c, 1.0};  // sign fixed at cold start
    const int slack = n_struct_ + c;
    switch (model_.constraint_type(c)) {
      case ConstraintType::kLessEqual:
        lower_[slack] = 0.0;
        upper_[slack] = kInf;
        break;
      case ConstraintType::kGreaterEqual:
        lower_[slack] = -kInf;
        upper_[slack] = 0.0;
        break;
      case ConstraintType::kEqual:
        lower_[slack] = 0.0;
        upper_[slack] = 0.0;
        break;
    }
  }
}

void RevisedSimplex::SetupInitialBasis() {
  x_.assign(n_total_, 0.0);
  state_.assign(n_total_, VarState::kAtLower);

  // Nonbasic columns rest at the finite bound nearest zero.
  for (int j = 0; j < n_art_begin_; ++j) {
    const double lo = lower_[j];
    const double hi = upper_[j];
    if (lo == -kInf && hi == kInf) {
      state_[j] = VarState::kFreeAtZero;
      x_[j] = 0.0;
    } else if (lo == -kInf) {
      state_[j] = VarState::kAtUpper;
      x_[j] = hi;
    } else if (hi == kInf) {
      state_[j] = VarState::kAtLower;
      x_[j] = lo;
    } else if (std::abs(lo) <= std::abs(hi)) {
      state_[j] = VarState::kAtLower;
      x_[j] = lo;
    } else {
      state_[j] = VarState::kAtUpper;
      x_[j] = hi;
    }
  }

  std::vector<double> residual = b_;
  for (int j = 0; j < n_art_begin_; ++j) {
    if (x_[j] == 0.0) continue;
    for (const SparseEntry& e : Column(j)) residual[e.row] -= e.value * x_[j];
  }

  basis_.assign(m_, -1);
  for (int i = 0; i < m_; ++i) {
    const int art = n_art_begin_ + i;
    const double sgn = residual[i] >= 0.0 ? 1.0 : -1.0;
    art_entries_[i] = {i, sgn};
    lower_[art] = 0.0;
    upper_[art] = kInf;
    cost_p1_[art] = 1.0;
    x_[art] = std::abs(residual[i]);
    basis_[i] = art;
    state_[art] = VarState::kBasic;
  }
}

void RevisedSimplex::SetNonbasicAt(int j, LpVarStatus want) {
  const double lo = lower_[j];
  const double hi = upper_[j];
  VarState st;
  if (want == LpVarStatus::kAtLower && lo != -kInf) {
    st = VarState::kAtLower;
  } else if (want == LpVarStatus::kAtUpper && hi != kInf) {
    st = VarState::kAtUpper;
  } else if (want == LpVarStatus::kFreeZero && lo == -kInf && hi == kInf) {
    st = VarState::kFreeAtZero;
  } else if (lo != -kInf) {
    // The remembered bound no longer exists (a child node moved it);
    // deterministic coercion onto a bound that does.
    st = VarState::kAtLower;
  } else if (hi != kInf) {
    st = VarState::kAtUpper;
  } else {
    st = VarState::kFreeAtZero;
  }
  state_[j] = st;
  x_[j] = st == VarState::kAtLower ? lo : st == VarState::kAtUpper ? hi : 0.0;
}

bool RevisedSimplex::TryWarmStart() {
  const LpBasis& wb = *options_.warm_basis;
  if (static_cast<int>(wb.basic.size()) != m_) return false;
  if (static_cast<int>(wb.state.size()) != n_art_begin_) return false;

  x_.assign(n_total_, 0.0);
  state_.assign(n_total_, VarState::kAtLower);
  basis_.assign(m_, -1);
  std::vector<char> used(n_total_, 0);
  // All artificial slots stay fixed at zero; basic ones are re-synthesized
  // with a +1 entry in their row.
  for (int i = 0; i < m_; ++i) art_entries_[i] = {i, 1.0};

  for (int k = 0; k < m_; ++k) {
    int col = wb.basic[k];
    if (col < 0) {
      const int row = -1 - col;
      if (row < 0 || row >= m_) return false;
      col = n_art_begin_ + row;
    } else {
      if (col >= n_art_begin_) return false;
      if (wb.state[col] != LpVarStatus::kBasic) return false;
    }
    if (used[col]) return false;
    used[col] = 1;
    basis_[k] = col;
    state_[col] = VarState::kBasic;
  }
  for (int j = 0; j < n_art_begin_; ++j) {
    if (state_[j] == VarState::kBasic) continue;
    if (wb.state[j] == LpVarStatus::kBasic) return false;  // not in basic[]
    SetNonbasicAt(j, wb.state[j]);
  }
  return RefactorizeNow();
}

bool RevisedSimplex::RefactorizeNow() {
  max_eta_length_ = std::max(max_eta_length_, fact_.eta_count());
  basis_views_.resize(m_);
  for (int k = 0; k < m_; ++k) basis_views_[k] = Column(basis_[k]);
  ++refactorizations_;
  return fact_.Refactorize(m_, basis_views_);
}

bool RevisedSimplex::UpdateOrRefactorize(int position) {
  if (fact_.eta_count() - m_ < options_.refactor_interval &&
      fact_.Update(position, kUpdateTol)) {
    max_eta_length_ = std::max(max_eta_length_, fact_.eta_count());
    return true;
  }
  return RefactorizeNow();
}

void RevisedSimplex::RefreshBasicValues() {
  rhs_scratch_ = b_;
  for (int j = 0; j < n_total_; ++j) {
    if (state_[j] == VarState::kBasic || x_[j] == 0.0) continue;
    for (const SparseEntry& e : Column(j)) {
      rhs_scratch_[e.row] -= e.value * x_[j];
    }
  }
  fact_.FtranDense(rhs_scratch_, w_);
  for (int k = 0; k < m_; ++k) x_[basis_[k]] = w_[k];
}

void RevisedSimplex::ComputeDuals(const std::vector<double>& costs,
                                  std::vector<double>& y) {
  cb_.resize(m_);
  for (int k = 0; k < m_; ++k) cb_[k] = costs[basis_[k]];
  fact_.Btran(cb_, y);
}

double RevisedSimplex::ColumnDot(int col,
                                 const std::vector<double>& vec) const {
  double acc = 0.0;
  for (const SparseEntry& e : Column(col)) acc += e.value * vec[e.row];
  return acc;
}

double RevisedSimplex::PhaseOneInfeasibility() const {
  double total = 0.0;
  for (int j = n_art_begin_; j < n_total_; ++j) total += x_[j];
  return total;
}

bool RevisedSimplex::PrimalFeasibleBasics() const {
  const double tol = options_.tolerance;
  for (int k = 0; k < m_; ++k) {
    const int bj = basis_[k];
    if (lower_[bj] != -kInf && x_[bj] < lower_[bj] - tol) return false;
    if (upper_[bj] != kInf && x_[bj] > upper_[bj] + tol) return false;
  }
  return true;
}

bool RevisedSimplex::DualFeasible() {
  const double tol = options_.tolerance;
  ComputeDuals(cost_, y_);
  for (int j = 0; j < n_art_begin_; ++j) {
    const VarState st = state_[j];
    if (st == VarState::kBasic) continue;
    if (lower_[j] == upper_[j]) continue;  // fixed: any sign is fine
    const double d = cost_[j] - ColumnDot(j, y_);
    if ((st == VarState::kAtLower || st == VarState::kFreeAtZero) &&
        d < -tol) {
      return false;
    }
    if ((st == VarState::kAtUpper || st == VarState::kFreeAtZero) && d > tol) {
      return false;
    }
  }
  return true;
}

int RevisedSimplex::Price(const std::vector<double>& costs,
                          const std::vector<double>& y, bool phase_one,
                          double* dir) {
  const double tol = options_.tolerance;
  const int n_price = n_art_begin_;

  // Violation of column j, or 0 when it is not an improving candidate.
  auto violation_of = [&](int j, double* d_out) -> double {
    const VarState st = state_[j];
    if (st == VarState::kBasic) return 0.0;
    if (!phase_one && lower_[j] == upper_[j]) return 0.0;  // fixed
    const double d = costs[j] - ColumnDot(j, y);
    if ((st == VarState::kAtLower || st == VarState::kFreeAtZero) &&
        d < -tol) {
      *d_out = 1.0;
      return -d;
    }
    if ((st == VarState::kAtUpper || st == VarState::kFreeAtZero) && d > tol) {
      *d_out = -1.0;
      return d;
    }
    return 0.0;
  };

  if (use_bland_ || n_price <= kPartialPricingMinColumns) {
    int entering = -1;
    double best_violation = tol;
    for (int j = 0; j < n_price; ++j) {
      double dj = 0.0;
      const double v = violation_of(j, &dj);
      if (v == 0.0) continue;
      if (use_bland_) {
        *dir = dj;
        return j;  // Bland: first improving index.
      }
      if (v > best_violation) {
        best_violation = v;
        entering = j;
        *dir = dj;
      }
    }
    return entering;
  }

  // Partial (block) pricing: sweep fixed-size blocks from a cursor that
  // persists across pivots; the first block containing an improving column
  // supplies the (Dantzig-best within the block) entering column. A full
  // wrap with nothing improving proves optimality. Deterministic: the
  // cursor's evolution depends only on the pivot sequence.
  int scanned = 0;
  while (scanned < n_price) {
    int entering = -1;
    double best_violation = tol;
    const int block = std::min(kPricingBlock, n_price - scanned);
    // The modular window [cursor, cursor + block) decomposed into at most
    // two contiguous segments: the same columns in the same order as the
    // per-element modular walk (so the chosen entering column is
    // bit-identical), but the inner loop streams linearly through the
    // state/cost/column arrays instead of paying a div per element.
    auto scan_segment = [&](int begin, int end) {
      for (int j = begin; j < end; ++j) {
        double dj = 0.0;
        const double v = violation_of(j, &dj);
        if (v > best_violation) {
          best_violation = v;
          entering = j;
          *dir = dj;
        }
      }
    };
    const int first = std::min(block, n_price - pricing_cursor_);
    scan_segment(pricing_cursor_, pricing_cursor_ + first);
    scan_segment(0, block - first);
    pricing_cursor_ = (pricing_cursor_ + block) % n_price;
    scanned += block;
    if (entering >= 0) return entering;
  }
  return -1;
}

LpStatus RevisedSimplex::Iterate(bool phase_one) {
  const std::vector<double>& costs = phase_one ? cost_p1_ : cost_;

  double last_objective = kInf;
  stall_count_ = 0;
  use_bland_ = false;

  while (true) {
    if (iterations_ >= max_iterations_) return LpStatus::kIterationLimit;
    if (options_.deadline.Expired()) return LpStatus::kDeadlineExceeded;
    ++iterations_;
    // Periodically flush accumulated drift in the incremental x updates.
    if ((iterations_ & 127) == 0) RefreshBasicValues();

    ComputeDuals(costs, y_);
    double entering_dir = 0.0;
    const int entering = Price(costs, y_, phase_one, &entering_dir);
    if (entering < 0) return LpStatus::kOptimal;

    // Direction of basics: w = Binv * A_entering, over basis positions.
    // (The factorization keeps the row-space image for the eta update.)
    fact_.FtranColumn(Column(entering), w_);

    // Ratio test: x_entering moves by entering_dir * t, basics move by
    // -entering_dir * t * w. Identical rules to the dense tableau.
    double t_max = kInf;
    int leaving_pos = -1;
    double leaving_bound = 0.0;
    for (int k = 0; k < m_; ++k) {
      const double rate = entering_dir * w_[k];
      const int bj = basis_[k];
      if (rate > kPivotTol) {
        if (lower_[bj] == -kInf) continue;
        const double t = (x_[bj] - lower_[bj]) / rate;
        if (t < t_max - 1e-12 ||
            (t < t_max + 1e-12 && leaving_pos >= 0 &&
             std::abs(w_[k]) > std::abs(w_[leaving_pos]))) {
          t_max = std::max(t, 0.0);
          leaving_pos = k;
          leaving_bound = lower_[bj];
        }
      } else if (rate < -kPivotTol) {
        if (upper_[bj] == kInf) continue;
        const double t = (x_[bj] - upper_[bj]) / rate;
        if (t < t_max - 1e-12 ||
            (t < t_max + 1e-12 && leaving_pos >= 0 &&
             std::abs(w_[k]) > std::abs(w_[leaving_pos]))) {
          t_max = std::max(t, 0.0);
          leaving_pos = k;
          leaving_bound = upper_[bj];
        }
      }
    }
    double t_flip = kInf;
    if (lower_[entering] != -kInf && upper_[entering] != kInf) {
      t_flip = upper_[entering] - lower_[entering];
    }
    if (t_flip < t_max) {
      // Bound flip: no basis change.
      x_[entering] += entering_dir * t_flip;
      for (int k = 0; k < m_; ++k) {
        x_[basis_[k]] -= entering_dir * t_flip * w_[k];
      }
      state_[entering] =
          entering_dir > 0 ? VarState::kAtUpper : VarState::kAtLower;
      continue;
    }
    if (leaving_pos < 0) {
      return phase_one ? LpStatus::kError : LpStatus::kUnbounded;
    }

    x_[entering] += entering_dir * t_max;
    for (int k = 0; k < m_; ++k) {
      x_[basis_[k]] -= entering_dir * t_max * w_[k];
    }
    const int leaving = basis_[leaving_pos];
    x_[leaving] = leaving_bound;  // snap to its bound exactly
    state_[leaving] = (leaving_bound == lower_[leaving])
                          ? VarState::kAtLower
                          : VarState::kAtUpper;
    basis_[leaving_pos] = entering;
    state_[entering] = VarState::kBasic;

    if (!UpdateOrRefactorize(leaving_pos)) return LpStatus::kError;

    // Degeneracy control: if the objective stalls for many pivots, fall
    // back to Bland's rule, which guarantees termination.
    double objective = 0.0;
    for (int k = 0; k < m_; ++k) {
      objective += costs[basis_[k]] * x_[basis_[k]];
    }
    if (objective >= last_objective - 1e-12) {
      if (++stall_count_ > 2 * (m_ + n_struct_) + 64) use_bland_ = true;
    } else {
      stall_count_ = 0;
      last_objective = objective;
    }
  }
}

LpStatus RevisedSimplex::DualIterate() {
  const double tol = options_.tolerance;

  // Degenerate dual pivots (zero-ratio steps on ties) can cycle, and unlike
  // the primal loop there is no Bland fallback here. A repair that has not
  // reached primal feasibility within a basis-sized pivot budget is treated
  // as failed: Solve() converts the kError into a cold restart, so the node
  // is solved exactly as a from-scratch solve would instead of burning the
  // whole iteration budget in a cycle.
  const int budget = 2 * (m_ + n_struct_) + 64;
  int pivots = 0;

  while (true) {
    if (iterations_ >= max_iterations_) return LpStatus::kIterationLimit;
    if (options_.deadline.Expired()) return LpStatus::kDeadlineExceeded;

    // Leaving: the basic variable with the largest bound violation
    // (lowest position on ties).
    int r = -1;
    bool below = false;
    double best_viol = tol;
    for (int k = 0; k < m_; ++k) {
      const int bj = basis_[k];
      if (lower_[bj] != -kInf && lower_[bj] - x_[bj] > best_viol) {
        best_viol = lower_[bj] - x_[bj];
        r = k;
        below = true;
      }
      if (upper_[bj] != kInf && x_[bj] - upper_[bj] > best_viol) {
        best_viol = x_[bj] - upper_[bj];
        r = k;
        below = false;
      }
    }
    if (r < 0) return LpStatus::kOptimal;  // primal feasible
    if (++pivots > budget) return LpStatus::kError;

    ++iterations_;
    if ((iterations_ & 127) == 0) RefreshBasicValues();

    fact_.BtranUnit(r, rho_);
    ComputeDuals(cost_, y_);

    // Dual ratio test. Normalize to the "leaving variable must increase"
    // case: q_j = sgn * (B^-1 A_j)[r] with sgn = +1 below lower, -1 above
    // upper. Entering candidates must move x_r toward its bound without
    // breaking dual feasibility; pick the minimum |d_j / q_j| ratio, with
    // larger |q_j| then lower index on ties.
    const double sgn = below ? 1.0 : -1.0;
    int entering = -1;
    double best_ratio = kInf;
    double best_q = 0.0;
    for (int j = 0; j < n_art_begin_; ++j) {
      const VarState st = state_[j];
      if (st == VarState::kBasic) continue;
      if (lower_[j] == upper_[j]) continue;  // fixed: cannot move
      const double q = sgn * ColumnDot(j, rho_);
      double ratio;
      if ((st == VarState::kAtLower || st == VarState::kFreeAtZero) &&
          q < -kPivotTol) {
        // d_j may be a hair negative within tolerance; clamping keeps the
        // ratio nonnegative so such columns compete on pivot size alone.
        ratio = std::max(cost_[j] - ColumnDot(j, y_), 0.0) / -q;
      } else if ((st == VarState::kAtUpper || st == VarState::kFreeAtZero) &&
                 q > kPivotTol) {
        ratio = std::max(-(cost_[j] - ColumnDot(j, y_)), 0.0) / q;
      } else {
        continue;
      }
      if (ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 && entering >= 0 &&
           std::abs(q) > std::abs(best_q))) {
        best_ratio = ratio;
        entering = j;
        best_q = q;
      }
    }
    if (entering < 0) {
      // The violated row cannot be repaired by any column: the tightened
      // bounds are primal infeasible.
      return LpStatus::kInfeasible;
    }

    fact_.FtranColumn(Column(entering), w_);
    const double alpha = w_[r];
    if (std::abs(alpha) < kPivotTol) {
      // rho-based q and the FTRAN disagree badly; numbers are off.
      return LpStatus::kError;
    }
    const int bj = basis_[r];
    const double bound_r = below ? lower_[bj] : upper_[bj];
    const double dx = (x_[bj] - bound_r) / alpha;
    for (int k = 0; k < m_; ++k) x_[basis_[k]] -= dx * w_[k];
    x_[entering] += dx;
    x_[bj] = bound_r;  // snap
    state_[bj] = below ? VarState::kAtLower : VarState::kAtUpper;
    basis_[r] = entering;
    state_[entering] = VarState::kBasic;

    if (!UpdateOrRefactorize(r)) return LpStatus::kError;
  }
}

bool RevisedSimplex::PivotOutArtificials() {
  // Any artificial still basic at value ~0 is swapped for a non-artificial
  // column with a nonzero pivot in its basis position; if none exists the
  // row is redundant and the artificial stays, pinned to zero.
  for (int k = 0; k < m_; ++k) {
    const int bj = basis_[k];
    if (bj < n_art_begin_) continue;
    fact_.BtranUnit(k, rho_);
    int replacement = -1;
    double best_abs = 1e-7;
    for (int j = 0; j < n_art_begin_; ++j) {
      if (state_[j] == VarState::kBasic) continue;
      const double wkj = ColumnDot(j, rho_);  // (Binv * A_j)[k]
      if (std::abs(wkj) > best_abs) {
        best_abs = std::abs(wkj);
        replacement = j;
      }
    }
    if (replacement < 0) continue;
    // Pivot with step 0 (the artificial is at 0, so x does not change).
    fact_.FtranColumn(Column(replacement), w_);
    state_[bj] = VarState::kAtLower;
    x_[bj] = 0.0;
    basis_[k] = replacement;
    state_[replacement] = VarState::kBasic;
    if (!UpdateOrRefactorize(k)) return false;
  }
  return true;
}

void RevisedSimplex::FillStats(LpResult& result) const {
  result.refactorizations = refactorizations_;
  result.max_eta_length = max_eta_length_;
  result.warm_started = warm_started_;
}

LpResult RevisedSimplex::SnapshotPrimal(LpStatus status) {
  // Limit hit before feasibility: snapshot of the (possibly infeasible)
  // point so callers always get a primal of the right size; duals stay
  // empty. Clamped to bounds. Mirrors the dense tableau's phase-1 exits.
  LpResult result;
  result.status = status;
  result.iterations = iterations_;
  result.phase1_iterations = phase1_iterations_;
  result.primal.assign(x_.begin(), x_.begin() + n_struct_);
  for (int v = 0; v < n_struct_; ++v) {
    if (lower_[v] != -kInf) result.primal[v] = std::max(result.primal[v], lower_[v]);
    if (upper_[v] != kInf) result.primal[v] = std::min(result.primal[v], upper_[v]);
  }
  result.objective = model_.ObjectiveValue(result.primal);
  FillStats(result);
  return result;
}

LpResult RevisedSimplex::ExtractResult(LpStatus status) {
  // Deterministic extraction: rebuild the factorization so the reported
  // numbers depend only on the final basis, not on the eta-update history
  // (a warm solve ending in the same basis as a cold one must return
  // bit-identical values).
  if (status != LpStatus::kError && !RefactorizeNow()) {
    status = LpStatus::kError;
  }
  LpResult result;
  result.status = status;
  result.iterations = iterations_;
  result.phase1_iterations = phase1_iterations_;
  result.phase2_iterations = iterations_ - phase1_iterations_;
  FillStats(result);
  if (status == LpStatus::kError) return result;

  RefreshBasicValues();
  result.primal.assign(n_struct_, 0.0);
  for (int v = 0; v < n_struct_; ++v) {
    double val = x_[v];
    if (lower_[v] != -kInf) val = std::max(val, lower_[v]);
    if (upper_[v] != kInf) val = std::min(val, upper_[v]);
    result.primal[v] = val;
  }
  result.objective = model_.ObjectiveValue(result.primal);

  if (status == LpStatus::kOptimal || status == LpStatus::kIterationLimit ||
      status == LpStatus::kDeadlineExceeded) {
    ComputeDuals(cost_, y_);
    result.dual.assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) result.dual[i] = sign_ * y_[i];
    result.reduced_costs.assign(n_struct_, 0.0);
    for (int v = 0; v < n_struct_; ++v) {
      result.reduced_costs[v] = sign_ * (cost_[v] - ColumnDot(v, y_));
    }
  }
  if (status == LpStatus::kOptimal && options_.result_basis != nullptr) {
    LpBasis& out = *options_.result_basis;
    out.basic.resize(m_);
    for (int k = 0; k < m_; ++k) {
      const int bj = basis_[k];
      out.basic[k] = bj < n_art_begin_ ? bj : -(1 + (bj - n_art_begin_));
    }
    out.state.assign(n_art_begin_, LpVarStatus::kAtLower);
    for (int j = 0; j < n_art_begin_; ++j) {
      switch (state_[j]) {
        case VarState::kBasic:
          out.state[j] = LpVarStatus::kBasic;
          break;
        case VarState::kAtLower:
          out.state[j] = LpVarStatus::kAtLower;
          break;
        case VarState::kAtUpper:
          out.state[j] = LpVarStatus::kAtUpper;
          break;
        case VarState::kFreeAtZero:
          out.state[j] = LpVarStatus::kFreeZero;
          break;
      }
    }
  }
  return result;
}

LpResult RevisedSimplex::Solve() {
  LpResult result;
  Status valid = model_.Validate();
  if (!valid.ok()) {
    RASA_LOG(Warning) << "invalid LP model: " << valid.ToString();
    result.status = LpStatus::kError;
    return result;
  }

  BuildStandardForm();
  max_iterations_ = options_.max_iterations > 0
                        ? options_.max_iterations
                        : 200 * (m_ + n_struct_) + 2000;

  if (options_.warm_basis != nullptr && !options_.warm_basis->empty() &&
      TryWarmStart()) {
    warm_started_ = true;
    RefreshBasicValues();
    bool warm_usable = true;
    if (!PrimalFeasibleBasics()) {
      if (DualFeasible()) {
        const LpStatus d = DualIterate();
        phase1_iterations_ = iterations_;
        if (d == LpStatus::kInfeasible) {
          result.status = LpStatus::kInfeasible;
          result.iterations = iterations_;
          result.phase1_iterations = phase1_iterations_;
          FillStats(result);
          return result;
        }
        if (d == LpStatus::kIterationLimit ||
            d == LpStatus::kDeadlineExceeded) {
          return SnapshotPrimal(d);
        }
        if (d == LpStatus::kError) warm_usable = false;
      } else {
        warm_usable = false;
      }
    }
    if (warm_usable) {
      const LpStatus p2 = Iterate(/*phase_one=*/false);
      return ExtractResult(p2);
    }
    // Warm basis too far gone (neither primal nor dual feasible, or the
    // dual repair hit numerical trouble): restart cold below.
    warm_started_ = false;
    iterations_ = 0;
    phase1_iterations_ = 0;
    BuildStandardForm();  // reset artificial signs/bounds
  }

  SetupInitialBasis();
  if (!RefactorizeNow()) {
    result.status = LpStatus::kError;
    FillStats(result);
    return result;
  }

  // Phase 1: drive artificials to zero.
  if (PhaseOneInfeasibility() > options_.tolerance) {
    const LpStatus p1 = Iterate(/*phase_one=*/true);
    phase1_iterations_ = iterations_;
    if (p1 == LpStatus::kDeadlineExceeded || p1 == LpStatus::kIterationLimit) {
      return SnapshotPrimal(p1);
    }
    if (p1 == LpStatus::kError) {
      result.status = LpStatus::kError;
      FillStats(result);
      return result;
    }
    // Same tolerance as the phase-1 entry check above (see simplex.cc).
    if (PhaseOneInfeasibility() > options_.tolerance) {
      result.status = LpStatus::kInfeasible;
      result.iterations = iterations_;
      result.phase1_iterations = phase1_iterations_;
      FillStats(result);
      return result;
    }
  }
  if (!PivotOutArtificials()) {
    result.status = LpStatus::kError;
    FillStats(result);
    return result;
  }
  // Pin every artificial to zero for phase 2.
  for (int j = n_art_begin_; j < n_total_; ++j) {
    upper_[j] = 0.0;
    if (state_[j] != VarState::kBasic) {
      state_[j] = VarState::kAtLower;
      x_[j] = 0.0;
    }
  }

  const LpStatus p2 = Iterate(/*phase_one=*/false);
  return ExtractResult(p2);
}

}  // namespace

LpResult SolveLpRevised(const LpModel& model, const LpOptions& options) {
  RevisedSimplex solver(model, options);
  return solver.Solve();
}

}  // namespace rasa
