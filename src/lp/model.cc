#include "lp/model.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/strings.h"

namespace rasa {

int LpModel::AddVariable(double lower, double upper, double objective,
                         std::string name) {
  lower_.push_back(lower);
  upper_.push_back(upper);
  objective_.push_back(objective);
  integer_.push_back(false);
  if (name.empty()) name = StrFormat("x%d", num_variables() - 1);
  var_names_.push_back(std::move(name));
  columns_built_ = false;
  return num_variables() - 1;
}

void LpModel::SetInteger(int variable, bool is_integer) {
  integer_[variable] = is_integer;
}

int LpModel::AddConstraint(ConstraintType type, double rhs,
                           std::vector<LinearTerm> terms, std::string name) {
  // Accumulate duplicate variables so downstream code sees each column once.
  std::sort(terms.begin(), terms.end(),
            [](const LinearTerm& a, const LinearTerm& b) {
              return a.variable < b.variable;
            });
  std::vector<LinearTerm> merged;
  for (const LinearTerm& t : terms) {
    if (!merged.empty() && merged.back().variable == t.variable) {
      merged.back().coefficient += t.coefficient;
    } else {
      merged.push_back(t);
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const LinearTerm& t) {
                                return t.coefficient == 0.0;
                              }),
               merged.end());
  types_.push_back(type);
  rhs_.push_back(rhs);
  rows_.push_back(std::move(merged));
  if (name.empty()) name = StrFormat("c%d", num_constraints() - 1);
  row_names_.push_back(std::move(name));
  columns_built_ = false;
  return num_constraints() - 1;
}

void LpModel::EnsureColumns() const {
  if (columns_built_) return;
  const int n = num_variables();
  std::vector<int> counts(n + 1, 0);
  for (const std::vector<LinearTerm>& row : rows_) {
    for (const LinearTerm& t : row) ++counts[t.variable + 1];
  }
  col_start_.assign(n + 1, 0);
  for (int v = 0; v < n; ++v) col_start_[v + 1] = col_start_[v] + counts[v + 1];
  col_entries_.assign(col_start_[n], SparseEntry{});
  std::vector<int> cursor(col_start_.begin(), col_start_.end() - 1);
  // Rows are scanned in index order, so each column's entries come out
  // sorted by row with no duplicates (AddConstraint merged them).
  for (int c = 0; c < num_constraints(); ++c) {
    for (const LinearTerm& t : rows_[c]) {
      col_entries_[cursor[t.variable]++] = {c, t.coefficient};
    }
  }
  columns_built_ = true;
}

void LpModel::SetObjectiveCoefficient(int variable, double coefficient) {
  objective_[variable] = coefficient;
}

void LpModel::SetBounds(int variable, double lower, double upper) {
  lower_[variable] = lower;
  upper_[variable] = upper;
}

int LpModel::num_integer_variables() const {
  return static_cast<int>(std::count(integer_.begin(), integer_.end(), true));
}

double LpModel::ObjectiveValue(const std::vector<double>& solution) const {
  double value = 0.0;
  for (int v = 0; v < num_variables(); ++v) value += objective_[v] * solution[v];
  return value;
}

Status LpModel::CheckFeasible(const std::vector<double>& solution,
                              double tolerance) const {
  if (static_cast<int>(solution.size()) != num_variables()) {
    return InvalidArgumentError(
        StrFormat("solution has %zu entries, model has %d variables",
                  solution.size(), num_variables()));
  }
  for (int v = 0; v < num_variables(); ++v) {
    if (solution[v] < lower_[v] - tolerance ||
        solution[v] > upper_[v] + tolerance) {
      return FailedPreconditionError(
          StrFormat("variable %s=%g outside bounds [%g, %g]",
                    var_names_[v].c_str(), solution[v], lower_[v], upper_[v]));
    }
    if (integer_[v] &&
        std::abs(solution[v] - std::round(solution[v])) > tolerance) {
      return FailedPreconditionError(StrFormat(
          "integer variable %s=%g is fractional", var_names_[v].c_str(),
          solution[v]));
    }
  }
  for (int c = 0; c < num_constraints(); ++c) {
    double lhs = 0.0;
    for (const LinearTerm& t : rows_[c]) {
      lhs += t.coefficient * solution[t.variable];
    }
    bool ok = true;
    switch (types_[c]) {
      case ConstraintType::kLessEqual:
        ok = lhs <= rhs_[c] + tolerance;
        break;
      case ConstraintType::kGreaterEqual:
        ok = lhs >= rhs_[c] - tolerance;
        break;
      case ConstraintType::kEqual:
        ok = std::abs(lhs - rhs_[c]) <= tolerance;
        break;
    }
    if (!ok) {
      return FailedPreconditionError(
          StrFormat("constraint %s violated: lhs=%g rhs=%g",
                    row_names_[c].c_str(), lhs, rhs_[c]));
    }
  }
  return Status::OK();
}

Status LpModel::Validate() const {
  for (int v = 0; v < num_variables(); ++v) {
    if (std::isnan(lower_[v]) || std::isnan(upper_[v])) {
      return InvalidArgumentError(StrFormat("variable %d has NaN bound", v));
    }
    if (lower_[v] > upper_[v]) {
      return InvalidArgumentError(
          StrFormat("variable %d has lower %g > upper %g", v, lower_[v],
                    upper_[v]));
    }
  }
  for (int c = 0; c < num_constraints(); ++c) {
    if (!std::isfinite(rhs_[c])) {
      return InvalidArgumentError(StrFormat("constraint %d has non-finite rhs", c));
    }
    for (const LinearTerm& t : rows_[c]) {
      if (t.variable < 0 || t.variable >= num_variables()) {
        return InvalidArgumentError(
            StrFormat("constraint %d references unknown variable %d", c,
                      t.variable));
      }
      if (!std::isfinite(t.coefficient)) {
        return InvalidArgumentError(
            StrFormat("constraint %d has non-finite coefficient", c));
      }
    }
  }
  return Status::OK();
}

}  // namespace rasa
