#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "lp/revised_simplex.h"

namespace rasa {

const char* LpStatusToString(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "OPTIMAL";
    case LpStatus::kInfeasible:
      return "INFEASIBLE";
    case LpStatus::kUnbounded:
      return "UNBOUNDED";
    case LpStatus::kIterationLimit:
      return "ITERATION_LIMIT";
    case LpStatus::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case LpStatus::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Where a nonbasic variable currently sits.
enum class VarState : uint8_t { kBasic, kAtLower, kAtUpper, kFreeAtZero };

// Internal solver working on the equality standard form
//   min c'x  s.t.  A x = b,  l <= x <= u
// with columns ordered [structural | slack | artificial]. The basis inverse
// is kept as a dense matrix and updated by elementary row operations on each
// pivot (product-form update applied eagerly).
class Simplex {
 public:
  Simplex(const LpModel& model, const LpOptions& options)
      : model_(model), options_(options) {}

  LpResult Solve();

 private:
  // Column-wise sparse matrix entry.
  struct Entry {
    int row;
    double value;
  };

  void BuildStandardForm();
  void SetupInitialBasis();
  // Recomputes basic variable values from the basis inverse and the exact
  // nonbasic values, flushing the drift the incremental updates accumulate.
  void RefreshBasicValues();
  // Runs simplex pivots with the current cost vector until optimal or limit.
  // Returns the terminating status (kOptimal means "no improving column").
  LpStatus Iterate(bool phase_one);
  double ColumnDot(int col, const std::vector<double>& vec) const;
  void ComputeDuals(const std::vector<double>& costs,
                    std::vector<double>& y) const;
  double PhaseOneInfeasibility() const;
  void PivotOutArtificials();
  LpResult ExtractResult(LpStatus status);

  const LpModel& model_;
  const LpOptions& options_;

  int m_ = 0;        // rows
  int n_struct_ = 0; // structural columns
  int n_total_ = 0;  // structural + slack + artificial
  int n_art_begin_ = 0;

  std::vector<std::vector<Entry>> cols_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> cost_;       // phase-2 costs (minimization)
  std::vector<double> cost_p1_;    // phase-1 costs
  std::vector<double> b_;

  std::vector<double> x_;          // current values, all columns
  std::vector<int> basis_;         // column index per row
  std::vector<VarState> state_;
  std::vector<std::vector<double>> binv_;  // dense m x m basis inverse

  int iterations_ = 0;
  int phase1_iterations_ = 0;  // pivots spent before phase 2 began
  int max_iterations_ = 0;
  bool use_bland_ = false;
  int stall_count_ = 0;
  double sign_ = 1.0;  // +1 minimize, -1 maximize (costs pre-multiplied)
};

void Simplex::BuildStandardForm() {
  m_ = model_.num_constraints();
  n_struct_ = model_.num_variables();
  sign_ = model_.objective_sense() == ObjectiveSense::kMinimize ? 1.0 : -1.0;

  const int n_slack = m_;
  n_art_begin_ = n_struct_ + n_slack;
  n_total_ = n_art_begin_ + m_;  // one artificial per row (pruned later)

  cols_.assign(n_total_, {});
  lower_.assign(n_total_, 0.0);
  upper_.assign(n_total_, 0.0);
  cost_.assign(n_total_, 0.0);
  cost_p1_.assign(n_total_, 0.0);
  b_.assign(m_, 0.0);

  for (int v = 0; v < n_struct_; ++v) {
    lower_[v] = model_.lower_bound(v);
    upper_[v] = model_.upper_bound(v);
    cost_[v] = sign_ * model_.objective_coefficient(v);
  }
  for (int c = 0; c < m_; ++c) {
    b_[c] = model_.rhs(c);
    for (const LinearTerm& t : model_.constraint_terms(c)) {
      cols_[t.variable].push_back({c, t.coefficient});
    }
    const int slack = n_struct_ + c;
    cols_[slack].push_back({c, 1.0});
    switch (model_.constraint_type(c)) {
      case ConstraintType::kLessEqual:
        lower_[slack] = 0.0;
        upper_[slack] = kInf;
        break;
      case ConstraintType::kGreaterEqual:
        lower_[slack] = -kInf;
        upper_[slack] = 0.0;
        break;
      case ConstraintType::kEqual:
        lower_[slack] = 0.0;
        upper_[slack] = 0.0;
        break;
    }
  }
}

void Simplex::SetupInitialBasis() {
  x_.assign(n_total_, 0.0);
  state_.assign(n_total_, VarState::kAtLower);

  // Nonbasic columns rest at the finite bound nearest zero.
  for (int j = 0; j < n_art_begin_; ++j) {
    const double lo = lower_[j];
    const double hi = upper_[j];
    if (lo == -kInf && hi == kInf) {
      state_[j] = VarState::kFreeAtZero;
      x_[j] = 0.0;
    } else if (lo == -kInf) {
      state_[j] = VarState::kAtUpper;
      x_[j] = hi;
    } else if (hi == kInf) {
      state_[j] = VarState::kAtLower;
      x_[j] = lo;
    } else {
      // Both finite: pick the bound with smaller magnitude.
      if (std::abs(lo) <= std::abs(hi)) {
        state_[j] = VarState::kAtLower;
        x_[j] = lo;
      } else {
        state_[j] = VarState::kAtUpper;
        x_[j] = hi;
      }
    }
  }

  // Residual the artificials must absorb.
  std::vector<double> residual = b_;
  for (int j = 0; j < n_art_begin_; ++j) {
    if (x_[j] == 0.0) continue;
    for (const Entry& e : cols_[j]) residual[e.row] -= e.value * x_[j];
  }

  basis_.assign(m_, -1);
  binv_.assign(m_, std::vector<double>(m_, 0.0));
  for (int i = 0; i < m_; ++i) {
    const int art = n_art_begin_ + i;
    const double sgn = residual[i] >= 0.0 ? 1.0 : -1.0;
    cols_[art].push_back({i, sgn});
    lower_[art] = 0.0;
    upper_[art] = kInf;
    cost_p1_[art] = 1.0;
    x_[art] = std::abs(residual[i]);
    basis_[i] = art;
    state_[art] = VarState::kBasic;
    binv_[i][i] = sgn;  // inverse of the +/-1 diagonal artificial basis
  }
}

void Simplex::RefreshBasicValues() {
  std::vector<double> residual = b_;
  std::vector<char> is_basic(n_total_, 0);
  for (int i = 0; i < m_; ++i) is_basic[basis_[i]] = 1;
  for (int j = 0; j < n_total_; ++j) {
    if (is_basic[j] || x_[j] == 0.0) continue;
    for (const Entry& e : cols_[j]) residual[e.row] -= e.value * x_[j];
  }
  for (int i = 0; i < m_; ++i) {
    double v = 0.0;
    const std::vector<double>& row = binv_[i];
    for (int k = 0; k < m_; ++k) v += row[k] * residual[k];
    x_[basis_[i]] = v;
  }
}

double Simplex::ColumnDot(int col, const std::vector<double>& vec) const {
  double acc = 0.0;
  for (const Entry& e : cols_[col]) acc += e.value * vec[e.row];
  return acc;
}

void Simplex::ComputeDuals(const std::vector<double>& costs,
                           std::vector<double>& y) const {
  y.assign(m_, 0.0);
  for (int i = 0; i < m_; ++i) {
    const double cb = costs[basis_[i]];
    if (cb == 0.0) continue;
    const std::vector<double>& row = binv_[i];
    for (int k = 0; k < m_; ++k) y[k] += cb * row[k];
  }
}

double Simplex::PhaseOneInfeasibility() const {
  double total = 0.0;
  for (int j = n_art_begin_; j < n_total_; ++j) total += x_[j];
  return total;
}

LpStatus Simplex::Iterate(bool phase_one) {
  const std::vector<double>& costs = phase_one ? cost_p1_ : cost_;
  const double tol = options_.tolerance;
  std::vector<double> y;
  std::vector<double> w(m_);

  double last_objective = kInf;
  stall_count_ = 0;
  use_bland_ = false;

  while (true) {
    if (iterations_ >= max_iterations_) return LpStatus::kIterationLimit;
    // One clock read per pivot is negligible next to the O(m^2) pivot work
    // and keeps large models honest about their deadline.
    if (options_.deadline.Expired()) return LpStatus::kDeadlineExceeded;
    ++iterations_;
    // Periodically flush accumulated drift in the incremental x updates.
    if ((iterations_ & 127) == 0) RefreshBasicValues();

    ComputeDuals(costs, y);

    // Pricing: find an improving nonbasic column. Artificials are never
    // priced: they start basic and must not re-enter once they leave.
    int entering = -1;
    double entering_dir = 0.0;
    double best_violation = tol;
    const int n_price = n_art_begin_;
    for (int j = 0; j < n_price; ++j) {
      const VarState st = state_[j];
      if (st == VarState::kBasic) continue;
      if (!phase_one && lower_[j] == upper_[j]) continue;  // fixed
      const double d = costs[j] - ColumnDot(j, y);
      double violation = 0.0;
      double dir = 0.0;
      if (st == VarState::kAtLower || st == VarState::kFreeAtZero) {
        if (d < -tol) {
          violation = -d;
          dir = 1.0;
        }
      }
      if (violation == 0.0 &&
          (st == VarState::kAtUpper || st == VarState::kFreeAtZero)) {
        if (d > tol) {
          violation = d;
          dir = -1.0;
        }
      }
      if (violation == 0.0) continue;
      if (use_bland_) {
        entering = j;
        entering_dir = dir;
        break;  // Bland: first improving index.
      }
      if (violation > best_violation) {
        best_violation = violation;
        entering = j;
        entering_dir = dir;
      }
    }
    if (entering < 0) return LpStatus::kOptimal;

    // Direction of basic variables: w = Binv * A_entering.
    std::fill(w.begin(), w.end(), 0.0);
    for (const Entry& e : cols_[entering]) {
      if (e.value == 0.0) continue;
      for (int i = 0; i < m_; ++i) w[i] += binv_[i][e.row] * e.value;
    }

    // Ratio test. x_entering moves by entering_dir * t, basics move by
    // -entering_dir * t * w.
    double t_max = kInf;
    int leaving_row = -1;
    double leaving_bound = 0.0;  // value the leaving basic hits
    const double pivot_tol = 1e-9;
    for (int i = 0; i < m_; ++i) {
      const double rate = entering_dir * w[i];
      const int bj = basis_[i];
      if (rate > pivot_tol) {
        if (lower_[bj] == -kInf) continue;
        const double t = (x_[bj] - lower_[bj]) / rate;
        if (t < t_max - 1e-12 ||
            (t < t_max + 1e-12 && leaving_row >= 0 &&
             std::abs(w[i]) > std::abs(w[leaving_row]))) {
          t_max = std::max(t, 0.0);
          leaving_row = i;
          leaving_bound = lower_[bj];
        }
      } else if (rate < -pivot_tol) {
        if (upper_[bj] == kInf) continue;
        const double t = (x_[bj] - upper_[bj]) / rate;
        if (t < t_max - 1e-12 ||
            (t < t_max + 1e-12 && leaving_row >= 0 &&
             std::abs(w[i]) > std::abs(w[leaving_row]))) {
          t_max = std::max(t, 0.0);
          leaving_row = i;
          leaving_bound = upper_[bj];
        }
      }
    }
    // The entering variable may hit its own opposite bound first.
    double t_flip = kInf;
    if (lower_[entering] != -kInf && upper_[entering] != kInf) {
      t_flip = upper_[entering] - lower_[entering];
    }
    if (t_flip < t_max) {
      // Bound flip: no basis change.
      const double t = t_flip;
      x_[entering] += entering_dir * t;
      for (int i = 0; i < m_; ++i) x_[basis_[i]] -= entering_dir * t * w[i];
      state_[entering] = entering_dir > 0 ? VarState::kAtUpper
                                          : VarState::kAtLower;
      continue;
    }
    if (leaving_row < 0) {
      return phase_one ? LpStatus::kError : LpStatus::kUnbounded;
    }

    // Apply the step.
    const double t = t_max;
    x_[entering] += entering_dir * t;
    for (int i = 0; i < m_; ++i) x_[basis_[i]] -= entering_dir * t * w[i];

    const int leaving = basis_[leaving_row];
    x_[leaving] = leaving_bound;  // snap to its bound exactly
    state_[leaving] = (leaving_bound == lower_[leaving]) ? VarState::kAtLower
                                                         : VarState::kAtUpper;
    basis_[leaving_row] = entering;
    state_[entering] = VarState::kBasic;

    // Update the dense basis inverse: eliminate column `entering` from all
    // rows except leaving_row.
    const double pivot = w[leaving_row];
    std::vector<double>& prow = binv_[leaving_row];
    const double inv_pivot = 1.0 / pivot;
    for (int k = 0; k < m_; ++k) prow[k] *= inv_pivot;
    for (int i = 0; i < m_; ++i) {
      if (i == leaving_row) continue;
      const double f = w[i];
      if (f == 0.0) continue;
      std::vector<double>& row = binv_[i];
      for (int k = 0; k < m_; ++k) row[k] -= f * prow[k];
    }

    // Degeneracy control: if the objective stalls for many pivots, fall back
    // to Bland's rule, which guarantees termination.
    double objective = 0.0;
    for (int i = 0; i < m_; ++i) objective += costs[basis_[i]] * x_[basis_[i]];
    if (objective >= last_objective - 1e-12) {
      if (++stall_count_ > 2 * (m_ + n_struct_) + 64) use_bland_ = true;
    } else {
      stall_count_ = 0;
      last_objective = objective;
    }
  }
}

void Simplex::PivotOutArtificials() {
  // Any artificial still basic at value ~0 is swapped for a non-artificial
  // column with a nonzero pivot in its row; if none exists the row is
  // redundant and the artificial stays, pinned to zero.
  for (int i = 0; i < m_; ++i) {
    const int bj = basis_[i];
    if (bj < n_art_begin_) continue;
    int replacement = -1;
    double best_abs = 1e-7;
    for (int j = 0; j < n_art_begin_; ++j) {
      if (state_[j] == VarState::kBasic) continue;
      // (Binv * A_j)[i]
      double wij = 0.0;
      for (const Entry& e : cols_[j]) wij += binv_[i][e.row] * e.value;
      if (std::abs(wij) > best_abs) {
        best_abs = std::abs(wij);
        replacement = j;
      }
    }
    if (replacement < 0) continue;
    // Pivot with step 0 (the artificial is at 0, so x does not change).
    std::vector<double> w(m_, 0.0);
    for (const Entry& e : cols_[replacement]) {
      for (int r = 0; r < m_; ++r) w[r] += binv_[r][e.row] * e.value;
    }
    const double pivot = w[i];
    state_[bj] = VarState::kAtLower;
    x_[bj] = 0.0;
    basis_[i] = replacement;
    state_[replacement] = VarState::kBasic;
    std::vector<double>& prow = binv_[i];
    const double inv_pivot = 1.0 / pivot;
    for (int k = 0; k < m_; ++k) prow[k] *= inv_pivot;
    for (int r = 0; r < m_; ++r) {
      if (r == i) continue;
      const double f = w[r];
      if (f == 0.0) continue;
      for (int k = 0; k < m_; ++k) binv_[r][k] -= f * prow[k];
    }
  }
}

LpResult Simplex::ExtractResult(LpStatus status) {
  LpResult result;
  result.status = status;
  result.iterations = iterations_;
  result.phase1_iterations = phase1_iterations_;
  result.phase2_iterations = iterations_ - phase1_iterations_;
  RefreshBasicValues();
  result.primal.assign(n_struct_, 0.0);
  for (int v = 0; v < n_struct_; ++v) {
    double val = x_[v];
    // Snap numerical noise onto bounds; never return out-of-bound values.
    if (lower_[v] != -kInf) val = std::max(val, lower_[v]);
    if (upper_[v] != kInf) val = std::min(val, upper_[v]);
    result.primal[v] = val;
  }
  result.objective = model_.ObjectiveValue(result.primal);

  if (status == LpStatus::kOptimal || status == LpStatus::kIterationLimit ||
      status == LpStatus::kDeadlineExceeded) {
    std::vector<double> y;
    ComputeDuals(cost_, y);
    // Internal costs were sign_ * original; duals and reduced costs convert
    // back to the model's own sense.
    result.dual.assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) result.dual[i] = sign_ * y[i];
    result.reduced_costs.assign(n_struct_, 0.0);
    for (int v = 0; v < n_struct_; ++v) {
      result.reduced_costs[v] = sign_ * (cost_[v] - ColumnDot(v, y));
    }
  }
  return result;
}

LpResult Simplex::Solve() {
  LpResult result;
  Status valid = model_.Validate();
  if (!valid.ok()) {
    RASA_LOG(Warning) << "invalid LP model: " << valid.ToString();
    result.status = LpStatus::kError;
    return result;
  }

  BuildStandardForm();
  SetupInitialBasis();

  max_iterations_ = options_.max_iterations > 0
                        ? options_.max_iterations
                        : 200 * (m_ + n_struct_) + 2000;

  // Phase 1: drive artificials to zero.
  if (PhaseOneInfeasibility() > options_.tolerance) {
    LpStatus p1 = Iterate(/*phase_one=*/true);
    phase1_iterations_ = iterations_;
    if (p1 == LpStatus::kDeadlineExceeded || p1 == LpStatus::kIterationLimit) {
      result.status = p1;
      result.iterations = iterations_;
      result.phase1_iterations = phase1_iterations_;
      // Snapshot of the (possibly infeasible) point so callers always get a
      // primal of the right size; duals stay empty. Clamped to bounds.
      result.primal.assign(x_.begin(), x_.begin() + n_struct_);
      for (int v = 0; v < n_struct_; ++v) {
        if (lower_[v] != -kInf) result.primal[v] = std::max(result.primal[v], lower_[v]);
        if (upper_[v] != kInf) result.primal[v] = std::min(result.primal[v], upper_[v]);
      }
      result.objective = model_.ObjectiveValue(result.primal);
      return result;
    }
    if (p1 == LpStatus::kError) {
      result.status = LpStatus::kError;
      return result;
    }
    // Same tolerance as the phase-1 entry check above: a hardcoded
    // constant here would ignore caller-tightened tolerances and reject
    // feasible-within-tolerance problems under loosened ones.
    if (PhaseOneInfeasibility() > options_.tolerance) {
      result.status = LpStatus::kInfeasible;
      result.iterations = iterations_;
      result.phase1_iterations = phase1_iterations_;
      return result;
    }
  }
  PivotOutArtificials();
  // Pin every artificial to zero for phase 2.
  for (int j = n_art_begin_; j < n_total_; ++j) {
    upper_[j] = 0.0;
    if (state_[j] != VarState::kBasic) {
      state_[j] = VarState::kAtLower;
      x_[j] = 0.0;
    }
  }

  LpStatus p2 = Iterate(/*phase_one=*/false);
  return ExtractResult(p2);
}

}  // namespace

const char* LpAlgorithmToString(LpAlgorithm algorithm) {
  switch (algorithm) {
    case LpAlgorithm::kRevised:
      return "revised";
    case LpAlgorithm::kDenseTableau:
      return "dense_tableau";
  }
  return "unknown";
}

LpResult SolveLpDenseTableau(const LpModel& model, const LpOptions& options) {
  Simplex solver(model, options);
  return solver.Solve();
}

LpResult SolveLp(const LpModel& model, const LpOptions& options) {
  if (options.algorithm == LpAlgorithm::kDenseTableau) {
    return SolveLpDenseTableau(model, options);
  }
  if (options.dense_size_cutoff > 0 &&
      model.num_constraints() <= options.dense_size_cutoff &&
      model.num_variables() <= 2 * options.dense_size_cutoff) {
    return SolveLpDenseTableau(model, options);
  }
  LpResult result = SolveLpRevised(model, options);
  if (result.status == LpStatus::kError) {
    // The revised path never silently degrades an answer: on a numerical
    // failure the battle-tested dense tableau gets the final word.
    return SolveLpDenseTableau(model, options);
  }
  return result;
}

}  // namespace rasa
