#ifndef RASA_LP_MODEL_H_
#define RASA_LP_MODEL_H_

#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/sparse.h"

namespace rasa {

inline constexpr double kLpInfinity = std::numeric_limits<double>::infinity();

enum class ObjectiveSense { kMinimize, kMaximize };

enum class ConstraintType { kLessEqual, kGreaterEqual, kEqual };

/// One nonzero coefficient of a linear expression.
struct LinearTerm {
  int variable = 0;
  double coefficient = 0.0;
};

/// A linear program (or the LP part of a MIP): variables with bounds and
/// objective coefficients, plus sparse linear constraints. Rows and columns
/// are addressed by the dense indices returned at creation time.
class LpModel {
 public:
  LpModel() = default;

  /// Adds a variable with bounds [lower, upper] (either may be +/-infinite)
  /// and the given objective coefficient. Returns its index.
  int AddVariable(double lower, double upper, double objective,
                  std::string name = "");

  /// Marks a variable as integer-constrained. Ignored by the LP solver but
  /// honored by the MIP branch-and-bound layer.
  void SetInteger(int variable, bool is_integer = true);

  /// Adds a constraint sum(terms) <type> rhs. Returns its row index.
  /// Duplicate variable entries in `terms` are accumulated.
  int AddConstraint(ConstraintType type, double rhs,
                    std::vector<LinearTerm> terms, std::string name = "");

  void SetObjectiveSense(ObjectiveSense sense) { sense_ = sense; }
  ObjectiveSense objective_sense() const { return sense_; }

  void SetObjectiveCoefficient(int variable, double coefficient);
  void SetBounds(int variable, double lower, double upper);

  int num_variables() const { return static_cast<int>(lower_.size()); }
  int num_constraints() const { return static_cast<int>(rhs_.size()); }
  int num_integer_variables() const;

  double lower_bound(int v) const { return lower_[v]; }
  double upper_bound(int v) const { return upper_[v]; }
  double objective_coefficient(int v) const { return objective_[v]; }
  bool is_integer(int v) const { return integer_[v]; }
  const std::string& variable_name(int v) const { return var_names_[v]; }

  ConstraintType constraint_type(int c) const { return types_[c]; }
  double rhs(int c) const { return rhs_[c]; }
  const std::vector<LinearTerm>& constraint_terms(int c) const {
    return rows_[c];
  }
  const std::string& constraint_name(int c) const { return row_names_[c]; }

  /// Objective value of a full assignment (no feasibility check).
  double ObjectiveValue(const std::vector<double>& solution) const;

  /// Checks bounds, integrality (for integer variables) and all constraints
  /// within `tolerance`. Returns OK or a message naming the first violation.
  /// The default equals LpOptions::FeasibilityTolerance() at the default
  /// simplex tolerance; callers auditing solver output with a non-default
  /// LpOptions should pass options.FeasibilityTolerance() so the audit
  /// tracks the kernel's tolerance.
  Status CheckFeasible(const std::vector<double>& solution,
                       double tolerance = 1e-6) const;

  /// Structural validation (finite rhs, lower <= upper, indices in range).
  Status Validate() const;

  /// Column-wise (CSC) view of the constraint matrix, the layout the
  /// revised simplex prices and FTRANs against. Compiled lazily from the
  /// row-wise storage on first use and cached; adding a variable or a
  /// constraint invalidates the cache, bound/objective edits do not.
  /// Not safe to build concurrently from multiple threads (per-solve
  /// models are single-threaded scratch everywhere in this codebase).
  SparseColumnView column(int v) const {
    EnsureColumns();
    return {col_entries_.data() + col_start_[v],
            col_start_[v + 1] - col_start_[v]};
  }

 private:
  void EnsureColumns() const;
  ObjectiveSense sense_ = ObjectiveSense::kMinimize;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> objective_;
  std::vector<bool> integer_;
  std::vector<std::string> var_names_;

  std::vector<ConstraintType> types_;
  std::vector<double> rhs_;
  std::vector<std::vector<LinearTerm>> rows_;
  std::vector<std::string> row_names_;

  // Lazily compiled CSC cache (see column()).
  mutable bool columns_built_ = false;
  mutable std::vector<int> col_start_;
  mutable std::vector<SparseEntry> col_entries_;
};

}  // namespace rasa

#endif  // RASA_LP_MODEL_H_
