#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/rng.h"

namespace rasa {

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Random(int rows, int cols, double scale, Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.NextDouble(-scale, scale);
  return m;
}

namespace {

/// Column-tile width of the blocked kernels: 64 doubles = 4KB per B-row
/// stripe segment, so a K x 64 stripe of B stays cache-resident while every
/// row of A streams against it.
constexpr int kMatMulTile = 64;

}  // namespace

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  const int n = other.cols_;
  // Blocked i-k-j: the jb stripe of `other` is reused across all rows of
  // `this` before moving on. For every output cell the k-accumulation order
  // is unchanged (ascending, zeros skipped), so tiling is bit-identical to
  // the naive kernel.
  for (int jb = 0; jb < n; jb += kMatMulTile) {
    const int je = std::min(n, jb + kMatMulTile);
    for (int i = 0; i < rows_; ++i) {
      const double* a_row = &data_[static_cast<size_t>(i) * cols_];
      double* o_row = &out.data_[static_cast<size_t>(i) * n];
      for (int k = 0; k < cols_; ++k) {
        const double a = a_row[k];
        if (a == 0.0) continue;
        const double* b_row = &other.data_[static_cast<size_t>(k) * n];
        for (int j = jb; j < je; ++j) o_row[j] += a * b_row[j];
      }
    }
  }
  return out;
}

Matrix Matrix::TransposedMatMul(const Matrix& other) const {
  assert(rows_ == other.rows_);
  Matrix out(cols_, other.cols_);
  const int n = other.cols_;
  // out[i][j] = sum_k this[k][i] * other[k][j]: k outer keeps both inputs
  // row-contiguous, and every output cell still accumulates in ascending-k
  // order — the same sums, in the same order, as Transpose().MatMul(other).
  for (int k = 0; k < rows_; ++k) {
    const double* a_row = &data_[static_cast<size_t>(k) * cols_];
    const double* b_row = &other.data_[static_cast<size_t>(k) * n];
    for (int i = 0; i < cols_; ++i) {
      const double a = a_row[i];
      if (a == 0.0) continue;
      double* o_row = &out.data_[static_cast<size_t>(i) * n];
      for (int j = 0; j < n; ++j) o_row[j] += a * b_row[j];
    }
  }
  return out;
}

Matrix Matrix::MatMulTransposed(const Matrix& other) const {
  assert(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  // out[i][j] = dot(this.row(i), other.row(j)): both operands stream
  // contiguously with no transpose scratch matrix.
  for (int i = 0; i < rows_; ++i) {
    const double* a_row = &data_[static_cast<size_t>(i) * cols_];
    double* o_row = &out.data_[static_cast<size_t>(i) * other.rows_];
    for (int j = 0; j < other.rows_; ++j) {
      const double* b_row = &other.data_[static_cast<size_t>(j) * cols_];
      double acc = 0.0;
      for (int k = 0; k < cols_; ++k) {
        const double a = a_row[k];
        if (a == 0.0) continue;
        acc += a * b_row[k];
      }
      o_row[j] = acc;
    }
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Matrix& Matrix::AddInPlace(const Matrix& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::SubInPlace(const Matrix& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::ScaleInPlace(double factor) {
  for (double& v : data_) v *= factor;
  return *this;
}

Matrix& Matrix::AddRowBroadcast(const Matrix& row_vector) {
  assert(row_vector.rows_ == 1 && row_vector.cols_ == cols_);
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j) (*this)(i, j) += row_vector(0, j);
  return *this;
}

Matrix Matrix::Relu() const {
  Matrix out = *this;
  for (double& v : out.data_) v = std::max(0.0, v);
  return out;
}

Matrix Matrix::ReluMask() const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] > 0.0 ? 1.0 : 0.0;
  return out;
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  assert(SameShape(other));
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

Matrix Matrix::SoftmaxRows() const {
  Matrix out(rows_, cols_);
  for (int i = 0; i < rows_; ++i) {
    double max_v = -1e300;
    for (int j = 0; j < cols_; ++j) max_v = std::max(max_v, (*this)(i, j));
    double sum = 0.0;
    for (int j = 0; j < cols_; ++j) {
      out(i, j) = std::exp((*this)(i, j) - max_v);
      sum += out(i, j);
    }
    for (int j = 0; j < cols_; ++j) out(i, j) /= sum;
  }
  return out;
}

Matrix Matrix::MeanRows() const {
  Matrix out(1, cols_);
  if (rows_ == 0) return out;
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j) out(0, j) += (*this)(i, j);
  out.ScaleInPlace(1.0 / rows_);
  return out;
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

std::string Matrix::DebugString() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [";
  for (int i = 0; i < std::min(rows_, 4); ++i) {
    os << (i ? "; " : "");
    for (int j = 0; j < std::min(cols_, 6); ++j)
      os << (j ? " " : "") << (*this)(i, j);
    if (cols_ > 6) os << " ...";
  }
  if (rows_ > 4) os << "; ...";
  os << "]";
  return os.str();
}

}  // namespace rasa
