#ifndef RASA_LINALG_SPARSE_H_
#define RASA_LINALG_SPARSE_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace rasa {

/// One nonzero of a sparse column or vector: the row index and the value.
struct SparseEntry {
  int row = 0;
  double value = 0.0;
};

/// A sparse column as a contiguous view into someone else's storage. Cheap
/// to copy; valid only while the backing storage is alive and unmodified.
struct SparseColumnView {
  const SparseEntry* data = nullptr;
  int size = 0;

  const SparseEntry* begin() const { return data; }
  const SparseEntry* end() const { return data + size; }
};

/// Compressed-sparse-row matrix of doubles with per-row column indices in
/// strictly ascending order. Built for the GCN's normalized adjacency: the
/// dense kernels accumulate every output cell in ascending-k order and skip
/// exact zeros, so SpMM over an ascending-sorted CSR produces bit-identical
/// results while storing O(nnz) instead of O(n^2).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// From triplets (duplicates summed); rows get sorted by column id.
  static CsrMatrix FromTriplets(int rows, int cols,
                                const std::vector<int>& row_ids,
                                const std::vector<int>& col_ids,
                                const std::vector<double>& values);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  /// Entry (r, c) by binary search over the row, 0 when absent. O(log deg);
  /// for tests and spot checks, not for kernels.
  double At(int r, int c) const;

  /// this * dense. Requires cols() == dense.rows(). Row-blocked
  /// SpMM: for each row, each stored nonzero streams a contiguous axpy over
  /// the dense row — ascending-k accumulation per output cell, bit-identical
  /// to Matrix::MatMul on the dense equivalent.
  Matrix MatMul(const Matrix& dense) const;

  /// Dense copy (tests / debugging).
  Matrix ToDense() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> row_offsets_;  // size rows_ + 1
  std::vector<int> col_index_;    // ascending within each row
  std::vector<double> values_;
};

/// Basis "factorization" in product form (eta file): the inverse of the
/// current basis B is represented as
///
///   B^{-1} = Q^T * E_K^{-1} * ... * E_1^{-1}
///
/// where each E_k is an eta matrix (identity with one column replaced) and
/// Q is the row permutation accumulated while pivoting. A refactorization
/// rebuilds the file from the basis columns by Gauss-Jordan elimination
/// with partial (largest-magnitude, lowest-row tie-break) pivoting, which
/// is deterministic; a pivot update appends exactly one eta. FTRAN solves
/// B w = a, BTRAN solves B^T y = c. All kernels touch only the nonzeros of
/// the eta vectors, so cost tracks the fill of the factorization rather
/// than m^2.
///
/// The class is agnostic to what the basis columns are; callers pass views
/// into their own column storage at refactorization time.
class BasisFactorization {
 public:
  struct Options {
    /// A pivot below this is treated as singular during refactorization.
    double singular_tol = 1e-11;
    /// Eta entries with magnitude below this are dropped (except pivots).
    double drop_tol = 1e-13;
  };

  BasisFactorization() = default;
  explicit BasisFactorization(Options options) : options_(options) {}

  /// Rebuilds the eta file from scratch for the m columns provided by
  /// `column_of(position)`. Returns false (leaving the factorization
  /// unusable) if the column set is numerically singular.
  bool Refactorize(int m,
                   const std::vector<SparseColumnView>& basis_columns);

  /// True after a successful Refactorize.
  bool valid() const { return valid_; }
  int dimension() const { return m_; }

  /// FTRAN: solves B w = a for a sparse right-hand side. `w` is returned
  /// over *basis positions* (w[k] pairs with basis column k); the row-space
  /// intermediate is left in `row_scratch` for a subsequent Update.
  void FtranColumn(SparseColumnView a, std::vector<double>& w);

  /// FTRAN for a dense row-space right-hand side (e.g. b - N x_N). The
  /// input is consumed; the result is over basis positions.
  void FtranDense(std::vector<double>& rhs, std::vector<double>& w);

  /// BTRAN: solves B^T y = c where `c` is given over basis positions
  /// (c[k] pairs with basis column k). `y` is a dense row-space vector.
  void Btran(const std::vector<double>& c, std::vector<double>& y);

  /// Row-space solve of B^T rho = e_{position}: the vector whose dots with
  /// the nonbasic columns form row `position` of B^{-1}N (dual pricing).
  void BtranUnit(int position, std::vector<double>& rho);

  /// Replaces the basis column at `position` with the column whose FTRAN
  /// was just computed by FtranColumn/FtranDense (its row-space image is
  /// still in the internal scratch). Appends one eta. Returns false when
  /// the pivot element is smaller than `min_pivot` — the caller should
  /// refactorize instead of updating.
  bool Update(int position, double min_pivot);

  /// Number of etas currently in the file (m after a refactorization).
  int eta_count() const { return static_cast<int>(etas_.size()); }
  /// Total nonzeros across the eta file (the factorization fill).
  size_t fill_nnz() const { return fill_nnz_; }

 private:
  struct Eta {
    int pivot_row = 0;
    double pivot_value = 1.0;
    std::vector<SparseEntry> off;  // entries in rows != pivot_row
  };

  void ApplyEtasInPlace(std::vector<double>& x) const;
  void AppendEta(int pivot_row, const std::vector<double>& dense);

  Options options_;
  int m_ = 0;
  bool valid_ = false;
  std::vector<Eta> etas_;
  size_t fill_nnz_ = 0;
  std::vector<int> pivot_row_of_;  // basis position -> pivot row
  std::vector<double> scratch_;    // row-space work vector
};

}  // namespace rasa

#endif  // RASA_LINALG_SPARSE_H_
