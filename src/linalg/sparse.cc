#include "linalg/sparse.h"

#include <algorithm>
#include <cmath>

namespace rasa {

CsrMatrix CsrMatrix::FromTriplets(int rows, int cols,
                                  const std::vector<int>& row_ids,
                                  const std::vector<int>& col_ids,
                                  const std::vector<double>& values) {
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  // Counting pass, then a per-row sort by column id; duplicates merge by
  // summation during the compaction sweep.
  m.row_offsets_.assign(rows + 1, 0);
  for (int r : row_ids) ++m.row_offsets_[r + 1];
  for (int r = 0; r < rows; ++r) m.row_offsets_[r + 1] += m.row_offsets_[r];
  std::vector<int> cursor(m.row_offsets_.begin(), m.row_offsets_.end() - 1);
  m.col_index_.resize(values.size());
  m.values_.resize(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const int at = cursor[row_ids[i]]++;
    m.col_index_[at] = col_ids[i];
    m.values_[at] = values[i];
  }
  size_t out = 0;
  std::vector<std::pair<int, double>> row;
  std::vector<int> new_offsets(rows + 1, 0);
  for (int r = 0; r < rows; ++r) {
    row.clear();
    for (int i = m.row_offsets_[r]; i < m.row_offsets_[r + 1]; ++i) {
      row.push_back({m.col_index_[i], m.values_[i]});
    }
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (size_t i = 0; i < row.size(); ++i) {
      if (out > static_cast<size_t>(new_offsets[r]) && i > 0 &&
          m.col_index_[out - 1] == row[i].first) {
        m.values_[out - 1] += row[i].second;
      } else {
        m.col_index_[out] = row[i].first;
        m.values_[out] = row[i].second;
        ++out;
      }
    }
    new_offsets[r + 1] = static_cast<int>(out);
  }
  m.row_offsets_ = std::move(new_offsets);
  m.col_index_.resize(out);
  m.values_.resize(out);
  return m;
}

double CsrMatrix::At(int r, int c) const {
  const int begin = row_offsets_[r];
  const int end = row_offsets_[r + 1];
  const auto it = std::lower_bound(col_index_.begin() + begin,
                                   col_index_.begin() + end, c);
  if (it != col_index_.begin() + end && *it == c) {
    return values_[it - col_index_.begin()];
  }
  return 0.0;
}

Matrix CsrMatrix::MatMul(const Matrix& dense) const {
  assert(cols_ == dense.rows());
  const int n = dense.cols();
  Matrix out(rows_, n);
  for (int i = 0; i < rows_; ++i) {
    double* o_row = out.data() + static_cast<size_t>(i) * n;
    for (int t = row_offsets_[i]; t < row_offsets_[i + 1]; ++t) {
      const double a = values_[t];
      const double* b_row =
          dense.data() + static_cast<size_t>(col_index_[t]) * n;
      for (int j = 0; j < n; ++j) o_row[j] += a * b_row[j];
    }
  }
  return out;
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int t = row_offsets_[r]; t < row_offsets_[r + 1]; ++t) {
      out(r, col_index_[t]) = values_[t];
    }
  }
  return out;
}

bool BasisFactorization::Refactorize(
    int m, const std::vector<SparseColumnView>& basis_columns) {
  m_ = m;
  valid_ = false;
  etas_.clear();
  fill_nnz_ = 0;
  pivot_row_of_.assign(m, -1);
  scratch_.assign(m, 0.0);
  std::vector<char> row_used(m, 0);

  for (int k = 0; k < m; ++k) {
    std::fill(scratch_.begin(), scratch_.end(), 0.0);
    for (const SparseEntry& e : basis_columns[k]) {
      scratch_[e.row] += e.value;
    }
    ApplyEtasInPlace(scratch_);
    // Partial pivoting: the largest remaining magnitude; the lowest row on
    // ties (strict > keeps the scan deterministic).
    int pivot = -1;
    double best = options_.singular_tol;
    for (int r = 0; r < m; ++r) {
      if (row_used[r]) continue;
      const double mag = std::abs(scratch_[r]);
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (pivot < 0) return false;  // numerically singular column set
    row_used[pivot] = 1;
    pivot_row_of_[k] = pivot;
    AppendEta(pivot, scratch_);
  }
  valid_ = true;
  return true;
}

void BasisFactorization::ApplyEtasInPlace(std::vector<double>& x) const {
  for (const Eta& eta : etas_) {
    const double xp = x[eta.pivot_row] / eta.pivot_value;
    x[eta.pivot_row] = xp;
    if (xp == 0.0) continue;  // exact sparsity shortcut
    for (const SparseEntry& e : eta.off) {
      x[e.row] -= e.value * xp;
    }
  }
}

void BasisFactorization::AppendEta(int pivot_row,
                                   const std::vector<double>& dense) {
  Eta eta;
  eta.pivot_row = pivot_row;
  eta.pivot_value = dense[pivot_row];
  for (int r = 0; r < m_; ++r) {
    if (r == pivot_row) continue;
    const double v = dense[r];
    if (std::abs(v) > options_.drop_tol) eta.off.push_back({r, v});
  }
  fill_nnz_ += 1 + eta.off.size();
  etas_.push_back(std::move(eta));
}

void BasisFactorization::FtranColumn(SparseColumnView a,
                                     std::vector<double>& w) {
  std::fill(scratch_.begin(), scratch_.end(), 0.0);
  for (const SparseEntry& e : a) scratch_[e.row] += e.value;
  ApplyEtasInPlace(scratch_);
  w.resize(m_);
  for (int k = 0; k < m_; ++k) w[k] = scratch_[pivot_row_of_[k]];
}

void BasisFactorization::FtranDense(std::vector<double>& rhs,
                                    std::vector<double>& w) {
  scratch_ = rhs;
  ApplyEtasInPlace(scratch_);
  w.resize(m_);
  for (int k = 0; k < m_; ++k) w[k] = scratch_[pivot_row_of_[k]];
}

void BasisFactorization::Btran(const std::vector<double>& c,
                               std::vector<double>& y) {
  y.assign(m_, 0.0);
  for (int k = 0; k < m_; ++k) y[pivot_row_of_[k]] = c[k];
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double acc = y[it->pivot_row];
    for (const SparseEntry& e : it->off) acc -= e.value * y[e.row];
    y[it->pivot_row] = acc / it->pivot_value;
  }
}

void BasisFactorization::BtranUnit(int position, std::vector<double>& rho) {
  rho.assign(m_, 0.0);
  rho[pivot_row_of_[position]] = 1.0;
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double acc = rho[it->pivot_row];
    for (const SparseEntry& e : it->off) acc -= e.value * rho[e.row];
    rho[it->pivot_row] = acc / it->pivot_value;
  }
}

bool BasisFactorization::Update(int position, double min_pivot) {
  const int pivot_row = pivot_row_of_[position];
  if (std::abs(scratch_[pivot_row]) < min_pivot) return false;
  AppendEta(pivot_row, scratch_);
  return true;
}

}  // namespace rasa
