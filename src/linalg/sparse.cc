#include "linalg/sparse.h"

#include <algorithm>
#include <cmath>

namespace rasa {

bool BasisFactorization::Refactorize(
    int m, const std::vector<SparseColumnView>& basis_columns) {
  m_ = m;
  valid_ = false;
  etas_.clear();
  fill_nnz_ = 0;
  pivot_row_of_.assign(m, -1);
  scratch_.assign(m, 0.0);
  std::vector<char> row_used(m, 0);

  for (int k = 0; k < m; ++k) {
    std::fill(scratch_.begin(), scratch_.end(), 0.0);
    for (const SparseEntry& e : basis_columns[k]) {
      scratch_[e.row] += e.value;
    }
    ApplyEtasInPlace(scratch_);
    // Partial pivoting: the largest remaining magnitude; the lowest row on
    // ties (strict > keeps the scan deterministic).
    int pivot = -1;
    double best = options_.singular_tol;
    for (int r = 0; r < m; ++r) {
      if (row_used[r]) continue;
      const double mag = std::abs(scratch_[r]);
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (pivot < 0) return false;  // numerically singular column set
    row_used[pivot] = 1;
    pivot_row_of_[k] = pivot;
    AppendEta(pivot, scratch_);
  }
  valid_ = true;
  return true;
}

void BasisFactorization::ApplyEtasInPlace(std::vector<double>& x) const {
  for (const Eta& eta : etas_) {
    const double xp = x[eta.pivot_row] / eta.pivot_value;
    x[eta.pivot_row] = xp;
    if (xp == 0.0) continue;  // exact sparsity shortcut
    for (const SparseEntry& e : eta.off) {
      x[e.row] -= e.value * xp;
    }
  }
}

void BasisFactorization::AppendEta(int pivot_row,
                                   const std::vector<double>& dense) {
  Eta eta;
  eta.pivot_row = pivot_row;
  eta.pivot_value = dense[pivot_row];
  for (int r = 0; r < m_; ++r) {
    if (r == pivot_row) continue;
    const double v = dense[r];
    if (std::abs(v) > options_.drop_tol) eta.off.push_back({r, v});
  }
  fill_nnz_ += 1 + eta.off.size();
  etas_.push_back(std::move(eta));
}

void BasisFactorization::FtranColumn(SparseColumnView a,
                                     std::vector<double>& w) {
  std::fill(scratch_.begin(), scratch_.end(), 0.0);
  for (const SparseEntry& e : a) scratch_[e.row] += e.value;
  ApplyEtasInPlace(scratch_);
  w.resize(m_);
  for (int k = 0; k < m_; ++k) w[k] = scratch_[pivot_row_of_[k]];
}

void BasisFactorization::FtranDense(std::vector<double>& rhs,
                                    std::vector<double>& w) {
  scratch_ = rhs;
  ApplyEtasInPlace(scratch_);
  w.resize(m_);
  for (int k = 0; k < m_; ++k) w[k] = scratch_[pivot_row_of_[k]];
}

void BasisFactorization::Btran(const std::vector<double>& c,
                               std::vector<double>& y) {
  y.assign(m_, 0.0);
  for (int k = 0; k < m_; ++k) y[pivot_row_of_[k]] = c[k];
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double acc = y[it->pivot_row];
    for (const SparseEntry& e : it->off) acc -= e.value * y[e.row];
    y[it->pivot_row] = acc / it->pivot_value;
  }
}

void BasisFactorization::BtranUnit(int position, std::vector<double>& rho) {
  rho.assign(m_, 0.0);
  rho[pivot_row_of_[position]] = 1.0;
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double acc = rho[it->pivot_row];
    for (const SparseEntry& e : it->off) acc -= e.value * rho[e.row];
    rho[it->pivot_row] = acc / it->pivot_value;
  }
}

bool BasisFactorization::Update(int position, double min_pivot) {
  const int pivot_row = pivot_row_of_[position];
  if (std::abs(scratch_[pivot_row]) < min_pivot) return false;
  AppendEta(pivot_row, scratch_);
  return true;
}

}  // namespace rasa
