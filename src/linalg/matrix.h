#ifndef RASA_LINALG_MATRIX_H_
#define RASA_LINALG_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace rasa {

/// Dense row-major matrix of doubles. Sized for the small models used by the
/// GCN/MLP classifiers (tens to a few thousand rows); no BLAS required.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {
    assert(rows >= 0 && cols >= 0);
  }

  static Matrix Identity(int n);
  /// Entries ~ U(-scale, scale); used for Xavier-style init.
  static Matrix Random(int rows, int cols, double scale, class Rng& rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& operator()(int r, int c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// this * other. Requires cols() == other.rows().
  Matrix MatMul(const Matrix& other) const;
  Matrix Transpose() const;

  /// this^T * other without materializing the transpose. Requires
  /// rows() == other.rows(). Bit-identical to Transpose().MatMul(other).
  Matrix TransposedMatMul(const Matrix& other) const;
  /// this * other^T without materializing the transpose. Requires
  /// cols() == other.cols(). Bit-identical to MatMul(other.Transpose()).
  Matrix MatMulTransposed(const Matrix& other) const;

  Matrix& AddInPlace(const Matrix& other);
  Matrix& SubInPlace(const Matrix& other);
  Matrix& ScaleInPlace(double factor);

  /// Adds `row_vector` (1 x cols) to every row; the bias broadcast.
  Matrix& AddRowBroadcast(const Matrix& row_vector);

  /// Element-wise max(0, x).
  Matrix Relu() const;
  /// 1 where x > 0 else 0 (ReLU derivative mask).
  Matrix ReluMask() const;
  /// Element-wise product.
  Matrix Hadamard(const Matrix& other) const;

  /// Row-wise softmax (numerically stable).
  Matrix SoftmaxRows() const;

  /// 1 x cols matrix of column means (the mean-pooling graph readout).
  Matrix MeanRows() const;

  /// Sum of all entries.
  double Sum() const;
  /// Square root of the sum of squared entries.
  double FrobeniusNorm() const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string DebugString() const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

}  // namespace rasa

#endif  // RASA_LINALG_MATRIX_H_
