#include "mip/solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <queue>

#include "common/arena.h"
#include "common/logging.h"

namespace rasa {

const char* MipStatusToString(MipStatus status) {
  switch (status) {
    case MipStatus::kOptimal:
      return "OPTIMAL";
    case MipStatus::kFeasible:
      return "FEASIBLE";
    case MipStatus::kInfeasible:
      return "INFEASIBLE";
    case MipStatus::kNoSolutionFound:
      return "NO_SOLUTION_FOUND";
    case MipStatus::kUnbounded:
      return "UNBOUNDED";
    case MipStatus::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

double MipResult::Gap() const {
  if (!has_solution()) return std::numeric_limits<double>::infinity();
  return std::abs(best_bound - objective) / std::max(1.0, std::abs(objective));
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct BoundChange {
  int variable;
  double lower;
  double upper;
};

// Nodes live in the solver's arena: the open queue holds raw pointers, no
// per-node heap traffic or control blocks, and everything is reclaimed in
// one sweep when the solve ends (the node count is bounded by max_nodes,
// so holding explored nodes to the end costs a few MB at worst).
struct Node {
  // Bound tightenings along the path from the root.
  std::vector<BoundChange> changes;
  // LP bound of the parent (model sense); used for best-bound ordering.
  double bound;
  int depth = 0;
  // Optimal basis of the parent LP, shared by both children. A child only
  // tightens bounds, so this basis stays dual feasible and the revised
  // simplex can repair it with a few dual pivots instead of a full solve.
  std::shared_ptr<const LpBasis> parent_basis;
};

class BranchAndBound {
 public:
  BranchAndBound(const LpModel& model, const MipOptions& options)
      : model_(model), options_(options),
        maximize_(model.objective_sense() == ObjectiveSense::kMaximize) {}

  MipResult Solve();

 private:
  // Returns objective `a` expressed as "higher is better".
  double Score(double objective) const {
    return maximize_ ? objective : -objective;
  }

  bool IsIntegral(const std::vector<double>& x, int* branch_var) const;
  void ApplyChanges(LpModel& scratch, const std::vector<BoundChange>& changes,
                    bool undo) const;
  void OfferIncumbent(const std::vector<double>& x, double objective);
  // Fix-and-dive heuristic starting from an LP-feasible fractional point.
  // `start_basis` (may be null) seeds the warm-start chain along the dive.
  void Dive(LpModel& scratch, const Node& node,
            const std::vector<double>& relaxation, const LpBasis* start_basis);
  void RecordLpStats(const LpResult& lp);

  const LpModel& model_;
  const MipOptions& options_;
  const bool maximize_;

  bool has_incumbent_ = false;
  double incumbent_objective_ = 0.0;
  std::vector<double> incumbent_;
  int nodes_ = 0;
  int lp_iterations_ = 0;
  int warm_started_nodes_ = 0;
  int max_node_pivots_ = 0;
  int refactorizations_ = 0;
  int max_eta_length_ = 0;
  Arena arena_;  // owns every Node of this solve
};

bool BranchAndBound::IsIntegral(const std::vector<double>& x,
                                int* branch_var) const {
  double worst = options_.integrality_tolerance;
  int chosen = -1;
  for (int v = 0; v < model_.num_variables(); ++v) {
    if (!model_.is_integer(v)) continue;
    const double frac = std::abs(x[v] - std::round(x[v]));
    // Most-fractional branching: pick the variable closest to .5.
    const double dist_to_half = std::abs(frac - 0.5);
    if (frac > options_.integrality_tolerance) {
      if (chosen < 0 || dist_to_half < worst) {
        worst = dist_to_half;
        chosen = v;
      }
    }
  }
  if (branch_var != nullptr) *branch_var = chosen;
  return chosen < 0;
}

void BranchAndBound::ApplyChanges(LpModel& scratch,
                                  const std::vector<BoundChange>& changes,
                                  bool undo) const {
  if (!undo) {
    for (const BoundChange& ch : changes) {
      // Intersect with existing bounds so nested tightenings compose.
      const double lo = std::max(scratch.lower_bound(ch.variable), ch.lower);
      const double hi = std::min(scratch.upper_bound(ch.variable), ch.upper);
      scratch.SetBounds(ch.variable, lo, hi);
    }
  } else {
    for (const BoundChange& ch : changes) {
      scratch.SetBounds(ch.variable, model_.lower_bound(ch.variable),
                        model_.upper_bound(ch.variable));
    }
  }
}

void BranchAndBound::OfferIncumbent(const std::vector<double>& x,
                                    double objective) {
  if (has_incumbent_ && Score(objective) <= Score(incumbent_objective_)) {
    return;
  }
  // Round integer variables exactly before the final feasibility audit.
  std::vector<double> snapped = x;
  for (int v = 0; v < model_.num_variables(); ++v) {
    if (model_.is_integer(v)) snapped[v] = std::round(snapped[v]);
  }
  // Audit tolerance derives from the configured tolerances (one decade of
  // slack over each) instead of a free-standing literal: with the defaults
  // this is the historical 1e-5, and it tracks any caller override.
  const double audit_tolerance =
      std::max(10.0 * options_.integrality_tolerance,
               options_.lp_options.FeasibilityTolerance());
  if (!model_.CheckFeasible(snapped, audit_tolerance).ok()) return;
  has_incumbent_ = true;
  incumbent_ = snapped;
  incumbent_objective_ = model_.ObjectiveValue(snapped);
  if (options_.on_incumbent) {
    options_.on_incumbent(incumbent_, incumbent_objective_);
  }
}

void BranchAndBound::RecordLpStats(const LpResult& lp) {
  lp_iterations_ += lp.iterations;
  refactorizations_ += lp.refactorizations;
  max_eta_length_ = std::max(max_eta_length_, lp.max_eta_length);
}

void BranchAndBound::Dive(LpModel& scratch, const Node& node,
                          const std::vector<double>& relaxation,
                          const LpBasis* start_basis) {
  // Iteratively fix the least-fractional integer variable to its nearest
  // integer and re-solve; stop on integrality, infeasibility, or depth cap.
  std::vector<BoundChange> fixes;
  std::vector<double> x = relaxation;
  // Each fix only tightens bounds, so the previous basis warm-starts the
  // next solve all the way down the dive.
  LpBasis chain_basis;
  bool have_basis = false;
  if (options_.warm_start_nodes && start_basis != nullptr &&
      !start_basis->empty()) {
    chain_basis = *start_basis;
    have_basis = true;
  }
  const int max_depth = 2 * model_.num_integer_variables() + 8;
  for (int step = 0; step < max_depth; ++step) {
    if (options_.deadline.Expired()) break;
    int dummy = -1;
    if (IsIntegral(x, &dummy)) {
      OfferIncumbent(x, model_.ObjectiveValue(x));
      break;
    }
    // Least-fractional variable: cheapest to round without breaking the LP.
    int pick = -1;
    double best_frac = 2.0;
    for (int v = 0; v < model_.num_variables(); ++v) {
      if (!model_.is_integer(v)) continue;
      const double frac = std::abs(x[v] - std::round(x[v]));
      if (frac <= options_.integrality_tolerance) continue;
      if (frac < best_frac) {
        best_frac = frac;
        pick = v;
      }
    }
    if (pick < 0) break;
    const double target = std::round(x[pick]);
    fixes.push_back({pick, target, target});
    ApplyChanges(scratch, {fixes.back()}, /*undo=*/false);
    LpOptions lp_opts = options_.lp_options;
    lp_opts.deadline = options_.deadline;
    LpBasis next_basis;
    if (have_basis) lp_opts.warm_basis = &chain_basis;
    lp_opts.result_basis = &next_basis;
    LpResult lp = SolveLp(scratch, lp_opts);
    RecordLpStats(lp);
    if (lp.status != LpStatus::kOptimal) break;
    if (!next_basis.empty()) {
      chain_basis = std::move(next_basis);
      have_basis = true;
    }
    x = lp.primal;
  }
  // Restore bounds touched by the dive back to this node's state.
  ApplyChanges(scratch, fixes, /*undo=*/true);
  ApplyChanges(scratch, node.changes, /*undo=*/false);
}

MipResult BranchAndBound::Solve() {
  MipResult result;
  Status valid = model_.Validate();
  if (!valid.ok()) {
    RASA_LOG(Warning) << "invalid MIP model: " << valid.ToString();
    return result;
  }

  if (!options_.initial_solution.empty()) {
    OfferIncumbent(options_.initial_solution,
                   model_.ObjectiveValue(options_.initial_solution));
  }

  LpModel scratch = model_;
  const int max_nodes = options_.max_nodes > 0
                            ? options_.max_nodes
                            : 40 * model_.num_integer_variables() + 2000;

  // Best-bound first: explore the node with the most promising parent bound.
  auto cmp = [this](const Node* a, const Node* b) {
    if (Score(a->bound) != Score(b->bound)) {
      return Score(a->bound) < Score(b->bound);
    }
    return a->depth < b->depth;  // deeper first on ties -> finds leaves
  };
  std::priority_queue<Node*, std::vector<Node*>, decltype(cmp)> open(cmp);

  Node* root = arena_.New<Node>();
  root->bound = maximize_ ? kInf : -kInf;
  open.push(root);

  double best_open_bound = root->bound;
  bool stopped_early = false;
  bool root_unbounded = false;

  while (!open.empty()) {
    if (options_.deadline.Expired() || nodes_ >= max_nodes) {
      stopped_early = true;
      break;
    }
    Node* node = open.top();
    open.pop();
    best_open_bound = node->bound;

    // Bound-based pruning against the incumbent.
    if (has_incumbent_) {
      const double cutoff = Score(incumbent_objective_);
      if (Score(node->bound) <= cutoff + 1e-9) continue;
      if (std::abs(node->bound - incumbent_objective_) <=
          options_.relative_gap *
              std::max(1.0, std::abs(incumbent_objective_))) {
        continue;
      }
    }

    ++nodes_;
    ApplyChanges(scratch, node->changes, /*undo=*/false);
    LpOptions lp_opts = options_.lp_options;
    lp_opts.deadline = options_.deadline;
    LpBasis node_basis;
    if (options_.warm_start_nodes && node->parent_basis != nullptr) {
      lp_opts.warm_basis = node->parent_basis.get();
    }
    lp_opts.result_basis = &node_basis;
    LpResult lp = SolveLp(scratch, lp_opts);
    RecordLpStats(lp);
    if (lp.warm_started) ++warm_started_nodes_;
    max_node_pivots_ = std::max(max_node_pivots_, lp.iterations);
    if (options_.node_trace) {
      options_.node_trace(nodes_, lp.iterations, lp.warm_started);
    }

    if (lp.status == LpStatus::kInfeasible) {
      ApplyChanges(scratch, node->changes, /*undo=*/true);
      continue;
    }
    if (lp.status == LpStatus::kUnbounded) {
      ApplyChanges(scratch, node->changes, /*undo=*/true);
      if (node->depth == 0) root_unbounded = true;
      break;
    }
    if (lp.status != LpStatus::kOptimal) {
      // Deadline or iteration limit inside the LP: cannot trust the bound.
      ApplyChanges(scratch, node->changes, /*undo=*/true);
      stopped_early = true;
      if (options_.deadline.Expired()) break;
      continue;
    }

    const double node_bound = lp.objective;
    if (node->depth == 0 && !result.has_root_lp) {
      result.root_lp_objective = node_bound;
      result.has_root_lp = true;
    }
    if (has_incumbent_ &&
        Score(node_bound) <= Score(incumbent_objective_) + 1e-9) {
      ApplyChanges(scratch, node->changes, /*undo=*/true);
      continue;
    }

    int branch_var = -1;
    if (IsIntegral(lp.primal, &branch_var)) {
      OfferIncumbent(lp.primal, lp.objective);
      ApplyChanges(scratch, node->changes, /*undo=*/true);
      continue;
    }

    if (options_.dive_frequency > 0 &&
        (nodes_ == 1 || nodes_ % options_.dive_frequency == 0)) {
      // Restores node bounds itself.
      Dive(scratch, *node, lp.primal, node_basis.empty() ? nullptr : &node_basis);
    }

    // Clamp defensively: LP noise must never create an empty bound box.
    const double value =
        std::clamp(lp.primal[branch_var], scratch.lower_bound(branch_var),
                   scratch.upper_bound(branch_var));
    std::shared_ptr<const LpBasis> child_basis;
    if (options_.warm_start_nodes && !node_basis.empty()) {
      child_basis = std::make_shared<const LpBasis>(std::move(node_basis));
    }
    Node* down = arena_.New<Node>();
    down->changes = node->changes;
    down->changes.push_back({branch_var, -kInf, std::floor(value)});
    down->bound = node_bound;
    down->depth = node->depth + 1;
    down->parent_basis = child_basis;
    Node* up = arena_.New<Node>();
    up->changes = node->changes;
    up->changes.push_back({branch_var, std::ceil(value), kInf});
    up->bound = node_bound;
    up->depth = node->depth + 1;
    up->parent_basis = child_basis;
    open.push(down);
    open.push(up);

    ApplyChanges(scratch, node->changes, /*undo=*/true);
  }

  result.nodes_explored = nodes_;
  result.lp_iterations = lp_iterations_;
  result.warm_started_nodes = warm_started_nodes_;
  result.max_node_pivots = max_node_pivots_;
  result.refactorizations = refactorizations_;
  result.max_eta_length = max_eta_length_;

  if (root_unbounded && !has_incumbent_) {
    result.status = MipStatus::kUnbounded;
    return result;
  }

  if (has_incumbent_) {
    result.solution = incumbent_;
    result.objective = incumbent_objective_;
    if (!stopped_early && open.empty()) {
      result.status = MipStatus::kOptimal;
      result.best_bound = incumbent_objective_;
    } else {
      result.status = MipStatus::kFeasible;
      // The tightest open bound still bounds the optimum.
      double bound = open.empty() ? best_open_bound : open.top()->bound;
      if (!std::isfinite(bound)) bound = best_open_bound;
      result.best_bound =
          maximize_ ? std::max(bound, incumbent_objective_)
                    : std::min(bound, incumbent_objective_);
      if (!std::isfinite(result.best_bound)) {
        // No node ever produced a finite dual bound; report the incumbent
        // so gaps stay finite, but flag the bound as unproven.
        result.best_bound = incumbent_objective_;
        result.bound_proven = false;
      }
      // Exhausting the tree without early stops proves optimality even if
      // the last nodes were pruned by bound.
      if (!stopped_early) result.status = MipStatus::kOptimal;
    }
  } else if (!stopped_early && open.empty()) {
    result.status = MipStatus::kInfeasible;
  } else {
    result.status = MipStatus::kNoSolutionFound;
    result.best_bound = best_open_bound;
  }
  return result;
}

}  // namespace

MipResult SolveMip(const LpModel& model, const MipOptions& options) {
  BranchAndBound solver(model, options);
  return solver.Solve();
}

}  // namespace rasa
