#ifndef RASA_MIP_SOLVER_H_
#define RASA_MIP_SOLVER_H_

#include <functional>
#include <vector>

#include "common/timer.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace rasa {

enum class MipStatus {
  kOptimal,           // proved optimal within gap tolerance
  kFeasible,          // stopped early (deadline / node limit) with incumbent
  kInfeasible,        // proved infeasible
  kNoSolutionFound,   // stopped early without an incumbent
  kUnbounded,
  kError,
};

const char* MipStatusToString(MipStatus status);

struct MipOptions {
  Deadline deadline = Deadline::Infinite();
  /// Stop when |best_bound - incumbent| <= gap * max(1, |incumbent|).
  double relative_gap = 1e-6;
  /// Hard cap on explored nodes. <= 0 means automatic.
  int max_nodes = 0;
  double integrality_tolerance = 1e-6;
  /// Options forwarded to each node LP solve (deadline is overridden).
  LpOptions lp_options;
  /// Known feasible solution used as the initial incumbent / cutoff.
  std::vector<double> initial_solution;
  /// Invoked whenever a strictly better incumbent is found (anytime hook).
  std::function<void(const std::vector<double>& solution, double objective)>
      on_incumbent;
  /// Every `dive_frequency`-th node additionally runs a fix-and-dive
  /// heuristic to manufacture incumbents early. <= 0 disables diving.
  int dive_frequency = 16;
  /// Warm-start child node LPs from the parent's optimal basis (dual
  /// simplex repair in the revised solver). Purely a speed knob: any
  /// warm solve the solver cannot accept falls back to a cold solve.
  bool warm_start_nodes = true;
  /// Observation hook invoked after every node LP solve with the node
  /// ordinal (1-based, in exploration order), its simplex pivot count and
  /// whether the solve reused the parent basis.
  std::function<void(int node, int pivots, bool warm_started)> node_trace;
};

struct MipResult {
  MipStatus status = MipStatus::kError;
  /// Objective of `solution` in the model's sense (valid unless
  /// kNoSolutionFound / kInfeasible / kError).
  double objective = 0.0;
  /// Best proven bound on the optimum (model sense).
  double best_bound = 0.0;
  /// False when the search stopped before any finite dual bound existed
  /// (e.g. the root LP never finished): `best_bound` then degrades to the
  /// incumbent objective for reporting and must NOT be used as a
  /// certificate of optimality.
  bool bound_proven = true;
  /// Objective of the root LP relaxation (model sense); only meaningful
  /// when `has_root_lp`. The classic gap reference for solver reports.
  double root_lp_objective = 0.0;
  bool has_root_lp = false;
  std::vector<double> solution;
  int nodes_explored = 0;
  int lp_iterations = 0;
  /// Node LP solves that accepted a parent-basis warm start (the hit rate
  /// denominator is nodes_explored; the root is always cold).
  int warm_started_nodes = 0;
  /// Largest single node-LP pivot count (the root usually dominates once
  /// warm starts shrink the interior nodes to a handful of pivots).
  int max_node_pivots = 0;
  /// Basis refactorizations summed over all LP solves (revised simplex).
  int refactorizations = 0;
  /// Longest eta file reached in any LP solve (revised simplex).
  int max_eta_length = 0;

  bool has_solution() const {
    return status == MipStatus::kOptimal || status == MipStatus::kFeasible;
  }
  /// Relative optimality gap; 0 when proved optimal.
  double Gap() const;
};

/// Solves the mixed-integer program `model` (variables marked via
/// LpModel::SetInteger) with LP-relaxation branch-and-bound:
/// best-bound node selection, most-fractional branching, and a periodic
/// fix-and-dive rounding heuristic for early incumbents. Anytime: honors
/// `deadline` and returns the best incumbent found so far.
MipResult SolveMip(const LpModel& model, const MipOptions& options = {});

}  // namespace rasa

#endif  // RASA_MIP_SOLVER_H_
