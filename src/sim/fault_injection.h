#ifndef RASA_SIM_FAULT_INJECTION_H_
#define RASA_SIM_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "core/migration_executor.h"

namespace rasa {

/// Failure taxonomy of the chaos harness (see DESIGN.md "Fault model"):
/// transient command failures, machine cordons mid-migration, stale
/// snapshots, and solver-budget exhaustion. All draws come from one seeded
/// stream, so every chaos run replays bit-for-bit.
struct FaultInjectionOptions {
  /// Probability that any single delete/create attempt fails transiently
  /// (retryable kInternal).
  double command_failure_probability = 0.0;
  /// After this many observed command attempts, cordon a machine; < 0
  /// disables. Fires once per run ("one mid-migration outage").
  long cordon_after_commands = -1;
  /// Machine to cordon; -1 cordons the machine of the triggering command.
  int cordon_machine = -1;
  /// Workflow cycles the cordon lasts (ticks down on EndCycle; <= 0 means
  /// it never lifts).
  int cordon_duration_cycles = 1;
  /// Extra container drift applied *after* state collection but before the
  /// plan executes: the snapshot the optimizer saw goes stale.
  double stale_snapshot_drift = 0.0;
  /// Per-cycle probability that the solver budget is already exhausted when
  /// the optimizer starts, forcing the degradation ladder down to greedy.
  double solver_exhaustion_probability = 0.0;
  /// Per-cycle probability that the optimizer call itself errors out (the
  /// workflow must record the cycle as a dry-run and keep going).
  double optimizer_failure_probability = 0.0;

  // --- Simulated controller crashes (durability testing; DESIGN.md
  // "Durability & recovery"). Each fires at most once per injector and
  // stops the workflow dead — no cleanup, no further journal records. The
  // live cluster keeps whatever state the killed controller left behind.
  /// Crash immediately after the Nth successfully applied migration
  /// command of the run (1-based); <= 0 disables.
  long crash_after_commands = 0;
  /// Crash after the Nth completed+audited batch, before its commit record
  /// reaches the journal (1-based); <= 0 disables.
  int crash_after_batches = 0;
  /// Crash mid-drift, after the Nth applied drift move of the run
  /// (1-based); <= 0 disables.
  long crash_after_drift_moves = 0;
  /// Crash at the end of this cycle, right before the checkpoint write
  /// (0-based cycle index); < 0 disables.
  int crash_before_checkpoint_cycle = -1;

  uint64_t seed = 1234;
};

/// Seeded chaos source consulted by `FaultyClusterActions` before every
/// command and by `RunWorkflow` once per cycle. Stateful: it counts
/// commands, fires the configured cordon, and ticks cordon durations.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectionOptions& options);

  /// Consulted before every command attempt; non-OK means the command fails
  /// with that status instead of reaching the cluster. Counts the attempt
  /// and may fire the configured cordon.
  Status BeforeCommand(MigrationCommandType type, int machine, int service);

  bool Cordoned(int machine) const;

  /// Ticks cordon durations down at the end of a workflow cycle.
  void EndCycle();

  /// Draws whether this cycle's solver budget is exhausted.
  bool DrawSolverExhaustion();

  /// Draws whether this cycle's optimizer call errors out entirely.
  bool DrawOptimizerFailure();

  /// Crash-point triggers, consulted by the executor's crash hooks and the
  /// workflow's drift/checkpoint code. True = die here, now. Once any
  /// trigger fires the injector stays "crashed" and never fires again.
  bool CrashOnCommandApplied();
  bool CrashOnBatchComplete();
  bool CrashOnDriftMove();
  bool CrashBeforeCheckpoint(int cycle);
  /// Whether any crash point has fired.
  bool crash_fired() const { return crash_fired_; }

  const FaultInjectionOptions& options() const { return options_; }
  long commands_seen() const { return commands_seen_; }
  int failures_injected() const { return failures_injected_; }
  int cordons_fired() const { return cordons_fired_; }

 private:
  FaultInjectionOptions options_;
  Rng rng_;
  /// machine -> remaining cycles (<= 0 = forever).
  std::map<int, int> cordoned_;
  long commands_seen_ = 0;
  int failures_injected_ = 0;
  int cordons_fired_ = 0;
  bool cordon_armed_ = true;
  long commands_applied_ = 0;
  long batches_completed_ = 0;
  long drift_moves_applied_ = 0;
  bool crash_fired_ = false;
};

/// Torn-write simulation: truncates `path` to exactly `offset` bytes, as a
/// crash mid-write would. kInvalidArgument when `offset` exceeds the file's
/// size (that would extend it, which no crash does), kNotFound when the
/// file does not exist. Durability tests sweep this across every byte
/// offset of checkpoints, journals and snapshots.
Status TruncateFileAt(const std::string& path, uint64_t offset);

/// ClusterActions decorator: asks the injector for trouble, then delegates.
class FaultyClusterActions : public ClusterActions {
 public:
  FaultyClusterActions(ClusterActions& base, FaultInjector& injector)
      : base_(base), injector_(injector) {}

  Status Delete(int machine, int service) override {
    RASA_RETURN_IF_ERROR(injector_.BeforeCommand(MigrationCommandType::kDelete,
                                                 machine, service));
    return base_.Delete(machine, service);
  }
  Status Create(int machine, int service) override {
    RASA_RETURN_IF_ERROR(injector_.BeforeCommand(MigrationCommandType::kCreate,
                                                 machine, service));
    return base_.Create(machine, service);
  }
  bool Available(int machine) const override {
    return !injector_.Cordoned(machine) && base_.Available(machine);
  }

 private:
  ClusterActions& base_;
  FaultInjector& injector_;
};

}  // namespace rasa

#endif  // RASA_SIM_FAULT_INJECTION_H_
