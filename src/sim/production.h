#ifndef RASA_SIM_PRODUCTION_H_
#define RASA_SIM_PRODUCTION_H_

#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/rng.h"

namespace rasa {

/// Request-level model of the production deployment (§V-F). Collocated
/// traffic uses IPC (low fixed latency, near-zero errors); remote traffic
/// uses RPC over the network (higher latency with jitter and congestion
/// spikes, nonzero error rate). Latencies are in normalized units; every
/// reported series is further normalized to a maximum of 1.0 as the paper
/// does.
struct ProductionSimOptions {
  int time_steps = 48;          // e.g. a day at 30-minute resolution
  double ipc_latency = 0.12;
  double rpc_latency = 1.0;
  double rpc_jitter = 0.20;     // relative lognormal-ish jitter per step
  double ipc_error = 0.0008;
  double rpc_error = 0.010;
  double error_jitter = 0.45;
  double congestion_probability = 0.10;  // per-step chance of a spike
  double congestion_multiplier = 2.2;    // latency & error multiplier
  uint64_t seed = 7;
};

/// Per-service-pair time series: WITH RASA, WITHOUT RASA (ORIGINAL) and the
/// ONLY COLLOCATED upper bound (Figs. 11 & 12).
struct PairProductionSeries {
  int service_u = 0;
  int service_v = 0;
  double qps_weight = 0.0;  // edge weight = traffic share
  double with_ratio = 0.0;     // localized-traffic ratio under RASA
  double without_ratio = 0.0;  // under ORIGINAL

  std::vector<double> latency_with;
  std::vector<double> latency_without;
  std::vector<double> latency_collocated;
  std::vector<double> error_with;
  std::vector<double> error_without;
  std::vector<double> error_collocated;

  double latency_improvement = 0.0;  // 1 - mean(with)/mean(without)
  double error_improvement = 0.0;
};

/// Cluster-wide QPS-weighted series (Fig. 13).
struct ProductionSimReport {
  std::vector<PairProductionSeries> pairs;  // one per tracked service pair
  std::vector<double> weighted_latency_with;
  std::vector<double> weighted_latency_without;
  std::vector<double> weighted_latency_collocated;
  std::vector<double> weighted_error_with;
  std::vector<double> weighted_error_without;
  std::vector<double> weighted_error_collocated;
  double latency_improvement = 0.0;
  double error_improvement = 0.0;
  double latency_gap_to_collocated = 0.0;  // |with - collocated| mean gap
  double error_gap_to_collocated = 0.0;
};

/// Simulates production metrics for the placements WITH and WITHOUT RASA.
/// `tracked_pairs` selects the service pairs reported individually (pass 0
/// to track the top-4 pairs by traffic, as the paper does).
ProductionSimReport SimulateProduction(const Cluster& cluster,
                                       const Placement& with_rasa,
                                       const Placement& without_rasa,
                                       const ProductionSimOptions& options,
                                       int tracked_pairs = 4);

}  // namespace rasa

#endif  // RASA_SIM_PRODUCTION_H_
