#include "sim/production.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/objective.h"

namespace rasa {
namespace {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
}

// Normalizes all given series jointly so their common maximum is 1.0 (the
// paper plots normalized metrics with a shared scale per subplot).
void NormalizeJointly(std::initializer_list<std::vector<double>*> series) {
  double max_v = 0.0;
  for (const std::vector<double>* s : series) {
    for (double v : *s) max_v = std::max(max_v, v);
  }
  if (max_v <= 0.0) return;
  for (std::vector<double>* s : series) {
    for (double& v : *s) v /= max_v;
  }
}

}  // namespace

ProductionSimReport SimulateProduction(const Cluster& cluster,
                                       const Placement& with_rasa,
                                       const Placement& without_rasa,
                                       const ProductionSimOptions& options,
                                       int tracked_pairs) {
  ProductionSimReport report;
  Rng rng(options.seed);
  const int T = options.time_steps;

  const std::vector<double> with_ratios =
      EdgeLocalizationRatios(cluster, with_rasa);
  const std::vector<double> without_ratios =
      EdgeLocalizationRatios(cluster, without_rasa);
  const auto& edges = cluster.affinity().edges();

  // Shared per-step network weather: congestion spikes hit RPC traffic of
  // every pair in the same step (they share the fabric).
  std::vector<double> congestion(T, 1.0);
  std::vector<double> rpc_level(T, 1.0);
  std::vector<double> err_level(T, 1.0);
  for (int t = 0; t < T; ++t) {
    if (rng.NextBool(options.congestion_probability)) {
      congestion[t] = options.congestion_multiplier *
                      (1.0 + 0.3 * rng.NextDouble());
    }
    rpc_level[t] =
        std::max(0.2, 1.0 + options.rpc_jitter * rng.NextGaussian());
    err_level[t] =
        std::max(0.1, 1.0 + options.error_jitter * rng.NextGaussian());
  }

  auto latency_at = [&](double rho, int t, double pair_noise) {
    const double rpc = options.rpc_latency * rpc_level[t] * congestion[t] *
                       (1.0 + 0.05 * pair_noise);
    return rho * options.ipc_latency + (1.0 - rho) * rpc;
  };
  auto error_at = [&](double rho, int t, double pair_noise) {
    const double rpc_err = options.rpc_error * err_level[t] * congestion[t] *
                           (1.0 + 0.1 * pair_noise);
    return rho * options.ipc_error + (1.0 - rho) * rpc_err;
  };

  // Build the weighted cluster-wide series over every affinity edge, and
  // collect per-pair series for the top pairs by traffic.
  std::vector<size_t> order(edges.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return edges[a].weight > edges[b].weight;
  });
  if (tracked_pairs <= 0) tracked_pairs = 4;

  report.weighted_latency_with.assign(T, 0.0);
  report.weighted_latency_without.assign(T, 0.0);
  report.weighted_latency_collocated.assign(T, 0.0);
  report.weighted_error_with.assign(T, 0.0);
  report.weighted_error_without.assign(T, 0.0);
  report.weighted_error_collocated.assign(T, 0.0);
  double total_weight = 0.0;
  for (const AffinityEdge& e : edges) total_weight += e.weight;
  if (total_weight <= 0.0) total_weight = 1.0;

  for (size_t rank = 0; rank < order.size(); ++rank) {
    const size_t ei = order[rank];
    const AffinityEdge& e = edges[ei];
    const double pair_noise = rng.NextGaussian();
    const bool tracked = rank < static_cast<size_t>(tracked_pairs);
    PairProductionSeries series;
    series.service_u = e.u;
    series.service_v = e.v;
    series.qps_weight = e.weight;
    series.with_ratio = with_ratios[ei];
    series.without_ratio = without_ratios[ei];

    for (int t = 0; t < T; ++t) {
      const double lw = latency_at(with_ratios[ei], t, pair_noise);
      const double lo = latency_at(without_ratios[ei], t, pair_noise);
      const double lc = latency_at(1.0, t, pair_noise);
      const double ew = error_at(with_ratios[ei], t, pair_noise);
      const double eo = error_at(without_ratios[ei], t, pair_noise);
      const double ec = error_at(1.0, t, pair_noise);
      const double share = e.weight / total_weight;
      report.weighted_latency_with[t] += share * lw;
      report.weighted_latency_without[t] += share * lo;
      report.weighted_latency_collocated[t] += share * lc;
      report.weighted_error_with[t] += share * ew;
      report.weighted_error_without[t] += share * eo;
      report.weighted_error_collocated[t] += share * ec;
      if (tracked) {
        series.latency_with.push_back(lw);
        series.latency_without.push_back(lo);
        series.latency_collocated.push_back(lc);
        series.error_with.push_back(ew);
        series.error_without.push_back(eo);
        series.error_collocated.push_back(ec);
      }
    }
    if (tracked) {
      series.latency_improvement =
          1.0 - Mean(series.latency_with) /
                    std::max(1e-12, Mean(series.latency_without));
      series.error_improvement =
          1.0 - Mean(series.error_with) /
                    std::max(1e-12, Mean(series.error_without));
      NormalizeJointly({&series.latency_with, &series.latency_without,
                        &series.latency_collocated});
      NormalizeJointly({&series.error_with, &series.error_without,
                        &series.error_collocated});
      report.pairs.push_back(std::move(series));
    }
  }

  report.latency_improvement =
      1.0 - Mean(report.weighted_latency_with) /
                std::max(1e-12, Mean(report.weighted_latency_without));
  report.error_improvement =
      1.0 - Mean(report.weighted_error_with) /
                std::max(1e-12, Mean(report.weighted_error_without));
  NormalizeJointly({&report.weighted_latency_with,
                    &report.weighted_latency_without,
                    &report.weighted_latency_collocated});
  NormalizeJointly({&report.weighted_error_with,
                    &report.weighted_error_without,
                    &report.weighted_error_collocated});
  report.latency_gap_to_collocated =
      Mean(report.weighted_latency_with) -
      Mean(report.weighted_latency_collocated);
  report.error_gap_to_collocated = Mean(report.weighted_error_with) -
                                   Mean(report.weighted_error_collocated);
  return report;
}

}  // namespace rasa
