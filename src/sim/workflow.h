#ifndef RASA_SIM_WORKFLOW_H_
#define RASA_SIM_WORKFLOW_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/statusor.h"
#include "common/telemetry.h"
#include "core/rasa.h"
#include "core/recovery.h"
#include "sim/fault_injection.h"

namespace rasa {

/// One collected cluster state (the Data Collector of §III-A). The affinity
/// weights are the *measured* traffic: optionally perturbed by measurement
/// noise relative to ground truth. Held behind a shared_ptr because the
/// placement references it.
struct CollectedState {
  std::shared_ptr<const Cluster> measured_cluster;
  Placement placement;
};

/// Samples the live cluster: copies the placement and re-weights the
/// affinity graph with multiplicative noise of the given relative sigma.
CollectedState CollectClusterState(const Cluster& cluster,
                                   const Placement& live,
                                   double measurement_noise, uint64_t seed);

struct WorkflowOptions {
  /// Number of CronJob cycles to simulate (the paper runs every 30 min).
  int cycles = 6;
  /// Fraction of containers randomly relocated between cycles (application
  /// updates / user modifications drifting the cluster state).
  double drift_fraction = 0.04;
  double measurement_noise = 0.05;
  RasaOptions rasa;
  /// Roll back a reallocation if any machine's dominant-resource
  /// utilization exceeds this fraction afterwards (§III-B). Collocation
  /// legitimately packs machines to 100%, so the default only fires on
  /// over-commitment (e.g. the snapshot went stale mid-migration).
  double rollback_utilization_threshold = 1.0000001;
  /// Cycles a rolled-back run keeps its services tagged unschedulable
  /// (stands in for the paper's three days).
  int unschedulable_cycles = 2;
  /// Execute migration plans command-by-command through the hardened
  /// executor (retry/backoff, SLA re-verification after every partial
  /// batch, re-planning around failures) instead of atomically swapping in
  /// the target placement.
  bool use_migration_executor = true;
  /// Per-command retry/backoff policy of the executor.
  RetryPolicy command_retry;
  /// Maximum executor re-planning rounds per cycle.
  int max_replans = 4;
  /// Chaos harness: when true, commands/cordons/stale snapshots/solver
  /// budgets are faulted per `faults` (seeded; replays bit-for-bit).
  bool inject_faults = false;
  FaultInjectionOptions faults;
  /// Durable-state directory (checkpoints + migration write-ahead journal,
  /// see core/recovery.h). Empty = in-memory only, exactly the pre-durable
  /// behavior. Durable runs draw the identical random sequence, so the
  /// final placement matches the in-memory run bit-for-bit.
  std::string state_dir;
  /// Resume an interrupted run from `state_dir` instead of starting fresh:
  /// recovery reconciles the journal against `initial` (the observed live
  /// placement), rolls the interrupted cycle forward or abandons it
  /// cleanly, re-runs the SLA/feasibility audits, and continues at the
  /// interrupted cycle. Requires a non-empty `state_dir`.
  bool resume = false;
  /// Delta-aware re-optimization (off by default): cycles after the first
  /// call Optimize with a carried IncrementalState, re-solving only the
  /// subproblems the snapshot differ marks dirty and re-applying the prior
  /// cycle's solutions for the rest (see DESIGN.md "Incremental
  /// re-optimization"). The delta state is journaled and checkpointed, so
  /// `resume` replays incremental runs bit-identically. Thresholds live in
  /// `rasa.delta`. Note: `measurement_noise` re-randomizes every affinity
  /// weight per cycle, which the differ reports as full drift — pair
  /// incremental mode with exact measurement or raise
  /// `rasa.delta.weight_tolerance` to cover the noise band.
  bool incremental = false;
  /// Continuous-telemetry pipeline (see common/telemetry.h): per-cycle
  /// time series, SLO burn-rate evaluation, and anomaly detection, with the
  /// verdicts attached to each CycleReport. Strictly observation-only:
  /// placements are bit-identical with telemetry on or off at every thread
  /// count (telemetry_determinism_test).
  TelemetryOptions telemetry;
  /// When non-empty, enables telemetry and streams one JSONL journal line
  /// per cycle to `<telemetry_dir>/telemetry.jsonl` (fsync per line via the
  /// logging JsonlWriter, so `rasa_cli tail` can follow a live run). A
  /// fresh (non-resume) run truncates the journal; a resumed run appends.
  std::string telemetry_dir;
  uint64_t seed = 99;
};

/// Validates option ranges up front: negative `cycles`, `drift_fraction` or
/// `measurement_noise` outside [0, 1], non-positive `max_replans`,
/// `rollback_utilization_threshold` below 1.0, negative
/// `unschedulable_cycles`, and `resume` without a `state_dir` all return
/// kInvalidArgument. RunWorkflow calls this before touching any state.
Status ValidateWorkflowOptions(const WorkflowOptions& options);

struct CycleReport {
  double affinity_before = 0.0;
  double affinity_after = 0.0;   // after execution (== before if dry-run)
  double predicted_affinity = 0.0;
  bool executed = false;
  bool rolled_back = false;
  /// The optimizer itself returned an error; the cycle was recorded as a
  /// dry-run instead of aborting the workflow.
  bool solver_failed = false;
  /// This cycle was completed from the journal by crash recovery rather
  /// than run live (its optimizer never re-ran; the journaled plan was
  /// rolled forward or abandoned).
  bool recovered = false;
  /// Executor converged to the (cordon-adjusted) target placement.
  bool reached_target = false;
  int moved_containers = 0;
  int migration_batches = 0;
  int commands_failed = 0;
  int command_retries = 0;
  int replans = 0;
  double seconds = 0.0;
  /// Affinity the optimizer predicted but execution did not deliver:
  /// predicted_affinity - affinity_after, for executed cycles only (partial
  /// executions, executor re-planning, and measurement noise all land
  /// here). 0 for dry-runs and rollbacks.
  double migration_truncation = 0.0;
  // Incremental-path accounting (all defaults unless
  // WorkflowOptions::incremental; mirrors RasaResult).
  /// The cycle reused the cached partitioning (false also covers the
  /// incremental mode's full-resolve fallbacks).
  bool incremental = false;
  int dirty_subproblems = 0;
  int reused_subproblems = 0;
  /// Fallback reason when incremental mode resolved from scratch
  /// ("cold-start", "structure", "drift-threshold"); empty otherwise.
  std::string incremental_reason;
  /// The optimizer run's explain report (flight-recorder records, quality
  /// certificate, attribution waterfall, placement diff — see explain.h).
  /// Unpopulated when the optimizer failed.
  ExplainReport explain;
  /// What the registry recorded during *this* cycle: the end-of-cycle
  /// scrape diffed against the previous cycle's (MetricsSnapshot::Diff), so
  /// counters and histogram counts are per-cycle deltas and gauges are the
  /// cycle-end values. Empty when metrics are disabled.
  MetricsSnapshot metrics;
  /// Per-cycle telemetry verdicts (SLO statuses + anomaly flags); populated
  /// only when WorkflowOptions::telemetry is enabled. The cost-anomaly
  /// fields derive from wall-clock cycle seconds — determinism comparisons
  /// strip them like any other timing field.
  CycleTelemetry telemetry;
};

struct WorkflowReport {
  std::vector<CycleReport> cycles;
  Placement final_placement;
  int executions = 0;
  int dry_runs = 0;
  int rollbacks = 0;
  /// Cycles whose optimizer call errored out (counted as dry-runs).
  int solver_failures = 0;
  /// Executions that stopped short of the target placement.
  int partial_executions = 0;
  // Executor totals across all cycles.
  int commands_failed = 0;
  int command_retries = 0;
  int replans = 0;
  /// Post-batch invariant audits that failed (must stay 0, even under
  /// injected faults).
  int sla_violations = 0;
  int feasibility_violations = 0;
  // Chaos-harness totals (0 unless inject_faults).
  int faults_injected = 0;
  int cordons_fired = 0;
  /// A simulated crash point fired and stopped the run dead: the report
  /// covers only the work up to the crash and `final_placement` is the live
  /// cluster state at the instant of death (what a restarted controller
  /// would observe).
  bool crashed = false;
  /// Cycle index the resumed run picked up at; -1 when not resumed.
  int resumed_cycle = -1;
  /// What crash recovery found and did (zero-initialized unless resumed).
  RecoveryStats recovery;
};

/// Deterministic request-traffic quantiles of a placement under the
/// production model's steady state (no jitter/congestion RNG): each
/// affinity edge carries `weight` traffic at latency
/// `rho * ipc_latency + (1 - rho) * rpc_latency` where rho is the edge's
/// localization ratio, and analogously for error rates. The quantiles are
/// weighted by traffic share. A pure function of (cluster, placement), so
/// feeding it into telemetry keeps the pipeline deterministic.
struct TrafficQuantiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Traffic-weighted mean modeled error rate.
  double error_rate = 0.0;
};
TrafficQuantiles EstimateTrafficQuantiles(const Cluster& cluster,
                                          const Placement& placement);

/// Simulates the full periodic system of §III-A: each cycle collects the
/// cluster state, runs the RASA algorithm, dry-runs when the improvement is
/// below the threshold, otherwise validates and applies the migration plan
/// batch by batch, then checks the rollback condition. Between cycles the
/// cluster drifts.
StatusOr<WorkflowReport> RunWorkflow(const Cluster& cluster,
                                     const Placement& initial,
                                     const AlgorithmSelector& selector,
                                     const WorkflowOptions& options);

}  // namespace rasa

#endif  // RASA_SIM_WORKFLOW_H_
