#include "sim/fault_injection.h"

#include "common/strings.h"

namespace rasa {

FaultInjector::FaultInjector(const FaultInjectionOptions& options)
    : options_(options), rng_(options.seed) {}

Status FaultInjector::BeforeCommand(MigrationCommandType type, int machine,
                                    int service) {
  (void)type;
  (void)service;
  ++commands_seen_;
  if (cordon_armed_ && options_.cordon_after_commands >= 0 &&
      commands_seen_ > options_.cordon_after_commands) {
    const int victim =
        options_.cordon_machine >= 0 ? options_.cordon_machine : machine;
    cordoned_[victim] = options_.cordon_duration_cycles;
    cordon_armed_ = false;
    ++cordons_fired_;
  }
  if (Cordoned(machine)) {
    // Permanent for this command: the executor must re-plan around it.
    return FailedPreconditionError(
        StrFormat("machine %d is cordoned", machine));
  }
  if (options_.command_failure_probability > 0.0 &&
      rng_.NextBool(options_.command_failure_probability)) {
    ++failures_injected_;
    return InternalError("injected transient command failure");
  }
  return Status::OK();
}

bool FaultInjector::Cordoned(int machine) const {
  return cordoned_.find(machine) != cordoned_.end();
}

void FaultInjector::EndCycle() {
  for (auto it = cordoned_.begin(); it != cordoned_.end();) {
    if (it->second > 0 && --it->second == 0) {
      it = cordoned_.erase(it);
    } else {
      ++it;
    }
  }
}

bool FaultInjector::DrawSolverExhaustion() {
  return options_.solver_exhaustion_probability > 0.0 &&
         rng_.NextBool(options_.solver_exhaustion_probability);
}

bool FaultInjector::DrawOptimizerFailure() {
  return options_.optimizer_failure_probability > 0.0 &&
         rng_.NextBool(options_.optimizer_failure_probability);
}

}  // namespace rasa
