#include "sim/fault_injection.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace rasa {

FaultInjector::FaultInjector(const FaultInjectionOptions& options)
    : options_(options), rng_(options.seed) {}

Status FaultInjector::BeforeCommand(MigrationCommandType type, int machine,
                                    int service) {
  (void)type;
  (void)service;
  ++commands_seen_;
  if (cordon_armed_ && options_.cordon_after_commands >= 0 &&
      commands_seen_ > options_.cordon_after_commands) {
    const int victim =
        options_.cordon_machine >= 0 ? options_.cordon_machine : machine;
    cordoned_[victim] = options_.cordon_duration_cycles;
    cordon_armed_ = false;
    ++cordons_fired_;
  }
  if (Cordoned(machine)) {
    // Permanent for this command: the executor must re-plan around it.
    return FailedPreconditionError(
        StrFormat("machine %d is cordoned", machine));
  }
  if (options_.command_failure_probability > 0.0 &&
      rng_.NextBool(options_.command_failure_probability)) {
    ++failures_injected_;
    return InternalError("injected transient command failure");
  }
  return Status::OK();
}

bool FaultInjector::Cordoned(int machine) const {
  return cordoned_.find(machine) != cordoned_.end();
}

void FaultInjector::EndCycle() {
  for (auto it = cordoned_.begin(); it != cordoned_.end();) {
    if (it->second > 0 && --it->second == 0) {
      it = cordoned_.erase(it);
    } else {
      ++it;
    }
  }
}

bool FaultInjector::DrawSolverExhaustion() {
  return options_.solver_exhaustion_probability > 0.0 &&
         rng_.NextBool(options_.solver_exhaustion_probability);
}

bool FaultInjector::DrawOptimizerFailure() {
  return options_.optimizer_failure_probability > 0.0 &&
         rng_.NextBool(options_.optimizer_failure_probability);
}

bool FaultInjector::CrashOnCommandApplied() {
  if (crash_fired_) return false;
  ++commands_applied_;
  if (options_.crash_after_commands > 0 &&
      commands_applied_ >= options_.crash_after_commands) {
    crash_fired_ = true;
  }
  return crash_fired_;
}

bool FaultInjector::CrashOnBatchComplete() {
  if (crash_fired_) return false;
  ++batches_completed_;
  if (options_.crash_after_batches > 0 &&
      batches_completed_ >= options_.crash_after_batches) {
    crash_fired_ = true;
  }
  return crash_fired_;
}

bool FaultInjector::CrashOnDriftMove() {
  if (crash_fired_) return false;
  ++drift_moves_applied_;
  if (options_.crash_after_drift_moves > 0 &&
      drift_moves_applied_ >= options_.crash_after_drift_moves) {
    crash_fired_ = true;
  }
  return crash_fired_;
}

bool FaultInjector::CrashBeforeCheckpoint(int cycle) {
  if (crash_fired_) return false;
  if (options_.crash_before_checkpoint_cycle >= 0 &&
      cycle == options_.crash_before_checkpoint_cycle) {
    crash_fired_ = true;
  }
  return crash_fired_;
}

Status TruncateFileAt(const std::string& path, uint64_t offset) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return NotFoundError(StrFormat("cannot stat '%s': %s", path.c_str(),
                                   std::strerror(errno)));
  }
  if (static_cast<uint64_t>(st.st_size) < offset) {
    return InvalidArgumentError(
        StrFormat("truncating '%s' to %llu bytes would extend it (size %lld)",
                  path.c_str(), static_cast<unsigned long long>(offset),
                  static_cast<long long>(st.st_size)));
  }
  if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
    return InternalError(StrFormat("truncate('%s') failed: %s", path.c_str(),
                                   std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace rasa
