#include "sim/workflow.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/delta.h"
#include "core/migration.h"
#include "core/migration_executor.h"
#include "core/objective.h"
#include "core/recovery.h"
#include "sim/fault_injection.h"
#include "sim/production.h"

namespace rasa {
namespace {

// Re-associates the counts of `placement` with `cluster` (same shape,
// possibly different affinity weights).
Placement RebindPlacement(const Cluster& cluster, const Placement& placement) {
  Placement out(cluster);
  for (int m = 0; m < cluster.num_machines(); ++m) {
    for (const auto& [s, count] : placement.ServicesOn(m)) {
      out.Add(m, s, count);
    }
  }
  return out;
}

// Randomly relocates ~fraction of all containers to other feasible machines
// (application updates / user modifications between cycles).
void DriftPlacement(const Cluster& cluster, Placement& placement,
                    double fraction, Rng& rng) {
  const int moves =
      static_cast<int>(fraction * cluster.num_containers());
  for (int i = 0; i < moves; ++i) {
    const int s = static_cast<int>(rng.NextUint64(cluster.num_services()));
    const auto& machines = placement.MachinesOf(s);
    if (machines.empty()) continue;
    // Pick a random hosting machine of s.
    const int pick = static_cast<int>(rng.NextUint64(machines.size()));
    auto it = machines.begin();
    std::advance(it, pick);
    const int from = it->first;
    // Pick a random feasible destination.
    std::vector<int> feasible;
    for (int m = 0; m < cluster.num_machines(); ++m) {
      if (m != from && placement.CanPlace(m, s)) feasible.push_back(m);
    }
    if (feasible.empty()) continue;
    const int to = feasible[rng.NextUint64(feasible.size())];
    RASA_CHECK(placement.Remove(from, s).ok());
    placement.Add(to, s);
  }
}

// Same relocation policy as DriftPlacement — the identical draw sequence —
// but computed on a scratch copy and returned as an explicit move list, so
// the intent can be journaled before any move touches the live placement
// (crash mid-drift is then recoverable move-by-move).
std::vector<DriftMove> ComputeDriftMoves(const Cluster& cluster,
                                         const Placement& current,
                                         double fraction, Rng& rng) {
  Placement scratch = RebindPlacement(cluster, current);
  std::vector<DriftMove> out;
  const int moves =
      static_cast<int>(fraction * cluster.num_containers());
  for (int i = 0; i < moves; ++i) {
    const int s = static_cast<int>(rng.NextUint64(cluster.num_services()));
    const auto& machines = scratch.MachinesOf(s);
    if (machines.empty()) continue;
    const int pick = static_cast<int>(rng.NextUint64(machines.size()));
    auto it = machines.begin();
    std::advance(it, pick);
    const int from = it->first;
    std::vector<int> feasible;
    for (int m = 0; m < cluster.num_machines(); ++m) {
      if (m != from && scratch.CanPlace(m, s)) feasible.push_back(m);
    }
    if (feasible.empty()) continue;
    const int to = feasible[rng.NextUint64(feasible.size())];
    RASA_CHECK(scratch.Remove(from, s).ok());
    scratch.Add(to, s);
    out.push_back({s, from, to});
  }
  return out;
}

// Delta value of a counter in a diffed snapshot; 0 when absent.
double CounterDelta(const MetricsSnapshot& delta, const std::string& name) {
  const auto it = std::lower_bound(
      delta.counters.begin(), delta.counters.end(), name,
      [](const auto& entry, const std::string& n) { return entry.first < n; });
  if (it == delta.counters.end() || it->first != name) return 0.0;
  return static_cast<double>(it->second);
}

double MaxMachineUtilization(const Cluster& cluster,
                             const Placement& placement) {
  double worst = 0.0;
  for (int m = 0; m < cluster.num_machines(); ++m) {
    for (int r = 0; r < cluster.num_resources(); ++r) {
      const double cap = cluster.machine(m).capacity[r];
      if (cap > 0.0) {
        worst = std::max(worst, placement.UsedResource(m, r) / cap);
      }
    }
  }
  return worst;
}

// Runs one workflow invocation: the periodic control loop of §III-A plus
// the durability layer (checkpoints + write-ahead journal) and the resume
// path that completes interrupted cycles from the journal.
class WorkflowRunner {
 public:
  WorkflowRunner(const Cluster& cluster, const Placement& initial,
                 const AlgorithmSelector& selector,
                 const WorkflowOptions& options)
      : cluster_(cluster),
        initial_(initial),
        selector_(selector),
        options_(options),
        rng_(options.seed),
        frozen_cooldown_(cluster.num_services(), 0),
        injector_(options.faults) {}

  StatusOr<WorkflowReport> Run();

 private:
  Status InitDurableFresh();
  Status InitResume();
  Status RunCycleNormal(int cycle);
  Status CompleteCycleFromJournal(int cycle, const CycleJournal& cj);
  // Shared end-of-cycle path: report bookkeeping, drift (journaled fresh or
  // rolled forward from `drift_rec`), cooldown ticks, checkpoint. Sets
  // `crashed_` when a crash point fires mid-tail.
  Status CycleTail(int cycle, CycleReport cr, Stopwatch& timer,
                   const JournalRecord* drift_rec, const Placement* pre_drift);
  Status WriteCheckpoint(int next_cycle);
  WorkflowCounters CurrentCounters() const;

  const Cluster& cluster_;
  const Placement& initial_;
  const AlgorithmSelector& selector_;
  const WorkflowOptions& options_;

  WorkflowReport report_;
  Placement live_;
  Rng rng_;
  // Telemetry pipeline (null when disabled) + the previous cycle's scrape
  // the per-cycle registry delta is computed against.
  std::unique_ptr<TelemetryPipeline> telemetry_;
  JsonlWriter telemetry_journal_;
  MetricsSnapshot prev_scrape_;
  // Delta cache carried across cycles (incremental mode only; stays invalid
  // otherwise). Journaled after every optimizer run and checkpointed, so
  // resume replays incremental runs bit-identically.
  IncrementalState inc_state_;
  std::vector<int> frozen_cooldown_;
  FaultInjector injector_;
  std::unique_ptr<ThreadPool> solver_pool_;

  bool durable_ = false;
  std::unique_ptr<WorkflowJournal> journal_;
  std::shared_ptr<const Cluster> checkpoint_cluster_;
  LedgerSummary last_ledger_;
  // Chaos totals restored from the checkpoint (the injector restarts at 0).
  int base_faults_ = 0;
  int base_cordons_ = 0;
  bool crashed_ = false;
  int start_cycle_ = 0;
  RecoveryAnalysis analysis_;          // resume only
  Placement expected_start_;           // expected start state of the cycle
                                       // currently being completed
};

WorkflowCounters WorkflowRunner::CurrentCounters() const {
  WorkflowCounters c;
  c.executions = report_.executions;
  c.dry_runs = report_.dry_runs;
  c.rollbacks = report_.rollbacks;
  c.solver_failures = report_.solver_failures;
  c.partial_executions = report_.partial_executions;
  c.commands_failed = report_.commands_failed;
  c.command_retries = report_.command_retries;
  c.replans = report_.replans;
  c.sla_violations = report_.sla_violations;
  c.feasibility_violations = report_.feasibility_violations;
  c.faults_injected = base_faults_ + injector_.failures_injected();
  c.cordons_fired = base_cordons_ + injector_.cordons_fired();
  return c;
}

Status WorkflowRunner::WriteCheckpoint(int next_cycle) {
  WorkflowCheckpoint c;
  c.next_cycle = next_cycle;
  c.rng_state = rng_.SerializeState();
  c.frozen_cooldown = frozen_cooldown_;
  c.counters = CurrentCounters();
  c.ledger = last_ledger_;
  c.incremental = inc_state_;
  c.snapshot.name = StrFormat("workflow-cycle-%d", next_cycle);
  c.snapshot.cluster = checkpoint_cluster_;
  c.snapshot.original_placement =
      RebindPlacement(*checkpoint_cluster_, live_);
  return SaveWorkflowCheckpoint(options_.state_dir, c);
}

Status WorkflowRunner::InitDurableFresh() {
  RASA_RETURN_IF_ERROR(EnsureDirectory(options_.state_dir));
  // A fresh (non-resume) run owns the directory: stale durable state from a
  // previous run would corrupt recovery, so it is cleared first.
  std::remove((options_.state_dir + "/journal.wal").c_str());
  std::remove((options_.state_dir + "/checkpoint").c_str());
  std::remove((options_.state_dir + "/checkpoint.prev").c_str());
  StatusOr<WorkflowJournal> journal = WorkflowJournal::Open(options_.state_dir);
  if (!journal.ok()) return journal.status();
  journal_ = std::make_unique<WorkflowJournal>(std::move(journal).value());
  durable_ = true;
  // Checkpoint 0: even a crash in the first cycle has a recovery anchor.
  return WriteCheckpoint(0);
}

Status WorkflowRunner::InitResume() {
  RASA_ASSIGN_OR_RETURN(analysis_, AnalyzeWorkflowState(options_.state_dir));
  const WorkflowCheckpoint& c = analysis_.checkpoint;
  if (c.snapshot.cluster == nullptr ||
      c.snapshot.cluster->num_services() != cluster_.num_services() ||
      c.snapshot.cluster->num_machines() != cluster_.num_machines()) {
    return InvalidArgumentError(
        StrFormat("state dir '%s' belongs to a different cluster",
                  options_.state_dir.c_str()));
  }
  if (static_cast<int>(c.frozen_cooldown.size()) != cluster_.num_services()) {
    return InvalidArgumentError("checkpoint cooldown size mismatch");
  }
  RASA_RETURN_IF_ERROR(rng_.RestoreState(c.rng_state));
  frozen_cooldown_ = c.frozen_cooldown;
  last_ledger_ = c.ledger;
  inc_state_ = c.incremental;
  report_.executions = c.counters.executions;
  report_.dry_runs = c.counters.dry_runs;
  report_.rollbacks = c.counters.rollbacks;
  report_.solver_failures = c.counters.solver_failures;
  report_.partial_executions = c.counters.partial_executions;
  report_.commands_failed = c.counters.commands_failed;
  report_.command_retries = c.counters.command_retries;
  report_.replans = c.counters.replans;
  report_.sla_violations = c.counters.sla_violations;
  report_.feasibility_violations = c.counters.feasibility_violations;
  base_faults_ = c.counters.faults_injected;
  base_cordons_ = c.counters.cordons_fired;
  start_cycle_ = c.next_cycle;
  report_.resumed_cycle = start_cycle_;
  report_.recovery.recovered = true;
  report_.recovery.used_previous_checkpoint =
      analysis_.used_previous_checkpoint;
  report_.recovery.journal_torn_tail = analysis_.journal_torn_tail;
  expected_start_ = RebindPlacement(cluster_, c.snapshot.original_placement);
  StatusOr<WorkflowJournal> journal = WorkflowJournal::Open(options_.state_dir);
  if (!journal.ok()) return journal.status();
  journal_ = std::make_unique<WorkflowJournal>(std::move(journal).value());
  durable_ = true;
  return Status::OK();
}

Status WorkflowRunner::CycleTail(int cycle, CycleReport cr, Stopwatch& timer,
                                 const JournalRecord* drift_rec,
                                 const Placement* pre_drift) {
  if (!cr.executed && !cr.rolled_back) ++report_.dry_runs;

  cr.affinity_after = GainedAffinity(cluster_, live_);
  if (cr.executed) {
    cr.migration_truncation = cr.predicted_affinity - cr.affinity_after;
  }
  cr.seconds = timer.ElapsedSeconds();
  if (MetricsEnabled()) {
    // Per-cycle view: what the registry recorded during this cycle, not the
    // cumulative scrape (CycleReport::metrics doc).
    MetricsSnapshot current = MetricRegistry::Default().Scrape();
    cr.metrics = current.Diff(prev_scrape_);
    prev_scrape_ = std::move(current);
  }
  if (telemetry_ != nullptr) {
    // live_ here is the post-execution, pre-drift placement — the state the
    // cluster actually serves traffic from until the next cycle.
    const TrafficQuantiles traffic = EstimateTrafficQuantiles(cluster_, live_);
    CycleSample sample;
    sample.cycle = cycle;
    sample.seconds = cr.seconds;
    sample.affinity_before = cr.affinity_before;
    sample.gained_affinity = cr.affinity_after;
    sample.optimality_gap =
        cr.explain.populated ? cr.explain.certificate.Gap() : 0.0;
    sample.migration_truncation = cr.migration_truncation;
    sample.dirty_subproblems = cr.dirty_subproblems;
    sample.reused_subproblems = cr.reused_subproblems;
    sample.lp_pivots = CounterDelta(cr.metrics, "solver.lp_pivots");
    sample.refactorizations =
        CounterDelta(cr.metrics, "solver.refactorizations");
    sample.latency_p50 = traffic.p50;
    sample.latency_p95 = traffic.p95;
    sample.latency_p99 = traffic.p99;
    sample.error_rate = traffic.error_rate;
    sample.executed = cr.executed;
    sample.rolled_back = cr.rolled_back;
    sample.solver_failed = cr.solver_failed;
    cr.telemetry = telemetry_->RecordCycle(sample);
    if (telemetry_journal_.is_open()) {
      telemetry_journal_.Append(
          TelemetryPipeline::JournalLine(sample, cr.telemetry));
    }
  }
  report_.cycles.push_back(std::move(cr));

  // Re-base the delta cache on the placement the cycle actually ended with
  // (local search moves trivial containers, executions go partial, plans
  // roll back) so the next diff sees only real drift. Runs in the recovery
  // tail too — it is a pure function of (state, live placement), which is
  // what keeps `--resume` bit-identical: recovery decodes the journaled
  // pre-decision state and re-derives the same re-base from the
  // rolled-forward placement.
  if (options_.incremental && inc_state_.valid) {
    RebaseIncrementalState(cluster_, live_, &inc_state_);
  }

  // Cluster drift before the next cycle. Fresh cycles journal the intent
  // (explicit move list + post-draw RNG state) before applying; recovered
  // cycles roll the journaled moves forward instead of redrawing.
  if (drift_rec != nullptr) {
    const int applied =
        RollForwardDrift(cluster_, drift_rec->moves, *pre_drift, live_);
    if (applied < 0) {
      ++report_.recovery.phases_abandoned;
    } else {
      report_.recovery.drift_moves_rolled_forward += applied;
    }
    RASA_RETURN_IF_ERROR(rng_.RestoreState(drift_rec->rng_state));
  } else {
    const std::vector<DriftMove> moves =
        ComputeDriftMoves(cluster_, live_, options_.drift_fraction, rng_);
    if (durable_) {
      JournalRecord intent;
      intent.type = JournalRecordType::kDriftIntent;
      intent.cycle = cycle;
      intent.rng_state = rng_.SerializeState();
      intent.moves = moves;
      RASA_RETURN_IF_ERROR(journal_->Append(intent));
    }
    for (const DriftMove& mv : moves) {
      RASA_CHECK(live_.Remove(mv.from, mv.service).ok());
      live_.Add(mv.to, mv.service);
      if (options_.inject_faults && injector_.CrashOnDriftMove()) {
        crashed_ = true;
        return Status::OK();
      }
    }
  }

  for (int& cd : frozen_cooldown_) cd = std::max(0, cd - 1);
  if (options_.inject_faults) injector_.EndCycle();

  if (durable_) {
    if (options_.inject_faults && injector_.CrashBeforeCheckpoint(cycle)) {
      crashed_ = true;  // died with the cycle applied but not checkpointed
      return Status::OK();
    }
    RASA_RETURN_IF_ERROR(WriteCheckpoint(cycle + 1));
  }
  return Status::OK();
}

Status WorkflowRunner::RunCycleNormal(int cycle) {
  const TraceSpan cycle_span(StrFormat("cycle_%d", cycle));
  Stopwatch timer;
  CycleReport cr;
  cr.affinity_before = GainedAffinity(cluster_, live_);

  if (durable_) {
    JournalRecord start;
    start.type = JournalRecordType::kCycleStart;
    start.cycle = cycle;
    start.rng_state = rng_.SerializeState();
    RASA_RETURN_IF_ERROR(journal_->Append(start));
  }

  // 1) Data collection (measured traffic, frozen services muted so the
  //    partitioner treats them as trivial and leaves them in place).
  CollectedState state = CollectClusterState(
      cluster_, live_, options_.measurement_noise, rng_.Next());
  bool any_frozen = false;
  for (int cd : frozen_cooldown_) any_frozen |= cd > 0;
  if (any_frozen) {
    AffinityGraph muted(cluster_.num_services());
    for (const AffinityEdge& e : state.measured_cluster->affinity().edges()) {
      if (frozen_cooldown_[e.u] > 0 || frozen_cooldown_[e.v] > 0) continue;
      muted.AddEdge(e.u, e.v, e.weight);
    }
    state.measured_cluster = std::make_shared<Cluster>(
        cluster_.resource_names(), cluster_.services(), cluster_.machines(),
        std::move(muted), cluster_.anti_affinity());
    state.placement = RebindPlacement(*state.measured_cluster, live_);
  }

  // 2) The RASA algorithm on the collected state. A failed optimizer run
  //    must not abort the workflow: the cycle is recorded as a dry-run
  //    (affinity_after == affinity_before) and the loop continues.
  RasaOptions rasa_options = options_.rasa;
  rasa_options.seed = rng_.Next();
  if (options_.inject_faults && injector_.DrawSolverExhaustion()) {
    // Chaos: the cycle starts with its solver budget already spent,
    // forcing the degradation ladder straight down to the greedy.
    rasa_options.timeout_seconds = 0.0;
  }
  RasaOptimizer optimizer(rasa_options, selector_);
  StatusOr<RasaResult> optimized = [&]() -> StatusOr<RasaResult> {
    if (options_.inject_faults && injector_.DrawOptimizerFailure()) {
      return InternalError("injected optimizer failure");
    }
    const OptimizeContext ctx(solver_pool_.get(),
                              options_.incremental ? &inc_state_ : nullptr);
    return optimizer.Optimize(*state.measured_cluster, state.placement, ctx);
  }();
  DryReason dry_reason = DryReason::kBelowThreshold;
  if (!optimized.ok()) {
    RASA_LOG(Warning) << "cycle " << cycle << " optimizer failed: "
                      << optimized.status().ToString()
                      << "; recording as dry-run";
    cr.solver_failed = true;
    dry_reason = DryReason::kSolverFailed;
    ++report_.solver_failures;
  } else {
    cr.predicted_affinity = optimized->new_gained_affinity;
    cr.incremental = optimized->incremental;
    cr.dirty_subproblems = optimized->dirty_subproblems;
    cr.reused_subproblems = optimized->reused_subproblems;
    cr.incremental_reason = optimized->incremental_reason;
    if (durable_ && options_.incremental && inc_state_.valid) {
      // The delta state must be durable before the cycle's decision record:
      // a journaled decision then implies recovery can restore the exact
      // cache the next live cycle diffs against. A crash in between leaves
      // the decision at kNone and the cycle re-runs live off the
      // checkpointed (pre-cycle) state.
      JournalRecord inc;
      inc.type = JournalRecordType::kIncrementalState;
      inc.cycle = cycle;
      inc.incremental_state = EncodeIncrementalStateString(inc_state_);
      RASA_RETURN_IF_ERROR(journal_->Append(inc));
    }
    cr.explain = optimized->report;
    if (cr.explain.populated) {
      last_ledger_.subproblems = static_cast<int>(cr.explain.records.size());
      last_ledger_.greedy_fallbacks = 0;
      last_ledger_.secondary_successes = 0;
      for (const LedgerRecord& rec : cr.explain.records) {
        if (rec.fell_to_greedy) ++last_ledger_.greedy_fallbacks;
        if (rec.used_secondary) ++last_ledger_.secondary_successes;
      }
      last_ledger_.solver_failures = report_.solver_failures;
      last_ledger_.certificate_gap = cr.explain.certificate.Gap();
    }
  }

  // 3) Reallocate per the migration plan (or dry-run).
  bool executed_or_rolled_back = false;
  if (optimized.ok() && optimized->should_execute) {
    RasaResult& result = *optimized;
    const Status valid = ValidateMigrationPlan(
        *state.measured_cluster, state.placement, result.new_placement,
        result.migration, rasa_options.migration.min_alive_fraction);
    if (!valid.ok()) {
      RASA_LOG(Warning) << "migration plan invalid, dry-running: "
                        << valid.ToString();
      dry_reason = DryReason::kInvalidPlan;
    } else {
      Placement candidate = RebindPlacement(cluster_, result.new_placement);
      if (MaxMachineUtilization(cluster_, candidate) >
          options_.rollback_utilization_threshold) {
        // Rollback: revert, tag the moved services unschedulable.
        executed_or_rolled_back = true;
        cr.rolled_back = true;
        ++report_.rollbacks;
        std::vector<int> frozen;
        for (int s = 0; s < cluster_.num_services(); ++s) {
          bool moved = false;
          for (const auto& [m, count] : candidate.MachinesOf(s)) {
            if (live_.CountOn(m, s) != count) {
              moved = true;
              break;
            }
          }
          if (moved) {
            frozen_cooldown_[s] = options_.unschedulable_cycles;
            frozen.push_back(s);
          }
        }
        if (durable_) {
          JournalRecord rec;
          rec.type = JournalRecordType::kDecisionRollback;
          rec.cycle = cycle;
          rec.rng_state = rng_.SerializeState();
          rec.frozen_services = std::move(frozen);
          RASA_RETURN_IF_ERROR(journal_->Append(rec));
        }
      } else {
        executed_or_rolled_back = true;
        // Chaos: the cluster drifts between collection and execution, so
        // the plan is stale and the executor must re-plan mid-flight.
        if (options_.inject_faults &&
            options_.faults.stale_snapshot_drift > 0.0) {
          DriftPlacement(cluster_, live_, options_.faults.stale_snapshot_drift,
                         rng_);
        }
        MigrationExecutorOptions exec_options;
        exec_options.retry = options_.command_retry;
        exec_options.min_alive_fraction =
            rasa_options.migration.min_alive_fraction;
        exec_options.max_replans = options_.max_replans;
        exec_options.seed = rng_.Next();
        if (durable_) {
          // WAL plan record: the full intent (target + batches + the RNG
          // state after every pre-execution draw) is durable before the
          // first command runs, so recovery never re-runs the optimizer.
          JournalRecord plan;
          plan.type = JournalRecordType::kPlan;
          plan.cycle = cycle;
          plan.rng_state = rng_.SerializeState();
          plan.exec_seed = exec_options.seed;
          plan.predicted_affinity = cr.predicted_affinity;
          for (int m = 0; m < cluster_.num_machines(); ++m) {
            for (const auto& [s, count] : candidate.ServicesOn(m)) {
              plan.target.push_back({m, s, count});
            }
          }
          plan.batches = result.migration.batches;
          RASA_RETURN_IF_ERROR(journal_->Append(plan));
        }
        if (options_.use_migration_executor) {
          PlacementActions base_actions(live_);
          FaultyClusterActions faulty_actions(base_actions, injector_);
          ClusterActions& actions =
              options_.inject_faults
                  ? static_cast<ClusterActions&>(faulty_actions)
                  : static_cast<ClusterActions&>(base_actions);
          exec_options.journal = journal_.get();
          exec_options.journal_cycle = cycle;
          if (options_.inject_faults) {
            exec_options.crash_after_command = [this] {
              return injector_.CrashOnCommandApplied();
            };
            exec_options.crash_after_batch = [this] {
              return injector_.CrashOnBatchComplete();
            };
          }
          const MigrationExecutionReport exec = ExecuteMigration(
              cluster_, live_, candidate, result.migration, actions,
              exec_options);
          if (exec.crashed) {
            // Stopped dead mid-execution: the live placement is whatever
            // the applied commands left behind; nothing else runs.
            crashed_ = true;
            return Status::OK();
          }
          cr.executed = true;
          cr.reached_target = exec.reached_target;
          cr.moved_containers = exec.commands_succeeded;
          cr.migration_batches = exec.batches_executed;
          cr.commands_failed = exec.commands_failed;
          cr.command_retries = exec.retries;
          cr.replans = exec.replans;
          ++report_.executions;
          if (!exec.reached_target) ++report_.partial_executions;
          report_.commands_failed += exec.commands_failed;
          report_.command_retries += exec.retries;
          report_.replans += exec.replans;
          report_.sla_violations += exec.sla_violations;
          report_.feasibility_violations += exec.feasibility_violations;
          if (durable_) {
            JournalRecord done;
            done.type = JournalRecordType::kExecDone;
            done.cycle = cycle;
            done.reached_target = exec.reached_target;
            done.batches_executed = exec.batches_executed;
            done.commands_succeeded = exec.commands_succeeded;
            done.commands_failed = exec.commands_failed;
            done.retries = exec.retries;
            done.replans = exec.replans;
            done.sla_violations = exec.sla_violations;
            done.feasibility_violations = exec.feasibility_violations;
            RASA_RETURN_IF_ERROR(journal_->Append(done));
          }
        } else {
          cr.executed = true;
          cr.reached_target = true;
          cr.moved_containers = result.moved_containers;
          cr.migration_batches =
              static_cast<int>(result.migration.batches.size());
          ++report_.executions;
          live_ = std::move(candidate);
          if (durable_) {
            JournalRecord done;
            done.type = JournalRecordType::kExecDone;
            done.cycle = cycle;
            done.reached_target = true;
            done.batches_executed = cr.migration_batches;
            done.commands_succeeded = cr.moved_containers;
            RASA_RETURN_IF_ERROR(journal_->Append(done));
          }
        }
      }
    }
  }
  if (durable_ && !executed_or_rolled_back) {
    JournalRecord rec;
    rec.type = JournalRecordType::kDecisionDry;
    rec.cycle = cycle;
    rec.rng_state = rng_.SerializeState();
    rec.dry_reason = dry_reason;
    RASA_RETURN_IF_ERROR(journal_->Append(rec));
  }

  return CycleTail(cycle, std::move(cr), timer, nullptr, nullptr);
}

Status WorkflowRunner::CompleteCycleFromJournal(int cycle,
                                                const CycleJournal& cj) {
  if (cj.decision == CycleJournal::Decision::kNone) {
    // Only a cycle_start (or nothing) was journaled: no durable side effect
    // happened, the RNG and cooldowns are still at their cycle-start state,
    // so the cycle simply runs live.
    return RunCycleNormal(cycle);
  }
  const TraceSpan cycle_span(StrFormat("cycle_%d_recovery", cycle));
  Stopwatch timer;
  CycleReport cr;
  cr.recovered = true;
  cr.affinity_before = GainedAffinity(cluster_, expected_start_);
  ++report_.recovery.cycles_completed_from_journal;
  if (cj.has_incremental) {
    // The interrupted cycle's post-optimizer delta state was journaled
    // before its decision record; restore it so subsequent live cycles diff
    // against the same cache the original run carried.
    RASA_ASSIGN_OR_RETURN(
        inc_state_,
        DecodeIncrementalStateString(cj.incremental_record.incremental_state));
  }

  Placement pre_drift = expected_start_;
  switch (cj.decision) {
    case CycleJournal::Decision::kDry:
      RASA_RETURN_IF_ERROR(rng_.RestoreState(cj.decision_record.rng_state));
      cr.solver_failed =
          cj.decision_record.dry_reason == DryReason::kSolverFailed;
      if (cr.solver_failed) ++report_.solver_failures;
      break;
    case CycleJournal::Decision::kRollback:
      RASA_RETURN_IF_ERROR(rng_.RestoreState(cj.decision_record.rng_state));
      cr.rolled_back = true;
      ++report_.rollbacks;
      for (int s : cj.decision_record.frozen_services) {
        if (s >= 0 && s < cluster_.num_services()) {
          frozen_cooldown_[s] = options_.unschedulable_cycles;
        }
      }
      break;
    case CycleJournal::Decision::kExecute: {
      RASA_RETURN_IF_ERROR(rng_.RestoreState(cj.plan.rng_state));
      cr.executed = true;
      cr.predicted_affinity = cj.plan.predicted_affinity;
      Placement target(cluster_);
      for (const std::array<int, 3>& t : cj.plan.target) {
        target.Add(t[0], t[1], t[2]);
      }
      if (cj.exec_done) {
        // Execution finished before the crash; the observed placement is
        // already its end state.
        const JournalRecord& e = cj.exec_record;
        cr.reached_target = e.reached_target;
        cr.moved_containers = e.commands_succeeded;
        cr.migration_batches = e.batches_executed;
        cr.commands_failed = e.commands_failed;
        cr.command_retries = e.retries;
        cr.replans = e.replans;
        report_.commands_failed += e.commands_failed;
        report_.command_retries += e.retries;
        report_.replans += e.replans;
        report_.sla_violations += e.sla_violations;
        report_.feasibility_violations += e.feasibility_violations;
      } else {
        // Classify every journaled command against the observed world
        // before mutating it, then roll the interrupted execution forward.
        const std::vector<CommandClassification> fates =
            ClassifyInFlightCommands(cluster_, cj, expected_start_, live_,
                                     analysis_.journal_torn_tail);
        for (const CommandClassification& f : fates) {
          switch (f.fate) {
            case CommandFate::kApplied:
              ++report_.recovery.commands_applied_pre_crash;
              break;
            case CommandFate::kNotApplied:
              ++report_.recovery.commands_not_applied;
              break;
            case CommandFate::kTorn:
              ++report_.recovery.commands_torn;
              break;
          }
        }
        RASA_ASSIGN_OR_RETURN(
            const RollForwardResult rf,
            RollForwardExecution(cluster_, cj, expected_start_, live_,
                                 options_.rasa.migration.min_alive_fraction,
                                 journal_.get()));
        cr.reached_target = rf.reached_target;
        cr.moved_containers =
            rf.commands_pre_applied + rf.commands_rolled_forward;
        int num_batches = static_cast<int>(cj.plan.batches.size());
        if (!cj.batch_intents.empty()) {
          num_batches =
              std::max(num_batches, cj.batch_intents.rbegin()->first + 1);
        }
        cr.migration_batches = num_batches;
        report_.sla_violations += rf.sla_violations;
        report_.feasibility_violations += rf.feasibility_violations;
        report_.recovery.commands_rolled_forward += rf.commands_rolled_forward;
        report_.recovery.batches_rolled_forward += rf.batches_rolled_forward;
        if (rf.abandoned) ++report_.recovery.phases_abandoned;
      }
      ++report_.executions;
      if (!cr.reached_target) ++report_.partial_executions;
      pre_drift = cr.reached_target ? std::move(target) : live_;
      break;
    }
    case CycleJournal::Decision::kNone:
      break;  // handled above
  }
  return CycleTail(cycle, std::move(cr), timer,
                   cj.drift_started ? &cj.drift_record : nullptr, &pre_drift);
}

StatusOr<WorkflowReport> WorkflowRunner::Run() {
  live_ = RebindPlacement(cluster_, initial_);
  // One worker pool shared by every cycle's optimizer run: spawning threads
  // once instead of per cycle keeps the per-cycle overhead at zero.
  const int solver_threads = options_.rasa.num_threads == 0
                                 ? ThreadPool::DefaultNumThreads()
                                 : std::max(1, options_.rasa.num_threads);
  if (solver_threads > 1) {
    solver_pool_ = std::make_unique<ThreadPool>(solver_threads);
  }

  TelemetryOptions telemetry_options = options_.telemetry;
  if (!options_.telemetry_dir.empty()) telemetry_options.enabled = true;
  if (telemetry_options.enabled) {
    telemetry_ = std::make_unique<TelemetryPipeline>(telemetry_options);
    if (!options_.telemetry_dir.empty()) {
      RASA_RETURN_IF_ERROR(EnsureDirectory(options_.telemetry_dir));
      const std::string journal_path =
          options_.telemetry_dir + "/telemetry.jsonl";
      // Fresh runs own the journal; resumed runs append where they left off.
      if (!options_.resume) std::remove(journal_path.c_str());
      if (!telemetry_journal_.Open(journal_path)) {
        return InternalError(StrFormat("cannot open telemetry journal '%s'",
                                       journal_path.c_str()));
      }
    }
  }
  if (MetricsEnabled()) {
    prev_scrape_ = MetricRegistry::Default().Scrape();
  }

  if (!options_.state_dir.empty()) {
    checkpoint_cluster_ = std::make_shared<Cluster>(
        cluster_.resource_names(), cluster_.services(), cluster_.machines(),
        cluster_.affinity(), cluster_.anti_affinity());
    if (options_.resume) {
      RASA_RETURN_IF_ERROR(InitResume());
    } else {
      RASA_RETURN_IF_ERROR(InitDurableFresh());
    }
  }

  for (int cycle = start_cycle_; cycle < options_.cycles && !crashed_;
       ++cycle) {
    if (options_.resume) {
      const auto it = analysis_.cycles.find(cycle);
      if (it != analysis_.cycles.end() &&
          it->second.decision != CycleJournal::Decision::kNone) {
        RASA_RETURN_IF_ERROR(CompleteCycleFromJournal(cycle, it->second));
        // A completed cycle leaves live_ at the next cycle's start state.
        expected_start_ = live_;
        continue;
      }
    }
    RASA_RETURN_IF_ERROR(RunCycleNormal(cycle));
  }

  report_.faults_injected = base_faults_ + injector_.failures_injected();
  report_.cordons_fired = base_cordons_ + injector_.cordons_fired();
  report_.crashed = crashed_;
  report_.final_placement = std::move(live_);
  return std::move(report_);
}

}  // namespace

CollectedState CollectClusterState(const Cluster& cluster,
                                   const Placement& live,
                                   double measurement_noise, uint64_t seed) {
  Rng rng(seed);
  AffinityGraph measured(cluster.num_services());
  for (const AffinityEdge& e : cluster.affinity().edges()) {
    const double factor =
        std::max(0.05, 1.0 + measurement_noise * rng.NextGaussian());
    measured.AddEdge(e.u, e.v, e.weight * factor);
  }
  measured.NormalizeWeights();
  CollectedState state{
      std::make_shared<Cluster>(cluster.resource_names(), cluster.services(),
                                cluster.machines(), std::move(measured),
                                cluster.anti_affinity()),
      Placement()};
  state.placement = RebindPlacement(*state.measured_cluster, live);
  return state;
}

Status ValidateWorkflowOptions(const WorkflowOptions& options) {
  if (options.cycles < 0) {
    return InvalidArgumentError(
        StrFormat("cycles must be non-negative (got %d)", options.cycles));
  }
  // The negated comparisons also catch NaN.
  if (!(options.drift_fraction >= 0.0 && options.drift_fraction <= 1.0)) {
    return InvalidArgumentError(
        StrFormat("drift_fraction must be in [0, 1] (got %g)",
                  options.drift_fraction));
  }
  if (!(options.measurement_noise >= 0.0 &&
        options.measurement_noise <= 1.0)) {
    return InvalidArgumentError(
        StrFormat("measurement_noise must be in [0, 1] (got %g)",
                  options.measurement_noise));
  }
  if (options.max_replans <= 0) {
    return InvalidArgumentError(
        StrFormat("max_replans must be positive (got %d)",
                  options.max_replans));
  }
  if (!(options.rollback_utilization_threshold >= 1.0)) {
    // Collocation legitimately packs machines to 100%; a threshold below
    // 1.0 (or NaN, caught by the negated comparison) would roll back every
    // healthy execution.
    return InvalidArgumentError(
        StrFormat("rollback_utilization_threshold must be at least 1.0 "
                  "(got %g)",
                  options.rollback_utilization_threshold));
  }
  if (options.unschedulable_cycles < 0) {
    return InvalidArgumentError(
        StrFormat("unschedulable_cycles must be non-negative (got %d)",
                  options.unschedulable_cycles));
  }
  if (options.resume && options.state_dir.empty()) {
    return InvalidArgumentError("resume requires a state_dir");
  }
  return Status::OK();
}

TrafficQuantiles EstimateTrafficQuantiles(const Cluster& cluster,
                                          const Placement& placement) {
  // Steady-state constants of the production model: no jitter, congestion,
  // or time steps — the result is a pure function of the placement.
  const ProductionSimOptions model;
  const std::vector<AffinityEdge>& edges = cluster.affinity().edges();
  TrafficQuantiles out;
  if (edges.empty()) return out;
  const std::vector<double> rho = EdgeLocalizationRatios(cluster, placement);

  struct TrafficPoint {
    double latency;
    double weight;
  };
  std::vector<TrafficPoint> points;
  points.reserve(edges.size());
  double total_weight = 0.0;
  double weighted_error = 0.0;
  for (size_t i = 0; i < edges.size(); ++i) {
    const double w = edges[i].weight;
    if (w <= 0.0) continue;
    const double r = rho[i];
    points.push_back(
        {r * model.ipc_latency + (1.0 - r) * model.rpc_latency, w});
    weighted_error += w * (r * model.ipc_error + (1.0 - r) * model.rpc_error);
    total_weight += w;
  }
  if (total_weight <= 0.0) return out;
  out.error_rate = weighted_error / total_weight;
  std::sort(points.begin(), points.end(),
            [](const TrafficPoint& a, const TrafficPoint& b) {
              return a.latency < b.latency;
            });
  // Weighted quantile: the smallest latency whose cumulative traffic share
  // reaches q.
  const auto quantile = [&](double q) {
    const double target = q * total_weight;
    double cumulative = 0.0;
    for (const TrafficPoint& p : points) {
      cumulative += p.weight;
      if (cumulative >= target) return p.latency;
    }
    return points.back().latency;
  };
  out.p50 = quantile(0.50);
  out.p95 = quantile(0.95);
  out.p99 = quantile(0.99);
  return out;
}

StatusOr<WorkflowReport> RunWorkflow(const Cluster& cluster,
                                     const Placement& initial,
                                     const AlgorithmSelector& selector,
                                     const WorkflowOptions& options) {
  RASA_RETURN_IF_ERROR(ValidateWorkflowOptions(options));
  WorkflowRunner runner(cluster, initial, selector, options);
  return runner.Run();
}

}  // namespace rasa
