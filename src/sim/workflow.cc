#include "sim/workflow.h"

#include <algorithm>
#include <memory>
#include <set>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/migration.h"
#include "core/migration_executor.h"
#include "core/objective.h"
#include "sim/fault_injection.h"

namespace rasa {
namespace {

// Re-associates the counts of `placement` with `cluster` (same shape,
// possibly different affinity weights).
Placement RebindPlacement(const Cluster& cluster, const Placement& placement) {
  Placement out(cluster);
  for (int m = 0; m < cluster.num_machines(); ++m) {
    for (const auto& [s, count] : placement.ServicesOn(m)) {
      out.Add(m, s, count);
    }
  }
  return out;
}

// Randomly relocates ~fraction of all containers to other feasible machines
// (application updates / user modifications between cycles).
void DriftPlacement(const Cluster& cluster, Placement& placement,
                    double fraction, Rng& rng) {
  const int moves =
      static_cast<int>(fraction * cluster.num_containers());
  for (int i = 0; i < moves; ++i) {
    const int s = static_cast<int>(rng.NextUint64(cluster.num_services()));
    const auto& machines = placement.MachinesOf(s);
    if (machines.empty()) continue;
    // Pick a random hosting machine of s.
    const int pick = static_cast<int>(rng.NextUint64(machines.size()));
    auto it = machines.begin();
    std::advance(it, pick);
    const int from = it->first;
    // Pick a random feasible destination.
    std::vector<int> feasible;
    for (int m = 0; m < cluster.num_machines(); ++m) {
      if (m != from && placement.CanPlace(m, s)) feasible.push_back(m);
    }
    if (feasible.empty()) continue;
    const int to = feasible[rng.NextUint64(feasible.size())];
    RASA_CHECK(placement.Remove(from, s).ok());
    placement.Add(to, s);
  }
}

double MaxMachineUtilization(const Cluster& cluster,
                             const Placement& placement) {
  double worst = 0.0;
  for (int m = 0; m < cluster.num_machines(); ++m) {
    for (int r = 0; r < cluster.num_resources(); ++r) {
      const double cap = cluster.machine(m).capacity[r];
      if (cap > 0.0) {
        worst = std::max(worst, placement.UsedResource(m, r) / cap);
      }
    }
  }
  return worst;
}

}  // namespace

CollectedState CollectClusterState(const Cluster& cluster,
                                   const Placement& live,
                                   double measurement_noise, uint64_t seed) {
  Rng rng(seed);
  AffinityGraph measured(cluster.num_services());
  for (const AffinityEdge& e : cluster.affinity().edges()) {
    const double factor =
        std::max(0.05, 1.0 + measurement_noise * rng.NextGaussian());
    measured.AddEdge(e.u, e.v, e.weight * factor);
  }
  measured.NormalizeWeights();
  CollectedState state{
      std::make_shared<Cluster>(cluster.resource_names(), cluster.services(),
                                cluster.machines(), std::move(measured),
                                cluster.anti_affinity()),
      Placement()};
  state.placement = RebindPlacement(*state.measured_cluster, live);
  return state;
}

StatusOr<WorkflowReport> RunWorkflow(const Cluster& cluster,
                                     const Placement& initial,
                                     const AlgorithmSelector& selector,
                                     const WorkflowOptions& options) {
  WorkflowReport report;
  Placement live = RebindPlacement(cluster, initial);
  Rng rng(options.seed);
  // Services tagged unschedulable after a rollback, with remaining cooldown.
  std::vector<int> frozen_cooldown(cluster.num_services(), 0);
  // The chaos source lives across cycles so cordons span migrations.
  FaultInjector injector(options.faults);
  // One worker pool shared by every cycle's optimizer run: spawning threads
  // once instead of per cycle keeps the per-cycle overhead at zero.
  const int solver_threads = options.rasa.num_threads == 0
                                 ? ThreadPool::DefaultNumThreads()
                                 : std::max(1, options.rasa.num_threads);
  std::unique_ptr<ThreadPool> solver_pool;
  if (solver_threads > 1) {
    solver_pool = std::make_unique<ThreadPool>(solver_threads);
  }

  for (int cycle = 0; cycle < options.cycles; ++cycle) {
    const TraceSpan cycle_span(StrFormat("cycle_%d", cycle));
    Stopwatch timer;
    CycleReport cr;
    cr.affinity_before = GainedAffinity(cluster, live);

    // 1) Data collection (measured traffic, frozen services muted so the
    //    partitioner treats them as trivial and leaves them in place).
    CollectedState state =
        CollectClusterState(cluster, live, options.measurement_noise,
                            rng.Next());
    bool any_frozen = false;
    for (int cd : frozen_cooldown) any_frozen |= cd > 0;
    if (any_frozen) {
      AffinityGraph muted(cluster.num_services());
      for (const AffinityEdge& e :
           state.measured_cluster->affinity().edges()) {
        if (frozen_cooldown[e.u] > 0 || frozen_cooldown[e.v] > 0) continue;
        muted.AddEdge(e.u, e.v, e.weight);
      }
      state.measured_cluster = std::make_shared<Cluster>(
          cluster.resource_names(), cluster.services(), cluster.machines(),
          std::move(muted), cluster.anti_affinity());
      state.placement = RebindPlacement(*state.measured_cluster, live);
    }

    // 2) The RASA algorithm on the collected state. A failed optimizer run
    //    must not abort the workflow: the cycle is recorded as a dry-run
    //    (affinity_after == affinity_before) and the loop continues.
    RasaOptions rasa_options = options.rasa;
    rasa_options.seed = rng.Next();
    if (options.inject_faults && injector.DrawSolverExhaustion()) {
      // Chaos: the cycle starts with its solver budget already spent,
      // forcing the degradation ladder straight down to the greedy.
      rasa_options.timeout_seconds = 0.0;
    }
    RasaOptimizer optimizer(rasa_options, selector);
    StatusOr<RasaResult> optimized =
        options.inject_faults && injector.DrawOptimizerFailure()
            ? StatusOr<RasaResult>(
                  InternalError("injected optimizer failure"))
            : optimizer.Optimize(*state.measured_cluster, state.placement,
                                 solver_pool.get());
    if (!optimized.ok()) {
      RASA_LOG(Warning) << "cycle " << cycle << " optimizer failed: "
                        << optimized.status().ToString()
                        << "; recording as dry-run";
      cr.solver_failed = true;
      ++report.solver_failures;
    } else {
      cr.predicted_affinity = optimized->new_gained_affinity;
      cr.explain = optimized->report;
    }

    // 3) Reallocate per the migration plan (or dry-run).
    if (optimized.ok() && optimized->should_execute) {
      RasaResult& result = *optimized;
      const Status valid = ValidateMigrationPlan(
          *state.measured_cluster, state.placement, result.new_placement,
          result.migration, rasa_options.migration.min_alive_fraction);
      if (!valid.ok()) {
        RASA_LOG(Warning) << "migration plan invalid, dry-running: "
                          << valid.ToString();
      } else {
        Placement candidate = RebindPlacement(cluster, result.new_placement);
        if (MaxMachineUtilization(cluster, candidate) >
            options.rollback_utilization_threshold) {
          // Rollback: revert, tag the moved services unschedulable.
          cr.rolled_back = true;
          ++report.rollbacks;
          for (int s = 0; s < cluster.num_services(); ++s) {
            bool moved = false;
            for (const auto& [m, count] : candidate.MachinesOf(s)) {
              if (live.CountOn(m, s) != count) {
                moved = true;
                break;
              }
            }
            if (moved) frozen_cooldown[s] = options.unschedulable_cycles;
          }
        } else if (options.use_migration_executor) {
          // Chaos: the cluster drifts between collection and execution, so
          // the plan is stale and the executor must re-plan mid-flight.
          if (options.inject_faults &&
              options.faults.stale_snapshot_drift > 0.0) {
            DriftPlacement(cluster, live, options.faults.stale_snapshot_drift,
                           rng);
          }
          PlacementActions base_actions(live);
          FaultyClusterActions faulty_actions(base_actions, injector);
          ClusterActions& actions =
              options.inject_faults
                  ? static_cast<ClusterActions&>(faulty_actions)
                  : static_cast<ClusterActions&>(base_actions);
          MigrationExecutorOptions exec_options;
          exec_options.retry = options.command_retry;
          exec_options.min_alive_fraction =
              rasa_options.migration.min_alive_fraction;
          exec_options.max_replans = options.max_replans;
          exec_options.seed = rng.Next();
          const MigrationExecutionReport exec = ExecuteMigration(
              cluster, live, candidate, result.migration, actions,
              exec_options);
          cr.executed = true;
          cr.reached_target = exec.reached_target;
          cr.moved_containers = exec.commands_succeeded;
          cr.migration_batches = exec.batches_executed;
          cr.commands_failed = exec.commands_failed;
          cr.command_retries = exec.retries;
          cr.replans = exec.replans;
          ++report.executions;
          if (!exec.reached_target) ++report.partial_executions;
          report.commands_failed += exec.commands_failed;
          report.command_retries += exec.retries;
          report.replans += exec.replans;
          report.sla_violations += exec.sla_violations;
          report.feasibility_violations += exec.feasibility_violations;
        } else {
          cr.executed = true;
          cr.reached_target = true;
          cr.moved_containers = result.moved_containers;
          cr.migration_batches =
              static_cast<int>(result.migration.batches.size());
          ++report.executions;
          live = std::move(candidate);
        }
      }
    }
    if (!cr.executed && !cr.rolled_back) ++report.dry_runs;

    cr.affinity_after = GainedAffinity(cluster, live);
    if (cr.executed) {
      cr.migration_truncation = cr.predicted_affinity - cr.affinity_after;
    }
    cr.seconds = timer.ElapsedSeconds();
    if (MetricsEnabled()) {
      cr.metrics = MetricRegistry::Default().Scrape();
    }
    report.cycles.push_back(std::move(cr));

    // 4) Cluster drift before the next cycle; cooldowns and cordons tick.
    DriftPlacement(cluster, live, options.drift_fraction, rng);
    for (int& cd : frozen_cooldown) cd = std::max(0, cd - 1);
    if (options.inject_faults) injector.EndCycle();
  }

  report.faults_injected = injector.failures_injected();
  report.cordons_fired = injector.cordons_fired();
  report.final_placement = std::move(live);
  return report;
}

}  // namespace rasa
