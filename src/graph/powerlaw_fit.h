#ifndef RASA_GRAPH_POWERLAW_FIT_H_
#define RASA_GRAPH_POWERLAW_FIT_H_

#include <vector>

#include "graph/affinity_graph.h"

namespace rasa {

/// Least-squares fit of a decay law to a rank-ordered positive series
/// (Fig. 5: fitting the total-affinity distribution of services).
struct DecayFit {
  double scale = 0.0;     // C
  double exponent = 0.0;  // beta (power law) or lambda (exponential)
  double r_squared = 0.0; // goodness of fit in the transformed space
};

/// Fits y(s) = C * s^(-beta) to values[i] at rank s = i+1 by linear
/// regression in log-log space. Non-positive values are skipped.
DecayFit FitPowerLaw(const std::vector<double>& values);

/// Fits y(s) = C * exp(-lambda * s) by linear regression in semi-log space.
DecayFit FitExponential(const std::vector<double>& values);

/// Rank-ordered (descending) total affinities T(s) of all vertices.
std::vector<double> SortedTotalAffinities(const AffinityGraph& graph);

/// Fraction of total affinity carried by the top `k` services by T(s)
/// (the skewness statistic motivating master partitioning).
double TopKAffinityShare(const AffinityGraph& graph, int k);

}  // namespace rasa

#endif  // RASA_GRAPH_POWERLAW_FIT_H_
