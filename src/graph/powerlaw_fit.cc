#include "graph/powerlaw_fit.h"

#include <algorithm>
#include <cmath>

namespace rasa {
namespace {

// Simple linear regression y = a + b x; returns {a, b, r^2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};

LinearFit Regress(const std::vector<double>& xs, const std::vector<double>& ys) {
  LinearFit fit;
  const size_t n = xs.size();
  if (n < 2) return fit;
  double sx = 0.0, sy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace

DecayFit FitPowerLaw(const std::vector<double>& values) {
  std::vector<double> xs, ys;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] <= 0.0) continue;
    xs.push_back(std::log(static_cast<double>(i + 1)));
    ys.push_back(std::log(values[i]));
  }
  const LinearFit lin = Regress(xs, ys);
  DecayFit fit;
  fit.scale = std::exp(lin.intercept);
  fit.exponent = -lin.slope;
  fit.r_squared = lin.r_squared;
  return fit;
}

DecayFit FitExponential(const std::vector<double>& values) {
  std::vector<double> xs, ys;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] <= 0.0) continue;
    xs.push_back(static_cast<double>(i + 1));
    ys.push_back(std::log(values[i]));
  }
  const LinearFit lin = Regress(xs, ys);
  DecayFit fit;
  fit.scale = std::exp(lin.intercept);
  fit.exponent = -lin.slope;
  fit.r_squared = lin.r_squared;
  return fit;
}

std::vector<double> SortedTotalAffinities(const AffinityGraph& graph) {
  std::vector<double> totals(graph.num_vertices());
  for (int v = 0; v < graph.num_vertices(); ++v) {
    totals[v] = graph.TotalAffinityOf(v);
  }
  std::sort(totals.begin(), totals.end(), std::greater<double>());
  return totals;
}

double TopKAffinityShare(const AffinityGraph& graph, int k) {
  const std::vector<double> totals = SortedTotalAffinities(graph);
  double all = 0.0;
  double top = 0.0;
  for (size_t i = 0; i < totals.size(); ++i) {
    all += totals[i];
    if (static_cast<int>(i) < k) top += totals[i];
  }
  return all > 0.0 ? top / all : 0.0;
}

}  // namespace rasa
