#include "graph/affinity_graph.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/strings.h"

namespace rasa {

AffinityGraph::AffinityGraph(int num_vertices) : num_vertices_(num_vertices) {
  if (dense_backend()) adjacency_.resize(num_vertices);
}

Status AffinityGraph::AddEdge(int u, int v, double weight) {
  if (u == v) {
    return InvalidArgumentError(StrFormat("self-loop on vertex %d", u));
  }
  if (u < 0 || u >= num_vertices_ || v < 0 || v >= num_vertices_) {
    return InvalidArgumentError(StrFormat("edge {%d, %d} out of range", u, v));
  }
  if (!(weight > 0.0)) {
    return InvalidArgumentError(
        StrFormat("edge {%d, %d} has non-positive weight %g", u, v, weight));
  }
  const int lo = std::min(u, v);
  const int hi = std::max(u, v);
  const auto [it, inserted] =
      edge_index_.try_emplace(EdgeKey(lo, hi), static_cast<int>(edges_.size()));
  if (!inserted) {
    edges_[it->second].weight += weight;
    if (dense_backend()) {
      for (auto& [nbr, w] : adjacency_[u]) {
        if (nbr == v) w += weight;
      }
      for (auto& [nbr, w] : adjacency_[v]) {
        if (nbr == u) w += weight;
      }
    } else {
      csr_valid_ = false;
    }
    return Status::OK();
  }
  edges_.push_back({lo, hi, weight});
  if (dense_backend()) {
    adjacency_[u].push_back({v, weight});
    adjacency_[v].push_back({u, weight});
  } else {
    csr_valid_ = false;
  }
  return Status::OK();
}

void AffinityGraph::EnsureReadable() const {
  if (dense_backend() || csr_valid_) return;
  // Stable counting pass over edges_ in insertion order: each edge appends
  // both directions, exactly reproducing the push_back order of the dense
  // backend (and of the pre-CSR implementation).
  csr_offsets_.assign(num_vertices_ + 1, 0);
  for (const AffinityEdge& e : edges_) {
    ++csr_offsets_[e.u + 1];
    ++csr_offsets_[e.v + 1];
  }
  for (int v = 0; v < num_vertices_; ++v) {
    csr_offsets_[v + 1] += csr_offsets_[v];
  }
  csr_entries_.resize(edges_.size() * 2);
  std::vector<int> cursor(csr_offsets_.begin(), csr_offsets_.end() - 1);
  for (const AffinityEdge& e : edges_) {
    csr_entries_[cursor[e.u]++] = {e.v, e.weight};
    csr_entries_[cursor[e.v]++] = {e.u, e.weight};
  }
  csr_valid_ = true;
}

AffinityGraph::NeighborSpan AffinityGraph::Neighbors(int v) const {
  if (dense_backend()) {
    const auto& nbrs = adjacency_[v];
    return NeighborSpan(nbrs.data(), nbrs.size());
  }
  EnsureReadable();
  const int begin = csr_offsets_[v];
  return NeighborSpan(csr_entries_.data() + begin,
                      static_cast<size_t>(csr_offsets_[v + 1] - begin));
}

int AffinityGraph::Degree(int v) const {
  if (dense_backend()) return static_cast<int>(adjacency_[v].size());
  EnsureReadable();
  return csr_offsets_[v + 1] - csr_offsets_[v];
}

double AffinityGraph::TotalAffinityOf(int v) const {
  double total = 0.0;
  for (const auto& [nbr, w] : Neighbors(v)) {
    (void)nbr;
    total += w;
  }
  return total;
}

double AffinityGraph::TotalWeight() const {
  double total = 0.0;
  for (const AffinityEdge& e : edges_) total += e.weight;
  return total;
}

void AffinityGraph::NormalizeWeights() {
  const double total = TotalWeight();
  if (total <= 0.0) return;
  const double inv = 1.0 / total;
  for (AffinityEdge& e : edges_) e.weight *= inv;
  for (auto& nbrs : adjacency_) {
    for (auto& [nbr, w] : nbrs) w *= inv;
  }
  if (csr_valid_) {
    for (auto& [nbr, w] : csr_entries_) w *= inv;
  }
}

AffinityGraph AffinityGraph::InducedSubgraph(
    const std::vector<int>& vertices) const {
  std::vector<int> new_id(num_vertices_, -1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    new_id[vertices[i]] = static_cast<int>(i);
  }
  AffinityGraph sub(static_cast<int>(vertices.size()));
  for (const AffinityEdge& e : edges_) {
    const int nu = new_id[e.u];
    const int nv = new_id[e.v];
    if (nu >= 0 && nv >= 0) {
      sub.AddEdge(nu, nv, e.weight);  // cannot fail: fresh distinct ids
    }
  }
  return sub;
}

std::vector<int> AffinityGraph::ConnectedComponents(
    int* num_components) const {
  std::vector<int> component(num_vertices_, -1);
  int count = 0;
  std::deque<int> queue;
  for (int start = 0; start < num_vertices_; ++start) {
    if (component[start] >= 0) continue;
    component[start] = count;
    queue.push_back(start);
    while (!queue.empty()) {
      const int v = queue.front();
      queue.pop_front();
      for (const auto& [nbr, w] : Neighbors(v)) {
        (void)w;
        if (component[nbr] < 0) {
          component[nbr] = count;
          queue.push_back(nbr);
        }
      }
    }
    ++count;
  }
  if (num_components != nullptr) *num_components = count;
  return component;
}

double AffinityGraph::CutWeight(const std::vector<int>& part_of_vertex) const {
  double cut = 0.0;
  for (const AffinityEdge& e : edges_) {
    if (part_of_vertex[e.u] != part_of_vertex[e.v]) cut += e.weight;
  }
  return cut;
}

AffinityGraph GeneratePowerLawGraph(int num_vertices, int num_edges,
                                    double beta, Rng& rng, int max_degree) {
  AffinityGraph graph(num_vertices);
  if (num_vertices < 2) return graph;
  if (max_degree <= 0) max_degree = num_vertices;

  // Target total affinity per rank: T_r = (r+1)^-beta (Assumption 4.1).
  std::vector<double> target(num_vertices);
  for (int v = 0; v < num_vertices; ++v) {
    // Zipf-with-offset: softens the single-hub head so the rank plot stays
    // a clean power law (real clusters have a handful of comparable hubs).
    target[v] = std::pow(v + 2.0, -beta);
  }

  // Phase 1: topology. One endpoint sampled with a head-heavy Zipf, the
  // other with a flatter one so hubs reach into the tail. Duplicate pairs
  // retry against a uniform partner, so the loop always progresses.
  auto make_sampler = [&](double exponent) {
    std::vector<double> cumulative(num_vertices);
    double acc = 0.0;
    for (int v = 0; v < num_vertices; ++v) {
      acc += 1.0 / std::pow(v + 1.0, exponent);
      cumulative[v] = acc;
    }
    return std::make_pair(std::move(cumulative), acc);
  };
  auto [cum_head, total_head] = make_sampler(0.85);
  auto [cum_tail, total_tail] = make_sampler(0.35);
  auto sample = [&](const std::vector<double>& cum, double total) {
    const double r = rng.NextDouble() * total;
    return static_cast<int>(
        std::lower_bound(cum.begin(), cum.end(), r) - cum.begin());
  };

  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(num_edges);
  std::vector<std::vector<int>> adjacency(num_vertices);
  auto has_pair = [&](int u, int v) {
    for (int nbr : adjacency[u]) {
      if (nbr == v) return true;
    }
    return false;
  };
  int attempts = 0;
  const int max_attempts = 20 * num_edges + 100;
  auto rejected = [&](int u, int v) {
    return u == v || has_pair(u, v) ||
           static_cast<int>(adjacency[u].size()) >= max_degree ||
           static_cast<int>(adjacency[v].size()) >= max_degree;
  };
  while (static_cast<int>(pairs.size()) < num_edges &&
         attempts++ < max_attempts) {
    int u = sample(cum_head, total_head);
    int v = sample(cum_tail, total_tail);
    if (rejected(u, v)) {
      u = static_cast<int>(rng.NextUint64(num_vertices));
      v = static_cast<int>(rng.NextUint64(num_vertices));
      if (rejected(u, v)) continue;
    }
    pairs.push_back({u, v});
    adjacency[u].push_back(v);
    adjacency[v].push_back(u);
  }

  // Phase 2: weights w_uv = x_u * x_v fitted with Sinkhorn-style scaling so
  // every vertex's weighted degree matches its target; the rank-ordered
  // totals then follow the requested power law by construction.
  std::vector<double> x(num_vertices, 0.0);
  for (int v = 0; v < num_vertices; ++v) {
    if (!adjacency[v].empty()) {
      x[v] = std::sqrt(target[v] / adjacency[v].size());
    }
  }
  for (int iter = 0; iter < 60; ++iter) {
    for (int v = 0; v < num_vertices; ++v) {
      if (adjacency[v].empty()) continue;
      double denom = 0.0;
      for (int nbr : adjacency[v]) denom += x[nbr];
      if (denom > 1e-12) x[v] = target[v] / denom;
    }
  }
  for (const auto& [u, v] : pairs) {
    const double weight = x[u] * x[v] * (0.85 + 0.3 * rng.NextDouble());
    if (weight > 0.0) graph.AddEdge(u, v, weight);
  }
  return graph;
}

}  // namespace rasa
