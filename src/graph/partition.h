#ifndef RASA_GRAPH_PARTITION_H_
#define RASA_GRAPH_PARTITION_H_

#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "graph/affinity_graph.h"

namespace rasa {

/// A partition of graph vertices into disjoint parts.
struct Partition {
  /// part_of[v] in [0, num_parts).
  std::vector<int> part_of;
  int num_parts = 0;

  /// Sizes of each part.
  std::vector<int> PartSizes() const;
  /// max(part size) / min(nonempty part size); 1.0 when perfectly even.
  double BalanceRatio() const;
  /// Vertex lists per part.
  std::vector<std::vector<int>> Groups() const;
};

/// Multi-source BFS partition from the given seed vertices: every vertex
/// joins the part of the seed that reaches it first (paper §IV-B4 steps
/// ii-iii). Vertices unreachable from any seed are assigned round-robin.
Partition MultiSourceBfsPartition(const AffinityGraph& graph,
                                  const std::vector<int>& seeds);

/// The paper's loss-minimization balanced partitioning heuristic
/// (§IV-B4): run `trials` rounds (the paper uses |E|); each round samples
/// `h` seed services and grows parts by BFS; keep rounds whose largest part
/// is at most `balance_factor` times the smallest; return the kept round
/// with minimum cut weight. Falls back to the best-balanced round if no
/// round satisfies the balance condition.
Partition LossMinBalancedPartition(const AffinityGraph& graph, int h,
                                   int trials, Rng& rng,
                                   double balance_factor = 2.0);

/// Uniformly random balanced partition into k parts (the RANDOM-PARTITION
/// baseline of §V-B).
Partition RandomPartition(const AffinityGraph& graph, int k, Rng& rng);

/// Stand-in for KaHIP (§V-B): greedy region growing from spread-out seeds
/// followed by Kernighan-Lin style boundary refinement minimizing cut weight
/// under a balance constraint.
Partition KahipLikePartition(const AffinityGraph& graph, int k, Rng& rng,
                             double max_imbalance = 1.1,
                             int refinement_passes = 6);

/// One pass of Kernighan-Lin boundary refinement on an existing partition:
/// greedily moves boundary vertices to the neighboring part with maximum
/// cut-weight gain while respecting part-size ceilings. Returns the total
/// gain achieved. `scratch` (optional) backs the per-pass link scratch so
/// repeated sweeps — LossMinBalancedPartition runs trials x passes of them
/// — recycle one allocation instead of hitting the heap per pass.
double RefinePartitionKl(const AffinityGraph& graph, Partition& partition,
                         const std::vector<int>& max_part_size,
                         Arena* scratch = nullptr);

}  // namespace rasa

#endif  // RASA_GRAPH_PARTITION_H_
