#include "graph/partition.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/logging.h"

namespace rasa {

std::vector<int> Partition::PartSizes() const {
  std::vector<int> sizes(num_parts, 0);
  for (int p : part_of) {
    if (p >= 0 && p < num_parts) ++sizes[p];
  }
  return sizes;
}

double Partition::BalanceRatio() const {
  const std::vector<int> sizes = PartSizes();
  int max_size = 0;
  int min_size = std::numeric_limits<int>::max();
  for (int s : sizes) {
    if (s == 0) continue;
    max_size = std::max(max_size, s);
    min_size = std::min(min_size, s);
  }
  if (max_size == 0) return 1.0;
  return static_cast<double>(max_size) / min_size;
}

std::vector<std::vector<int>> Partition::Groups() const {
  std::vector<std::vector<int>> groups(num_parts);
  for (size_t v = 0; v < part_of.size(); ++v) {
    const int p = part_of[v];
    if (p >= 0 && p < num_parts) groups[p].push_back(static_cast<int>(v));
  }
  return groups;
}

Partition MultiSourceBfsPartition(const AffinityGraph& graph,
                                  const std::vector<int>& seeds) {
  Partition result;
  result.num_parts = static_cast<int>(seeds.size());
  result.part_of.assign(graph.num_vertices(), -1);
  std::deque<int> queue;
  for (size_t i = 0; i < seeds.size(); ++i) {
    result.part_of[seeds[i]] = static_cast<int>(i);
    queue.push_back(seeds[i]);
  }
  // Level-synchronous multi-source BFS: a vertex joins the part of whichever
  // seed's frontier reaches it first (FIFO order resolves ties).
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    for (const auto& [nbr, w] : graph.Neighbors(v)) {
      (void)w;
      if (result.part_of[nbr] < 0) {
        result.part_of[nbr] = result.part_of[v];
        queue.push_back(nbr);
      }
    }
  }
  // Isolated / unreachable vertices: spread them evenly.
  int next = 0;
  for (int v = 0; v < graph.num_vertices(); ++v) {
    if (result.part_of[v] < 0) {
      result.part_of[v] = next;
      next = (next + 1) % std::max(1, result.num_parts);
    }
  }
  return result;
}

Partition LossMinBalancedPartition(const AffinityGraph& graph, int h,
                                   int trials, Rng& rng,
                                   double balance_factor) {
  const int n = graph.num_vertices();
  Partition best;
  bool best_balanced = false;
  double best_cut = std::numeric_limits<double>::infinity();
  double best_balance = std::numeric_limits<double>::infinity();

  if (n == 0 || h <= 0) {
    best.num_parts = 0;
    return best;
  }
  h = std::min(h, n);
  trials = std::max(trials, 1);

  // Size ceiling used by the post-BFS refinement pass: the balance
  // condition allows the largest part up to balance_factor times the ideal.
  const int ceiling = std::max(
      1, static_cast<int>(balance_factor * (n + h - 1) / h) + 1);
  const std::vector<int> ceilings(h, ceiling);

  Arena scratch;
  for (int t = 0; t < trials; ++t) {
    scratch.Reset();
    const std::vector<int> seeds = rng.SampleWithoutReplacement(n, h);
    Partition candidate = MultiSourceBfsPartition(graph, seeds);
    // Loss-minimization: a few Kernighan-Lin sweeps pull boundary services
    // back toward their heaviest neighborhood without breaking balance.
    for (int pass = 0; pass < 3; ++pass) {
      if (RefinePartitionKl(graph, candidate, ceilings, &scratch) <= 0.0) {
        break;
      }
    }
    const double balance = candidate.BalanceRatio();
    const double cut = graph.CutWeight(candidate.part_of);
    const bool balanced = balance <= balance_factor;
    // Prefer balanced candidates by cut weight; among unbalanced ones (used
    // only as a fallback) prefer the most balanced.
    if (balanced) {
      if (!best_balanced || cut < best_cut) {
        best = std::move(candidate);
        best_cut = cut;
        best_balanced = true;
      }
    } else if (!best_balanced) {
      if (balance < best_balance) {
        best = std::move(candidate);
        best_balance = balance;
      }
    }
  }
  return best;
}

Partition RandomPartition(const AffinityGraph& graph, int k, Rng& rng) {
  Partition result;
  result.num_parts = std::max(1, k);
  const int n = graph.num_vertices();
  // Balanced by construction: shuffle vertices, deal them round-robin.
  std::vector<int> order(n);
  for (int v = 0; v < n; ++v) order[v] = v;
  rng.Shuffle(order);
  result.part_of.assign(n, 0);
  for (int i = 0; i < n; ++i) {
    result.part_of[order[i]] = i % result.num_parts;
  }
  return result;
}

double RefinePartitionKl(const AffinityGraph& graph, Partition& partition,
                         const std::vector<int>& max_part_size,
                         Arena* scratch) {
  const int n = graph.num_vertices();
  const int k = partition.num_parts;
  std::vector<int> sizes = partition.PartSizes();
  double total_gain = 0.0;

  // Link scratch hoisted out of the vertex loop: entries are zeroed via the
  // touched list after each vertex instead of reallocating k doubles per
  // vertex. An arena-backed pass recycles the buffers across sweeps.
  Arena local;
  Arena& arena = scratch != nullptr ? *scratch : local;
  ArenaVector<double> link(static_cast<size_t>(k), 0.0,
                           ArenaAllocator<double>(&arena));
  ArenaVector<int> touched{ArenaAllocator<int>(&arena)};
  touched.reserve(static_cast<size_t>(k));

  // Greedy single-vertex moves to the best neighboring part; one sweep.
  for (int v = 0; v < n; ++v) {
    const int from = partition.part_of[v];
    if (sizes[from] <= 1) continue;  // never empty a part
    // Weight of v's edges into each adjacent part.
    for (const auto& [nbr, w] : graph.Neighbors(v)) {
      const int p = partition.part_of[nbr];
      if (link[p] == 0.0) touched.push_back(p);
      link[p] += w;
    }
    int best_part = from;
    double best_gain = 1e-12;  // strictly positive gains only
    for (int p = 0; p < k; ++p) {
      if (p == from || link[p] == 0.0) continue;
      if (sizes[p] + 1 > max_part_size[p]) continue;
      const double gain = link[p] - link[from];
      if (gain > best_gain) {
        best_gain = gain;
        best_part = p;
      }
    }
    for (int p : touched) link[p] = 0.0;
    touched.clear();
    if (best_part != from) {
      partition.part_of[v] = best_part;
      --sizes[from];
      ++sizes[best_part];
      total_gain += best_gain;
    }
  }
  return total_gain;
}

Partition KahipLikePartition(const AffinityGraph& graph, int k, Rng& rng,
                             double max_imbalance, int refinement_passes) {
  const int n = graph.num_vertices();
  Partition partition;
  partition.num_parts = std::max(1, k);
  partition.part_of.assign(n, -1);
  if (n == 0) return partition;
  k = partition.num_parts;

  const int ceiling = std::max(
      1, static_cast<int>(max_imbalance * (n + k - 1) / k) + 1);

  // Seed selection: heaviest vertex first, then repeatedly the vertex
  // farthest (by hops) from all chosen seeds — a KaHIP-style spread.
  std::vector<int> seeds;
  {
    int heaviest = 0;
    double heaviest_w = -1.0;
    for (int v = 0; v < n; ++v) {
      const double w = graph.TotalAffinityOf(v);
      if (w > heaviest_w) {
        heaviest_w = w;
        heaviest = v;
      }
    }
    seeds.push_back(heaviest);
    std::vector<int> dist(n);
    while (static_cast<int>(seeds.size()) < std::min(k, n)) {
      std::fill(dist.begin(), dist.end(), -1);
      std::deque<int> queue;
      for (int s : seeds) {
        dist[s] = 0;
        queue.push_back(s);
      }
      while (!queue.empty()) {
        const int v = queue.front();
        queue.pop_front();
        for (const auto& [nbr, w] : graph.Neighbors(v)) {
          (void)w;
          if (dist[nbr] < 0) {
            dist[nbr] = dist[v] + 1;
            queue.push_back(nbr);
          }
        }
      }
      int farthest = -1;
      int farthest_d = -1;
      for (int v = 0; v < n; ++v) {
        const int d = dist[v] < 0 ? n + 1 : dist[v];  // unreachable = far
        if (d > farthest_d) {
          farthest_d = d;
          farthest = v;
        }
      }
      if (farthest < 0 || farthest_d == 0) {
        farthest = static_cast<int>(rng.NextUint64(n));
      }
      seeds.push_back(farthest);
    }
  }

  // Greedy growth: repeatedly expand the currently smallest part along its
  // heaviest boundary edge.
  std::vector<int> sizes(k, 0);
  for (size_t i = 0; i < seeds.size(); ++i) {
    partition.part_of[seeds[i]] = static_cast<int>(i);
    ++sizes[i];
  }
  int assigned = static_cast<int>(seeds.size());
  while (assigned < n) {
    // Pick the smallest part that still has boundary candidates.
    int grew = -1;
    std::vector<int> order(k);
    for (int p = 0; p < k; ++p) order[p] = p;
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return sizes[a] < sizes[b]; });
    for (int p : order) {
      if (sizes[p] >= ceiling) continue;
      // Best unassigned vertex adjacent to part p.
      int best_v = -1;
      double best_w = -1.0;
      for (int v = 0; v < n; ++v) {
        if (partition.part_of[v] >= 0) continue;
        double w_to_p = 0.0;
        for (const auto& [nbr, w] : graph.Neighbors(v)) {
          if (partition.part_of[nbr] == p) w_to_p += w;
        }
        if (w_to_p > best_w) {
          best_w = w_to_p;
          best_v = v;
        }
      }
      if (best_v >= 0 && best_w > 0.0) {
        partition.part_of[best_v] = p;
        ++sizes[p];
        ++assigned;
        grew = p;
        break;
      }
    }
    if (grew < 0) {
      // No part can grow along an edge; place remaining vertices into the
      // smallest parts.
      for (int v = 0; v < n; ++v) {
        if (partition.part_of[v] >= 0) continue;
        int smallest = 0;
        for (int p = 1; p < k; ++p) {
          if (sizes[p] < sizes[smallest]) smallest = p;
        }
        partition.part_of[v] = smallest;
        ++sizes[smallest];
        ++assigned;
      }
    }
  }

  std::vector<int> ceilings(k, ceiling);
  Arena scratch;
  for (int pass = 0; pass < refinement_passes; ++pass) {
    scratch.Reset();
    if (RefinePartitionKl(graph, partition, ceilings, &scratch) <= 0.0) break;
  }
  return partition;
}

}  // namespace rasa
