#ifndef RASA_GRAPH_AFFINITY_GRAPH_H_
#define RASA_GRAPH_AFFINITY_GRAPH_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace rasa {

/// One weighted undirected edge of an affinity graph.
struct AffinityEdge {
  int u = 0;
  int v = 0;
  double weight = 0.0;
};

/// Weighted undirected graph over services (paper §II-B). Vertices are dense
/// ids [0, num_vertices). Parallel edges are merged by accumulating weight;
/// self-loops are rejected (a service has no affinity with itself).
class AffinityGraph {
 public:
  AffinityGraph() = default;
  explicit AffinityGraph(int num_vertices) : adjacency_(num_vertices) {}

  int num_vertices() const { return static_cast<int>(adjacency_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Adds (or accumulates onto) edge {u, v}. Weight must be positive.
  Status AddEdge(int u, int v, double weight);

  const std::vector<AffinityEdge>& edges() const { return edges_; }

  /// Neighbors of `v` as (neighbor, weight) pairs.
  const std::vector<std::pair<int, double>>& Neighbors(int v) const {
    return adjacency_[v];
  }

  int Degree(int v) const { return static_cast<int>(adjacency_[v].size()); }

  /// Weight of edge {u, v}, or 0 if absent.
  double EdgeWeight(int u, int v) const;

  /// T(s): sum of incident edge weights (paper §IV-B2).
  double TotalAffinityOf(int v) const;

  /// Sum of all edge weights.
  double TotalWeight() const;

  /// Divides all weights so TotalWeight() == 1 (paper normalizes total
  /// affinity to 1.0). No-op on an empty graph.
  void NormalizeWeights();

  /// Subgraph induced by `vertices`; `vertices[i]` becomes new id i.
  AffinityGraph InducedSubgraph(const std::vector<int>& vertices) const;

  /// Connected component id per vertex (ids are dense, 0-based) and count.
  std::vector<int> ConnectedComponents(int* num_components = nullptr) const;

  /// Total weight of edges whose endpoints are in different parts.
  double CutWeight(const std::vector<int>& part_of_vertex) const;

 private:
  std::vector<AffinityEdge> edges_;
  std::vector<std::vector<std::pair<int, double>>> adjacency_;
};

/// Generates a graph with power-law total-affinity skew (Assumption 4.1):
/// vertex s gets total affinity ~ 1/(s+1)^beta (weights fitted by Sinkhorn
/// scaling); edges attach preferentially to low-index (heavy) vertices.
/// `max_degree` > 0 caps each vertex's neighbor count — real microservice
/// call graphs have bounded fan-out even for the hottest services.
AffinityGraph GeneratePowerLawGraph(int num_vertices, int num_edges,
                                    double beta, Rng& rng,
                                    int max_degree = 0);

}  // namespace rasa

#endif  // RASA_GRAPH_AFFINITY_GRAPH_H_
