#ifndef RASA_GRAPH_AFFINITY_GRAPH_H_
#define RASA_GRAPH_AFFINITY_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace rasa {

/// One weighted undirected edge of an affinity graph.
struct AffinityEdge {
  int u = 0;
  int v = 0;
  double weight = 0.0;
};

/// Weighted undirected graph over services (paper §II-B). Vertices are dense
/// ids [0, num_vertices). Parallel edges are merged by accumulating weight;
/// self-loops are rejected (a service has no affinity with itself).
///
/// Reads go through the span-based view API (`Neighbors`, `edges`); there is
/// no random-access weight lookup in the public interface. Two storage
/// backends live behind the same API: small graphs keep per-vertex adjacency
/// vectors (mutation-friendly, updated on every AddEdge), large graphs use a
/// CSR index over the edge list rebuilt lazily on first read after a
/// mutation. Neighbor order is the edge first-insertion order in both
/// backends, so iteration — and everything derived from it — is
/// bit-identical regardless of which backend serves a graph.
class AffinityGraph {
 public:
  using NeighborEntry = std::pair<int, double>;

  /// Read-only view of one vertex's (neighbor, weight) list. Points into
  /// the graph's backing storage: valid until the next mutating call.
  class NeighborSpan {
   public:
    NeighborSpan() = default;
    NeighborSpan(const NeighborEntry* data, size_t size)
        : data_(data), size_(size) {}

    const NeighborEntry* begin() const { return data_; }
    const NeighborEntry* end() const { return data_ + size_; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const NeighborEntry& operator[](size_t i) const { return data_[i]; }

   private:
    const NeighborEntry* data_ = nullptr;
    size_t size_ = 0;
  };

  AffinityGraph() = default;
  explicit AffinityGraph(int num_vertices);

  int num_vertices() const { return num_vertices_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Adds (or accumulates onto) edge {u, v}. Weight must be positive.
  /// O(1) amortized via the edge hash index (duplicate edges no longer
  /// rescan the edge list, which made bulk loading quadratic).
  Status AddEdge(int u, int v, double weight);

  /// All edges in first-insertion order (duplicates merged in place).
  const std::vector<AffinityEdge>& edges() const { return edges_; }

  /// Neighbors of `v` as a contiguous (neighbor, weight) span, in edge
  /// first-insertion order.
  NeighborSpan Neighbors(int v) const;

  int Degree(int v) const;

  /// T(s): sum of incident edge weights (paper §IV-B2).
  double TotalAffinityOf(int v) const;

  /// Sum of all edge weights.
  double TotalWeight() const;

  /// Divides all weights so TotalWeight() == 1 (paper normalizes total
  /// affinity to 1.0). No-op on an empty graph.
  void NormalizeWeights();

  /// Subgraph induced by `vertices`; `vertices[i]` becomes new id i.
  AffinityGraph InducedSubgraph(const std::vector<int>& vertices) const;

  /// Connected component id per vertex (ids are dense, 0-based) and count.
  std::vector<int> ConnectedComponents(int* num_components = nullptr) const;

  /// Total weight of edges whose endpoints are in different parts.
  double CutWeight(const std::vector<int>& part_of_vertex) const;

  /// Builds the read-side index now (idempotent). Reads finalize lazily,
  /// which is fine single-threaded; call this once before sharing a graph
  /// across threads so concurrent readers never race on the rebuild
  /// (Cluster's constructor does).
  void Finalize() const { EnsureReadable(); }

 private:
  /// Vertex-count ceiling of the adjacency-vector backend. Mirrors
  /// LpOptions::dense_size_cutoff: below it per-vertex vectors are cheap
  /// and mutation-friendly; above it one CSR block avoids the per-vertex
  /// allocations and O(n) vector headers.
  static constexpr int kDenseBackendMaxVertices = 64;

  bool dense_backend() const {
    return num_vertices_ <= kDenseBackendMaxVertices;
  }
  static uint64_t EdgeKey(int u, int v) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
           static_cast<uint32_t>(v);
  }
  /// Rebuilds the CSR index from `edges_` if a mutation invalidated it.
  void EnsureReadable() const;

  int num_vertices_ = 0;
  std::vector<AffinityEdge> edges_;
  /// {min(u,v), max(u,v)} -> index into edges_, for O(1) duplicate merge.
  std::unordered_map<uint64_t, int> edge_index_;

  // Dense backend: per-vertex neighbor vectors, maintained on AddEdge.
  std::vector<std::vector<NeighborEntry>> adjacency_;

  // CSR backend: one offsets array + one entries block, rebuilt lazily.
  // A stable counting pass over edges_ reproduces the insertion order the
  // dense backend gets from push_back, so both backends iterate alike.
  mutable std::vector<int> csr_offsets_;
  mutable std::vector<NeighborEntry> csr_entries_;
  mutable bool csr_valid_ = false;
};

/// Generates a graph with power-law total-affinity skew (Assumption 4.1):
/// vertex s gets total affinity ~ 1/(s+1)^beta (weights fitted by Sinkhorn
/// scaling); edges attach preferentially to low-index (heavy) vertices.
/// `max_degree` > 0 caps each vertex's neighbor count — real microservice
/// call graphs have bounded fan-out even for the hottest services.
AffinityGraph GeneratePowerLawGraph(int num_vertices, int num_edges,
                                    double beta, Rng& rng,
                                    int max_degree = 0);

}  // namespace rasa

#endif  // RASA_GRAPH_AFFINITY_GRAPH_H_
