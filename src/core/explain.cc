#include "core/explain.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "common/strings.h"
#include "core/objective.h"

namespace rasa {
namespace {

// Containers of `service` that sit on different machines in `after` than in
// `before` (each moved container counted once: sum of positive gains).
int MovedContainersOf(const Placement& before, const Placement& after,
                      int service) {
  int moved = 0;
  for (const auto& [machine, count] : after.MachinesOf(service)) {
    const int delta = count - before.CountOn(machine, service);
    if (delta > 0) moved += delta;
  }
  return moved;
}

void AppendAttemptJson(JsonWriter& w, const SolveAttempt& attempt,
                       bool include_timings) {
  w.BeginObject();
  w.Key("algorithm").Value(PoolAlgorithmToString(attempt.algorithm));
  w.Key("outcome").Value(AttemptOutcomeToString(attempt.outcome));
  if (include_timings) w.Key("seconds").Value(attempt.seconds);
  if (attempt.has_cg) {
    w.Key("cg").BeginObject();
    w.Key("rounds").Value(attempt.cg.rounds);
    w.Key("patterns_generated").Value(attempt.cg.patterns_generated);
    w.Key("master_solves").Value(attempt.cg.master_solves);
    w.Key("hit_deadline").Value(attempt.cg.hit_deadline);
    w.Key("lp_iterations").Value(attempt.cg.lp_iterations);
    w.Key("lp_phase1_iterations").Value(attempt.cg.lp_phase1_iterations);
    w.Key("master_warm_started").Value(attempt.cg.master_warm_started);
    w.Key("refactorizations").Value(attempt.cg.refactorizations);
    w.Key("max_eta_length").Value(attempt.cg.max_eta_length);
    w.Key("has_lp_bound").Value(attempt.cg.has_lp_bound);
    if (attempt.cg.has_lp_bound) {
      w.Key("lp_objective").Value(attempt.cg.lp_objective);
    }
    w.EndObject();
  }
  if (attempt.has_mip) {
    w.Key("mip").BeginObject();
    w.Key("solved").Value(attempt.mip.solved);
    w.Key("status").Value(MipStatusToString(attempt.mip.status));
    w.Key("objective").Value(attempt.mip.objective);
    w.Key("best_bound").Value(attempt.mip.best_bound);
    w.Key("bound_proven").Value(attempt.mip.bound_proven);
    w.Key("relative_gap").Value(attempt.mip.relative_gap);
    w.Key("nodes").Value(attempt.mip.nodes);
    w.Key("lp_iterations").Value(attempt.mip.lp_iterations);
    w.Key("warm_started_nodes").Value(attempt.mip.warm_started_nodes);
    w.Key("max_node_pivots").Value(attempt.mip.max_node_pivots);
    w.Key("refactorizations").Value(attempt.mip.refactorizations);
    w.Key("max_eta_length").Value(attempt.mip.max_eta_length);
    if (attempt.mip.has_root_lp) {
      w.Key("root_lp_objective").Value(attempt.mip.root_lp_objective);
    }
    w.EndObject();
  }
  w.EndObject();
}

void AppendRecordJson(JsonWriter& w, const LedgerRecord& r,
                      bool include_timings) {
  w.BeginObject();
  w.Key("subproblem").Value(r.subproblem);
  w.Key("position").Value(r.position);
  w.Key("num_services").Value(r.num_services);
  w.Key("num_machines").Value(r.num_machines);
  w.Key("internal_affinity").Value(r.internal_affinity);
  w.Key("selector_policy").Value(SelectorPolicyToString(r.selector_policy));
  w.Key("selected").Value(PoolAlgorithmToString(r.selected));
  w.Key("ladder_rung").Value(r.ladder_rung);
  w.Key("used_secondary").Value(r.used_secondary);
  w.Key("fell_to_greedy").Value(r.fell_to_greedy);
  w.Key("reused").Value(r.reused);
  if (include_timings) {
    w.Key("budget_seconds").Value(r.budget_seconds);
    w.Key("seconds").Value(r.seconds);
  }
  w.Key("realized_affinity").Value(r.realized_affinity);
  w.Key("unplaced_containers").Value(r.unplaced_containers);
  w.Key("certificate_bound").Value(r.certificate_bound);
  w.Key("bound_tightened").Value(r.bound_tightened);
  w.Key("primary");
  AppendAttemptJson(w, r.primary, include_timings);
  if (r.secondary.outcome != AttemptOutcome::kNotRun) {
    w.Key("secondary");
    AppendAttemptJson(w, r.secondary, include_timings);
  }
  w.EndObject();
}

std::string FormatAttemptBrief(const SolveAttempt& a) {
  std::string out = StrFormat("%s %s", PoolAlgorithmToString(a.algorithm),
                              AttemptOutcomeToString(a.outcome));
  if (a.has_cg) {
    out += StrFormat(" (rounds=%d patterns=%d lp_it=%d", a.cg.rounds,
                     a.cg.patterns_generated, a.cg.lp_iterations);
    if (a.cg.master_warm_started > 0) {
      out += StrFormat(" warm=%d/%d", a.cg.master_warm_started,
                       a.cg.master_solves);
    }
    if (a.cg.has_lp_bound) out += StrFormat(" lp_bound=%.6f", a.cg.lp_objective);
    out += ")";
  }
  if (a.has_mip) {
    out += StrFormat(" (%s nodes=%d gap=%.2g%s", MipStatusToString(a.mip.status),
                     a.mip.nodes, a.mip.relative_gap,
                     a.mip.bound_proven ? " proven" : "");
    if (a.mip.warm_started_nodes > 0) {
      out += StrFormat(" warm=%d/%d", a.mip.warm_started_nodes, a.mip.nodes);
    }
    out += ")";
  }
  return out;
}

}  // namespace

double QualityCertificate::Gap() const {
  const double reference = std::max(bound_final, 1e-12);
  return std::max(0.0, bound_final - achieved_final) / reference;
}

double QualityCertificate::Ratio() const {
  if (bound_final <= 1e-12) return 1.0;
  return std::min(1.0, achieved_final / bound_final);
}

PlacementDiffAudit BuildPlacementDiff(const Cluster& cluster,
                                      const Placement& before,
                                      const Placement& after, int top_k) {
  PlacementDiffAudit audit;
  audit.moved_containers = after.DiffCount(before);

  std::vector<PlacementDiffAudit::ServiceMove> moves;
  for (int s = 0; s < cluster.num_services(); ++s) {
    const int moved = MovedContainersOf(before, after, s);
    if (moved == 0) continue;
    moves.push_back({s, cluster.service(s).name, moved});
  }
  std::sort(moves.begin(), moves.end(), [](const auto& a, const auto& b) {
    return a.moved_containers != b.moved_containers
               ? a.moved_containers > b.moved_containers
               : a.service < b.service;
  });
  if (static_cast<int>(moves.size()) > top_k) moves.resize(top_k);
  audit.top_moved = std::move(moves);

  std::vector<PlacementDiffAudit::PairLocalization> pairs;
  const std::vector<AffinityEdge>& edges = cluster.affinity().edges();
  for (size_t e = 0; e < edges.size(); ++e) {
    const AffinityEdge& edge = edges[e];
    PlacementDiffAudit::PairLocalization p;
    p.u = edge.u;
    p.v = edge.v;
    p.weight = edge.weight;
    p.ratio_before = PairLocalizationRatio(cluster, before, edge.u, edge.v);
    p.ratio_after = PairLocalizationRatio(cluster, after, edge.u, edge.v);
    p.delta_affinity = edge.weight * (p.ratio_after - p.ratio_before);
    if (std::abs(p.delta_affinity) <= 1e-12) continue;
    p.name_u = cluster.service(edge.u).name;
    p.name_v = cluster.service(edge.v).name;
    pairs.push_back(std::move(p));
  }
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    if (a.delta_affinity != b.delta_affinity) {
      return a.delta_affinity > b.delta_affinity;
    }
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  if (static_cast<int>(pairs.size()) > top_k) pairs.resize(top_k);
  audit.top_localized = std::move(pairs);
  return audit;
}

void AppendExplainJson(JsonWriter& w, const ExplainReport& report,
                       bool include_timings) {
  w.BeginObject();
  w.Key("populated").Value(report.populated);

  w.Key("certificate").BeginObject();
  {
    const QualityCertificate& c = report.certificate;
    w.Key("achieved_solver_phase").Value(c.achieved_solver_phase);
    w.Key("achieved_final").Value(c.achieved_final);
    w.Key("external_affinity").Value(c.external_affinity);
    w.Key("sum_internal_affinity").Value(c.sum_internal_affinity);
    w.Key("bound_solver_phase").Value(c.bound_solver_phase);
    w.Key("local_search_credit").Value(c.local_search_credit);
    w.Key("bound_final").Value(c.bound_final);
    w.Key("gap").Value(c.Gap());
    w.Key("ratio").Value(c.Ratio());
    w.Key("tightened_terms").Value(c.tightened_terms);
    w.Key("terms").BeginArray();
    for (const CertificateTerm& t : c.terms) {
      w.BeginObject();
      w.Key("subproblem").Value(t.subproblem);
      w.Key("internal_affinity").Value(t.internal_affinity);
      w.Key("bound").Value(t.bound);
      w.Key("tightened").Value(t.tightened);
      w.Key("source").Value(t.source);
      w.Key("realized").Value(t.realized);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();

  w.Key("waterfall").BeginObject();
  {
    const AttributionWaterfall& wf = report.waterfall;
    w.Key("base_retained").Value(wf.base_retained);
    w.Key("solver_gain").Value(wf.solver_gain);
    w.Key("fallback_delta").Value(wf.fallback_delta);
    w.Key("local_search_delta").Value(wf.local_search_delta);
    w.Key("total").Value(wf.total);
    w.Key("partition_cut_affinity").Value(wf.partition_cut_affinity);
    w.Key("original_gained_affinity").Value(wf.original_gained_affinity);
  }
  w.EndObject();

  w.Key("diff").BeginObject();
  {
    const PlacementDiffAudit& d = report.diff;
    w.Key("moved_containers").Value(d.moved_containers);
    w.Key("top_moved").BeginArray();
    for (const auto& m : d.top_moved) {
      w.BeginObject();
      w.Key("service").Value(m.service);
      w.Key("name").Value(m.name);
      w.Key("moved_containers").Value(m.moved_containers);
      w.EndObject();
    }
    w.EndArray();
    w.Key("top_localized").BeginArray();
    for (const auto& p : d.top_localized) {
      w.BeginObject();
      w.Key("u").Value(p.u);
      w.Key("v").Value(p.v);
      w.Key("name_u").Value(p.name_u);
      w.Key("name_v").Value(p.name_v);
      w.Key("weight").Value(p.weight);
      w.Key("ratio_before").Value(p.ratio_before);
      w.Key("ratio_after").Value(p.ratio_after);
      w.Key("delta_affinity").Value(p.delta_affinity);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();

  w.Key("local_search").BeginObject();
  w.Key("ran").Value(report.local_search_ran);
  w.Key("moves_applied").Value(report.local_search.moves_applied);
  w.Key("swaps_applied").Value(report.local_search.swaps_applied);
  w.Key("gain").Value(report.local_search.gain);
  w.Key("passes").Value(report.local_search.passes);
  w.EndObject();

  w.Key("records").BeginArray();
  for (const LedgerRecord& r : report.records) {
    AppendRecordJson(w, r, include_timings);
  }
  w.EndArray();

  w.EndObject();
}

std::string FormatExplainReport(const ExplainReport& report) {
  std::string out;
  if (!report.populated) return "explain report: not populated\n";

  const QualityCertificate& c = report.certificate;
  out += "== Quality certificate ==\n";
  out += StrFormat("  achieved (final)        %.6f\n", c.achieved_final);
  out += StrFormat("  provable upper bound    %.6f\n", c.bound_final);
  out += StrFormat("  optimality gap          %.2f%%  (ratio %.4f)\n",
                   100.0 * c.Gap(), c.Ratio());
  out += StrFormat(
      "  bound terms: external %.6f + subproblems %.6f (%d of %d tightened)"
      " + local-search credit %.6f\n",
      c.external_affinity, c.bound_solver_phase - c.external_affinity,
      c.tightened_terms, static_cast<int>(c.terms.size()),
      c.local_search_credit);

  const AttributionWaterfall& wf = report.waterfall;
  out += "== Attribution waterfall ==\n";
  out += StrFormat("  original gained affinity  %.6f\n",
                   wf.original_gained_affinity);
  out += StrFormat("  base retained (trivial)  +%.6f\n", wf.base_retained);
  out += StrFormat("  solver gain              %+.6f\n", wf.solver_gain);
  out += StrFormat("  fallback delta           %+.6f\n", wf.fallback_delta);
  out += StrFormat("  local-search delta       %+.6f\n", wf.local_search_delta);
  out += StrFormat("  = final gained affinity   %.6f\n", wf.total);
  out += StrFormat("  (partition cut affinity   %.6f, not solvable at this"
                   " partition)\n",
                   wf.partition_cut_affinity);

  out += "== Per-subproblem solves ==\n";
  // Filled by hand rather than via Histogram::Observe so the report does
  // not depend on the global metrics switch.
  Histogram::Snapshot hs;
  for (const LedgerRecord& r : report.records) {
    ++hs.buckets[static_cast<size_t>(Histogram::BucketIndex(r.seconds))];
    ++hs.count;
    hs.sum += r.seconds;
    hs.min = std::min(hs.min, r.seconds);
    hs.max = std::max(hs.max, r.seconds);
    out += StrFormat("  #%d (pos %d, %d svc x %d mach, affinity %.6f): ",
                     r.subproblem, r.position, r.num_services, r.num_machines,
                     r.internal_affinity);
    out += StrFormat("%s via %s -> rung %d, realized %.6f, bound %.6f%s\n",
                     PoolAlgorithmToString(r.selected),
                     SelectorPolicyToString(r.selector_policy), r.ladder_rung,
                     r.realized_affinity, r.certificate_bound,
                     r.bound_tightened ? " (tightened)" : "");
    out += "      primary:   " + FormatAttemptBrief(r.primary) + "\n";
    if (r.secondary.outcome != AttemptOutcome::kNotRun) {
      out += "      secondary: " + FormatAttemptBrief(r.secondary) + "\n";
    }
  }
  if (hs.count > 0) {
    out += StrFormat(
        "  solve seconds: p50 %.4f  p95 %.4f  p99 %.4f  max %.4f (n=%llu)\n",
        hs.Quantile(0.5), hs.Quantile(0.95), hs.Quantile(0.99), hs.max,
        static_cast<unsigned long long>(hs.count));
  }

  if (report.local_search_ran) {
    out += StrFormat(
        "== Local search ==\n  moves %d, swaps %d, gain %.6f, passes %d\n",
        report.local_search.moves_applied, report.local_search.swaps_applied,
        report.local_search.gain, report.local_search.passes);
  }

  const PlacementDiffAudit& d = report.diff;
  out += StrFormat("== Placement diff ==\n  moved containers: %d\n",
                   d.moved_containers);
  for (const auto& m : d.top_moved) {
    out += StrFormat("  moved %4d  %s\n", m.moved_containers, m.name.c_str());
  }
  out += "  most localized pairs:\n";
  for (const auto& p : d.top_localized) {
    out += StrFormat("    %s <-> %s: weight %.6f, localized %.3f -> %.3f"
                     " (+%.6f affinity)\n",
                     p.name_u.c_str(), p.name_v.c_str(), p.weight,
                     p.ratio_before, p.ratio_after, p.delta_affinity);
  }
  return out;
}

}  // namespace rasa
