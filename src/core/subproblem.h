#ifndef RASA_CORE_SUBPROBLEM_H_
#define RASA_CORE_SUBPROBLEM_H_

#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"

namespace rasa {

/// One independent scheduling subproblem produced by service partitioning:
/// a crucial service set plus the machines assigned to it. All ids are
/// global cluster ids.
struct Subproblem {
  std::vector<int> services;
  std::vector<int> machines;
  /// Sum of affinity-edge weights internal to `services`.
  double internal_affinity = 0.0;
  /// Affinity edges with both endpoints in `services` (global ids).
  std::vector<AffinityEdge> edges;
};

/// A solved subproblem: container counts per (service, machine).
struct SubproblemSolution {
  struct Assignment {
    int service;
    int machine;
    int count;
  };
  std::vector<Assignment> assignments;
  /// Gained affinity realized inside the subproblem.
  double gained_affinity = 0.0;
  /// Containers of subproblem services the solver could not place (handed
  /// back to the default scheduler, §IV-B5).
  int unplaced_containers = 0;
};

/// Computes `internal_affinity` and `edges` for a subproblem whose
/// `services` are already set.
void PopulateSubproblemEdges(const Cluster& cluster, Subproblem& subproblem);

/// Residual capacity of `machine` for resource `r` given the containers
/// already sitting on it in `base` (trivial services stay put).
double ResidualCapacity(const Cluster& cluster, const Placement& base,
                        int machine, int r);

/// Remaining anti-affinity headroom of rule `rule` on `machine` given `base`.
int ResidualRuleLimit(const Cluster& cluster, const Placement& base,
                      int machine, int rule);

/// Evaluates the gained affinity of a candidate assignment over the
/// subproblem's internal edges only (Definition 1 restricted to the
/// subproblem). `x(service_local, machine_local)` indexes into
/// subproblem.services/machines.
double SubproblemGainedAffinity(const Cluster& cluster,
                                const Subproblem& subproblem,
                                const std::vector<std::vector<int>>& x);

}  // namespace rasa

#endif  // RASA_CORE_SUBPROBLEM_H_
