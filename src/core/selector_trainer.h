#ifndef RASA_CORE_SELECTOR_TRAINER_H_
#define RASA_CORE_SELECTOR_TRAINER_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/selector.h"
#include "ml/feature_graph.h"
#include "ml/gcn.h"

namespace rasa {

/// Options for building the labeled subproblem dataset of §IV-D1. The paper
/// samples 1000 subproblems from four training clusters (T1-T4, distinct
/// from M1-M4) and labels each by racing CG vs MIP under a time limit.
struct SelectorTrainingOptions {
  int num_samples = 160;
  /// Per-algorithm labeling time limit (the paper uses one minute at full
  /// production scale; scaled down with everything else here).
  double label_timeout_seconds = 0.3;
  /// Scale divisor of the four training clusters.
  double cluster_scale = 24.0;
  int epochs = 80;
  double learning_rate = 0.01;
  int hidden_dim = 16;
  uint64_t seed = 1234;
};

/// One labeled subproblem.
struct LabeledSample {
  FeatureGraph graph;
  Matrix mean_features;  // 1 x kSelectorFeatureDim
  int label = 0;         // 0 = CG, 1 = MIP
  double cg_objective = 0.0;
  double mip_objective = 0.0;
};

struct SelectorDataset {
  std::vector<LabeledSample> samples;
  int cg_labels = 0;
  int mip_labels = 0;
};

/// Generates training clusters T1-T4, partitions them with varied
/// subproblem-size targets, and labels each sampled subproblem by running
/// both pool algorithms (label = better objective; tie goes to MIP, whose
/// result is exact when it finishes).
SelectorDataset GenerateSelectorDataset(const SelectorTrainingOptions& options);

struct TrainedSelectors {
  GcnClassifier gcn;
  MlpClassifier mlp;
  double gcn_train_accuracy = 0.0;
  double mlp_train_accuracy = 0.0;
  double heuristic_accuracy = 0.0;
  int dataset_size = 0;
};

/// Trains both learned selectors on `dataset`.
TrainedSelectors TrainSelectors(const SelectorDataset& dataset,
                                const SelectorTrainingOptions& options);

/// Resolves the on-disk prefix for the trained-selector cache files
/// (`<prefix>.gcn` / `<prefix>.mlp`). Resolution order:
///   1. `explicit_prefix` (a `--selector-cache` flag), verbatim;
///   2. the `RASA_SELECTOR_CACHE` environment variable, verbatim;
///   3. `.rasa_cache/rasa_selector_cache` under the current working
///      directory (the directory is created if missing).
/// The default keeps model artifacts out of the repo root even when a
/// binary runs from the source tree: `.rasa_cache/` is gitignored.
std::string ResolveSelectorCachePrefix(const std::string& explicit_prefix = "");

/// Loads a cached GCN from `cache_path` if present; otherwise generates a
/// dataset, trains, saves to the cache, and returns the result. Benches use
/// this so a single training pass is shared across runs.
StatusOr<GcnClassifier> GetOrTrainGcn(const std::string& cache_path,
                                      const SelectorTrainingOptions& options);

/// Like GetOrTrainGcn, but caches both learned selectors (to
/// `<cache_prefix>.gcn` / `<cache_prefix>.mlp`). One labeling pass feeds
/// both models.
StatusOr<TrainedSelectors> GetOrTrainSelectors(
    const std::string& cache_prefix, const SelectorTrainingOptions& options);

}  // namespace rasa

#endif  // RASA_CORE_SELECTOR_TRAINER_H_
