#include "core/mip_algorithm.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "core/greedy.h"
#include "mip/solver.h"

namespace rasa {
namespace {

// Copies the solver introspection a MipResult carries into the ledger
// stats (observation-only).
void FillMipStats(const MipResult& result, SubproblemMipStats* stats) {
  if (stats == nullptr) return;
  stats->solved = true;
  stats->status = result.status;
  stats->objective = result.has_solution() ? result.objective : 0.0;
  stats->best_bound = result.best_bound;
  stats->bound_proven = result.bound_proven && result.has_solution();
  stats->root_lp_objective = result.root_lp_objective;
  stats->has_root_lp = result.has_root_lp;
  stats->relative_gap = result.has_solution() ? result.Gap() : 0.0;
  stats->nodes = result.nodes_explored;
  stats->lp_iterations = result.lp_iterations;
  stats->warm_started_nodes = result.warm_started_nodes;
  stats->max_node_pivots = result.max_node_pivots;
  stats->refactorizations = result.refactorizations;
  stats->max_eta_length = result.max_eta_length;
}

// Solver-quality metrics of one subproblem MIP solve (observation-only).
void RecordMipMetrics(const MipResult& result) {
  MetricRegistry& reg = MetricRegistry::Default();
  static Counter& solves = reg.GetCounter("pool.mip_solves");
  static Histogram& gap = reg.GetHistogram("pool.mip_gap");
  static Histogram& nodes = reg.GetHistogram("pool.mip_nodes");
  static Histogram& iterations = reg.GetHistogram("pool.mip_lp_iterations");
  solves.Increment();
  if (result.has_solution()) gap.Observe(result.Gap());
  nodes.Observe(static_cast<double>(result.nodes_explored));
  iterations.Observe(static_cast<double>(result.lp_iterations));
  // Solver-core (revised simplex) introspection: warm-start hit rate is
  // solver.warm_started_nodes / solver.bnb_nodes on the scrape side.
  static Counter& warm_nodes = reg.GetCounter("solver.warm_started_nodes");
  static Counter& bnb_nodes = reg.GetCounter("solver.bnb_nodes");
  static Counter& refactorizations = reg.GetCounter("solver.refactorizations");
  static Counter& lp_pivots = reg.GetCounter("solver.lp_pivots");
  static Histogram& eta = reg.GetHistogram("solver.max_eta_length");
  static Histogram& node_pivots = reg.GetHistogram("solver.max_node_pivots");
  warm_nodes.Increment(static_cast<uint64_t>(result.warm_started_nodes));
  bnb_nodes.Increment(static_cast<uint64_t>(result.nodes_explored));
  refactorizations.Increment(static_cast<uint64_t>(result.refactorizations));
  lp_pivots.Increment(static_cast<uint64_t>(result.lp_iterations));
  eta.Observe(static_cast<double>(result.max_eta_length));
  node_pivots.Observe(static_cast<double>(result.max_node_pivots));
}

}  // namespace

StatusOr<SubproblemMip> BuildSubproblemMip(const Cluster& cluster,
                                           const Subproblem& subproblem,
                                           const Placement& base,
                                           int max_model_rows) {
  const int S = static_cast<int>(subproblem.services.size());
  const int M = static_cast<int>(subproblem.machines.size());
  const int E = static_cast<int>(subproblem.edges.size());
  const int R = cluster.num_resources();

  // Count anti-affinity rows: rules intersecting the subproblem, per machine.
  std::vector<int> active_rules;
  {
    std::unordered_map<int, int> member;
    for (int i = 0; i < S; ++i) member[subproblem.services[i]] = i;
    std::vector<bool> seen(cluster.anti_affinity().size(), false);
    for (int s : subproblem.services) {
      for (int k : cluster.RulesOfService(s)) {
        if (!seen[k]) {
          seen[k] = true;
          active_rules.push_back(k);
        }
      }
    }
  }

  const long long rows = static_cast<long long>(S) + 1LL * R * M +
                         1LL * static_cast<long long>(active_rules.size()) * M +
                         2LL * E * M;
  if (rows > max_model_rows) {
    return ResourceExhaustedError(StrFormat(
        "subproblem MIP needs %lld rows > cap %d (S=%d M=%d E=%d)", rows,
        max_model_rows, S, M, E));
  }

  SubproblemMip out;
  LpModel& model = out.model;
  model.SetObjectiveSense(ObjectiveSense::kMaximize);

  std::vector<int> local_of(cluster.num_services(), -1);
  for (int i = 0; i < S; ++i) local_of[subproblem.services[i]] = i;

  // x variables: integer container counts, schedulability via upper bounds.
  out.x_index.assign(S, std::vector<int>(M, -1));
  for (int i = 0; i < S; ++i) {
    const int s = subproblem.services[i];
    for (int j = 0; j < M; ++j) {
      const int m = subproblem.machines[j];
      const int ub = cluster.CanHost(m, s) ? cluster.service(s).demand : 0;
      const int var = model.AddVariable(0.0, ub, 0.0,
                                        StrFormat("x_s%d_m%d", s, m));
      model.SetInteger(var);
      out.x_index[i][j] = var;
    }
  }

  // a variables + objective + min-linearization rows (7)-(8).
  for (int e = 0; e < E; ++e) {
    const AffinityEdge& edge = subproblem.edges[e];
    const int iu = local_of[edge.u];
    const int iv = local_of[edge.v];
    const double du = cluster.service(edge.u).demand;
    const double dv = cluster.service(edge.v).demand;
    if (du <= 0 || dv <= 0) continue;
    for (int j = 0; j < M; ++j) {
      const int a = model.AddVariable(0.0, edge.weight, 1.0,
                                      StrFormat("a_e%d_m%d", e, j));
      model.AddConstraint(ConstraintType::kLessEqual, 0.0,
                          {{a, 1.0}, {out.x_index[iu][j], -edge.weight / du}});
      model.AddConstraint(ConstraintType::kLessEqual, 0.0,
                          {{a, 1.0}, {out.x_index[iv][j], -edge.weight / dv}});
    }
  }

  // SLA rows (3), relaxed to <= (under-deployment goes back to the default
  // scheduler).
  for (int i = 0; i < S; ++i) {
    std::vector<LinearTerm> terms;
    for (int j = 0; j < M; ++j) terms.push_back({out.x_index[i][j], 1.0});
    model.AddConstraint(ConstraintType::kLessEqual,
                        cluster.service(subproblem.services[i]).demand,
                        std::move(terms),
                        StrFormat("sla_s%d", subproblem.services[i]));
  }

  // Resource rows (4) against residual capacity.
  for (int j = 0; j < M; ++j) {
    const int m = subproblem.machines[j];
    for (int r = 0; r < R; ++r) {
      std::vector<LinearTerm> terms;
      for (int i = 0; i < S; ++i) {
        const double req = cluster.service(subproblem.services[i]).request[r];
        if (req > 0.0) terms.push_back({out.x_index[i][j], req});
      }
      if (terms.empty()) continue;
      model.AddConstraint(ConstraintType::kLessEqual,
                          std::max(0.0, ResidualCapacity(cluster, base, m, r)),
                          std::move(terms), StrFormat("cap_m%d_r%d", m, r));
    }
  }

  // Anti-affinity rows (5) against residual limits.
  for (int k : active_rules) {
    const AntiAffinityRule& rule = cluster.anti_affinity()[k];
    for (int j = 0; j < M; ++j) {
      const int m = subproblem.machines[j];
      std::vector<LinearTerm> terms;
      for (int s : rule.services) {
        if (local_of[s] >= 0) terms.push_back({out.x_index[local_of[s]][j], 1.0});
      }
      if (terms.empty()) continue;
      model.AddConstraint(
          ConstraintType::kLessEqual,
          std::max(0, ResidualRuleLimit(cluster, base, m, k)),
          std::move(terms), StrFormat("anti_k%d_m%d", k, m));
    }
  }

  return out;
}

StatusOr<SubproblemSolution> SolveSubproblemMipGrouped(
    const Cluster& cluster, const Subproblem& subproblem,
    const Placement& base, const MipAlgorithmOptions& options) {
  const int S = static_cast<int>(subproblem.services.size());
  const int R = cluster.num_resources();

  // Machine groups F: same spec and platform.
  std::map<std::pair<int, int>, std::vector<int>> groups_by_key;
  for (int m : subproblem.machines) {
    groups_by_key[{cluster.machine(m).spec_id, cluster.machine(m).platform}]
        .push_back(m);
  }
  std::vector<std::vector<int>> groups;
  for (auto& [key, members] : groups_by_key) groups.push_back(members);
  const int G = static_cast<int>(groups.size());
  if (S == 0 || G == 0) {
    SubproblemSolution empty;
    for (int s : subproblem.services) {
      empty.unplaced_containers += cluster.service(s).demand;
    }
    return empty;
  }

  std::vector<int> local_of(cluster.num_services(), -1);
  for (int i = 0; i < S; ++i) local_of[subproblem.services[i]] = i;
  std::vector<int> active_rules;
  {
    std::vector<bool> seen(cluster.anti_affinity().size(), false);
    for (int s : subproblem.services) {
      for (int k : cluster.RulesOfService(s)) {
        if (!seen[k]) {
          seen[k] = true;
          active_rules.push_back(k);
        }
      }
    }
  }

  const int E = static_cast<int>(subproblem.edges.size());
  const long long rows = static_cast<long long>(S) + 1LL * R * G +
                         1LL * static_cast<long long>(active_rules.size()) * G +
                         2LL * E * G;
  if (rows > options.max_model_rows) {
    return ResourceExhaustedError(StrFormat(
        "grouped MIP needs %lld rows > cap %d", rows, options.max_model_rows));
  }

  LpModel model;
  model.SetObjectiveSense(ObjectiveSense::kMaximize);
  // x_{s,g}: containers of service s placed somewhere in group g.
  std::vector<std::vector<int>> x(S, std::vector<int>(G, -1));
  for (int i = 0; i < S; ++i) {
    const int s = subproblem.services[i];
    for (int g = 0; g < G; ++g) {
      const bool can = cluster.CanHost(groups[g].front(), s);
      const int var = model.AddVariable(
          0.0, can ? cluster.service(s).demand : 0, 0.0,
          StrFormat("x_s%d_g%d", s, g));
      model.SetInteger(var);
      x[i][g] = var;
    }
  }
  // a_{e,g} + min-linearization (the paper's (7)-(8), with g in F).
  for (const AffinityEdge& edge : subproblem.edges) {
    const double du = cluster.service(edge.u).demand;
    const double dv = cluster.service(edge.v).demand;
    if (du <= 0 || dv <= 0) continue;
    for (int g = 0; g < G; ++g) {
      const int a = model.AddVariable(0.0, edge.weight, 1.0);
      model.AddConstraint(
          ConstraintType::kLessEqual, 0.0,
          {{a, 1.0}, {x[local_of[edge.u]][g], -edge.weight / du}});
      model.AddConstraint(
          ConstraintType::kLessEqual, 0.0,
          {{a, 1.0}, {x[local_of[edge.v]][g], -edge.weight / dv}});
    }
  }
  // SLA (relaxed to <=).
  for (int i = 0; i < S; ++i) {
    std::vector<LinearTerm> terms;
    for (int g = 0; g < G; ++g) terms.push_back({x[i][g], 1.0});
    model.AddConstraint(ConstraintType::kLessEqual,
                        cluster.service(subproblem.services[i]).demand,
                        std::move(terms));
  }
  // Aggregated resources and anti-affinity per group.
  for (int g = 0; g < G; ++g) {
    for (int r = 0; r < R; ++r) {
      double capacity = 0.0;
      for (int m : groups[g]) {
        capacity += std::max(0.0, ResidualCapacity(cluster, base, m, r));
      }
      std::vector<LinearTerm> terms;
      for (int i = 0; i < S; ++i) {
        const double req = cluster.service(subproblem.services[i]).request[r];
        if (req > 0.0) terms.push_back({x[i][g], req});
      }
      if (!terms.empty()) {
        model.AddConstraint(ConstraintType::kLessEqual, capacity,
                            std::move(terms));
      }
    }
    for (int k : active_rules) {
      int limit = 0;
      for (int m : groups[g]) {
        limit += std::max(0, ResidualRuleLimit(cluster, base, m, k));
      }
      std::vector<LinearTerm> terms;
      for (int s : cluster.anti_affinity()[k].services) {
        if (local_of[s] >= 0) terms.push_back({x[local_of[s]][g], 1.0});
      }
      if (!terms.empty()) {
        model.AddConstraint(ConstraintType::kLessEqual, limit,
                            std::move(terms));
      }
    }
  }

  MipOptions mip_options;
  mip_options.deadline = options.deadline;
  mip_options.relative_gap = options.relative_gap;
  MipResult mip = SolveMip(model, mip_options);
  RecordMipMetrics(mip);
  if (!mip.has_solution()) {
    Placement scratch = base;
    return GreedyAffinityPlace(cluster, subproblem, scratch);
  }

  // Disaggregation: hand each group's x_{s,g} to its member machines with
  // the affinity-aware greedy; infeasible leftovers become unplaced.
  Placement working = base;
  SubproblemSolution solution;
  std::vector<std::vector<int>> counts(
      S, std::vector<int>(subproblem.machines.size(), 0));
  std::vector<int> machine_index(cluster.num_machines(), -1);
  for (size_t j = 0; j < subproblem.machines.size(); ++j) {
    machine_index[subproblem.machines[j]] = static_cast<int>(j);
  }
  for (int g = 0; g < G; ++g) {
    // Services ordered by their group allocation, largest first.
    std::vector<std::pair<int, int>> allocs;  // (local service, count)
    for (int i = 0; i < S; ++i) {
      const int count = static_cast<int>(std::lround(mip.solution[x[i][g]]));
      if (count > 0) allocs.push_back({i, count});
    }
    std::sort(allocs.begin(), allocs.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (const auto& [i, count] : allocs) {
      const int s = subproblem.services[i];
      for (int c = 0; c < count; ++c) {
        int best = -1;
        double best_gain = -1.0;
        for (int m : groups[g]) {
          if (!working.CanPlace(m, s)) continue;
          const double gain = MarginalGain(cluster, subproblem, working, s, m);
          if (gain > best_gain) {
            best_gain = gain;
            best = m;
          }
        }
        if (best < 0) {
          ++solution.unplaced_containers;
          continue;
        }
        working.Add(best, s);
        ++counts[i][machine_index[best]];
      }
    }
  }
  // Emit assignments; unplaced = demand minus everything that landed.
  solution.unplaced_containers = 0;
  for (int i = 0; i < S; ++i) {
    int placed = 0;
    for (size_t j = 0; j < subproblem.machines.size(); ++j) {
      placed += counts[i][j];
      if (counts[i][j] > 0) {
        solution.assignments.push_back({subproblem.services[i],
                                        subproblem.machines[j],
                                        counts[i][j]});
      }
    }
    solution.unplaced_containers +=
        cluster.service(subproblem.services[i]).demand - placed;
  }
  solution.gained_affinity =
      SubproblemGainedAffinity(cluster, subproblem, counts);
  return solution;
}

StatusOr<SubproblemSolution> SolveSubproblemMip(
    const Cluster& cluster, const Subproblem& subproblem,
    const Placement& base, const MipAlgorithmOptions& options,
    SubproblemMipStats* stats) {
  const int S = static_cast<int>(subproblem.services.size());
  const int M = static_cast<int>(subproblem.machines.size());

  RASA_ASSIGN_OR_RETURN(
      SubproblemMip mip,
      BuildSubproblemMip(cluster, subproblem, base, options.max_model_rows));

  // Warm start from the affinity greedy.
  Placement scratch = base;
  SubproblemSolution greedy = GreedyAffinityPlace(cluster, subproblem, scratch);

  std::vector<int> local_service(cluster.num_services(), -1);
  for (int i = 0; i < S; ++i) local_service[subproblem.services[i]] = i;
  std::vector<int> local_machine(cluster.num_machines(), -1);
  for (int j = 0; j < M; ++j) local_machine[subproblem.machines[j]] = j;

  // Lift the a variables of a candidate x-block to their implied optima so
  // the warm start's objective matches its true gained affinity. Iterates
  // edges in the same order used by the builder; a-columns were created
  // right after the S*M x-block, one per (edge, machine).
  auto lift_a = [&](std::vector<double>& candidate) {
    int next_var = S * M;
    for (const AffinityEdge& edge : subproblem.edges) {
      const double du = cluster.service(edge.u).demand;
      const double dv = cluster.service(edge.v).demand;
      if (du <= 0 || dv <= 0) continue;
      for (int j = 0; j < M; ++j) {
        const double xu = candidate[mip.x_index[local_service[edge.u]][j]];
        const double xv = candidate[mip.x_index[local_service[edge.v]][j]];
        candidate[next_var] = edge.weight * std::min(xu / du, xv / dv);
        ++next_var;
      }
    }
  };

  std::vector<double> warm(mip.model.num_variables(), 0.0);
  for (const SubproblemSolution::Assignment& a : greedy.assignments) {
    warm[mip.x_index[local_service[a.service]][local_machine[a.machine]]] =
        a.count;
  }
  lift_a(warm);

  // Incremental warm start: when the prior incumbent realizes more affinity
  // than the greedy, offer it instead. Branch-and-bound audits feasibility
  // before accepting any initial solution, so a stale hint degrades to no
  // warm start, never to an invalid incumbent.
  if (options.incumbent_hint != nullptr) {
    std::vector<std::vector<int>> counts(S, std::vector<int>(M, 0));
    for (int i = 0; i < S; ++i) {
      for (int j = 0; j < M; ++j) {
        counts[i][j] = options.incumbent_hint->CountOn(
            subproblem.machines[j], subproblem.services[i]);
      }
    }
    if (SubproblemGainedAffinity(cluster, subproblem, counts) >
        greedy.gained_affinity) {
      std::vector<double> hint(mip.model.num_variables(), 0.0);
      for (int i = 0; i < S; ++i) {
        for (int j = 0; j < M; ++j) {
          hint[mip.x_index[i][j]] = counts[i][j];
        }
      }
      lift_a(hint);
      warm = std::move(hint);
    }
  }

  MipOptions mip_options;
  mip_options.deadline = options.deadline;
  mip_options.relative_gap = options.relative_gap;
  mip_options.initial_solution = warm;
  MipResult result = SolveMip(mip.model, mip_options);
  RecordMipMetrics(result);
  FillMipStats(result, stats);

  if (!result.has_solution()) {
    // Infeasible should not happen (x = 0 is feasible); fall back to greedy.
    RASA_LOG(Info) << "subproblem MIP returned "
                   << MipStatusToString(result.status) << "; using greedy";
    return greedy;
  }

  SubproblemSolution solution;
  std::vector<std::vector<int>> counts(S, std::vector<int>(M, 0));
  for (int i = 0; i < S; ++i) {
    int placed = 0;
    for (int j = 0; j < M; ++j) {
      const int count = static_cast<int>(
          std::lround(result.solution[mip.x_index[i][j]]));
      counts[i][j] = count;
      placed += count;
      if (count > 0) {
        solution.assignments.push_back(
            {subproblem.services[i], subproblem.machines[j], count});
      }
    }
    solution.unplaced_containers +=
        cluster.service(subproblem.services[i]).demand - placed;
  }
  solution.gained_affinity =
      SubproblemGainedAffinity(cluster, subproblem, counts);
  return solution;
}

}  // namespace rasa
