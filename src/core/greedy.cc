#include "core/greedy.h"

#include <algorithm>
#include <unordered_set>

namespace rasa {

double MarginalGain(const Cluster& cluster, const Subproblem& subproblem,
                    const Placement& working, int service, int machine) {
  const int d_s = cluster.service(service).demand;
  if (d_s <= 0) return 0.0;
  // Neighbors of `service` within the subproblem.
  std::unordered_set<int> member(subproblem.services.begin(),
                                 subproblem.services.end());
  double gain = 0.0;
  const int x_s = working.CountOn(machine, service);
  for (const auto& [nbr, w] : cluster.affinity().Neighbors(service)) {
    if (member.count(nbr) == 0) continue;
    const int d_n = cluster.service(nbr).demand;
    if (d_n <= 0) continue;
    const int x_n = working.CountOn(machine, nbr);
    if (x_n == 0) continue;
    const double before = std::min(static_cast<double>(x_s) / d_s,
                                   static_cast<double>(x_n) / d_n);
    const double after = std::min(static_cast<double>(x_s + 1) / d_s,
                                  static_cast<double>(x_n) / d_n);
    gain += w * (after - before);
  }
  return gain;
}

SubproblemSolution GreedyAffinityPlace(const Cluster& cluster,
                                       const Subproblem& subproblem,
                                       Placement& working) {
  SubproblemSolution solution;

  // Membership bitmap and internal adjacency, built once: the per-container
  // loop below must not rebuild sets (whole-cluster fallbacks hit this path
  // with thousands of containers).
  std::vector<char> member(cluster.num_services(), 0);
  for (int s : subproblem.services) member[s] = 1;

  // Heaviest services first so later, lighter neighbors can chase them.
  std::vector<int> order = subproblem.services;
  std::vector<double> internal_affinity(cluster.num_services(), 0.0);
  for (int s : subproblem.services) {
    for (const auto& [nbr, w] : cluster.affinity().Neighbors(s)) {
      if (member[nbr]) internal_affinity[s] += w;
    }
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (internal_affinity[a] != internal_affinity[b]) {
      return internal_affinity[a] > internal_affinity[b];
    }
    return a < b;
  });

  // Fast marginal gain against the working placement using the bitmap.
  auto marginal = [&](int service, int machine) {
    const int d_s = cluster.service(service).demand;
    if (d_s <= 0) return 0.0;
    const int x_s = working.CountOn(machine, service);
    double gain = 0.0;
    for (const auto& [nbr, w] : cluster.affinity().Neighbors(service)) {
      if (!member[nbr]) continue;
      const int d_n = cluster.service(nbr).demand;
      if (d_n <= 0) continue;
      const int x_n = working.CountOn(machine, nbr);
      if (x_n == 0) continue;
      gain += w * (std::min(static_cast<double>(x_s + 1) / d_s,
                            static_cast<double>(x_n) / d_n) -
                   std::min(static_cast<double>(x_s) / d_s,
                            static_cast<double>(x_n) / d_n));
    }
    return gain;
  };

  std::vector<std::vector<int>> counts(
      subproblem.services.size(),
      std::vector<int>(subproblem.machines.size(), 0));
  std::vector<int> local_of(cluster.num_services(), -1);
  for (size_t i = 0; i < subproblem.services.size(); ++i) {
    local_of[subproblem.services[i]] = static_cast<int>(i);
  }

  for (int s : order) {
    const Service& svc = cluster.service(s);
    for (int c = 0; c < svc.demand; ++c) {
      int best_machine = -1;
      double best_score = -1e300;
      for (size_t mj = 0; mj < subproblem.machines.size(); ++mj) {
        const int m = subproblem.machines[mj];
        if (!working.CanPlace(m, s)) continue;
        const double gain = marginal(s, m);
        // Tie-break toward the machine with most free CPU so lone services
        // spread instead of piling onto one host.
        const double cap = cluster.machine(m).capacity[0];
        const double free_frac =
            cap > 0.0 ? working.FreeResource(m, 0) / cap : 0.0;
        const double score = gain + 1e-6 * free_frac;
        if (score > best_score) {
          best_score = score;
          best_machine = m;
        }
      }
      if (best_machine < 0) {
        ++solution.unplaced_containers;
        continue;
      }
      working.Add(best_machine, s);
      // Record in subproblem-local terms.
      const auto it = std::find(subproblem.machines.begin(),
                                subproblem.machines.end(), best_machine);
      ++counts[local_of[s]][it - subproblem.machines.begin()];
    }
  }

  for (size_t i = 0; i < subproblem.services.size(); ++i) {
    for (size_t j = 0; j < subproblem.machines.size(); ++j) {
      if (counts[i][j] > 0) {
        solution.assignments.push_back({subproblem.services[i],
                                        subproblem.machines[j],
                                        counts[i][j]});
      }
    }
  }
  solution.gained_affinity =
      SubproblemGainedAffinity(cluster, subproblem, counts);
  return solution;
}

}  // namespace rasa
