#ifndef RASA_CORE_CG_H_
#define RASA_CORE_CG_H_

#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/statusor.h"
#include "common/timer.h"
#include "core/subproblem.h"

namespace rasa {

struct CgOptions {
  Deadline deadline = Deadline::Infinite();
  /// Stop after this many pricing rounds even if improving patterns remain.
  int max_rounds = 40;
  /// Reduced-cost threshold for accepting a generated pattern.
  double pricing_tolerance = 1e-7;
  /// Pricing also evaluates adding both endpoints of an affinity edge at
  /// once, which lets the greedy escape "first container looks
  /// unprofitable" traps. Disable for the ablation bench.
  bool pair_pricing = true;
  /// Column management: cap on patterns kept per machine between rounds
  /// (<= 0 keeps everything; masters then grow quadratically).
  int max_patterns_per_machine = 14;
  /// After rounding, greedily place demand the clipped patterns missed.
  bool greedy_completion = true;
  uint64_t seed = 13;
};

struct CgStats {
  int rounds = 0;
  int patterns_generated = 0;
  int master_solves = 0;
  bool hit_deadline = false;
  /// Objective of the last successfully solved restricted master LP: the
  /// CG dual estimate of the subproblem's achievable gained affinity. It
  /// upper-bounds any integral selection of the *generated* patterns, but
  /// greedy completion may round above it — certificate consumers must cap
  /// it with the realized value (see explain.h).
  double lp_objective = 0.0;
  bool has_lp_bound = false;
  /// Simplex pivots across all master solves, with the phase-1 share.
  int lp_iterations = 0;
  int lp_phase1_iterations = 0;
  /// Master solves that accepted the previous round's basis (the hit-rate
  /// denominator is master_solves; the first master is always cold, and a
  /// round goes cold whenever column management dropped a basic pattern).
  int master_warm_started = 0;
  /// Basis refactorizations summed over all master solves (revised
  /// simplex; 0 when the masters were small enough for the dense kernel).
  int refactorizations = 0;
  /// Longest eta file reached in any master solve (revised simplex).
  int max_eta_length = 0;
};

/// The column-generation pool algorithm (§IV-C2, Algorithm 1).
///
/// Works on the cutting-stock reformulation: each machine picks one
/// feasible *pattern* (a container-count vector over subproblem services
/// satisfying its residual resources, anti-affinity, and schedulability).
/// The restricted master LP
///    max  sum v(p) y_{m,p}
///    s.t. sum_p y_{m,p} = 1            (per machine)
///         sum_{m,p} p_s y_{m,p} <= d_s (per service)
/// is re-solved after each pricing round; pricing maximizes
/// v(p) - sum_s pi_s p_s - mu_m per machine with a marginal-gain greedy
/// over single-container and edge-pair additions. Terminates when no
/// pattern with positive reduced cost is found (IsTerminate) or at the
/// deadline, then rounds y to an integral per-machine pattern choice.
StatusOr<SubproblemSolution> SolveSubproblemCg(const Cluster& cluster,
                                               const Subproblem& subproblem,
                                               const Placement& base,
                                               const Placement& original,
                                               const CgOptions& options = {},
                                               CgStats* stats = nullptr);

}  // namespace rasa

#endif  // RASA_CORE_CG_H_
