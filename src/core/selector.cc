#include "core/selector.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace rasa {

const char* SelectorPolicyToString(SelectorPolicy policy) {
  switch (policy) {
    case SelectorPolicy::kAlwaysCg:
      return "CG";
    case SelectorPolicy::kAlwaysMip:
      return "MIP";
    case SelectorPolicy::kHeuristic:
      return "HEURISTIC";
    case SelectorPolicy::kMlp:
      return "MLP-BASED";
    case SelectorPolicy::kGcn:
      return "GCN-BASED";
  }
  return "UNKNOWN";
}

FeatureGraph BuildSubproblemFeatureGraph(const Cluster& cluster,
                                         const Subproblem& subproblem) {
  const int n = static_cast<int>(subproblem.services.size());
  const AffinityGraph sub =
      cluster.affinity().InducedSubgraph(subproblem.services);
  Matrix features(std::max(n, 1), kSelectorFeatureDim);
  const double machine_ratio =
      static_cast<double>(subproblem.machines.size()) / (n + 1.0);
  for (int i = 0; i < n; ++i) {
    const Service& svc = cluster.service(subproblem.services[i]);
    features(i, 0) = svc.request.empty() ? 0.0 : svc.request[0] / 4.0;
    features(i, 1) = svc.demand / 20.0;
    features(i, 2) = sub.Degree(i) / 8.0;
    features(i, 3) = machine_ratio;
  }
  AffinityGraph graph_for_adj = n > 0 ? sub : AffinityGraph(1);
  return MakeFeatureGraph(graph_for_adj, std::move(features));
}

Matrix MeanSubproblemFeatures(const Cluster& cluster,
                              const Subproblem& subproblem) {
  return BuildSubproblemFeatureGraph(cluster, subproblem).features.MeanRows();
}

PoolAlgorithm HeuristicSelect(const Cluster& cluster,
                              const Subproblem& subproblem) {
  if (subproblem.services.empty()) return PoolAlgorithm::kMip;
  double containers = 0.0;
  for (int s : subproblem.services) containers += cluster.service(s).demand;
  const double avg_containers = containers / subproblem.services.size();
  std::set<int> specs;
  for (int m : subproblem.machines) specs.insert(cluster.machine(m).spec_id);
  const double avg_machines_per_spec =
      specs.empty() ? 0.0
                    : static_cast<double>(subproblem.machines.size()) /
                          static_cast<double>(specs.size());
  return avg_containers > avg_machines_per_spec ? PoolAlgorithm::kCg
                                                : PoolAlgorithm::kMip;
}

AlgorithmSelector::AlgorithmSelector(SelectorPolicy policy) : policy_(policy) {
  RASA_CHECK(policy != SelectorPolicy::kGcn && policy != SelectorPolicy::kMlp)
      << "model-based policies need a trained model";
}

AlgorithmSelector::AlgorithmSelector(GcnClassifier gcn)
    : policy_(SelectorPolicy::kGcn), gcn_(std::move(gcn)) {}

AlgorithmSelector::AlgorithmSelector(MlpClassifier mlp)
    : policy_(SelectorPolicy::kMlp), mlp_(std::move(mlp)) {}

PoolAlgorithm AlgorithmSelector::Select(const Cluster& cluster,
                                        const Subproblem& subproblem) const {
  switch (policy_) {
    case SelectorPolicy::kAlwaysCg:
      return PoolAlgorithm::kCg;
    case SelectorPolicy::kAlwaysMip:
      return PoolAlgorithm::kMip;
    case SelectorPolicy::kHeuristic:
      return HeuristicSelect(cluster, subproblem);
    case SelectorPolicy::kMlp: {
      const int label =
          mlp_.Predict(MeanSubproblemFeatures(cluster, subproblem));
      return label == 0 ? PoolAlgorithm::kCg : PoolAlgorithm::kMip;
    }
    case SelectorPolicy::kGcn: {
      const int label =
          gcn_.Predict(BuildSubproblemFeatureGraph(cluster, subproblem));
      return label == 0 ? PoolAlgorithm::kCg : PoolAlgorithm::kMip;
    }
  }
  return PoolAlgorithm::kCg;
}

std::vector<PoolAlgorithm> AlgorithmSelector::SelectBatch(
    const Cluster& cluster, const std::vector<Subproblem>& subproblems,
    ThreadPool* pool) const {
  std::vector<PoolAlgorithm> out(subproblems.size(), PoolAlgorithm::kCg);
  if (pool == nullptr || subproblems.size() <= 1) {
    for (size_t i = 0; i < subproblems.size(); ++i) {
      out[i] = Select(cluster, subproblems[i]);
    }
    return out;
  }
  pool->ParallelFor(static_cast<int>(subproblems.size()), [&](int i) {
    out[i] = Select(cluster, subproblems[i]);
  });
  return out;
}

}  // namespace rasa
