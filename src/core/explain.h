#ifndef RASA_CORE_EXPLAIN_H_
#define RASA_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/json_writer.h"
#include "core/local_search.h"
#include "core/solve_ledger.h"

namespace rasa {

/// One subproblem's term of the cluster optimality-gap certificate.
struct CertificateTerm {
  int subproblem = 0;
  double internal_affinity = 0.0;
  /// The bound actually charged for this subproblem:
  /// min(internal_affinity, solver bound) when `tightened`, else
  /// internal_affinity (the trivial bound — every internal edge fully
  /// localized).
  double bound = 0.0;
  bool tightened = false;
  /// Where the tightening came from: "mip" (proven B&B dual bound), "cg-lp"
  /// (restricted master LP objective, capped by the realized value because
  /// greedy completion may round above the LP), or "trivial".
  std::string source = "trivial";
  double realized = 0.0;
};

/// Provable upper bound on the gained affinity achievable by the RASA
/// pipeline at this partition, against what the run actually achieved.
///
/// Construction: every affinity edge contributes at most its full weight,
/// so edges external to all subproblems (cut edges + edges touching trivial
/// services) are charged in full as `external_affinity`. Each subproblem's
/// internal edges are charged min(internal_affinity, solver bound), where
/// the solver bound is only trusted when (a) the solver proved it
/// (MipResult::bound_proven, or a solved CG master LP capped by the
/// realized value) and (b) the subproblem placed every container inside its
/// own machines (unplaced == 0) — otherwise the fallback may localize
/// internal edges on machines the solver never modeled, voiding its bound.
/// Local search moves containers across subproblem boundaries, so its
/// realized delta is credited to the bound rather than certified.
struct QualityCertificate {
  /// Gained affinity after merge + fallback, before local search (A3).
  double achieved_solver_phase = 0.0;
  /// Final gained affinity of the run (A4 == RasaResult::new_gained_affinity).
  double achieved_final = 0.0;

  /// Weight of edges not internal to any subproblem, charged in full.
  double external_affinity = 0.0;
  double sum_internal_affinity = 0.0;
  /// external_affinity + sum of per-subproblem certificate terms.
  double bound_solver_phase = 0.0;
  /// max(0, local-search delta): realized, not certified (see above).
  double local_search_credit = 0.0;
  /// bound_solver_phase + local_search_credit; achieved_final <= bound_final.
  double bound_final = 0.0;

  int tightened_terms = 0;
  std::vector<CertificateTerm> terms;

  /// Relative optimality gap of the run: (bound - achieved) / max(bound, eps).
  double Gap() const;
  /// achieved_final / bound_final in [0, 1]; 1 when the bound is met.
  double Ratio() const;
};

/// Waterfall decomposition of the final gained affinity by pipeline phase.
/// The four terms sum exactly (to rounding) to `total`:
///   total = base_retained + solver_gain + fallback_delta + local_search_delta.
struct AttributionWaterfall {
  /// A1: gained affinity of the base placement (trivial residents only).
  double base_retained = 0.0;
  /// A2 - A1: added by the per-subproblem solves at the merge.
  double solver_gain = 0.0;
  /// A3 - A2: added (or lost) by the default-scheduler fallback.
  double fallback_delta = 0.0;
  /// A4 - A3: added by the optional local-search refinement.
  double local_search_delta = 0.0;
  /// A4: the run's final gained affinity.
  double total = 0.0;

  // Context (not part of the sum):
  /// Affinity share on edges not internal to any subproblem — the
  /// partitioning's optimality loss (1 - crucial_internal_affinity of a
  /// weight-1 graph).
  double partition_cut_affinity = 0.0;
  double original_gained_affinity = 0.0;

  double Sum() const {
    return base_retained + solver_gain + fallback_delta + local_search_delta;
  }
};

/// Who moved and which traffic got localized, naming names.
struct PlacementDiffAudit {
  struct ServiceMove {
    int service = 0;
    std::string name;
    int moved_containers = 0;
  };
  struct PairLocalization {
    int u = 0;
    int v = 0;
    std::string name_u;
    std::string name_v;
    double weight = 0.0;
    double ratio_before = 0.0;  // PairLocalizationRatio before / after
    double ratio_after = 0.0;
    /// weight * (ratio_after - ratio_before): gained affinity this pair won.
    double delta_affinity = 0.0;
  };

  int moved_containers = 0;
  /// Top services by containers moved, descending (index tie-break).
  std::vector<ServiceMove> top_moved;
  /// Top affinity edges by delta_affinity, descending (index tie-break).
  std::vector<PairLocalization> top_localized;
};

/// The full explain report of one Optimize run: flight-recorder records in
/// canonical order, the quality certificate, the attribution waterfall, and
/// the placement diff. Deterministic: bit-identical at every thread count
/// and with the ledger on or off (wall-clock fields excepted; JSON render
/// can exclude them).
struct ExplainReport {
  bool populated = false;
  QualityCertificate certificate;
  AttributionWaterfall waterfall;
  PlacementDiffAudit diff;
  std::vector<LedgerRecord> records;
  bool local_search_ran = false;
  LocalSearchStats local_search;
};

/// Builds the diff audit between two placements over the same cluster.
PlacementDiffAudit BuildPlacementDiff(const Cluster& cluster,
                                      const Placement& before,
                                      const Placement& after, int top_k = 8);

/// Serializes the report as one JSON object on `writer`. With
/// `include_timings` false, every wall-clock field is omitted so two runs
/// of the same seed render bit-identically regardless of machine load —
/// the form the determinism test compares.
void AppendExplainJson(JsonWriter& writer, const ExplainReport& report,
                       bool include_timings = true);

/// Human-readable multi-line report: certificate, waterfall, per-subproblem
/// solver table, solve-time quantiles (p50/p95/p99), and the diff audit.
std::string FormatExplainReport(const ExplainReport& report);

}  // namespace rasa

#endif  // RASA_CORE_EXPLAIN_H_
