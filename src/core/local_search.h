#ifndef RASA_CORE_LOCAL_SEARCH_H_
#define RASA_CORE_LOCAL_SEARCH_H_

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/rng.h"
#include "common/timer.h"

namespace rasa {

struct LocalSearchOptions {
  Deadline deadline = Deadline::Infinite();
  /// Passes over the candidate containers (each pass revisits every
  /// affinity service's containers once).
  int max_passes = 3;
  /// Only consider relocating containers of services whose affinity degree
  /// is positive — moving anything else cannot change the objective.
  bool affinity_services_only = true;
  /// Try pairwise container swaps (A<->B across machines) in addition to
  /// single-container moves. Swaps escape capacity-tight local optima that
  /// moves alone cannot.
  bool enable_swaps = true;
  uint64_t seed = 17;
};

struct LocalSearchStats {
  int moves_applied = 0;
  int swaps_applied = 0;
  double gain = 0.0;  // total gained-affinity improvement
  int passes = 0;
  bool hit_deadline = false;
};

/// Hill-climbing refinement of a full placement (an "extension/future work"
/// pass beyond the paper): repeatedly relocate or swap single containers
/// when doing so strictly increases overall gained affinity while keeping
/// the placement feasible. Anytime and strictly monotone: the placement is
/// only ever improved.
LocalSearchStats RefinePlacement(const Cluster& cluster, Placement& placement,
                                 const LocalSearchOptions& options = {});

}  // namespace rasa

#endif  // RASA_CORE_LOCAL_SEARCH_H_
