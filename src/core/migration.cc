#include "core/migration.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace rasa {

std::string MigrationPlan::Summary() const {
  return StrFormat("%zu batches, %d deletes, %d creates, %d stranded",
                   batches.size(), total_deletes, total_creates,
                   stranded_deletes);
}

namespace {

// Containers of `service` that must leave `machine`: positive part of
// (current - target).
int SurplusOn(const Placement& current, const Placement& target, int machine,
              int service) {
  return std::max(0, current.CountOn(machine, service) -
                         target.CountOn(machine, service));
}

// Containers of `service` still to be created on `machine`.
int DeficitOn(const Placement& current, const Placement& target, int machine,
              int service) {
  return std::max(0, target.CountOn(machine, service) -
                         current.CountOn(machine, service));
}

}  // namespace

int MinAliveFloor(int demand, double min_alive_fraction) {
  if (demand <= 0) return 0;
  const int requested =
      static_cast<int>(std::ceil(min_alive_fraction * demand));
  // Guaranteed-progress carve-out: one container may always be offline.
  return std::max(0, std::min(demand - 1, requested));
}

StatusOr<MigrationPlan> ComputeMigrationPath(const Cluster& cluster,
                                             const Placement& original,
                                             const Placement& target,
                                             const MigrationOptions& options) {
  MigrationPlan plan;
  Placement current = original;
  const int N = cluster.num_services();
  const int M = cluster.num_machines();

  // offline[s]: containers of s deleted and not yet recreated.
  std::vector<int> offline(N, 0);
  // How many creations each service still owes (bounded by the matched
  // delete/create volume; excess deletes are stranded to the final batch).
  std::vector<int> pending_creates(N, 0);
  std::vector<int> pending_deletes(N, 0);
  for (int s = 0; s < N; ++s) {
    int surplus = 0;
    int deficit = 0;
    for (int m = 0; m < M; ++m) {
      surplus += SurplusOn(current, target, m, s);
      deficit += DeficitOn(current, target, m, s);
    }
    pending_deletes[s] = surplus;
    pending_creates[s] = deficit;
  }

  // SLA floor (shared with validator and executor; see MinAliveFloor for
  // the small-service carve-out).
  auto min_alive = [&](int s) {
    return MinAliveFloor(cluster.service(s).demand,
                         options.min_alive_fraction);
  };
  auto alive = [&](int s) { return current.TotalOf(s); };

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // ---- Delete set: at most one container per machine. Deletes in one
    // batch execute in parallel, so SLA accounting must include the picks
    // already made for other machines in this batch.
    std::vector<MigrationCommand> deletes;
    std::vector<int> batch_deletes(N, 0);
    for (int m = 0; m < M; ++m) {
      int pick = -1;
      double pick_ratio = 2.0;
      for (const auto& [s, count] : current.ServicesOn(m)) {
        (void)count;
        if (SurplusOn(current, target, m, s) <= 0) continue;
        // Only delete what will be recreated now; stranded surplus waits
        // for the final batch.
        if (pending_creates[s] <= offline[s] + batch_deletes[s]) continue;
        if (alive(s) - batch_deletes[s] - 1 < min_alive(s)) continue;  // SLA
        const int d = cluster.service(s).demand;
        const double ratio =
            d > 0 ? static_cast<double>(offline[s] + batch_deletes[s]) / d
                  : 0.0;
        // SelectDelete: lowest offline ratio.
        if (ratio < pick_ratio || (ratio == pick_ratio && s < pick)) {
          pick_ratio = ratio;
          pick = s;
        }
      }
      if (pick >= 0) {
        deletes.push_back({MigrationCommandType::kDelete, pick, m});
        ++batch_deletes[pick];
      }
    }
    const bool deleted_this_round = !deletes.empty();
    for (const MigrationCommand& cmd : deletes) {
      RASA_RETURN_IF_ERROR(current.Remove(cmd.machine, cmd.service));
      ++offline[cmd.service];
      --pending_deletes[cmd.service];
    }
    if (!deletes.empty()) {
      plan.total_deletes += static_cast<int>(deletes.size());
      plan.batches.push_back(std::move(deletes));
    }

    // ---- Create set: at most one container per machine ----
    std::vector<MigrationCommand> creates;
    for (int m = 0; m < M; ++m) {
      int pick = -1;
      double pick_ratio = -1.0;
      for (const auto& [s, count] : target.ServicesOn(m)) {
        (void)count;
        if (DeficitOn(current, target, m, s) <= 0) continue;
        if (offline[s] <= 0) continue;            // must be deleted first
        if (!current.CanPlace(m, s)) continue;    // resources must fit now
        const int d = cluster.service(s).demand;
        const double ratio = d > 0 ? static_cast<double>(offline[s]) / d : 0.0;
        // SelectCreate: highest offline ratio.
        if (ratio > pick_ratio || (ratio == pick_ratio && s < pick)) {
          pick_ratio = ratio;
          pick = s;
        }
      }
      if (pick >= 0) creates.push_back({MigrationCommandType::kCreate, pick, m});
    }
    for (const MigrationCommand& cmd : creates) {
      current.Add(cmd.machine, cmd.service);
      --offline[cmd.service];
      --pending_creates[cmd.service];
    }
    const bool progressed = !creates.empty();
    if (!creates.empty()) {
      plan.total_creates += static_cast<int>(creates.size());
      plan.batches.push_back(std::move(creates));
    }

    // Done with the matched moves?
    bool pending = false;
    for (int s = 0; s < N; ++s) {
      if (pending_creates[s] > 0 ||
          pending_deletes[s] > pending_creates[s]) {
        // pending_deletes beyond creates is stranded surplus; handled below.
      }
      if (pending_creates[s] > 0) pending = true;
    }
    if (!pending) break;
    if (!progressed && !deleted_this_round) {
      return InternalError("migration path deadlocked before completion");
    }
  }

  // Verify everything matched got created.
  for (int s = 0; s < N; ++s) {
    if (pending_creates[s] > 0) {
      return InternalError(StrFormat(
          "migration ran out of iterations with %d creates pending for "
          "service %d",
          pending_creates[s], s));
    }
  }

  // Final batch: stranded deletes (target deploys fewer containers).
  std::vector<MigrationCommand> stranded;
  for (int m = 0; m < M; ++m) {
    std::vector<std::pair<int, int>> to_delete;
    for (const auto& [s, count] : current.ServicesOn(m)) {
      const int surplus = SurplusOn(current, target, m, s);
      if (surplus > 0) to_delete.push_back({s, surplus});
    }
    for (const auto& [s, surplus] : to_delete) {
      for (int c = 0; c < surplus; ++c) {
        stranded.push_back({MigrationCommandType::kDelete, s, m});
      }
      RASA_RETURN_IF_ERROR(current.Remove(m, s, surplus));
    }
  }
  if (!stranded.empty()) {
    plan.stranded_deletes = static_cast<int>(stranded.size());
    plan.total_deletes += plan.stranded_deletes;
    plan.batches.push_back(std::move(stranded));
  }

  return plan;
}

Status ValidateMigrationPlan(const Cluster& cluster, const Placement& original,
                             const Placement& target,
                             const MigrationPlan& plan,
                             double min_alive_fraction) {
  Placement current = original;
  size_t batch_index = 0;
  for (const std::vector<MigrationCommand>& batch : plan.batches) {
    for (const MigrationCommand& cmd : batch) {
      if (cmd.type == MigrationCommandType::kDelete) {
        RASA_RETURN_IF_ERROR(current.Remove(cmd.machine, cmd.service));
      } else {
        if (!current.CanPlace(cmd.machine, cmd.service)) {
          return FailedPreconditionError(StrFormat(
              "batch %zu: create of service %d on machine %d infeasible",
              batch_index, cmd.service, cmd.machine));
        }
        current.Add(cmd.machine, cmd.service);
      }
    }
    RASA_RETURN_IF_ERROR(current.CheckFeasible(/*check_sla=*/false));
    // The last batch may hold stranded deletes, after which under-deployment
    // is the (reported) end state; every intermediate batch honors the SLA.
    const bool last = batch_index + 1 == plan.batches.size();
    if (!last || plan.stranded_deletes == 0) {
      for (int s = 0; s < cluster.num_services(); ++s) {
        const int floor_alive =
            MinAliveFloor(cluster.service(s).demand, min_alive_fraction);
        if (current.TotalOf(s) < floor_alive) {
          return FailedPreconditionError(StrFormat(
              "batch %zu: service %d down to %d/%d alive", batch_index, s,
              current.TotalOf(s), cluster.service(s).demand));
        }
      }
    }
    ++batch_index;
  }
  // Final state must equal the target exactly.
  for (int m = 0; m < cluster.num_machines(); ++m) {
    for (int s = 0; s < cluster.num_services(); ++s) {
      if (current.CountOn(m, s) != target.CountOn(m, s)) {
        return FailedPreconditionError(StrFormat(
            "final state mismatch at machine %d service %d: %d != %d", m, s,
            current.CountOn(m, s), target.CountOn(m, s)));
      }
    }
  }
  return Status::OK();
}

}  // namespace rasa
