#include "core/recovery.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <utility>

#include "cluster/serialization.h"
#include "common/strings.h"

namespace rasa {
namespace {

constexpr char kCheckpointMagic[] = "rasa-workflow-checkpoint-v1";

std::string CheckpointPath(const std::string& dir) { return dir + "/checkpoint"; }
std::string PrevCheckpointPath(const std::string& dir) {
  return dir + "/checkpoint.prev";
}
std::string JournalPath(const std::string& dir) { return dir + "/journal.wal"; }

// Re-binds `src` counts onto a placement over `cluster` (sources are often
// bound to a different Cluster copy of the same shape).
Placement CopyCounts(const Cluster& cluster, const Placement& src) {
  Placement out(cluster);
  const int machines = std::min(cluster.num_machines(),
                                src.cluster()->num_machines());
  for (int m = 0; m < machines; ++m) {
    for (const auto& [s, count] : src.ServicesOn(m)) {
      if (s < cluster.num_services()) out.Add(m, s, count);
    }
  }
  return out;
}

int SymmetricDiff(const Placement& a, const Placement& b) {
  return a.DiffCount(b) + b.DiffCount(a);
}

// Applies one migration command; false when the live state cannot take it
// (missing container for a delete, infeasible machine for a create).
bool ApplyCommand(Placement& placement, const MigrationCommand& cmd) {
  if (cmd.type == MigrationCommandType::kDelete) {
    return placement.Remove(cmd.machine, cmd.service).ok();
  }
  if (!placement.CanPlace(cmd.machine, cmd.service)) return false;
  placement.Add(cmd.machine, cmd.service);
  return true;
}

// Same per-batch audit the executor runs: capacity/anti-affinity
// feasibility plus the rolling-update SLA floor.
void AuditState(const Cluster& cluster, const Placement& live,
                double min_alive_fraction, int& sla_violations,
                int& feasibility_violations) {
  if (!live.CheckFeasible(/*check_sla=*/false).ok()) ++feasibility_violations;
  for (int s = 0; s < cluster.num_services(); ++s) {
    const int floor = MinAliveFloor(cluster.service(s).demand,
                                    min_alive_fraction);
    if (live.TotalOf(s) < floor) ++sla_violations;
  }
}

void EncodeCommands(std::ostringstream& os,
                    const std::vector<MigrationCommand>& commands) {
  os << " " << commands.size();
  for (const MigrationCommand& cmd : commands) {
    os << " " << (cmd.type == MigrationCommandType::kDelete ? "d" : "c") << " "
       << cmd.service << " " << cmd.machine;
  }
}

bool DecodeCommands(std::istringstream& is,
                    std::vector<MigrationCommand>& commands) {
  size_t n = 0;
  if (!(is >> n) || n > (1u << 24)) return false;
  commands.clear();
  commands.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string kind;
    MigrationCommand cmd;
    if (!(is >> kind >> cmd.service >> cmd.machine) ||
        (kind != "d" && kind != "c")) {
      return false;
    }
    cmd.type = kind == "d" ? MigrationCommandType::kDelete
                           : MigrationCommandType::kCreate;
    commands.push_back(cmd);
  }
  return true;
}

// The target placement a plan record intends to reach, bound to `cluster`.
Placement TargetFromPlan(const Cluster& cluster, const JournalRecord& plan) {
  Placement target(cluster);
  for (const std::array<int, 3>& t : plan.target) {
    if (t[0] >= 0 && t[0] < cluster.num_machines() && t[1] >= 0 &&
        t[1] < cluster.num_services() && t[2] > 0) {
      target.Add(t[0], t[1], t[2]);
    }
  }
  return target;
}

// The commands of batch ordinal `b`, preferring the explicit intent record
// (survives executor replans) over the original plan. False when unknown.
bool BatchCommands(const CycleJournal& cj, int b,
                   std::vector<MigrationCommand>& out) {
  auto it = cj.batch_intents.find(b);
  if (it != cj.batch_intents.end()) {
    out = it->second.commands;
    return true;
  }
  if (cj.have_plan && b >= 0 &&
      b < static_cast<int>(cj.plan.batches.size())) {
    out = cj.plan.batches[b];
    return true;
  }
  return false;
}

// Total batch ordinals the interrupted execution spans.
int NumBatches(const CycleJournal& cj) {
  int n = cj.have_plan ? static_cast<int>(cj.plan.batches.size()) : 0;
  if (!cj.batch_intents.empty()) {
    n = std::max(n, cj.batch_intents.rbegin()->first + 1);
  }
  return n;
}

// Reconciles `observed` straight to `target`: removals before additions so
// every intermediate state is pointwise <= max(observed, target) and
// capacity feasibility is never transiently violated.
void ReconcileToTarget(const Cluster& cluster, const Placement& target,
                       Placement& observed, int& feasibility_violations) {
  for (int m = 0; m < cluster.num_machines(); ++m) {
    // Snapshot before mutating the map being iterated.
    std::vector<std::pair<int, int>> extra;
    for (const auto& [s, count] : observed.ServicesOn(m)) {
      const int over = count - target.CountOn(m, s);
      if (over > 0) extra.push_back({s, over});
    }
    for (const auto& [s, over] : extra) {
      if (!observed.Remove(m, s, over).ok()) ++feasibility_violations;
    }
  }
  for (int m = 0; m < cluster.num_machines(); ++m) {
    for (const auto& [s, count] : target.ServicesOn(m)) {
      const int missing = count - observed.CountOn(m, s);
      for (int i = 0; i < missing; ++i) {
        if (!observed.CanPlace(m, s)) {
          ++feasibility_violations;
          break;
        }
        observed.Add(m, s);
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Checkpoints

std::string EncodeWorkflowCheckpoint(const WorkflowCheckpoint& c) {
  std::ostringstream os;
  os.precision(17);
  os << kCheckpointMagic << "\n";
  os << "next_cycle " << c.next_cycle << "\n";
  os << "rng " << c.rng_state << "\n";
  os << "cooldown " << c.frozen_cooldown.size();
  for (int cd : c.frozen_cooldown) os << " " << cd;
  os << "\n";
  const WorkflowCounters& n = c.counters;
  os << "counters " << n.executions << " " << n.dry_runs << " " << n.rollbacks
     << " " << n.solver_failures << " " << n.partial_executions << " "
     << n.commands_failed << " " << n.command_retries << " " << n.replans
     << " " << n.sla_violations << " " << n.feasibility_violations << " "
     << n.faults_injected << " " << n.cordons_fired << "\n";
  os << "ledger " << c.ledger.subproblems << " " << c.ledger.solver_failures
     << " " << c.ledger.greedy_fallbacks << " "
     << c.ledger.secondary_successes << " " << c.ledger.certificate_gap
     << "\n";
  if (c.incremental.valid) {
    // Optional section: absent for non-incremental runs, and readers that
    // predate it (old checkpoints) never wrote it.
    os << "incremental ";
    EncodeIncrementalState(os, c.incremental);
    os << "\n";
  }
  const std::string snapshot = SerializeSnapshot(c.snapshot);
  os << "snapshot " << snapshot.size() << "\n" << snapshot;
  return os.str();
}

StatusOr<WorkflowCheckpoint> DecodeWorkflowCheckpoint(const std::string& text) {
  std::istringstream is(text);
  std::string token;
  auto expect = [&](const char* keyword) -> Status {
    if (!(is >> token) || token != keyword) {
      return InvalidArgumentError(
          StrFormat("checkpoint: expected '%s'", keyword));
    }
    return Status::OK();
  };
  if (!(is >> token) || token != kCheckpointMagic) {
    return InvalidArgumentError("bad checkpoint header");
  }
  WorkflowCheckpoint c;
  RASA_RETURN_IF_ERROR(expect("next_cycle"));
  if (!(is >> c.next_cycle) || c.next_cycle < 0) {
    return InvalidArgumentError("bad checkpoint cycle");
  }
  RASA_RETURN_IF_ERROR(expect("rng"));
  if (!(is >> c.rng_state) || c.rng_state.size() != 64) {
    return InvalidArgumentError("bad checkpoint rng state");
  }
  RASA_RETURN_IF_ERROR(expect("cooldown"));
  size_t services = 0;
  if (!(is >> services) || services > (1u << 24)) {
    return InvalidArgumentError("bad checkpoint cooldown count");
  }
  c.frozen_cooldown.resize(services);
  for (int& cd : c.frozen_cooldown) {
    if (!(is >> cd)) return InvalidArgumentError("truncated cooldowns");
  }
  RASA_RETURN_IF_ERROR(expect("counters"));
  WorkflowCounters& n = c.counters;
  if (!(is >> n.executions >> n.dry_runs >> n.rollbacks >> n.solver_failures >>
        n.partial_executions >> n.commands_failed >> n.command_retries >>
        n.replans >> n.sla_violations >> n.feasibility_violations >>
        n.faults_injected >> n.cordons_fired)) {
    return InvalidArgumentError("truncated checkpoint counters");
  }
  RASA_RETURN_IF_ERROR(expect("ledger"));
  if (!(is >> c.ledger.subproblems >> c.ledger.solver_failures >>
        c.ledger.greedy_fallbacks >> c.ledger.secondary_successes >>
        c.ledger.certificate_gap)) {
    return InvalidArgumentError("truncated checkpoint ledger");
  }
  // The `incremental` section is optional (only written when the delta
  // state is valid; old checkpoints never have it).
  if (!(is >> token) ||
      (token != "incremental" && token != "snapshot")) {
    return InvalidArgumentError("checkpoint: expected 'snapshot'");
  }
  if (token == "incremental") {
    StatusOr<IncrementalState> inc = DecodeIncrementalState(is);
    if (!inc.ok()) return inc.status();
    c.incremental = *std::move(inc);
    RASA_RETURN_IF_ERROR(expect("snapshot"));
  }
  size_t snapshot_bytes = 0;
  if (!(is >> snapshot_bytes)) {
    return InvalidArgumentError("bad checkpoint snapshot size");
  }
  const std::streamoff pos = is.tellg();
  if (pos < 0 || static_cast<size_t>(pos) >= text.size() ||
      text[static_cast<size_t>(pos)] != '\n') {
    return InvalidArgumentError("malformed checkpoint snapshot framing");
  }
  const size_t start = static_cast<size_t>(pos) + 1;
  if (start + snapshot_bytes > text.size()) {
    return InvalidArgumentError("checkpoint snapshot truncated");
  }
  StatusOr<ClusterSnapshot> snapshot =
      DeserializeSnapshot(text.substr(start, snapshot_bytes));
  if (!snapshot.ok()) return snapshot.status();
  c.snapshot = *std::move(snapshot);
  return c;
}

Status SaveWorkflowCheckpoint(const std::string& state_dir,
                              const WorkflowCheckpoint& checkpoint) {
  RASA_RETURN_IF_ERROR(EnsureDirectory(state_dir));
  const std::string path = CheckpointPath(state_dir);
  // Rotate before overwriting: rename is atomic, so at every instant at
  // least one of {checkpoint, checkpoint.prev} holds an intact file.
  std::rename(path.c_str(), PrevCheckpointPath(state_dir).c_str());
  return WriteVersionedFile(path, EncodeWorkflowCheckpoint(checkpoint));
}

StatusOr<LoadedCheckpoint> LoadWorkflowCheckpoint(
    const std::string& state_dir) {
  StatusOr<std::string> current = ReadVersionedFile(CheckpointPath(state_dir));
  if (current.ok()) {
    StatusOr<WorkflowCheckpoint> decoded = DecodeWorkflowCheckpoint(*current);
    if (decoded.ok()) return LoadedCheckpoint{*std::move(decoded), false};
    current = decoded.status();  // fall through to the previous checkpoint
  }
  StatusOr<std::string> prev = ReadVersionedFile(PrevCheckpointPath(state_dir));
  if (prev.ok()) {
    StatusOr<WorkflowCheckpoint> decoded = DecodeWorkflowCheckpoint(*prev);
    if (decoded.ok()) return LoadedCheckpoint{*std::move(decoded), true};
    prev = decoded.status();
  }
  if (current.status().code() == StatusCode::kNotFound &&
      prev.status().code() == StatusCode::kNotFound) {
    return NotFoundError(
        StrFormat("no checkpoint in '%s'", state_dir.c_str()));
  }
  return FailedPreconditionError(StrFormat(
      "no intact checkpoint in '%s' (current: %s; previous: %s)",
      state_dir.c_str(), current.status().message().c_str(),
      prev.status().message().c_str()));
}

// ---------------------------------------------------------------------------
// Journal records

const char* JournalRecordTypeToString(JournalRecordType type) {
  switch (type) {
    case JournalRecordType::kCycleStart: return "cycle_start";
    case JournalRecordType::kDecisionDry: return "dry";
    case JournalRecordType::kDecisionRollback: return "rollback";
    case JournalRecordType::kPlan: return "plan";
    case JournalRecordType::kBatchIntent: return "batch_intent";
    case JournalRecordType::kBatchCommit: return "batch_commit";
    case JournalRecordType::kExecDone: return "exec_done";
    case JournalRecordType::kDriftIntent: return "drift_intent";
    case JournalRecordType::kIncrementalState: return "inc_state";
  }
  return "unknown";
}

std::string EncodeJournalRecord(const JournalRecord& r) {
  std::ostringstream os;
  os.precision(17);
  os << JournalRecordTypeToString(r.type) << " " << r.cycle;
  switch (r.type) {
    case JournalRecordType::kCycleStart:
      os << " " << r.rng_state;
      break;
    case JournalRecordType::kDecisionDry:
      os << " " << r.rng_state << " " << static_cast<int>(r.dry_reason);
      break;
    case JournalRecordType::kDecisionRollback:
      os << " " << r.rng_state << " " << r.frozen_services.size();
      for (int s : r.frozen_services) os << " " << s;
      break;
    case JournalRecordType::kPlan: {
      os << " " << r.rng_state << " " << r.exec_seed << " "
         << r.predicted_affinity << " target " << r.target.size();
      for (const std::array<int, 3>& t : r.target) {
        os << " " << t[0] << " " << t[1] << " " << t[2];
      }
      os << " batches " << r.batches.size();
      for (const std::vector<MigrationCommand>& batch : r.batches) {
        EncodeCommands(os, batch);
      }
      break;
    }
    case JournalRecordType::kBatchIntent:
      os << " " << r.batch;
      EncodeCommands(os, r.commands);
      break;
    case JournalRecordType::kBatchCommit:
      os << " " << r.batch;
      break;
    case JournalRecordType::kExecDone:
      os << " " << (r.reached_target ? 1 : 0) << " " << r.batches_executed
         << " " << r.commands_succeeded << " " << r.commands_failed << " "
         << r.retries << " " << r.replans << " " << r.sla_violations << " "
         << r.feasibility_violations;
      break;
    case JournalRecordType::kDriftIntent:
      os << " " << r.rng_state << " " << r.moves.size();
      for (const DriftMove& m : r.moves) {
        os << " " << m.service << " " << m.from << " " << m.to;
      }
      break;
    case JournalRecordType::kIncrementalState:
      os << " " << r.incremental_state;
      break;
  }
  return os.str();
}

StatusOr<JournalRecord> DecodeJournalRecord(const std::string& payload) {
  std::istringstream is(payload);
  std::string kind;
  JournalRecord r;
  if (!(is >> kind >> r.cycle) || r.cycle < 0) {
    return InvalidArgumentError("journal record: bad header");
  }
  auto read_rng = [&]() -> Status {
    if (!(is >> r.rng_state) || r.rng_state.size() != 64) {
      return InvalidArgumentError("journal record: bad rng state");
    }
    return Status::OK();
  };
  if (kind == "cycle_start") {
    r.type = JournalRecordType::kCycleStart;
    RASA_RETURN_IF_ERROR(read_rng());
  } else if (kind == "dry") {
    r.type = JournalRecordType::kDecisionDry;
    RASA_RETURN_IF_ERROR(read_rng());
    int reason = 0;
    if (!(is >> reason) || reason < 0 || reason > 2) {
      return InvalidArgumentError("journal record: bad dry reason");
    }
    r.dry_reason = static_cast<DryReason>(reason);
  } else if (kind == "rollback") {
    r.type = JournalRecordType::kDecisionRollback;
    RASA_RETURN_IF_ERROR(read_rng());
    size_t n = 0;
    if (!(is >> n) || n > (1u << 24)) {
      return InvalidArgumentError("journal record: bad frozen count");
    }
    r.frozen_services.resize(n);
    for (int& s : r.frozen_services) {
      if (!(is >> s)) {
        return InvalidArgumentError("journal record: truncated frozen list");
      }
    }
  } else if (kind == "plan") {
    r.type = JournalRecordType::kPlan;
    RASA_RETURN_IF_ERROR(read_rng());
    std::string token;
    size_t n = 0;
    if (!(is >> r.exec_seed >> r.predicted_affinity >> token) ||
        token != "target" || !(is >> n) || n > (1u << 26)) {
      return InvalidArgumentError("journal record: bad plan target");
    }
    r.target.resize(n);
    for (std::array<int, 3>& t : r.target) {
      if (!(is >> t[0] >> t[1] >> t[2])) {
        return InvalidArgumentError("journal record: truncated plan target");
      }
    }
    if (!(is >> token) || token != "batches" || !(is >> n) ||
        n > (1u << 20)) {
      return InvalidArgumentError("journal record: bad plan batches");
    }
    r.batches.resize(n);
    for (std::vector<MigrationCommand>& batch : r.batches) {
      if (!DecodeCommands(is, batch)) {
        return InvalidArgumentError("journal record: truncated plan batch");
      }
    }
  } else if (kind == "batch_intent") {
    r.type = JournalRecordType::kBatchIntent;
    if (!(is >> r.batch) || r.batch < 0 || !DecodeCommands(is, r.commands)) {
      return InvalidArgumentError("journal record: bad batch intent");
    }
  } else if (kind == "batch_commit") {
    r.type = JournalRecordType::kBatchCommit;
    if (!(is >> r.batch) || r.batch < 0) {
      return InvalidArgumentError("journal record: bad batch commit");
    }
  } else if (kind == "exec_done") {
    r.type = JournalRecordType::kExecDone;
    int reached = 0;
    if (!(is >> reached >> r.batches_executed >> r.commands_succeeded >>
          r.commands_failed >> r.retries >> r.replans >> r.sla_violations >>
          r.feasibility_violations)) {
      return InvalidArgumentError("journal record: truncated exec_done");
    }
    r.reached_target = reached != 0;
  } else if (kind == "drift_intent") {
    r.type = JournalRecordType::kDriftIntent;
    RASA_RETURN_IF_ERROR(read_rng());
    size_t n = 0;
    if (!(is >> n) || n > (1u << 24)) {
      return InvalidArgumentError("journal record: bad drift count");
    }
    r.moves.resize(n);
    for (DriftMove& m : r.moves) {
      if (!(is >> m.service >> m.from >> m.to)) {
        return InvalidArgumentError("journal record: truncated drift moves");
      }
    }
  } else if (kind == "inc_state") {
    r.type = JournalRecordType::kIncrementalState;
    // Validate the embedded token stream now so a corrupt payload is caught
    // at scan time (torn tail) rather than mid-replay; keep the canonical
    // re-encoding as the stored form.
    StatusOr<IncrementalState> inc = DecodeIncrementalState(is);
    if (!inc.ok()) return inc.status();
    r.incremental_state = EncodeIncrementalStateString(*inc);
  } else {
    return InvalidArgumentError(
        StrFormat("journal record: unknown type '%s'", kind.c_str()));
  }
  return r;
}

StatusOr<WorkflowJournal> WorkflowJournal::Open(const std::string& state_dir) {
  RASA_RETURN_IF_ERROR(EnsureDirectory(state_dir));
  StatusOr<DurableLogWriter> log = DurableLogWriter::Open(JournalPath(state_dir));
  if (!log.ok()) return log.status();
  WorkflowJournal journal;
  journal.log_ = std::move(log).value();
  return journal;
}

Status WorkflowJournal::Append(const JournalRecord& record) {
  return log_.Append(EncodeJournalRecord(record));
}

StatusOr<JournalScan> ReadWorkflowJournal(const std::string& state_dir) {
  StatusOr<DurableLogContents> contents =
      ReadDurableLog(JournalPath(state_dir));
  if (!contents.ok()) return contents.status();
  JournalScan scan;
  scan.torn_tail = contents->torn_tail;
  scan.torn_reason = contents->torn_reason;
  scan.records.reserve(contents->records.size());
  for (const std::string& payload : contents->records) {
    StatusOr<JournalRecord> record = DecodeJournalRecord(payload);
    if (!record.ok()) {
      // An intact frame with an unparsable payload is corruption past the
      // CRC; recovery treats everything from here on as torn.
      scan.torn_tail = true;
      scan.torn_reason = record.status().message();
      break;
    }
    scan.records.push_back(*std::move(record));
  }
  return scan;
}

// ---------------------------------------------------------------------------
// Analysis

StatusOr<RecoveryAnalysis> AnalyzeWorkflowState(const std::string& state_dir) {
  RASA_ASSIGN_OR_RETURN(LoadedCheckpoint loaded,
                        LoadWorkflowCheckpoint(state_dir));
  RecoveryAnalysis analysis;
  analysis.checkpoint = std::move(loaded.checkpoint);
  analysis.used_previous_checkpoint = loaded.used_previous;

  StatusOr<JournalScan> scan = ReadWorkflowJournal(state_dir);
  if (!scan.ok()) {
    if (scan.status().code() == StatusCode::kNotFound) return analysis;
    return scan.status();
  }
  analysis.journal_torn_tail = scan->torn_tail;
  analysis.torn_reason = scan->torn_reason;
  for (JournalRecord& record : scan->records) {
    // Cycles below the checkpoint are fully absorbed by it; their stale
    // records (including earlier recovered crashes) are irrelevant.
    if (record.cycle < analysis.checkpoint.next_cycle) continue;
    CycleJournal& cj = analysis.cycles[record.cycle];
    cj.started = true;
    switch (record.type) {
      case JournalRecordType::kCycleStart:
        break;
      case JournalRecordType::kDecisionDry:
        cj.decision = CycleJournal::Decision::kDry;
        cj.decision_record = std::move(record);
        break;
      case JournalRecordType::kDecisionRollback:
        cj.decision = CycleJournal::Decision::kRollback;
        cj.decision_record = std::move(record);
        break;
      case JournalRecordType::kPlan:
        cj.decision = CycleJournal::Decision::kExecute;
        cj.have_plan = true;
        cj.plan = std::move(record);
        break;
      case JournalRecordType::kBatchIntent:
        cj.batch_intents[record.batch] = std::move(record);
        break;
      case JournalRecordType::kBatchCommit:
        cj.batch_commits.insert(record.batch);
        break;
      case JournalRecordType::kExecDone:
        cj.exec_done = true;
        cj.exec_record = std::move(record);
        break;
      case JournalRecordType::kDriftIntent:
        cj.drift_started = true;
        cj.drift_record = std::move(record);
        break;
      case JournalRecordType::kIncrementalState:
        cj.has_incremental = true;
        cj.incremental_record = std::move(record);
        break;
    }
  }
  return analysis;
}

std::vector<CommandClassification> ClassifyInFlightCommands(
    const Cluster& cluster, const CycleJournal& cj,
    const Placement& cycle_start, const Placement& observed,
    bool journal_torn_tail) {
  std::vector<CommandClassification> out;
  if (cj.decision != CycleJournal::Decision::kExecute) return out;
  Placement expected = CopyCounts(cluster, cycle_start);
  const int num_batches = NumBatches(cj);
  bool past_frontier = false;
  for (int b = 0; b < num_batches; ++b) {
    std::vector<MigrationCommand> commands;
    if (!BatchCommands(cj, b, commands)) break;
    if (!past_frontier && (cj.batch_commits.count(b) || cj.exec_done)) {
      // Committed (or execution finished): every command applied.
      for (const MigrationCommand& cmd : commands) {
        ApplyCommand(expected, cmd);
        out.push_back({b, cmd, CommandFate::kApplied});
      }
      continue;
    }
    if (!past_frontier) {
      // The in-flight batch: longest applied prefix that explains the
      // observed placement. A torn journal tail means the frame recording
      // this batch's fate may have been lost, so an unexplainable state is
      // classified kTorn rather than guessed.
      int prefix = -1;
      Placement probe = CopyCounts(cluster, expected);
      if (SymmetricDiff(probe, observed) == 0) prefix = 0;
      for (int j = 1; j <= static_cast<int>(commands.size()); ++j) {
        if (!ApplyCommand(probe, commands[j - 1])) break;
        if (SymmetricDiff(probe, observed) == 0) prefix = j;
      }
      for (int j = 0; j < static_cast<int>(commands.size()); ++j) {
        CommandFate fate;
        if (prefix < 0) {
          fate = CommandFate::kTorn;
        } else if (j < prefix) {
          fate = CommandFate::kApplied;
        } else {
          fate = journal_torn_tail && j == prefix ? CommandFate::kTorn
                                                  : CommandFate::kNotApplied;
        }
        out.push_back({b, commands[j], fate});
      }
      past_frontier = true;
      continue;
    }
    // Batches after the in-flight one never started.
    for (const MigrationCommand& cmd : commands) {
      out.push_back({b, cmd, CommandFate::kNotApplied});
    }
  }
  return out;
}

StatusOr<RollForwardResult> RollForwardExecution(
    const Cluster& cluster, const CycleJournal& cj,
    const Placement& cycle_start, Placement& observed,
    double min_alive_fraction, WorkflowJournal* journal) {
  if (!cj.have_plan) {
    return InternalError("roll-forward without a journaled plan");
  }
  RollForwardResult result;
  const Placement target = TargetFromPlan(cluster, cj.plan);
  Placement expected = CopyCounts(cluster, cycle_start);
  const int num_batches = NumBatches(cj);
  bool abandon = false;
  bool past_frontier = false;

  for (int b = 0; b < num_batches && !abandon; ++b) {
    std::vector<MigrationCommand> commands;
    if (!BatchCommands(cj, b, commands)) {
      abandon = true;  // replan rewrote batches the journal never recorded
      break;
    }
    if (!past_frontier && cj.batch_commits.count(b)) {
      for (const MigrationCommand& cmd : commands) {
        if (!ApplyCommand(expected, cmd)) {
          abandon = true;
          break;
        }
        ++result.commands_pre_applied;
      }
      continue;
    }
    if (!past_frontier) {
      past_frontier = true;
      // Find the applied prefix of the in-flight batch.
      int prefix = -1;
      Placement probe = CopyCounts(cluster, expected);
      if (SymmetricDiff(probe, observed) == 0) prefix = 0;
      for (int j = 1; j <= static_cast<int>(commands.size()); ++j) {
        if (!ApplyCommand(probe, commands[j - 1])) break;
        if (SymmetricDiff(probe, observed) == 0) prefix = j;
      }
      if (prefix < 0) {
        abandon = true;  // observed world matches no journaled prefix
        break;
      }
      result.commands_pre_applied += prefix;
      for (int j = prefix; j < static_cast<int>(commands.size()); ++j) {
        if (!ApplyCommand(observed, commands[j])) {
          abandon = true;
          break;
        }
        ++result.commands_rolled_forward;
      }
      if (abandon) break;
      ++result.batches_rolled_forward;
      AuditState(cluster, observed, min_alive_fraction,
                 result.sla_violations, result.feasibility_violations);
      if (journal != nullptr && !cj.batch_commits.count(b)) {
        JournalRecord commit;
        commit.type = JournalRecordType::kBatchCommit;
        commit.cycle = cj.plan.cycle;
        commit.batch = b;
        RASA_RETURN_IF_ERROR(journal->Append(commit));
      }
      continue;
    }
    // Batches that never started: execute them in full.
    for (const MigrationCommand& cmd : commands) {
      if (!ApplyCommand(observed, cmd)) {
        abandon = true;
        break;
      }
      ++result.commands_rolled_forward;
    }
    if (abandon) break;
    ++result.batches_rolled_forward;
    AuditState(cluster, observed, min_alive_fraction, result.sla_violations,
               result.feasibility_violations);
    if (journal != nullptr) {
      JournalRecord commit;
      commit.type = JournalRecordType::kBatchCommit;
      commit.cycle = cj.plan.cycle;
      commit.batch = b;
      RASA_RETURN_IF_ERROR(journal->Append(commit));
    }
  }

  if (abandon || SymmetricDiff(observed, target) != 0) {
    // The journaled path cannot be replayed against this world (chaos
    // interference, lost replan records). Reconcile straight to the
    // journaled target instead — the intent is durable even when the path
    // is not.
    result.abandoned = abandon;
    ReconcileToTarget(cluster, target, observed,
                      result.feasibility_violations);
    AuditState(cluster, observed, min_alive_fraction, result.sla_violations,
               result.feasibility_violations);
  }
  result.reached_target = SymmetricDiff(observed, target) == 0;

  if (journal != nullptr && !cj.exec_done) {
    JournalRecord done;
    done.type = JournalRecordType::kExecDone;
    done.cycle = cj.plan.cycle;
    done.reached_target = result.reached_target;
    done.batches_executed = num_batches;
    done.commands_succeeded =
        result.commands_pre_applied + result.commands_rolled_forward;
    done.sla_violations = result.sla_violations;
    done.feasibility_violations = result.feasibility_violations;
    RASA_RETURN_IF_ERROR(journal->Append(done));
  }
  return result;
}

int RollForwardDrift(const Cluster& cluster,
                     const std::vector<DriftMove>& moves,
                     const Placement& pre_drift, Placement& observed) {
  int prefix = -1;
  Placement probe = CopyCounts(cluster, pre_drift);
  if (SymmetricDiff(probe, observed) == 0) prefix = 0;
  for (int j = 1; j <= static_cast<int>(moves.size()); ++j) {
    const DriftMove& m = moves[j - 1];
    if (!probe.Remove(m.from, m.service).ok()) break;
    probe.Add(m.to, m.service);
    if (SymmetricDiff(probe, observed) == 0) prefix = j;
  }
  if (prefix < 0) return -1;
  int applied = 0;
  for (int j = prefix; j < static_cast<int>(moves.size()); ++j) {
    const DriftMove& m = moves[j];
    if (!observed.Remove(m.from, m.service).ok()) continue;
    observed.Add(m.to, m.service);
    ++applied;
  }
  return applied;
}

StatusOr<Placement> ReconstructObservedPlacement(
    const RecoveryAnalysis& analysis) {
  const ClusterSnapshot& snapshot = analysis.checkpoint.snapshot;
  if (snapshot.cluster == nullptr) {
    return InternalError("checkpoint has no cluster snapshot");
  }
  const Cluster& cluster = *snapshot.cluster;
  Placement world = CopyCounts(cluster, snapshot.original_placement);
  // Committed work is durably acknowledged; anything in flight is treated
  // as not-applied (the resume's roll-forward re-derives it). Drift intents
  // are likewise left to the roll-forward.
  for (const auto& [cycle, cj] : analysis.cycles) {
    (void)cycle;
    const int num_batches = NumBatches(cj);
    for (int b = 0; b < num_batches; ++b) {
      if (!cj.batch_commits.count(b) && !cj.exec_done) break;
      std::vector<MigrationCommand> commands;
      if (!BatchCommands(cj, b, commands)) break;
      for (const MigrationCommand& cmd : commands) ApplyCommand(world, cmd);
    }
  }
  return world;
}

StatusOr<std::string> FormatRecoveryInspection(const std::string& state_dir) {
  RASA_ASSIGN_OR_RETURN(RecoveryAnalysis analysis,
                        AnalyzeWorkflowState(state_dir));
  const WorkflowCheckpoint& c = analysis.checkpoint;
  std::ostringstream os;
  os << "state directory: " << state_dir << "\n";
  os << "checkpoint: next_cycle=" << c.next_cycle
     << (analysis.used_previous_checkpoint
             ? " (current file torn; recovered from checkpoint.prev)"
             : "")
     << "\n";
  if (c.snapshot.cluster != nullptr) {
    int containers = 0;
    for (int s = 0; s < c.snapshot.cluster->num_services(); ++s) {
      containers += c.snapshot.original_placement.TotalOf(s);
    }
    os << "  snapshot: " << c.snapshot.cluster->num_services()
       << " services, " << c.snapshot.cluster->num_machines()
       << " machines, " << containers << " containers\n";
  }
  os << "  counters: executions=" << c.counters.executions
     << " dry_runs=" << c.counters.dry_runs
     << " rollbacks=" << c.counters.rollbacks
     << " sla_violations=" << c.counters.sla_violations
     << " feasibility_violations=" << c.counters.feasibility_violations
     << "\n";
  os << "  ledger: subproblems=" << c.ledger.subproblems
     << " greedy_fallbacks=" << c.ledger.greedy_fallbacks << " gap="
     << StrFormat("%.4f", c.ledger.certificate_gap) << "\n";
  if (analysis.journal_torn_tail) {
    os << "journal: TORN TAIL (" << analysis.torn_reason << ")\n";
  }
  if (analysis.cycles.empty()) {
    os << "journal: no work past the checkpoint (clean shutdown)\n";
    return os.str();
  }
  StatusOr<Placement> world = ReconstructObservedPlacement(analysis);
  for (const auto& [cycle, cj] : analysis.cycles) {
    os << "cycle " << cycle << ": ";
    switch (cj.decision) {
      case CycleJournal::Decision::kNone:
        os << "started, no decision journaled\n";
        break;
      case CycleJournal::Decision::kDry:
        os << "dry run (reason "
           << static_cast<int>(cj.decision_record.dry_reason) << ")\n";
        break;
      case CycleJournal::Decision::kRollback:
        os << "rollback (" << cj.decision_record.frozen_services.size()
           << " services frozen)\n";
        break;
      case CycleJournal::Decision::kExecute: {
        os << "execution: " << cj.plan.batches.size()
           << " planned batches, " << cj.batch_commits.size()
           << " committed" << (cj.exec_done ? ", finished" : ", IN FLIGHT")
           << "\n";
        if (!cj.exec_done && world.ok() &&
            c.snapshot.cluster != nullptr) {
          const std::vector<CommandClassification> fates =
              ClassifyInFlightCommands(*c.snapshot.cluster, cj,
                                       c.snapshot.original_placement, *world,
                                       analysis.journal_torn_tail);
          int applied = 0, not_applied = 0, torn = 0;
          for (const CommandClassification& f : fates) {
            if (f.fate == CommandFate::kApplied) ++applied;
            else if (f.fate == CommandFate::kNotApplied) ++not_applied;
            else ++torn;
          }
          os << "  command classification: " << applied << " applied, "
             << not_applied << " not applied, " << torn << " torn\n";
          for (const CommandClassification& f : fates) {
            if (f.fate == CommandFate::kApplied) continue;
            os << "    batch " << f.batch << " "
               << (f.command.type == MigrationCommandType::kDelete ? "delete"
                                                                   : "create")
               << " service " << f.command.service << " machine "
               << f.command.machine << ": "
               << (f.fate == CommandFate::kNotApplied ? "not applied"
                                                      : "torn")
               << "\n";
          }
        }
        break;
      }
    }
    if (cj.drift_started) {
      os << "  drift intent journaled: " << cj.drift_record.moves.size()
         << " moves\n";
    }
  }
  os << "resume with: rasa_cli workflow --state-dir=" << state_dir
     << " --resume\n";
  return os.str();
}

}  // namespace rasa
