#ifndef RASA_CORE_PARTITIONING_H_
#define RASA_CORE_PARTITIONING_H_

#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/rng.h"
#include "core/subproblem.h"

namespace rasa {

/// Which service-partitioning algorithm to run (Fig. 6 ablation).
enum class PartitionMode {
  /// The paper's four-stage pipeline (§IV-B): non-affinity -> master ->
  /// compatibility -> loss-minimization balanced partitioning.
  kMultiStage,
  /// Everything in one subproblem (NO-PARTITION).
  kNoPartition,
  /// Uniformly random balanced service partition (RANDOM-PARTITION).
  kRandom,
  /// Balanced min-weight cut via the KaHIP-style partitioner (KAHIP).
  kKahip,
};

struct PartitioningOptions {
  PartitionMode mode = PartitionMode::kMultiStage;
  /// alpha = master_coefficient * ln(N)^master_exponent / N (§V-B); the
  /// paper deploys 45 * ln^0.66(N) / N.
  double master_coefficient = 45.0;
  double master_exponent = 0.66;
  /// If in [0, 1], overrides the formula (used by the Fig. 7 sweep).
  double master_ratio_override = -1.0;
  /// Loss-min balanced partitioning splits any crucial set larger than this.
  int max_subproblem_services = 32;
  /// The paper runs |E| BFS trials; we cap them for bounded runtime.
  int bfs_trials_cap = 128;
  double balance_factor = 2.0;
  uint64_t seed = 7;
};

struct PartitionStats {
  int num_services = 0;
  int num_trivial_services = 0;
  int num_crucial_services = 0;
  int num_subproblems = 0;
  /// alpha actually applied at the master stage (multi-stage mode only).
  double master_ratio = 0.0;
  /// Total affinity (graph normalized to 1) carried by master services.
  double master_affinity = 0.0;
  /// Share of total affinity on edges internal to some subproblem; the
  /// partitioning optimality loss is 1 - crucial_internal_affinity.
  double crucial_internal_affinity = 0.0;
  double elapsed_seconds = 0.0;
};

struct PartitionResult {
  std::vector<Subproblem> subproblems;
  /// Services left in place (non-affinity + non-master).
  std::vector<int> trivial_services;
  /// Current placement with all crucial services' containers removed:
  /// machine residuals already account for trivial containers (§IV-B5).
  Placement base_placement;
  PartitionStats stats;
};

/// Runs service partitioning + machine assignment on a cluster snapshot.
/// `current` is the running placement (machine shaving keeps trivial
/// containers where they are). Machines are divided among subproblems per
/// spec, proportionally to each subproblem's requested resources.
PartitionResult PartitionServices(const Cluster& cluster,
                                  const Placement& current,
                                  const PartitioningOptions& options);

/// The master ratio formula alpha(N) with the paper's constants, clamped to
/// (0, 1]. Exposed for the Fig. 7 sweep.
double MasterRatio(int num_services, double coefficient, double exponent);

}  // namespace rasa

#endif  // RASA_CORE_PARTITIONING_H_
