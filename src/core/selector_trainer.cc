#include "core/selector_trainer.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "cluster/generator.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/partitioning.h"

namespace rasa {

SelectorDataset GenerateSelectorDataset(
    const SelectorTrainingOptions& options) {
  SelectorDataset dataset;
  Rng rng(options.seed);

  // Four training clusters T1-T4: same generator family as M1-M4 but
  // different seeds and slightly different shapes.
  std::vector<ClusterSpec> specs = TableTwoSpecs(options.cluster_scale);
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = "T" + std::to_string(i + 1);
    specs[i].seed = options.seed + 1000 * (i + 1);
  }

  static const int kSizeTargets[] = {8, 12, 16, 24, 32};
  int produced = 0;
  for (int pass = 0; produced < options.num_samples && pass < 16; ++pass) {
    for (size_t ci = 0; ci < specs.size() && produced < options.num_samples;
         ++ci) {
      ClusterSpec spec = specs[ci];
      spec.seed += 131 * pass;
      StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
      if (!snapshot.ok()) {
        RASA_LOG(Warning) << "training cluster failed: "
                          << snapshot.status().ToString();
        continue;
      }
      PartitioningOptions part;
      part.max_subproblem_services =
          kSizeTargets[rng.NextUint64(std::size(kSizeTargets))];
      part.seed = rng.Next();
      PartitionResult partition = PartitionServices(
          *snapshot->cluster, snapshot->original_placement, part);

      for (const Subproblem& sp : partition.subproblems) {
        if (produced >= options.num_samples) break;
        if (sp.services.empty() || sp.machines.empty()) continue;
        LabeledSample sample;
        const Deadline deadline =
            Deadline::AfterSeconds(options.label_timeout_seconds);
        StatusOr<SubproblemSolution> cg = RunPoolAlgorithm(
            PoolAlgorithm::kCg, *snapshot->cluster, sp,
            partition.base_placement, snapshot->original_placement, deadline,
            rng.Next());
        const Deadline deadline2 =
            Deadline::AfterSeconds(options.label_timeout_seconds);
        StatusOr<SubproblemSolution> mip = RunPoolAlgorithm(
            PoolAlgorithm::kMip, *snapshot->cluster, sp,
            partition.base_placement, snapshot->original_placement, deadline2,
            rng.Next());
        sample.cg_objective = cg.ok() ? cg->gained_affinity : -1.0;
        sample.mip_objective = mip.ok() ? mip->gained_affinity : -1.0;
        // Label by objective; exact ties go to MIP (its answer is certified
        // when it finishes).
        sample.label = sample.cg_objective > sample.mip_objective ? 0 : 1;
        sample.graph = BuildSubproblemFeatureGraph(*snapshot->cluster, sp);
        sample.mean_features = sample.graph.features.MeanRows();
        if (sample.label == 0) {
          ++dataset.cg_labels;
        } else {
          ++dataset.mip_labels;
        }
        dataset.samples.push_back(std::move(sample));
        ++produced;
      }
    }
  }
  return dataset;
}

TrainedSelectors TrainSelectors(const SelectorDataset& dataset,
                                const SelectorTrainingOptions& options) {
  TrainedSelectors out;
  out.dataset_size = static_cast<int>(dataset.samples.size());
  out.gcn = GcnClassifier(kSelectorFeatureDim, options.hidden_dim, 2,
                          options.seed);
  out.mlp = MlpClassifier(kSelectorFeatureDim, options.hidden_dim, 2,
                          options.seed);
  if (dataset.samples.empty()) return out;

  std::vector<FeatureGraph> graphs;
  std::vector<Matrix> means;
  std::vector<int> labels;
  for (const LabeledSample& s : dataset.samples) {
    graphs.push_back(s.graph);
    means.push_back(s.mean_features);
    labels.push_back(s.label);
  }
  out.gcn.Fit(graphs, labels, options.epochs, options.learning_rate,
              options.seed);
  out.mlp.Fit(means, labels, options.epochs, options.learning_rate,
              options.seed);
  out.gcn_train_accuracy = out.gcn.Accuracy(graphs, labels);
  out.mlp_train_accuracy = out.mlp.Accuracy(means, labels);
  return out;
}

std::string ResolveSelectorCachePrefix(const std::string& explicit_prefix) {
  if (!explicit_prefix.empty()) return explicit_prefix;
  const char* env = std::getenv("RASA_SELECTOR_CACHE");
  if (env != nullptr && env[0] != '\0') return env;
  std::error_code ec;
  std::filesystem::create_directories(".rasa_cache", ec);
  if (ec) {
    RASA_LOG(Warning) << "cannot create .rasa_cache/ (" << ec.message()
                      << "); caching selector weights in the working dir";
    return "rasa_selector_cache";
  }
  return ".rasa_cache/rasa_selector_cache";
}

StatusOr<TrainedSelectors> GetOrTrainSelectors(
    const std::string& cache_prefix, const SelectorTrainingOptions& options) {
  StatusOr<GcnClassifier> gcn =
      GcnClassifier::LoadFromFile(cache_prefix + ".gcn");
  StatusOr<MlpClassifier> mlp =
      MlpClassifier::LoadFromFile(cache_prefix + ".mlp");
  if (gcn.ok() && mlp.ok()) {
    TrainedSelectors out;
    out.gcn = std::move(gcn).value();
    out.mlp = std::move(mlp).value();
    return out;
  }
  RASA_LOG(Info) << "training selectors (cache miss: " << cache_prefix << ")";
  const SelectorDataset dataset = GenerateSelectorDataset(options);
  TrainedSelectors trained = TrainSelectors(dataset, options);
  Status save = trained.gcn.SaveToFile(cache_prefix + ".gcn");
  if (save.ok()) save = trained.mlp.SaveToFile(cache_prefix + ".mlp");
  if (!save.ok()) {
    RASA_LOG(Warning) << "could not cache selector weights: "
                      << save.ToString();
  }
  return trained;
}

StatusOr<GcnClassifier> GetOrTrainGcn(const std::string& cache_path,
                                      const SelectorTrainingOptions& options) {
  StatusOr<GcnClassifier> cached = GcnClassifier::LoadFromFile(cache_path);
  if (cached.ok()) return cached;
  RASA_LOG(Info) << "training GCN selector (cache miss: " << cache_path << ")";
  const SelectorDataset dataset = GenerateSelectorDataset(options);
  TrainedSelectors trained = TrainSelectors(dataset, options);
  const Status save = trained.gcn.SaveToFile(cache_path);
  if (!save.ok()) {
    RASA_LOG(Warning) << "could not cache GCN weights: " << save.ToString();
  }
  return trained.gcn;
}

}  // namespace rasa
