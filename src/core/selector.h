#ifndef RASA_CORE_SELECTOR_H_
#define RASA_CORE_SELECTOR_H_

#include <vector>

#include "cluster/cluster.h"
#include "core/algorithm_pool.h"
#include "core/subproblem.h"
#include "ml/feature_graph.h"
#include "ml/gcn.h"

namespace rasa {

class ThreadPool;

/// Algorithm-selection policies compared in §V-C.
enum class SelectorPolicy {
  kAlwaysCg,   // label every subproblem CG
  kAlwaysMip,  // label every subproblem MIP
  kHeuristic,  // avg containers/service vs avg machines/spec rule
  kMlp,        // MLP over mean features (ignores topology)
  kGcn,        // the paper's GCN graph classifier
};

const char* SelectorPolicyToString(SelectorPolicy policy);

/// Number of per-service features in the classifier input. The paper uses
/// [r_s, d_s]; we append the subproblem's machines-per-service ratio and the
/// service's affinity degree so scale information survives mean pooling
/// (documented in DESIGN.md).
inline constexpr int kSelectorFeatureDim = 4;

/// Builds the feature graph \hat G_k of Definition 2 for a subproblem.
FeatureGraph BuildSubproblemFeatureGraph(const Cluster& cluster,
                                         const Subproblem& subproblem);

/// Mean of the vertex features (the MLP baseline's input).
Matrix MeanSubproblemFeatures(const Cluster& cluster,
                              const Subproblem& subproblem);

/// Picks a pool algorithm per subproblem according to a policy. GCN/MLP
/// policies require the corresponding trained model.
class AlgorithmSelector {
 public:
  /// Fixed or heuristic policies (no model needed).
  explicit AlgorithmSelector(SelectorPolicy policy);
  /// GCN policy.
  explicit AlgorithmSelector(GcnClassifier gcn);
  /// MLP policy.
  explicit AlgorithmSelector(MlpClassifier mlp);

  SelectorPolicy policy() const { return policy_; }

  PoolAlgorithm Select(const Cluster& cluster,
                       const Subproblem& subproblem) const;

  /// Selects for every subproblem at once. With a pool, feature-graph
  /// construction and model inference fan out one subproblem per task (the
  /// GCN forward pass is the hot kernel at production subproblem counts);
  /// selection is pure, so the result is identical to a Select loop
  /// regardless of scheduling.
  std::vector<PoolAlgorithm> SelectBatch(
      const Cluster& cluster, const std::vector<Subproblem>& subproblems,
      ThreadPool* pool = nullptr) const;

 private:
  SelectorPolicy policy_;
  GcnClassifier gcn_;
  MlpClassifier mlp_;
};

/// The empirical HEURISTIC baseline (§V-C): if the average container count
/// per service exceeds the average machine count per machine spec, choose
/// CG; otherwise MIP.
PoolAlgorithm HeuristicSelect(const Cluster& cluster,
                              const Subproblem& subproblem);

}  // namespace rasa

#endif  // RASA_CORE_SELECTOR_H_
