#include "core/algorithm_pool.h"

#include "core/cg.h"
#include "core/mip_algorithm.h"

namespace rasa {

const char* PoolAlgorithmToString(PoolAlgorithm algorithm) {
  switch (algorithm) {
    case PoolAlgorithm::kCg:
      return "CG";
    case PoolAlgorithm::kMip:
      return "MIP";
  }
  return "UNKNOWN";
}

StatusOr<SubproblemSolution> RunPoolAlgorithm(PoolAlgorithm algorithm,
                                              const Cluster& cluster,
                                              const Subproblem& subproblem,
                                              const Placement& base,
                                              const Placement& original,
                                              const Deadline& deadline,
                                              uint64_t seed) {
  switch (algorithm) {
    case PoolAlgorithm::kCg: {
      CgOptions options;
      options.deadline = deadline;
      options.seed = seed;
      return SolveSubproblemCg(cluster, subproblem, base, original, options);
    }
    case PoolAlgorithm::kMip: {
      MipAlgorithmOptions options;
      options.deadline = deadline;
      options.seed = seed;
      return SolveSubproblemMip(cluster, subproblem, base, options);
    }
  }
  return InvalidArgumentError("unknown pool algorithm");
}

}  // namespace rasa
