#include "core/algorithm_pool.h"

#include "common/metrics.h"
#include "core/cg.h"
#include "core/mip_algorithm.h"

namespace rasa {
namespace {

// Per-algorithm pick/outcome/latency metrics (observation-only; MIP
// gap/node metrics are recorded next to the solver in mip_algorithm.cc).
struct PoolMetrics {
  Counter& picks;
  Counter& failures;
  Histogram& seconds;
};

PoolMetrics& MetricsFor(PoolAlgorithm algorithm) {
  MetricRegistry& reg = MetricRegistry::Default();
  static PoolMetrics cg{reg.GetCounter("pool.cg_picks"),
                        reg.GetCounter("pool.cg_failures"),
                        reg.GetHistogram("pool.cg_seconds")};
  static PoolMetrics mip{reg.GetCounter("pool.mip_picks"),
                         reg.GetCounter("pool.mip_failures"),
                         reg.GetHistogram("pool.mip_seconds")};
  return algorithm == PoolAlgorithm::kCg ? cg : mip;
}

}  // namespace

const char* PoolAlgorithmToString(PoolAlgorithm algorithm) {
  switch (algorithm) {
    case PoolAlgorithm::kCg:
      return "CG";
    case PoolAlgorithm::kMip:
      return "MIP";
  }
  return "UNKNOWN";
}

StatusOr<SubproblemSolution> RunPoolAlgorithm(
    PoolAlgorithm algorithm, const Cluster& cluster,
    const Subproblem& subproblem, const Placement& base,
    const Placement& original, const Deadline& deadline, uint64_t seed,
    PoolAttemptStats* stats, const Placement* mip_incumbent) {
  PoolMetrics& metrics = MetricsFor(algorithm);
  metrics.picks.Increment();
  Stopwatch timer;
  StatusOr<SubproblemSolution> result =
      InvalidArgumentError("unknown pool algorithm");
  if (stats != nullptr) *stats = PoolAttemptStats{};
  switch (algorithm) {
    case PoolAlgorithm::kCg: {
      CgOptions options;
      options.deadline = deadline;
      options.seed = seed;
      CgStats cg_stats;
      result = SolveSubproblemCg(cluster, subproblem, base, original, options,
                                 &cg_stats);
      MetricRegistry& reg = MetricRegistry::Default();
      static Histogram& rounds = reg.GetHistogram("pool.cg_rounds");
      static Histogram& patterns = reg.GetHistogram("pool.cg_patterns");
      rounds.Observe(static_cast<double>(cg_stats.rounds));
      patterns.Observe(static_cast<double>(cg_stats.patterns_generated));
      // Solver-core introspection: master basis reuse across CG rounds.
      static Counter& masters = reg.GetCounter("solver.cg_master_solves");
      static Counter& warm = reg.GetCounter("solver.cg_master_warm_started");
      static Counter& refactor = reg.GetCounter("solver.refactorizations");
      static Counter& lp_pivots = reg.GetCounter("solver.lp_pivots");
      static Histogram& eta = reg.GetHistogram("solver.max_eta_length");
      masters.Increment(static_cast<uint64_t>(cg_stats.master_solves));
      warm.Increment(static_cast<uint64_t>(cg_stats.master_warm_started));
      refactor.Increment(static_cast<uint64_t>(cg_stats.refactorizations));
      lp_pivots.Increment(static_cast<uint64_t>(cg_stats.lp_iterations));
      eta.Observe(static_cast<double>(cg_stats.max_eta_length));
      if (stats != nullptr) {
        stats->has_cg = true;
        stats->cg = cg_stats;
      }
      break;
    }
    case PoolAlgorithm::kMip: {
      MipAlgorithmOptions options;
      options.deadline = deadline;
      options.seed = seed;
      options.incumbent_hint = mip_incumbent;
      result = SolveSubproblemMip(cluster, subproblem, base, options,
                                  stats != nullptr ? &stats->mip : nullptr);
      if (stats != nullptr) stats->has_mip = true;
      break;
    }
  }
  const double seconds = timer.ElapsedSeconds();
  metrics.seconds.Observe(seconds);
  if (stats != nullptr) {
    stats->algorithm = algorithm;
    stats->seconds = seconds;
  }
  if (!result.ok()) metrics.failures.Increment();
  return result;
}

}  // namespace rasa
