#ifndef RASA_CORE_ALGORITHM_POOL_H_
#define RASA_CORE_ALGORITHM_POOL_H_

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/statusor.h"
#include "common/timer.h"
#include "core/cg.h"
#include "core/mip_algorithm.h"
#include "core/subproblem.h"

namespace rasa {

/// The scheduling algorithm pool (§IV-C): column generation and MIP.
enum class PoolAlgorithm { kCg = 0, kMip = 1 };

const char* PoolAlgorithmToString(PoolAlgorithm algorithm);

/// Everything one pool-algorithm attempt reveals about itself, captured for
/// the solve ledger (observation-only — nothing here steers the solve).
struct PoolAttemptStats {
  PoolAlgorithm algorithm = PoolAlgorithm::kCg;
  double seconds = 0.0;
  /// Exactly one of the two is populated, matching `algorithm`.
  bool has_cg = false;
  CgStats cg;
  bool has_mip = false;
  SubproblemMipStats mip;
};

/// Runs one pool algorithm on a subproblem. `base` holds the trivial
/// residents (defines residual capacities); `original` is the pre-RASA
/// placement (CG seeds patterns from it). Neither is modified. `stats`,
/// when non-null, receives the attempt's solver introspection.
/// `mip_incumbent`, when non-null, offers an extra feasible placement (the
/// incremental path's prior incumbent) as the MIP warm start — see
/// MipAlgorithmOptions::incumbent_hint; the CG branch ignores it (CG warm
/// starts from `original`).
StatusOr<SubproblemSolution> RunPoolAlgorithm(
    PoolAlgorithm algorithm, const Cluster& cluster,
    const Subproblem& subproblem, const Placement& base,
    const Placement& original, const Deadline& deadline, uint64_t seed = 29,
    PoolAttemptStats* stats = nullptr,
    const Placement* mip_incumbent = nullptr);

}  // namespace rasa

#endif  // RASA_CORE_ALGORITHM_POOL_H_
