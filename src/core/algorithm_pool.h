#ifndef RASA_CORE_ALGORITHM_POOL_H_
#define RASA_CORE_ALGORITHM_POOL_H_

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/statusor.h"
#include "common/timer.h"
#include "core/subproblem.h"

namespace rasa {

/// The scheduling algorithm pool (§IV-C): column generation and MIP.
enum class PoolAlgorithm { kCg = 0, kMip = 1 };

const char* PoolAlgorithmToString(PoolAlgorithm algorithm);

/// Runs one pool algorithm on a subproblem. `base` holds the trivial
/// residents (defines residual capacities); `original` is the pre-RASA
/// placement (CG seeds patterns from it). Neither is modified.
StatusOr<SubproblemSolution> RunPoolAlgorithm(PoolAlgorithm algorithm,
                                              const Cluster& cluster,
                                              const Subproblem& subproblem,
                                              const Placement& base,
                                              const Placement& original,
                                              const Deadline& deadline,
                                              uint64_t seed = 29);

}  // namespace rasa

#endif  // RASA_CORE_ALGORITHM_POOL_H_
