#include "core/rasa.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/greedy.h"
#include "core/local_search.h"
#include "core/objective.h"

namespace rasa {
namespace {

// Default-scheduler fallback: least-allocated filter-and-score placement of
// one container; returns the machine used or -1.
int FallbackPlaceOne(const Cluster& cluster, Placement& working, int service) {
  int best = -1;
  double best_score = -1e300;
  for (int m = 0; m < cluster.num_machines(); ++m) {
    if (!working.CanPlace(m, service)) continue;
    double min_free_frac = 1.0;
    for (int r = 0; r < cluster.num_resources(); ++r) {
      const double cap = cluster.machine(m).capacity[r];
      if (cap <= 0.0) continue;
      min_free_frac = std::min(min_free_frac,
                               working.FreeResource(m, r) / cap);
    }
    if (min_free_frac > best_score) {
      best_score = min_free_frac;
      best = m;
    }
  }
  if (best >= 0) working.Add(best, service);
  return best;
}

}  // namespace

StatusOr<RasaResult> RasaOptimizer::Optimize(const Cluster& cluster,
                                             const Placement& current) const {
  Stopwatch timer;
  const Deadline deadline = Deadline::AfterSeconds(options_.timeout_seconds);
  Rng rng(options_.seed);

  RasaResult result;
  result.original_gained_affinity = GainedAffinity(cluster, current);

  // Phase 1: service partitioning + machine assignment.
  PartitionResult partition =
      PartitionServices(cluster, current, options_.partitioning);
  result.partition_stats = partition.stats;

  // Phase 2: per-subproblem algorithm selection + independent solves,
  // highest internal affinity first so the deadline starves only the tail.
  std::vector<int> order(partition.subproblems.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return partition.subproblems[a].internal_affinity >
           partition.subproblems[b].internal_affinity;
  });

  Placement working = partition.base_placement;
  std::vector<int> unplaced(cluster.num_services(), 0);
  double remaining_affinity = 0.0;
  for (const Subproblem& sp : partition.subproblems) {
    remaining_affinity += sp.internal_affinity;
  }

  // Degradation ladder state: per-algorithm failure counts within this run.
  // An algorithm that keeps failing (solver error / OOT) trips its circuit
  // breaker and is skipped for the remaining subproblems.
  int algorithm_failures[2] = {0, 0};
  auto breaker_open = [&](PoolAlgorithm a) {
    return options_.circuit_breaker_failures > 0 &&
           algorithm_failures[static_cast<int>(a)] >=
               options_.circuit_breaker_failures;
  };

  for (int idx : order) {
    const Subproblem& sp = partition.subproblems[idx];
    SubproblemReport report;
    report.num_services = static_cast<int>(sp.services.size());
    report.num_machines = static_cast<int>(sp.machines.size());
    report.internal_affinity = sp.internal_affinity;

    Stopwatch sp_timer;
    // Affinity-weighted share of the remaining budget, floored so even
    // zero-affinity subproblems get a sliver, and capped so a single solve
    // cannot starve the rest of the queue. An already-expired (or infinite)
    // global deadline must never push a negative/non-finite share into
    // ClampedToSeconds, hence the clamps.
    const double remaining_time = std::max(0.0, deadline.RemainingSeconds());
    const size_t solved = result.subproblems.size();
    const size_t left = partition.subproblems.size() - solved;
    double share = remaining_affinity > 1e-12
                       ? sp.internal_affinity / remaining_affinity
                       : 1.0 / std::max<size_t>(1, left);
    const double reserve = 0.02 * static_cast<double>(left > 0 ? left - 1 : 0);
    const double budget = std::max(
        0.02, std::min(remaining_time - reserve, remaining_time * share));
    remaining_affinity -= sp.internal_affinity;
    const Deadline sp_deadline = std::isfinite(budget)
                                     ? deadline.ClampedToSeconds(budget)
                                     : deadline;

    report.algorithm = selector_.Select(cluster, sp);
    const PoolAlgorithm primary = report.algorithm;
    const PoolAlgorithm secondary =
        primary == PoolAlgorithm::kCg ? PoolAlgorithm::kMip
                                      : PoolAlgorithm::kCg;

    auto attempt = [&](PoolAlgorithm algorithm,
                       const Deadline& dl) -> StatusOr<SubproblemSolution> {
      if (deadline.Expired()) {
        return DeadlineExceededError("global budget exhausted");
      }
      if (breaker_open(algorithm)) {
        ++result.breaker_skips;
        return ResourceExhaustedError(
            StrFormat("%s circuit breaker open",
                      PoolAlgorithmToString(algorithm)));
      }
      StatusOr<SubproblemSolution> sol =
          RunPoolAlgorithm(algorithm, cluster, sp, partition.base_placement,
                           current, dl, rng.Next());
      if (!sol.ok()) {
        ++algorithm_failures[static_cast<int>(algorithm)];
        ++result.solver_failures;
      }
      return sol;
    };

    StatusOr<SubproblemSolution> solution = attempt(primary, sp_deadline);
    if (!solution.ok() && options_.try_secondary_algorithm &&
        !deadline.Expired() && !breaker_open(secondary)) {
      // Rung 2 of the ladder: the other pool algorithm, on a fresh slice of
      // whatever global budget remains.
      StatusOr<SubproblemSolution> rescued = attempt(
          secondary, deadline.ClampedToSeconds(std::max(0.02, 0.5 * budget)));
      if (rescued.ok()) {
        RASA_LOG(Info) << "subproblem " << idx << ": "
                       << PoolAlgorithmToString(primary) << " failed, "
                       << PoolAlgorithmToString(secondary) << " rescued it";
        solution = std::move(rescued);
        report.used_secondary = true;
        ++result.secondary_successes;
      }
    }
    if (!solution.ok()) {
      report.failed = true;
      ++result.greedy_fallbacks;
      RASA_LOG(Info) << "subproblem " << idx << " ("
                     << PoolAlgorithmToString(report.algorithm)
                     << ") failed: " << solution.status().ToString()
                     << "; using affinity greedy";
      // Affinity-aware greedy fallback: far better than scattering the
      // containers through the default scheduler.
      SubproblemSolution greedy = GreedyAffinityPlace(cluster, sp, working);
      report.gained_affinity = greedy.gained_affinity;
      report.unplaced_containers = greedy.unplaced_containers;
      std::vector<int> placed(cluster.num_services(), 0);
      for (const SubproblemSolution::Assignment& a : greedy.assignments) {
        placed[a.service] += a.count;  // greedy already added to `working`
      }
      for (int s : sp.services) {
        unplaced[s] += cluster.service(s).demand - placed[s];
      }
    } else {
      // Apply the assignments to the working placement; defensively skip
      // anything that no longer fits.
      std::vector<int> placed(cluster.num_services(), 0);
      for (const SubproblemSolution::Assignment& a : solution->assignments) {
        if (working.CanPlace(a.machine, a.service, a.count)) {
          working.Add(a.machine, a.service, a.count);
          placed[a.service] += a.count;
        } else {
          // Try placing as many as fit.
          int fit = 0;
          while (fit < a.count && working.CanPlace(a.machine, a.service)) {
            working.Add(a.machine, a.service);
            ++fit;
          }
          placed[a.service] += fit;
        }
      }
      for (int s : sp.services) {
        unplaced[s] += cluster.service(s).demand - placed[s];
      }
      report.gained_affinity = solution->gained_affinity;
      report.unplaced_containers = solution->unplaced_containers;
    }
    report.seconds = sp_timer.ElapsedSeconds();
    result.subproblems.push_back(report);
  }

  // Combine: default-scheduler fallback for unplaced crucial containers.
  for (int s = 0; s < cluster.num_services(); ++s) {
    for (int c = 0; c < unplaced[s]; ++c) {
      if (FallbackPlaceOne(cluster, working, s) < 0) {
        ++result.lost_containers;
      }
    }
  }

  // Optional extension: local-search refinement with the leftover budget.
  if (options_.refine_with_local_search && !deadline.Expired()) {
    LocalSearchOptions ls;
    ls.deadline = deadline;
    ls.seed = rng.Next();
    RefinePlacement(cluster, working, ls);
  }

  result.new_gained_affinity = GainedAffinity(cluster, working);
  result.moved_containers = working.DiffCount(current);

  // Dry-run rule (§III-B): execute only on >= min_improvement relative gain.
  const double base = std::max(result.original_gained_affinity, 1e-9);
  const double improvement =
      (result.new_gained_affinity - result.original_gained_affinity) / base;
  result.should_execute = improvement >= options_.min_improvement;

  // Phase 3: migration path.
  if (options_.compute_migration && result.should_execute) {
    StatusOr<MigrationPlan> plan =
        ComputeMigrationPath(cluster, current, working, options_.migration);
    if (plan.ok()) {
      result.migration = std::move(plan).value();
    } else {
      RASA_LOG(Warning) << "migration path failed: "
                        << plan.status().ToString()
                        << "; marking run as dry-run";
      result.should_execute = false;
    }
  }

  result.new_placement = std::move(working);
  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace rasa
