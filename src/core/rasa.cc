#include "core/rasa.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/greedy.h"
#include "core/local_search.h"
#include "core/objective.h"
#include "core/solve_ledger.h"

namespace rasa {
namespace {

// Default-scheduler fallback: least-allocated filter-and-score placement of
// one container; returns the machine used or -1.
int FallbackPlaceOne(const Cluster& cluster, Placement& working, int service) {
  int best = -1;
  double best_score = -1e300;
  for (int m = 0; m < cluster.num_machines(); ++m) {
    if (!working.CanPlace(m, service)) continue;
    double min_free_frac = 1.0;
    for (int r = 0; r < cluster.num_resources(); ++r) {
      const double cap = cluster.machine(m).capacity[r];
      if (cap <= 0.0) continue;
      min_free_frac = std::min(min_free_frac,
                               working.FreeResource(m, r) / cap);
    }
    if (min_free_frac > best_score) {
      best_score = min_free_frac;
      best = m;
    }
  }
  if (best >= 0) working.Add(best, service);
  return best;
}

// Salt mixed into each subproblem's RNG stream id: every stream depends
// only on (options.seed, subproblem id), never on scheduling order, so a
// parallel run draws exactly the seeds a sequential run draws.
constexpr uint64_t kStreamSalt = 0x9e3779b97f4a7c15ULL;

// Thread-safe affinity-weighted split of the remaining global budget (the
// deadline ledger). Every reservation reads the *shared* global deadline —
// never a per-thread elapsed clock — so concurrent workers can neither hand
// out negative shares nor double-spend the budget.
class DeadlineLedger {
 public:
  DeadlineLedger(const Deadline& global, double total_affinity, int count)
      : global_(global),
        remaining_affinity_(total_affinity),
        remaining_count_(count) {}

  // Reserves the calling subproblem's share of whatever global budget is
  // left: affinity-weighted, floored so zero-affinity subproblems get a
  // sliver, and capped so one solve cannot starve the queue behind it.
  Deadline Reserve(double affinity, double* budget_seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    const double remaining_time = std::max(0.0, global_.RemainingSeconds());
    const int left = std::max(1, remaining_count_);
    const double share = remaining_affinity_ > 1e-12
                             ? affinity / remaining_affinity_
                             : 1.0 / left;
    const double reserve = 0.02 * static_cast<double>(left - 1);
    const double budget = std::max(
        0.02, std::min(remaining_time - reserve, remaining_time * share));
    remaining_affinity_ = std::max(0.0, remaining_affinity_ - affinity);
    --remaining_count_;
    *budget_seconds = budget;
    return std::isfinite(budget) ? global_.ClampedToSeconds(budget) : global_;
  }

 private:
  std::mutex mu_;
  const Deadline global_;
  double remaining_affinity_;
  int remaining_count_;
};

// One rung of a speculative subproblem solve.
struct AttemptRecord {
  bool expired = false;  // global budget was gone before the attempt
  bool pruned = false;   // skipped on the advisory breaker fast path
  std::optional<StatusOr<SubproblemSolution>> result;  // set iff a solver ran
};

// Everything a worker learned about one subproblem, merged later in
// canonical order. Workers never touch the placement, the report, or the
// ladder counters — those belong to the merge.
struct SolveRecord {
  PoolAlgorithm primary = PoolAlgorithm::kCg;
  PoolAlgorithm secondary = PoolAlgorithm::kMip;
  uint64_t secondary_seed = 0;
  double budget = 0.0;   // primary budget share, seconds
  double seconds = 0.0;  // wall-clock of the speculative solve
  AttemptRecord primary_attempt;
  AttemptRecord secondary_attempt;
  bool secondary_considered = false;  // worker reached the secondary rung
  // Solver introspection of each speculative attempt, captured
  // unconditionally (cheap out-params) and consumed by the merge when it
  // assembles the flight-recorder records.
  PoolAttemptStats primary_stats;
  PoolAttemptStats secondary_stats;
  // POP replica splitting of an oversized subproblem: both rungs use the
  // same split decision (a pure function of options and subproblem size,
  // so the merge can replay it deterministically).
  bool use_pop = false;
  PopStats primary_pop;
  PopStats secondary_pop;
};

// Translates a worker attempt into the ledger's SolveAttempt, using the
// *replayed* ladder decision (`replay_outcome`) so records are independent
// of worker scheduling. Stats are attached only when the attempt's result
// is the one the replay acted on.
SolveAttempt MakeAttempt(PoolAlgorithm algorithm, AttemptOutcome outcome,
                         const PoolAttemptStats* stats) {
  SolveAttempt attempt;
  attempt.algorithm = algorithm;
  attempt.outcome = outcome;
  if (stats != nullptr &&
      (outcome == AttemptOutcome::kOk || outcome == AttemptOutcome::kFailed)) {
    attempt.seconds = stats->seconds;
    attempt.has_cg = stats->has_cg;
    attempt.cg = stats->cg;
    attempt.has_mip = stats->has_mip;
    attempt.mip = stats->mip;
  }
  return attempt;
}

// One subproblem's certificate term: min(internal, proven solver bound),
// tightened below the trivial bound only when the winning attempt proved a
// bound AND the merge placed every container inside the subproblem's own
// machines (`merge_unplaced == 0`) — otherwise the fallback may localize
// internal edges on machines the solver never modeled (see explain.h).
CertificateTerm MakeCertificateTerm(int subproblem_idx,
                                    double internal_affinity, double realized,
                                    int merge_unplaced,
                                    const SolveAttempt* winner) {
  CertificateTerm term;
  term.subproblem = subproblem_idx;
  term.internal_affinity = internal_affinity;
  term.realized = realized;
  term.bound = internal_affinity;
  if (winner == nullptr || merge_unplaced != 0) return term;
  double candidate = internal_affinity;
  if (winner->has_mip && winner->mip.solved && winner->mip.bound_proven) {
    // A proven B&B dual bound; max with the realized value is a no-op for
    // a correct solver but keeps the term sound defensively.
    candidate = std::max(winner->mip.best_bound, realized);
    term.source = "mip";
  } else if (winner->has_cg && winner->cg.has_lp_bound) {
    // The restricted master LP bounds any integral selection of generated
    // patterns, but greedy completion may round above it — the realized
    // value caps it back to soundness.
    candidate = std::max(winner->cg.lp_objective, realized);
    term.source = "cg-lp";
  } else {
    return term;
  }
  if (candidate < internal_affinity) {
    term.bound = candidate;
    term.tightened = true;
  }
  return term;
}

}  // namespace

StatusOr<RasaResult> RasaOptimizer::Optimize(const Cluster& cluster,
                                             const Placement& current,
                                             const OptimizeContext& ctx) const {
  if (ctx.incremental == nullptr) {
    return OptimizeWithPlan(cluster, current, ctx.pool, nullptr, nullptr);
  }
  ThreadPool* pool = ctx.pool;
  IncrementalState* state = ctx.incremental;
  Stopwatch diff_timer;
  SnapshotDelta delta = DiffSnapshot(cluster, current, *state, options_.delta);

  // Capture into a scratch state and swap on success, so `state` (which the
  // plan below aliases as its cache) is never mutated mid-run and stays
  // untouched on error.
  IncrementalState fresh;
  if (delta.full_resolve) {
    StatusOr<RasaResult> result =
        OptimizeWithPlan(cluster, current, pool, nullptr, &fresh);
    if (result.ok()) {
      result->incremental_reason = delta.reason;
      result->dirty_subproblems = static_cast<int>(result->subproblems.size());
      *state = std::move(fresh);
    }
    return result;
  }

  const int n = static_cast<int>(state->subproblems.size());
  DeltaPlan plan;
  plan.cache = state;
  plan.reuse.assign(n, 0);
  for (int i = 0; i < n; ++i) plan.reuse[i] = delta.dirty[i] ? 0 : 1;
  plan.residual_increased = std::move(delta.residual_increased);
  plan.weight_ratio = std::move(delta.weight_ratio);

  // Rebuild the PartitionResult the cached cycle produced, re-priced under
  // this snapshot's weights (DiffSnapshot already rebuilt the edges).
  PartitionResult& partition = plan.partition;
  partition.subproblems = std::move(delta.rebuilt);
  std::vector<char> crucial(cluster.num_services(), 0);
  int num_crucial = 0;
  double crucial_internal = 0.0;
  for (const Subproblem& sp : partition.subproblems) {
    crucial_internal += sp.internal_affinity;
    for (int s : sp.services) {
      crucial[s] = 1;
      ++num_crucial;
    }
  }
  for (int s = 0; s < cluster.num_services(); ++s) {
    if (!crucial[s]) partition.trivial_services.push_back(s);
  }
  partition.base_placement = Placement(cluster);
  for (int m = 0; m < cluster.num_machines(); ++m) {
    for (const auto& [s, count] : current.ServicesOn(m)) {
      if (!crucial[s]) partition.base_placement.Add(m, s, count);
    }
  }
  PartitionStats& stats = partition.stats;
  stats.num_services = cluster.num_services();
  stats.num_crucial_services = num_crucial;
  stats.num_trivial_services = cluster.num_services() - num_crucial;
  stats.num_subproblems = n;
  stats.master_ratio = state->master_ratio;
  stats.master_affinity = state->master_affinity;
  const double total_weight = cluster.affinity().TotalWeight();
  stats.crucial_internal_affinity =
      total_weight > 0.0 ? crucial_internal / total_weight : 0.0;

  // Prior incumbent: base + cached assignments, CanPlace-guarded. Warm-start
  // source for CG pattern seeding and the MIP initial solution on the dirty
  // re-solves.
  Placement hint = partition.base_placement;
  for (const SubproblemCache& cache : state->subproblems) {
    for (const SubproblemSolution::Assignment& a : cache.assignments) {
      if (hint.CanPlace(a.machine, a.service, a.count)) {
        hint.Add(a.machine, a.service, a.count);
      } else {
        int fit = 0;
        while (fit < a.count && hint.CanPlace(a.machine, a.service)) {
          hint.Add(a.machine, a.service);
          ++fit;
        }
      }
    }
  }
  plan.hint = &hint;
  stats.elapsed_seconds = diff_timer.ElapsedSeconds();

  StatusOr<RasaResult> result =
      OptimizeWithPlan(cluster, current, pool, &plan, &fresh);
  if (result.ok()) *state = std::move(fresh);
  return result;
}

StatusOr<RasaResult> RasaOptimizer::OptimizeWithPlan(
    const Cluster& cluster, const Placement& current, ThreadPool* pool,
    const DeltaPlan* plan, IncrementalState* out_state) const {
  Stopwatch timer;
  const Deadline deadline = Deadline::AfterSeconds(options_.timeout_seconds);
  TraceSpan optimize_span("optimize");

  RasaResult result;
  result.original_gained_affinity = GainedAffinity(cluster, current);

  // Phase 1: service partitioning + machine assignment — or, on the
  // incremental path, the previous cycle's partitioning rebuilt by the
  // caller (re-priced under this snapshot's weights).
  PartitionResult repartition;
  if (plan == nullptr) {
    TraceSpan span("partition");
    repartition = PartitionServices(cluster, current, options_.partitioning);
  }
  const PartitionResult& partition =
      plan == nullptr ? repartition : plan->partition;
  result.partition_stats = partition.stats;
  const int num_subproblems = static_cast<int>(partition.subproblems.size());

  // Canonical solve order: highest internal affinity first so the deadline
  // starves only the tail, with an explicit index tie-break so the order —
  // and therefore the merge below — is unambiguous.
  std::vector<int> order(num_subproblems);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double aa = partition.subproblems[a].internal_affinity;
    const double ab = partition.subproblems[b].internal_affinity;
    return aa != ab ? aa > ab : a < b;
  });

  // Budget and ledger count only the subproblems that actually solve this
  // run: reused ones consume no share of the deadline.
  double total_affinity = 0.0;
  int active_subproblems = 0;
  for (int i = 0; i < num_subproblems; ++i) {
    if (plan != nullptr && plan->reuse[i]) continue;
    total_affinity += partition.subproblems[i].internal_affinity;
    ++active_subproblems;
  }
  if (plan != nullptr) {
    result.incremental = true;
    result.dirty_subproblems = active_subproblems;
    result.reused_subproblems = num_subproblems - active_subproblems;
  }

  // Worker pool resolution: an external pool wins; otherwise spin one up
  // when the options ask for more than one thread.
  const int requested = options_.num_threads == 0
                            ? ThreadPool::DefaultNumThreads()
                            : std::max(1, options_.num_threads);
  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr && requested > 1) {
    owned_pool = std::make_unique<ThreadPool>(requested);
    pool = owned_pool.get();
  }
  result.num_threads_used = pool != nullptr ? pool->num_threads() : 1;

  // Phase 2a: batch algorithm selection (parallel GCN inference; pure, so
  // scheduling cannot change the labels). On the incremental path only the
  // dirty subproblems run inference; clean ones keep the label they were
  // solved with (echoed into their reused ledger records).
  const std::vector<PoolAlgorithm> selected = [&] {
    TraceSpan span("select");
    if (plan == nullptr) {
      return selector_.SelectBatch(cluster, partition.subproblems, pool);
    }
    std::vector<PoolAlgorithm> labels(num_subproblems, PoolAlgorithm::kCg);
    std::vector<Subproblem> dirty;
    std::vector<int> dirty_idx;
    for (int i = 0; i < num_subproblems; ++i) {
      if (plan->reuse[i]) {
        labels[i] =
            static_cast<PoolAlgorithm>(plan->cache->subproblems[i].algorithm);
      } else {
        dirty.push_back(partition.subproblems[i]);
        dirty_idx.push_back(i);
      }
    }
    const std::vector<PoolAlgorithm> dirty_labels =
        selector_.SelectBatch(cluster, dirty, pool);
    for (size_t j = 0; j < dirty_idx.size(); ++j) {
      labels[dirty_idx[j]] = dirty_labels[j];
    }
    return labels;
  }();

  // Warm-start source handed to the solvers as the "original" placement:
  // the prior incumbent on the incremental path (CG seeds its patterns from
  // it, MIP takes it as the initial feasible solution), the live placement
  // otherwise.
  const Placement& warm_source = plan != nullptr ? *plan->hint : current;
  const Placement* mip_hint = plan != nullptr ? plan->hint : nullptr;

  // Phase 2b: speculative per-subproblem solves, fanned out across the
  // pool. Shared state is confined to the deadline ledger and the advisory
  // failure flags; everything else is per-record.
  DeadlineLedger ledger(deadline, total_affinity, num_subproblems);
  std::vector<SolveRecord> records(num_subproblems);

  // failure_flags[a * n + p] == 1 iff the attempt of algorithm `a` at
  // canonical position `p` ran and failed. The advisory breaker counts only
  // positions *before* the asking one, so a flag it acts on is a failure
  // the canonical replay is guaranteed to have seen too — pruning can skip
  // wasted solver work but can never change the merged outcome.
  std::vector<std::atomic<uint8_t>> failure_flags(
      static_cast<size_t>(2 * std::max(1, num_subproblems)));
  for (std::atomic<uint8_t>& flag : failure_flags) {
    flag.store(0, std::memory_order_relaxed);
  }
  auto advisory_breaker_open = [&](PoolAlgorithm algorithm, int position) {
    if (options_.circuit_breaker_failures <= 0) return false;
    const int a = static_cast<int>(algorithm);
    int failures = 0;
    for (int p = 0; p < position; ++p) {
      failures += failure_flags[static_cast<size_t>(a * num_subproblems + p)]
                      .load(std::memory_order_acquire);
    }
    return failures >= options_.circuit_breaker_failures;
  };
  auto mark_failed = [&](PoolAlgorithm algorithm, int position) {
    const int a = static_cast<int>(algorithm);
    failure_flags[static_cast<size_t>(a * num_subproblems + position)].store(
        1, std::memory_order_release);
  };

  // The solve phase is opened/closed by hand (no scope to hang the RAII
  // span on); its id is the explicit parent of every per-subproblem span,
  // because workers run on pool threads whose thread-local span stacks are
  // empty.
  const int64_t solve_parent = Tracer::Default().Begin("solve");

  auto solve_one = [&](int position) {
    const int idx = order[position];
    // Reused subproblems skip the solvers entirely — no RNG draws, no
    // budget reservation (per-subproblem streams are independent, so the
    // dirty solves still draw exactly the seeds a full run would).
    if (plan != nullptr && plan->reuse[idx]) return;
    const Subproblem& sp = partition.subproblems[idx];
    SolveRecord& rec = records[position];
    TraceSpan sp_span(StrFormat("subproblem_%d", idx), solve_parent);
    Stopwatch sp_timer;

    // Per-subproblem RNG stream; both attempt seeds are drawn up front so
    // they do not depend on which rungs actually run.
    Rng sp_rng(options_.seed ^
               (kStreamSalt * (static_cast<uint64_t>(idx) + 1)));
    const uint64_t primary_seed = sp_rng.Next();
    rec.secondary_seed = sp_rng.Next();

    rec.primary = selected[idx];
    rec.secondary = rec.primary == PoolAlgorithm::kCg ? PoolAlgorithm::kMip
                                                      : PoolAlgorithm::kCg;
    rec.use_pop = ShouldUsePop(options_.pop, sp);
    const Deadline sp_deadline =
        ledger.Reserve(sp.internal_affinity, &rec.budget);

    if (deadline.Expired()) {
      rec.primary_attempt.expired = true;
    } else if (advisory_breaker_open(rec.primary, position)) {
      rec.primary_attempt.pruned = true;
    } else {
      rec.primary_attempt.result =
          rec.use_pop
              ? RunPoolAlgorithmPop(rec.primary, cluster, sp,
                                    partition.base_placement, warm_source,
                                    sp_deadline, primary_seed, options_.pop,
                                    &rec.primary_stats, mip_hint,
                                    &rec.primary_pop)
              : RunPoolAlgorithm(rec.primary, cluster, sp,
                                 partition.base_placement, warm_source,
                                 sp_deadline, primary_seed,
                                 &rec.primary_stats, mip_hint);
      if (!rec.primary_attempt.result->ok()) {
        mark_failed(rec.primary, position);
      }
    }

    const bool primary_ok =
        rec.primary_attempt.result && rec.primary_attempt.result->ok();
    if (!primary_ok && options_.try_secondary_algorithm) {
      // Rung 2 of the ladder, speculatively: the other pool algorithm on a
      // fresh slice of whatever global budget remains.
      rec.secondary_considered = true;
      if (deadline.Expired()) {
        rec.secondary_attempt.expired = true;
      } else if (advisory_breaker_open(rec.secondary, position)) {
        rec.secondary_attempt.pruned = true;
      } else {
        const Deadline secondary_deadline =
            deadline.ClampedToSeconds(std::max(0.02, 0.5 * rec.budget));
        rec.secondary_attempt.result =
            rec.use_pop
                ? RunPoolAlgorithmPop(rec.secondary, cluster, sp,
                                      partition.base_placement, warm_source,
                                      secondary_deadline, rec.secondary_seed,
                                      options_.pop, &rec.secondary_stats,
                                      mip_hint, &rec.secondary_pop)
                : RunPoolAlgorithm(rec.secondary, cluster, sp,
                                   partition.base_placement, warm_source,
                                   secondary_deadline, rec.secondary_seed,
                                   &rec.secondary_stats, mip_hint);
        if (!rec.secondary_attempt.result->ok()) {
          mark_failed(rec.secondary, position);
        }
      }
    }
    rec.seconds = sp_timer.ElapsedSeconds();
  };

  if (pool != nullptr) {
    pool->ParallelFor(num_subproblems, solve_one);
  } else {
    for (int position = 0; position < num_subproblems; ++position) {
      solve_one(position);
    }
  }
  Tracer::Default().End(solve_parent);
  const int64_t merge_id = Tracer::Default().Begin("merge");

  // Phase 2c: merge in canonical order. The degradation ladder, breaker,
  // and counters are *replayed* here single-threaded, so the merged
  // placement and every counter are independent of worker scheduling.
  Placement working = partition.base_placement;
  // Waterfall snapshot A1: affinity already delivered by the trivial
  // residents the partition kept in place.
  const double base_affinity = GainedAffinity(cluster, working);
  std::vector<int> unplaced(cluster.num_services(), 0);
  int algorithm_failures[2] = {0, 0};
  auto breaker_open = [&](PoolAlgorithm algorithm) {
    return options_.circuit_breaker_failures > 0 &&
           algorithm_failures[static_cast<int>(algorithm)] >=
               options_.circuit_breaker_failures;
  };

  if (out_state != nullptr) {
    out_state->subproblems.assign(static_cast<size_t>(num_subproblems),
                                  SubproblemCache{});
  }

  for (int position = 0; position < num_subproblems; ++position) {
    const int idx = order[position];
    const Subproblem& sp = partition.subproblems[idx];
    if (plan != nullptr && plan->reuse[idx]) {
      const SubproblemCache& cache = plan->cache->subproblems[idx];
      SubproblemReport report;
      report.num_services = static_cast<int>(sp.services.size());
      report.num_machines = static_cast<int>(sp.machines.size());
      report.internal_affinity = sp.internal_affinity;
      report.algorithm = static_cast<PoolAlgorithm>(cache.algorithm);
      report.used_secondary = cache.used_secondary;
      report.failed = cache.fell_to_greedy;
      report.unplaced_containers = cache.unplaced;

      // Re-apply the cached assignments; the CanPlace guard (plus the
      // partial-fit loop) absorbs any residual shrinkage the differ
      // tolerated, handing whatever no longer fits to the global fallback.
      std::vector<int> local_service(cluster.num_services(), -1);
      for (size_t i = 0; i < sp.services.size(); ++i) {
        local_service[sp.services[i]] = static_cast<int>(i);
      }
      std::vector<int> local_machine(cluster.num_machines(), -1);
      for (size_t j = 0; j < sp.machines.size(); ++j) {
        local_machine[sp.machines[j]] = static_cast<int>(j);
      }
      std::vector<std::vector<int>> counts(
          sp.services.size(), std::vector<int>(sp.machines.size(), 0));
      std::vector<int> placed(cluster.num_services(), 0);
      std::vector<SubproblemSolution::Assignment> applied;
      for (const SubproblemSolution::Assignment& a : cache.assignments) {
        int fit = 0;
        if (working.CanPlace(a.machine, a.service, a.count)) {
          working.Add(a.machine, a.service, a.count);
          fit = a.count;
        } else {
          while (fit < a.count && working.CanPlace(a.machine, a.service)) {
            working.Add(a.machine, a.service);
            ++fit;
          }
        }
        if (fit > 0) {
          placed[a.service] += fit;
          counts[local_service[a.service]][local_machine[a.machine]] += fit;
          applied.push_back({a.service, a.machine, fit});
        }
      }
      int sp_unplaced = 0;
      for (int s : sp.services) {
        unplaced[s] += cluster.service(s).demand - placed[s];
        sp_unplaced += cluster.service(s).demand - placed[s];
      }
      // Realized value re-priced under this snapshot's weights.
      report.gained_affinity = SubproblemGainedAffinity(cluster, sp, counts);
      result.subproblems.push_back(report);

      LedgerRecord lrec;
      lrec.subproblem = idx;
      lrec.position = position;
      lrec.num_services = report.num_services;
      lrec.num_machines = report.num_machines;
      lrec.internal_affinity = sp.internal_affinity;
      lrec.selector_policy = selector_.policy();
      lrec.selected = report.algorithm;
      lrec.reused = true;
      lrec.used_secondary = cache.used_secondary;
      lrec.fell_to_greedy = cache.fell_to_greedy;
      lrec.ladder_rung = cache.ladder_rung;
      lrec.realized_affinity = report.gained_affinity;
      lrec.unplaced_containers = sp_unplaced;

      // Certificate term from the cached bound, reused only while it is
      // still sound for this snapshot: the original tightening held, every
      // cached container fits again now, no machine regained capacity since
      // the solve, and the weight ratio inflates away any tolerated edge
      // growth (see DESIGN.md "Incremental re-optimization").
      CertificateTerm term;
      term.subproblem = idx;
      term.internal_affinity = sp.internal_affinity;
      term.realized = report.gained_affinity;
      term.bound = sp.internal_affinity;
      if (cache.tightened && sp_unplaced == 0 &&
          !plan->residual_increased[idx]) {
        const double candidate = std::max(
            plan->weight_ratio[idx] * cache.bound, report.gained_affinity);
        if (candidate < sp.internal_affinity) {
          term.bound = candidate;
          term.tightened = true;
          term.source = cache.bound_source;
        }
      }
      lrec.certificate_bound = term.bound;
      lrec.bound_tightened = term.tightened;
      result.report.certificate.terms.push_back(term);
      result.report.records.push_back(std::move(lrec));

      if (out_state != nullptr) {
        SubproblemCache& cap = out_state->subproblems[idx];
        cap.subproblem = sp;
        cap.assignments = std::move(applied);
        cap.unplaced = sp_unplaced;
        cap.realized = report.gained_affinity;
        cap.bound = term.bound;
        cap.tightened = term.tightened;
        cap.bound_source = term.source;
        cap.algorithm = cache.algorithm;
        cap.used_secondary = cache.used_secondary;
        cap.fell_to_greedy = cache.fell_to_greedy;
        cap.ladder_rung = cache.ladder_rung;
      }
      continue;
    }

    SolveRecord& rec = records[position];
    SubproblemReport report;
    report.num_services = static_cast<int>(sp.services.size());
    report.num_machines = static_cast<int>(sp.machines.size());
    report.internal_affinity = sp.internal_affinity;
    report.algorithm = rec.primary;
    report.seconds = rec.seconds;

    // Flight-recorder entry, filled as the replayed ladder decides each
    // rung (never from the workers' advisory decisions, so the record
    // sequence is scheduling-independent).
    LedgerRecord lrec;
    lrec.subproblem = idx;
    lrec.position = position;
    lrec.num_services = report.num_services;
    lrec.num_machines = report.num_machines;
    lrec.internal_affinity = sp.internal_affinity;
    lrec.selector_policy = selector_.policy();
    lrec.selected = rec.primary;
    lrec.budget_seconds = rec.budget;
    lrec.seconds = rec.seconds;

    // Rung 1: the selected algorithm.
    const SubproblemSolution* solution = nullptr;
    if (rec.primary_attempt.expired) {
      // Global budget was exhausted: no attempt, no counters (matches the
      // sequential ladder).
      lrec.primary =
          MakeAttempt(rec.primary, AttemptOutcome::kExpired, nullptr);
    } else if (breaker_open(rec.primary)) {
      ++result.breaker_skips;
      lrec.primary = MakeAttempt(rec.primary, AttemptOutcome::kPruned, nullptr);
    } else if (rec.primary_attempt.result) {
      if (rec.primary_attempt.result->ok()) {
        solution = &rec.primary_attempt.result->value();
        lrec.primary =
            MakeAttempt(rec.primary, AttemptOutcome::kOk, &rec.primary_stats);
      } else {
        ++algorithm_failures[static_cast<int>(rec.primary)];
        ++result.solver_failures;
        lrec.primary = MakeAttempt(rec.primary, AttemptOutcome::kFailed,
                                   &rec.primary_stats);
      }
    } else {
      // Advisory-pruned: by construction the replayed breaker is open here
      // too, so the branch above must have caught it.
      RASA_LOG(Warning) << "subproblem " << idx
                        << ": advisory prune without open breaker";
      ++result.breaker_skips;
      lrec.primary = MakeAttempt(rec.primary, AttemptOutcome::kPruned, nullptr);
    }

    // Rung 2: the other pool algorithm.
    StatusOr<SubproblemSolution> repair =
        InternalError("secondary not attempted");
    PoolAttemptStats repair_stats;
    PopStats repair_pop;
    if (solution == nullptr && options_.try_secondary_algorithm &&
        breaker_open(rec.secondary)) {
      lrec.secondary =
          MakeAttempt(rec.secondary, AttemptOutcome::kPruned, nullptr);
    }
    if (solution == nullptr && options_.try_secondary_algorithm &&
        !breaker_open(rec.secondary)) {
      const StatusOr<SubproblemSolution>* secondary = nullptr;
      const PoolAttemptStats* secondary_stats = nullptr;
      if (rec.secondary_considered) {
        if (rec.secondary_attempt.result) {
          secondary = &*rec.secondary_attempt.result;
          secondary_stats = &rec.secondary_stats;
        } else if (rec.secondary_attempt.expired) {
          lrec.secondary =
              MakeAttempt(rec.secondary, AttemptOutcome::kExpired, nullptr);
        }
        // expired / pruned: the sequential ladder would have skipped the
        // rung at this point too (pruned implies the breaker is open, which
        // the gate above already rejected).
      } else if (!deadline.Expired()) {
        // The worker saw its primary succeed, but the replayed breaker
        // discarded it (the breaker opened later in wall-clock, earlier in
        // canonical order). Solve the rung now, with the pre-assigned seed
        // and the same budget slice a sequential run would use.
        const Deadline repair_deadline =
            deadline.ClampedToSeconds(std::max(0.02, 0.5 * rec.budget));
        repair = rec.use_pop
                     ? RunPoolAlgorithmPop(rec.secondary, cluster, sp,
                                           partition.base_placement,
                                           warm_source, repair_deadline,
                                           rec.secondary_seed, options_.pop,
                                           &repair_stats, mip_hint,
                                           &repair_pop)
                     : RunPoolAlgorithm(rec.secondary, cluster, sp,
                                        partition.base_placement, warm_source,
                                        repair_deadline, rec.secondary_seed,
                                        &repair_stats, mip_hint);
        secondary = &repair;
        secondary_stats = &repair_stats;
        rec.secondary_pop = repair_pop;
      }
      if (secondary != nullptr) {
        if (secondary->ok()) {
          RASA_LOG(Info) << "subproblem " << idx << ": "
                         << PoolAlgorithmToString(rec.primary) << " failed, "
                         << PoolAlgorithmToString(rec.secondary)
                         << " rescued it";
          solution = &secondary->value();
          report.used_secondary = true;
          ++result.secondary_successes;
          lrec.secondary =
              MakeAttempt(rec.secondary, AttemptOutcome::kOk, secondary_stats);
        } else {
          ++algorithm_failures[static_cast<int>(rec.secondary)];
          ++result.solver_failures;
          lrec.secondary = MakeAttempt(rec.secondary, AttemptOutcome::kFailed,
                                       secondary_stats);
        }
      }
    }

    // Containers of this subproblem's services the merge could NOT keep on
    // the subproblem's own machines (they go to the global fallback).
    int sp_unplaced = 0;
    // What actually landed, captured for the next cycle's delta cache.
    std::vector<SubproblemSolution::Assignment> applied;
    if (solution == nullptr) {
      report.failed = true;
      ++result.greedy_fallbacks;
      RASA_LOG(Info) << "subproblem " << idx << " ("
                     << PoolAlgorithmToString(report.algorithm)
                     << ") fell through the ladder; using affinity greedy";
      // Affinity-aware greedy fallback: far better than scattering the
      // containers through the default scheduler.
      SubproblemSolution greedy = GreedyAffinityPlace(cluster, sp, working);
      report.gained_affinity = greedy.gained_affinity;
      report.unplaced_containers = greedy.unplaced_containers;
      std::vector<int> placed(cluster.num_services(), 0);
      for (const SubproblemSolution::Assignment& a : greedy.assignments) {
        placed[a.service] += a.count;  // greedy already added to `working`
      }
      for (int s : sp.services) {
        unplaced[s] += cluster.service(s).demand - placed[s];
        sp_unplaced += cluster.service(s).demand - placed[s];
      }
      applied = std::move(greedy.assignments);
    } else {
      // Apply the assignments to the working placement; defensively skip
      // anything that no longer fits.
      std::vector<int> placed(cluster.num_services(), 0);
      for (const SubproblemSolution::Assignment& a : solution->assignments) {
        int fit = 0;
        if (working.CanPlace(a.machine, a.service, a.count)) {
          working.Add(a.machine, a.service, a.count);
          fit = a.count;
        } else {
          // Try placing as many as fit.
          while (fit < a.count && working.CanPlace(a.machine, a.service)) {
            working.Add(a.machine, a.service);
            ++fit;
          }
        }
        placed[a.service] += fit;
        if (fit > 0) applied.push_back({a.service, a.machine, fit});
      }
      for (int s : sp.services) {
        unplaced[s] += cluster.service(s).demand - placed[s];
        sp_unplaced += cluster.service(s).demand - placed[s];
      }
      report.gained_affinity = solution->gained_affinity;
      report.unplaced_containers = solution->unplaced_containers;
    }
    if (rec.use_pop && !report.failed) {
      report.used_pop = true;
      const PopStats& pop =
          report.used_secondary ? rec.secondary_pop : rec.primary_pop;
      report.pop_replicas = pop.replicas;
      report.pop_cut_affinity = pop.cut_affinity;
      // POP attempts never surface a CG/MIP bound, so the certificate term
      // below stays at the trivial internal_affinity bound: the measured
      // give-up of the split is simply bound - realized.
      report.pop_quality_loss =
          std::max(0.0, sp.internal_affinity - report.gained_affinity);
      ++result.pop_splits;
      result.pop_quality_loss += report.pop_quality_loss;
    }
    result.subproblems.push_back(report);

    lrec.used_secondary = report.used_secondary;
    lrec.fell_to_greedy = report.failed;
    lrec.ladder_rung = report.failed ? 2 : (report.used_secondary ? 1 : 0);
    lrec.realized_affinity = report.gained_affinity;
    lrec.unplaced_containers = sp_unplaced;
    const SolveAttempt* winner =
        report.failed ? nullptr
                      : (report.used_secondary ? &lrec.secondary
                                               : &lrec.primary);
    CertificateTerm term = MakeCertificateTerm(
        idx, sp.internal_affinity, report.gained_affinity, sp_unplaced,
        winner);
    // A POP union is a heuristic over an unseen edge cut — mark its term so
    // gap consumers can attribute looseness to the split (the bound itself
    // is already trivial because POP attempts carry no solver bound).
    if (report.used_pop) term.source = "pop";
    lrec.certificate_bound = term.bound;
    lrec.bound_tightened = term.tightened;

    if (out_state != nullptr) {
      SubproblemCache& cap = out_state->subproblems[idx];
      cap.subproblem = sp;
      cap.assignments = std::move(applied);
      cap.unplaced = sp_unplaced;
      cap.realized = report.gained_affinity;
      cap.bound = term.bound;
      cap.tightened = term.tightened;
      cap.bound_source = term.source;
      cap.algorithm = static_cast<int>(report.algorithm);
      cap.used_secondary = report.used_secondary;
      cap.fell_to_greedy = report.failed;
      cap.ladder_rung = lrec.ladder_rung;
    }

    result.report.certificate.terms.push_back(term);
    result.report.records.push_back(std::move(lrec));
  }
  Tracer::Default().End(merge_id);

  if (out_state != nullptr) {
    // Residuals the solvers observed (base = trivial residents only),
    // diffed by the next cycle's DiffSnapshot against its fresh snapshot.
    const int num_resources = cluster.num_resources();
    for (int i = 0; i < num_subproblems; ++i) {
      const Subproblem& sp = partition.subproblems[i];
      std::vector<double>& res = out_state->subproblems[i].residuals;
      res.assign(sp.machines.size() * static_cast<size_t>(num_resources),
                 0.0);
      for (size_t j = 0; j < sp.machines.size(); ++j) {
        for (int r = 0; r < num_resources; ++r) {
          res[j * num_resources + r] =
              partition.base_placement.FreeResource(sp.machines[j], r);
        }
      }
    }
    out_state->valid = true;
    out_state->structure_signature = ClusterStructureSignature(cluster);
    out_state->num_services = cluster.num_services();
    out_state->num_machines = cluster.num_machines();
    out_state->num_resources = num_resources;
    out_state->master_ratio = partition.stats.master_ratio;
    out_state->master_affinity = partition.stats.master_affinity;
  }

  // Waterfall snapshot A2: what the subproblem solvers delivered at merge.
  const double merged_affinity = GainedAffinity(cluster, working);

  // Combine: default-scheduler fallback for unplaced crucial containers.
  {
    const TraceSpan fallback_span("fallback");
    for (int s = 0; s < cluster.num_services(); ++s) {
      for (int c = 0; c < unplaced[s]; ++c) {
        if (FallbackPlaceOne(cluster, working, s) < 0) {
          ++result.lost_containers;
        }
      }
    }
  }

  // Waterfall snapshot A3: after the default-scheduler fallback — the
  // solver-phase value the quality certificate is anchored to.
  const double fallback_affinity = GainedAffinity(cluster, working);

  // Optional extension: local-search refinement with the leftover budget.
  LocalSearchStats ls_stats;
  bool ls_ran = false;
  if (options_.refine_with_local_search && !deadline.Expired()) {
    const TraceSpan ls_span("local_search");
    LocalSearchOptions ls;
    ls.deadline = deadline;
    // Own stream, independent of how many solver seeds were drawn.
    ls.seed = Rng(options_.seed ^ kStreamSalt).Next();
    ls_stats = RefinePlacement(cluster, working, ls);
    ls_ran = true;
  }

  result.new_gained_affinity = GainedAffinity(cluster, working);
  result.moved_containers = working.DiffCount(current);

  // Explain report: attribution waterfall, optimality-gap certificate, and
  // placement diff (records and certificate terms were assembled by the
  // merge). Observation-only — nothing below touches the placement.
  {
    ExplainReport& explain = result.report;
    explain.populated = true;

    double sum_internal = 0.0;
    for (const Subproblem& sp : partition.subproblems) {
      sum_internal += sp.internal_affinity;
    }
    const double total_weight = cluster.affinity().TotalWeight();
    const double external = std::max(0.0, total_weight - sum_internal);

    AttributionWaterfall& wf = explain.waterfall;
    wf.base_retained = base_affinity;
    wf.solver_gain = merged_affinity - base_affinity;
    wf.fallback_delta = fallback_affinity - merged_affinity;
    wf.local_search_delta = result.new_gained_affinity - fallback_affinity;
    wf.total = result.new_gained_affinity;
    wf.partition_cut_affinity = external;
    wf.original_gained_affinity = result.original_gained_affinity;

    QualityCertificate& cert = explain.certificate;
    cert.achieved_solver_phase = fallback_affinity;
    cert.achieved_final = result.new_gained_affinity;
    cert.sum_internal_affinity = sum_internal;
    cert.external_affinity = external;
    double bound = external;
    for (const CertificateTerm& term : cert.terms) {
      bound += term.bound;
      if (term.tightened) ++cert.tightened_terms;
    }
    cert.bound_solver_phase = bound;
    cert.local_search_credit = std::max(0.0, wf.local_search_delta);
    cert.bound_final = cert.bound_solver_phase + cert.local_search_credit;

    explain.local_search_ran = ls_ran;
    explain.local_search = ls_stats;
    explain.diff = BuildPlacementDiff(cluster, current, working);

    if (SolveLedgerEnabled()) {
      SolveLedger::Default().AppendAll(explain.records);
    }
  }

  // Dry-run rule (§III-B): execute only on >= min_improvement relative gain.
  const double base = std::max(result.original_gained_affinity, 1e-9);
  const double improvement =
      (result.new_gained_affinity - result.original_gained_affinity) / base;
  result.should_execute = improvement >= options_.min_improvement;

  // Phase 3: migration path.
  if (options_.compute_migration && result.should_execute) {
    const TraceSpan migration_span("migration_path");
    StatusOr<MigrationPlan> plan =
        ComputeMigrationPath(cluster, current, working, options_.migration);
    if (plan.ok()) {
      result.migration = std::move(plan).value();
    } else {
      RASA_LOG(Warning) << "migration path failed: "
                        << plan.status().ToString()
                        << "; marking run as dry-run";
      result.should_execute = false;
    }
  }

  result.new_placement = std::move(working);
  result.elapsed_seconds = timer.ElapsedSeconds();

  // Observation-only run metrics mirroring the RasaResult ladder counters;
  // nothing below feeds back into the placement.
  {
    MetricRegistry& reg = MetricRegistry::Default();
    static Counter& runs = reg.GetCounter("rasa.runs");
    static Counter& dry_runs = reg.GetCounter("rasa.dry_runs");
    static Counter& solver_failures = reg.GetCounter("rasa.solver_failures");
    static Counter& secondary = reg.GetCounter("rasa.secondary_successes");
    static Counter& greedy = reg.GetCounter("rasa.greedy_fallbacks");
    static Counter& breaker = reg.GetCounter("rasa.breaker_skips");
    static Counter& lost = reg.GetCounter("rasa.lost_containers");
    static Counter& moved = reg.GetCounter("rasa.moved_containers");
    static Counter& reused_sps = reg.GetCounter("rasa.reused_subproblems");
    static Histogram& sp_seconds = reg.GetHistogram("rasa.subproblem_seconds");
    static Histogram& opt_seconds = reg.GetHistogram("rasa.optimize_seconds");
    static Gauge& improvement_gauge = reg.GetGauge("rasa.improvement");
    static Gauge& gained_gauge = reg.GetGauge("rasa.gained_affinity");
    static Gauge& gap_gauge = reg.GetGauge("rasa.certificate_gap");
    runs.Increment();
    if (!result.should_execute) dry_runs.Increment();
    solver_failures.Increment(static_cast<uint64_t>(result.solver_failures));
    secondary.Increment(static_cast<uint64_t>(result.secondary_successes));
    greedy.Increment(static_cast<uint64_t>(result.greedy_fallbacks));
    breaker.Increment(static_cast<uint64_t>(result.breaker_skips));
    lost.Increment(static_cast<uint64_t>(result.lost_containers));
    moved.Increment(static_cast<uint64_t>(result.moved_containers));
    reused_sps.Increment(static_cast<uint64_t>(result.reused_subproblems));
    for (const SubproblemReport& report : result.subproblems) {
      sp_seconds.Observe(report.seconds);
    }
    opt_seconds.Observe(result.elapsed_seconds);
    improvement_gauge.Set(improvement);
    gained_gauge.Set(result.new_gained_affinity);
    if (result.report.populated) {
      gap_gauge.Set(result.report.certificate.Gap());
    }
  }
  return result;
}

}  // namespace rasa
