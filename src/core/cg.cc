#include "core/cg.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/arena.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/greedy.h"
#include "lp/simplex.h"

namespace rasa {
namespace {

// A pattern: container counts per subproblem-local service on one machine.
struct Pattern {
  std::vector<int> counts;
  double value = 0.0;  // v(p): gained affinity internal to the machine
  // Stable identity across master rebuilds: column management reorders and
  // drops patterns between rounds, so warm-starting the next master needs
  // to map the old basis onto the new column order by uid, not by index.
  int uid = -1;
};

// Per-machine static context for pattern feasibility and value.
struct MachineContext {
  int machine = 0;                  // global id
  std::vector<double> residual;     // residual capacity per resource
  std::vector<int> rule_limit;      // residual limit per active rule
  std::vector<bool> can_host;       // per local service
};

class CgSolver {
 public:
  CgSolver(const Cluster& cluster, const Subproblem& subproblem,
           const Placement& base, const Placement& original,
           const CgOptions& options)
      : cluster_(cluster), sp_(subproblem), base_(base), original_(original),
        options_(options), rng_(options.seed) {}

  StatusOr<SubproblemSolution> Solve(CgStats* stats);

 private:
  int S() const { return static_cast<int>(sp_.services.size()); }
  int M() const { return static_cast<int>(sp_.machines.size()); }

  void BuildContexts();
  double PatternValue(const std::vector<int>& counts) const;
  // `used` / `rule_used` are read-only views sized num_resources /
  // active_rules_ (raw pointers so heap- and arena-backed scratch both
  // qualify).
  bool FitsOneMore(const MachineContext& ctx, const std::vector<int>& counts,
                   const double* used, const int* rule_used,
                   int local_service) const;
  // Greedy pricing: maximize v(p) - pi.p - mu. Returns the best pattern and
  // its reduced cost.
  Pattern PricePattern(const MachineContext& ctx,
                       const std::vector<double>& pi, double mu,
                       double* reduced_cost) const;
  Pattern PatternFromCounts(std::vector<int> counts) const;
  // Solves the restricted master LP; fills duals pi (per service) and mu
  // (per machine). Returns false on solver trouble.
  bool SolveMaster(std::vector<std::vector<double>>& y,
                   std::vector<double>& pi, std::vector<double>& mu);
  SubproblemSolution RoundToSolution(const std::vector<std::vector<double>>& y);

  const Cluster& cluster_;
  const Subproblem& sp_;
  const Placement& base_;
  const Placement& original_;
  const CgOptions& options_;
  Rng rng_;

  std::vector<MachineContext> contexts_;
  std::vector<std::vector<Pattern>> patterns_;  // per machine
  std::vector<int> local_of_;                   // global service -> local
  std::vector<int> active_rules_;
  // Adjacency restricted to the subproblem, in local ids.
  std::vector<std::vector<std::pair<int, double>>> local_adj_;
  CgStats stats_;

  // Pattern uid allocator (PricePattern is const but still mints patterns).
  mutable int next_pattern_uid_ = 0;
  // Pricing scratch pool: PricePattern runs once per machine per round and
  // resets this instead of re-allocating its `used`/`rule_used` buffers.
  mutable Arena pricing_arena_;
  // Basis of the last optimal master plus the pattern uid behind each of
  // its structural columns; rows (M convexity + S demand) are stable
  // across rounds, so this is enough to warm-start the next master.
  LpBasis master_basis_;
  std::vector<int> master_basis_uids_;
  bool has_master_basis_ = false;
};

void CgSolver::BuildContexts() {
  local_of_.assign(cluster_.num_services(), -1);
  for (int i = 0; i < S(); ++i) local_of_[sp_.services[i]] = i;

  std::vector<bool> seen(cluster_.anti_affinity().size(), false);
  for (int s : sp_.services) {
    for (int k : cluster_.RulesOfService(s)) {
      if (!seen[k]) {
        seen[k] = true;
        active_rules_.push_back(k);
      }
    }
  }

  local_adj_.assign(S(), {});
  for (const AffinityEdge& e : sp_.edges) {
    const int lu = local_of_[e.u];
    const int lv = local_of_[e.v];
    local_adj_[lu].push_back({lv, e.weight});
    local_adj_[lv].push_back({lu, e.weight});
  }

  contexts_.resize(M());
  for (int j = 0; j < M(); ++j) {
    MachineContext& ctx = contexts_[j];
    ctx.machine = sp_.machines[j];
    ctx.residual.resize(cluster_.num_resources());
    for (int r = 0; r < cluster_.num_resources(); ++r) {
      ctx.residual[r] =
          std::max(0.0, ResidualCapacity(cluster_, base_, ctx.machine, r));
    }
    ctx.rule_limit.resize(active_rules_.size());
    for (size_t k = 0; k < active_rules_.size(); ++k) {
      ctx.rule_limit[k] = std::max(
          0, ResidualRuleLimit(cluster_, base_, ctx.machine, active_rules_[k]));
    }
    ctx.can_host.resize(S());
    for (int i = 0; i < S(); ++i) {
      ctx.can_host[i] = cluster_.CanHost(ctx.machine, sp_.services[i]);
    }
  }
}

double CgSolver::PatternValue(const std::vector<int>& counts) const {
  double value = 0.0;
  for (const AffinityEdge& e : sp_.edges) {
    const int xu = counts[local_of_[e.u]];
    if (xu == 0) continue;
    const int xv = counts[local_of_[e.v]];
    if (xv == 0) continue;
    const double du = cluster_.service(e.u).demand;
    const double dv = cluster_.service(e.v).demand;
    if (du <= 0 || dv <= 0) continue;
    value += e.weight * std::min(xu / du, xv / dv);
  }
  return value;
}

bool CgSolver::FitsOneMore(const MachineContext& ctx,
                           const std::vector<int>& counts,
                           const double* used, const int* rule_used,
                           int local_service) const {
  if (!ctx.can_host[local_service]) return false;
  const int s = sp_.services[local_service];
  if (counts[local_service] + 1 > cluster_.service(s).demand) return false;
  const std::vector<double>& req = cluster_.service(s).request;
  for (int r = 0; r < cluster_.num_resources(); ++r) {
    if (used[r] + req[r] > ctx.residual[r] + 1e-9) return false;
  }
  for (size_t k = 0; k < active_rules_.size(); ++k) {
    const AntiAffinityRule& rule = cluster_.anti_affinity()[active_rules_[k]];
    bool in_rule = false;
    for (int rs : rule.services) {
      if (rs == s) {
        in_rule = true;
        break;
      }
    }
    if (in_rule && rule_used[k] + 1 > ctx.rule_limit[k]) return false;
  }
  return true;
}

Pattern CgSolver::PatternFromCounts(std::vector<int> counts) const {
  Pattern p;
  p.value = PatternValue(counts);
  p.counts = std::move(counts);
  p.uid = next_pattern_uid_++;
  return p;
}

Pattern CgSolver::PricePattern(const MachineContext& ctx,
                               const std::vector<double>& pi, double mu,
                               double* reduced_cost) const {
  const int R = cluster_.num_resources();
  // `counts` escapes as Pattern::counts (heap); the capacity/rule scratch
  // lives in the recycled pricing arena.
  std::vector<int> counts(S(), 0);
  pricing_arena_.Reset();
  ArenaVector<double> used(static_cast<size_t>(R), 0.0,
                           ArenaAllocator<double>(&pricing_arena_));
  ArenaVector<int> rule_used(active_rules_.size(), 0,
                             ArenaAllocator<int>(&pricing_arena_));

  auto commit = [&](int i) {
    ++counts[i];
    const std::vector<double>& req = cluster_.service(sp_.services[i]).request;
    for (int r = 0; r < R; ++r) used[r] += req[r];
    const int s = sp_.services[i];
    for (size_t k = 0; k < active_rules_.size(); ++k) {
      const AntiAffinityRule& rule = cluster_.anti_affinity()[active_rules_[k]];
      for (int rs : rule.services) {
        if (rs == s) {
          ++rule_used[k];
          break;
        }
      }
    }
  };

  // Marginal reduced-cost gain of one more container of local service i.
  auto marginal = [&](int i) {
    const int s = sp_.services[i];
    const double d_s = cluster_.service(s).demand;
    if (d_s <= 0) return -1e18;
    double gain = 0.0;
    for (const auto& [nbr, w] : local_adj_[i]) {
      if (counts[nbr] == 0) continue;
      const double d_n = cluster_.service(sp_.services[nbr]).demand;
      if (d_n <= 0) continue;
      const double before = std::min(counts[i] / d_s, counts[nbr] / d_n);
      const double after = std::min((counts[i] + 1) / d_s, counts[nbr] / d_n);
      gain += w * (after - before);
    }
    return gain - pi[i];
  };

  double current = 0.0;  // running v(p) - pi.p
  while (true) {
    // Best single-container addition.
    int best_single = -1;
    double best_single_gain = 1e-9;
    for (int i = 0; i < S(); ++i) {
      if (!FitsOneMore(ctx, counts, used.data(), rule_used.data(), i)) continue;
      const double g = marginal(i);
      if (g > best_single_gain) {
        best_single_gain = g;
        best_single = i;
      }
    }
    // Best pair addition along an edge (lets the greedy escape the local
    // trap where any lone first container looks unprofitable).
    int best_pair_u = -1, best_pair_v = -1;
    double best_pair_gain = 1e-9;
    if (!options_.pair_pricing) {
      if (best_single >= 0) {
        current += best_single_gain;
        commit(best_single);
        continue;
      }
      break;
    }
    for (const AffinityEdge& e : sp_.edges) {
      const int lu = local_of_[e.u];
      const int lv = local_of_[e.v];
      if (!FitsOneMore(ctx, counts, used.data(), rule_used.data(), lu)) continue;
      const double gu = marginal(lu);
      ++counts[lu];  // tentatively
      const bool fits_v = FitsOneMore(ctx, counts, used.data(), rule_used.data(), lv);
      // NB: `used`/`rule_used` not updated for the tentative add; re-check
      // capacity for v including u's footprint.
      double gv = -1e18;
      if (fits_v) {
        const std::vector<double>& requ =
            cluster_.service(sp_.services[lu]).request;
        bool fits = true;
        const std::vector<double>& reqv =
            cluster_.service(sp_.services[lv]).request;
        for (int r = 0; r < cluster_.num_resources(); ++r) {
          if (used[r] + requ[r] + reqv[r] > ctx.residual[r] + 1e-9) {
            fits = false;
            break;
          }
        }
        // Joint anti-affinity check: both containers may share a rule.
        if (fits) {
          const int su = sp_.services[lu];
          const int sv = sp_.services[lv];
          for (size_t k = 0; fits && k < active_rules_.size(); ++k) {
            const AntiAffinityRule& rule =
                cluster_.anti_affinity()[active_rules_[k]];
            int needed = 0;
            for (int rs : rule.services) {
              if (rs == su) ++needed;
              if (rs == sv) ++needed;
            }
            if (needed > 0 && rule_used[k] + needed > ctx.rule_limit[k]) {
              fits = false;
            }
          }
        }
        if (fits) gv = marginal(lv);
      }
      --counts[lu];
      if (gv <= -1e17) continue;
      const double g = gu + gv;
      if (g > best_pair_gain) {
        best_pair_gain = g;
        best_pair_u = lu;
        best_pair_v = lv;
      }
    }

    if (best_pair_u >= 0 && best_pair_gain > best_single_gain) {
      current += best_pair_gain;
      commit(best_pair_u);
      commit(best_pair_v);
    } else if (best_single >= 0) {
      current += best_single_gain;
      commit(best_single);
    } else {
      break;
    }
  }

  Pattern p = PatternFromCounts(std::move(counts));
  double pi_dot = 0.0;
  for (int i = 0; i < S(); ++i) pi_dot += pi[i] * p.counts[i];
  *reduced_cost = p.value - pi_dot - mu;
  return p;
}

bool CgSolver::SolveMaster(std::vector<std::vector<double>>& y,
                           std::vector<double>& pi, std::vector<double>& mu) {
  LpModel master;
  master.SetObjectiveSense(ObjectiveSense::kMaximize);
  // Variables y_{m,l}.
  std::vector<std::vector<int>> var(M());
  for (int j = 0; j < M(); ++j) {
    var[j].resize(patterns_[j].size());
    for (size_t l = 0; l < patterns_[j].size(); ++l) {
      var[j][l] = master.AddVariable(0.0, 1.0, patterns_[j][l].value);
    }
  }
  // Convexity rows, one per machine.
  for (int j = 0; j < M(); ++j) {
    std::vector<LinearTerm> terms;
    for (int v : var[j]) terms.push_back({v, 1.0});
    master.AddConstraint(ConstraintType::kEqual, 1.0, std::move(terms));
  }
  // Demand rows, one per service.
  for (int i = 0; i < S(); ++i) {
    std::vector<LinearTerm> terms;
    for (int j = 0; j < M(); ++j) {
      for (size_t l = 0; l < patterns_[j].size(); ++l) {
        if (patterns_[j][l].counts[i] > 0) {
          terms.push_back({var[j][l],
                           static_cast<double>(patterns_[j][l].counts[i])});
        }
      }
    }
    master.AddConstraint(ConstraintType::kLessEqual,
                         cluster_.service(sp_.services[i]).demand,
                         std::move(terms));
  }

  // The pattern uid behind every structural master column, in column
  // order. Columns are appended machine-by-machine, so var[j][l] is
  // sequential; this is the key for translating bases across rounds.
  const int num_cols = master.num_variables();
  std::vector<int> uid_of_col(num_cols, -1);
  for (int j = 0; j < M(); ++j) {
    for (size_t l = 0; l < patterns_[j].size(); ++l) {
      uid_of_col[var[j][l]] = patterns_[j][l].uid;
    }
  }

  // Translate the previous optimal basis into this master's column order.
  // Appended columns enter nonbasic at their lower bound (y = 0), which
  // leaves the carried basic point unchanged; only dual feasibility can
  // break, so the warm solve typically resumes straight into phase 2.
  // If column management dropped a pattern that was basic, the basis no
  // longer covers the rows and this round goes cold.
  LpBasis warm;
  bool have_warm = false;
  if (has_master_basis_) {
    const int old_n = static_cast<int>(master_basis_uids_.size());
    const int rows = M() + S();
    std::unordered_map<int, int> col_of_uid;
    col_of_uid.reserve(num_cols);
    for (int c = 0; c < num_cols; ++c) col_of_uid[uid_of_col[c]] = c;
    have_warm = true;
    warm.basic.reserve(master_basis_.basic.size());
    for (int b : master_basis_.basic) {
      if (b < 0) {  // artificial covering a (stable) row
        warm.basic.push_back(b);
        continue;
      }
      if (b >= old_n) {  // slack: rows are stable, reindex to the new n
        warm.basic.push_back(num_cols + (b - old_n));
        continue;
      }
      auto it = col_of_uid.find(master_basis_uids_[b]);
      if (it == col_of_uid.end()) {
        have_warm = false;  // basic pattern dropped: cold round
        break;
      }
      warm.basic.push_back(it->second);
    }
    if (have_warm) {
      warm.state.assign(num_cols + rows, LpVarStatus::kAtLower);
      for (int c = 0; c < old_n; ++c) {
        auto it = col_of_uid.find(master_basis_uids_[c]);
        if (it != col_of_uid.end()) {
          warm.state[it->second] = master_basis_.state[c];
        }
      }
      for (int r = 0; r < rows; ++r) {
        warm.state[num_cols + r] = master_basis_.state[old_n + r];
      }
    }
  }

  LpOptions lp_options;
  lp_options.deadline = options_.deadline;
  lp_options.warm_basis = have_warm ? &warm : nullptr;
  LpBasis final_basis;
  lp_options.result_basis = &final_basis;
  LpResult lp = SolveLp(master, lp_options);
  ++stats_.master_solves;
  stats_.lp_iterations += lp.iterations;
  stats_.lp_phase1_iterations += lp.phase1_iterations;
  stats_.refactorizations += lp.refactorizations;
  stats_.max_eta_length = std::max(stats_.max_eta_length, lp.max_eta_length);
  if (lp.warm_started) ++stats_.master_warm_started;
  if (lp.status == LpStatus::kOptimal) {
    // Last fully solved master wins: the dual estimate reported upstream.
    stats_.lp_objective = lp.objective;
    stats_.has_lp_bound = true;
  }
  if (lp.status == LpStatus::kOptimal && !final_basis.empty()) {
    master_basis_ = std::move(final_basis);
    master_basis_uids_ = std::move(uid_of_col);
    has_master_basis_ = true;
  } else {
    // Interrupted or dense-kernel solve: no basis to carry forward.
    has_master_basis_ = false;
  }
  if (lp.status != LpStatus::kOptimal &&
      lp.status != LpStatus::kIterationLimit &&
      lp.status != LpStatus::kDeadlineExceeded) {
    RASA_LOG(Warning) << "CG master LP: " << LpStatusToString(lp.status);
    return false;
  }
  if (static_cast<int>(lp.primal.size()) != master.num_variables()) {
    return false;  // interrupted before a usable point existed
  }
  y.assign(M(), {});
  for (int j = 0; j < M(); ++j) {
    y[j].resize(patterns_[j].size());
    for (size_t l = 0; l < patterns_[j].size(); ++l) {
      y[j][l] = lp.primal[var[j][l]];
    }
  }
  mu.assign(M(), 0.0);
  pi.assign(S(), 0.0);
  if (!lp.dual.empty()) {
    for (int j = 0; j < M(); ++j) mu[j] = lp.dual[j];
    for (int i = 0; i < S(); ++i) pi[i] = lp.dual[M() + i];
  }
  return true;
}

SubproblemSolution CgSolver::RoundToSolution(
    const std::vector<std::vector<double>>& y) {
  SubproblemSolution solution;
  std::vector<int> remaining(S());
  for (int i = 0; i < S(); ++i) {
    remaining[i] = cluster_.service(sp_.services[i]).demand;
  }
  // Machines in decreasing order of their best pattern's fractional weight
  // times value: most decided machines commit first.
  std::vector<int> order(M());
  std::vector<double> confidence(M(), 0.0);
  for (int j = 0; j < M(); ++j) {
    order[j] = j;
    for (size_t l = 0; l < y[j].size(); ++l) {
      confidence[j] =
          std::max(confidence[j], y[j][l] * (1.0 + patterns_[j][l].value));
    }
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (confidence[a] != confidence[b]) return confidence[a] > confidence[b];
    return a < b;
  });

  std::vector<std::vector<int>> counts(S(), std::vector<int>(M(), 0));
  for (int j : order) {
    // Choose the pattern with the best y (value as tie-break), then clip it
    // to the remaining demands.
    int best = -1;
    double best_score = -1.0;
    for (size_t l = 0; l < patterns_[j].size(); ++l) {
      const double score = y[j][l] + 1e-6 * patterns_[j][l].value;
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(l);
      }
    }
    if (best < 0) continue;
    for (int i = 0; i < S(); ++i) {
      const int take = std::min(patterns_[j][best].counts[i], remaining[i]);
      if (take > 0) {
        counts[i][j] = take;
        remaining[i] -= take;
      }
    }
  }

  // Greedy completion: pattern clipping can leave demand unplaced even when
  // capacity remains; place leftovers on their best feasible machine.
  if (!options_.greedy_completion) {
    for (int i = 0; i < S(); ++i) {
      solution.unplaced_containers += remaining[i];
      for (int j = 0; j < M(); ++j) {
        if (counts[i][j] > 0) {
          solution.assignments.push_back(
              {sp_.services[i], sp_.machines[j], counts[i][j]});
        }
      }
    }
    solution.gained_affinity = SubproblemGainedAffinity(cluster_, sp_, counts);
    return solution;
  }
  const int R = cluster_.num_resources();
  std::vector<std::vector<double>> used(M(), std::vector<double>(R, 0.0));
  std::vector<std::vector<int>> rule_used(
      M(), std::vector<int>(active_rules_.size(), 0));
  for (int j = 0; j < M(); ++j) {
    for (int i = 0; i < S(); ++i) {
      if (counts[i][j] == 0) continue;
      const Service& svc = cluster_.service(sp_.services[i]);
      for (int r = 0; r < R; ++r) used[j][r] += svc.request[r] * counts[i][j];
      for (size_t k = 0; k < active_rules_.size(); ++k) {
        const AntiAffinityRule& rule =
            cluster_.anti_affinity()[active_rules_[k]];
        for (int rs : rule.services) {
          if (rs == sp_.services[i]) rule_used[j][k] += counts[i][j];
        }
      }
    }
  }
  auto fits = [&](int i, int j) {
    const MachineContext& ctx = contexts_[j];
    if (!ctx.can_host[i]) return false;
    const int s = sp_.services[i];
    const std::vector<double>& req = cluster_.service(s).request;
    for (int r = 0; r < R; ++r) {
      if (used[j][r] + req[r] > ctx.residual[r] + 1e-9) return false;
    }
    for (size_t k = 0; k < active_rules_.size(); ++k) {
      const AntiAffinityRule& rule =
          cluster_.anti_affinity()[active_rules_[k]];
      for (int rs : rule.services) {
        if (rs == s && rule_used[j][k] + 1 > ctx.rule_limit[k]) return false;
      }
    }
    return true;
  };
  for (int i = 0; i < S(); ++i) {
    const double d_i = cluster_.service(sp_.services[i]).demand;
    while (remaining[i] > 0) {
      int best_j = -1;
      double best_gain = -1.0;
      for (int j = 0; j < M(); ++j) {
        if (!fits(i, j)) continue;
        double gain = 0.0;
        for (const auto& [nbr, w] : local_adj_[i]) {
          if (counts[nbr][j] == 0) continue;
          const double d_n = cluster_.service(sp_.services[nbr]).demand;
          if (d_n <= 0) continue;
          gain += w * (std::min((counts[i][j] + 1) / d_i,
                                counts[nbr][j] / d_n) -
                       std::min(counts[i][j] / d_i, counts[nbr][j] / d_n));
        }
        if (gain > best_gain) {
          best_gain = gain;
          best_j = j;
        }
      }
      if (best_j < 0) break;
      ++counts[i][best_j];
      --remaining[i];
      const Service& svc = cluster_.service(sp_.services[i]);
      for (int r = 0; r < R; ++r) used[best_j][r] += svc.request[r];
      for (size_t k = 0; k < active_rules_.size(); ++k) {
        const AntiAffinityRule& rule =
            cluster_.anti_affinity()[active_rules_[k]];
        for (int rs : rule.services) {
          if (rs == sp_.services[i]) ++rule_used[best_j][k];
        }
      }
    }
  }

  for (int i = 0; i < S(); ++i) {
    solution.unplaced_containers += remaining[i];
    for (int j = 0; j < M(); ++j) {
      if (counts[i][j] > 0) {
        solution.assignments.push_back(
            {sp_.services[i], sp_.machines[j], counts[i][j]});
      }
    }
  }
  solution.gained_affinity = SubproblemGainedAffinity(cluster_, sp_, counts);
  return solution;
}

StatusOr<SubproblemSolution> CgSolver::Solve(CgStats* stats) {
  if (S() == 0 || M() == 0) {
    SubproblemSolution empty;
    for (int s : sp_.services) {
      empty.unplaced_containers += cluster_.service(s).demand;
    }
    return empty;
  }
  BuildContexts();

  // Seed patterns per machine: empty, the ORIGINAL placement's pattern
  // (clipped to residual feasibility), and a zero-dual greedy pattern.
  patterns_.assign(M(), {});
  const std::vector<double> zero_pi(S(), 0.0);
  for (int j = 0; j < M(); ++j) {
    patterns_[j].push_back(PatternFromCounts(std::vector<int>(S(), 0)));
    // Original pattern.
    std::vector<int> counts(S(), 0);
    std::vector<double> used(cluster_.num_resources(), 0.0);
    std::vector<int> rule_used(active_rules_.size(), 0);
    for (const auto& [s, count] : original_.ServicesOn(sp_.machines[j])) {
      const int i = local_of_[s];
      if (i < 0) continue;
      for (int c = 0; c < count; ++c) {
        if (!FitsOneMore(contexts_[j], counts, used.data(), rule_used.data(), i)) break;
        ++counts[i];
        const std::vector<double>& req = cluster_.service(s).request;
        for (int r = 0; r < cluster_.num_resources(); ++r) used[r] += req[r];
        for (size_t k = 0; k < active_rules_.size(); ++k) {
          const AntiAffinityRule& rule =
              cluster_.anti_affinity()[active_rules_[k]];
          for (int rs : rule.services) {
            if (rs == s) {
              ++rule_used[k];
              break;
            }
          }
        }
      }
    }
    bool nonzero = false;
    for (int c : counts) nonzero |= c > 0;
    if (nonzero) patterns_[j].push_back(PatternFromCounts(std::move(counts)));
    // Greedy pattern with zero duals (pure affinity packing).
    double rc = 0.0;
    Pattern greedy = PricePattern(contexts_[j], zero_pi, 0.0, &rc);
    patterns_[j].push_back(std::move(greedy));
    stats_.patterns_generated += static_cast<int>(patterns_[j].size());
  }

  std::vector<std::vector<double>> y;
  std::vector<double> pi;
  std::vector<double> mu;

  for (int round = 0; round < options_.max_rounds; ++round) {
    if (options_.deadline.Expired()) {
      stats_.hit_deadline = true;
      break;
    }
    ++stats_.rounds;
    if (!SolveMaster(y, pi, mu)) break;  // fall through to greedy fallback

    // Column management: keep the restricted master small by dropping
    // patterns the LP does not use (y ~ 0), so later rounds stay cheap.
    const size_t kMaxPatternsPerMachine =
        options_.max_patterns_per_machine > 0
            ? static_cast<size_t>(options_.max_patterns_per_machine)
            : std::numeric_limits<size_t>::max();
    for (int j = 0; j < M(); ++j) {
      if (patterns_[j].size() <= kMaxPatternsPerMachine) continue;
      std::vector<std::pair<Pattern, double>> kept;
      for (size_t l = 0; l < patterns_[j].size(); ++l) {
        kept.push_back({std::move(patterns_[j][l]), y[j][l]});
      }
      // Highest master weight first; value breaks ties. The empty pattern
      // (index 0 by construction has all-zero counts) always survives via
      // its weight or the final re-add below.
      std::sort(kept.begin(), kept.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first.value > b.first.value;
      });
      kept.resize(kMaxPatternsPerMachine);
      patterns_[j].clear();
      bool has_empty = false;
      for (auto& [p, weight] : kept) {
        bool empty = true;
        for (int c : p.counts) empty &= c == 0;
        has_empty |= empty;
        patterns_[j].push_back(std::move(p));
      }
      if (!has_empty) {
        patterns_[j].push_back(PatternFromCounts(std::vector<int>(S(), 0)));
      }
      // Master weights are recomputed next round; drop the stale ones.
    }
    // Pricing round (GenPattern): one candidate pattern per machine.
    int added = 0;
    for (int j = 0; j < M(); ++j) {
      if (options_.deadline.Expired()) {
        stats_.hit_deadline = true;
        break;
      }
      double rc = 0.0;
      Pattern p = PricePattern(contexts_[j], pi, mu[j], &rc);
      if (rc > options_.pricing_tolerance) {
        // Deduplicate against existing patterns of this machine.
        bool duplicate = false;
        for (const Pattern& q : patterns_[j]) {
          if (q.counts == p.counts) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          patterns_[j].push_back(std::move(p));
          ++added;
          ++stats_.patterns_generated;
        }
      }
    }
    if (added == 0) break;  // IsTerminate: no negative reduced cost left
  }

  if (!SolveMaster(y, pi, mu)) {
    // Master never produced a usable fractional point (e.g. the deadline
    // expired inside the very first LP). Fall back to the affinity greedy —
    // CG stays anytime.
    stats_.hit_deadline = stats_.hit_deadline || options_.deadline.Expired();
    Placement scratch = base_;
    SubproblemSolution greedy = GreedyAffinityPlace(cluster_, sp_, scratch);
    if (stats != nullptr) *stats = stats_;
    return greedy;
  }
  SubproblemSolution solution = RoundToSolution(y);
  if (stats != nullptr) *stats = stats_;
  return solution;
}

}  // namespace

StatusOr<SubproblemSolution> SolveSubproblemCg(const Cluster& cluster,
                                               const Subproblem& subproblem,
                                               const Placement& base,
                                               const Placement& original,
                                               const CgOptions& options,
                                               CgStats* stats) {
  CgSolver solver(cluster, subproblem, base, original, options);
  return solver.Solve(stats);
}

}  // namespace rasa
