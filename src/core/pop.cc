#include "core/pop.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"

namespace rasa {

bool ShouldUsePop(const PopOptions& options, const Subproblem& subproblem) {
  return options.max_services > 0 &&
         static_cast<int>(subproblem.services.size()) > options.max_services;
}

StatusOr<SubproblemSolution> RunPoolAlgorithmPop(
    PoolAlgorithm algorithm, const Cluster& cluster,
    const Subproblem& subproblem, const Placement& base,
    const Placement& original, const Deadline& deadline, uint64_t seed,
    const PopOptions& options, PoolAttemptStats* stats,
    const Placement* mip_incumbent, PopStats* pop_stats) {
  Stopwatch timer;
  const int num_services = static_cast<int>(subproblem.services.size());
  const int num_machines = static_cast<int>(subproblem.machines.size());
  const int k = std::max(
      2, std::min({options.num_replicas, num_services, num_machines}));
  if (num_services < 2 || num_machines < 2 || k < 2) {
    // Nothing to split; solve directly.
    return RunPoolAlgorithm(algorithm, cluster, subproblem, base, original,
                            deadline, seed, stats, mip_incumbent);
  }

  // Seeded split: shuffle, then deal round-robin. Services and machines use
  // one stream drawn in a fixed order, so the split depends on `seed` alone.
  Rng rng(seed);
  std::vector<int> services = subproblem.services;
  std::vector<int> machines = subproblem.machines;
  rng.Shuffle(services);
  rng.Shuffle(machines);
  std::vector<uint64_t> replica_seeds(static_cast<size_t>(k));
  for (int r = 0; r < k; ++r) replica_seeds[r] = rng.Next();

  std::vector<Subproblem> replicas(static_cast<size_t>(k));
  for (int i = 0; i < num_services; ++i) {
    replicas[i % k].services.push_back(services[i]);
  }
  for (int j = 0; j < num_machines; ++j) {
    replicas[j % k].machines.push_back(machines[j]);
  }
  double internal_sum = 0.0;
  for (Subproblem& replica : replicas) {
    // Canonical order within a replica, matching the partitioner's output
    // shape (solvers index services/machines positionally either way, but
    // sorted ids keep logs and caches comparable).
    std::sort(replica.services.begin(), replica.services.end());
    std::sort(replica.machines.begin(), replica.machines.end());
    PopulateSubproblemEdges(cluster, replica);
    internal_sum += replica.internal_affinity;
  }
  if (pop_stats != nullptr) {
    pop_stats->replicas = k;
    pop_stats->cut_affinity =
        std::max(0.0, subproblem.internal_affinity - internal_sum);
  }

  // Solve replicas sequentially, splitting whatever wall-clock remains
  // evenly across the replicas still to run.
  SubproblemSolution combined;
  for (int r = 0; r < k; ++r) {
    const double remaining = deadline.RemainingSeconds();
    const Deadline replica_deadline =
        std::isfinite(remaining)
            ? deadline.ClampedToSeconds(std::max(0.02, remaining / (k - r)))
            : deadline;
    PoolAttemptStats replica_stats;
    StatusOr<SubproblemSolution> solved = RunPoolAlgorithm(
        algorithm, cluster, replicas[r], base, original, replica_deadline,
        replica_seeds[r], &replica_stats, mip_incumbent);
    if (!solved.ok()) {
      // One failed replica fails the attempt; the caller's degradation
      // ladder (secondary algorithm, then greedy) takes over.
      if (stats != nullptr) {
        stats->algorithm = algorithm;
        stats->seconds = timer.ElapsedSeconds();
      }
      return solved;
    }
    combined.assignments.insert(combined.assignments.end(),
                                solved->assignments.begin(),
                                solved->assignments.end());
    combined.unplaced_containers += solved->unplaced_containers;
  }

  // Re-price the union over the FULL subproblem's edges: replicas only saw
  // their own internal edges, but two services split apart may still land
  // on one machine.
  std::vector<int> local_service(cluster.num_services(), -1);
  for (size_t i = 0; i < subproblem.services.size(); ++i) {
    local_service[subproblem.services[i]] = static_cast<int>(i);
  }
  std::vector<int> local_machine(cluster.num_machines(), -1);
  for (size_t j = 0; j < subproblem.machines.size(); ++j) {
    local_machine[subproblem.machines[j]] = static_cast<int>(j);
  }
  std::vector<std::vector<int>> counts(
      subproblem.services.size(),
      std::vector<int>(subproblem.machines.size(), 0));
  for (const SubproblemSolution::Assignment& a : combined.assignments) {
    const int s = local_service[a.service];
    const int m = local_machine[a.machine];
    if (s >= 0 && m >= 0) counts[s][m] += a.count;
  }
  combined.gained_affinity =
      SubproblemGainedAffinity(cluster, subproblem, counts);

  if (stats != nullptr) {
    // Aggregate timing only: deliberately no CG/MIP bound, because a
    // replica-local bound does not bound the full subproblem. The
    // certificate term therefore stays at the trivial bound.
    stats->algorithm = algorithm;
    stats->seconds = timer.ElapsedSeconds();
    stats->has_cg = false;
    stats->has_mip = false;
  }
  return combined;
}

}  // namespace rasa
