#ifndef RASA_CORE_MIP_ALGORITHM_H_
#define RASA_CORE_MIP_ALGORITHM_H_

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/statusor.h"
#include "common/timer.h"
#include "core/subproblem.h"
#include "lp/model.h"
#include "mip/solver.h"

namespace rasa {

/// Introspection of one subproblem MIP solve, surfaced to the solve ledger
/// (observation-only; nothing reads it back into the algorithm).
struct SubproblemMipStats {
  /// A branch-and-bound actually ran (the model fit under the row cap and
  /// was handed to SolveMip; false when the greedy warm start was returned
  /// without a solve, e.g. an empty subproblem).
  bool solved = false;
  MipStatus status = MipStatus::kError;
  /// Incumbent objective (model sense: gained affinity inside the
  /// subproblem) and the best proven upper bound on it.
  double objective = 0.0;
  double best_bound = 0.0;
  /// `best_bound` is a genuine dual bound (see MipResult::bound_proven);
  /// when false it merely echoes the incumbent.
  bool bound_proven = false;
  double root_lp_objective = 0.0;
  bool has_root_lp = false;
  double relative_gap = 0.0;
  int nodes = 0;
  int lp_iterations = 0;
  /// Node LPs that accepted a parent-basis warm start (revised simplex;
  /// the root is always cold, so the hit-rate denominator is nodes - 1).
  int warm_started_nodes = 0;
  /// Largest single node-LP pivot count.
  int max_node_pivots = 0;
  /// Basis refactorizations / longest eta file across all node LP solves
  /// (both 0 when every node LP ran on the dense kernel).
  int refactorizations = 0;
  int max_eta_length = 0;
};

struct MipAlgorithmOptions {
  Deadline deadline = Deadline::Infinite();
  /// Refuse to build models bigger than this many constraint rows: the
  /// dense-basis simplex would neither fit in memory nor finish a single
  /// relaxation, which the benches report as OOT (the NO-PARTITION
  /// behaviour of §V-B).
  int max_model_rows = 2000;
  double relative_gap = 1e-4;
  uint64_t seed = 11;
  /// Optional feasible placement (the incremental path's prior incumbent)
  /// offered as the branch-and-bound warm start when it beats the greedy
  /// one. Only its counts on the subproblem's own (service, machine) pairs
  /// are read; not owned, must outlive the solve.
  const Placement* incumbent_hint = nullptr;
};

/// Builds the MIP of expressions (2)-(9) restricted to a subproblem:
/// integer x_{s,m} per (service, machine), continuous a_{e,m} per
/// (affinity edge, machine) with the two min-linearization rows, residual
/// resource capacities, residual anti-affinity limits, and schedulability
/// bounds. The SLA row is relaxed to sum_m x_{s,m} <= d_s — the paper
/// tolerates failed deployments, which the default scheduler absorbs.
///
/// `x_index(i, j)` of the returned mapping gives the column of service
/// subproblem.services[i] on machine subproblem.machines[j].
struct SubproblemMip {
  LpModel model;
  std::vector<std::vector<int>> x_index;  // [service_local][machine_local]
};
StatusOr<SubproblemMip> BuildSubproblemMip(const Cluster& cluster,
                                           const Subproblem& subproblem,
                                           const Placement& base,
                                           int max_model_rows);

/// The MIP-based pool algorithm (§IV-C1): greedy warm start, then LP-based
/// branch-and-bound until optimal or deadline. `base` holds the trivial
/// residents and is NOT modified. Fails with kResourceExhausted when the
/// model exceeds `max_model_rows` (reported as OOT upstream). `stats`, when
/// non-null, receives the solver introspection for the solve ledger.
StatusOr<SubproblemSolution> SolveSubproblemMip(
    const Cluster& cluster, const Subproblem& subproblem,
    const Placement& base, const MipAlgorithmOptions& options = {},
    SubproblemMipStats* stats = nullptr);

/// The grouped variant of the RASA MIP, following the paper's formulation
/// literally: gained-affinity variables a_{s,s',g} are indexed by machine
/// *groups* g in F (machines with the same spec and platform), and the
/// resource/anti-affinity rows aggregate each group's residuals. This cuts
/// the model size by ~|group| but (a) the objective over-counts collocation
/// across a group's machines, and (b) the group solution must be
/// disaggregated onto real machines afterwards, where some of the predicted
/// affinity is lost. SolveSubproblemMipGrouped performs both steps and
/// reports the *realized* gained affinity. The ablation bench quantifies
/// this trade-off against the per-machine model.
StatusOr<SubproblemSolution> SolveSubproblemMipGrouped(
    const Cluster& cluster, const Subproblem& subproblem,
    const Placement& base, const MipAlgorithmOptions& options = {});

}  // namespace rasa

#endif  // RASA_CORE_MIP_ALGORITHM_H_
