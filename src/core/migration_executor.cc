#include "core/migration_executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "core/recovery.h"

namespace rasa {

Status PlacementActions::Create(int machine, int service) {
  if (!live_.CanPlace(machine, service)) {
    return FailedPreconditionError(
        StrFormat("create of service %d on machine %d infeasible", service,
                  machine));
  }
  live_.Add(machine, service);
  return Status::OK();
}

namespace {

// Same rolling-update floor as the planner and validator (MinAliveFloor in
// core/migration.h): small services may always have one container offline.
int FloorAlive(const Cluster& cluster, int service, double fraction) {
  return MinAliveFloor(cluster.service(service).demand, fraction);
}

// Re-binds `src` counts to a placement over `cluster` (the target usually
// references the measured-cluster copy of the same shape).
Placement CopyCounts(const Cluster& cluster, const Placement& src) {
  Placement out(cluster);
  for (int m = 0; m < cluster.num_machines(); ++m) {
    for (const auto& [s, count] : src.ServicesOn(m)) out.Add(m, s, count);
  }
  return out;
}

// DiffCount alone is one-sided (containers `a` has that `b` lacks); an
// under-deployed live state is a strict subset of the target and would
// read as converged. Convergence needs the symmetric difference.
int SymmetricDiff(const Placement& a, const Placement& b) {
  return a.DiffCount(b) + b.DiffCount(a);
}

// Post-batch audit: resource/anti-affinity feasibility plus the SLA floor
// against the actually-reached state. Also records the batch's SLA
// headroom — the smallest (alive - floor) across services — which is the
// early-warning signal a production operator alerts on.
void AuditPartialStep(const Cluster& cluster, const Placement& live,
                      double min_alive_fraction,
                      MigrationExecutionReport& report) {
  if (!live.CheckFeasible(/*check_sla=*/false).ok()) {
    ++report.feasibility_violations;
  }
  int min_headroom = std::numeric_limits<int>::max();
  for (int s = 0; s < cluster.num_services(); ++s) {
    const int headroom =
        live.TotalOf(s) - FloorAlive(cluster, s, min_alive_fraction);
    min_headroom = std::min(min_headroom, headroom);
    if (headroom < 0) ++report.sla_violations;
  }
  if (min_headroom != std::numeric_limits<int>::max()) {
    static Histogram& headroom_metric =
        MetricRegistry::Default().GetHistogram("migration.sla_headroom");
    headroom_metric.Observe(static_cast<double>(min_headroom));
  }
}

// Least-allocated available machine that can take one container of `s` in
// `placement`; -1 if none.
int BestAvailableMachine(const Cluster& cluster, const Placement& placement,
                         const ClusterActions& actions, int s) {
  int best = -1;
  double best_score = -1.0;
  for (int m = 0; m < cluster.num_machines(); ++m) {
    if (!actions.Available(m) || !placement.CanPlace(m, s)) continue;
    double min_free_frac = 1.0;
    for (int r = 0; r < cluster.num_resources(); ++r) {
      const double cap = cluster.machine(m).capacity[r];
      if (cap <= 0.0) continue;
      min_free_frac = std::min(min_free_frac, placement.FreeResource(m, r) / cap);
    }
    if (min_free_frac > best_score) {
      best_score = min_free_frac;
      best = m;
    }
  }
  return best;
}

// Rewrites `desired` so no command would target an unavailable machine:
// creates planned there move to available machines (or the planned move is
// cancelled, keeping the container at its source); deletes planned there
// are abandoned, cancelling the matched create elsewhere. After this,
// desired == live on every unavailable machine, so a recomputed path never
// touches one.
void AdjustTargetForUnavailable(const Cluster& cluster, const Placement& live,
                                Placement& desired,
                                const ClusterActions& actions,
                                MigrationExecutionReport& report) {
  for (int m = 0; m < cluster.num_machines(); ++m) {
    if (actions.Available(m)) continue;
    // Snapshot the per-service deltas before mutating.
    std::vector<std::pair<int, int>> deltas;  // (service, want - cur)
    for (int s = 0; s < cluster.num_services(); ++s) {
      const int delta = desired.CountOn(m, s) - live.CountOn(m, s);
      if (delta != 0) deltas.push_back({s, delta});
    }
    for (const auto& [s, delta] : deltas) {
      if (delta > 0) {
        // Creates on m are impossible: place the containers elsewhere.
        RASA_CHECK(desired.Remove(m, s, delta).ok());
        for (int i = 0; i < delta; ++i) {
          int dest = BestAvailableMachine(cluster, desired, actions, s);
          if (dest < 0) {
            // Cancel the planned move instead: leave the container where it
            // currently lives (a machine with a planned surplus delete).
            for (int d = 0; d < cluster.num_machines(); ++d) {
              if (d != m && desired.CountOn(d, s) < live.CountOn(d, s) &&
                  desired.CanPlace(d, s)) {
                dest = d;
                break;
              }
            }
          }
          if (dest >= 0) {
            desired.Add(dest, s);
          } else {
            ++report.dropped_containers;
          }
        }
      } else {
        // Deletes on m are impossible: the containers stay; cancel the
        // matched creates elsewhere so service totals stay balanced.
        desired.Add(m, s, -delta);
        int to_cancel = -delta;
        for (int d = 0; d < cluster.num_machines() && to_cancel > 0; ++d) {
          if (d == m) continue;
          const int cancellable =
              std::min(to_cancel, desired.CountOn(d, s) - live.CountOn(d, s));
          if (cancellable > 0) {
            RASA_CHECK(desired.Remove(d, s, cancellable).ok());
            to_cancel -= cancellable;
          }
        }
        // Any remainder's matched create already executed (or the target
        // shrinks the service): compensate with a surplus delete on an
        // available machine so the service does not stay over-deployed.
        for (int d = 0; d < cluster.num_machines() && to_cancel > 0; ++d) {
          if (d == m || !actions.Available(d)) continue;
          const int removable = std::min(to_cancel, desired.CountOn(d, s));
          if (removable > 0) {
            RASA_CHECK(desired.Remove(d, s, removable).ok());
            to_cancel -= removable;
          }
        }
        // Only if every other replica also sits on unavailable machines
        // does the surplus genuinely stay until a machine returns.
      }
    }
  }
}

// Services left under-deployed by permanently failed creates would deadlock
// ComputeMigrationPath (creates there are gated on matching deletes), so
// missing containers are re-created directly — creates only raise alive
// counts, hence are always SLA-safe. Whatever cannot be recreated anywhere
// is dropped from the desired target so the next path stays balanced.
void RepairDeficits(const Cluster& cluster, Placement& live,
                    Placement& desired, ClusterActions& actions,
                    const MigrationExecutorOptions& options, Rng& rng,
                    MigrationExecutionReport& report) {
  for (int s = 0; s < cluster.num_services(); ++s) {
    while (live.TotalOf(s) < desired.TotalOf(s)) {
      // Prefer machines the target actually wants the container on.
      int dest = -1;
      for (int m = 0; m < cluster.num_machines(); ++m) {
        if (desired.CountOn(m, s) > live.CountOn(m, s) &&
            actions.Available(m) && live.CanPlace(m, s)) {
          dest = m;
          break;
        }
      }
      if (dest < 0) dest = BestAvailableMachine(cluster, live, actions, s);
      bool created = false;
      if (dest >= 0) {
        RetryStats st;
        const Status status = RetryCall(
            options.retry, options.deadline, rng,
            [&](const Deadline&) { return actions.Create(dest, s); }, &st);
        report.retries += st.retries;
        report.backoff_seconds += st.backoff_seconds;
        ++report.commands_attempted;
        if (status.ok()) {
          ++report.commands_succeeded;
          created = true;
        } else {
          ++report.commands_failed;
        }
      }
      if (!created) {
        // Shrink the desired target by one container of s (preferring a
        // machine with a deficit) and record the loss.
        int victim = -1;
        for (int m = 0; m < cluster.num_machines(); ++m) {
          if (desired.CountOn(m, s) > live.CountOn(m, s)) {
            victim = m;
            break;
          }
        }
        if (victim < 0) break;  // totals already consistent; defensive
        RASA_CHECK(desired.Remove(victim, s).ok());
        ++report.dropped_containers;
      }
    }
  }
}

// One pass over the plan: every command attempted with retry/backoff, the
// SLA floor re-checked against the actual state before each delete, and the
// full invariants audited after every (possibly partial) batch.
void ExecutePass(const Cluster& cluster, Placement& live,
                 const MigrationPlan& plan, ClusterActions& actions,
                 const MigrationExecutorOptions& options, Rng& rng,
                 MigrationExecutionReport& report) {
  static Histogram& batch_size_metric =
      MetricRegistry::Default().GetHistogram("migration.batch_commands");
  for (const std::vector<MigrationCommand>& batch : plan.batches) {
    TraceSpan batch_span("migration_batch");
    batch_size_metric.Observe(static_cast<double>(batch.size()));
    // WAL intent: the batch's exact commands are durable before the first
    // one touches the cluster, so recovery can classify each as
    // applied / not-applied against the observed placement.
    const int ordinal = options.journal_first_batch + report.batches_executed;
    if (options.journal != nullptr) {
      JournalRecord intent;
      intent.type = JournalRecordType::kBatchIntent;
      intent.cycle = options.journal_cycle;
      intent.batch = ordinal;
      intent.commands = batch;
      const Status appended = options.journal->Append(intent);
      if (!appended.ok()) {
        RASA_LOG(Warning) << "journal intent append failed: "
                          << appended.ToString();
        report.crashed = true;
        return;
      }
    }
    bool incomplete = false;
    for (const MigrationCommand& cmd : batch) {
      if (options.deadline.Expired()) return;
      if (cmd.type == MigrationCommandType::kDelete) {
        // The planner's floor assumed every earlier create succeeded; the
        // actual state may be lower, so re-verify before deleting.
        if (live.TotalOf(cmd.service) - 1 <
            FloorAlive(cluster, cmd.service, options.min_alive_fraction)) {
          ++report.commands_deferred;
          incomplete = true;
          continue;
        }
      } else if (!live.CanPlace(cmd.machine, cmd.service)) {
        // Stale plan (snapshot drift): the slot is gone; re-plan later.
        ++report.commands_failed;
        incomplete = true;
        continue;
      }
      if (!actions.Available(cmd.machine)) {
        ++report.commands_failed;
        incomplete = true;
        continue;
      }
      RetryStats st;
      const Status status = RetryCall(
          options.retry, options.deadline, rng,
          [&](const Deadline&) {
            return cmd.type == MigrationCommandType::kDelete
                       ? actions.Delete(cmd.machine, cmd.service)
                       : actions.Create(cmd.machine, cmd.service);
          },
          &st);
      report.retries += st.retries;
      report.backoff_seconds += st.backoff_seconds;
      ++report.commands_attempted;
      if (status.ok()) {
        ++report.commands_succeeded;
        if (options.crash_after_command && options.crash_after_command()) {
          report.crashed = true;
          return;
        }
      } else {
        ++report.commands_failed;
        incomplete = true;
      }
    }
    ++report.batches_executed;
    if (incomplete) ++report.partial_batches;
    AuditPartialStep(cluster, live, options.min_alive_fraction, report);
    if (options.crash_after_batch && options.crash_after_batch()) {
      report.crashed = true;  // died after applying, before the commit
      return;
    }
    if (options.journal != nullptr) {
      JournalRecord commit;
      commit.type = JournalRecordType::kBatchCommit;
      commit.cycle = options.journal_cycle;
      commit.batch = ordinal;
      const Status appended = options.journal->Append(commit);
      if (!appended.ok()) {
        RASA_LOG(Warning) << "journal commit append failed: "
                          << appended.ToString();
        report.crashed = true;
        return;
      }
    }
  }
}

}  // namespace

MigrationExecutionReport ExecuteMigration(const Cluster& cluster,
                                          Placement& live,
                                          const Placement& target,
                                          const MigrationPlan& plan,
                                          ClusterActions& actions,
                                          const MigrationExecutorOptions& options) {
  MigrationExecutionReport report;
  Rng rng(options.seed);
  Placement desired = CopyCounts(cluster, target);

  const MigrationPlan* current_plan = &plan;
  MigrationPlan replanned;
  for (int round = 0;; ++round) {
    ExecutePass(cluster, live, *current_plan, actions, options, rng, report);
    if (report.crashed) return report;  // stopped dead: no metrics, no audit
    if (SymmetricDiff(live, desired) == 0) {
      report.reached_target = true;
      break;
    }
    if (round >= options.max_replans || options.deadline.Expired()) break;

    // Re-plan from the actually-reached intermediate placement.
    ++report.replans;
    AdjustTargetForUnavailable(cluster, live, desired, actions, report);
    RepairDeficits(cluster, live, desired, actions, options, rng, report);
    if (SymmetricDiff(live, desired) == 0) {
      report.reached_target = true;
      break;
    }
    MigrationOptions migration_options;
    migration_options.min_alive_fraction = options.min_alive_fraction;
    StatusOr<MigrationPlan> next =
        ComputeMigrationPath(cluster, live, desired, migration_options);
    if (!next.ok()) {
      RASA_LOG(Warning) << "re-plan failed: " << next.status().ToString();
      ++report.replan_failures;
      break;
    }
    replanned = std::move(next).value();
    current_plan = &replanned;
    if (replanned.batches.empty()) {
      // Nothing executable remains (all residual moves touch cordoned
      // machines); stop gracefully.
      report.reached_target = SymmetricDiff(live, desired) == 0;
      break;
    }
  }
  report.residual_diff = SymmetricDiff(live, desired);

  // Run-level executor metrics (observation-only; per-batch sizes and SLA
  // headroom are recorded inline above).
  {
    MetricRegistry& reg = MetricRegistry::Default();
    static Counter& runs = reg.GetCounter("migration.runs");
    static Counter& batches = reg.GetCounter("migration.batches");
    static Counter& attempted = reg.GetCounter("migration.commands_attempted");
    static Counter& succeeded = reg.GetCounter("migration.commands_succeeded");
    static Counter& failed = reg.GetCounter("migration.commands_failed");
    static Counter& deferred = reg.GetCounter("migration.commands_deferred");
    static Counter& retries = reg.GetCounter("migration.retries");
    static Counter& replans = reg.GetCounter("migration.replans");
    static Counter& sla_violations = reg.GetCounter("migration.sla_violations");
    static Counter& partial = reg.GetCounter("migration.partial_executions");
    runs.Increment();
    batches.Increment(static_cast<uint64_t>(report.batches_executed));
    attempted.Increment(static_cast<uint64_t>(report.commands_attempted));
    succeeded.Increment(static_cast<uint64_t>(report.commands_succeeded));
    failed.Increment(static_cast<uint64_t>(report.commands_failed));
    deferred.Increment(static_cast<uint64_t>(report.commands_deferred));
    retries.Increment(static_cast<uint64_t>(report.retries));
    replans.Increment(static_cast<uint64_t>(report.replans));
    sla_violations.Increment(static_cast<uint64_t>(report.sla_violations));
    if (!report.reached_target) partial.Increment();
  }
  return report;
}

}  // namespace rasa
