#include "core/partitioning.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "graph/partition.h"

namespace rasa {
namespace {

// Removes all containers of `services` from a copy of `current`, leaving the
// trivial residents (machine shaving, §IV-B5).
Placement MakeBasePlacement(const Cluster& cluster, const Placement& current,
                            const std::vector<int>& crucial) {
  Placement base = current;
  for (int s : crucial) {
    // Copy the machine list first: Remove mutates the map being iterated.
    std::vector<std::pair<int, int>> on;
    for (const auto& [m, count] : base.MachinesOf(s)) on.push_back({m, count});
    for (const auto& [m, count] : on) {
      RASA_CHECK(base.Remove(m, s, count).ok());
    }
  }
  return base;
}

// Splits an affinity-connected service set into balanced pieces of at most
// `max_size` services using the paper's loss-min heuristic.
std::vector<std::vector<int>> SplitLargeSet(const Cluster& cluster,
                                            const std::vector<int>& services,
                                            const PartitioningOptions& options,
                                            Rng& rng) {
  const int n = static_cast<int>(services.size());
  if (n <= options.max_subproblem_services) return {services};
  const AffinityGraph sub = cluster.affinity().InducedSubgraph(services);
  const int h = (n + options.max_subproblem_services - 1) /
                options.max_subproblem_services;
  const int trials = std::max(1, std::min(sub.num_edges(),
                                          options.bfs_trials_cap));
  Partition partition = LossMinBalancedPartition(sub, h, trials, rng,
                                                 options.balance_factor);
  std::vector<std::vector<int>> out(partition.num_parts);
  for (int v = 0; v < n; ++v) {
    out[partition.part_of[v]].push_back(services[v]);
  }
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const std::vector<int>& g) { return g.empty(); }),
            out.end());
  return out;
}

// Proportional machine assignment (§IV-B5): per machine spec, subproblems
// receive machine counts proportional to their requested resources, among
// machines whose platform can host them.
void AssignMachines(const Cluster& cluster, const Placement& base,
                    std::vector<Subproblem>& subproblems) {
  const int K = static_cast<int>(subproblems.size());
  if (K == 0) return;
  // Requested CPU per (subproblem, platform).
  std::vector<std::vector<double>> req(K, std::vector<double>(2, 0.0));
  for (int k = 0; k < K; ++k) {
    for (int s : subproblems[k].services) {
      const Service& svc = cluster.service(s);
      req[k][svc.platform] += svc.request[0] * svc.demand;
    }
    subproblems[k].machines.clear();
  }

  for (int platform = 0; platform < 2; ++platform) {
    double req_total = 0.0;
    for (int k = 0; k < K; ++k) req_total += req[k][platform];
    if (req_total <= 0.0) continue;

    // Machines of this platform, grouped by spec, heaviest residual first.
    std::vector<int> machines;
    for (int m = 0; m < cluster.num_machines(); ++m) {
      if (cluster.machine(m).platform == platform) machines.push_back(m);
    }
    std::sort(machines.begin(), machines.end(), [&](int a, int b) {
      if (cluster.machine(a).spec_id != cluster.machine(b).spec_id) {
        return cluster.machine(a).spec_id < cluster.machine(b).spec_id;
      }
      const double ra = ResidualCapacity(cluster, base, a, 0);
      const double rb = ResidualCapacity(cluster, base, b, 0);
      if (ra != rb) return ra > rb;
      return a < b;
    });

    // Walk spec groups; within each, hand out counts by largest remainder.
    size_t i = 0;
    while (i < machines.size()) {
      size_t j = i;
      const int spec = cluster.machine(machines[i]).spec_id;
      while (j < machines.size() &&
             cluster.machine(machines[j]).spec_id == spec) {
        ++j;
      }
      const int count = static_cast<int>(j - i);
      std::vector<int> quota(K, 0);
      std::vector<std::pair<double, int>> remainder;
      int handed = 0;
      for (int k = 0; k < K; ++k) {
        const double exact = count * req[k][platform] / req_total;
        quota[k] = static_cast<int>(exact);
        handed += quota[k];
        remainder.push_back({exact - quota[k], k});
      }
      std::sort(remainder.begin(), remainder.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      for (int extra = 0; extra < count - handed; ++extra) {
        ++quota[remainder[extra % K].second];
      }
      // Deal machines round-robin across subproblems with remaining quota so
      // every subproblem sees a mix of big and small residuals.
      size_t cursor = i;
      while (cursor < j) {
        bool any = false;
        for (int k = 0; k < K && cursor < j; ++k) {
          if (quota[k] > 0 && req[k][platform] > 0.0) {
            subproblems[k].machines.push_back(machines[cursor]);
            ++cursor;
            --quota[k];
            any = true;
          }
        }
        if (!any) break;
      }
      i = j;
    }
  }

  // Every subproblem with demand should own at least one machine when its
  // platform has any; steal from the best-endowed sibling otherwise.
  for (int k = 0; k < K; ++k) {
    if (!subproblems[k].machines.empty() || subproblems[k].services.empty()) {
      continue;
    }
    const int platform =
        cluster.service(subproblems[k].services.front()).platform;
    int donor = -1;
    size_t donor_size = 1;
    for (int k2 = 0; k2 < K; ++k2) {
      if (k2 == k) continue;
      size_t matching = 0;
      for (int m : subproblems[k2].machines) {
        if (cluster.machine(m).platform == platform) ++matching;
      }
      if (matching > donor_size) {
        donor_size = matching;
        donor = k2;
      }
    }
    if (donor < 0) continue;
    auto& pool = subproblems[donor].machines;
    for (size_t idx = 0; idx < pool.size(); ++idx) {
      if (cluster.machine(pool[idx]).platform == platform) {
        subproblems[k].machines.push_back(pool[idx]);
        pool.erase(pool.begin() + idx);
        break;
      }
    }
  }
}

}  // namespace

double MasterRatio(int num_services, double coefficient, double exponent) {
  if (num_services <= 1) return 1.0;
  const double n = static_cast<double>(num_services);
  const double alpha = coefficient * std::pow(std::log(n), exponent) / n;
  return std::clamp(alpha, 1.0 / n, 1.0);
}

PartitionResult PartitionServices(const Cluster& cluster,
                                  const Placement& current,
                                  const PartitioningOptions& options) {
  Stopwatch timer;
  Rng rng(options.seed);
  PartitionResult result;
  result.stats.num_services = cluster.num_services();
  const AffinityGraph& graph = cluster.affinity();

  std::vector<std::vector<int>> service_sets;
  std::vector<int> trivial;

  switch (options.mode) {
    case PartitionMode::kNoPartition: {
      std::vector<int> all(cluster.num_services());
      std::iota(all.begin(), all.end(), 0);
      service_sets.push_back(std::move(all));
      break;
    }
    case PartitionMode::kRandom: {
      const int k = std::max(1, (cluster.num_services() +
                                 options.max_subproblem_services - 1) /
                                    options.max_subproblem_services);
      Partition partition = RandomPartition(graph, k, rng);
      service_sets.resize(partition.num_parts);
      for (int s = 0; s < cluster.num_services(); ++s) {
        service_sets[partition.part_of[s]].push_back(s);
      }
      break;
    }
    case PartitionMode::kKahip: {
      // KaHIP-style balanced min-cut over ALL services, as the §V-B
      // ablation does: without the non-affinity/master filtering stages,
      // the partitioner spends part of every subproblem on services that
      // cannot contribute any affinity.
      const int k = std::max(1, (cluster.num_services() +
                                 options.max_subproblem_services - 1) /
                                    options.max_subproblem_services);
      Partition partition = KahipLikePartition(graph, k, rng);
      service_sets.resize(partition.num_parts);
      for (int s = 0; s < cluster.num_services(); ++s) {
        service_sets[partition.part_of[s]].push_back(s);
      }
      break;
    }
    case PartitionMode::kMultiStage: {
      // Stage 1: non-affinity partitioning.
      std::vector<int> affine;
      for (int s = 0; s < cluster.num_services(); ++s) {
        if (graph.Degree(s) > 0) {
          affine.push_back(s);
        } else {
          trivial.push_back(s);
        }
      }

      // Stage 2: master-affinity partitioning by total affinity T(s).
      double alpha = options.master_ratio_override;
      if (alpha < 0.0 || alpha > 1.0) {
        alpha = MasterRatio(cluster.num_services(), options.master_coefficient,
                            options.master_exponent);
      }
      result.stats.master_ratio = alpha;
      const int num_master =
          std::min(static_cast<int>(affine.size()),
                   std::max(1, static_cast<int>(
                                   std::floor(alpha * cluster.num_services()))));
      std::sort(affine.begin(), affine.end(), [&](int a, int b) {
        const double ta = graph.TotalAffinityOf(a);
        const double tb = graph.TotalAffinityOf(b);
        if (ta != tb) return ta > tb;
        return a < b;
      });
      std::vector<int> master(affine.begin(), affine.begin() + num_master);
      for (size_t i = num_master; i < affine.size(); ++i) {
        trivial.push_back(affine[i]);
      }
      double master_affinity = 0.0;
      for (int s : master) master_affinity += graph.TotalAffinityOf(s);
      // Each internal edge counted twice, cut edges once; T-sum/2 is the
      // standard upper bound used here as the reported share.
      const double graph_total = graph.TotalWeight();
      result.stats.master_affinity =
          graph_total > 0.0 ? std::min(1.0, master_affinity / 2.0 / graph_total)
                            : 0.0;

      // Stage 3: compatibility partitioning (platform blocks of matrix b).
      std::vector<std::vector<int>> by_platform(2);
      for (int s : master) {
        by_platform[cluster.service(s).platform].push_back(s);
      }
      // Stage 3b: affinity-connected components within each block can also
      // be solved independently at no loss.
      std::vector<std::vector<int>> components;
      for (const std::vector<int>& block : by_platform) {
        if (block.empty()) continue;
        const AffinityGraph sub = graph.InducedSubgraph(block);
        int num_components = 0;
        const std::vector<int> comp = sub.ConnectedComponents(&num_components);
        std::vector<std::vector<int>> groups(num_components);
        for (size_t v = 0; v < block.size(); ++v) {
          groups[comp[v]].push_back(block[v]);
        }
        for (auto& g : groups) {
          if (!g.empty()) components.push_back(std::move(g));
        }
      }

      // Stage 4: loss-minimization balanced partitioning of large sets.
      for (const std::vector<int>& set : components) {
        for (std::vector<int>& piece :
             SplitLargeSet(cluster, set, options, rng)) {
          service_sets.push_back(std::move(piece));
        }
      }
      break;
    }
  }

  // Merge single-service sets with no internal edges into trivial: solving
  // them cannot gain affinity (multi-stage mode keeps the paper's
  // semantics; other modes keep their sets as-is for a faithful ablation).
  for (std::vector<int>& set : service_sets) {
    if (set.empty()) continue;
    Subproblem sp;
    sp.services = std::move(set);
    std::sort(sp.services.begin(), sp.services.end());
    PopulateSubproblemEdges(cluster, sp);
    if (options.mode == PartitionMode::kMultiStage && sp.edges.empty()) {
      for (int s : sp.services) trivial.push_back(s);
      continue;
    }
    result.subproblems.push_back(std::move(sp));
  }

  std::sort(trivial.begin(), trivial.end());
  result.trivial_services = std::move(trivial);

  // Crucial services move; trivial ones stay. Machine shaving then
  // proportional machine assignment.
  std::vector<int> crucial;
  for (const Subproblem& sp : result.subproblems) {
    crucial.insert(crucial.end(), sp.services.begin(), sp.services.end());
  }
  result.base_placement = MakeBasePlacement(cluster, current, crucial);
  AssignMachines(cluster, result.base_placement, result.subproblems);

  result.stats.num_trivial_services =
      static_cast<int>(result.trivial_services.size());
  result.stats.num_crucial_services = static_cast<int>(crucial.size());
  result.stats.num_subproblems = static_cast<int>(result.subproblems.size());
  double internal = 0.0;
  for (const Subproblem& sp : result.subproblems) {
    internal += sp.internal_affinity;
  }
  const double total = graph.TotalWeight();
  result.stats.crucial_internal_affinity =
      total > 0.0 ? internal / total : 0.0;
  result.stats.elapsed_seconds = timer.ElapsedSeconds();

  // Observability (observation-only; registry handles are cached once).
  {
    MetricRegistry& reg = MetricRegistry::Default();
    static Counter& runs = reg.GetCounter("partition.runs");
    static Counter& subproblems = reg.GetCounter("partition.subproblems");
    static Histogram& seconds = reg.GetHistogram("partition.seconds");
    static Histogram& sizes =
        reg.GetHistogram("partition.subproblem_services");
    static Gauge& master_ratio = reg.GetGauge("partition.master_ratio");
    static Gauge& internal_affinity =
        reg.GetGauge("partition.crucial_internal_affinity");
    static Gauge& trivial_gauge = reg.GetGauge("partition.trivial_services");
    static Gauge& crucial_gauge = reg.GetGauge("partition.crucial_services");
    runs.Increment();
    subproblems.Increment(
        static_cast<uint64_t>(result.stats.num_subproblems));
    seconds.Observe(result.stats.elapsed_seconds);
    for (const Subproblem& sp : result.subproblems) {
      sizes.Observe(static_cast<double>(sp.services.size()));
    }
    master_ratio.Set(result.stats.master_ratio);
    internal_affinity.Set(result.stats.crucial_internal_affinity);
    trivial_gauge.Set(result.stats.num_trivial_services);
    crucial_gauge.Set(result.stats.num_crucial_services);
  }
  return result;
}

}  // namespace rasa
