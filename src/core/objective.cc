#include "core/objective.h"

#include <algorithm>

namespace rasa {

double PairGainedAffinityOnMachine(const Cluster& cluster,
                                   const Placement& placement, int s,
                                   int s_prime, double weight, int machine) {
  const int d_s = cluster.service(s).demand;
  const int d_sp = cluster.service(s_prime).demand;
  if (d_s <= 0 || d_sp <= 0) return 0.0;
  const int x_s = placement.CountOn(machine, s);
  if (x_s == 0) return 0.0;
  const int x_sp = placement.CountOn(machine, s_prime);
  if (x_sp == 0) return 0.0;
  return weight * std::min(static_cast<double>(x_s) / d_s,
                           static_cast<double>(x_sp) / d_sp);
}

double PairLocalizationRatio(const Cluster& cluster,
                             const Placement& placement, int s, int s_prime) {
  const int d_s = cluster.service(s).demand;
  const int d_sp = cluster.service(s_prime).demand;
  if (d_s <= 0 || d_sp <= 0) return 0.0;
  // Iterate the smaller footprint's machines.
  const auto& machines_s = placement.MachinesOf(s);
  const auto& machines_sp = placement.MachinesOf(s_prime);
  const auto& outer = machines_s.size() <= machines_sp.size() ? machines_s
                                                              : machines_sp;
  const int other = machines_s.size() <= machines_sp.size() ? s_prime : s;
  double ratio = 0.0;
  for (const auto& [m, count] : outer) {
    const int x_other = placement.CountOn(m, other);
    if (x_other == 0) continue;
    const int x_s = other == s_prime ? count : x_other;
    const int x_sp = other == s_prime ? x_other : count;
    ratio += std::min(static_cast<double>(x_s) / d_s,
                      static_cast<double>(x_sp) / d_sp);
  }
  return std::min(ratio, 1.0);
}

double GainedAffinity(const Cluster& cluster, const Placement& placement) {
  double total = 0.0;
  for (const AffinityEdge& e : cluster.affinity().edges()) {
    total += e.weight * PairLocalizationRatio(cluster, placement, e.u, e.v);
  }
  return total;
}

std::vector<double> EdgeLocalizationRatios(const Cluster& cluster,
                                           const Placement& placement) {
  const auto& edges = cluster.affinity().edges();
  std::vector<double> ratios(edges.size(), 0.0);
  for (size_t i = 0; i < edges.size(); ++i) {
    ratios[i] =
        PairLocalizationRatio(cluster, placement, edges[i].u, edges[i].v);
  }
  return ratios;
}

}  // namespace rasa
