#include "core/solve_ledger.h"

#include <atomic>

#include "common/metrics.h"

namespace rasa {
namespace {

std::atomic<bool> g_ledger_enabled{true};

}  // namespace

const char* AttemptOutcomeToString(AttemptOutcome outcome) {
  switch (outcome) {
    case AttemptOutcome::kNotRun:
      return "not_run";
    case AttemptOutcome::kOk:
      return "ok";
    case AttemptOutcome::kFailed:
      return "failed";
    case AttemptOutcome::kExpired:
      return "expired";
    case AttemptOutcome::kPruned:
      return "pruned";
  }
  return "unknown";
}

SolveLedger& SolveLedger::Default() {
  // Leaked on purpose, like MetricRegistry: destruction order vs. worker
  // threads at exit is otherwise unknowable.
  static SolveLedger* ledger = new SolveLedger();
  return *ledger;
}

void SolveLedger::Append(LedgerRecord record) {
  static Counter& appended =
      MetricRegistry::Default().GetCounter("ledger.records");
  appended.Increment();
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
}

void SolveLedger::AppendAll(const std::vector<LedgerRecord>& records) {
  static Counter& appended =
      MetricRegistry::Default().GetCounter("ledger.records");
  appended.Increment(records.size());
  std::lock_guard<std::mutex> lock(mu_);
  records_.insert(records_.end(), records.begin(), records.end());
}

std::vector<LedgerRecord> SolveLedger::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

size_t SolveLedger::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void SolveLedger::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

void SetSolveLedgerEnabled(bool enabled) {
  g_ledger_enabled.store(enabled, std::memory_order_relaxed);
}

bool SolveLedgerEnabled() {
  return g_ledger_enabled.load(std::memory_order_relaxed);
}

}  // namespace rasa
