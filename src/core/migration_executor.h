#ifndef RASA_CORE_MIGRATION_EXECUTOR_H_
#define RASA_CORE_MIGRATION_EXECUTOR_H_

#include <functional>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/migration.h"

namespace rasa {

class WorkflowJournal;  // core/recovery.h

/// The executor's boundary to the live cluster: one container operation at a
/// time. Real deployments talk to the container orchestrator here; the
/// simulator applies commands to a `Placement` (optionally through a fault
/// injector). Implementations may fail any command — the executor retries,
/// re-batches and re-plans around failures.
class ClusterActions {
 public:
  virtual ~ClusterActions() = default;
  /// Attempts to delete one container of `service` on `machine`.
  virtual Status Delete(int machine, int service) = 0;
  /// Attempts to create one container of `service` on `machine`.
  virtual Status Create(int machine, int service) = 0;
  /// Whether the machine currently accepts commands (false = cordoned).
  virtual bool Available(int machine) const {
    (void)machine;
    return true;
  }
};

/// Applies commands directly to a live placement. Fails (permanently) only
/// on genuinely impossible commands: deleting an absent container or
/// creating one that does not fit.
class PlacementActions : public ClusterActions {
 public:
  explicit PlacementActions(Placement& live) : live_(live) {}

  Status Delete(int machine, int service) override {
    return live_.Remove(machine, service);
  }
  Status Create(int machine, int service) override;

 private:
  Placement& live_;
};

struct MigrationExecutorOptions {
  /// Per-command retry/backoff policy.
  RetryPolicy retry;
  /// SLA floor re-verified against the *actual* live state before every
  /// delete and after every (possibly partial) batch.
  double min_alive_fraction = 0.75;
  /// Maximum re-planning rounds after a batch is abandoned with stragglers.
  int max_replans = 4;
  /// Overall execution deadline (simulated backoff counts against it).
  Deadline deadline = Deadline::Infinite();
  /// Seed for backoff jitter; fixed seed + fault-free actions is fully
  /// deterministic.
  uint64_t seed = 17;
  /// Migration write-ahead journal (core/recovery.h). When set, every batch
  /// gets an intent record carrying its exact commands appended and fsync'd
  /// before the first command touches the cluster, and a commit record
  /// after the post-batch audit — recovery replays these to classify every
  /// in-flight command as applied / not-applied / torn. A failed journal
  /// append stops execution dead (acting without a durable intent would
  /// make the run unrecoverable).
  WorkflowJournal* journal = nullptr;
  /// Cycle number stamped on journal records.
  int journal_cycle = 0;
  /// Ordinal of the first batch this invocation executes (a resumed cycle
  /// continues numbering where the interrupted run stopped).
  int journal_first_batch = 0;
  /// Test-only simulated kill -9: consulted after every applied command and
  /// after every audited batch (before its commit record lands). Returning
  /// true stops execution dead — no cleanup, no further journal records.
  std::function<bool()> crash_after_command;
  std::function<bool()> crash_after_batch;
};

struct MigrationExecutionReport {
  int batches_executed = 0;
  /// Batches that completed with at least one failed or deferred command.
  int partial_batches = 0;
  int commands_attempted = 0;
  int commands_succeeded = 0;
  /// Commands that failed permanently (retries exhausted, cordoned machine,
  /// or infeasible against the actual live state).
  int commands_failed = 0;
  /// Deletes skipped because they would have violated the SLA floor given
  /// the actually-reached state (the planner assumed a create that failed).
  int commands_deferred = 0;
  int retries = 0;
  double backoff_seconds = 0.0;  // simulated backoff time
  /// Re-planning rounds from the actually-reached intermediate placement.
  int replans = 0;
  /// Re-plans that could not produce a path (the run stops gracefully).
  int replan_failures = 0;
  /// Containers dropped from the target because no machine could take them
  /// (all candidates cordoned/full). 0 in any healthy run.
  int dropped_containers = 0;
  /// Post-batch audits that found a service below the SLA floor /
  /// a machine over capacity. Both must stay 0; counted, not thrown, so a
  /// chaos run still yields a full report.
  int sla_violations = 0;
  int feasibility_violations = 0;
  /// Live placement equals the (cordon-adjusted) target on return.
  bool reached_target = false;
  /// Containers still differing from the adjusted target on return.
  int residual_diff = 0;
  /// Execution stopped dead mid-flight (simulated crash, or a journal
  /// append failure): the live placement is whatever the commands applied
  /// so far left behind, and no completion records were written.
  bool crashed = false;
};

/// Executes `plan` command-by-command against `actions`, mutating nothing
/// directly — `live` changes only through commands `actions` accepted, so
/// the executor's view always matches what actually happened. Failed
/// commands are retried per `options.retry`; the SLA floor and resource
/// feasibility are re-verified after every partial step; when a pass over
/// the plan leaves stragglers, the executor re-plans from the
/// actually-reached placement (routing around cordoned machines) up to
/// `max_replans` times. Always returns a report — chaos is expected, not
/// exceptional.
MigrationExecutionReport ExecuteMigration(const Cluster& cluster,
                                          Placement& live,
                                          const Placement& target,
                                          const MigrationPlan& plan,
                                          ClusterActions& actions,
                                          const MigrationExecutorOptions& options = {});

}  // namespace rasa

#endif  // RASA_CORE_MIGRATION_EXECUTOR_H_
